package meetpoly

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"meetpoly/internal/sched"
)

// TestEngineRunKinds drives Engine.Run over every scenario kind through
// one shared engine.
func TestEngineRunKinds(t *testing.T) {
	eng := NewEngine(WithMaxN(5), WithSeed(1))
	cases := []struct {
		name  string
		sc    Scenario
		check func(t *testing.T, res *Result)
	}{
		{
			name: "rendezvous",
			sc: Scenario{
				Kind:   ScenarioRendezvous,
				Graph:  GraphSpec{Kind: "path", N: 4},
				Starts: []int{0, 3}, Labels: []Label{2, 5},
				Budget: 2_000_000,
			},
			check: func(t *testing.T, res *Result) {
				if res.Rendezvous == nil || !res.Rendezvous.Met {
					t.Fatal("rendezvous did not meet")
				}
				if res.Rendezvous.Bound.Sign() <= 0 {
					t.Error("non-positive bound")
				}
			},
		},
		{
			name: "baseline",
			sc: Scenario{
				Kind:   ScenarioBaseline,
				Graph:  GraphSpec{Kind: "path", N: 2},
				Starts: []int{0, 1}, Labels: []Label{1, 2},
				Budget: 1_000_000,
			},
			check: func(t *testing.T, res *Result) {
				if res.Baseline == nil || !res.Baseline.Met {
					t.Fatal("baseline did not meet")
				}
			},
		},
		{
			name: "esst",
			sc: Scenario{
				Kind:   ScenarioESST,
				Graph:  GraphSpec{Kind: "ring", N: 5},
				Starts: []int{0, 2},
				Budget: 10_000_000,
			},
			check: func(t *testing.T, res *Result) {
				if res.ESST == nil || !res.ESST.Done || !res.ESST.Covered {
					t.Fatalf("esst done/covered: %+v", res.ESST)
				}
			},
		},
		{
			name: "sgl",
			sc: Scenario{
				Kind:   ScenarioSGL,
				Graph:  GraphSpec{Kind: "path", N: 4},
				Starts: []int{0, 3}, Labels: []Label{1, 5},
				Budget: 20_000_000,
			},
			check: func(t *testing.T, res *Result) {
				if res.SGL == nil || !res.SGL.AllOutput {
					t.Fatal("sgl incomplete")
				}
				if res.SGL.Agents[0].Leader != 1 {
					t.Errorf("leader = %d", res.SGL.Agents[0].Leader)
				}
			},
		},
		{
			name: "certify",
			sc: Scenario{
				Kind:   ScenarioCertify,
				Graph:  GraphSpec{Kind: "path", N: 2},
				Starts: []int{0, 1}, Labels: []Label{1, 2},
				Moves: 2000,
			},
			check: func(t *testing.T, res *Result) {
				if res.Cert == nil || !res.Cert.Forced {
					t.Fatal("2-path rendezvous should be certified forced")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := eng.Run(context.Background(), tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, res)
		})
	}
}

// TestRunBatchSharedCatalog fans >=8 mixed-kind scenarios out
// concurrently over one engine (and therefore one verified catalog).
// Run under -race this is the acceptance test for the engine's
// concurrency story.
func TestRunBatchSharedCatalog(t *testing.T) {
	eng := NewEngine(WithMaxN(5), WithSeed(1), WithParallelism(8))
	scs := []Scenario{
		{Name: "rv-path", Kind: ScenarioRendezvous, Graph: GraphSpec{Kind: "path", N: 4},
			Starts: []int{0, 3}, Labels: []Label{2, 5}, Budget: 2_000_000},
		{Name: "rv-star", Kind: ScenarioRendezvous, Graph: GraphSpec{Kind: "star", N: 4},
			Starts: []int{1, 2}, Labels: []Label{2, 3}, Adversary: "avoider", Budget: 2_000_000},
		{Name: "rv-clique", Kind: ScenarioRendezvous, Graph: GraphSpec{Kind: "clique", N: 4},
			Starts: []int{0, 2}, Labels: []Label{1, 6}, Adversary: "random:7", Budget: 2_000_000},
		{Name: "baseline", Kind: ScenarioBaseline, Graph: GraphSpec{Kind: "path", N: 2},
			Starts: []int{0, 1}, Labels: []Label{1, 2}, Budget: 1_000_000},
		{Name: "esst-ring", Kind: ScenarioESST, Graph: GraphSpec{Kind: "ring", N: 5},
			Starts: []int{0, 2}, Budget: 10_000_000},
		{Name: "esst-star", Kind: ScenarioESST, Graph: GraphSpec{Kind: "star", N: 5},
			Starts: []int{1, 3}, Budget: 10_000_000},
		{Name: "certify-path", Kind: ScenarioCertify, Graph: GraphSpec{Kind: "path", N: 3},
			Starts: []int{0, 2}, Labels: []Label{1, 2}, Moves: 2000},
		{Name: "certify-star", Kind: ScenarioCertify, Graph: GraphSpec{Kind: "star", N: 4},
			Starts: []int{1, 2}, Labels: []Label{2, 3}, Moves: 2000},
		{Name: "sgl-path", Kind: ScenarioSGL, Graph: GraphSpec{Kind: "path", N: 4},
			Starts: []int{0, 3}, Labels: []Label{1, 5}, Budget: 20_000_000},
		{Name: "rv-shuffled", Kind: ScenarioRendezvous, Graph: GraphSpec{Kind: "ring", N: 4, Seed: 4, Shuffle: true},
			Starts: []int{0, 2}, Labels: []Label{1, 3}, Budget: 500_000},
	}
	if len(scs) < 8 {
		t.Fatalf("batch must hold >= 8 scenarios, got %d", len(scs))
	}
	out := eng.RunBatch(context.Background(), scs)
	if len(out) != len(scs) {
		t.Fatalf("got %d results for %d scenarios", len(out), len(scs))
	}
	for i, br := range out {
		if br.Index != i {
			t.Errorf("result %d carries index %d", i, br.Index)
		}
		if br.Err != nil {
			t.Errorf("scenario %q failed: %v", br.Scenario.Name, br.Err)
			continue
		}
		if br.Result == nil {
			t.Errorf("scenario %q: nil result", br.Scenario.Name)
		}
	}
}

// TestRunBatchCancelMidBatch cancels a batch right after its first
// scenario produces a result: the first result must stand (its goal was
// reached before the cancellation), every remaining BatchResult must
// carry ErrCanceled, and the worker pool must drain without leaking
// goroutines.
func TestRunBatchCancelMidBatch(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	// The observer fires at the first meeting of the batch; with
	// parallelism 1 that is deterministically scenario 0's meeting.
	obs := &FuncObserver{Meeting: func(Meeting) { once.Do(cancel) }}
	eng := NewEngine(WithMaxN(4), WithSeed(1), WithParallelism(1), WithObserver(obs))

	scs := []Scenario{{
		Name: "fast-meeting", Kind: ScenarioRendezvous,
		Graph:  GraphSpec{Kind: "path", N: 4},
		Starts: []int{0, 3}, Labels: []Label{2, 5}, Budget: 2_000_000,
	}}
	for i := 0; i < 7; i++ {
		// Symmetric oriented-ring instances: without the cancellation
		// these would churn through an effectively unbounded budget, so
		// the test only terminates if mid-batch cancellation works.
		scs = append(scs, Scenario{
			Name: "doomed", Kind: ScenarioRendezvous,
			Graph:  GraphSpec{Kind: "ring", N: 4},
			Starts: []int{0, 2}, Labels: []Label{1, 3}, Budget: 1 << 40,
		})
	}

	out := eng.RunBatch(ctx, scs)
	if len(out) != len(scs) {
		t.Fatalf("got %d results for %d scenarios", len(out), len(scs))
	}
	first := out[0]
	if first.Err != nil {
		t.Fatalf("first scenario met before the cancel and must not error: %v", first.Err)
	}
	if first.Result == nil || first.Result.Rendezvous == nil || !first.Result.Rendezvous.Met {
		t.Fatal("first scenario should have met")
	}
	for _, br := range out[1:] {
		if !errors.Is(br.Err, ErrCanceled) {
			t.Fatalf("scenario %d (%s): want ErrCanceled, got %v", br.Index, br.Scenario.Name, br.Err)
		}
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("scenario %d: error should wrap context.Canceled, got %v", br.Index, br.Err)
		}
	}

	// The pool and every agent goroutine must drain. Goroutine counts
	// are noisy (test runner, GC), so poll with a tolerance.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("worker pool leaked goroutines: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelCertifierMidRun aborts an exhaustive certification whose
// lattice is far too large to finish within the deadline; the typed
// error must wrap both ErrCanceled and the context's own error.
func TestCancelCertifierMidRun(t *testing.T) {
	eng := NewEngine(WithMaxN(4), WithSeed(1))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := eng.Run(ctx, Scenario{
		Name:   "certify-huge",
		Kind:   ScenarioCertify,
		Graph:  GraphSpec{Kind: "ring", N: 4},
		Starts: []int{0, 2}, Labels: []Label{1, 3},
		// An oriented-ring instance certifies nothing quickly: the
		// 2*moves x 2*moves lattice takes far longer than the deadline.
		Moves: 50_000,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error should also wrap the context error, got %v", err)
	}
}

// TestCancelRendezvousMidRun cancels a symmetric rendezvous that would
// otherwise churn until its (huge) budget.
func TestCancelRendezvousMidRun(t *testing.T) {
	eng := NewEngine(WithMaxN(4), WithSeed(1))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := eng.Run(ctx, Scenario{
		Name: "rv-symmetric",
		Kind: ScenarioRendezvous,
		// Oriented ring, rotation-equivalent starts: no meeting for
		// ~1e11 traversals, so only cancellation ends this run early.
		Graph:  GraphSpec{Kind: "ring", N: 4},
		Starts: []int{0, 2}, Labels: []Label{1, 3},
		Budget: 1 << 40,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if res == nil || res.Rendezvous == nil {
		t.Fatal("canceled run should still return the partial result")
	}
	if !res.Rendezvous.Summary.Canceled {
		t.Error("summary should record cancellation")
	}
	if res.Rendezvous.Met {
		t.Error("symmetric instance cannot have met")
	}
}

// TestSentinelErrors exercises errors.Is for all four public sentinels.
func TestSentinelErrors(t *testing.T) {
	t.Run("budget-exhausted", func(t *testing.T) {
		eng := NewEngine(WithMaxN(4), WithSeed(1))
		res, err := eng.Run(context.Background(), Scenario{
			Kind:   ScenarioRendezvous,
			Graph:  GraphSpec{Kind: "ring", N: 4},
			Starts: []int{0, 2}, Labels: []Label{1, 3},
			Budget: 10_000, // symmetric: cannot meet this early
		})
		if !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("want ErrBudgetExhausted, got %v", err)
		}
		if res == nil || res.Rendezvous == nil || res.Rendezvous.Met {
			t.Fatalf("partial result expected alongside the error: %+v", res)
		}
		if !res.Rendezvous.Summary.Exhausted {
			t.Error("summary should record exhaustion")
		}
	})
	t.Run("invalid-scenario", func(t *testing.T) {
		eng := NewEngine(WithMaxN(4), WithSeed(1))
		for name, sc := range map[string]Scenario{
			"duplicate starts": {Kind: ScenarioRendezvous, Graph: GraphSpec{Kind: "path", N: 4},
				Starts: []int{1, 1}, Labels: []Label{1, 2}, Budget: 100},
			"equal labels": {Kind: ScenarioRendezvous, Graph: GraphSpec{Kind: "path", N: 4},
				Starts: []int{0, 3}, Labels: []Label{2, 2}, Budget: 100},
			"zero label": {Kind: ScenarioRendezvous, Graph: GraphSpec{Kind: "path", N: 4},
				Starts: []int{0, 3}, Labels: []Label{0, 2}, Budget: 100},
			"unknown kind": {Kind: "teleport", Graph: GraphSpec{Kind: "path", N: 4},
				Starts: []int{0, 3}, Labels: []Label{1, 2}, Budget: 100},
			"unknown graph": {Kind: ScenarioRendezvous, Graph: GraphSpec{Kind: "moebius", N: 4},
				Starts: []int{0, 3}, Labels: []Label{1, 2}, Budget: 100},
			"bad adversary": {Kind: ScenarioRendezvous, Graph: GraphSpec{Kind: "path", N: 4},
				Starts: []int{0, 3}, Labels: []Label{1, 2}, Adversary: "chaos", Budget: 100},
			"biased weight mismatch": {Kind: ScenarioRendezvous, Graph: GraphSpec{Kind: "path", N: 4},
				Starts: []int{0, 3}, Labels: []Label{1, 2}, Adversary: "biased:1,5,9", Budget: 100},
			"no budget": {Kind: ScenarioRendezvous, Graph: GraphSpec{Kind: "path", N: 4},
				Starts: []int{0, 3}, Labels: []Label{1, 2}},
			"sgl label mismatch": {Kind: ScenarioSGL, Graph: GraphSpec{Kind: "path", N: 4},
				Starts: []int{0, 3}, Labels: []Label{1}, Budget: 100},
		} {
			if _, err := eng.Run(context.Background(), sc); !errors.Is(err, ErrInvalidScenario) {
				t.Errorf("%s: want ErrInvalidScenario, got %v", name, err)
			}
		}
	})
	t.Run("catalog-uncovered", func(t *testing.T) {
		eng := NewEngine(WithMaxN(4), WithSeed(1), WithAutoExtend(false))
		_, err := eng.Run(context.Background(), Scenario{
			Kind:   ScenarioRendezvous,
			Graph:  GraphSpec{Kind: "path", N: 6}, // outside the <=4 family
			Starts: []int{0, 5}, Labels: []Label{1, 2}, Budget: 100,
		})
		if !errors.Is(err, ErrCatalogUncovered) {
			t.Fatalf("want ErrCatalogUncovered, got %v", err)
		}
		// A structural family member must pass WITHOUT extension.
		if _, err := eng.Run(context.Background(), Scenario{
			Kind:   ScenarioRendezvous,
			Graph:  GraphSpec{Kind: "path", N: 4},
			Starts: []int{0, 3}, Labels: []Label{2, 5}, Budget: 2_000_000,
		}); err != nil {
			t.Fatalf("family member should be covered structurally: %v", err)
		}
	})
	t.Run("canceled", func(t *testing.T) {
		eng := NewEngine(WithMaxN(4), WithSeed(1))
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := eng.Run(ctx, Scenario{
			Kind:   ScenarioRendezvous,
			Graph:  GraphSpec{Kind: "path", N: 4},
			Starts: []int{0, 3}, Labels: []Label{1, 2}, Budget: 100,
		})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error should also wrap context.Canceled, got %v", err)
		}
	})
}

// restingAdversary issues no events at all: the run ends immediately
// without consuming its budget.
type restingAdversary struct{}

func (restingAdversary) Next(*sched.View) (sched.Event, bool) { return sched.Event{}, false }

// TestAdversaryRestedIsNotBudgetExhausted: a goal missed because the
// adversary rested is not cured by a larger budget, so it must not
// match ErrBudgetExhausted.
func TestAdversaryRestedIsNotBudgetExhausted(t *testing.T) {
	eng := NewEngine(WithMaxN(4), WithSeed(1))
	res, err := eng.Run(context.Background(), Scenario{
		Name:              "rested",
		Kind:              ScenarioRendezvous,
		Graph:             GraphSpec{Kind: "path", N: 4},
		Starts:            []int{0, 3},
		Labels:            []Label{2, 5},
		AdversaryInstance: restingAdversary{},
		Budget:            1_000_000,
	})
	if err == nil {
		t.Fatal("goal miss must be reported")
	}
	if errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("rested adversary must not report budget exhaustion: %v", err)
	}
	if res == nil || res.Rendezvous == nil || res.Rendezvous.Met {
		t.Fatalf("partial result expected: %+v", res)
	}
}

// TestBareBiasedAdversary: the pre-redesign CLI accepted a bare
// "biased" spec with default skew weights; a scenario must too.
func TestBareBiasedAdversary(t *testing.T) {
	eng := NewEngine(WithMaxN(4), WithSeed(1))
	res, err := eng.Run(context.Background(), Scenario{
		Kind:      ScenarioRendezvous,
		Graph:     GraphSpec{Kind: "path", N: 4},
		Starts:    []int{0, 3},
		Labels:    []Label{2, 5},
		Adversary: "biased",
		Budget:    2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rendezvous.Met {
		t.Error("biased schedule should still meet on the path")
	}
}

// TestObserverEvents checks that an attached observer sees a consistent
// event stream: one traversal per completed move, the meeting, and (for
// ESST) phase-change announcements.
func TestObserverEvents(t *testing.T) {
	var traversals, meetings, events int
	var phases []string
	obs := &FuncObserver{
		Event:     func(int, Event) { events++ },
		Traversal: func(int, int, int) { traversals++ },
		Meeting:   func(Meeting) { meetings++ },
		Phase:     func(_ int, p string) { phases = append(phases, p) },
	}
	eng := NewEngine(WithMaxN(5), WithSeed(1), WithObserver(obs))

	res, err := eng.Run(context.Background(), Scenario{
		Kind:   ScenarioRendezvous,
		Graph:  GraphSpec{Kind: "path", N: 4},
		Starts: []int{0, 3}, Labels: []Label{2, 5}, Budget: 2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Rendezvous.Summary
	wantTrav := 0
	for _, tr := range sum.Traversals {
		wantTrav += tr
	}
	if traversals != wantTrav {
		t.Errorf("observer saw %d traversals, summary says %d", traversals, wantTrav)
	}
	if meetings == 0 {
		t.Error("observer missed the meeting")
	}
	if events != sum.Steps {
		t.Errorf("observer saw %d events, summary says %d steps", events, sum.Steps)
	}

	if _, err := eng.Run(context.Background(), Scenario{
		Kind:   ScenarioESST,
		Graph:  GraphSpec{Kind: "ring", N: 5},
		Starts: []int{0, 2}, Budget: 10_000_000,
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range phases {
		if p == "esst: phase 3" {
			found = true
		}
	}
	if !found {
		t.Errorf("observer missed ESST phase announcements; saw %v", phases)
	}
}

// TestDeprecatedWrappers pins the legacy free functions to the engine:
// same results, same "no error on budget miss" contract.
func TestDeprecatedWrappers(t *testing.T) {
	env := NewEnv(4, 1)
	// Symmetric oriented ring: budget miss must NOT be an error here.
	res, err := Rendezvous(Ring(4), 0, 2, 1, 3, env, nil, 10_000)
	if err != nil {
		t.Fatalf("legacy Rendezvous must swallow budget exhaustion: %v", err)
	}
	if res.Met {
		t.Error("symmetric instance cannot meet in 10k events")
	}
}
