package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// SnapshotAnalyzer enforces the copy-on-write atomic-snapshot
// discipline used by uxs.Verified and trajectory.Route: a struct that
// pairs a writer mutex with an atomic.Pointer snapshot publishes new
// snapshots only while holding the mutex, and read paths never touch
// the lock at all.
//
// Concretely, for every struct type in the package that declares both a
// sync.Mutex/sync.RWMutex field and an atomic.Pointer[T] field:
//
//   - a call pair.ptr.Store(...) (or Swap) must be preceded, lexically
//     within the same function, by pair.mu.Lock() on the same receiver
//     — otherwise two writers race the read-modify-write and one
//     update is lost silently. CompareAndSwap is exempt: it is
//     self-synchronizing publication (an idempotent memo like
//     Engine.BoundModel needs no mutex);
//   - a function that calls pair.mu.Lock() and reads the snapshot via
//     pair.ptr.Load() but never publishes one is a read path holding
//     the writer lock: it serializes readers the whole design exists
//     to keep lock-free. Read through ptr.Load() alone. Locking
//     without touching the pointer at all is fine — the mutex may
//     guard unrelated state.
//
// Constructors are exempt: storing into a pair that was created in the
// same function (assigned from a composite literal or new) publishes
// nothing shared yet.
var SnapshotAnalyzer = &analysis.Analyzer{
	Name:     "snapshot",
	Doc:      "enforce mutex-guarded writes and lock-free reads for copy-on-write atomic-snapshot structs",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runSnapshot,
}

// cowPair describes one struct type that follows the snapshot pattern.
type cowPair struct {
	typ  *types.Named
	mu   map[string]bool // mutex field names
	ptrs map[string]bool // atomic.Pointer field names
}

func runSnapshot(pass *analysis.Pass) (any, error) {
	pairs := findCowPairs(pass)
	if len(pairs) == 0 {
		return nil, nil
	}
	rep := newReporter(pass, "snapshot")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || inTestFile(pass.Fset, decl.Pos()) {
			return
		}
		checkSnapshotFunc(pass, rep, pairs, decl)
	})
	return nil, nil
}

// findCowPairs scans the package scope for struct types pairing a
// mutex field with an atomic.Pointer field.
func findCowPairs(pass *analysis.Pass) []*cowPair {
	var pairs []*cowPair
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		p := &cowPair{typ: named, mu: map[string]bool{}, ptrs: map[string]bool{}}
		for f := range st.Fields() {
			ft := types.Unalias(f.Type())
			switch {
			case namedIn(ft, "sync", "Mutex") || namedIn(ft, "sync", "RWMutex"):
				p.mu[f.Name()] = true
			case isAtomicPointer(ft):
				p.ptrs[f.Name()] = true
			}
		}
		if len(p.mu) > 0 && len(p.ptrs) > 0 {
			pairs = append(pairs, p)
		}
	}
	return pairs
}

// isAtomicPointer reports whether t is sync/atomic's Pointer[T] (or a
// same-named generic in a package called atomic, so fixtures can stub
// it).
func isAtomicPointer(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Name() == "atomic"
}

// pairFor returns the cowPair whose type e's value belongs to, if any.
func pairFor(pass *analysis.Pass, pairs []*cowPair, e ast.Expr) *cowPair {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	for _, p := range pairs {
		if p.typ.Obj() == n.Obj() {
			return p
		}
	}
	return nil
}

// storeMethods publish a new snapshot through the pointer field and
// need the writer mutex. CompareAndSwap is deliberately absent: a CAS
// either publishes or observes the concurrent publication, so it
// cannot lose an update.
var storeMethods = map[string]bool{"Store": true, "Swap": true}

// checkSnapshotFunc applies both rules to one function body.
func checkSnapshotFunc(pass *analysis.Pass, rep *reporter, pairs []*cowPair, decl *ast.FuncDecl) {
	info := pass.TypesInfo

	// freshLocals: variables assigned a brand-new pair value in this
	// function (constructor pattern) — stores through them are
	// pre-publication and need no lock.
	freshLocals := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			id, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			if pairFor(pass, pairs, asg.Lhs[i]) == nil {
				continue
			}
			if isFreshAlloc(info, rhs) {
				if obj := info.ObjectOf(id); obj != nil {
					freshLocals[obj] = true
				}
			}
		}
		return true
	})

	// events: receiver objects seen, in lexical order, locking a pair
	// mutex, storing through a pair pointer, or loading from one.
	type event struct {
		obj  types.Object
		pair *cowPair
		kind int // evLock, evStore, evLoad
		node ast.Node
	}
	const (
		evLock = iota
		evStore
		evLoad
	)
	var events []event
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pair := pairFor(pass, pairs, inner.X)
		if pair == nil {
			return true
		}
		root := rootIdent(inner.X)
		if root == nil {
			return true
		}
		obj := info.ObjectOf(root)
		switch {
		case storeMethods[sel.Sel.Name] && pair.ptrs[inner.Sel.Name]:
			events = append(events, event{obj: obj, pair: pair, kind: evStore, node: call})
		case sel.Sel.Name == "Load" && pair.ptrs[inner.Sel.Name]:
			events = append(events, event{obj: obj, pair: pair, kind: evLoad, node: call})
		case sel.Sel.Name == "Lock" && pair.mu[inner.Sel.Name]:
			events = append(events, event{obj: obj, pair: pair, kind: evLock, node: call})
		}
		return true
	})

	// Rule 1: every store follows a lock on the same receiver, unless
	// the receiver is freshly constructed here.
	locked := make(map[types.Object]bool)
	stored := make(map[types.Object]bool)
	loaded := make(map[types.Object]bool)
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			locked[ev.obj] = true
		case evLoad:
			loaded[ev.obj] = true
		case evStore:
			stored[ev.obj] = true
			if locked[ev.obj] || freshLocals[ev.obj] {
				continue
			}
			rep.reportf(ev.node.Pos(), "snapshot published without holding the writer mutex: concurrent writers race the read-modify-write and lose updates; take %s's mutex first", ev.pair.typ.Obj().Name())
		}
	}

	// Rule 2: locking and reading the snapshot without ever publishing
	// one is a read path holding the writer lock. (Locking without
	// touching the pointer guards other state and is fine.)
	reported := make(map[types.Object]bool)
	for _, ev := range events {
		if ev.kind != evLock || stored[ev.obj] || !loaded[ev.obj] || reported[ev.obj] {
			continue
		}
		reported[ev.obj] = true
		rep.reportf(ev.node.Pos(), "read path acquires %s's writer mutex but never publishes a snapshot: readers must go through the atomic pointer's Load alone", ev.pair.typ.Obj().Name())
	}
}

// isFreshAlloc reports whether rhs evaluates to a value that cannot yet
// be shared: a composite literal, its address, or new(T).
func isFreshAlloc(info *types.Info, rhs ast.Expr) bool {
	switch x := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		return isBuiltin(info, x, "new")
	}
	return false
}
