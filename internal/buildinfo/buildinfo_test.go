package buildinfo

import (
	"runtime"
	"strings"
	"testing"

	"meetpoly/internal/telemetry"
)

// TestString pins the -version line shape shared by all ten cmds.
func TestString(t *testing.T) {
	s := String("rvtest")
	if !strings.HasPrefix(s, "rvtest "+Version+" (") {
		t.Errorf("version line %q missing cmd/version prefix", s)
	}
	for _, part := range []string{runtime.Version(), runtime.GOOS + "/" + runtime.GOARCH} {
		if !strings.Contains(s, part) {
			t.Errorf("version line %q missing %q", s, part)
		}
	}
}

// TestInfoGauge pins the build-info series: constant 1, identity in
// labels, renderable exposition.
func TestInfoGauge(t *testing.T) {
	r := telemetry.NewRegistry()
	InfoGauge(r, "rvtest")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE meetpoly_build_info gauge") {
		t.Errorf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `cmd="rvtest"`) || !strings.Contains(out, `version="`+Version+`"`) {
		t.Errorf("missing identity labels:\n%s", out)
	}
	var found bool
	for _, p := range r.Snapshot() {
		if p.Name == "meetpoly_build_info" {
			found = true
			if p.Value != 1 {
				t.Errorf("build info value = %v, want 1", p.Value)
			}
		}
	}
	if !found {
		t.Error("meetpoly_build_info not in snapshot")
	}
}
