package meetpoly

import (
	"math/bits"
	"sync"

	"meetpoly/internal/campaign"
	"meetpoly/internal/telemetry"
)

// Metrics is the named-metric registry the engine (and the layers above
// it — serve, coord, client) records into: lock-free counters, gauges
// and power-of-two-bucket histograms with a zero-allocation record
// path, immutable snapshots, and a Prometheus text-exposition encoder
// (DESIGN.md §7). It is aliased from internal/telemetry the same way
// View and Observer are aliased from internal/sched, so callers hold
// real handles without importing internal packages.
type Metrics = telemetry.Registry

// NewMetrics returns an empty metrics registry, ready to be shared by
// an engine (WithTelemetry) and any service layers scraping it.
func NewMetrics() *Metrics { return telemetry.NewRegistry() }

// WithTelemetry attaches a metrics registry to the engine. The engine
// then records its prepared-cache traffic, route replays, per-cell and
// batch wall times, batch occupancy and fallbacks, oracle verdicts and
// the per-graph-kind Π-slack distribution into it — and nothing else
// changes: telemetry never feeds a result, and the differential test
// suite pins sweep reports byte-identical with and without it.
func WithTelemetry(m *Metrics) Option {
	return func(c *engineConfig) { c.metrics = m }
}

// CellTraceEvent is one span edge of the sweep tracer: a begin event
// when a worker picks a cell up, an end event when its judged result
// is ready. Timestamps are on the telemetry clock (monotonic
// nanoseconds since process start); they annotate the run, they never
// enter it.
type CellTraceEvent struct {
	Phase  string `json:"phase"` // "begin" or "end"
	Index  int    `json:"index"`
	ID     string `json:"id"`
	Seed   string `json:"seed,omitempty"`
	Kind   string `json:"kind"`
	Graph  string `json:"graph"`
	AtNs   int64  `json:"at_ns"`
	WallNs int64  `json:"wall_ns,omitempty"` // end events only
	Met    bool   `json:"met,omitempty"`     // end events only
	Failed bool   `json:"failed,omitempty"`  // end events only: any oracle failure
}

// WithCellTrace attaches a span-style sweep tracer: fn receives a
// begin and an end CellTraceEvent for every executed cell (`rvsweep
// -trace` writes them as NDJSON). The engine serializes the callbacks,
// so fn needs no locking of its own. Like an observer, an attached
// tracer disables the batched execution tier — per-cell spans need
// per-cell execution — which changes timings but, by the batch tier's
// equivalence guarantee, never changes results.
func WithCellTrace(fn func(CellTraceEvent)) Option {
	return func(c *engineConfig) { c.cellTrace = fn }
}

// engineMetrics holds the engine's pre-resolved metric handles. Handle
// lookup pays a registry mutex, so it happens once here (or once per
// dynamic label value, memoized through the label caches below); the
// per-cell record path touches only lock-free handles.
type engineMetrics struct {
	e   *Engine
	reg *Metrics

	cellWall      *telemetry.Histogram // per-cell tier wall time
	batchWall     *telemetry.Histogram // whole graph-keyed batch wall time
	batchLanes    *telemetry.Histogram // lanes per dispatched batch (occupancy)
	batchCells    *telemetry.Counter   // cells executed as batch lanes
	batchFallback *telemetry.Counter   // cells that left the batch path mid-batch
	routeReplay   *telemetry.Counter   // steppers served from a route book
	routeFresh    *telemetry.Counter   // steppers derived without a route book

	verdicts [5]*telemetry.Counter // indexed by verdict class below

	byKind       labelCache // kind  -> cells counter
	byOracle     labelCache // oracle -> failure counter
	slackByGraph labelCache // graph kind -> Π-slack histogram
}

// Verdict classes of meetpoly_engine_cell_verdicts_total.
const (
	verdictMet = iota
	verdictExhausted
	verdictCanceled
	verdictInvalid
	verdictOther
)

func newEngineMetrics(e *Engine, reg *Metrics) *engineMetrics {
	m := &engineMetrics{e: e, reg: reg}

	// The cache counters read the engine's packed atomic word at
	// snapshot time instead of double-counting here — /metrics and
	// CacheStats (hence /v1/stats) decode the same source and can
	// never drift.
	reg.CounterFunc("meetpoly_engine_cache_hits_total",
		"Prepared-scenario cache hits (repeat preparations of a known graph fingerprint).",
		func() uint64 { return uint64(e.CacheStats().Hits) })
	reg.CounterFunc("meetpoly_engine_cache_misses_total",
		"Prepared-scenario cache misses (first preparation: graph build + coverage check).",
		func() uint64 { return uint64(e.CacheStats().Misses) })
	reg.GaugeFunc("meetpoly_engine_catalog_epoch",
		"Catalog extension epoch; a bump expires every cached route book.",
		e.catalogEpoch.Load)

	m.cellWall = reg.Histogram("meetpoly_engine_cell_wall_ns",
		"Wall time of one sweep cell on the per-cell tiers, in nanoseconds.")
	m.batchWall = reg.Histogram("meetpoly_engine_batch_wall_ns",
		"Wall time of one graph-keyed batch (prepare + lockstep run + judging), in nanoseconds.")
	m.batchLanes = reg.Histogram("meetpoly_engine_batch_lanes",
		"Lanes per dispatched lockstep batch (occupancy).")
	m.batchCells = reg.Counter("meetpoly_engine_batch_cells_total",
		"Sweep cells executed as lanes of the batched tier.")
	m.batchFallback = reg.Counter("meetpoly_engine_batch_fallback_cells_total",
		"Cells of a batch that fell back to per-cell execution (lane rejected or unbatchable).")
	m.routeReplay = reg.Counter("meetpoly_engine_route_replays_total",
		"Deterministic trajectories served through a cached route book.")
	m.routeFresh = reg.Counter("meetpoly_engine_route_fresh_total",
		"Deterministic trajectories derived without a route book (cache off or instance graphs).")

	for i, v := range [...]string{"met", "exhausted", "canceled", "invalid", "other"} {
		m.verdicts[i] = reg.Counter("meetpoly_engine_cell_verdicts_total",
			"Judged sweep cells by outcome class.", telemetry.L("verdict", v))
	}

	m.byKind.init(func(kind string) any {
		return reg.Counter("meetpoly_engine_cells_total",
			"Sweep cells judged, by scenario kind.", telemetry.L("kind", kind))
	})
	m.byOracle.init(func(oracle string) any {
		return reg.Counter("meetpoly_engine_oracle_failures_total",
			"Oracle verdict failures, by oracle.", telemetry.L("oracle", oracle))
	})
	m.slackByGraph.init(func(graph string) any {
		return reg.Histogram("meetpoly_engine_pi_slack_millibits",
			"Observed Pi(n,l) slack of met rendezvous cells, in thousandths of a bit "+
				"(log2(Pi) - log2(max per-agent traversals), clamped at 0), by graph kind.",
			telemetry.L("graph", graph))
	})
	return m
}

// observeJudge records one judged cell: kind and verdict tallies,
// per-oracle failures, and — for met rendezvous cells — the Π-slack
// distribution of its graph kind (ROADMAP item 4's measurement seam).
func (m *engineMetrics) observeJudge(cell SweepCell, cr SweepCellResult) {
	m.byKind.get(cell.Kind).(*telemetry.Counter).Inc()
	out := cr.Outcome
	switch {
	case out.Met:
		m.verdicts[verdictMet].Inc()
	case out.Exhausted:
		m.verdicts[verdictExhausted].Inc()
	case out.Canceled:
		m.verdicts[verdictCanceled].Inc()
	case out.Invalid:
		m.verdicts[verdictInvalid].Inc()
	default:
		m.verdicts[verdictOther].Inc()
	}
	for _, f := range cr.Failures {
		m.byOracle.get(f.Oracle).(*telemetry.Counter).Inc()
	}
	if out.Met && cell.Kind == campaign.KindRendezvous && out.N > 0 && out.MaxPerAgent > 0 {
		slack := m.e.BoundModel().PiSlackLog2(out.N, minLabelBits(cell.Labels), int64(out.MaxPerAgent))
		if slack < 0 {
			slack = 0
		}
		m.slackByGraph.get(cell.Graph.Kind).(*telemetry.Histogram).Observe(uint64(slack * 1000))
	}
}

// labelCache memoizes per-label-value metric handles, so recording
// against a dynamic label (a scenario kind, an oracle name) pays the
// registry mutex once per distinct value, then two lock-free map reads.
type labelCache struct {
	mk func(string) any
	m  sync.Map
}

func (c *labelCache) init(mk func(string) any) { c.mk = mk }

func (c *labelCache) get(key string) any {
	if v, ok := c.m.Load(key); ok {
		return v
	}
	// The registry dedups series, so a racing LoadOrStore loser made
	// the same handle the winner stored.
	v, _ := c.m.LoadOrStore(key, c.mk(key))
	return v
}

// minLabelBits is the binary length of the smallest label — the ℓ of
// Π(n, ℓ), mirroring the campaign oracles' reading of a cell.
func minLabelBits(labels []uint64) int {
	best := 0
	for _, l := range labels {
		n := bits.Len64(l)
		if best == 0 || n < best {
			best = n
		}
	}
	return best
}
