package experiments

import (
	"fmt"
	"sort"

	"meetpoly/internal/core"
	"meetpoly/internal/costmodel"
	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/sched"
	"meetpoly/internal/trajectory"
)

// RVInstance is one rendezvous workload.
type RVInstance struct {
	Name   string
	Graph  *graph.Graph
	S1, S2 int
	L1, L2 labels.Label
}

// DefaultRVInstances returns the measured-rendezvous workload suite:
// asymmetric topologies plus port-shuffled rings (oriented rings with
// rotation-equivalent starts dodge all online adversaries until the first
// differing label bit — see EXPERIMENTS.md E4's notes).
func DefaultRVInstances() []RVInstance {
	return []RVInstance{
		{"path2", graph.Path(2), 0, 1, 1, 2},
		{"path4", graph.Path(4), 0, 3, 2, 5},
		{"path6", graph.Path(6), 0, 5, 3, 4},
		{"ring4shuf", graph.ShufflePorts(graph.Ring(4), 4), 0, 2, 1, 3},
		{"ring5shuf", graph.ShufflePorts(graph.Ring(5), 5), 1, 4, 7, 4},
		{"star4", graph.Star(4), 1, 3, 2, 3},
		{"star6", graph.Star(6), 1, 5, 9, 2},
		{"clique4", graph.Complete(4), 0, 3, 9, 6},
		{"bintree5", graph.BinaryTree(5), 0, 4, 1, 6},
		{"bintree6", graph.BinaryTree(6), 1, 5, 11, 13},
	}
}

// E4Measured runs every instance under every adversary strategy and
// reports the measured meeting cost against the Theorem 3.1 bound.
func E4Measured(env *trajectory.Env, instances []RVInstance, budget int) *Table {
	t := &Table{
		ID:    "E4",
		Title: "measured rendezvous cost per adversary strategy (RV-asynch-poly)",
		Columns: []string{
			"instance", "n", "labels", "strategy", "met", "cost", "in-edge", "log2(bound)",
		},
	}
	names := strategyNames()
	for _, in := range instances {
		bound := core.PiBound(env, in.Graph.N(), in.L1, in.L2)
		for _, name := range names {
			adv := sched.Strategies(2)[name]()
			res, err := core.Rendezvous(in.Graph, in.S1, in.S2, in.L1, in.L2, env, adv, budget)
			if err != nil {
				t.AddRow(in.Name, in.Graph.N(), labelPair(in), name, "error: "+err.Error(), "-", "-", "-")
				continue
			}
			if !res.Met {
				t.AddRow(in.Name, in.Graph.N(), labelPair(in), name,
					"no (budget)", "-", "-", costmodel.ApproxLog2(bound))
				continue
			}
			t.AddRow(in.Name, in.Graph.N(), labelPair(in), name,
				"yes", res.Meeting.Cost, res.Meeting.InEdge, costmodel.ApproxLog2(bound))
		}
	}
	t.Notes = append(t.Notes,
		"measured costs sit far below the worst-case bound: the bound pays for adversaries that exploit the full label structure",
		fmt.Sprintf("budget per run: %d adversary events", budget))
	return t
}

func labelPair(in RVInstance) string { return fmt.Sprintf("(%d,%d)", in.L1, in.L2) }

func strategyNames() []string {
	m := sched.Strategies(2)
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// E6Certified runs the exhaustive lattice adversary on route prefixes of
// the given length and reports the exact worst case over every schedule,
// alongside the strongest online adversary's measured result.
func E6Certified(env *trajectory.Env, instances []RVInstance, prefix int) *Table {
	t := &Table{
		ID:    "E6",
		Title: fmt.Sprintf("exhaustive-adversary certification on %d-move route prefixes", prefix),
		Columns: []string{
			"instance", "forced", "certified-worst-cost", "safest-depth", "avoider-measured",
		},
	}
	for _, in := range instances {
		res, err := core.CertifyInstance(in.Graph, in.S1, in.S2, in.L1, in.L2, env, prefix)
		if err != nil {
			t.AddRow(in.Name, "error: "+err.Error(), "-", "-", "-")
			continue
		}
		measured := "-"
		r, err := core.Rendezvous(in.Graph, in.S1, in.S2, in.L1, in.L2, env,
			&sched.Avoider{}, 8*prefix)
		if err == nil && r.Met {
			measured = fmt.Sprint(r.Meeting.Cost)
		}
		if res.Forced {
			t.AddRow(in.Name, "yes", res.WorstCompleted, res.SafestDepth, measured)
		} else {
			t.AddRow(in.Name, "no (within prefix)", "-", res.SafestDepth, measured)
		}
	}
	t.Notes = append(t.Notes,
		"'forced' certifies that NO schedule — not just the implemented strategies — avoids the meeting within the prefixes",
		"measured avoider cost never exceeds the certified worst case (asserted by the test suite)")
	return t
}

// E10CoverageRamp measures, per family graph, the smallest parameter k
// at which X(k, v) becomes integral from every start, under both catalog
// constructions (DESIGN.md §8's UXS-source ablation): verified compact
// catalogs reach integrality exactly when the guarantee demands (k >= n)
// with tiny P(k), while cubic pseudorandom sequences pay orders of
// magnitude more length for the same coverage.
func E10CoverageRamp(graphs []*graph.Graph, verified *trajectory.Env, cubic *trajectory.Env) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "coverage ramp: smallest k with X(k) integral everywhere, per catalog",
		Columns: []string{"graph", "n", "k* (verified)", "P(k*) verified", "k* (cubic)", "P(k*) cubic"},
	}
	ramp := func(env *trajectory.Env, g *graph.Graph) (int, int) {
		for k := 1; k <= 4*g.N(); k++ {
			ok := true
			lenX := env.LenX(k)
			if !lenX.IsInt64() || lenX.Int64() > 5_000_000 {
				return -1, -1
			}
			for v := 0; v < g.N() && ok; v++ {
				tr, done := trajectory.Run(g, v, env.X(k), int(lenX.Int64())+1)
				if !done || !tr.CoversAllEdges(g) {
					ok = false
				}
			}
			if ok {
				return k, env.Catalog().P(k)
			}
		}
		return -1, -1
	}
	for _, g := range graphs {
		kv, pv := ramp(verified, g)
		kc, pc := ramp(cubic, g)
		t.AddRow(g.Name(), g.N(), kv, pv, kc, pc)
	}
	t.Notes = append(t.Notes,
		"k* <= n certifies the integrality property the proofs need; P(k*) is the price per sweep")
	return t
}

// E4Symmetry documents the oriented-ring symmetry phenomenon as a
// measured table: rotation-equivalent starts dodge every online strategy
// within the budget, while a port shuffle breaks the symmetry.
func E4Symmetry(env *trajectory.Env, budget int) *Table {
	t := &Table{
		ID:      "E4s",
		Title:   "oriented-ring symmetry ablation: identical trajectories are exact translates",
		Columns: []string{"graph", "ports", "strategy", "met within budget", "cost"},
	}
	oriented := graph.Ring(4)
	shuffled := graph.ShufflePorts(graph.Ring(4), 4)
	for _, tc := range []struct {
		g     *graph.Graph
		ports string
	}{{oriented, "oriented"}, {shuffled, "shuffled"}} {
		for _, name := range []string{"round-robin", "avoider"} {
			adv := sched.Strategies(2)[name]()
			res, err := core.Rendezvous(tc.g, 0, 2, 1, 3, env, adv, budget)
			if err != nil {
				t.AddRow("ring4", tc.ports, name, "error", "-")
				continue
			}
			if res.Met {
				t.AddRow("ring4", tc.ports, name, "yes", res.Meeting.Cost)
			} else {
				t.AddRow("ring4", tc.ports, name, "no", "-")
			}
		}
	}
	t.Notes = append(t.Notes,
		"every modified label starts 11, so piece-1 trajectories coincide; on an oriented ring from",
		"rotation-equivalent starts the walks are exact rotations and meeting waits for the first",
		"differing bit — which the exact trajectory definitions place ~1e11 traversals out (table E3)")
	return t
}
