// Certify demonstrates the exhaustive lattice adversary: instead of
// testing rendezvous against a handful of schedules, it decides — by
// dynamic programming over all interleavings of the two agents'
// half-steps — whether ANY schedule the continuous adversary could choose
// avoids the meeting within given route prefixes, and reports the exact
// worst-case meeting cost when it cannot.
package main

import (
	"fmt"
	"log"

	"meetpoly"
)

func main() {
	env := meetpoly.NewEnv(6, 1)

	instances := []struct {
		name   string
		g      *meetpoly.Graph
		s1, s2 int
		l1, l2 meetpoly.Label
	}{
		{"path-2", meetpoly.Path(2), 0, 1, 1, 2},
		{"path-3", meetpoly.Path(3), 0, 2, 1, 2},
		{"star-4", meetpoly.Star(4), 1, 2, 2, 3},
		{"ring-4 (oriented)", meetpoly.Ring(4), 0, 2, 1, 3},
	}
	const prefix = 4000

	fmt.Printf("exhaustive certification on %d-move route prefixes of RV-asynch-poly\n\n", prefix)
	for _, in := range instances {
		meetpoly.EnsureFor(env, in.g)
		res, err := meetpoly.Certify(in.g, in.s1, in.s2, in.l1, in.l2, env, prefix)
		if err != nil {
			log.Fatal(err)
		}
		if res.Forced {
			fmt.Printf("%-18s FORCED: every schedule meets; worst case %d completed traversals "+
				"(longest dodge: %d half-steps)\n", in.name, res.WorstCompleted, res.SafestDepth)
		} else {
			fmt.Printf("%-18s escape exists within the prefix (symmetry or short prefix); "+
				"the Theorem 3.1 guarantee kicks in deeper into the trajectory\n", in.name)
		}
	}
	fmt.Println("\n'FORCED' is a statement about ALL schedules — the verdict an online")
	fmt.Println("adversary test suite can never give.")
}
