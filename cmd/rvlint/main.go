// Command rvlint runs the repo's go/analysis suite (package
// internal/analysis) over Go packages.
//
// It is one binary with two faces:
//
//   - invoked by hand (rvlint [flags] ./packages...), it re-executes
//     itself through the go vet driver, which handles loading, export
//     data and dependency analysis:
//
//     go vet -vettool=<rvlint> [flags] ./packages...
//
//     All flags are forwarded, so -json emits vet's machine-readable
//     diagnostics and -<analyzer>.<flag> reaches individual analyzers
//     (e.g. -determinism.pkgs='^mypkg$'). With no package arguments it
//     defaults to ./...;
//
//   - invoked by go vet itself (with a *.cfg unit file, or the -V /
//     -flags protocol probes), it behaves as a standard unitchecker
//     tool. This also means each analyzer can be run standalone:
//
//     go vet -vettool=$(command -v rvlint) -determinism ./...
//
// The exit status is go vet's: 0 when clean, non-zero when any
// diagnostic is reported.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	rvlint "meetpoly/internal/analysis"
	"meetpoly/internal/buildinfo"
)

func main() {
	// -version must be answered here: invokedByVet treats flag-looking
	// args as the vet protocol's, and drive would forward it to go vet,
	// which has no such flag.
	for _, a := range os.Args[1:] {
		if a == "-version" || a == "--version" {
			fmt.Println(buildinfo.String("rvlint"))
			return
		}
	}
	if invokedByVet(os.Args[1:]) {
		unitchecker.Main(rvlint.All()...) // never returns
	}
	os.Exit(drive(os.Args[1:]))
}

// invokedByVet detects the unitchecker protocol: go vet probes the tool
// with -V=full and -flags, then invokes it once per package with a
// *.cfg file describing the compilation unit.
func invokedByVet(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// drive re-executes the binary under go vet and returns the exit code.
func drive(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvlint: cannot locate own executable: %v\n", err)
		return 2
	}
	hasPattern := false
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			hasPattern = true
			break
		}
	}
	if !hasPattern {
		args = append(args, "./...")
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "rvlint: %v\n", err)
		return 2
	}
	return 0
}
