package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ViewRetainAnalyzer enforces the scheduler's view contract: the
// sched.View an adversary receives in Next is a buffer the runner
// reuses for every event — retaining it (or anything reachable from
// it) across the call aliases live mutable scheduler state and breaks
// determinism the moment the buffer is rewritten.
//
// The check is an intraprocedural escape walk over every function that
// takes a View parameter (matching any type named View in a package
// named sched, so fixtures and the root package's alias both count):
// the parameter and everything derived from it by field selection,
// indexing or address-taking is tainted; storing a tainted value into
// anything that outlives the call — a field, a package variable, a
// channel, a non-local slice or map, an escaping closure, a goroutine,
// or the return value — is a violation. Copies made through method
// calls (View.Agent returns an AgentView by value) are safe and stay
// untainted.
var ViewRetainAnalyzer = &analysis.Analyzer{
	Name:     "viewretain",
	Doc:      "flag adversaries that retain the scheduler's reused sched.View buffer beyond one call",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runViewRetain,
}

func runViewRetain(pass *analysis.Pass) (any, error) {
	rep := newReporter(pass, "viewretain")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || inTestFile(pass.Fset, decl.Pos()) {
			return
		}
		// Methods on View itself are the accessor surface; the escape
		// contract binds their callers, not them.
		if decl.Recv != nil && len(decl.Recv.List) == 1 &&
			namedIn(pass.TypesInfo.TypeOf(decl.Recv.List[0].Type), "sched", "View") {
			return
		}
		seeds := viewParams(pass, decl)
		if len(seeds) == 0 {
			return
		}
		checkRetention(pass, rep, decl, seeds)
	})
	return nil, nil
}

// viewParams returns the function's parameters of type sched.View or
// *sched.View.
func viewParams(pass *analysis.Pass, decl *ast.FuncDecl) map[*types.Var]bool {
	seeds := make(map[*types.Var]bool)
	for _, field := range decl.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !namedIn(t, "sched", "View") {
			continue
		}
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				seeds[v] = true
			}
		}
	}
	return seeds
}

// checkRetention runs the taint walk over one function body.
func checkRetention(pass *analysis.Pass, rep *reporter, decl *ast.FuncDecl, tainted map[*types.Var]bool) {
	info := pass.TypesInfo
	params := make(map[*types.Var]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					params[v] = true
				}
			}
		}
	}
	collect(decl.Recv)
	collect(decl.Type.Params)
	collect(decl.Type.Results)

	var exprTainted func(e ast.Expr) bool
	exprTainted = func(e ast.Expr) bool {
		// A basic-typed value (int, string, bool...) is a scalar copy:
		// retaining it aliases nothing.
		if t := info.TypeOf(e); t != nil {
			if _, basic := types.Unalias(t).Underlying().(*types.Basic); basic {
				return false
			}
		}
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, ok := info.ObjectOf(x).(*types.Var)
			return ok && tainted[v]
		case *ast.SelectorExpr:
			// Field selection stays inside the view's object graph;
			// method values/calls return copies and are handled below.
			if sel, ok := info.Selections[x]; ok && sel.Kind() != types.FieldVal {
				return false
			}
			return exprTainted(x.X)
		case *ast.IndexExpr:
			return exprTainted(x.X)
		case *ast.SliceExpr:
			return exprTainted(x.X)
		case *ast.StarExpr:
			return exprTainted(x.X)
		case *ast.UnaryExpr:
			return exprTainted(x.X)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if exprTainted(el) {
					return true
				}
			}
			return false
		case *ast.CallExpr:
			if isBuiltin(info, x, "append") {
				for _, a := range x.Args {
					if exprTainted(a) {
						return true
					}
				}
				return false
			}
			// A conversion preserves the value; a genuine call returns
			// fresh results (View accessors copy by design).
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				return exprTainted(x.Args[0])
			}
			return false
		case *ast.TypeAssertExpr:
			return exprTainted(x.X)
		}
		return false
	}

	// localVar returns the assignable local (non-parameter) variable an
	// lvalue roots in, or nil when the store lands outside the frame.
	localVar := func(e ast.Expr) *types.Var {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		v, ok := info.ObjectOf(id).(*types.Var)
		if !ok || params[v] || v.Parent() == nil {
			return nil
		}
		if v.Pos() < decl.Body.Pos() || v.Pos() > decl.Body.End() {
			return nil // package-level or captured from an outer scope
		}
		return v
	}

	// walk makes one pass over the body, propagating taint through
	// local assignments; when emit is set it also reports escapes. The
	// phases are separate so the fixpoint iteration does not duplicate
	// diagnostics.
	walk := func(emit bool) (changed bool) {
		report := func(n ast.Node, what string) {
			if emit {
				rep.reportf(n.Pos(), "%s stores view-derived state that outlives the call: the runner reuses the View buffer, so the stored value goes stale; copy what you need instead", what)
			}
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					if len(x.Lhs) != len(x.Rhs) {
						break // tuple from a call: results are untainted
					}
					if !exprTainted(rhs) {
						continue
					}
					lhs := x.Lhs[i]
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if v, ok := info.ObjectOf(id).(*types.Var); ok && !params[v] {
							if !tainted[v] {
								tainted[v] = true
								changed = true
							}
							continue
						}
						report(x, "assignment")
						continue
					}
					if v := localVar(lhs); v != nil {
						if !tainted[v] {
							tainted[v] = true
							changed = true
						}
						continue
					}
					report(x, "assignment")
				}
			case *ast.SendStmt:
				if exprTainted(x.Value) {
					report(x, "channel send")
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if exprTainted(r) {
						report(x, "return")
					}
				}
			case *ast.GoStmt:
				for _, a := range x.Call.Args {
					if exprTainted(a) {
						report(x, "goroutine argument")
					}
				}
			case *ast.FuncLit:
				if immediatelyInvoked(decl.Body, x) {
					return true
				}
				capture := false
				ast.Inspect(x.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if v, ok := info.ObjectOf(id).(*types.Var); ok && tainted[v] {
							capture = true
						}
					}
					return !capture
				})
				if capture {
					report(x, "closure capture")
				}
				return false // captures are the closure's only escape we model
			}
			return true
		})
		return changed
	}

	// Iterate to a fixpoint so taint flows through local chains
	// (u := v; w := u; a.f = w), then report once.
	for range 8 {
		if !walk(false) {
			break
		}
	}
	walk(true)
}

// immediatelyInvoked reports whether lit appears as the callee of a
// call expression (func(){...}() — no retention possible).
func immediatelyInvoked(body *ast.BlockStmt, lit *ast.FuncLit) bool {
	invoked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == lit {
			invoked = true
		}
		return !invoked
	})
	return invoked
}
