package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one key="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L builds a Label; it exists so call sites stay short:
//
//	r.Counter("cells_total", "…", telemetry.L("kind", kind))
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind distinguishes the metric families a Registry can hold.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one (name, labels) time series inside a family. Exactly
// one of the value fields is set, matching the family's kind; cf/gf
// are the callback-backed variants that read external state (e.g. the
// engine's packed cache-stats word) at snapshot time.
type series struct {
	labels   []Label // sorted by key
	rendered string  // `{k="v",…}` or "" — the series map key
	c        *Counter
	g        *Gauge
	h        *Histogram
	cf       func() uint64
	gf       func() int64
}

// family groups every series sharing a metric name; they must agree on
// kind and help (the exposition format emits one HELP/TYPE per name).
type family struct {
	name   string
	kind   Kind
	help   string
	series map[string]*series
}

// Registry is a named-metric registry. Handle lookup (Counter, Gauge,
// Histogram, …) takes a mutex and may allocate, so callers hold the
// returned handle and record through it; the handles themselves are
// lock-free. The same (name, labels) always yields the same handle.
// A Registry is safe for concurrent use; the zero value is not — use
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates the (name, labels) series of the given kind,
// panicking on a kind or help conflict — that is a programming error
// (two call sites disagreeing about what a name means), not a runtime
// condition.
func (r *Registry) lookup(kind Kind, name, help string, labels []Label) *series {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	rendered := renderLabels(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, help: help, series: make(map[string]*series)}
		r.families[name] = f
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q redeclared as %s (was %s)", name, kind, f.kind))
		}
		if f.help != help {
			panic(fmt.Sprintf("telemetry: metric %q redeclared with different help", name))
		}
	}
	s := f.series[rendered]
	if s == nil {
		s = &series{labels: ls, rendered: rendered}
		switch kind {
		case KindCounter:
			s.c = new(Counter)
		case KindGauge:
			s.g = new(Gauge)
		case KindHistogram:
			s.h = new(Histogram)
		}
		f.series[rendered] = s
	}
	return s
}

// Counter returns the counter series (name, labels), creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(KindCounter, name, help, labels).c
}

// Gauge returns the gauge series (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(KindGauge, name, help, labels).g
}

// Histogram returns the histogram series (name, labels), creating it
// on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.lookup(KindHistogram, name, help, labels).h
}

// CounterFunc declares a counter series whose value is read from fn
// at snapshot time instead of being accumulated here — for sources
// that already keep their own atomic tally (the engine's packed
// cache-stats word). fn must be safe for concurrent use and should
// return a monotonically non-decreasing value. Redeclaring the same
// series replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	s := r.lookup(KindCounter, name, help, labels)
	r.mu.Lock()
	s.cf = fn
	r.mu.Unlock()
}

// GaugeFunc declares a gauge series whose value is read from fn at
// snapshot time. fn must be safe for concurrent use; it must not call
// back into this registry (Snapshot holds the registry lock while
// collecting). Redeclaring the same series replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	s := r.lookup(KindGauge, name, help, labels)
	r.mu.Lock()
	s.gf = fn
	r.mu.Unlock()
}

// Point is one series in a snapshot: an immutable copy of its value
// at collection time. Counter points set Value to the count; gauge
// points set Value to the level; histogram points set Count, Sum and
// the per-bucket (non-cumulative) Buckets instead.
type Point struct {
	Name    string
	Labels  []Label
	Kind    Kind
	Value   float64
	Count   uint64
	Sum     uint64
	Buckets []uint64
}

// Snapshot collects every series into an immutable, deterministically
// ordered slice (by name, then rendered labels). Callback-backed
// series are evaluated during collection.
func (r *Registry) Snapshot() []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var pts []Point
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			p := Point{Name: name, Labels: s.labels, Kind: f.kind}
			switch f.kind {
			case KindCounter:
				if s.cf != nil {
					p.Value = float64(s.cf())
				} else {
					p.Value = float64(s.c.Value())
				}
			case KindGauge:
				if s.gf != nil {
					p.Value = float64(s.gf())
				} else {
					p.Value = float64(s.g.Value())
				}
			case KindHistogram:
				p.Count = s.h.count.Load()
				p.Sum = s.h.sum.Load()
				b := make([]uint64, histBuckets)
				for i := range s.h.buckets {
					b[i] = s.h.buckets[i].Load()
				}
				p.Buckets = b
			}
			pts = append(pts, p)
		}
	}
	return pts
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE line per family, then
// each series; histograms expand to cumulative _bucket{le=…} lines
// (bucket upper bounds are 2^i - 1, trailing empty buckets elided, a
// +Inf bucket always present) plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	pts := r.Snapshot()
	var b strings.Builder
	last := ""
	for i := range pts {
		p := &pts[i]
		if p.Name != last {
			last = p.Name
			help := p.Name
			r.mu.Lock()
			if f := r.families[p.Name]; f != nil && f.help != "" {
				help = f.help
			}
			r.mu.Unlock()
			b.WriteString("# HELP ")
			b.WriteString(p.Name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(help))
			b.WriteByte('\n')
			b.WriteString("# TYPE ")
			b.WriteString(p.Name)
			b.WriteByte(' ')
			b.WriteString(p.Kind.String())
			b.WriteByte('\n')
		}
		rendered := renderLabels(p.Labels)
		switch p.Kind {
		case KindCounter, KindGauge:
			b.WriteString(p.Name)
			b.WriteString(rendered)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(p.Value, 'g', -1, 64))
			b.WriteByte('\n')
		case KindHistogram:
			top := 0
			for i, n := range p.Buckets {
				if n != 0 {
					top = i
				}
			}
			var cum uint64
			for i := 0; i <= top && i < histBuckets-1; i++ {
				cum += p.Buckets[i]
				writeBucket(&b, p.Name, p.Labels,
					strconv.FormatUint(BucketBound(i), 10), cum)
			}
			writeBucket(&b, p.Name, p.Labels, "+Inf", p.Count)
			b.WriteString(p.Name)
			b.WriteString("_sum")
			b.WriteString(rendered)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(p.Sum, 10))
			b.WriteByte('\n')
			b.WriteString(p.Name)
			b.WriteString("_count")
			b.WriteString(rendered)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(p.Count, 10))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeBucket emits one cumulative histogram bucket line, splicing the
// le label after the series' own (sorted) labels.
func writeBucket(b *strings.Builder, name string, labels []Label, le string, cum uint64) {
	b.WriteString(name)
	b.WriteString("_bucket{")
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteString(`",`)
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"} `)
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

// renderLabels renders a sorted label set as `{k="v",…}`, or "" for
// the empty set. The rendering doubles as the series map key, so it
// must be injective over label sets — escaping guarantees that.
func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var valueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeValue escapes a label value per the exposition format.
func escapeValue(v string) string { return valueEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeHelp escapes a HELP docstring per the exposition format.
func escapeHelp(v string) string { return helpEscaper.Replace(v) }
