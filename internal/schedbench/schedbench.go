// Package schedbench is the scheduler's microbenchmark harness, shared
// by the test-suite benchmark BenchmarkRunnerHalfSteps and the
// cmd/rvbench CLI so both measure exactly the same workload: two
// co-rotating agents on a 6-ring driven by the round-robin adversary,
// one adversary event (= one half-step) per benchmark iteration.
//
// The package lives outside internal/sched because it imports the
// testing package (testing.Benchmark powers rvbench's standalone
// measurements), which a library package must not pull in.
package schedbench

import (
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/sched"
)

// endless is an infinite port-0 stepper: the agents co-rotate around
// the ring forever, so every benchmark iteration is a pure half-step
// with no meetings after the first contact episode and no halts.
type endless struct{}

func (endless) Next(deg, entry int) (int, bool) { return 0, true }

// HalfSteps returns a benchmark function that executes exactly b.N
// adversary events on one runner. force selects the execution core:
// false = direct-dispatch stepper core, true = goroutine core
// (sched.Config.ForceBlocking). ns/op is therefore ns per half-step.
func HalfSteps(force bool) func(b *testing.B) {
	return func(b *testing.B) {
		g := graph.Ring(6)
		r, err := sched.NewRunner(sched.Config{
			Graph:  g,
			Starts: []int{0, 3},
			Agents: []sched.Agent{
				&sched.Walker{Stepper: endless{}},
				&sched.Walker{Stepper: endless{}},
			},
			InitiallyAwake: []int{0, 1},
			MaxSteps:       b.N,
			ForceBlocking:  force,
		}, &sched.RoundRobin{})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		b.ReportAllocs()
		b.ResetTimer()
		sum := r.Run()
		if sum.Steps != b.N {
			b.Fatalf("executed %d of %d half-steps", sum.Steps, b.N)
		}
	}
}

// Measure runs the half-step benchmark standalone (outside go test) and
// returns ns, bytes and allocations per half-step.
func Measure(force bool) (nsPerOp float64, bytesPerOp, allocsPerOp int64) {
	res := testing.Benchmark(HalfSteps(force))
	return float64(res.T.Nanoseconds()) / float64(res.N), res.AllocedBytesPerOp(), res.AllocsPerOp()
}
