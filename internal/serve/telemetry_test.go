package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"meetpoly"
)

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the sample value of an exact series line
// ("name{labels} value" or "name value"); ok is false when absent.
func metricValue(exposition, series string) (string, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		if name, val, found := strings.Cut(line, " "); found && name == series {
			return val, true
		}
	}
	return "", false
}

// TestMetricsEndpoint runs one checkpointed sweep through the service
// and checks GET /metrics: valid exposition shape (every series has
// HELP and TYPE, no duplicate series), and the request, engine-cache
// and checkpoint-durability series all moved.
func TestMetricsEndpoint(t *testing.T) {
	// One registry spans engine and service, exactly as rvserved wires
	// it — that is what puts the engine cache series on /metrics.
	reg := meetpoly.NewMetrics()
	eng := meetpoly.NewEngine(meetpoly.WithMaxN(6), meetpoly.WithSeed(1), meetpoly.WithTelemetry(reg))
	srv := New(Config{Engine: eng, Metrics: reg, CheckpointRoot: t.TempDir(), FlushEvery: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(serveSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d", resp.StatusCode)
	}

	exp := scrape(t, ts.URL)

	// Exposition grammar: every sample line's family is announced by
	// HELP and TYPE, and no series repeats.
	help, typ := map[string]bool{}, map[string]bool{}
	seen := map[string]bool{}
	for _, line := range strings.Split(exp, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			help[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			typ[strings.Fields(rest)[0]] = true
			continue
		}
		series, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("sample line without a value: %q", line)
		}
		if seen[series] {
			t.Fatalf("duplicate series %q", series)
		}
		seen[series] = true
		family := series
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		family = strings.TrimSuffix(family, "_bucket")
		family = strings.TrimSuffix(family, "_sum")
		family = strings.TrimSuffix(family, "_count")
		if !help[family] || !typ[family] {
			t.Errorf("series %q has no HELP/TYPE for family %q", series, family)
		}
	}

	for series, want := range map[string]string{
		"meetpoly_serve_sweeps_served_total":               "1",
		"meetpoly_serve_inflight_sweeps":                   "0",
		`meetpoly_serve_requests_total{endpoint="report"}`: "1",
	} {
		if got, ok := metricValue(exp, series); !ok || got != want {
			t.Errorf("%s = %q (present %v), want %s", series, got, ok, want)
		}
	}
	for _, series := range []string{
		"meetpoly_engine_cache_hits_total",
		"meetpoly_engine_cache_misses_total",
		"meetpoly_serve_cells_executed_total",
		"meetpoly_serve_checkpoint_flushes_total",
		"meetpoly_serve_checkpoint_recorded_cells_total",
	} {
		val, ok := metricValue(exp, series)
		if !ok {
			t.Errorf("series %s missing from exposition", series)
			continue
		}
		if val == "0" {
			t.Errorf("%s = 0, want movement after a checkpointed sweep", series)
		}
	}
}

// TestStatsProjectsTelemetry pins the satellite-3 contract: /v1/stats
// is a projection of the same telemetry handles /metrics renders, so
// the two views agree exactly — same served count, same inflight, and
// cache stats matching the engine counter series.
func TestStatsProjectsTelemetry(t *testing.T) {
	reg := meetpoly.NewMetrics()
	eng := meetpoly.NewEngine(meetpoly.WithMaxN(6), meetpoly.WithSeed(1), meetpoly.WithTelemetry(reg))
	srv := New(Config{Engine: eng, Metrics: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(serveSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/sweep/report", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Served   int64 `json:"served"`
		Inflight int   `json:"inflight"`
		Cache    struct {
			Hits   int `json:"Hits"`
			Misses int `json:"Misses"`
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 2 {
		t.Fatalf("stats served = %d, want 2", st.Served)
	}

	exp := scrape(t, ts.URL)
	checks := map[string]int64{
		"meetpoly_serve_sweeps_served_total": st.Served,
		"meetpoly_serve_inflight_sweeps":     int64(st.Inflight),
		"meetpoly_engine_cache_hits_total":   int64(st.Cache.Hits),
		"meetpoly_engine_cache_misses_total": int64(st.Cache.Misses),
	}
	for series, want := range checks {
		got, ok := metricValue(exp, series)
		if !ok {
			t.Errorf("series %s missing", series)
			continue
		}
		gotF, err := strconv.ParseFloat(got, 64)
		if err != nil {
			t.Errorf("series %s value %q: %v", series, got, err)
			continue
		}
		if int64(gotF) != want {
			t.Errorf("%s = %d, /v1/stats says %d", series, int64(gotF), want)
		}
	}
}

// TestRefusalCounters drives a 413 (cell cap) and a 503 (draining) and
// checks each lands on its labeled refusal counter.
func TestRefusalCounters(t *testing.T) {
	reg := meetpoly.NewMetrics()
	srv := New(Config{Engine: newServeEngine(), MaxCells: 1, Metrics: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(serveSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap sweep status %d, want 413", resp.StatusCode)
	}

	exp := scrape(t, ts.URL)
	if got, ok := metricValue(exp, `meetpoly_serve_refusals_total{code="413"}`); !ok || got != "1" {
		t.Errorf(`refusals{code=413} = %q (present %v), want 1`, got, ok)
	}
}
