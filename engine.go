package meetpoly

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"meetpoly/internal/baseline"
	"meetpoly/internal/campaign"
	"meetpoly/internal/core"
	"meetpoly/internal/costmodel"
	"meetpoly/internal/esst"
	"meetpoly/internal/sched"
	"meetpoly/internal/sgl"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

// Catalog supplies exploration sequences per size parameter (the
// paper's R(k, v)); see internal/uxs for the contract and the provided
// implementations (family-verified compact catalogs, pseudorandom
// cubic-length formulas).
type Catalog = uxs.Catalog

// Engine executes Scenarios. Build one with NewEngine and share it: the
// engine owns a single verified exploration-sequence catalog behind a
// mutex, so concurrent runs reuse verified sequences instead of
// re-verifying them per call. The zero value is not usable.
type Engine struct {
	env           *trajectory.Env
	obs           Observer
	parallelism   int
	autoExtend    bool
	forceBlocking bool

	// mu guards catalog coverage checks and extensions; sequence reads
	// are internally synchronized by the catalog itself.
	mu sync.Mutex
}

// engineConfig collects option state before construction.
type engineConfig struct {
	catalog        Catalog
	maxN           int
	seed           int64
	obs            Observer
	parallelism    int
	autoExtend     bool
	directDispatch bool
}

// Option configures NewEngine.
type Option func(*engineConfig)

// WithCatalog supplies an explicit exploration-sequence catalog,
// overriding WithMaxN/WithSeed.
func WithCatalog(cat Catalog) Option { return func(c *engineConfig) { c.catalog = cat } }

// WithMaxN sets the size ceiling of the default verified catalog's
// graph family (default 6).
func WithMaxN(n int) Option { return func(c *engineConfig) { c.maxN = n } }

// WithSeed sets the seed of the default verified catalog (default 1).
func WithSeed(seed int64) Option { return func(c *engineConfig) { c.seed = seed } }

// WithObserver attaches an execution observer. The engine serializes
// the callbacks, so one observer value may watch a whole RunBatch.
func WithObserver(obs Observer) Option { return func(c *engineConfig) { c.obs = obs } }

// WithParallelism caps the worker pool RunBatch fans out over
// (default: GOMAXPROCS).
func WithParallelism(n int) Option { return func(c *engineConfig) { c.parallelism = n } }

// WithAutoExtend controls what happens when a scenario's graph is
// outside the verified catalog's family: extend the family and
// re-verify (true, the default), or fail the run with
// ErrCatalogUncovered (false) — the right choice for engines shared by
// many concurrent workloads, where an extension invalidates cached
// sequences for everyone.
func WithAutoExtend(on bool) Option { return func(c *engineConfig) { c.autoExtend = on } }

// WithDirectDispatch selects the scheduler's execution core (DESIGN.md
// §2.2, "execution model"). On (the default), agents implementing the
// scheduler's state-machine interface are dispatched inline on the
// runner's goroutine — the zero-handoff fast path every built-in
// algorithm uses. Off forces the blocking goroutine core for every
// agent. The two cores are observationally identical (the differential
// test suite and the sweep cross-check oracle enforce it); turning the
// fast path off exists for exactly those comparisons.
func WithDirectDispatch(on bool) Option { return func(c *engineConfig) { c.directDispatch = on } }

// NewEngine builds an engine. With no options it verifies a compact
// exploration catalog on the standard graph families up to 6 nodes,
// exactly like NewEnv(6, 1).
func NewEngine(opts ...Option) *Engine {
	cfg := engineConfig{maxN: 6, seed: 1, parallelism: runtime.GOMAXPROCS(0), autoExtend: true,
		directDispatch: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.catalog == nil {
		cfg.catalog = uxs.NewVerified(uxs.DefaultFamily(cfg.maxN), cfg.seed)
	}
	if cfg.parallelism < 1 {
		cfg.parallelism = 1
	}
	e := &Engine{
		env:           trajectory.NewEnv(cfg.catalog),
		parallelism:   cfg.parallelism,
		autoExtend:    cfg.autoExtend,
		forceBlocking: !cfg.directDispatch,
	}
	if cfg.obs != nil {
		e.obs = &lockedObserver{inner: cfg.obs}
	}
	return e
}

// engineOver wraps an existing environment for the deprecated free
// functions, preserving their auto-extending single-call behaviour.
func engineOver(env *Env) *Engine {
	return &Engine{env: env, parallelism: 1, autoExtend: true}
}

// Env returns the engine's trajectory environment, for interoperating
// with cost-model queries such as PiBound.
func (e *Engine) Env() *Env { return e.env }

// ensureCovered makes sure the catalog's integrality guarantee applies
// to g. Verified catalogs recognize structurally identical family
// members (so scenario-rebuilt graphs cost nothing); genuinely new
// graphs either extend the family or fail, per WithAutoExtend. Formula
// catalogs cover probabilistically and always pass.
func (e *Engine) ensureCovered(g *Graph) error {
	v, ok := e.env.Catalog().(*uxs.Verified)
	if !ok {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if v.Covers(g) || v.CoversEqual(g) {
		return nil
	}
	if !e.autoExtend {
		return fmt.Errorf("graph %v (n=%d, family max %d): %w",
			g, g.N(), v.MaxN(), ErrCatalogUncovered)
	}
	v.Extend(g)
	return nil
}

// Result is the outcome of one scenario execution. Exactly one of the
// per-kind fields is non-nil, matching Scenario.Kind.
type Result struct {
	Scenario   Scenario
	Rendezvous *RendezvousResult
	Baseline   *BaselineResult
	ESST       *ESSTResult
	SGL        *SGLResult
	Cert       *CertResult
}

// prepare builds, validates and catalog-covers a scenario exactly once,
// returning the resolved graph and adversary for execution.
func (e *Engine) prepare(sc Scenario) (*Graph, Adversary, error) {
	g, err := sc.BuildGraph()
	if err != nil {
		return nil, nil, err
	}
	if err := sc.validateWith(g); err != nil {
		return nil, nil, err
	}
	if err := e.ensureCovered(g); err != nil {
		return nil, nil, err
	}
	adv, err := sc.resolveAdversary()
	if err != nil {
		return nil, nil, err
	}
	return g, adv, nil
}

// Run validates and executes one scenario. The context cancels the run
// between scheduler events (and between certifier lattice rows); the
// returned error then wraps both ErrCanceled and ctx.Err(). A run that
// consumes its whole budget before reaching its goal returns the
// partial result alongside an error wrapping ErrBudgetExhausted.
func (e *Engine) Run(ctx context.Context, sc Scenario) (*Result, error) {
	g, adv, err := e.prepare(sc)
	if err != nil {
		return nil, err
	}
	return e.runPrepared(ctx, sc, g, adv)
}

// runPrepared executes a scenario whose graph, validity and catalog
// coverage prepare has already resolved.
func (e *Engine) runPrepared(ctx context.Context, sc Scenario, g *Graph, adv Adversary) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w (%w)", sc.Name, ErrCanceled, err)
	}
	opts := sched.RunOpts{Ctx: ctx, Observer: e.obs, ForceBlocking: e.forceBlocking}
	res := &Result{Scenario: sc}

	// finish maps scheduler-level outcomes to the typed sentinels. A
	// run that reached its goal succeeds even if the context fired just
	// afterwards (the result is complete; cancellation only matters for
	// work cut short). Only a run that actually consumed its budget
	// reports ErrBudgetExhausted — a goal missed because the adversary
	// rested or every agent halted would not be cured by a larger
	// budget, so it gets a distinct error.
	finish := func(sum Summary, goalMet bool, miss string) error {
		if goalMet {
			return nil
		}
		if sum.Canceled {
			return fmt.Errorf("scenario %q: %w (%w)", sc.Name, ErrCanceled, ctx.Err())
		}
		if sum.Exhausted {
			return fmt.Errorf("scenario %q: %s within %d events: %w",
				sc.Name, miss, sc.Budget, ErrBudgetExhausted)
		}
		return fmt.Errorf("scenario %q: %s after %d of %d events: run ended early (adversary rested or agents halted)",
			sc.Name, miss, sum.Steps, sc.Budget)
	}

	switch sc.Kind {
	case ScenarioRendezvous:
		r, err := core.RendezvousWith(opts, g, sc.Starts[0], sc.Starts[1],
			sc.Labels[0], sc.Labels[1], e.env, adv, sc.Budget)
		if err != nil {
			return nil, err
		}
		res.Rendezvous = r
		return res, finish(r.Summary, r.Met, "no meeting")
	case ScenarioBaseline:
		r, err := baseline.RendezvousWith(opts, g, sc.Starts[0], sc.Starts[1],
			sc.Labels[0], sc.Labels[1], e.env, adv, sc.Budget)
		if err != nil {
			return nil, err
		}
		res.Baseline = r
		return res, finish(r.Summary, r.Met, "no meeting")
	case ScenarioESST:
		r, err := esst.ExploreWith(opts, g, sc.Starts[0], sc.Starts[1],
			e.env.Catalog(), adv, sc.Budget)
		if err != nil {
			return nil, err
		}
		res.ESST = r
		return res, finish(r.Summary, r.Done, "exploration did not terminate")
	case ScenarioSGL:
		r, err := sgl.Run(sgl.Config{
			Graph:         g,
			Starts:        sc.Starts,
			Labels:        sc.Labels,
			Values:        sc.Values,
			Env:           e.env,
			Adversary:     adv,
			MaxSteps:      sc.Budget,
			Context:       ctx,
			Observer:      e.obs,
			ForceBlocking: e.forceBlocking,
		})
		if err != nil {
			return nil, err
		}
		res.SGL = r
		return res, finish(r.Summary, r.AllOutput, "not all agents output")
	case ScenarioCertify:
		r, err := core.CertifyInstanceWith(opts, g, sc.Starts[0], sc.Starts[1],
			sc.Labels[0], sc.Labels[1], e.env, sc.Moves)
		if err != nil {
			return nil, err
		}
		res.Cert = &r
		return res, nil
	default:
		// Unreachable: Validate rejects unknown kinds.
		return nil, fmt.Errorf("scenario %q: unknown kind %q: %w", sc.Name, sc.Kind, ErrInvalidScenario)
	}
}

// BatchResult pairs one scenario of a RunBatch with its outcome.
type BatchResult struct {
	Index    int
	Scenario Scenario
	// Graph is the built graph the run executed (nil when the build or
	// validation failed). Consumers that need graph facts — campaign
	// oracles read N and M — use it instead of rebuilding the spec.
	Graph  *Graph
	Result *Result
	Err    error
}

// RunBatch executes the scenarios concurrently over a worker pool of
// WithParallelism size and returns one BatchResult per scenario, in
// input order. All runs share the engine's verified catalog; graphs
// outside the family are resolved (extended or rejected, per
// WithAutoExtend) up front, so no extension invalidates sequences while
// other scenarios are in flight. Cancellation of ctx aborts the
// not-yet-finished runs, each reporting ErrCanceled.
func (e *Engine) RunBatch(ctx context.Context, scs []Scenario) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(scs))
	// Pre-flight sequentially: validation, graph builds and catalog
	// coverage happen once per scenario, before any run is in flight.
	type prepared struct {
		idx int
		g   *Graph
		adv Adversary
	}
	runnable := make([]prepared, 0, len(scs))
	for i, sc := range scs {
		out[i] = BatchResult{Index: i, Scenario: sc}
		g, adv, err := e.prepare(sc)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Graph = g
		runnable = append(runnable, prepared{idx: i, g: g, adv: adv})
	}
	workers := e.parallelism
	if workers > len(runnable) {
		workers = len(runnable)
	}
	if workers < 1 {
		return out
	}
	jobs := make(chan prepared)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for p := range jobs {
				res, err := e.runPrepared(ctx, scs[p.idx], p.g, p.adv)
				out[p.idx].Result = res
				out[p.idx].Err = err
			}
		}()
	}
	for _, p := range runnable {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	return out
}

// BoundModel returns the paper's cost model bound to the concrete
// exploration-sequence lengths of the engine's catalog: the Π(n, ℓ) this
// model evaluates is the exact guarantee for scenarios this engine runs.
// Campaign oracles are parameterized by it.
func (e *Engine) BoundModel() *costmodel.Model {
	return costmodel.NewFromLengths(func(k int) int { return e.env.Catalog().P(k) })
}

// Sweep expands a campaign spec into scenarios, executes them over the
// engine's worker pool, checks every run against the default paper-bound
// oracle suite (termination, result consistency, Π/baseline/ESST cost
// bounds, lemma inequalities), and aggregates the results. The returned
// report is complete even when oracles fail — check Report.OK, and
// replay any failure with ReplayCell and its reported seed string.
//
// The error is non-nil only for a malformed spec; per-run failures are
// data, not errors.
func (e *Engine) Sweep(ctx context.Context, spec SweepSpec) (*SweepReport, error) {
	return e.SweepWithOracles(ctx, spec, campaign.DefaultOracles(e.BoundModel())...)
}

// SweepWithOracles is Sweep with an explicit oracle suite, for callers
// that add domain-specific predicates (or inject failing ones to test
// the replay loop).
func (e *Engine) SweepWithOracles(ctx context.Context, spec SweepSpec, oracles ...SweepOracle) (*SweepReport, error) {
	cells, scs, err := ExpandSweep(spec)
	if err != nil {
		return nil, err
	}
	brs := e.RunBatch(ctx, scs)
	results := make([]SweepCellResult, len(cells))
	// Judging fans out over the worker pool too: oracle suites may
	// re-execute cells (CrossCheckOracle), so sequential judging would
	// serialize work RunBatch just parallelized. Oracles are documented
	// to be safe for concurrent Check calls.
	workers := e.parallelism
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = e.judge(cells[i], brs[i], oracles)
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return campaign.BuildReport(spec, results, nil), nil
}

// judge classifies one batch result and runs the oracle suite over it.
func (e *Engine) judge(cell SweepCell, br BatchResult, oracles []SweepOracle) SweepCellResult {
	out := sweepOutcome(cell, br)
	cr := SweepCellResult{Cell: cell, Outcome: out}
	for _, o := range oracles {
		if err := o.Check(cell, out); err != nil {
			cr.Failures = append(cr.Failures, campaign.OracleFailure{Oracle: o.Name(), Err: err.Error()})
		}
	}
	return cr
}

// ReplayCell re-derives the single cell a replay seed string identifies
// (spec must be the campaign it came from), executes it, and re-checks
// the default oracle suite — the one-seed-string reproduction loop for
// sweep failures. Use ReplayCellWithOracles to reproduce a failure of a
// custom suite.
func (e *Engine) ReplayCell(ctx context.Context, spec SweepSpec, seed string) (*SweepCellResult, error) {
	return e.ReplayCellWithOracles(ctx, spec, seed, campaign.DefaultOracles(e.BoundModel())...)
}

// ReplayCellWithOracles is ReplayCell with an explicit oracle suite.
func (e *Engine) ReplayCellWithOracles(ctx context.Context, spec SweepSpec, seed string, oracles ...SweepOracle) (*SweepCellResult, error) {
	cell, err := campaign.Replay(spec, seed)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrInvalidScenario)
	}
	sc := CellScenario(cell)
	res, runErr := e.Run(ctx, sc)
	cr := e.judge(cell, BatchResult{Index: cell.Index, Scenario: sc, Result: res, Err: runErr}, oracles)
	return &cr, nil
}
