// Teamgossip runs Algorithm SGL (§4 of the paper) for a team of three
// agents that has to gossip: each agent starts with a private value and
// every agent must end up with all values — plus, for free, the team
// size, an elected leader and new names 1..k (perfect renaming).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"meetpoly"
)

func main() {
	eng := meetpoly.NewEngine(meetpoly.WithMaxN(6), meetpoly.WithSeed(1))

	sc := meetpoly.Scenario{
		Kind:   meetpoly.ScenarioSGL,
		Graph:  meetpoly.GraphSpec{Kind: "star", N: 5},
		Starts: []int{1, 2, 3},
		Labels: []meetpoly.Label{4, 2, 7},
		Values: []string{"north", "east", "south"},
		Budget: 40_000_000,
	}
	res, err := eng.Run(context.Background(), sc)
	if err != nil && !errors.Is(err, meetpoly.ErrBudgetExhausted) {
		log.Fatal(err)
	}
	g, _ := sc.BuildGraph()

	sgl := res.SGL
	fmt.Printf("team of %d agents on %s, total cost %d traversals\n",
		len(sgl.Agents), g, sgl.TotalCost)
	for _, a := range sgl.Agents {
		fmt.Printf("\nagent L%d (final state: %s)\n", a.Label, a.State)
		fmt.Printf("  team size : %d\n", a.TeamSize)
		fmt.Printf("  leader    : L%d\n", a.Leader)
		fmt.Printf("  new name  : %d\n", a.NewName)
		fmt.Printf("  gossip    : ")
		for _, l := range a.Output {
			fmt.Printf("L%d=%q ", l, a.Values[l])
		}
		fmt.Println()
	}
	fmt.Println("\nEvery agent holds the complete value set and KNOWS it is complete —")
	fmt.Println("that awareness (Strong Global Learning) is what Theorem 4.1 adds over")
	fmt.Println("mere eventual dissemination.")
}
