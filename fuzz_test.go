package meetpoly

import (
	"errors"
	"testing"
)

// Native fuzz targets hardening the declarative input surface: whatever
// bytes arrive as scenario JSON or adversary spec strings, the parsers
// must either succeed or return an error wrapping ErrInvalidScenario —
// never panic, never return an untyped failure. Run the full fuzzers
// with:
//
//	go test -fuzz=FuzzScenarioFromJSON -fuzztime=30s .
//	go test -fuzz=FuzzParseAdversary  -fuzztime=30s .

func FuzzScenarioFromJSON(f *testing.F) {
	// Seed corpus: one valid scenario per kind, plus representative
	// malformed inputs (truncated JSON, wrong types, out-of-range and
	// oversized parameters, bad adversary specs).
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"path","n":4},"starts":[0,3],"labels":[2,5],"budget":1000}`))
	f.Add([]byte(`{"kind":"baseline","graph":{"kind":"ring","n":4},"starts":[0,2],"labels":[1,2],"budget":1000}`))
	f.Add([]byte(`{"kind":"esst","graph":{"kind":"star","n":5},"starts":[1,3],"budget":1000}`))
	f.Add([]byte(`{"kind":"sgl","graph":{"kind":"clique","n":4},"starts":[0,1,2],"labels":[3,1,7],"budget":1000}`))
	f.Add([]byte(`{"kind":"certify","graph":{"kind":"path","n":3},"starts":[0,2],"labels":[1,2],"moves":50}`))
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"grid","rows":2,"cols":3},"starts":[0,5],"labels":[2,5],"budget":9,"adversary":"biased:1,5"}`))
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"tree","n":5,"seed":5,"shuffle":true},"starts":[0,4],"labels":[2,5],"budget":9}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"kind":"teleport"}`))
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"clique","n":1000000000},"starts":[0,1],"labels":[1,2],"budget":1}`))
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"grid","rows":-3,"cols":-9},"starts":[0,1],"labels":[1,2],"budget":1}`))
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"lollipop","rows":4611686018427387904,"cols":4611686018427387904},"starts":[0,1],"labels":[1,2],"budget":1}`))
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"hypercube","n":63},"starts":[0,1],"labels":[1,2],"budget":1}`))
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"path","n":4},"starts":[0,0],"labels":[1,1],"budget":-5}`))
	f.Add([]byte(`{"kind":"sgl","graph":{"kind":"path","n":4},"starts":[0,3],"labels":[1],"values":["a","b"],"budget":1}`))
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"path","n":4},"starts":[0,3],"labels":[2,5],"budget":9,"adversary":"biased:1,5,9"}`))
	// Registered extensions (the test suite's custom kinds/adversaries)
	// and the latewake agent parameter must hold the same contract.
	f.Add([]byte(`{"kind":"testprobe","graph":{"kind":"testwheel","n":6},"starts":[1,3],"labels":[2,5],"budget":100}`))
	f.Add([]byte(`{"kind":"testprobe","graph":{"kind":"testwheel","n":3},"starts":[0,1],"labels":[1,2],"budget":1}`))
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"testwheel","n":2049},"starts":[0,1],"labels":[1,2],"budget":1}`))
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"path","n":4},"starts":[0,3],"labels":[2,5],"budget":9,"adversary":"testfavor:1"}`))
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"path","n":4},"starts":[0,3],"labels":[2,5],"budget":9,"adversary":"testflake:x"}`))
	f.Add([]byte(`{"kind":"esst","graph":{"kind":"ring","n":4},"starts":[0,2],"budget":9,"adversary":"latewake:50:1"}`))
	f.Add([]byte(`{"kind":"rendezvous","graph":{"kind":"path","n":4},"starts":[0,3],"labels":[2,5],"budget":9,"adversary":"latewake:50:9"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ScenarioFromJSON(data)
		if err != nil {
			if !errors.Is(err, ErrInvalidScenario) {
				t.Fatalf("non-typed error %v for input %q", err, data)
			}
			return
		}
		// An accepted scenario must re-serialize and still validate.
		out, err := sc.JSON()
		if err != nil {
			t.Fatalf("accepted scenario does not serialize: %v", err)
		}
		if _, err := ScenarioFromJSON(out); err != nil {
			t.Fatalf("accepted scenario does not round-trip: %v\n%s", err, out)
		}
	})
}

func FuzzParseAdversary(f *testing.F) {
	for _, s := range []string{
		"", "roundrobin", "round-robin", "avoider",
		"random", "random:7", "random:-9223372036854775808",
		"biased", "biased:1,5", "biased:0,0", "biased:1,-2", "biased:,",
		"latewake", "late-wake:200", "latewake:-1", "latewake:99999999999999999999",
		"latewake:50:1", "late-wake:50:0", "latewake:5:-1", "latewake:1:2:3", "latewake::",
		"chaos", ":", "random:", "biased:",
		// Registered extensions parse through the same registry path and
		// must hold the same typed-error contract as built-ins.
		"testflake", "testflake:9", "testflake:nope",
		"testfavor", "testfavor:1", "testfavor:-1", "testfavor:x",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		adv, err := ParseAdversary(spec)
		if err != nil {
			if !errors.Is(err, ErrInvalidScenario) {
				t.Fatalf("non-typed error %v for spec %q", err, spec)
			}
			return
		}
		if adv == nil {
			t.Fatalf("nil adversary without error for spec %q", spec)
		}
	})
}
