// Command esstsim runs Procedure ESST (exploration with a
// semi-stationary token) on a chosen graph, or regenerates table E5.
// Flags map 1:1 onto a serialized meetpoly.Scenario (-dump / -scenario).
//
// Usage:
//
//	esstsim -graph ring -n 7 -explorer 0 -token 3
//	esstsim -graph clique -n 5 -trace
//	esstsim -table E5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"meetpoly"
	"meetpoly/internal/buildinfo"
	"meetpoly/internal/esst"
	"meetpoly/internal/experiments"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	gkind := flag.String("graph", "ring", "path|ring|star|clique|bintree|random")
	n := flag.Int("n", 6, "graph size")
	seed := flag.Int64("seed", 1, "seed for random graphs and the catalog")
	ex := flag.Int("explorer", 0, "explorer start node")
	tok := flag.Int("token", -1, "token node (-1 = last node)")
	advName := flag.String("adv", "roundrobin",
		"roundrobin|avoider|random[:seed]|biased[:w1,w2]|latewake[:hold[:agent]]|any registered family")
	budget := flag.Int("budget", 50_000_000, "scheduler event budget")
	table := flag.Bool("table", false, "print table E5 over the default instance suite")
	famMax := flag.Int("family", 8, "catalog family max size")
	scenarioFile := flag.String("scenario", "", "run a serialized scenario JSON file instead of flags")
	dump := flag.Bool("dump", false, "print the scenario JSON implied by the flags and exit")
	trace := flag.Bool("trace", false, "stream traversal/meeting/phase events while running")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("esstsim"))
		return
	}

	opts := []meetpoly.Option{meetpoly.WithMaxN(*famMax), meetpoly.WithSeed(*seed)}
	if *trace {
		opts = append(opts, meetpoly.WithObserver(meetpoly.NewTraceObserver(os.Stdout)))
	}
	eng := meetpoly.NewEngine(opts...)

	if *table {
		experiments.E5ESST(eng.Env().Catalog(), experiments.DefaultESSTInstances(), *budget).Render(os.Stdout)
		return
	}

	var sc meetpoly.Scenario
	if *scenarioFile != "" {
		var err error
		sc, err = meetpoly.LoadScenarioFile(*scenarioFile, meetpoly.ScenarioESST)
		if err != nil {
			fatal(err)
		}
	} else {
		spec := meetpoly.GraphSpec{Kind: *gkind, N: *n, Seed: *seed}
		g, err := spec.Build()
		if err != nil {
			fatal(err)
		}
		tokNode := *tok
		if tokNode < 0 {
			tokNode = g.N() - 1
		}
		sc = meetpoly.Scenario{
			Name:      "esstsim",
			Kind:      meetpoly.ScenarioESST,
			Graph:     spec,
			Starts:    []int{*ex, tokNode},
			Adversary: *advName,
			Budget:    *budget,
		}
	}
	if *dump {
		data, err := sc.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", data)
		return
	}

	res, err := eng.Run(context.Background(), sc)
	if res == nil {
		fatal(err)
	}
	g, gerr := sc.BuildGraph()
	if gerr != nil {
		fatal(gerr)
	}
	eres := res.ESST
	fmt.Printf("graph=%s explorer@%d token@%d\n", g, sc.Starts[0], sc.Starts[1])
	if !eres.Done {
		fmt.Println("procedure did not terminate within the budget")
		os.Exit(1)
	}
	fmt.Printf("terminated in phase %d (Theorem 2.1 bound: 9n+3 = %d)\n", eres.Phase, 9*g.N()+3)
	fmt.Printf("cost: %d traversals (bound for that phase: %d)\n",
		eres.Cost, esst.CostBound(eng.Env().Catalog(), eres.Phase))
	fmt.Printf("derived size bound E(n) = %d (actual n = %d)\n", eres.EUpper, g.N())
	fmt.Printf("all %d edges covered: %v\n", g.M(), eres.Covered)
}
