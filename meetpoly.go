// Package meetpoly is a from-scratch Go implementation of
//
//	Yoann Dieudonné, Andrzej Pelc, Vincent Villain,
//	"How to Meet Asynchronously at Polynomial Cost", PODC 2013
//	(full version: arXiv:1301.7119).
//
// It provides deterministic asynchronous rendezvous of two labelled
// mobile agents in arbitrary unknown port-numbered graphs at cost
// polynomial in the graph size and in the length of the smaller label
// (Algorithm RV-asynch-poly, Theorem 3.1), exploration with a
// semi-stationary token (Procedure ESST, Theorem 2.1), and Strong Global
// Learning for teams of agents with its four applications — team size,
// leader election, perfect renaming and gossiping (Algorithm SGL,
// Theorem 4.1) — together with the exponential-cost baseline the paper
// supersedes, exact big-integer cost models for every bound in the
// proofs, a deterministic adversary simulator with an exhaustive
// worst-case certifier, and the benchmark harness regenerating the
// paper's quantitative claims.
//
// The public API is the Engine/Scenario pair: an Engine is built once
// (it owns a shared, verified exploration-sequence catalog) and executes
// declarative, JSON-serializable Scenarios with context cancellation,
// typed sentinel errors, execution observers and concurrent batches.
// The full machinery lives in the internal packages documented in
// DESIGN.md:
//
//	internal/graph      the anonymous port-numbered network model
//	internal/uxs        universal exploration sequences (Reingold substitute)
//	internal/labels     the modified-label transformation M(x)
//	internal/trajectory the trajectory algebra X, Q, Y, Z, A, B, K, Ω
//	internal/costmodel  exact evaluation of Π(n, m) and friends
//	internal/sched      the half-step adversary, strategies, certifier
//	internal/core       Algorithm RV-asynch-poly
//	internal/esst       Procedure ESST
//	internal/baseline   the exponential comparator
//	internal/sgl        Algorithm SGL + applications
//	internal/rverr      the sentinel errors re-exported by this facade
//	internal/experiments the table generators for EXPERIMENTS.md
//	internal/campaign   the sweep engine behind Engine.Sweep: spec
//	                    expansion, per-cell seed derivation, paper-bound
//	                    oracles, aggregation
//
// # Quick start
//
//	eng := meetpoly.NewEngine(meetpoly.WithMaxN(6), meetpoly.WithSeed(1))
//	res, err := eng.Run(ctx, meetpoly.Scenario{
//		Kind:   meetpoly.ScenarioRendezvous,
//		Graph:  meetpoly.GraphSpec{Kind: "path", N: 4},
//		Starts: []int{0, 3},
//		Labels: []meetpoly.Label{2, 5},
//		Budget: 1_000_000,
//	})
//
// Engine.RunBatch fans a slice of scenarios out over a worker pool;
// errors are matched with errors.Is against ErrBudgetExhausted,
// ErrInvalidScenario, ErrCatalogUncovered and ErrCanceled. Engine.Sweep
// expands a declarative SweepSpec into thousands of scenarios and
// checks every run against oracles derived from the paper's cost
// bounds, with single-seed-string replay for failures; Engine.SweepStream
// yields the same judged cells incrementally for campaigns too large to
// hold as one report.
//
// The execution surface is an open world: RegisterGraphKind,
// RegisterAdversary and RegisterScenarioKind add custom graph families,
// schedule strategies and whole scenario kinds that flow through every
// surface above on the same terms as the built-ins (which register
// through the same calls) — declarative JSON, sweeps, replay seeds and
// the prepared-scenario cache. See DESIGN.md §4 and examples/customkind
// for the contracts. See examples/ for runnable programs.
package meetpoly

import (
	"context"
	"math/big"

	"meetpoly/internal/baseline"
	"meetpoly/internal/core"
	"meetpoly/internal/costmodel"
	"meetpoly/internal/esst"
	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/sched"
	"meetpoly/internal/sgl"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

// Label is an agent label: a strictly positive integer. Agents know only
// their own label; rendezvous cost depends on the length of the smaller
// one.
type Label = labels.Label

// Graph is the anonymous port-numbered network model.
type Graph = graph.Graph

// Env binds the algorithms to an exploration-sequence catalog.
type Env = trajectory.Env

// Adversary schedules agent movement; nil selects round-robin.
type Adversary = sched.Adversary

// RendezvousResult reports a two-agent rendezvous execution.
type RendezvousResult = core.Result

// BaselineResult reports an exponential-baseline rendezvous execution.
type BaselineResult = baseline.Result

// SGLConfig configures a Strong Global Learning run.
type SGLConfig = sgl.Config

// SGLResult reports an SGL run.
type SGLResult = sgl.Result

// ESSTResult reports an exploration-with-token run.
type ESSTResult = esst.Result

// CertResult is the exhaustive adversary's verdict.
type CertResult = sched.CertResult

// NewEnv returns an environment whose exploration sequences are verified
// on the standard graph families up to maxN nodes (uxs.DefaultFamily).
// For graphs outside that family, call EnsureFor before running.
func NewEnv(maxN int, seed int64) *Env {
	return trajectory.NewEnv(uxs.NewVerified(uxs.DefaultFamily(maxN), seed))
}

// EnsureFor extends a verified catalog so its integrality guarantee
// covers g. No-op for non-verified catalogs and for graphs structurally
// identical to a family member. The Engine does this automatically
// (see WithAutoExtend).
func EnsureFor(env *Env, g *Graph) {
	if v, ok := env.Catalog().(*uxs.Verified); ok && !v.Covers(g) && !v.CoversEqual(g) {
		v.Extend(g)
	}
}

// legacyRun executes a scenario through a throwaway engine over env,
// preserving the free functions' semantics: any run that produced a
// result (goal missed within the budget, adversary rested, ...) is
// reported through the result, not as an error. Cancellation cannot
// occur (background context), so a non-nil result means a goal-miss
// class error.
func legacyRun(env *Env, sc Scenario) (*Result, error) {
	res, err := engineOver(env).Run(context.Background(), sc)
	if res != nil {
		err = nil
	}
	return res, err
}

// Rendezvous runs Algorithm RV-asynch-poly for two agents with distinct
// labels from distinct start nodes, under adv (nil = round-robin),
// stopping at the first meeting or after budget adversary events.
//
// Deprecated: build an Engine and run a ScenarioRendezvous Scenario;
// Engine.Run adds cancellation, typed errors, observers and batching.
func Rendezvous(g *Graph, start1, start2 int, l1, l2 Label,
	env *Env, adv Adversary, budget int) (*RendezvousResult, error) {
	res, err := legacyRun(env, Scenario{
		Kind: ScenarioRendezvous, GraphInstance: g, AdversaryInstance: adv,
		Starts: []int{start1, start2}, Labels: []Label{l1, l2}, Budget: budget,
	})
	if err != nil {
		return nil, err
	}
	return res.Rendezvous, nil
}

// BaselineRendezvous runs the exponential-cost comparator (known n).
//
// Deprecated: build an Engine and run a ScenarioBaseline Scenario.
func BaselineRendezvous(g *Graph, start1, start2 int, l1, l2 Label,
	env *Env, adv Adversary, budget int) (*BaselineResult, error) {
	res, err := legacyRun(env, Scenario{
		Kind: ScenarioBaseline, GraphInstance: g, AdversaryInstance: adv,
		Starts: []int{start1, start2}, Labels: []Label{l1, l2}, Budget: budget,
	})
	if err != nil {
		return nil, err
	}
	return res.Baseline, nil
}

// PiBound returns Π(n, min(|L1|, |L2|)) — Theorem 3.1's guarantee on the
// traversals either agent performs before meeting is certain — for the
// environment's catalog.
func PiBound(env *Env, n int, l1, l2 Label) *big.Int {
	return core.PiBound(env, n, l1, l2)
}

// Certify runs the exhaustive adversary on the two agents' route
// prefixes (moves traversals each): the exact worst case over every
// schedule the continuous adversary could choose.
//
// Deprecated: build an Engine and run a ScenarioCertify Scenario, which
// adds mid-run cancellation of the lattice sweep.
func Certify(g *Graph, start1, start2 int, l1, l2 Label,
	env *Env, moves int) (CertResult, error) {
	res, err := legacyRun(env, Scenario{
		Kind: ScenarioCertify, GraphInstance: g,
		Starts: []int{start1, start2}, Labels: []Label{l1, l2}, Moves: moves,
	})
	if err != nil {
		return CertResult{}, err
	}
	return *res.Cert, nil
}

// ESSTExplore runs Procedure ESST: an explorer and a parked token.
//
// Deprecated: build an Engine and run a ScenarioESST Scenario.
func ESSTExplore(g *Graph, startExplorer, startToken int, env *Env,
	adv Adversary, maxSteps int) (*ESSTResult, error) {
	res, err := legacyRun(env, Scenario{
		Kind: ScenarioESST, GraphInstance: g, AdversaryInstance: adv,
		Starts: []int{startExplorer, startToken}, Budget: maxSteps,
	})
	if err != nil {
		return nil, err
	}
	return res.ESST, nil
}

// SGL runs Strong Global Learning for a team of k > 1 agents; the four
// applications (team size, leader election, perfect renaming, gossiping)
// are all derivable from the result, or use the sgl package's wrappers.
//
// Deprecated: build an Engine and run a ScenarioSGL Scenario. This
// function remains for configurations a declarative Scenario does not
// express (custom Phase2Budget, InitiallyAwake subsets).
func SGL(cfg SGLConfig) (*SGLResult, error) { return sgl.Run(cfg) }

// CostModel returns the exact big-integer cost model over a generic
// exploration-length polynomial P(k) = c * k^d (the paper's abstract P).
func CostModel(c, d int) *costmodel.Model {
	return costmodel.New(costmodel.PPoly(c, d))
}

// Graph builders re-exported for facade users; the full set (grids,
// tori, hypercubes, lollipops, random graphs, port shuffling, ...) lives
// in internal/graph.

// GraphBuilder assembles a custom port-numbered graph edge by edge:
// ports are numbered in insertion order at each endpoint, so a fixed
// edge sequence always yields the same graph — the determinism custom
// graph kinds registered with RegisterGraphKind must provide.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph on n nodes. Add edges
// with AddEdge and finish with Graph(name); the result must be
// connected to be a valid scenario network.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// Ring returns the oriented cycle on n >= 3 nodes.
func Ring(n int) *Graph { return graph.Ring(n) }

// Path returns the path graph on n >= 2 nodes.
func Path(n int) *Graph { return graph.Path(n) }

// Complete returns the clique K_n.
func Complete(n int) *Graph { return graph.Complete(n) }

// Star returns the star K_{1,n-1}.
func Star(n int) *Graph { return graph.Star(n) }

// ShufflePorts returns a copy of g with adversarially permuted port
// numbers.
func ShufflePorts(g *Graph, seed int64) *Graph { return graph.ShufflePorts(g, seed) }

// RoundRobin returns the fair baseline adversary.
func RoundRobin() Adversary { return &sched.RoundRobin{} }

// Avoider returns the strongest online meeting-dodging adversary.
func Avoider() Adversary { return &sched.Avoider{} }

// RandomAdversary returns a seeded random scheduler.
func RandomAdversary(seed int64) Adversary { return sched.NewRandom(seed) }

// Version identifies this reproduction.
const Version = "1.0.0"
