// Package hotfix exercises hotalloc: the annotated functions contain
// one of each allocation source the half-step budget cannot afford; the
// un-annotated twin shows the analyzer leaves cold code alone.
package hotfix

import "fmt"

type ring struct {
	buf  []int
	name string
}

//rvlint:hotpath
func hotEverything(r *ring, n int) int {
	s := make([]int, n)      // want `make allocates`
	m := map[int]bool{}      // want `slice/map literal`
	lit := []int{1, 2, 3}    // want `slice/map literal`
	p := &ring{}             // want `composite literal escapes`
	q := new(ring)           // want `new allocates`
	r.buf = append(r.buf, n) // want `append may grow`
	msg := r.name + "!"      // want `string concatenation`
	b := []byte(r.name)      // want `conversion copies`
	fmt.Println(n)           // want `fmt\.Println allocates`
	go func() {}()           // want `closure literal` `go statement`
	defer fmt.Print()        // want `defer` `fmt\.Print allocates`
	var box interface{}
	box = *r                                           // want `copies the value to the heap`
	sink(n)                                            // want `copies the value to the heap`
	_ = []interface{}{s, m, lit, p, q, msg, b, box}[0] // want `slice/map literal`
	return len(s)
}

// sink boxes its argument: int into interface{}.
func sink(v interface{}) {}

// sinkPtr takes a pointer: pointer-shaped values fit the interface word
// without a heap copy.
func sinkPtr(v interface{}) {}

//rvlint:hotpath
func hotClean(r *ring, n int) int {
	// Reads, arithmetic, struct (non-escaping) values, pointer boxing:
	// all allocation-free.
	x := r.buf[n%len(r.buf)]
	sinkPtr(r)
	var local ring
	local.buf = r.buf
	return x + len(local.buf)
}

//rvlint:hotpath
func hotAllowed(r *ring, n int) {
	// The buffer reaches steady-state capacity after the first event.
	r.buf = append(r.buf, n) //lint:allow hotalloc -- amortized growth of a reused buffer
}

// coldEverything is the same body with no annotation: not checked.
func coldEverything(r *ring, n int) []int {
	s := make([]int, n)
	s = append(s, n)
	fmt.Println(r.name + "!")
	return s
}
