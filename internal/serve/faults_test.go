package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"meetpoly"
	"meetpoly/internal/campaign"
	"meetpoly/internal/faultinject"
)

// TestFlushPartialWriteNeverSeals is the regression test for the
// write-ordering bug the fault injector exposed: a partial (short)
// results write used to leave the staging buffer armed, so the NEXT
// flush re-appended it after the torn bytes and then sealed the
// ranges — recovery would truncate the results log at the torn line,
// dropping records that ranges.log still sealed, silently losing
// cells. A failed write must poison the checkpoint: no later flush, no
// range seal, and recovery re-executes everything unsealed.
func TestFlushPartialWriteNeverSeals(t *testing.T) {
	dir := t.TempDir()
	cp, err := OpenCheckpointFaults(dir, faultinject.MustNew("short-write=1"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := cp.Record(syntheticResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Flush(); !errors.Is(err, faultinject.ErrWrite) {
		t.Fatalf("flush over torn write returned %v, want injected write error", err)
	}
	// The checkpoint is poisoned: staging more work or retrying the
	// flush must fail without touching the logs again.
	if err := cp.Record(syntheticResult(5)); !errors.Is(err, faultinject.ErrWrite) {
		t.Fatalf("record on poisoned checkpoint returned %v", err)
	}
	if err := cp.Flush(); !errors.Is(err, faultinject.ErrWrite) {
		t.Fatalf("second flush on poisoned checkpoint returned %v", err)
	}
	if err := cp.Close(); !errors.Is(err, faultinject.ErrWrite) {
		t.Fatalf("close on poisoned checkpoint returned %v", err)
	}

	// ranges.log must be empty — the torn results were never sealed —
	// and recovery must trust nothing.
	if data, err := os.ReadFile(filepath.Join(dir, rangesFile)); err != nil || len(data) != 0 {
		t.Fatalf("ranges.log after poisoned run: %q (err %v), want empty", data, err)
	}
	cp2, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Completed().Len() != 0 || len(cp2.Recovered()) != 0 {
		t.Fatalf("recovery trusted %d sealed / %d results from a poisoned run",
			cp2.Completed().Len(), len(cp2.Recovered()))
	}
	// And the torn tail was truncated, so the reopened log appends clean.
	if data, _ := os.ReadFile(filepath.Join(dir, resultsFile)); len(data) > 0 && data[len(data)-1] != '\n' {
		t.Fatal("results.ndjson still ends mid-line after recovery")
	}
}

// TestRunShardFaultedFlushResumes: the same invariant end to end — a
// budget-canceled run whose final flush-on-close hits an injected
// fsync error must not seal anything it didn't sync, and a clean
// resume still converges to the byte-identical report.
func TestRunShardFaultedFlushResumes(t *testing.T) {
	ctx := context.Background()
	spec := serveSpec()
	want := referenceReport(t)
	dir := t.TempDir()

	// sync-err=1 fails the first results fsync: the first periodic
	// flush dies, the run aborts with the checkpoint poisoned.
	_, err := RunShard(ctx, ShardConfig{
		Engine: newServeEngine(), Spec: spec, Dir: dir,
		FlushEvery: 8, Faults: faultinject.MustNew("sync-err=1"),
	}, func(meetpoly.SweepCellResult) bool { return true })
	if !errors.Is(err, faultinject.ErrSync) {
		t.Fatalf("faulted run returned %v, want injected fsync error", err)
	}
	cp, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	sealedAfterFault := cp.Completed().Len()
	cp.Close()
	if sealedAfterFault != 0 {
		t.Fatalf("faulted run sealed %d cells despite the failed fsync", sealedAfterFault)
	}

	rep, err := RunShard(ctx, ShardConfig{
		Engine: newServeEngine(), Spec: spec, Dir: dir, FlushEvery: 8,
	}, func(meetpoly.SweepCellResult) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("post-fault resume diverges from uninterrupted run")
	}
}

// TestRunShardRanges: explicit ranges run exactly their cells,
// intersected with the shard range.
func TestRunShardRanges(t *testing.T) {
	ctx := context.Background()
	spec := serveSpec()
	total, err := meetpoly.CountSweep(spec)
	if err != nil {
		t.Fatal(err)
	}

	var got campaign.IndexSet
	_, err = RunShard(ctx, ShardConfig{
		Engine: newServeEngine(), Spec: spec,
		Ranges: []campaign.Interval{{Lo: 3, Hi: 7}, {Lo: 20, Hi: 22}},
	}, func(cr meetpoly.SweepCellResult) bool { got.Add(cr.Cell.Index); return true })
	if err != nil {
		t.Fatal(err)
	}
	want := campaign.IndexSet{}
	want.AddRange(3, 7)
	want.AddRange(20, 22)
	if got.Len() != want.Len() || len(want.Gaps(0, total)) != len(got.Gaps(0, total)) {
		t.Fatalf("ranges run emitted %v, want %v", got.Ranges(), want.Ranges())
	}

	// A sharded instance clips the request to its own slice.
	var clipped campaign.IndexSet
	_, err = RunShard(ctx, ShardConfig{
		Engine: newServeEngine(), Spec: spec, Shard: 0, Of: 2,
		Ranges: []campaign.Interval{{Lo: 0, Hi: total}},
	}, func(cr meetpoly.SweepCellResult) bool { clipped.Add(cr.Cell.Index); return true })
	if err != nil {
		t.Fatal(err)
	}
	if hi := total / 2; clipped.Len() != hi || clipped.Contains(hi) {
		t.Fatalf("shard 0/2 with full-range request emitted %v, want [0, %d)", clipped.Ranges(), hi)
	}
}

// TestServerRangesParam drives ?ranges= over HTTP: only the requested
// cells stream, and malformed ranges are 400s.
func TestServerRangesParam(t *testing.T) {
	spec := serveSpec()
	body, _ := json.Marshal(spec)
	srv := New(Config{Engine: newServeEngine()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sweep?ranges=2-5,9-11", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ranges stream status %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	var got campaign.IndexSet
	for _, line := range lines[:len(lines)-1] {
		var cr meetpoly.SweepCellResult
		if err := json.Unmarshal([]byte(line), &cr); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		got.Add(cr.Cell.Index)
	}
	if got.Len() != 5 || !got.Contains(2) || !got.Contains(10) || got.Contains(5) || got.Contains(8) {
		t.Fatalf("ranges request streamed %v, want [2,5)+[9,11)", got.Ranges())
	}
	var trailer streamTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil || !trailer.Done || trailer.Cells != 5 {
		t.Fatalf("trailer %+v (err %v), want done with 5 cells", trailer, err)
	}

	for _, q := range []string{"?ranges=5-2", "?ranges=x-3", "?ranges=-1-3", "?ranges=0-99999", "?ranges=3"} {
		resp, err := http.Post(ts.URL+"/v1/sweep"+q, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestServerRetryAfter: every load-shedding refusal — tenant quota
// 429, drain 503, chaos 503 — carries the Retry-After hint the
// self-healing client honors.
func TestServerRetryAfter(t *testing.T) {
	srv := New(Config{Engine: newServeEngine(), MaxTenantSweeps: 1})
	rel := srv.admit(httptest.NewRecorder(), "alice", "")
	if rel == nil {
		t.Fatal("first admit refused")
	}
	defer rel()
	w := httptest.NewRecorder()
	srv.admit(w, "alice", "")
	if w.Code != http.StatusTooManyRequests || w.Header().Get("Retry-After") != "1" {
		t.Fatalf("quota refusal: code=%d Retry-After=%q, want 429 with hint", w.Code, w.Header().Get("Retry-After"))
	}

	drained := New(Config{Engine: newServeEngine(), RetryAfter: 3 * time.Second})
	if err := drained.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	drained.admit(w, "bob", "")
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") != "3" {
		t.Fatalf("drain refusal: code=%d Retry-After=%q, want 503 with hint 3", w.Code, w.Header().Get("Retry-After"))
	}

	chaos := New(Config{Engine: newServeEngine(), Faults: faultinject.MustNew("unavail=1x1")})
	ts := httptest.NewServer(chaos.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("chaos refusal: code=%d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if resp, err = http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("burst of 1 must clear: second request got %d", resp.StatusCode)
	}
}

// TestServerChaosStreamReset: the scheduled mid-NDJSON cut aborts the
// connection after exactly the planned line, durable state survives,
// and a follow-up request (the client's resume) completes the
// campaign to the byte-identical report.
func TestServerChaosStreamReset(t *testing.T) {
	spec := serveSpec()
	want := referenceReport(t)
	body, _ := json.Marshal(spec)
	srv := New(Config{
		Engine:         newServeEngine(),
		CheckpointRoot: t.TempDir(),
		FlushEvery:     4,
		Faults:         faultinject.MustNew("reset=6"),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if readErr == nil {
		t.Fatalf("stream ended cleanly (%d bytes); want a mid-stream connection reset", len(raw))
	}
	if got := bytes.Count(raw, []byte("\n")); got != 6 {
		t.Fatalf("read %d complete lines before the cut, want 6", got)
	}

	resp2, err := http.Post(ts.URL+"/v1/sweep/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resume report status %d: %s", resp2.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-reset resume diverges from uninterrupted run")
	}
}
