package main

import "os"

// Example executes the whole extension walkthrough — registration, a
// custom-kind run, and a streamed sweep — so CI both compiles and runs
// it on every push. The pinned output doubles as a determinism check:
// registration, cache accounting and sweep outcomes may not drift.
func Example() {
	if err := run(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// pursuit on wheel/8: distance 2
	// sweep: 8 cells, 7 met, 0 oracle failures
	// cache: 2 graph builds, 9 preparations served from cache
}
