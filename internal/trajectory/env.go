package trajectory

import (
	"math/big"
	"sync"

	"meetpoly/internal/uxs"
)

// Env binds the trajectory algebra to an exploration-sequence catalog.
// It provides fresh steppers for each trajectory of Definitions 3.1-3.8
// and their exact lengths. Env is safe for concurrent use.
type Env struct {
	cat uxs.Catalog

	mu   sync.Mutex
	memo map[lenKey]*big.Int
}

type lenKey struct {
	kind byte // 'X','Q','y','Y','Z','a','A','B','K','W'
	k    int
}

// NewEnv returns an Env over the given catalog.
func NewEnv(cat uxs.Catalog) *Env {
	return &Env{cat: cat, memo: make(map[lenKey]*big.Int)}
}

// Catalog returns the exploration-sequence catalog backing the Env.
func (e *Env) Catalog() uxs.Catalog { return e.cat }

// R returns the stepper for Reingold's trajectory R(k, v): the agent
// follows the catalog's exploration sequence for parameter k.
func (e *Env) R(k int) Stepper { return NewUXS(e.cat.Seq(k)) }

// X returns the trajectory X(k, v) = R(k, v) R̄(k, v) (Definition 3.1).
func (e *Env) X(k int) Stepper { return Mirror(e.R(k)) }

// Q returns Q(k, v) = X(1, v) X(2, v) ... X(k, v) (Definition 3.2).
func (e *Env) Q(k int) Stepper {
	return Chain(func(i int) Stepper {
		if i >= k {
			return nil
		}
		return e.X(i + 1)
	})
}

// YPrime returns Y'(k, v): R(k, v) with a Q(k, ·) excursion inserted at
// every visited node (Definition 3.3).
func (e *Env) YPrime(k int) Stepper {
	return Interleave(e.R(k), func() Stepper { return e.Q(k) })
}

// Y returns Y(k, v) = Y'(k, v) Y̅'(k, v) (Definition 3.3).
func (e *Env) Y(k int) Stepper { return Mirror(e.YPrime(k)) }

// Z returns Z(k, v) = Y(1, v) Y(2, v) ... Y(k, v) (Definition 3.4).
func (e *Env) Z(k int) Stepper {
	return Chain(func(i int) Stepper {
		if i >= k {
			return nil
		}
		return e.Y(i + 1)
	})
}

// APrime returns A'(k, v): R(k, v) with a Z(k, ·) excursion inserted at
// every visited node (Definition 3.5).
func (e *Env) APrime(k int) Stepper {
	return Interleave(e.R(k), func() Stepper { return e.Z(k) })
}

// A returns A(k, v) = A'(k, v) A̅'(k, v) (Definition 3.5).
func (e *Env) A(k int) Stepper { return Mirror(e.APrime(k)) }

// B returns B(k, v) = Y(k, v)^(2|A(4k)|) (Definition 3.6).
func (e *Env) B(k int) Stepper {
	count := new(big.Int).Lsh(e.LenA(4*k), 1) // 2|A(4k)|
	return Repeat(func() Stepper { return e.Y(k) }, count)
}

// K returns K(k, v) = X(k, v)^(2(|B(4k)|+|A(8k)|)) (Definition 3.7).
func (e *Env) K(k int) Stepper {
	count := new(big.Int).Add(e.LenB(4*k), e.LenA(8*k))
	count.Lsh(count, 1)
	return Repeat(func() Stepper { return e.X(k) }, count)
}

// Omega returns Ω(k, v) = X(k, v)^((2k-1)|K(k)|) (Definition 3.8).
func (e *Env) Omega(k int) Stepper {
	count := new(big.Int).Mul(big.NewInt(int64(2*k-1)), e.LenK(k))
	return Repeat(func() Stepper { return e.X(k) }, count)
}

// lenMemo computes-and-caches a length.
func (e *Env) lenMemo(kind byte, k int, f func() *big.Int) *big.Int {
	key := lenKey{kind, k}
	e.mu.Lock()
	if v, ok := e.memo[key]; ok {
		e.mu.Unlock()
		return v
	}
	e.mu.Unlock()
	v := f()
	e.mu.Lock()
	e.memo[key] = v
	e.mu.Unlock()
	return v
}

// P returns the exploration-sequence length P(k) as a big integer.
func (e *Env) P(k int) *big.Int { return big.NewInt(int64(e.cat.P(k))) }

// LenX returns |X(k)| = 2 P(k).
func (e *Env) LenX(k int) *big.Int {
	return e.lenMemo('X', k, func() *big.Int {
		return new(big.Int).Lsh(e.P(k), 1)
	})
}

// LenQ returns |Q(k)| = sum_{i=1..k} |X(i)|.
func (e *Env) LenQ(k int) *big.Int {
	return e.lenMemo('Q', k, func() *big.Int {
		s := new(big.Int)
		for i := 1; i <= k; i++ {
			s.Add(s, e.LenX(i))
		}
		return s
	})
}

// LenYPrime returns |Y'(k)| = (P(k)+1)|Q(k)| + P(k): one Q excursion at
// each of the P(k)+1 trunk nodes plus the P(k) trunk steps.
func (e *Env) LenYPrime(k int) *big.Int {
	return e.lenMemo('y', k, func() *big.Int {
		p := e.P(k)
		s := new(big.Int).Add(p, bigOne)
		s.Mul(s, e.LenQ(k))
		return s.Add(s, p)
	})
}

// LenY returns |Y(k)| = 2|Y'(k)|.
func (e *Env) LenY(k int) *big.Int {
	return e.lenMemo('Y', k, func() *big.Int {
		return new(big.Int).Lsh(e.LenYPrime(k), 1)
	})
}

// LenZ returns |Z(k)| = sum_{i=1..k} |Y(i)|.
func (e *Env) LenZ(k int) *big.Int {
	return e.lenMemo('Z', k, func() *big.Int {
		s := new(big.Int)
		for i := 1; i <= k; i++ {
			s.Add(s, e.LenY(i))
		}
		return s
	})
}

// LenAPrime returns |A'(k)| = (P(k)+1)|Z(k)| + P(k).
func (e *Env) LenAPrime(k int) *big.Int {
	return e.lenMemo('a', k, func() *big.Int {
		p := e.P(k)
		s := new(big.Int).Add(p, bigOne)
		s.Mul(s, e.LenZ(k))
		return s.Add(s, p)
	})
}

// LenA returns |A(k)| = 2|A'(k)|.
func (e *Env) LenA(k int) *big.Int {
	return e.lenMemo('A', k, func() *big.Int {
		return new(big.Int).Lsh(e.LenAPrime(k), 1)
	})
}

// LenB returns |B(k)| = 2|A(4k)| * |Y(k)|.
func (e *Env) LenB(k int) *big.Int {
	return e.lenMemo('B', k, func() *big.Int {
		s := new(big.Int).Lsh(e.LenA(4*k), 1)
		return s.Mul(s, e.LenY(k))
	})
}

// LenK returns |K(k)| = 2(|B(4k)| + |A(8k)|) * |X(k)|.
func (e *Env) LenK(k int) *big.Int {
	return e.lenMemo('K', k, func() *big.Int {
		s := new(big.Int).Add(e.LenB(4*k), e.LenA(8*k))
		s.Lsh(s, 1)
		return s.Mul(s, e.LenX(k))
	})
}

// LenOmega returns |Ω(k)| = (2k-1)|K(k)| * |X(k)|.
func (e *Env) LenOmega(k int) *big.Int {
	return e.lenMemo('W', k, func() *big.Int {
		s := new(big.Int).Mul(big.NewInt(int64(2*k-1)), e.LenK(k))
		return s.Mul(s, e.LenX(k))
	})
}
