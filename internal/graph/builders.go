package graph

import (
	"fmt"
	"math/rand"
)

// Ring returns the cycle on n >= 3 nodes with oriented ports: at every
// node, port 0 leads clockwise (towards (i+1) mod n) and port 1
// counterclockwise. This is the "oriented ring" of the paper's footnote
// on single-agent impossibility; ShufflePorts yields unoriented variants.
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: Ring needs n >= 3")
	}
	adj := make([][]half, n)
	for i := 0; i < n; i++ {
		cw := (i + 1) % n
		ccw := (i - 1 + n) % n
		// The clockwise neighbour sees this edge via its port 1; the
		// counterclockwise neighbour via its port 0.
		adj[i] = []half{{to: cw, toPort: 1}, {to: ccw, toPort: 0}}
	}
	return &Graph{name: fmt.Sprintf("ring-%d", n), adj: adj, m: n}
}

// Path returns the path graph on n >= 2 nodes: 0 - 1 - ... - n-1.
func Path(n int) *Graph {
	if n < 2 {
		panic("graph: Path needs n >= 2")
	}
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Graph(fmt.Sprintf("path-%d", n))
}

// Complete returns the clique K_n for n >= 2.
func Complete(n int) *Graph {
	if n < 2 {
		panic("graph: Complete needs n >= 2")
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Graph(fmt.Sprintf("clique-%d", n))
}

// Star returns the star K_{1,n-1}: node 0 is the centre.
func Star(n int) *Graph {
	if n < 2 {
		panic("graph: Star needs n >= 2")
	}
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Graph(fmt.Sprintf("star-%d", n))
}

// Grid returns the w x h grid graph (w, h >= 1, w*h >= 2).
func Grid(w, h int) *Graph {
	if w < 1 || h < 1 || w*h < 2 {
		panic("graph: Grid needs w,h >= 1 and w*h >= 2")
	}
	b := NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return b.Graph(fmt.Sprintf("grid-%dx%d", w, h))
}

// Torus returns the w x h torus (both >= 3 so the graph stays simple).
func Torus(w, h int) *Graph {
	if w < 3 || h < 3 {
		panic("graph: Torus needs w,h >= 3")
	}
	b := NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			b.AddEdge(id(x, y), id((x+1)%w, y))
			b.AddEdge(id(x, y), id(x, (y+1)%h))
		}
	}
	return b.Graph(fmt.Sprintf("torus-%dx%d", w, h))
}

// Hypercube returns the d-dimensional hypercube, d >= 1.
func Hypercube(d int) *Graph {
	if d < 1 || d > 20 {
		panic("graph: Hypercube needs 1 <= d <= 20")
	}
	n := 1 << d
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if v < u {
				b.AddEdge(v, u)
			}
		}
	}
	return b.Graph(fmt.Sprintf("hypercube-%d", d))
}

// CompleteBipartite returns K_{a,b} with a,b >= 1 and a+b >= 2.
func CompleteBipartite(a, bn int) *Graph {
	if a < 1 || bn < 1 {
		panic("graph: CompleteBipartite needs a,b >= 1")
	}
	b := NewBuilder(a + bn)
	for i := 0; i < a; i++ {
		for j := 0; j < bn; j++ {
			b.AddEdge(i, a+j)
		}
	}
	return b.Graph(fmt.Sprintf("kbipartite-%dx%d", a, bn))
}

// BinaryTree returns the complete binary tree with n >= 2 nodes numbered in
// heap order (children of i are 2i+1 and 2i+2).
func BinaryTree(n int) *Graph {
	if n < 2 {
		panic("graph: BinaryTree needs n >= 2")
	}
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge((i-1)/2, i)
	}
	return b.Graph(fmt.Sprintf("bintree-%d", n))
}

// Lollipop returns a clique of size cliqueN with a path of tailN extra
// nodes attached to clique node 0. cliqueN >= 2, tailN >= 1.
func Lollipop(cliqueN, tailN int) *Graph {
	if cliqueN < 2 || tailN < 1 {
		panic("graph: Lollipop needs cliqueN >= 2 and tailN >= 1")
	}
	b := NewBuilder(cliqueN + tailN)
	for i := 0; i < cliqueN; i++ {
		for j := i + 1; j < cliqueN; j++ {
			b.AddEdge(i, j)
		}
	}
	prev := 0
	for t := 0; t < tailN; t++ {
		b.AddEdge(prev, cliqueN+t)
		prev = cliqueN + t
	}
	return b.Graph(fmt.Sprintf("lollipop-%d+%d", cliqueN, tailN))
}

// Petersen returns the Petersen graph (n=10, 3-regular).
func Petersen() *Graph {
	b := NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)     // outer pentagon
		b.AddEdge(i, 5+i)         // spokes
		b.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
	}
	return b.Graph("petersen")
}

// RandomTree returns a uniformly random labelled tree on n >= 2 nodes,
// generated from a random Prüfer-like attachment with the given seed.
func RandomTree(n int, seed int64) *Graph {
	if n < 2 {
		panic("graph: RandomTree needs n >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(rng.Intn(i), i)
	}
	return b.Graph(fmt.Sprintf("rtree-%d-%d", n, seed))
}

// RandomConnected returns a connected Erdős–Rényi-style graph: a random
// spanning tree plus each remaining pair independently with probability p.
func RandomConnected(n int, p float64, seed int64) *Graph {
	if n < 2 {
		panic("graph: RandomConnected needs n >= 2")
	}
	if p < 0 || p > 1 {
		panic("graph: RandomConnected needs 0 <= p <= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	perm := rng.Perm(n)
	inTree := make(map[[2]int]bool)
	for i := 1; i < n; i++ {
		u, v := perm[rng.Intn(i)], perm[i]
		b.AddEdge(u, v)
		if u > v {
			u, v = v, u
		}
		inTree[[2]int{u, v}] = true
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !inTree[[2]int{u, v}] && rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Graph(fmt.Sprintf("rand-%d-%.2f-%d", n, p, seed))
}

// ShufflePorts returns a copy of g in which every node's port numbers have
// been independently permuted with the given seed. The underlying graph is
// identical; only the local labelling changes. This models the adversary's
// freedom to choose port numbers.
func ShufflePorts(g *Graph, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	// newPort[v][oldPort] = new port of that half-edge at v.
	newPort := make([][]int, n)
	for v := 0; v < n; v++ {
		newPort[v] = rng.Perm(g.Degree(v))
	}
	adj := make([][]half, n)
	for v := 0; v < n; v++ {
		adj[v] = make([]half, g.Degree(v))
		for p, h := range g.adj[v] {
			adj[v][newPort[v][p]] = half{to: h.to, toPort: newPort[h.to][h.toPort]}
		}
	}
	return &Graph{name: g.name + fmt.Sprintf("-shuf%d", seed), adj: adj, m: g.m}
}

// Single returns the one-node graph. No rendezvous task is defined on it,
// but exploration procedures must handle it.
func Single() *Graph {
	return NewBuilder(1).Graph("single")
}
