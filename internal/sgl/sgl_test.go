package sgl

import (
	"fmt"
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/sched"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

func testEnv(t testing.TB) *trajectory.Env {
	t.Helper()
	return trajectory.NewEnv(uxs.NewVerified(uxs.DefaultFamily(6), 1))
}

func wantSet(labs []labels.Label) []labels.Label {
	out := append([]labels.Label(nil), labs...)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func checkComplete(t *testing.T, name string, res *Result, labs []labels.Label) {
	t.Helper()
	want := wantSet(labs)
	for _, a := range res.Agents {
		if a.Failure != "" {
			t.Errorf("%s: agent %d failure: %s", name, a.Label, a.Failure)
		}
		if !a.HasOutput {
			t.Errorf("%s: agent %d produced no output", name, a.Label)
			continue
		}
		if len(a.Output) != len(want) {
			t.Errorf("%s: agent %d output %v, want %v", name, a.Label, a.Output, want)
			continue
		}
		for i := range want {
			if a.Output[i] != want[i] {
				t.Errorf("%s: agent %d output %v, want %v", name, a.Label, a.Output, want)
				break
			}
		}
		if a.TeamSize != len(want) {
			t.Errorf("%s: agent %d team size %d, want %d", name, a.Label, a.TeamSize, len(want))
		}
		if a.Leader != want[0] {
			t.Errorf("%s: agent %d leader %d, want %d", name, a.Label, a.Leader, want[0])
		}
	}
}

// TestSGLTwoAgents is the smallest team: the larger agent ghosts on first
// contact, the smaller explores, sweeps and broadcasts.
func TestSGLTwoAgents(t *testing.T) {
	env := testEnv(t)
	res, err := Run(Config{
		Graph:    graph.Path(4),
		Starts:   []int{0, 3},
		Labels:   []labels.Label{1, 5},
		Env:      env,
		MaxSteps: 20_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, "2-agents", res, []labels.Label{1, 5})
	if !res.AllOutput {
		t.Fatal("not all agents output")
	}
}

// TestSGLTheorem41 runs teams of growing size over several topologies and
// adversaries and verifies all four application outputs exactly.
func TestSGLTheorem41(t *testing.T) {
	env := testEnv(t)
	cases := []struct {
		g      *graph.Graph
		starts []int
		labs   []labels.Label
	}{
		{graph.Path(5), []int{0, 4}, []labels.Label{3, 9}},
		{graph.Star(5), []int{1, 2, 3}, []labels.Label{4, 2, 7}},
		{graph.Path(6), []int{0, 2, 5}, []labels.Label{6, 1, 3}},
		{graph.RandomTree(6, 2), []int{0, 3, 5, 1}, []labels.Label{8, 3, 5, 12}},
	}
	advs := map[string]func() sched.Adversary{
		"round-robin": func() sched.Adversary { return &sched.RoundRobin{} },
		"random":      func() sched.Adversary { return sched.NewRandom(9) },
	}
	for _, tc := range cases {
		for name, mk := range advs {
			cfg := Config{
				Graph:     tc.g,
				Starts:    tc.starts,
				Labels:    tc.labs,
				Env:       env,
				Adversary: mk(),
				MaxSteps:  40_000_000,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkComplete(t, fmt.Sprintf("%s/%s", tc.g, name), res, tc.labs)
		}
	}
}

// TestSGLApplications checks the four derived solutions on one instance.
func TestSGLApplications(t *testing.T) {
	env := testEnv(t)
	labs := []labels.Label{6, 2, 9}
	mkCfg := func() Config {
		return Config{
			Graph:    graph.Star(5),
			Starts:   []int{0, 2, 4},
			Labels:   labs,
			Values:   []string{"valA", "valB", "valC"},
			Env:      env,
			MaxSteps: 40_000_000,
		}
	}
	size, err := TeamSize(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	if size != 3 {
		t.Errorf("TeamSize = %d, want 3", size)
	}
	leader, err := LeaderElection(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	if leader != 2 {
		t.Errorf("Leader = %d, want 2", leader)
	}
	names, err := PerfectRenaming(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	// labels 6,2,9 -> sorted 2,6,9 -> ranks: 6->2, 2->1, 9->3.
	wantNames := []int{2, 1, 3}
	for i := range wantNames {
		if names[i] != wantNames[i] {
			t.Errorf("NewName[%d] = %d, want %d", i, names[i], wantNames[i])
		}
	}
	gossip, err := Gossip(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, view := range gossip {
		if view[6] != "valA" || view[2] != "valB" || view[9] != "valC" {
			t.Errorf("gossip view %d = %v", i, view)
		}
	}
}

// TestSGLDormantAgentsWakeOnVisit: only one agent is awake initially;
// the others must be woken by visits and still finish.
func TestSGLDormantAgentsWakeOnVisit(t *testing.T) {
	env := testEnv(t)
	labs := []labels.Label{4, 1, 11}
	res, err := Run(Config{
		Graph:          graph.Path(5),
		Starts:         []int{0, 2, 4},
		Labels:         labs,
		Env:            env,
		InitiallyAwake: []int{0},
		MaxSteps:       40_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, "dormant", res, labs)
}

// TestSGLNoFalseOutputs: under a tiny step budget the run is cut short;
// agents may fail to output, but any output produced must already be the
// exact full label set. This is the honesty guard for PracticalBudget.
func TestSGLNoFalseOutputs(t *testing.T) {
	env := testEnv(t)
	labs := []labels.Label{2, 7, 5}
	want := wantSet(labs)
	for _, maxSteps := range []int{500, 5_000, 50_000, 500_000} {
		res, err := Run(Config{
			Graph:    graph.Star(5),
			Starts:   []int{0, 1, 3},
			Labels:   labs,
			Env:      env,
			MaxSteps: maxSteps,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range res.Agents {
			if !a.HasOutput {
				continue
			}
			if len(a.Output) != len(want) {
				t.Fatalf("maxSteps=%d: agent %d output %v before knowing everyone",
					maxSteps, a.Label, a.Output)
			}
			for i := range want {
				if a.Output[i] != want[i] {
					t.Fatalf("maxSteps=%d: agent %d wrong output %v", maxSteps, a.Label, a.Output)
				}
			}
		}
	}
}

// TestSGLDeterministic: identical configuration, identical outcome.
func TestSGLDeterministic(t *testing.T) {
	env := testEnv(t)
	run := func() *Result {
		res, err := Run(Config{
			Graph:    graph.Path(4),
			Starts:   []int{0, 3},
			Labels:   []labels.Label{5, 2},
			Env:      env,
			MaxSteps: 20_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalCost != b.TotalCost || a.Summary.Steps != b.Summary.Steps {
		t.Errorf("nondeterministic SGL: cost %d/%d steps %d/%d",
			a.TotalCost, b.TotalCost, a.Summary.Steps, b.Summary.Steps)
	}
}

// TestSGLStateAccounting: exactly zero travellers remain, the smallest
// label finishes as explorer (it can never ghost), and at least one ghost
// exists for k >= 2.
func TestSGLStateAccounting(t *testing.T) {
	env := testEnv(t)
	labs := []labels.Label{3, 8}
	res, err := Run(Config{
		Graph:    graph.Path(4),
		Starts:   []int{1, 3},
		Labels:   labs,
		Env:      env,
		MaxSteps: 20_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ghosts := 0
	for _, a := range res.Agents {
		if a.State == StateTraveller && a.HasOutput {
			t.Errorf("agent %d output while still a traveller", a.Label)
		}
		if a.State == StateGhost {
			ghosts++
		}
		if a.Label == 3 && a.State == StateGhost {
			t.Error("the smallest label became a ghost")
		}
	}
	if ghosts == 0 {
		t.Error("no ghosts in a completed 2-agent run")
	}
}

func TestSGLConfigValidation(t *testing.T) {
	env := testEnv(t)
	base := func() Config {
		return Config{
			Graph:    graph.Path(4),
			Starts:   []int{0, 3},
			Labels:   []labels.Label{1, 2},
			Env:      env,
			MaxSteps: 100,
		}
	}
	for name, mutate := range map[string]func(*Config){
		"one agent":  func(c *Config) { c.Labels = c.Labels[:1]; c.Starts = c.Starts[:1] },
		"mismatch":   func(c *Config) { c.Starts = c.Starts[:1] },
		"dup labels": func(c *Config) { c.Labels = []labels.Label{3, 3} },
		"zero label": func(c *Config) { c.Labels = []labels.Label{0, 2} },
		"nil env":    func(c *Config) { c.Env = nil },
		"bad values": func(c *Config) { c.Values = []string{"only-one"} },
	} {
		cfg := base()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestStateString(t *testing.T) {
	if StateTraveller.String() != "traveller" || StateExplorer.String() != "explorer" ||
		StateGhost.String() != "ghost" || State(9).String() == "" {
		t.Error("State.String broken")
	}
}

func TestPracticalBudgetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for factor < 1")
		}
	}()
	PracticalBudget(0)
}

// TestFaithfulBudgetIsAstronomical documents the §2.4 substitution: the
// paper's Phase 2 horizon saturates the integer range for any realistic
// E, which is why PracticalBudget exists.
func TestFaithfulBudgetIsAstronomical(t *testing.T) {
	cat := uxs.NewVerified(uxs.DefaultFamily(4), 1)
	b := FaithfulBudget(cat)
	if got := b(50, 3); got < 1<<40 {
		t.Errorf("faithful Phase 2 budget for E=50 is %d; expected an unwalkable horizon", got)
	}
}
