package sched

import (
	"context"
	"fmt"
	"sync"

	"meetpoly/internal/graph"
	"meetpoly/internal/rverr"
)

// BatchRunner executes many independent two-agent cells ("lanes") that
// share one graph in lockstep through a single scheduler loop. It is
// the sweep's third execution tier (after the goroutine core and the
// direct-dispatch Stepper core): where the Runner pays per-cell
// dispatch overhead — a Runner, two Procs, a view buffer, pooled
// scratch churn — once per cell, the BatchRunner pays it once per
// batch and keeps all lane state in dense structure-of-arrays buffers
// indexed by lane.
//
// Each lane is a complete, independent execution: its own two agents,
// its own adversary instance, its own step/meeting bookkeeping. The
// lockstep loop gives every live lane one adversary event per pass, so
// a batch of cells advances through shared-cache-friendly arrays
// instead of hundreds of scattered Runner heaps. Because lanes share
// the graph (and, above this layer, one trajectory.RouteBook), the
// per-event work is identical to the single-cell Runner's — the
// equivalence the batch differential tests pin down to byte-identical
// sweep reports.
//
// Lanes hold exactly two agents (laneAgents): the rendezvous shape
// every batchable scenario kind reduces to. Both agents are woken, in
// index order, before the first adversary event — the InitiallyAwake =
// [0, 1] convention of the rendezvous runners. Agents must be
// self-contained Steppers that ignore their *Proc handle (Walker is
// the canonical one); the BatchRunner dispatches Step with a nil Proc.
type BatchRunner struct {
	g   *graph.Graph
	ctx context.Context

	// Dense lane-major state: states holds laneAgents entries per lane,
	// every other slice one entry per lane.
	states     []agentState
	ptrs       []*agentState
	views      []View
	advs       []Adversary
	steps      []int
	maxSteps   []int
	dormant    []int
	pending    []int
	contact    []bool // the lane's single (0,1) pair contact bit
	stopAtMeet []bool
	canceled   []bool
	done       []bool // lane retired normally (budget, stop, rest)
	meetings   [][]Meeting
	active     []int32 // live lane indices, compacted as lanes retire

	scratch *batchScratch
	ran     bool
	closed  bool
}

// laneAgents is the fixed team size of a batch lane.
const laneAgents = 2

// batchCtxPollStride is the batch analogue of ctxPollStride: the loop
// counts adversary events across all lanes and polls the context every
// stride. The counter is per batch, not per lane, so cancellation
// latency is bounded by stride events total — independent of how many
// lanes are in flight or how the adversaries interleave.
const batchCtxPollStride = 64

// LaneConfig describes one cell of a batch.
type LaneConfig struct {
	// Starts are the two distinct starting nodes.
	Starts [2]int
	// Agents are the two agents. They must decide purely from their
	// Step observations (the *Proc argument is nil in batch dispatch).
	Agents [2]Stepper
	// Adversary schedules this lane. Instances must not be shared
	// across lanes: every builtin strategy carries per-run state.
	Adversary Adversary
	// MaxSteps bounds the lane's adversary events (same safety net as
	// Config.MaxSteps).
	MaxSteps int
	// StopAtFirstMeeting retires the lane once any meeting has fired.
	StopAtFirstMeeting bool
}

// batchScratch is the pooled buffer set of one BatchRunner, the batch
// analogue of runScratch: a sweep worker filling batches back-to-back
// reuses one set of dense arrays instead of re-allocating lane state
// for every batch.
type batchScratch struct {
	states     []agentState
	ptrs       []*agentState
	views      []View
	advs       []Adversary
	steps      []int
	maxSteps   []int
	dormant    []int
	pending    []int
	contact    []bool
	stopAtMeet []bool
	canceled   []bool
	done       []bool
	meetings   [][]Meeting
	active     []int32
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// zeroedCap returns s cleared over its FULL capacity with length zero:
// the pool-hygiene primitive. Clearing only the live prefix would let a
// previous, larger tenant's pointers (agents, adversaries, meeting
// participant slices) stay reachable through the pooled backing array.
func zeroedCap[T any](s []T) []T {
	s = s[:cap(s)]
	clear(s)
	return s[:0]
}

// NewBatchRunner prepares an empty batch over g. Add lanes with
// AddLane, execute with Run, read lanes back with Summary, and Close to
// return the batch's buffers to the pool. ctx, if non-nil, cancels the
// lockstep loop between events; lanes not yet retired then report
// Canceled summaries.
func NewBatchRunner(ctx context.Context, g *graph.Graph) (*BatchRunner, error) {
	if g == nil {
		return nil, fmt.Errorf("sched: nil graph: %w", rverr.ErrInvalidScenario)
	}
	s := batchScratchPool.Get().(*batchScratch)
	return &BatchRunner{
		g:   g,
		ctx: ctx,

		states:     s.states[:0],
		advs:       s.advs[:0],
		steps:      s.steps[:0],
		maxSteps:   s.maxSteps[:0],
		dormant:    s.dormant[:0],
		pending:    s.pending[:0],
		contact:    s.contact[:0],
		stopAtMeet: s.stopAtMeet[:0],
		canceled:   s.canceled[:0],
		done:       s.done[:0],
		meetings:   s.meetings[:0],

		scratch: s,
	}, nil
}

// Lanes returns the number of lanes added so far.
func (b *BatchRunner) Lanes() int { return len(b.advs) }

// AddLane validates and appends one lane, returning its index. The
// validation mirrors NewRunner's so a cell rejected by the single-cell
// reference core is rejected here with the same error category.
func (b *BatchRunner) AddLane(cfg LaneConfig) (int, error) {
	if b.ran {
		return 0, fmt.Errorf("sched: AddLane after Run: %w", rverr.ErrInvalidScenario)
	}
	for _, s := range cfg.Starts {
		if s < 0 || s >= b.g.N() {
			return 0, fmt.Errorf("sched: start node %d out of range: %w", s, rverr.ErrInvalidScenario)
		}
	}
	if cfg.Starts[0] == cfg.Starts[1] {
		return 0, fmt.Errorf("sched: duplicate start node %d: %w", cfg.Starts[0], rverr.ErrInvalidScenario)
	}
	if cfg.Agents[0] == nil || cfg.Agents[1] == nil {
		return 0, fmt.Errorf("sched: nil lane agent: %w", rverr.ErrInvalidScenario)
	}
	if cfg.Adversary == nil {
		return 0, fmt.Errorf("sched: nil lane adversary: %w", rverr.ErrInvalidScenario)
	}
	if cfg.MaxSteps <= 0 {
		return 0, fmt.Errorf("sched: MaxSteps must be positive: %w", rverr.ErrInvalidScenario)
	}
	l := len(b.advs)
	for i := 0; i < laneAgents; i++ {
		b.states = append(b.states, agentState{
			agent:   cfg.Agents[i],
			stepper: cfg.Agents[i],
			id:      i,
			status:  StatusDormant,
			pos:     Position{Kind: AtNode, Node: cfg.Starts[i]},
		})
	}
	b.advs = append(b.advs, cfg.Adversary)
	b.steps = append(b.steps, 0)
	b.maxSteps = append(b.maxSteps, cfg.MaxSteps)
	b.dormant = append(b.dormant, laneAgents)
	b.pending = append(b.pending, 0)
	b.contact = append(b.contact, false)
	b.stopAtMeet = append(b.stopAtMeet, cfg.StopAtFirstMeeting)
	b.canceled = append(b.canceled, false)
	b.done = append(b.done, false)
	b.meetings = append(b.meetings, nil)
	return l, nil
}

// Run executes every lane to completion (or cancellation) and may be
// called once. Lane state is finalized here — the append-driven AddLane
// phase is over, so interior pointers and per-lane views taken now stay
// valid for the whole run.
func (b *BatchRunner) Run() {
	if b.ran || b.closed {
		panic("sched: BatchRunner.Run on a running or closed batch")
	}
	b.ran = true
	lanes := len(b.advs)
	if lanes == 0 {
		return
	}
	b.finalize(lanes)
	// Initial wakes, in lane then agent order: the InitiallyAwake=[0,1]
	// convention of the rendezvous runners. Waking moves nobody and the
	// lane validator rejects shared starts, so the single-cell core's
	// post-wake detection pass cannot fire here and is skipped.
	for l := 0; l < lanes; l++ {
		b.wakeLane(l, 0)
		b.wakeLane(l, 1)
	}
	if b.ctx != nil && b.ctx.Err() != nil {
		b.cancelRemaining()
		return
	}
	b.loop()
}

// finalize sizes the pointer/view/active arrays over the now-stable
// lane state (cold: runs once per batch).
func (b *BatchRunner) finalize(lanes int) {
	s := b.scratch
	if cap(s.ptrs) < laneAgents*lanes {
		s.ptrs = make([]*agentState, laneAgents*lanes)
	}
	if cap(s.views) < lanes {
		s.views = make([]View, lanes)
	}
	if cap(s.active) < lanes {
		s.active = make([]int32, lanes)
	}
	b.ptrs = s.ptrs[:laneAgents*lanes]
	b.views = s.views[:lanes]
	b.active = s.active[:lanes]
	for i := range b.states {
		b.ptrs[i] = &b.states[i]
	}
	for l := 0; l < lanes; l++ {
		base := laneAgents * l
		b.views[l] = View{
			g:       b.g,
			dormant: &b.dormant[l],
			agents:  b.ptrs[base : base+laneAgents : base+laneAgents],
		}
		b.active[l] = int32(l)
	}
}

// loop is the lockstep scheduler: every pass hands each live lane one
// adversary event and compacts retired lanes out of the active list.
// The context is polled on a batch-wide event counter (see
// batchCtxPollStride); every counted event advances some lane's steps,
// and lanes that cannot advance retire, so the poll cannot be starved.
//
//rvlint:hotpath
func (b *BatchRunner) loop() {
	active := b.active
	poll := batchCtxPollStride
	for len(active) > 0 {
		w := 0
		for _, li := range active {
			poll--
			if poll <= 0 {
				poll = batchCtxPollStride
				if b.ctx != nil && b.ctx.Err() != nil {
					b.cancelRemaining()
					return
				}
			}
			if b.stepLane(int(li)) {
				active[w] = li
				w++
			} else {
				b.done[li] = true
			}
		}
		active = active[:w]
	}
}

// cancelRemaining marks every lane that has not retired normally as
// canceled, wherever the current lockstep pass left it.
func (b *BatchRunner) cancelRemaining() {
	for l, d := range b.done {
		if !d {
			b.canceled[l] = true
		}
	}
}

// stepLane runs one adversary event for lane l, mirroring the
// single-cell Run loop's per-iteration order exactly: budget, stop
// conditions, liveness, adversary decision, application, step count,
// crossing detection. It reports whether the lane stays live.
//
//rvlint:hotpath
func (b *BatchRunner) stepLane(l int) bool {
	if b.steps[l] >= b.maxSteps[l] {
		return false
	}
	if b.stopAtMeet[l] && len(b.meetings[l]) > 0 {
		return false
	}
	if b.dormant[l] == 0 && b.pending[l] == 0 {
		return false
	}
	v := &b.views[l]
	v.Steps = b.steps[l]
	ev, ok := b.advs[l].Next(v)
	if !ok {
		return false
	}
	entered := b.applyLane(l, ev)
	b.steps[l]++
	if entered {
		// Half-step 1 (leaving a node) can create a crossing contact;
		// arrivals already ran their detection inside applyLane, before
		// the arriving agent's next decision, and wakes move nobody.
		b.detectLaneMove(l, ev.Agent)
	}
	return true
}

// applyLane executes one adversary event in lane l and reports whether
// it was a half-step 1 (the agent entered an edge) — the transition
// whose meeting detection stepLane still owes. Same contract as the
// single-cell apply.
//
//rvlint:hotpath
func (b *BatchRunner) applyLane(l int, ev Event) (enteredEdge bool) {
	if ev.Agent < 0 || ev.Agent >= laneAgents {
		invalidBatchEvent(ev)
	}
	st := &b.states[laneAgents*l+ev.Agent]
	switch ev.Kind {
	case EventWake:
		if st.status != StatusDormant {
			invalidBatchEvent(ev)
		}
		b.wakeLane(l, ev.Agent)
		return false
	case EventAdvance:
		if st.status != StatusActive || !st.hasPending {
			invalidBatchEvent(ev)
		}
		if st.pos.Kind == AtNode {
			// Half-step 1: leave the node, resolving the arrival entry
			// port here so the arrival half-step need not repeat it.
			from := st.pos.Node
			to, entry := b.g.Succ(from, st.pendingPort)
			st.pos = Position{Kind: InEdge, From: from, To: to}
			st.pendingEntry = entry
			return true
		}
		// Half-step 2: arrive.
		to := st.pos.To
		entry := st.pendingEntry
		st.pos = Position{Kind: AtNode, Node: to}
		st.traversals++
		st.hasPending = false
		b.pending[l]--
		// Meetings caused by the arrival are delivered before the agent
		// decides its next action, exactly like the single-cell core.
		b.detectLaneMove(l, ev.Agent)
		b.commitLane(l, st, st.stepper.Step(nil, Observation{Degree: b.g.Degree(to), Entry: entry}))
		return false
	default:
		invalidBatchEvent(ev)
		return false
	}
}

// wakeLane activates a dormant lane agent and records its first
// decision (always inline: lanes hold Steppers by construction).
//
//rvlint:hotpath
func (b *BatchRunner) wakeLane(l, i int) {
	st := &b.states[laneAgents*l+i]
	if st.status != StatusDormant {
		return
	}
	st.status = StatusActive
	b.dormant[l]--
	b.commitLane(l, st, st.stepper.Step(nil, Observation{Degree: b.g.Degree(st.pos.Node), Entry: -1}))
}

// commitLane validates and records one lane agent decision.
//
//rvlint:hotpath
func (b *BatchRunner) commitLane(l int, st *agentState, a Action) {
	if a.Halt {
		st.status = StatusHalted
		return
	}
	deg := b.g.Degree(st.pos.Node)
	if a.Port < 0 || a.Port >= deg {
		invalidPort(a.Port, deg)
	}
	st.pendingPort = a.Port
	st.hasPending = true
	b.pending[l]++
}

// detectLaneMove is the two-agent incremental meeting check after a
// lane agent moved a half-step: the k==2 fast path of the single-cell
// detectAfterMove, against the lane's single pair contact bit.
//
//rvlint:hotpath
func (b *BatchRunner) detectLaneMove(l, i int) {
	base := laneAgents * l
	if inContact(&b.states[base+i], &b.states[base+(1-i)]) {
		if !b.contact[l] {
			b.fireLaneMeeting(l)
		}
	} else {
		b.contact[l] = false
	}
}

// fireLaneMeeting publishes payloads, delivers OnMeet to both lane
// agents, records the Meeting and wakes dormant participants — the
// lane-local fireMeeting. Cold relative to the event loop (it runs at
// most once per lane under rendezvous semantics), so it may allocate.
func (b *BatchRunner) fireLaneMeeting(l int) {
	base := laneAgents * l
	a0, a1 := &b.states[base], &b.states[base+1]
	b.contact[l] = true
	inEdge := a0.pos.Kind == InEdge
	node := 0
	var edge [2]int
	if inEdge {
		edge = canonEdge(a0.pos.From, a0.pos.To)
	} else {
		node = a0.pos.Node
	}
	p0 := Peer{ID: 0, Payload: a0.agent.Publish()}
	p1 := Peer{ID: 1, Payload: a1.agent.Publish()}
	step := b.steps[l]
	a0.agent.OnMeet(Encounter{Step: step, InEdge: inEdge, Peers: []Peer{p1}})
	a1.agent.OnMeet(Encounter{Step: step, InEdge: inEdge, Peers: []Peer{p0}})
	cost := a0.traversals + a1.traversals
	committed := cost
	if a0.pos.Kind == InEdge {
		committed++
	}
	if a1.pos.Kind == InEdge {
		committed++
	}
	b.meetings[l] = append(b.meetings[l], Meeting{
		Step: step, Participants: []int{0, 1},
		InEdge: inEdge, Node: node, Edge: edge,
		Cost: cost, Committed: committed,
	})
	// A dormant agent is woken by an agent visiting its start node.
	if a0.status == StatusDormant {
		b.wakeLane(l, 0)
	}
	if a1.status == StatusDormant {
		b.wakeLane(l, 1)
	}
}

// invalidBatchEvent fails loudly on a malformed adversary event (cold
// path, kept out of applyLane's hot body).
func invalidBatchEvent(ev Event) {
	panic(fmt.Sprintf("sched: adversary issued invalid event %+v", ev))
}

// Summary returns lane l's execution summary, in exactly the shape the
// single-cell Runner produces for the same cell.
func (b *BatchRunner) Summary(l int) Summary {
	base := laneAgents * l
	a0, a1 := &b.states[base], &b.states[base+1]
	s := Summary{
		Steps:      b.steps[l],
		Meetings:   append([]Meeting(nil), b.meetings[l]...),
		Traversals: []int{a0.traversals, a1.traversals},
		TotalCost:  a0.traversals + a1.traversals,
		Canceled:   b.canceled[l],
		Exhausted:  !b.canceled[l] && b.steps[l] >= b.maxSteps[l],
	}
	s.Account.MaxPerAgent = a0.traversals
	if a1.traversals > s.Account.MaxPerAgent {
		s.Account.MaxPerAgent = a1.traversals
	}
	inFlight := 0
	if a0.pos.Kind == InEdge {
		inFlight++
	}
	if a1.pos.Kind == InEdge {
		inFlight++
	}
	s.Account.Committed = s.TotalCost + inFlight
	if len(b.meetings[l]) > 0 {
		m := b.meetings[l][0]
		s.FirstMeeting = &m
	}
	return s
}

// Close returns the batch's buffers to the pool. Safe to call many
// times. Summary values remain valid after Close (they are copies), but
// Summary itself must not be called on a closed batch.
func (b *BatchRunner) Close() {
	if b.closed {
		return
	}
	b.closed = true
	s := b.scratch
	if s == nil {
		return
	}
	b.scratch = nil
	// Same pool hygiene as the single-cell Close: the Put is deferred so
	// the scratch returns even if a clear panics, and the pointer-bearing
	// buffers are zeroed over their FULL capacity so no previous tenant's
	// agents, adversaries or meeting slices stay reachable.
	defer batchScratchPool.Put(s)
	s.states = zeroedCap(b.states)
	s.ptrs = zeroedCap(b.ptrs)
	s.views = zeroedCap(b.views)
	s.advs = zeroedCap(b.advs)
	s.meetings = zeroedCap(b.meetings)
	s.steps = b.steps[:0]
	s.maxSteps = b.maxSteps[:0]
	s.dormant = b.dormant[:0]
	s.pending = b.pending[:0]
	s.contact = b.contact[:0]
	s.stopAtMeet = b.stopAtMeet[:0]
	s.canceled = b.canceled[:0]
	s.done = b.done[:0]
	s.active = b.active[:0]
	b.states, b.ptrs, b.views, b.advs, b.meetings = nil, nil, nil, nil, nil
	b.steps, b.maxSteps, b.dormant, b.pending = nil, nil, nil, nil
	b.contact, b.stopAtMeet, b.canceled, b.done, b.active = nil, nil, nil, nil, nil
}
