// Package regfix exercises registrypure against a stub of the
// extension API: registration calls from legal contexts (init,
// package-var initializers including the sync.OnceValue idiom, and
// Register* wrappers), one from an arbitrary function, and graph-kind
// builder fields with every impurity class the rule names.
package regfix

import (
	"math/rand"
	"sync"
	"time"
)

// GraphKindDef mirrors the real registry definition shape.
type GraphKindDef struct {
	Name      string
	Build     func(n int) int
	NodeCount func(n int) int
}

// RegisterGraphKind is the stub registration entry point; the analyzer
// matches it by name.
func RegisterGraphKind(def GraphKindDef) error { return nil }

// Legal context: init.
func init() {
	_ = RegisterGraphKind(GraphKindDef{Name: "ring"})
}

// Legal context: package-level var initializer.
var _ = RegisterGraphKind(GraphKindDef{Name: "torus"})

// Legal context: a func literal inside a package var — the
// sync.OnceValue idiom the examples use.
var registerOnce = sync.OnceValue(func() error {
	return RegisterGraphKind(GraphKindDef{Name: "lattice"})
})

// Legal context: a Register* wrapper (the public facade wraps the
// internal registry this way).
func RegisterMine(def GraphKindDef) error {
	return RegisterGraphKind(def)
}

// Illegal context: an arbitrary call path — this races campaign
// expansion against registry mutation.
func setup() error {
	return RegisterGraphKind(GraphKindDef{Name: "late"}) // want `outside init/package-var context`
}

// Suppressed: a test helper justified by review.
func setupAllowed() error {
	//lint:allow registrypure -- fixture-local registry, never the global one
	return RegisterGraphKind(GraphKindDef{Name: "scratch"})
}

// ---- builder purity ----

var buildCount int
var defaultScale = 3

// pureKind is the legal shape: builders are functions of n alone.
var pureKind = GraphKindDef{
	Name:      "pure",
	Build:     func(n int) int { return n * 2 },
	NodeCount: nodeCountPure,
}

func nodeCountPure(n int) int { return n }

// impureKind seeds one violation per impurity class.
var impureKind = GraphKindDef{
	Name: "impure",
	Build: func(n int) int {
		buildCount++                // want `mutates package-level state`
		n += defaultScale           // want `reads package-level variable`
		n += int(time.Now().Unix()) // want `impure.*time\.Now`
		return n + rand.Intn(4)     // want `impure.*global math/rand`
	},
	NodeCount: nodeCountImpure,
}

// nodeCountImpure shows the check follows named same-package functions,
// not just literals.
func nodeCountImpure(n int) int {
	return n * defaultScale // want `reads package-level variable`
}
