// Package faultinject is the deterministic fault-injection harness
// behind the fleet layer's robustness story (DESIGN.md §6): a
// seed-driven Injector threaded behind two small seams — the
// checkpoint-file seam (write errors, fsync errors, short writes that
// leave torn tails) and the HTTP seam (connection resets mid-NDJSON,
// delayed responses, 5xx bursts) — plus a kill-after-flush trigger
// that stands in for a worker dying without cleanup.
//
// The whole point is reproducibility: a fault schedule is a pure
// function of its spec string. Counted triggers ("fail the 3rd fsync")
// are trivially reproducible; randomized triggers ("rand:20") are
// resolved to concrete occurrence counts at plan time from the spec's
// seed, so the same spec replays the same schedule, and Schedule()
// prints the resolved plan for the logs. Chaos runs are therefore
// evidence, not anecdotes: `rvserved -chaos <spec>` and the chaos
// differential tests cite the spec that reproduces them.
//
// Spec grammar — comma-separated directives, occurrences 1-based:
//
//	seed=<n>           RNG seed resolving rand: triggers (default 1)
//	write-err=<k>      fail the kth checkpoint log write outright
//	short-write=<k>    kth write persists only half its bytes, then
//	                   fails — the torn-tail generator
//	sync-err=<k>       fail the kth checkpoint fsync
//	kill=<k>           die right after the kth durable flush: handles
//	                   abandoned, nothing further written (kill -9)
//	reset=<k>          cut the HTTP connection after the kth streamed
//	                   NDJSON line
//	delay=<k>:<dur>    delay the kth HTTP request by dur before serving
//	unavail=<k>x<n>    answer requests k..k+n-1 with 503 + Retry-After
//
// Every <k> may be written rand:<m>, drawing uniformly from [1, m].
// Directives may repeat; each occurrence adds an independent trigger.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sentinel errors the injector surfaces through the seams it wraps.
// They are distinguishable from real I/O errors by errors.Is, so tests
// can assert the fault fired and recovery code can log the cause.
var (
	// ErrWrite is the injected checkpoint-write failure.
	ErrWrite = errors.New("faultinject: injected write error")
	// ErrSync is the injected fsync failure.
	ErrSync = errors.New("faultinject: injected fsync error")
	// ErrKilled is returned by a run whose kill-after-flush trigger
	// fired: the process stand-in for kill -9. cmd/rvserved maps it to
	// exit status 137 in worker mode.
	ErrKilled = errors.New("faultinject: injected worker kill")
)

// Injector fires a deterministic fault schedule. All methods are safe
// for concurrent use; each fault class counts its own operations, so
// the schedule is deterministic whenever the operation order is (the
// chaos tests and CI drive requests sequentially for exactly that
// reason). The zero Injector is not valid; use New. A nil *Injector is
// inert: every hook reports "no fault".
type Injector struct {
	spec string

	mu     sync.Mutex
	writes counter // checkpoint log writes (write-err, short-write)
	syncs  counter // checkpoint fsyncs (sync-err)
	flush  counter // durable flushes (kill)
	lines  counter // streamed NDJSON lines (reset)
	reqs   counter // HTTP requests (delay, unavail)

	writeErr   []int
	shortWrite []int
	syncErr    []int
	kill       []int
	reset      []int
	delays     map[int]time.Duration
	unavail    []Interval // request-count intervals answered 503
}

// Interval is a half-open 1-based occurrence range [Lo, Hi).
type Interval struct{ Lo, Hi int }

// counter numbers occurrences of one operation class, 1-based.
type counter int

func (c *counter) next() int { *c++; return int(*c) }

// New parses a fault spec and resolves its schedule. Randomized
// triggers are drawn here, from the spec's seed — the Injector itself
// is deterministic after New returns.
func New(spec string) (*Injector, error) {
	inj := &Injector{spec: spec, delays: map[int]time.Duration{}}
	seed := int64(1)
	var deferred []func(*rand.Rand) error
	for _, dir := range strings.Split(spec, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		key, val, ok := strings.Cut(dir, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: directive %q is not key=value", dir)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: seed=%q: %v", val, err)
			}
			seed = n
		case "write-err", "short-write", "sync-err", "kill", "reset":
			key, val := key, val
			deferred = append(deferred, func(rng *rand.Rand) error {
				k, err := occurrence(key, val, rng)
				if err != nil {
					return err
				}
				switch key {
				case "write-err":
					inj.writeErr = append(inj.writeErr, k)
				case "short-write":
					inj.shortWrite = append(inj.shortWrite, k)
				case "sync-err":
					inj.syncErr = append(inj.syncErr, k)
				case "kill":
					inj.kill = append(inj.kill, k)
				case "reset":
					inj.reset = append(inj.reset, k)
				}
				return nil
			})
		case "delay":
			// The occurrence may itself be rand:<m>, so the duration is
			// everything after the LAST colon.
			cut := strings.LastIndex(val, ":")
			if cut < 0 {
				return nil, fmt.Errorf("faultinject: delay=%q wants <k>:<duration>", val)
			}
			kstr, dstr := val[:cut], val[cut+1:]
			d, err := time.ParseDuration(dstr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: delay=%q: bad duration", val)
			}
			deferred = append(deferred, func(rng *rand.Rand) error {
				k, err := occurrence("delay", kstr, rng)
				if err != nil {
					return err
				}
				inj.delays[k] = d
				return nil
			})
		case "unavail":
			kstr, nstr, ok := strings.Cut(val, "x")
			if !ok {
				return nil, fmt.Errorf("faultinject: unavail=%q wants <k>x<n>", val)
			}
			n, err := strconv.Atoi(nstr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: unavail=%q: burst length must be >= 1", val)
			}
			deferred = append(deferred, func(rng *rand.Rand) error {
				k, err := occurrence("unavail", kstr, rng)
				if err != nil {
					return err
				}
				inj.unavail = append(inj.unavail, Interval{Lo: k, Hi: k + n})
				return nil
			})
		default:
			return nil, fmt.Errorf("faultinject: unknown directive %q", key)
		}
	}
	// Randomized draws happen in directive order against the final seed,
	// so a spec resolves identically no matter where seed= appears.
	rng := rand.New(rand.NewSource(seed))
	for _, fn := range deferred {
		if err := fn(rng); err != nil {
			return nil, err
		}
	}
	for _, s := range [][]int{inj.writeErr, inj.shortWrite, inj.syncErr, inj.kill, inj.reset} {
		sort.Ints(s)
	}
	return inj, nil
}

// MustNew is New for specs known valid at compile time (tests).
func MustNew(spec string) *Injector {
	inj, err := New(spec)
	if err != nil {
		panic(err)
	}
	return inj
}

// occurrence parses a trigger count: a positive integer, or rand:<m>
// drawing uniformly from [1, m].
func occurrence(key, val string, rng *rand.Rand) (int, error) {
	if m, ok := strings.CutPrefix(val, "rand:"); ok {
		n, err := strconv.Atoi(m)
		if err != nil || n < 1 {
			return 0, fmt.Errorf("faultinject: %s=%s: rand bound must be a positive integer", key, val)
		}
		return 1 + rng.Intn(n), nil
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("faultinject: %s=%q: occurrence must be a positive integer", key, val)
	}
	return n, nil
}

// Schedule renders the resolved fault plan — randomized triggers shown
// as the concrete occurrences they drew — so a chaos run logs the
// exact schedule that reproduces it.
func (inj *Injector) Schedule() string {
	if inj == nil {
		return "none"
	}
	var parts []string
	add := func(name string, ks []int) {
		for _, k := range ks {
			parts = append(parts, fmt.Sprintf("%s=%d", name, k))
		}
	}
	add("write-err", inj.writeErr)
	add("short-write", inj.shortWrite)
	add("sync-err", inj.syncErr)
	add("kill", inj.kill)
	add("reset", inj.reset)
	delayKeys := make([]int, 0, len(inj.delays))
	for k := range inj.delays {
		delayKeys = append(delayKeys, k)
	}
	sort.Ints(delayKeys)
	for _, k := range delayKeys {
		parts = append(parts, fmt.Sprintf("delay=%d:%s", k, inj.delays[k]))
	}
	for _, iv := range inj.unavail {
		parts = append(parts, fmt.Sprintf("unavail=%dx%d", iv.Lo, iv.Hi-iv.Lo))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

func member(ks []int, k int) bool {
	i := sort.SearchInts(ks, k)
	return i < len(ks) && ks[i] == k
}

// WriteAction is the injector's verdict on one checkpoint log write.
type WriteAction int

const (
	// WriteOK passes the write through untouched.
	WriteOK WriteAction = iota
	// WriteFail fails the write before any byte persists.
	WriteFail
	// WriteShort persists roughly half the buffer, then fails — the
	// torn-tail generator recovery must truncate away.
	WriteShort
)

// OnWrite counts one checkpoint log write and returns the injected
// action for it.
func (inj *Injector) OnWrite() WriteAction {
	if inj == nil {
		return WriteOK
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	k := inj.writes.next()
	switch {
	case member(inj.shortWrite, k):
		return WriteShort
	case member(inj.writeErr, k):
		return WriteFail
	}
	return WriteOK
}

// OnSync counts one checkpoint fsync and reports whether it must fail.
func (inj *Injector) OnSync() bool {
	if inj == nil {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return member(inj.syncErr, inj.syncs.next())
}

// OnFlush counts one durable checkpoint flush and reports whether the
// kill trigger fires: the caller must abandon its handles and
// propagate ErrKilled without any further cleanup.
func (inj *Injector) OnFlush() bool {
	if inj == nil {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return member(inj.kill, inj.flush.next())
}

// OnStreamLine counts one streamed NDJSON line and reports whether the
// connection must be cut right after it.
func (inj *Injector) OnStreamLine() bool {
	if inj == nil {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return member(inj.reset, inj.lines.next())
}

// OnRequest counts one HTTP request and returns its injected faults:
// a pre-serve delay and/or a 503 refusal.
func (inj *Injector) OnRequest() (delay time.Duration, unavailable bool) {
	if inj == nil {
		return 0, false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	k := inj.reqs.next()
	delay = inj.delays[k]
	for _, iv := range inj.unavail {
		if k >= iv.Lo && k < iv.Hi {
			return delay, true
		}
	}
	return delay, false
}

// WriteSyncer is the slice of *os.File the checkpoint log writes
// through — the seam File wraps.
type WriteSyncer interface {
	io.Writer
	Sync() error
	Close() error
}

// File wraps a checkpoint log handle, injecting the write/fsync
// schedule. A short write persists a prefix of the buffer to the real
// file — the torn tail a crashed writer leaves — before failing.
type File struct {
	f   WriteSyncer
	inj *Injector
}

// WrapFile wraps f with inj's write/fsync schedule. A nil injector
// returns f unwrapped.
func WrapFile(f WriteSyncer, inj *Injector) WriteSyncer {
	if inj == nil {
		return f
	}
	return &File{f: f, inj: inj}
}

func (w *File) Write(p []byte) (int, error) {
	switch w.inj.OnWrite() {
	case WriteFail:
		return 0, ErrWrite
	case WriteShort:
		n, err := w.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w (short write: %d of %d bytes)", ErrWrite, n, len(p))
	}
	return w.f.Write(p)
}

func (w *File) Sync() error {
	if w.inj.OnSync() {
		return ErrSync
	}
	return w.f.Sync()
}

func (w *File) Close() error { return w.f.Close() }
