package coord

import (
	"meetpoly"
	"meetpoly/internal/telemetry"
)

// coordMetrics holds the coordinator's pre-resolved metric handles.
// The lease-state gauges are registered as callbacks that lock the
// coordinator mutex, so they are exact at scrape time; that is safe
// because the registry is only snapshotted from the /metrics handler,
// never from under the coordinator mutex.
type coordMetrics struct {
	granted *telemetry.Counter // leases handed out (the /v1/status "leases_granted")
	expired *telemetry.Counter // leases reclaimed from dead workers ("leases_expired")
	waits   *telemetry.Counter // lease requests answered "wait" (pool fully leased)

	heartbeats      *telemetry.Counter // accepted heartbeats
	heartbeatMisses *telemetry.Counter // heartbeats for expired/unknown leases (410s)

	completes      *telemetry.Counter // accepted /v1/complete uploads
	staleCompletes *telemetry.Counter // completes whose lease had already expired
	cellsAccepted  *telemetry.Counter // cell results folded from completes
}

// newCoordMetrics resolves the coordinator's series against reg and
// registers the pool-state gauges over c. c must already be fully
// constructed: the gauge callbacks lock c.mu at scrape time.
func newCoordMetrics(c *Coordinator, reg *meetpoly.Metrics) *coordMetrics {
	m := &coordMetrics{
		granted: reg.Counter("meetpoly_coord_leases_granted_total",
			"Leases handed out to workers."),
		expired: reg.Counter("meetpoly_coord_leases_expired_total",
			"Leases reclaimed after their TTL passed without a heartbeat."),
		waits: reg.Counter("meetpoly_coord_lease_waits_total",
			"Lease requests answered \"wait\" because every unfinished cell is leased out."),
		heartbeats: reg.Counter("meetpoly_coord_heartbeats_total",
			"Accepted lease heartbeats."),
		heartbeatMisses: reg.Counter("meetpoly_coord_heartbeat_misses_total",
			"Heartbeats rejected with 410 Gone (lease expired or unknown)."),
		completes: reg.Counter("meetpoly_coord_completes_total",
			"Accepted /v1/complete uploads."),
		staleCompletes: reg.Counter("meetpoly_coord_stale_completes_total",
			"Completes whose lease had already expired; their results still fold."),
		cellsAccepted: reg.Counter("meetpoly_coord_cells_accepted_total",
			"Cell results folded into the campaign aggregate."),
	}
	reg.GaugeFunc("meetpoly_coord_cells_total",
		"Cells in the campaign expansion.",
		func() int64 { return int64(c.total) })
	reg.GaugeFunc("meetpoly_coord_cells_done",
		"Cells whose results have been folded.",
		func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(c.done.Len())
		})
	reg.GaugeFunc("meetpoly_coord_cells_leased",
		"Cells currently owned by live leases.",
		func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, l := range c.leases {
				n += l.set.Len()
			}
			return int64(n)
		})
	reg.GaugeFunc("meetpoly_coord_live_leases",
		"Outstanding (unexpired, uncompleted) leases.",
		func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.leases))
		})
	return m
}
