package trajectory

import (
	"math/big"
	"testing"
	"testing/quick"

	"meetpoly/internal/graph"
	"meetpoly/internal/uxs"
)

// randomScript is a stepper from arbitrary bytes: each byte one move.
type randomScript struct {
	ports []byte
	i     int
}

func (s *randomScript) Next(deg, entry int) (int, bool) {
	if s.i >= len(s.ports) {
		return 0, false
	}
	p := int(s.ports[s.i]) % deg
	s.i++
	return p, true
}

// TestMirrorInverseProperty: Mirror of ANY stepper returns to the start
// node and doubles the move count, on arbitrary graphs.
func TestMirrorInverseProperty(t *testing.T) {
	f := func(ports []byte, seed int64, startRaw uint8) bool {
		if len(ports) > 64 {
			ports = ports[:64]
		}
		g := graph.RandomConnected(2+int(uint64(seed)%7), 0.4, seed)
		start := int(startRaw) % g.N()
		base, _ := Run(g, start, &randomScript{ports: ports}, 1000)
		tr, done := Run(g, start, Mirror(&randomScript{ports: ports}), 1000)
		if !done {
			return false
		}
		if tr.Moves() != 2*base.Moves() {
			return false
		}
		return tr.Moves() == 0 || tr.At(tr.Moves()) == start
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMirrorOfMirrorProperty: mirroring twice still returns home and
// quadruples the length — the composition the paper's X-in-Y-in-A
// nesting relies on.
func TestMirrorOfMirrorProperty(t *testing.T) {
	f := func(ports []byte, seed int64) bool {
		if len(ports) > 32 {
			ports = ports[:32]
		}
		g := graph.RandomConnected(3+int(uint64(seed)%5), 0.5, seed)
		base, _ := Run(g, 0, &randomScript{ports: ports}, 1000)
		tr, done := Run(g, 0, Mirror(Mirror(&randomScript{ports: ports})), 1000)
		return done && tr.Moves() == 4*base.Moves() &&
			(tr.Moves() == 0 || tr.At(tr.Moves()) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestChainSplitProperty: running Concat(a, b) equals running a then b
// from a's endpoint, for closed sub-trajectories.
func TestChainSplitProperty(t *testing.T) {
	env := NewEnv(uxs.NewVerified(uxs.DefaultFamily(5), 1))
	f := func(k1Raw, k2Raw uint8, startRaw uint8) bool {
		k1 := 1 + int(k1Raw)%3
		k2 := 1 + int(k2Raw)%3
		g := graph.Ring(5)
		start := int(startRaw) % g.N()
		joint, dj := Run(g, start, Concat(env.X(k1), env.X(k2)), 100000)
		first, d1 := Run(g, start, env.X(k1), 100000)
		second, d2 := Run(g, start, env.X(k2), 100000) // X is closed: same anchor
		if !dj || !d1 || !d2 {
			return false
		}
		if joint.Moves() != first.Moves()+second.Moves() {
			return false
		}
		for i, n := range first.Nodes {
			if joint.Nodes[i] != n {
				return false
			}
		}
		for i, n := range second.Nodes {
			if joint.Nodes[first.Moves()+i] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRepeatAdditivityProperty: |Repeat(s, a+b)| = |Repeat(s, a)| +
// |Repeat(s, b)| for closed trajectories.
func TestRepeatAdditivityProperty(t *testing.T) {
	env := NewEnv(uxs.NewVerified(uxs.DefaultFamily(4), 1))
	g := graph.Ring(4)
	f := func(aRaw, bRaw uint8) bool {
		a := int64(aRaw % 5)
		b := int64(bRaw % 5)
		mk := func() Stepper { return env.X(2) }
		ra, _ := Run(g, 0, Repeat(mk, big.NewInt(a)), 1_000_000)
		rb, _ := Run(g, 0, Repeat(mk, big.NewInt(b)), 1_000_000)
		rab, _ := Run(g, 0, Repeat(mk, big.NewInt(a+b)), 1_000_000)
		return rab.Moves() == ra.Moves()+rb.Moves()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLengthsGraphIndependentProperty: exact lengths never depend on the
// graph — the P1 property lifted through the whole algebra.
func TestLengthsGraphIndependentProperty(t *testing.T) {
	env := NewEnv(uxs.NewVerified(uxs.DefaultFamily(5), 1))
	graphs := []*graph.Graph{
		graph.Ring(5), graph.Path(5), graph.Star(5), graph.Complete(4),
	}
	for k := 1; k <= 2; k++ {
		want := env.LenY(k)
		if !want.IsInt64() {
			t.Fatal("unexpectedly large")
		}
		for _, g := range graphs {
			for start := 0; start < g.N(); start++ {
				tr, done := Run(g, start, env.Y(k), int(want.Int64())+1)
				if !done || int64(tr.Moves()) != want.Int64() {
					t.Fatalf("Y(%d) on %s from %d: %d moves, want %v",
						k, g, start, tr.Moves(), want)
				}
			}
		}
	}
}

// TestInterleaveTrunkIntegrity: the trunk steps of Interleave reproduce
// R(k, v)'s node sequence exactly, regardless of the excursions.
func TestInterleaveTrunkIntegrity(t *testing.T) {
	env := NewEnv(uxs.NewVerified(uxs.DefaultFamily(5), 1))
	g := graph.Petersen()
	k := 2
	rTrace, _ := Run(g, 0, env.R(k), 10000)
	// Excursion: a closed X(1) loop at every trunk node.
	iv, done := Run(g, 0, Interleave(env.R(k), func() Stepper { return env.X(1) }), 100000)
	if !done {
		t.Fatal("interleave did not finish")
	}
	// Reconstruct trunk nodes: every (|X(1)|+1)-th position after each
	// excursion. X(1) has length 2: pattern per trunk step: 2 excursion
	// moves + 1 trunk move.
	lenX1 := int(env.LenX(1).Int64())
	var trunkNodes []int
	pos := 0
	for i := 0; i < rTrace.Moves(); i++ {
		pos += lenX1 // excursion returns to the same node
		pos++        // the trunk step
		trunkNodes = append(trunkNodes, iv.At(pos))
	}
	for i, n := range trunkNodes {
		if rTrace.Nodes[i] != n {
			t.Fatalf("trunk diverges at step %d: %d vs %d", i, n, rTrace.Nodes[i])
		}
	}
}
