package analysis_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildRvlint compiles the driver once per test binary.
func buildRvlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rvlint")
	cmd := exec.Command("go", "build", "-o", bin, "meetpoly/cmd/rvlint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building rvlint: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestSmokeRepoClean runs the whole suite over the repo through go vet,
// the same invocation CI uses: the tree must lint clean.
func TestSmokeRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the driver and vets the whole repo")
	}
	bin := buildRvlint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("rvlint over repo: %v\n%s", err, out)
	}
}

// TestSmokeSingleAnalyzer runs one analyzer standalone through go vet's
// analyzer-selection flag, the documented way to scope a run.
func TestSmokeSingleAnalyzer(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the driver")
	}
	bin := buildRvlint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "-determinism", "./internal/sched/")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool -determinism: %v\n%s", err, out)
	}
}

// TestSmokeCatchesSeededBug vets a scratch module holding a hot-path
// allocation and expects the unitchecker path to reject it: the full
// go vet protocol (probe, cfg, diagnostics, exit code) end to end.
func TestSmokeCatchesSeededBug(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the driver")
	}
	bin := buildRvlint(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "scratch.go"), `package scratch

//rvlint:hotpath
func hot(n int) []int {
	return make([]int, n)
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	if err == nil {
		t.Fatalf("expected rvlint to fail on seeded hot-path allocation; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "make allocates") {
		t.Fatalf("diagnostic missing from output:\n%s", out.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
