package sched

import "context"

// Observer receives execution events from a Runner as they happen:
// adversary decisions, completed edge traversals, meetings, and
// algorithm-level phase changes announced by agents via Proc.Phase.
//
// Within one run all callbacks are serialized: the runner and the agent
// goroutines hand control back and forth over unbuffered channels, so at
// most one goroutine is runnable at any time and the channel operations
// order every callback in a single happens-before chain. An Observer
// shared between concurrently executing runners (e.g. a batch) must be
// safe for concurrent use.
type Observer interface {
	// OnEvent fires after the adversary's event has been applied.
	// step is the 0-based index of the event.
	OnEvent(step int, ev Event)
	// OnTraversal fires when agent completes an edge traversal
	// (arriving at node to, having left node from).
	OnTraversal(agent, from, to int)
	// OnMeeting fires for every recorded meeting.
	OnMeeting(m Meeting)
	// OnPhase fires when an agent announces an algorithm phase change.
	OnPhase(agent int, phase string)
}

// FuncObserver adapts optional callbacks to the Observer interface; nil
// fields ignore their event.
type FuncObserver struct {
	Event     func(step int, ev Event)
	Traversal func(agent, from, to int)
	Meeting   func(m Meeting)
	Phase     func(agent int, phase string)
}

var _ Observer = (*FuncObserver)(nil)

// OnEvent implements Observer.
func (f *FuncObserver) OnEvent(step int, ev Event) {
	if f.Event != nil {
		f.Event(step, ev)
	}
}

// OnTraversal implements Observer.
func (f *FuncObserver) OnTraversal(agent, from, to int) {
	if f.Traversal != nil {
		f.Traversal(agent, from, to)
	}
}

// OnMeeting implements Observer.
func (f *FuncObserver) OnMeeting(m Meeting) {
	if f.Meeting != nil {
		f.Meeting(m)
	}
}

// OnPhase implements Observer.
func (f *FuncObserver) OnPhase(agent int, phase string) {
	if f.Phase != nil {
		f.Phase(agent, phase)
	}
}

// RunOpts bundles the cross-cutting execution options the public engine
// threads into the algorithm packages: a context whose cancellation
// aborts the run, and an observer for in-flight events. The zero value
// (background context, no observer) preserves the legacy behaviour of
// the free functions.
type RunOpts struct {
	Ctx      context.Context
	Observer Observer
	// ForceBlocking runs every agent on the goroutine core even when it
	// implements Stepper (see Config.ForceBlocking); the differential
	// test suite uses it to compare the two execution cores.
	ForceBlocking bool
}
