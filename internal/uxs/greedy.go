package uxs

import "meetpoly/internal/graph"

// GreedyFor deterministically constructs an exploration sequence that is
// integral on every graph of gs from every start node, by building the
// sequence one offset at a time: each position takes the offset that
// covers the most not-yet-traversed edges across ALL pending
// (graph, start) walks simultaneously, ties to the smallest offset. When
// no candidate makes progress, a deterministic rotation keeps the walks
// moving. The construction is greedy set-cover over walk constraints —
// typically far shorter than randomized search, and reproducible without
// a seed.
//
// ok is false if the length cap was reached before universality.
func GreedyFor(gs []*graph.Graph, lengthCap int) (seq Sequence, ok bool) {
	type walk struct {
		g       *graph.Graph
		cur     int
		entry   int
		covered map[[2]int]bool
		need    int
	}
	var walks []*walk
	maxDeg := 1
	for _, g := range gs {
		if d := g.MaxDegree(); d > maxDeg {
			maxDeg = d
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) == 0 {
				continue
			}
			walks = append(walks, &walk{
				g: g, cur: v, entry: 0,
				covered: make(map[[2]int]bool, g.M()),
				need:    g.M(),
			})
		}
	}
	if len(walks) == 0 {
		return Sequence{0}, true
	}
	pendingAll := func() bool {
		for _, w := range walks {
			if len(w.covered) < w.need {
				return true
			}
		}
		return false
	}
	for step := 0; pendingAll(); step++ {
		if step >= lengthCap {
			return seq, false
		}
		bestX, bestGain := 0, -1
		for x := 0; x < maxDeg; x++ {
			gain := 0
			for _, w := range walks {
				if len(w.covered) == w.need {
					continue
				}
				d := w.g.Degree(w.cur)
				port := (w.entry + x) % d
				if !w.covered[w.g.EdgeID(w.cur, port)] {
					gain++
				}
			}
			if gain > bestGain {
				bestX, bestGain = x, gain
			}
		}
		if bestGain == 0 {
			// Stalled: rotate deterministically so the walks disperse.
			bestX = step % maxDeg
		}
		seq = append(seq, bestX)
		for _, w := range walks {
			d := w.g.Degree(w.cur)
			port := (w.entry + bestX) % d
			if len(w.covered) < w.need {
				w.covered[w.g.EdgeID(w.cur, port)] = true
			}
			w.cur, w.entry = w.g.Succ(w.cur, port)
		}
	}
	if len(seq) == 0 {
		seq = Sequence{0}
	}
	return seq, true
}
