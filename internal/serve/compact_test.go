package serve

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meetpoly"
	"meetpoly/internal/faultinject"
)

// TestCompact: an interrupted-and-resumed campaign leaves duplicate
// boundary records and a fragmented ranges.log; Compact rewrites both
// logs to their minimal sealed form, and the compacted checkpoint
// replays to the byte-identical report.
func TestCompact(t *testing.T) {
	ctx := context.Background()
	spec := serveSpec()
	want := referenceReport(t)
	dir := t.TempDir()

	// Kill after the second flush, then resume to completion: the
	// resulting logs have multiple sealed ranges and (with a small
	// flush interval) plenty of lines to shrink.
	_, err := RunShard(ctx, ShardConfig{
		Engine: newServeEngine(), Spec: spec, Dir: dir,
		FlushEvery: 4, Faults: faultinject.MustNew("kill=2"),
	}, func(meetpoly.SweepCellResult) bool { return true })
	if !errors.Is(err, faultinject.ErrKilled) {
		t.Fatalf("chaos run returned %v, want injected kill", err)
	}
	// Simulate the crash-between-fsyncs duplicate: append a sealed
	// result again without touching ranges.log. Recovery dedupes it,
	// so Compact must drop it.
	dup, _ := os.ReadFile(filepath.Join(dir, resultsFile))
	firstLine := dup[:bytes.IndexByte(dup, '\n')+1]
	f, err := os.OpenFile(filepath.Join(dir, resultsFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(firstLine)
	f.Close()

	if _, err := RunShard(ctx, ShardConfig{
		Engine: newServeEngine(), Spec: spec, Dir: dir, FlushEvery: 4,
	}, func(meetpoly.SweepCellResult) bool { return true }); err != nil {
		t.Fatal(err)
	}

	st, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	total, _ := meetpoly.CountSweep(spec)
	if st.Cells != total {
		t.Fatalf("compacted to %d cells, want %d", st.Cells, total)
	}
	if st.Ranges != 1 {
		t.Fatalf("completed campaign compacted to %d ranges, want 1", st.Ranges)
	}
	if st.BytesAfter >= st.BytesBefore {
		t.Fatalf("results.ndjson grew: %d -> %d bytes", st.BytesBefore, st.BytesAfter)
	}
	rng, err := os.ReadFile(filepath.Join(dir, rangesFile))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(rng)); strings.ContainsRune(got, '\n') {
		t.Fatalf("ranges.log after compaction has multiple lines:\n%s", got)
	}

	// The compacted checkpoint replays the whole campaign without
	// re-executing a single cell, to the byte-identical report.
	ran := 0
	rep, err := RunShard(ctx, ShardConfig{
		Engine: newServeEngine(), Spec: spec, Dir: dir,
		onCellRun: func(int) { ran++ },
	}, func(meetpoly.SweepCellResult) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Fatalf("%d cells re-executed after compaction", ran)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("compacted checkpoint replays to a different report")
	}

	// Compacting an already-compact checkpoint is a no-op rewrite.
	st2, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.BytesAfter != st.BytesAfter || st2.Cells != st.Cells || st2.Ranges != 1 {
		t.Fatalf("second compaction changed the logs: %+v vs %+v", st2, st)
	}
}

// TestCompactRefusesCorruption: a sealed range whose results are gone
// violates the checkpoint invariant; Compact must refuse rather than
// rewrite the damage into a clean-looking checkpoint.
func TestCompactRefusesCorruption(t *testing.T) {
	dir := t.TempDir()
	cp, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := cp.Record(syntheticResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	// Lose the results while keeping the seal.
	if err := os.Truncate(filepath.Join(dir, resultsFile), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Compact on a seal-without-results checkpoint returned %v, want corruption refusal", err)
	}
}

// TestCompactEmpty: a fresh directory compacts to empty logs without
// error (0 cells, 0 ranges).
func TestCompactEmpty(t *testing.T) {
	dir := t.TempDir()
	st, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 0 || st.Ranges != 0 || st.BytesAfter != 0 {
		t.Fatalf("empty compaction stats %+v", st)
	}
}
