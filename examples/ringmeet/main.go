// Ringmeet demonstrates a structural phenomenon of asynchronous
// rendezvous this reproduction surfaced: on an ORIENTED ring (port 0 =
// clockwise everywhere) with rotation-equivalent starts, both agents'
// early trajectories coincide (every modified label begins 11), their
// walks are exact rotations of one another, and no schedule produces a
// meeting until the first differing label bit — which the paper's exact
// trajectory definitions place ~1e11 traversals out even for n = 4.
// Shuffling the ports breaks the translation symmetry and the same agents
// meet within a few hundred traversals.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"meetpoly"
)

func run(eng *meetpoly.Engine, name string, spec meetpoly.GraphSpec) {
	res, err := eng.Run(context.Background(), meetpoly.Scenario{
		Name:      name,
		Kind:      meetpoly.ScenarioRendezvous,
		Graph:     spec,
		Starts:    []int{0, 2},
		Labels:    []meetpoly.Label{1, 3},
		Adversary: "roundrobin",
		Budget:    200_000,
	})
	if err != nil && !errors.Is(err, meetpoly.ErrBudgetExhausted) {
		log.Fatal(err)
	}
	if rv := res.Rendezvous; rv.Met {
		fmt.Printf("%-14s met after %d traversals\n", name, rv.Meeting.Cost)
	} else {
		fmt.Printf("%-14s no meeting within budget (symmetric walks never coincide)\n", name)
	}
}

func main() {
	eng := meetpoly.NewEngine(meetpoly.WithMaxN(6), meetpoly.WithSeed(1))
	fmt.Println("labels 1 and 3, starts 0 and 2, round-robin schedule, budget 200k events")
	fmt.Println()
	run(eng, "oriented ring", meetpoly.GraphSpec{Kind: "ring", N: 4})
	run(eng, "shuffled ports", meetpoly.GraphSpec{Kind: "ring", N: 4, Seed: 4, Shuffle: true})
	fmt.Println()
	fmt.Println("The guarantee of Theorem 3.1 is intact in both cases — on the oriented")
	fmt.Println("ring it is simply enforced by the label-bit machinery, whose pieces the")
	fmt.Println("exact definitions make astronomically long (see cmd/costtable -table E3).")
}
