// Package buildinfo is the single source of version/build stamping for
// every cmd: a -version flag surface, the /healthz version field, and
// the meetpoly_build_info gauge on /metrics all render from here, so
// they cannot disagree.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"meetpoly/internal/telemetry"
)

// Version is the release stamp, overridable at link time:
//
//	go build -ldflags "-X meetpoly/internal/buildinfo.Version=v1.2.3"
//
// It stays "dev" for plain builds; Revision then distinguishes them.
var Version = "dev"

// Revision returns the VCS revision baked in by the Go toolchain (12
// hex chars, "-dirty" suffixed for modified trees), or "unknown" when
// built outside a checkout.
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// String renders the one-line -version output for a command, e.g.
//
//	rvsweep dev (abc123def456) go1.24.0 linux/amd64
func String(cmd string) string {
	return fmt.Sprintf("%s %s (%s) %s %s/%s",
		cmd, Version, Revision(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// InfoGauge declares the conventional build-info series on r:
//
//	meetpoly_build_info{cmd="rvserved",version="dev",revision="…",goversion="go1.24.0"} 1
//
// A constant-1 gauge whose labels carry the build identity, so any
// scraper can join build metadata onto every other series.
func InfoGauge(r *telemetry.Registry, cmd string) {
	r.Gauge("meetpoly_build_info",
		"Build identity of this process; value is always 1.",
		telemetry.L("cmd", cmd),
		telemetry.L("version", Version),
		telemetry.L("revision", Revision()),
		telemetry.L("goversion", runtime.Version()),
	).Set(1)
}
