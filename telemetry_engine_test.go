package meetpoly

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"meetpoly/internal/telemetry"
)

// telemetryTestSpec is cacheTestSpec widened to every builtin kind, so
// the differential covers the batched tier (rendezvous, baseline) and
// the per-cell tiers (esst, sgl, certify) alike.
func telemetryTestSpec() SweepSpec {
	spec := cacheTestSpec()
	spec.Kinds = []string{"rendezvous", "baseline", "esst", "sgl", "certify"}
	spec.Budget = 40_000
	return spec
}

// TestSweepTelemetryInvisibleToResults is the tentpole's differential:
// the same campaign swept with telemetry off, telemetry on, and a cell
// tracer attached must produce byte-identical reports — recording is
// observation, never participation.
func TestSweepTelemetryInvisibleToResults(t *testing.T) {
	spec := telemetryTestSpec()
	ctx := context.Background()

	plain, err := NewEngine().Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetrics()
	instrumented, err := NewEngine(WithTelemetry(reg)).Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var spans int
	traced, err := NewEngine(WithCellTrace(func(CellTraceEvent) { spans++ })).Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	jp, ji, jt := mustJSON(t, plain), mustJSON(t, instrumented), mustJSON(t, traced)
	if !bytes.Equal(jp, ji) {
		t.Errorf("telemetry changed the sweep report:\noff: %s\non:  %s", jp, ji)
	}
	if !bytes.Equal(jp, jt) {
		t.Errorf("cell tracing changed the sweep report:\noff:    %s\ntraced: %s", jp, jt)
	}

	// And the instrumentation actually observed the sweep.
	total, err := CountSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if spans != 2*total {
		t.Errorf("tracer saw %d spans, want %d (begin+end per cell)", spans, 2*total)
	}
	snap := make(map[string]float64)
	var judged float64
	for _, p := range reg.Snapshot() {
		snap[p.Name]++
		if p.Name == "meetpoly_engine_cells_total" {
			judged += p.Value
		}
	}
	if judged != float64(total) {
		t.Errorf("meetpoly_engine_cells_total sums to %v, want %d", judged, total)
	}
	for _, name := range []string{
		"meetpoly_engine_cache_hits_total",
		"meetpoly_engine_cache_misses_total",
		"meetpoly_engine_cell_verdicts_total",
		"meetpoly_engine_batch_cells_total",
		"meetpoly_engine_route_replays_total",
		"meetpoly_engine_pi_slack_millibits",
	} {
		if snap[name] == 0 {
			t.Errorf("series %s missing from the instrumented sweep's snapshot", name)
		}
	}
}

// TestCellTraceSpans pins the tracer contract: one begin and one end
// per cell, ends carry the wall time and verdict, and spans arrive
// serialized (the callback mutates shared state without locking).
func TestCellTraceSpans(t *testing.T) {
	spec := cacheTestSpec()
	open := make(map[int]bool)
	var ends int
	eng := NewEngine(WithCellTrace(func(ev CellTraceEvent) {
		switch ev.Phase {
		case "begin":
			if open[ev.Index] {
				t.Errorf("cell %d: second begin before end", ev.Index)
			}
			open[ev.Index] = true
			if ev.WallNs != 0 {
				t.Errorf("cell %d: begin event carries a wall time", ev.Index)
			}
		case "end":
			if !open[ev.Index] {
				t.Errorf("cell %d: end without begin", ev.Index)
			}
			delete(open, ev.Index)
			ends++
			if ev.WallNs < 0 {
				t.Errorf("cell %d: negative wall time %d", ev.Index, ev.WallNs)
			}
			if ev.ID == "" || ev.Seed == "" || ev.Kind == "" || ev.Graph == "" {
				t.Errorf("cell %d: end event missing identity: %+v", ev.Index, ev)
			}
		default:
			t.Errorf("unknown trace phase %q", ev.Phase)
		}
	}))
	if eng.batchEligible() {
		t.Error("an attached cell tracer must disable the batched tier")
	}
	rep, err := eng.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(open) != 0 {
		t.Errorf("%d cells ended the sweep with open spans", len(open))
	}
	if ends != rep.Cells {
		t.Errorf("saw %d end spans, want %d", ends, rep.Cells)
	}
}

// TestEngineMetricsCacheConsistency pins the no-drift contract shared
// with /v1/stats: the cache series on /metrics decode the same packed
// word CacheStats reads.
func TestEngineMetricsCacheConsistency(t *testing.T) {
	reg := NewMetrics()
	eng := NewEngine(WithTelemetry(reg))
	if _, err := eng.Sweep(context.Background(), cacheTestSpec()); err != nil {
		t.Fatal(err)
	}
	stats := eng.CacheStats()
	var hits, misses float64
	for _, p := range reg.Snapshot() {
		switch p.Name {
		case "meetpoly_engine_cache_hits_total":
			hits = p.Value
		case "meetpoly_engine_cache_misses_total":
			misses = p.Value
		}
	}
	if hits != float64(stats.Hits) || misses != float64(stats.Misses) {
		t.Errorf("metrics (hits=%v misses=%v) drifted from CacheStats (%+v)", hits, misses, stats)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE meetpoly_engine_cache_hits_total counter") {
		t.Errorf("exposition missing the cache series:\n%s", b.String())
	}
}

// TestTelemetryNowMonotonic pins the clock the engine timings ride on.
func TestTelemetryNowMonotonic(t *testing.T) {
	a := telemetry.Now()
	b := telemetry.Now()
	if b < a {
		t.Errorf("telemetry clock went backwards: %d then %d", a, b)
	}
}
