package client

import (
	"time"

	"meetpoly"
	"meetpoly/internal/telemetry"
)

// clientMetrics holds the self-healing client's pre-resolved handles.
// Counting happens at the site that creates each retryable error, so
// the classification can never drift from the retry policy itself. A
// nil *clientMetrics (no registry configured) records nothing; every
// method is nil-safe so call sites stay unconditional.
type clientMetrics struct {
	cells      *telemetry.Counter // new cell results folded
	duplicates *telemetry.Counter // duplicate cells dropped across resume boundaries

	retryRetryAfter *telemetry.Counter // 429/503 refusals honoring Retry-After
	retryHTTP       *telemetry.Counter // retryable HTTP statuses and server-reported errors
	retryTransport  *telemetry.Counter // transport failures before any status line
	retryStream     *telemetry.Counter // mid-stream cuts, garbled lines, missing trailers

	backoffNs    *telemetry.Counter // total nanoseconds slept in backoff
	healedRanges *telemetry.Counter // gap ranges re-requested on resume attempts
}

func newClientMetrics(reg *meetpoly.Metrics) *clientMetrics {
	if reg == nil {
		return nil
	}
	retry := func(reason string) *telemetry.Counter {
		return reg.Counter("meetpoly_client_retries_total",
			"Retryable sweep-attempt failures, by classification.",
			telemetry.L("reason", reason))
	}
	return &clientMetrics{
		cells: reg.Counter("meetpoly_client_cells_total",
			"New cell results received and folded."),
		duplicates: reg.Counter("meetpoly_client_duplicate_cells_total",
			"Duplicate cells received across resume boundaries and dropped."),
		retryRetryAfter: retry("retry_after"),
		retryHTTP:       retry("http"),
		retryTransport:  retry("transport"),
		retryStream:     retry("stream"),
		backoffNs: reg.Counter("meetpoly_client_backoff_ns_total",
			"Total nanoseconds slept waiting to retry."),
		healedRanges: reg.Counter("meetpoly_client_healed_ranges_total",
			"Gap ranges re-requested when resuming an interrupted stream."),
	}
}

func (m *clientMetrics) cell() {
	if m != nil {
		m.cells.Inc()
	}
}

func (m *clientMetrics) duplicate() {
	if m != nil {
		m.duplicates.Inc()
	}
}

func (m *clientMetrics) retriedRetryAfter() {
	if m != nil {
		m.retryRetryAfter.Inc()
	}
}

func (m *clientMetrics) retriedHTTP() {
	if m != nil {
		m.retryHTTP.Inc()
	}
}

func (m *clientMetrics) retriedTransport() {
	if m != nil {
		m.retryTransport.Inc()
	}
}

func (m *clientMetrics) retriedStream() {
	if m != nil {
		m.retryStream.Inc()
	}
}

func (m *clientMetrics) backedOff(d time.Duration) {
	if m != nil {
		m.backoffNs.Add(uint64(d))
	}
}

func (m *clientMetrics) healed(ranges int) {
	if m != nil {
		m.healedRanges.Add(uint64(ranges))
	}
}
