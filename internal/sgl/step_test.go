package sgl

import (
	"reflect"
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/sched"
)

// TestStepMatchesRun is the package-level differential proof that the
// state-machine program (agent.Step, direct-dispatch core) and the
// blocking program (agent.Run, goroutine core) are the same algorithm:
// identical instances driven through both cores must produce identical
// reports and scheduler summaries, including traversal counts.
func TestStepMatchesRun(t *testing.T) {
	env := testEnv(t)
	cases := []struct {
		name   string
		g      *graph.Graph
		starts []int
		labs   []labels.Label
		adv    func() sched.Adversary
	}{
		{"path4/rr", graph.Path(4), []int{0, 3}, []labels.Label{2, 5}, func() sched.Adversary { return &sched.RoundRobin{} }},
		{"ring5/random", graph.Ring(5), []int{0, 2, 4}, []labels.Label{3, 1, 6}, func() sched.Adversary { return sched.NewRandom(5) }},
		{"star5/biased", graph.Star(5), []int{1, 2, 3}, []labels.Label{7, 4, 2}, func() sched.Adversary { return &sched.Biased{Weights: []int{1, 5, 9}} }},
		{"clique4/avoider", graph.Complete(4), []int{0, 1, 2, 3}, []labels.Label{9, 3, 5, 1}, func() sched.Adversary { return &sched.Avoider{} }},
	}
	for _, tc := range cases {
		run := func(force bool) *Result {
			res, err := Run(Config{
				Graph:         tc.g,
				Starts:        tc.starts,
				Labels:        tc.labs,
				Env:           env,
				Adversary:     tc.adv(),
				MaxSteps:      20_000_000,
				ForceBlocking: force,
			})
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			return res
		}
		fast, slow := run(false), run(true)
		if !reflect.DeepEqual(fast.Summary, slow.Summary) {
			t.Fatalf("%s: summaries diverge:\nfast %+v\nslow %+v", tc.name, fast.Summary, slow.Summary)
		}
		if !reflect.DeepEqual(fast.Agents, slow.Agents) {
			t.Fatalf("%s: agent reports diverge:\nfast %+v\nslow %+v", tc.name, fast.Agents, slow.Agents)
		}
		if fast.AllOutput != slow.AllOutput || fast.TotalCost != slow.TotalCost {
			t.Fatalf("%s: outcomes diverge: fast (%v, %d) slow (%v, %d)",
				tc.name, fast.AllOutput, fast.TotalCost, slow.AllOutput, slow.TotalCost)
		}
		if !fast.AllOutput {
			t.Fatalf("%s: SGL incomplete on both cores", tc.name)
		}
	}
}
