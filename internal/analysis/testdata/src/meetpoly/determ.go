// Package meetpoly is the determinism fixture. Its import path matches
// the analyzer's default -pkgs regexp, and each flagged line is a
// seeded copy of a bug class the rule exists to catch: a result stamped
// with the wall clock, a cell outcome drawn from the process-global
// rand, report text ordered by map iteration, and a pointer formatted
// into a seed string.
package meetpoly

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

type cell struct {
	Name string
	N    int
}

// stampResult seeds the time.Now bug: two runs of one seed disagree.
func stampResult(c *cell) int64 {
	return time.Now().UnixNano() // want `time\.Now`
}

// jitter seeds the global-rand bug: the stream depends on every other
// draw in the process.
func jitter() int {
	return rand.Intn(8) // want `global math/rand`
}

// jitterSeeded is the legal form: an explicit source derived from the
// cell seed.
func jitterSeeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(8)
}

// describe seeds the pointer-formatting bug: %v of a pointer is an
// address, different every run.
func describe(c *cell) string {
	if c.N > 1 {
		return fmt.Sprintf("cell at %p", c) // want `%p` `memory address`
	}
	return fmt.Sprint(c) // want `memory address`
}

// describeValue formats contents, not identity.
func describeValue(c *cell) string {
	return fmt.Sprintf("cell %s n=%d", c.Name, c.N)
}

// emit seeds the map-order bug twice: once into an ordered sink, once
// into a slice that is never sorted.
func emit(byName map[string]cell) []string {
	var names []string
	for name := range byName {
		fmt.Println(name)                    // want `map iteration order`
		names = append(names, name+"-suffx") // want `never sorted`
	}
	return names
}

// emitSorted launders the iteration order through a sort before it can
// be observed: legal.
func emitSorted(byName map[string]cell) []string {
	var names []string
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// stampAllowed shows a reviewed suppression: the timestamp feeds a log
// line, not a result.
func stampAllowed() int64 {
	//lint:allow determinism -- wall time feeds diagnostics only
	return time.Now().UnixNano()
}
