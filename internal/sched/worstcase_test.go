package sched

import (
	"math/rand"
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/trajectory"
)

func TestWorstScheduleRealizesCertifiedCost(t *testing.T) {
	// For random forced instances, replaying the reconstructed schedule
	// through the runner must reproduce the certified worst-case meeting
	// cost EXACTLY — the certifier's number is executable, not abstract.
	rng := rand.New(rand.NewSource(23))
	realized := 0
	for trial := 0; trial < 200 && realized < 25; trial++ {
		g := graph.RandomConnected(2+rng.Intn(4), 0.5, int64(3000+trial))
		steps := 3 + rng.Intn(8)
		mkPorts := func() []int {
			ports := make([]int, steps)
			for i := range ports {
				ports[i] = rng.Intn(8)
			}
			return ports
		}
		pa, pb := mkPorts(), mkPorts()
		sa := rng.Intn(g.N())
		sb := (sa + 1 + rng.Intn(g.N()-1)) % g.N()
		ta, _ := trajectory.Run(g, sa, script(pa...), steps+1)
		tb, _ := trajectory.Run(g, sb, script(pb...), steps+1)
		routeA := append([]int{sa}, ta.Nodes...)
		routeB := append([]int{sb}, tb.Nodes...)

		schedule, res, err := WorstSchedule(routeA, routeB)
		if err != nil {
			continue // not forced; nothing to realize
		}
		realized++
		a := &Walker{Stepper: script(pa...)}
		b := &Walker{Stepper: script(pb...)}
		r := mustRunner(t, Config{
			Graph: g, Starts: []int{sa, sb}, Agents: []Agent{a, b},
			InitiallyAwake: []int{0, 1}, MaxSteps: len(schedule) + 10,
		}, &ScheduleAdversary{Schedule: schedule})
		sum := r.Run()
		if sum.FirstMeeting == nil {
			t.Fatalf("trial %d: worst schedule produced no meeting\nA=%v\nB=%v\nsched=%v",
				trial, routeA, routeB, schedule)
		}
		if sum.FirstMeeting.Cost != res.WorstCompleted {
			t.Fatalf("trial %d: replayed cost %d != certified worst %d\nA=%v\nB=%v",
				trial, sum.FirstMeeting.Cost, res.WorstCompleted, routeA, routeB)
		}
	}
	if realized < 5 {
		t.Skipf("only %d forced instances sampled", realized)
	}
}

func TestWorstScheduleOnTwoPath(t *testing.T) {
	// The worked example: worst completed cost 1, realized by advancing
	// one agent a full edge while the other waits.
	routeA := []int{0, 1, 0, 1}
	routeB := []int{1, 0, 1, 0}
	schedule, res, err := WorstSchedule(routeA, routeB)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstCompleted != 1 {
		t.Fatalf("certified worst %d, want 1", res.WorstCompleted)
	}
	if len(schedule) < 2 {
		t.Fatalf("schedule too short: %v", schedule)
	}
}

func TestWorstScheduleErrorsOnEscape(t *testing.T) {
	// Co-rotation on a ring: no forced meeting, so no worst case.
	n := 6
	mk := func(start, steps int) []int {
		r := make([]int, steps+1)
		for i := range r {
			r[i] = (start + i) % n
		}
		return r
	}
	if _, _, err := WorstSchedule(mk(0, 30), mk(3, 30)); err == nil {
		t.Error("expected error for escapable instance")
	}
}

func TestScheduleAdversaryExhaustion(t *testing.T) {
	g := graph.Path(3)
	a := &Walker{Stepper: script(0, 1)}
	b := &Walker{Stepper: script()}
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 2}, Agents: []Agent{a, b},
		InitiallyAwake: []int{0, 1}, MaxSteps: 100,
	}, &ScheduleAdversary{Schedule: []int{0, 0}}) // one full edge for A only
	sum := r.Run()
	if sum.Traversals[0] != 1 {
		t.Errorf("A made %d traversals, schedule allows exactly 1", sum.Traversals[0])
	}
}
