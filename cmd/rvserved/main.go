// Command rvserved is the sweep service: a long-lived HTTP daemon that
// accepts campaign SweepSpec JSON, executes this instance's shard of
// the deterministic cell index-range over a shared engine, streams cell
// results as NDJSON while they complete, and checkpoints completed
// index ranges to disk so a crashed or restarted shard resumes without
// recomputing a single cell. A campaign resumed across any number of
// crashes produces the byte-identical report an uninterrupted
// single-process `rvsweep -json` run produces.
//
// Endpoints (see internal/serve):
//
//	POST /v1/sweep        stream the shard's cell results as NDJSON
//	POST /v1/sweep/report run the shard, respond with the report JSON
//	GET  /healthz         200 ok; 503 once draining
//	GET  /v1/stats        service counters and engine cache stats
//
// Horizontal scale is the -shard flag: rvserved -shard 1/3 owns the
// middle third of every campaign's index range, with its own
// checkpoint subdirectory; the shards' streams fold into one report
// through the order-independent aggregator.
//
// SIGTERM/SIGINT drain gracefully: new sweeps are refused (503),
// in-flight runs are canceled — their checkpoints flush everything
// completed so far — and the process exits once they finish or the
// drain timeout expires.
//
// Beyond the daemon, three more modes:
//
//	-coordinator URL  worker mode: pull leases from an rvcoord
//	                  instance, execute them, stream results back,
//	                  heartbeat while running; exits 0 when the
//	                  campaign is done
//	-chaos SPEC       thread a deterministic fault-injection schedule
//	                  (see internal/faultinject) through the daemon or
//	                  worker: checkpoint write/fsync faults, stream
//	                  resets, delays, 503 bursts, kill-after-flush
//	-compact DIR      offline: rewrite a checkpoint directory's logs
//	                  to their minimal sealed form, print stats, exit
//
// Exit codes: 0 clean shutdown / campaign done; 1 runtime error; 2
// usage error; 137 an injected -chaos kill fired (the process
// stand-in for kill -9 — the coordinator's lease expiry takes over).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"meetpoly"
	"meetpoly/internal/faultinject"
	"meetpoly/internal/serve"
	"meetpoly/internal/serve/coord"
)

func main() {
	var (
		addr        = flag.String("addr", ":8747", "address to listen on")
		checkpoints = flag.String("checkpoints", "", "checkpoint root directory (empty disables resume)")
		shard       = flag.String("shard", "0/1", "this instance's shard as i/of (e.g. 1/3 = the middle third of every campaign)")
		maxN        = flag.Int("maxn", 6, "size ceiling of the engine's verified catalog family")
		seed        = flag.Int64("seed", 1, "seed of the engine's verified catalog")
		parallelism = flag.Int("parallelism", 0, "worker pool size (0 = GOMAXPROCS)")
		flushEvery  = flag.Int("flush-every", serve.DefaultFlushEvery, "checkpoint flush interval in completed cells")
		maxCells    = flag.Int("max-cells", 0, "reject campaigns expanding past this many cells (0 = unlimited)")
		maxTenant   = flag.Int("max-tenant-sweeps", serve.DefaultMaxTenantSweeps, "max in-flight sweeps per tenant (X-Tenant header)")
		timeout     = flag.Duration("timeout", 0, "per-request sweep budget (0 = unbounded; requests may tighten with ?budget_ms=)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight sweeps on shutdown")
		coordinator = flag.String("coordinator", "", "worker mode: pull leases from this rvcoord base URL instead of serving HTTP")
		workerName  = flag.String("worker-name", "", "worker mode: name reported to the coordinator (default the hostname)")
		chaos       = flag.String("chaos", "", "deterministic fault-injection spec (see internal/faultinject), e.g. 'seed=7,kill=2,reset=rand:30'")
		compactDir  = flag.String("compact", "", "offline: compact this checkpoint directory's logs and exit")
	)
	flag.Parse()
	shardIdx, shardOf, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvserved:", err)
		flag.Usage()
		os.Exit(2)
	}
	var inj *faultinject.Injector
	if *chaos != "" {
		inj, err = faultinject.New(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rvserved:", err)
			os.Exit(2)
		}
		// The resolved plan is the reproduction recipe: log it.
		fmt.Fprintf(os.Stderr, "rvserved: chaos schedule: %s\n", inj.Schedule())
	}

	if *compactDir != "" {
		st, err := serve.Compact(*compactDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rvserved:", err)
			os.Exit(1)
		}
		fmt.Printf("compacted %s: %d cells, %d ranges, results %d -> %d bytes, ranges %d -> %d bytes\n",
			*compactDir, st.Cells, st.Ranges, st.BytesBefore, st.BytesAfter, st.RangesBefore, st.RangesAfter)
		return
	}

	opts := []meetpoly.Option{meetpoly.WithMaxN(*maxN), meetpoly.WithSeed(*seed)}
	if *parallelism > 0 {
		opts = append(opts, meetpoly.WithParallelism(*parallelism))
	}

	if *coordinator != "" {
		runWorker(*coordinator, *workerName, *checkpoints, *flushEvery, inj, opts)
		return
	}

	svc := serve.New(serve.Config{
		Engine:          meetpoly.NewEngine(opts...),
		CheckpointRoot:  *checkpoints,
		Shard:           shardIdx,
		Of:              shardOf,
		FlushEvery:      *flushEvery,
		MaxCells:        *maxCells,
		MaxTenantSweeps: *maxTenant,
		RequestTimeout:  *timeout,
		Faults:          inj,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rvserved: shard %d/%d listening on %s\n", shardIdx, shardOf, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "rvserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	// Drain before Shutdown: refuse new sweeps, cancel the in-flight
	// ones (their checkpoints flush, so a restart resumes, not
	// recomputes), then close the listener and idle connections.
	fmt.Fprintln(os.Stderr, "rvserved: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	code := 0
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rvserved:", err)
		code = 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "rvserved: shutdown:", err)
		code = 1
	}
	os.Exit(code)
}

// runWorker is the -coordinator mode: a lease-pulling fleet worker.
// An injected kill (chaos kill=<k>) exits 137 like a real kill -9; the
// coordinator's lease expiry handles the rest.
func runWorker(coordURL, name, checkpoints string, flushEvery int, inj *faultinject.Injector, opts []meetpoly.Option) {
	if name == "" {
		name, _ = os.Hostname()
	}
	dir := ""
	if checkpoints != "" {
		dir = filepath.Join(checkpoints, "worker-"+name)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "rvserved: worker %s pulling leases from %s\n", name, coordURL)
	err := coord.RunWorker(ctx, coord.WorkerConfig{
		Coordinator: coordURL,
		Engine:      meetpoly.NewEngine(opts...),
		Name:        name,
		Dir:         dir,
		FlushEvery:  flushEvery,
		Faults:      inj,
	})
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "rvserved: worker %s: campaign done\n", name)
	case errors.Is(err, faultinject.ErrKilled):
		fmt.Fprintf(os.Stderr, "rvserved: worker %s: injected kill\n", name)
		os.Exit(137)
	default:
		fmt.Fprintf(os.Stderr, "rvserved: worker %s: %v\n", name, err)
		os.Exit(1)
	}
}

// parseShard parses the -shard flag's "i/of" form: of >= 1 and
// 0 <= i < of.
func parseShard(s string) (i, of int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard must be i/of, got %q", s)
	}
	i, err1 := strconv.Atoi(a)
	of, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || of < 1 || i < 0 || i >= of {
		return 0, 0, fmt.Errorf("-shard must be i/of with 0 <= i < of, got %q", s)
	}
	return i, of, nil
}
