// Package experiments regenerates every quantitative artifact of the
// paper (experiments E1-E8 and Figures F1-F4 of EXPERIMENTS.md) as typed
// tables. The CLI tools, the benchmark harness and the integration tests
// all consume these generators, so the numbers in reports are produced by
// exactly one code path.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are Sprint-ed.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}
