package main

import (
	"context"
	"encoding/json"
	"errors"
	"iter"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meetpoly"
)

// cellLine renders one NDJSON stream record for a seed, the way
// `rvsweep -stream` emits it.
func cellLine(t *testing.T, seed string, failed bool) string {
	t.Helper()
	cr := meetpoly.SweepCellResult{
		Cell:    meetpoly.SweepCell{ID: "cell-" + seed, Seed: seed},
		Outcome: meetpoly.SweepOutcome{Met: true, Cost: 3},
	}
	if failed {
		cr.Failures = []meetpoly.SweepOracleFailure{{Oracle: "pi-bound", Err: "over bound"}}
	}
	out, err := json.Marshal(cr)
	if err != nil {
		t.Fatal(err)
	}
	return string(out) + "\n"
}

// reportDoc renders an aggregate -json report artifact carrying the
// given failing seeds.
func reportDoc(t *testing.T, failSeeds ...string) string {
	t.Helper()
	rep := meetpoly.SweepReport{Cells: 4}
	for _, s := range failSeeds {
		rep.Failures = append(rep.Failures, meetpoly.SweepCellResult{
			Cell:     meetpoly.SweepCell{ID: "cell-" + s, Seed: s},
			Failures: []meetpoly.SweepOracleFailure{{Oracle: "pi-bound", Err: "over bound"}},
		})
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestScanRecordMalformedInputMatrix pins the -against ingestion
// contract over well-formed and malformed artifacts alike: trailing
// blank lines are benign, truncated or garbage records and duplicate
// seeds are errMalformedRecord (the exit-2 class), and lookups in clean
// artifacts behave as documented.
func TestScanRecordMalformedInputMatrix(t *testing.T) {
	const seed = "camp#3"
	other := cellLine(t, "camp#1", false)
	target := cellLine(t, seed, false)
	cases := map[string]struct {
		input      string
		found      bool
		fromReport bool
		malformed  bool
	}{
		"stream has seed":            {input: other + target, found: true},
		"stream lacks seed":          {input: other + cellLine(t, "camp#9", true)},
		"trailing newline":           {input: other + target + "\n", found: true},
		"trailing blank lines":       {input: target + "\n\n  \n", found: true},
		"empty file":                 {input: "", malformed: true},
		"whitespace-only file":       {input: "\n \n", malformed: true},
		"leading garbage":            {input: "not-json\n" + target, malformed: true},
		"garbage between records":    {input: other + "not-json\n" + target, malformed: true},
		"truncated final record":     {input: other + target[:len(target)/2], malformed: true},
		"truncated after seed found": {input: target + other[:20], malformed: true},
		"duplicate seed":             {input: target + other + target, malformed: true},
		"array not stream":           {input: "[1, 2, 3]", malformed: true},
		"report has seed":            {input: reportDoc(t, "camp#0", seed), found: true, fromReport: true},
		"report lacks seed":          {input: reportDoc(t, "camp#0"), fromReport: true},
		"report duplicate seed":      {input: reportDoc(t, seed, seed), fromReport: true, malformed: true},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			rec, found, fromReport, err := scanRecord(strings.NewReader(tc.input), "test-record", seed)
			if tc.malformed {
				if !errors.Is(err, errMalformedRecord) {
					t.Fatalf("want errMalformedRecord, got err=%v (found=%v)", err, found)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if found != tc.found || fromReport != tc.fromReport {
				t.Fatalf("found=%v fromReport=%v, want %v/%v", found, fromReport, tc.found, tc.fromReport)
			}
			if found && rec.Cell.Seed != seed {
				t.Fatalf("found record carries seed %q, want %q", rec.Cell.Seed, seed)
			}
		})
	}
}

// TestCheckAgainstExitCodes pins the exit classification: a malformed
// artifact exits 2 (input problem), a seed missing from a stream record
// exits 1, and a matching record exits nowhere and reports no
// divergence.
func TestCheckAgainstExitCodes(t *testing.T) {
	const seed = "camp#3"
	cr := meetpoly.SweepCellResult{
		Cell:    meetpoly.SweepCell{ID: "cell-" + seed, Seed: seed},
		Outcome: meetpoly.SweepOutcome{Met: true, Cost: 3},
	}
	write := func(t *testing.T, content string) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "record")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// run drives checkAgainst with an exit func that unwinds like
	// os.Exit (the real one never returns).
	type exited struct{ code int }
	run := func(t *testing.T, path string) (code int, diverged bool) {
		t.Helper()
		code = -1
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(exited); ok {
					code = e.code
					return
				}
				panic(r)
			}
		}()
		diverged = checkAgainst(path, cr, func(c int) { panic(exited{code: c}) })
		return code, diverged
	}

	if code, _ := run(t, write(t, cellLine(t, seed, false)+cellLine(t, seed, false))); code != 2 {
		t.Errorf("duplicate seed: exit %d, want 2", code)
	}
	if code, _ := run(t, write(t, "not-json\n")); code != 2 {
		t.Errorf("garbage record: exit %d, want 2", code)
	}
	if code, _ := run(t, write(t, cellLine(t, "camp#1", false))); code != 1 {
		t.Errorf("seed missing from stream: exit %d, want 1", code)
	}
	code, diverged := run(t, write(t, cellLine(t, seed, false)))
	if code != -1 || diverged {
		t.Errorf("matching record: exit %d diverged %v, want no exit and no divergence", code, diverged)
	}
}

// TestExclusiveModes pins the mode-flag matrix: any two of -count,
// -expand, -replay, -stream together are a usage error naming both
// flags, while each alone (or none) is accepted.
func TestExclusiveModes(t *testing.T) {
	cases := []struct {
		name          string
		count, expand bool
		replay        string
		stream        bool
		wantErr       bool
	}{
		{name: "none"},
		{name: "count alone", count: true},
		{name: "expand alone", expand: true},
		{name: "replay alone", replay: "s#1"},
		{name: "stream alone", stream: true},
		{name: "expand+stream", expand: true, stream: true, wantErr: true},
		{name: "count+replay", count: true, replay: "s#1", wantErr: true},
		{name: "count+expand", count: true, expand: true, wantErr: true},
		{name: "replay+stream", replay: "s#1", stream: true, wantErr: true},
		{name: "all four", count: true, expand: true, replay: "s#1", stream: true, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := exclusiveModes(tc.count, tc.expand, tc.replay, tc.stream)
			if (err != nil) != tc.wantErr {
				t.Fatalf("exclusiveModes = %v, wantErr %v", err, tc.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), "mutually exclusive") {
				t.Fatalf("error %q does not name the conflict", err)
			}
		})
	}
	// The message must name the offending flags so the fix is obvious.
	err := exclusiveModes(false, true, "", true)
	for _, flag := range []string{"-expand", "-stream"} {
		if !strings.Contains(err.Error(), flag) {
			t.Errorf("error %q does not name %s", err, flag)
		}
	}
}

// seq adapts a fixed result list (plus an optional terminal stream
// error) into the iterator shape streamSweep consumes.
func seq(rs []meetpoly.SweepCellResult, terminal error) iter.Seq2[meetpoly.SweepCellResult, error] {
	return func(yield func(meetpoly.SweepCellResult, error) bool) {
		for _, r := range rs {
			if !yield(r, nil) {
				return
			}
		}
		if terminal != nil {
			yield(meetpoly.SweepCellResult{}, terminal)
		}
	}
}

// TestStreamSweepExitCodes pins the -stream exit contract the CI gate
// depends on: 0 only for a fully clean stream; any oracle failure or
// canceled cell is 1; a stream error surfaces as an error (the caller
// exits 1 through fatal). Every emitted line must stay parseable
// NDJSON.
func TestStreamSweepExitCodes(t *testing.T) {
	pass := meetpoly.SweepCellResult{
		Cell:    meetpoly.SweepCell{ID: "c0", Seed: "s#0"},
		Outcome: meetpoly.SweepOutcome{Met: true, Cost: 2},
	}
	fail := meetpoly.SweepCellResult{
		Cell:     meetpoly.SweepCell{Index: 1, ID: "c1", Seed: "s#1"},
		Outcome:  meetpoly.SweepOutcome{Met: true, Cost: 9},
		Failures: []meetpoly.SweepOracleFailure{{Oracle: "pi-bound", Err: "over bound"}},
	}
	canc := meetpoly.SweepCellResult{
		Cell:    meetpoly.SweepCell{Index: 2, ID: "c2", Seed: "s#2"},
		Outcome: meetpoly.SweepOutcome{Canceled: true},
	}
	boom := errors.New("boom")

	cases := []struct {
		name     string
		results  []meetpoly.SweepCellResult
		terminal error
		wantCode int
		wantErr  bool
		wantRows int
	}{
		{name: "all pass", results: []meetpoly.SweepCellResult{pass, pass}, wantCode: 0, wantRows: 2},
		{name: "one oracle failure", results: []meetpoly.SweepCellResult{pass, fail, pass}, wantCode: 1, wantRows: 3},
		{name: "one canceled", results: []meetpoly.SweepCellResult{pass, canc}, wantCode: 1, wantRows: 2},
		{name: "failure and canceled", results: []meetpoly.SweepCellResult{fail, canc}, wantCode: 1, wantRows: 2},
		{name: "empty stream", wantCode: 0, wantRows: 0},
		{name: "stream error", results: []meetpoly.SweepCellResult{pass}, terminal: boom, wantCode: 1, wantErr: true, wantRows: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut strings.Builder
			code, err := streamSweep(seq(tc.results, tc.terminal), &out, &errOut)
			if code != tc.wantCode || (err != nil) != tc.wantErr {
				t.Fatalf("streamSweep = (%d, %v), want (%d, err=%v)", code, err, tc.wantCode, tc.wantErr)
			}
			lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
			if out.String() == "" {
				lines = nil
			}
			if len(lines) != tc.wantRows {
				t.Fatalf("emitted %d NDJSON rows, want %d", len(lines), tc.wantRows)
			}
			for _, line := range lines {
				var cr meetpoly.SweepCellResult
				if uerr := json.Unmarshal([]byte(line), &cr); uerr != nil {
					t.Fatalf("unparseable NDJSON line %q: %v", line, uerr)
				}
			}
		})
	}
}

// TestStreamSweepRealOracleFailure closes the loop end to end: a real
// engine stream judged by an always-failing oracle must exit 1 — the
// regression this PR fixes was precisely that the streamed-oracle exit
// path was untested, so nothing pinned `rvsweep -stream` as a CI gate.
func TestStreamSweepRealOracleFailure(t *testing.T) {
	spec := meetpoly.SweepSpec{
		Name:  "stream-exit",
		Seed:  "stream-exit-v1",
		Kinds: []string{"rendezvous"},
		Graphs: []meetpoly.SweepGraphAxis{
			{Kind: "path", Sizes: []int{3}},
		},
		StartPairs:  1,
		LabelPairs:  1,
		Adversaries: []string{""},
		Budget:      3000,
		Moves:       60,
	}
	eng := meetpoly.NewEngine(meetpoly.WithMaxN(4), meetpoly.WithSeed(1))

	var out, errOut strings.Builder
	code, err := streamSweep(eng.SweepStream(context.Background(), spec), &out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("clean stream = (%d, %v), want (0, nil)", code, err)
	}

	reject := meetpoly.SweepOracle(rejectAll{})
	out.Reset()
	errOut.Reset()
	code, err = streamSweep(eng.SweepStreamWithOracles(context.Background(), spec, reject), &out, &errOut)
	if err != nil || code != 1 {
		t.Fatalf("oracle-failing stream = (%d, %v), want (1, nil)", code, err)
	}
	if !strings.Contains(errOut.String(), "1 oracle failures") {
		t.Fatalf("stderr summary %q does not count the failure", errOut.String())
	}
}

// rejectAll is an oracle that fails every cell.
type rejectAll struct{}

func (rejectAll) Name() string { return "reject-all" }
func (rejectAll) Check(meetpoly.SweepCell, meetpoly.SweepOutcome) error {
	return errors.New("rejected by test oracle")
}
