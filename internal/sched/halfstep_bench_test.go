package sched_test

import (
	"testing"

	"meetpoly/internal/schedbench"
)

// BenchmarkRunnerHalfSteps measures ns (and allocations) per adversary
// half-step on both execution cores. The stepper core's zero-handoff
// dispatch is required to be >= 5x faster than the goroutine core's
// channel ping-pong; cmd/rvbench runs the same harness and records the
// numbers in BENCH_sched.json.
func BenchmarkRunnerHalfSteps(b *testing.B) {
	b.Run("stepper", schedbench.HalfSteps(false))
	b.Run("goroutine", schedbench.HalfSteps(true))
}
