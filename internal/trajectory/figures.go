package trajectory

import (
	"fmt"
	"io"
	"math/big"
	"strings"
)

// Kind identifies a trajectory family from Definitions 3.1-3.8.
type Kind string

// The trajectory kinds of §3.1.
const (
	KindR      Kind = "R"
	KindX      Kind = "X"
	KindQ      Kind = "Q"
	KindYPrime Kind = "Y'"
	KindY      Kind = "Y"
	KindZ      Kind = "Z"
	KindAPrime Kind = "A'"
	KindA      Kind = "A"
	KindB      Kind = "B"
	KindK      Kind = "K"
	KindOmega  Kind = "Ω"
)

// Desc is a node of a trajectory's structural decomposition: the
// machine-checkable counterpart of the paper's Figures 1-4.
type Desc struct {
	Label    string   // e.g. "Q(3,v)"
	Len      *big.Int // exact number of edge traversals
	Children []*Desc  // immediate constituents, possibly elided
	Repeat   *big.Int // non-nil when the structure is child^Repeat
	Elided   int      // number of children omitted from Children
}

// Describe returns the structural decomposition of the given trajectory
// down to the stated depth. Sibling lists longer than maxSiblings are
// elided in the middle, which matches how the paper's figures abbreviate
// with "...".
func (e *Env) Describe(kind Kind, k, depth, maxSiblings int) *Desc {
	if maxSiblings < 2 {
		maxSiblings = 2
	}
	return e.describe(kind, k, depth, maxSiblings)
}

func (e *Env) describe(kind Kind, k, depth, maxSib int) *Desc {
	d := &Desc{Label: fmt.Sprintf("%s(%d,v)", kind, k)}
	switch kind {
	case KindR:
		d.Len = e.P(k)
	case KindX:
		d.Len = e.LenX(k)
		if depth > 0 {
			d.Children = []*Desc{
				e.describe(KindR, k, depth-1, maxSib),
				{Label: fmt.Sprintf("R̄(%d,v)", k), Len: e.P(k)},
			}
		}
	case KindQ: // Figure 1
		d.Len = e.LenQ(k)
		if depth > 0 {
			d.Children, d.Elided = elide(k, maxSib, func(i int) *Desc {
				return e.describe(KindX, i+1, depth-1, maxSib)
			})
		}
	case KindYPrime: // Figure 2
		d.Len = e.LenYPrime(k)
		if depth > 0 {
			s := e.cat.P(k) + 1 // trunk nodes v1..vs
			d.Children, d.Elided = elide(s, maxSib, func(i int) *Desc {
				q := e.describe(KindQ, k, depth-1, maxSib)
				q.Label = fmt.Sprintf("Q(%d,v%d)", k, i+1)
				return q
			})
		}
	case KindY:
		d.Len = e.LenY(k)
		if depth > 0 {
			d.Children = []*Desc{
				e.describe(KindYPrime, k, depth-1, maxSib),
				{Label: fmt.Sprintf("Y̅'(%d,v)", k), Len: e.LenYPrime(k)},
			}
		}
	case KindZ: // Figure 3
		d.Len = e.LenZ(k)
		if depth > 0 {
			d.Children, d.Elided = elide(k, maxSib, func(i int) *Desc {
				return e.describe(KindY, i+1, depth-1, maxSib)
			})
		}
	case KindAPrime: // Figure 4
		d.Len = e.LenAPrime(k)
		if depth > 0 {
			s := e.cat.P(k) + 1
			d.Children, d.Elided = elide(s, maxSib, func(i int) *Desc {
				z := e.describe(KindZ, k, depth-1, maxSib)
				z.Label = fmt.Sprintf("Z(%d,v%d)", k, i+1)
				return z
			})
		}
	case KindA:
		d.Len = e.LenA(k)
		if depth > 0 {
			d.Children = []*Desc{
				e.describe(KindAPrime, k, depth-1, maxSib),
				{Label: fmt.Sprintf("A̅'(%d,v)", k), Len: e.LenAPrime(k)},
			}
		}
	case KindB:
		d.Len = e.LenB(k)
		d.Repeat = new(big.Int).Lsh(e.LenA(4*k), 1)
		if depth > 0 {
			d.Children = []*Desc{e.describe(KindY, k, depth-1, maxSib)}
		}
	case KindK:
		d.Len = e.LenK(k)
		r := new(big.Int).Add(e.LenB(4*k), e.LenA(8*k))
		d.Repeat = r.Lsh(r, 1)
		if depth > 0 {
			d.Children = []*Desc{e.describe(KindX, k, depth-1, maxSib)}
		}
	case KindOmega:
		d.Len = e.LenOmega(k)
		d.Repeat = new(big.Int).Mul(big.NewInt(int64(2*k-1)), e.LenK(k))
		if depth > 0 {
			d.Children = []*Desc{e.describe(KindX, k, depth-1, maxSib)}
		}
	default:
		panic("trajectory: unknown kind " + string(kind))
	}
	return d
}

// elide builds up to maxSib descriptions of n siblings, keeping a prefix
// and the final one, and reports how many were omitted.
func elide(n, maxSib int, mk func(i int) *Desc) (kids []*Desc, elided int) {
	if n <= maxSib {
		for i := 0; i < n; i++ {
			kids = append(kids, mk(i))
		}
		return kids, 0
	}
	for i := 0; i < maxSib-1; i++ {
		kids = append(kids, mk(i))
	}
	kids = append(kids, mk(n-1))
	return kids, n - maxSib
}

// Render writes the decomposition as an indented tree.
func (d *Desc) Render(w io.Writer) {
	d.render(w, 0)
}

func (d *Desc) render(w io.Writer, depth int) {
	indent := strings.Repeat("  ", depth)
	switch {
	case d.Repeat != nil:
		fmt.Fprintf(w, "%s%s  len=%v  = (child)^%v\n", indent, d.Label, d.Len, d.Repeat)
	case d.Len != nil:
		fmt.Fprintf(w, "%s%s  len=%v\n", indent, d.Label, d.Len)
	default:
		fmt.Fprintf(w, "%s%s\n", indent, d.Label)
	}
	for i, c := range d.Children {
		if d.Elided > 0 && i == len(d.Children)-1 {
			fmt.Fprintf(w, "%s  ... (%d more)\n", indent, d.Elided)
		}
		c.render(w, depth+1)
	}
}

// TotalChildrenLen sums child lengths, accounting for elision and
// repetition; used by tests to confirm the figures' decompositions are
// length-consistent with the definitions.
func (e *Env) TotalChildrenLen(d *Desc, kind Kind, k int) *big.Int {
	total := new(big.Int)
	if d.Repeat != nil {
		// Repetition structures: child length * repeat count.
		if len(d.Children) == 1 && d.Children[0].Len != nil {
			return total.Mul(d.Children[0].Len, d.Repeat)
		}
		return nil
	}
	switch kind {
	case KindQ:
		for i := 1; i <= k; i++ {
			total.Add(total, e.LenX(i))
		}
	case KindZ:
		for i := 1; i <= k; i++ {
			total.Add(total, e.LenY(i))
		}
	case KindYPrime:
		s := int64(e.cat.P(k) + 1)
		total.Mul(big.NewInt(s), e.LenQ(k))
		total.Add(total, e.P(k))
	case KindAPrime:
		s := int64(e.cat.P(k) + 1)
		total.Mul(big.NewInt(s), e.LenZ(k))
		total.Add(total, e.P(k))
	default:
		return nil
	}
	return total
}
