// Package registry is the open-world dispatch table behind the public
// extension API: graph kinds, scenario kinds and adversary families all
// resolve through the registries here instead of through switches, so a
// kind registered by a third party flows through exactly the code paths
// the built-ins use — declarative specs, campaign axis expansion, the
// prepared-scenario cache, and sweep aggregation (DESIGN.md §4,
// "extension points").
//
// The package deliberately holds no execution logic. A graph kind's
// entry carries everything the *declarative* layers need — axis shape,
// deterministic sizing, axis defaults, the builder, and a cache
// fingerprint — while scenario kinds and adversaries are represented
// here only by the metadata the campaign expander consumes (does the
// label axis apply? does the adversary axis apply? is a bare spec
// specialized per cell?). Their runners and parsers are root-package
// values and live in the root package's half of the registry; an
// internal package cannot name those types.
//
// Registries are process-wide and append-only: registration is intended
// for init functions or test setup, never for concurrent mutation with
// running engines. Metadata registration is idempotent when the entry is
// identical, which lets the root package re-register the built-ins
// through the same public path a third party would use.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"meetpoly/internal/graph"
	"meetpoly/internal/uxs"
)

// MaxSpecNodes caps the node count a declarative graph descriptor may
// request. The builders themselves are driven by trusted code and take
// any size, but a spec is user input (JSON files, CLI flags, fuzzers),
// and an unchecked "clique of 10^9 nodes" is an allocation bomb, not a
// scenario. The cap is far above the small-graph regime the verified
// catalogs target, and is shared by campaign axis validation, scenario
// validation and custom-kind sizing so the layers can never disagree
// about which descriptors fit under it.
const MaxSpecNodes = 2048

// maxHypercubeDim is the largest hypercube dimension under the cap
// (2^11 = 2048).
const maxHypercubeDim = 11

// GraphParams is one resolved graph descriptor in registry form: the
// field set shared by the root package's GraphSpec and the campaign's
// GraphParams, so conversions between the three are 1:1.
type GraphParams struct {
	Kind    string
	N       int
	Rows    int
	Cols    int
	P       float64
	Seed    int64
	Shuffle bool
}

// GraphKind is one registered graph family. Build and NodeCount must be
// deterministic pure functions of their parameters: determinism is what
// lets a GraphSpec act as the content address of the engine's
// prepared-scenario cache, and what makes campaign cells replayable from
// a single seed string.
type GraphKind struct {
	// Name is the primary kind name ("ring", "grid", ...).
	Name string
	// Aliases are additional accepted spellings ("complete" for
	// "clique"). Lookup resolves them to this entry; descriptors keep
	// the spelling they were written with.
	Aliases []string
	// Sized reports the campaign axis shape: a sized kind sweeps over
	// GraphAxis.Sizes (one graph cell per size), a fixed kind resolves
	// to exactly one cell from Rows/Cols (or from nothing, like
	// petersen).
	Sized bool
	// NodeCount resolves the node count a descriptor requests and
	// enforces MaxSpecNodes; dimensions must be range-checked before
	// multiplying so oversized inputs cannot overflow. nil defaults to
	// "N, capped at MaxSpecNodes".
	NodeCount func(n, rows, cols int) (int, error)
	// CheckAxis validates axis-level parameters (minimum sizes, missing
	// dimensions). name is the spelling the descriptor used, for error
	// messages. nil accepts everything NodeCount accepts.
	CheckAxis func(name string, n, rows, cols int) error
	// AxisDefaults fills derived defaults on a resolved campaign cell
	// (family seeds, default edge probability). nil leaves the cell
	// as expanded. Build must apply the same value defaults itself —
	// direct scenarios do not pass through axis resolution.
	AxisDefaults func(p *GraphParams)
	// Build constructs the graph. Port shuffling (GraphSpec.Shuffle) is
	// applied by the caller, so every kind gets it for free.
	Build func(p GraphParams) (*graph.Graph, error)
	// Fingerprint versions the builder for content-addressed caches: an
	// engine's prepared-scenario cache keys on (spec, fingerprint), so
	// a builder that closes over external configuration must encode
	// that configuration here. Built-ins use "" (the builder is fully
	// determined by the spec).
	Fingerprint string
}

// KindMeta is the campaign-facing shape of one scenario kind: which
// sweep axes apply to its cells and which budget field they carry. The
// kind's validator and runner are root-package values registered with
// the root half of the registry.
type KindMeta struct {
	// Name is the ScenarioKind string.
	Name string
	// Labeled kinds take agent labels; the campaign label axis applies.
	Labeled bool
	// UsesAdversary kinds run under a schedule; the campaign adversary
	// axis applies. (The certifier ranges over all schedules instead.)
	UsesAdversary bool
	// UsesBudget kinds bound adversary events; cells carry Spec.Budget
	// and Scenario.Budget must be positive.
	UsesBudget bool
	// UsesMoves kinds consume a route-prefix length; cells carry
	// Spec.Moves.
	UsesMoves bool
}

// AdversaryMeta is the campaign-facing shape of one adversary family
// name. The parser itself is a root-package value.
type AdversaryMeta struct {
	// Name is the family name as it appears before any ':' in a spec
	// string. Aliases are registered as separate entries.
	Name string
	// PerCellSeed makes sweeps specialize a bare spec (no parameters)
	// with a seed derived from each cell's replay string, so cells
	// differ while staying individually replayable.
	PerCellSeed bool
}

var (
	mu         sync.RWMutex
	graphKinds = make(map[string]*GraphKind)
	kindMetas  = make(map[string]KindMeta)
	advMetas   = make(map[string]AdversaryMeta)

	// builtinKinds preserves the canonical sweep order of the built-in
	// scenario kinds (campaign.AllKinds and every default Kinds axis).
	builtinKinds []string
)

// RegisterGraph adds a graph kind. Every name and alias must be new:
// graph entries carry function values, so idempotent re-registration
// cannot be verified and is rejected outright.
func RegisterGraph(k GraphKind) error {
	if k.Name == "" {
		return fmt.Errorf("registry: graph kind needs a name")
	}
	if k.Build == nil {
		return fmt.Errorf("registry: graph kind %q needs a Build function", k.Name)
	}
	if k.NodeCount == nil {
		k.NodeCount = defaultNodeCount(k.Name)
	}
	mu.Lock()
	defer mu.Unlock()
	names := append([]string{k.Name}, k.Aliases...)
	for _, n := range names {
		if _, dup := graphKinds[n]; dup {
			return fmt.Errorf("registry: graph kind %q is already registered", n)
		}
	}
	for _, n := range names {
		graphKinds[n] = &k
	}
	return nil
}

// LookupGraph resolves a kind name or alias to its entry.
func LookupGraph(name string) (*GraphKind, bool) {
	mu.RLock()
	defer mu.RUnlock()
	k, ok := graphKinds[name]
	return k, ok
}

// GraphNames returns every registered graph kind name and alias, sorted.
func GraphNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(graphKinds))
	for n := range graphKinds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// GraphNodeCount resolves the node count a descriptor of the given kind
// requests, through the kind's registered sizing. Unknown kinds error.
func GraphNodeCount(kind string, n, rows, cols int) (int, error) {
	k, ok := LookupGraph(kind)
	if !ok {
		return 0, fmt.Errorf("unknown graph kind %q", kind)
	}
	return k.NodeCount(n, rows, cols)
}

// RegisterKindMeta adds one scenario kind's campaign metadata. A
// re-registration with identical metadata is a no-op (the root package
// registers built-ins through the same public path a third party uses,
// after this package has already self-registered them for internal
// consumers); conflicting metadata is an error.
func RegisterKindMeta(m KindMeta) error {
	if m.Name == "" {
		return fmt.Errorf("registry: scenario kind needs a name")
	}
	mu.Lock()
	defer mu.Unlock()
	if prev, ok := kindMetas[m.Name]; ok {
		if prev == m {
			return nil
		}
		return fmt.Errorf("registry: scenario kind %q is already registered with different metadata", m.Name)
	}
	kindMetas[m.Name] = m
	return nil
}

// LookupKindMeta resolves a scenario kind name to its metadata.
func LookupKindMeta(name string) (KindMeta, bool) {
	mu.RLock()
	defer mu.RUnlock()
	m, ok := kindMetas[name]
	return m, ok
}

// BuiltinKinds returns the built-in scenario kinds in canonical sweep
// order. Custom kinds are deliberately excluded: a SweepSpec that omits
// Kinds must expand to the same cells on every machine, regardless of
// which extensions happen to be linked in — name custom kinds
// explicitly to sweep them.
func BuiltinKinds() []string {
	mu.RLock()
	defer mu.RUnlock()
	return append([]string(nil), builtinKinds...)
}

// RegisterAdversaryMeta adds one adversary family's campaign metadata,
// idempotently when identical (see RegisterKindMeta).
func RegisterAdversaryMeta(m AdversaryMeta) error {
	return RegisterAdversaryMetas([]AdversaryMeta{m})
}

// RegisterAdversaryMetas registers a family's metadata entries (name
// plus aliases) atomically: every entry is validated under the lock
// before any is inserted, so a duplicate or conflicting alias cannot
// leave the earlier names behind in a half-registered family.
func RegisterAdversaryMetas(ms []AdversaryMeta) error {
	mu.Lock()
	defer mu.Unlock()
	for _, m := range ms {
		if m.Name == "" {
			return fmt.Errorf("registry: adversary needs a name")
		}
		if prev, ok := advMetas[m.Name]; ok && prev != m {
			return fmt.Errorf("registry: adversary %q is already registered with different metadata", m.Name)
		}
	}
	for _, m := range ms {
		advMetas[m.Name] = m
	}
	return nil
}

// LookupAdversaryMeta resolves an adversary family name to its metadata.
func LookupAdversaryMeta(name string) (AdversaryMeta, bool) {
	mu.RLock()
	defer mu.RUnlock()
	m, ok := advMetas[name]
	return m, ok
}

// defaultNodeCount is the sizing of plain sized kinds: N nodes, capped.
func defaultNodeCount(name string) func(n, rows, cols int) (int, error) {
	return func(n, _, _ int) (int, error) {
		if n > MaxSpecNodes {
			return 0, fmt.Errorf("%s size %d exceeds the %d-node spec cap", name, n, MaxSpecNodes)
		}
		return n, nil
	}
}

// minSize returns the CheckAxis of a sized kind with a size floor.
func minSize(min int) func(name string, n, rows, cols int) error {
	return func(name string, n, _, _ int) error {
		if n < min {
			return fmt.Errorf("%s needs size >= %d, got %d", name, min, n)
		}
		return nil
	}
}

// The built-in graph kinds. They are registered here, at registry init,
// through the exact Register call the public RegisterGraphKind wrapper
// uses, so internal consumers (the campaign expander and its tests) see
// them without importing the root package — there is one dispatch path,
// not a built-in one and an extension one.
func init() {
	builtins := []GraphKind{
		{
			Name: "path", Sized: true,
			CheckAxis: minSize(2),
			Build:     func(p GraphParams) (*graph.Graph, error) { return graph.Path(p.N), nil },
		},
		{
			Name: "ring", Sized: true,
			CheckAxis: minSize(3),
			Build:     func(p GraphParams) (*graph.Graph, error) { return graph.Ring(p.N), nil },
		},
		{
			Name: "star", Sized: true,
			CheckAxis: minSize(3),
			Build:     func(p GraphParams) (*graph.Graph, error) { return graph.Star(p.N), nil },
		},
		{
			Name: "clique", Aliases: []string{"complete"}, Sized: true,
			CheckAxis: minSize(3),
			Build:     func(p GraphParams) (*graph.Graph, error) { return graph.Complete(p.N), nil },
		},
		{
			Name: "bintree", Sized: true,
			CheckAxis: minSize(3),
			Build:     func(p GraphParams) (*graph.Graph, error) { return graph.BinaryTree(p.N), nil },
		},
		{
			Name: "tree", Sized: true,
			CheckAxis: minSize(2),
			AxisDefaults: func(p *GraphParams) {
				if p.Seed == 0 {
					p.Seed = uxs.DefaultTreeSeed(p.N)
				}
			},
			Build: func(p GraphParams) (*graph.Graph, error) { return graph.RandomTree(p.N, p.Seed), nil },
		},
		{
			Name: "random", Sized: true,
			CheckAxis: minSize(2),
			AxisDefaults: func(p *GraphParams) {
				if p.P == 0 {
					p.P = uxs.DefaultRandomP
				}
				if p.Seed == 0 {
					p.Seed = uxs.DefaultRandomSeed(p.N)
				}
			},
			Build: func(p GraphParams) (*graph.Graph, error) {
				prob := p.P
				if prob == 0 {
					prob = uxs.DefaultRandomP
				}
				return graph.RandomConnected(p.N, prob, p.Seed), nil
			},
		},
		{
			Name: "hypercube", Sized: true,
			NodeCount: func(n, _, _ int) (int, error) {
				if n > maxHypercubeDim {
					return 0, fmt.Errorf("hypercube dimension %d exceeds the cap of %d (2^%d = %d nodes)",
						n, maxHypercubeDim, maxHypercubeDim, MaxSpecNodes)
				}
				if n < 1 {
					return 0, nil
				}
				return 1 << n, nil
			},
			CheckAxis: func(name string, n, _, _ int) error {
				if n < 1 {
					return fmt.Errorf("hypercube dimension %d out of range", n)
				}
				return nil
			},
			Build: func(p GraphParams) (*graph.Graph, error) { return graph.Hypercube(p.N), nil },
		},
		{
			Name:      "grid",
			NodeCount: gridNodeCount("grid"),
			CheckAxis: gridCheckAxis,
			Build:     func(p GraphParams) (*graph.Graph, error) { return graph.Grid(p.Rows, p.Cols), nil },
		},
		{
			Name:      "torus",
			NodeCount: gridNodeCount("torus"),
			CheckAxis: gridCheckAxis,
			Build:     func(p GraphParams) (*graph.Graph, error) { return graph.Torus(p.Rows, p.Cols), nil },
		},
		{
			Name: "lollipop",
			NodeCount: func(_, rows, cols int) (int, error) {
				// Check each dimension before summing: the sum of two
				// near-max ints overflows negative and would sneak past
				// the cap.
				if rows < 0 || cols < 0 || rows > MaxSpecNodes || cols > MaxSpecNodes || rows+cols > MaxSpecNodes {
					return 0, fmt.Errorf("lollipop %d+%d exceeds the %d-node spec cap", rows, cols, MaxSpecNodes)
				}
				return rows + cols, nil
			},
			CheckAxis: func(name string, _, rows, cols int) error {
				if rows < 2 || cols < 1 {
					return fmt.Errorf("lollipop needs clique size (rows) >= 2 and tail (cols) >= 1")
				}
				return nil
			},
			Build: func(p GraphParams) (*graph.Graph, error) { return graph.Lollipop(p.Rows, p.Cols), nil },
		},
		{
			Name:      "petersen",
			NodeCount: func(_, _, _ int) (int, error) { return 10, nil },
			Build:     func(p GraphParams) (*graph.Graph, error) { return graph.Petersen(), nil },
		},
	}
	for _, k := range builtins {
		if err := RegisterGraph(k); err != nil {
			panic(err)
		}
	}

	// Built-in scenario kind metadata, in canonical sweep order. The
	// root package attaches the validators and runners through the
	// public RegisterScenarioKind (idempotent over this metadata).
	builtinKinds = []string{"rendezvous", "baseline", "esst", "sgl", "certify"}
	for _, m := range []KindMeta{
		{Name: "rendezvous", Labeled: true, UsesAdversary: true, UsesBudget: true},
		{Name: "baseline", Labeled: true, UsesAdversary: true, UsesBudget: true},
		{Name: "esst", Labeled: false, UsesAdversary: true, UsesBudget: true},
		{Name: "sgl", Labeled: true, UsesAdversary: true, UsesBudget: true},
		{Name: "certify", Labeled: true, UsesAdversary: false, UsesMoves: true},
	} {
		if err := RegisterKindMeta(m); err != nil {
			panic(err)
		}
	}

	// Built-in adversary family metadata (aliases are separate entries;
	// the empty spelling "" — the round-robin default — carries no
	// metadata and is resolved by the root package's parser registry
	// alone). Parsers live in the root package and are attached through
	// the public RegisterAdversary.
	for _, m := range []AdversaryMeta{
		{Name: "roundrobin"},
		{Name: "round-robin"},
		{Name: "avoider"},
		{Name: "random", PerCellSeed: true},
		{Name: "biased"},
		{Name: "latewake"},
		{Name: "late-wake"},
	} {
		if err := RegisterAdversaryMeta(m); err != nil {
			panic(err)
		}
	}
}

// gridNodeCount sizes the two rows×cols lattice kinds.
func gridNodeCount(name string) func(n, rows, cols int) (int, error) {
	return func(_, rows, cols int) (int, error) {
		if rows < 0 || cols < 0 || rows > MaxSpecNodes || cols > MaxSpecNodes || rows*cols > MaxSpecNodes {
			return 0, fmt.Errorf("%s %dx%d exceeds the %d-node spec cap", name, rows, cols, MaxSpecNodes)
		}
		return rows * cols, nil
	}
}

// gridCheckAxis validates the two lattice kinds' axis parameters.
func gridCheckAxis(name string, _, rows, cols int) error {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return fmt.Errorf("%s needs rows and cols (got %dx%d)", name, rows, cols)
	}
	return nil
}
