// Package baseline implements the exponential-cost rendezvous scheme the
// paper improves upon: the naive label-exponent algorithm described in
// the opening of §3, which matches the cost shape of the prior art [17,
// 18] — exponential in the size of the graph and in the label VALUE
// (hence doubly exponential in the label length).
//
// An agent with label L in a graph of known size n follows
//
//	(X(n, v))^((2P(n)+1)^L)
//
// and stops. The larger agent performs more integral X(n, ·) repetitions
// than the smaller agent makes edge traversals in total, so if they have
// not met earlier, the larger agent sweeps the graph after the smaller
// one has parked — a meeting follows.
//
// The paper's actual predecessor [17] removes the known-n assumption at
// further exponential cost; this implementation keeps known n, making the
// baseline strictly stronger (it gets information the new algorithm does
// not have) and the cost comparison of experiment E3 conservative.
package baseline

import (
	"fmt"
	"math/big"

	"meetpoly/internal/costmodel"
	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/rverr"
	"meetpoly/internal/sched"
	"meetpoly/internal/trajectory"
)

// Repetitions returns (2P(n)+1)^L, the number of X(n, v) copies the
// agent with label l performs.
func Repetitions(env *trajectory.Env, n int, l labels.Label) *big.Int {
	base := new(big.Int).Lsh(big.NewInt(int64(env.Catalog().P(n))), 1)
	base.Add(base, big.NewInt(1))
	return base.Exp(base, new(big.Int).SetUint64(uint64(l)), nil)
}

// NewStepper returns the baseline trajectory for label l with known
// graph size n: X(n, v) repeated (2P(n)+1)^L times, then halt.
func NewStepper(env *trajectory.Env, n int, l labels.Label) trajectory.Stepper {
	return trajectory.Repeat(func() trajectory.Stepper { return env.X(n) }, Repetitions(env, n, l))
}

// CostBound returns the exact per-agent traversal count of the baseline:
// |X(n)| * (2P(n)+1)^L.
func CostBound(env *trajectory.Env, n int, l labels.Label) *big.Int {
	c := Repetitions(env, n, l)
	return c.Mul(c, env.LenX(n))
}

// Result summarizes a baseline rendezvous execution.
type Result struct {
	Met     bool
	Meeting *sched.Meeting
	Summary sched.Summary
	Bound   *big.Int // total-cost upper bound for both agents
}

// Rendezvous runs the baseline algorithm for both agents (labels must be
// distinct) under the given adversary.
func Rendezvous(g *graph.Graph, start1, start2 int, l1, l2 labels.Label,
	env *trajectory.Env, adv sched.Adversary, budget int) (*Result, error) {
	return RendezvousWith(sched.RunOpts{}, g, start1, start2, l1, l2, env, adv, budget)
}

// RendezvousWith is Rendezvous with cross-cutting execution options
// (context cancellation and an execution observer).
func RendezvousWith(opts sched.RunOpts, g *graph.Graph, start1, start2 int, l1, l2 labels.Label,
	env *trajectory.Env, adv sched.Adversary, budget int) (*Result, error) {
	n := g.N()
	return RendezvousSteppers(opts, g, start1, start2, l1, l2, env, adv, budget,
		NewStepper(env, n, l1), NewStepper(env, n, l2))
}

// RendezvousSteppers is RendezvousWith with the agents' trajectory
// steppers supplied by the caller (the engine passes cached route
// replays — see trajectory.RouteBook). The steppers must render exactly
// the baseline trajectories of l1 and l2 at the graph's size.
func RendezvousSteppers(opts sched.RunOpts, g *graph.Graph, start1, start2 int, l1, l2 labels.Label,
	env *trajectory.Env, adv sched.Adversary, budget int, s1, s2 trajectory.Stepper) (*Result, error) {
	if l1 == l2 {
		return nil, fmt.Errorf("baseline: agents must have distinct labels: %w", rverr.ErrInvalidScenario)
	}
	n := g.N()
	a := &sched.Walker{Stepper: s1, StopAtMeeting: true, Payload: l1}
	b := &sched.Walker{Stepper: s2, StopAtMeeting: true, Payload: l2}
	r, err := sched.NewRunner(sched.Config{
		Graph:              g,
		Starts:             []int{start1, start2},
		Agents:             []sched.Agent{a, b},
		InitiallyAwake:     []int{0, 1},
		MaxSteps:           budget,
		StopAtFirstMeeting: true,
		Context:            opts.Ctx,
		Observer:           opts.Observer,
		ForceBlocking:      opts.ForceBlocking,
	}, adv)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	defer r.Close()
	sum := r.Run()
	bound := new(big.Int).Add(CostBound(env, n, l1), CostBound(env, n, l2))
	return &Result{
		Met:     sum.FirstMeeting != nil,
		Meeting: sum.FirstMeeting,
		Summary: sum,
		Bound:   bound,
	}, nil
}

// GuaranteeHolds verifies the baseline's counting argument for a concrete
// instance: the larger agent's number of integral X(n) repetitions must
// exceed the smaller agent's total traversal count. This is the invariant
// that makes the naive scheme correct — and the reason its cost is
// exponential in the label value.
func GuaranteeHolds(env *trajectory.Env, n int, l1, l2 labels.Label) bool {
	small, large := l1, l2
	if small > large {
		small, large = large, small
	}
	repsLarge := Repetitions(env, n, large)
	costSmall := CostBound(env, n, small)
	return repsLarge.Cmp(costSmall) > 0
}

// Model returns the closed-form cost model of the baseline over the
// environment's catalog, for the tables of experiment E3.
func Model(env *trajectory.Env) *costmodel.Model {
	return costmodel.New(func(k int) *big.Int {
		return big.NewInt(int64(env.Catalog().P(k)))
	})
}
