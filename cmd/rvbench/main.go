// Command rvbench records the repo's performance trajectory: it runs
// the scheduler's half-step microbenchmark on both execution cores
// (internal/schedbench, the same harness BenchmarkRunnerHalfSteps uses)
// plus an E4-style measured rendezvous campaign on the fast engine, and
// writes the results as BENCH_sched.json (schema documented in
// EXPERIMENTS.md §P1).
//
// Modes:
//
//	rvbench                    # measure and write BENCH_sched.json
//	rvbench -quick             # smaller campaign (CI-sized)
//	rvbench -quick -check BENCH_sched.json
//	                           # measure, compare against the committed
//	                           # baseline, write nothing; exit 1 if the
//	                           # half-step cost regressed > 2x or the
//	                           # stepper core lost its >= 5x advantage
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"meetpoly"
	"meetpoly/internal/schedbench"
)

// Schema is the BENCH_sched.json format identifier.
const Schema = "meetpoly/bench_sched/v1"

// CoreBench is one execution core's half-step microbenchmark result.
type CoreBench struct {
	NsPerHalfStep     float64 `json:"ns_per_halfstep"`
	BytesPerHalfStep  int64   `json:"bytes_per_halfstep"`
	AllocsPerHalfStep int64   `json:"allocs_per_halfstep"`
}

// BenchFile is the BENCH_sched.json document.
type BenchFile struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	HalfStep struct {
		Stepper   CoreBench `json:"stepper"`
		Goroutine CoreBench `json:"goroutine"`
		// Speedup is goroutine ns / stepper ns: the dispatch win of the
		// zero-handoff core. The acceptance floor is 5.
		Speedup float64 `json:"speedup"`
	} `json:"half_step"`

	Campaign struct {
		Spec        string  `json:"spec"`
		Cells       int     `json:"cells"`
		Met         int     `json:"met"`
		TotalCost   int64   `json:"total_cost"`
		WallMS      int64   `json:"wall_ms"`
		CellsPerSec float64 `json:"cells_per_sec"`
	} `json:"campaign"`
}

// benchSpec is the E4-style measured campaign: rendezvous instances
// across four graph families under the three headline adversaries.
func benchSpec(quick bool) meetpoly.SweepSpec {
	sp := meetpoly.SweepSpec{
		Name:  "rvbench-e4",
		Seed:  "rvbench-v1",
		Kinds: []string{"rendezvous"},
		Graphs: []meetpoly.SweepGraphAxis{
			{Kind: "path", Sizes: []int{4, 5}},
			{Kind: "ring", Sizes: []int{4, 5}},
			{Kind: "star", Sizes: []int{5}},
			{Kind: "clique", Sizes: []int{4}},
		},
		StartPairs:  2,
		LabelPairs:  2,
		Adversaries: []string{"", "avoider", "random"},
		Budget:      200_000,
	}
	if quick {
		sp.StartPairs, sp.LabelPairs = 1, 1
		sp.Budget = 50_000
	}
	return sp
}

func measure(quick bool) (*BenchFile, error) {
	bf := &BenchFile{Schema: Schema, GoVersion: runtime.Version(),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}

	fmt.Fprintln(os.Stderr, "rvbench: measuring half-steps on the stepper core...")
	ns, by, al := schedbench.Measure(false)
	bf.HalfStep.Stepper = CoreBench{NsPerHalfStep: ns, BytesPerHalfStep: by, AllocsPerHalfStep: al}
	fmt.Fprintln(os.Stderr, "rvbench: measuring half-steps on the goroutine core...")
	ns, by, al = schedbench.Measure(true)
	bf.HalfStep.Goroutine = CoreBench{NsPerHalfStep: ns, BytesPerHalfStep: by, AllocsPerHalfStep: al}
	if s := bf.HalfStep.Stepper.NsPerHalfStep; s > 0 {
		bf.HalfStep.Speedup = bf.HalfStep.Goroutine.NsPerHalfStep / s
	}

	spec := benchSpec(quick)
	cells, _, err := meetpoly.ExpandSweep(spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "rvbench: running the %d-cell %s campaign...\n", len(cells), spec.Name)
	eng := meetpoly.NewEngine(WithDefaults()...)
	start := time.Now()
	rep, err := eng.Sweep(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	if !rep.OK() {
		return nil, fmt.Errorf("campaign oracle failures:\n%s", rep.Table())
	}
	bf.Campaign.Spec = spec.Name
	bf.Campaign.Cells = rep.Cells
	bf.Campaign.Met = rep.Met
	for _, g := range rep.Group {
		bf.Campaign.TotalCost += g.CostSum
	}
	bf.Campaign.WallMS = wall.Milliseconds()
	if s := wall.Seconds(); s > 0 {
		bf.Campaign.CellsPerSec = float64(rep.Cells) / s
	}
	return bf, nil
}

// WithDefaults returns the engine options rvbench runs with (the
// production fast path).
func WithDefaults() []meetpoly.Option {
	return []meetpoly.Option{meetpoly.WithMaxN(6), meetpoly.WithSeed(1)}
}

// checkRegression compares a fresh measurement against the committed
// baseline. The gate is hardware-independent: the stepper core's cost
// is normalized by the goroutine core measured in the same run (the
// channel hand-off is the natural calibration unit), and that
// normalized cost must not exceed 2x the baseline's — a stepper-only
// or shared-event-loop regression moves the ratio, a faster or slower
// CI machine does not. Losing the 5x dispatch-speedup floor fails too.
// Absolute ns drifts are reported as warnings only, since the baseline
// may have been recorded on different hardware.
func checkRegression(cur, base *BenchFile) error {
	for _, p := range []struct {
		name      string
		cur, base float64
	}{
		{"stepper", cur.HalfStep.Stepper.NsPerHalfStep, base.HalfStep.Stepper.NsPerHalfStep},
		{"goroutine", cur.HalfStep.Goroutine.NsPerHalfStep, base.HalfStep.Goroutine.NsPerHalfStep},
	} {
		if p.base > 0 && p.cur > 2*p.base {
			fmt.Fprintf(os.Stderr,
				"rvbench: warning: %s core measures %.1f ns/half-step vs baseline %.1f (different hardware?)\n",
				p.name, p.cur, p.base)
		}
	}
	curG, baseG := cur.HalfStep.Goroutine.NsPerHalfStep, base.HalfStep.Goroutine.NsPerHalfStep
	curS, baseS := cur.HalfStep.Stepper.NsPerHalfStep, base.HalfStep.Stepper.NsPerHalfStep
	if curG > 0 && baseG > 0 && baseS > 0 {
		curNorm, baseNorm := curS/curG, baseS/baseG
		if curNorm > 2*baseNorm {
			return fmt.Errorf(
				"stepper core regressed: %.3f of the goroutine core's cost vs baseline %.3f (>2x)",
				curNorm, baseNorm)
		}
	}
	if cur.HalfStep.Speedup < 5 {
		return fmt.Errorf("stepper core speedup %.1fx below the 5x floor", cur.HalfStep.Speedup)
	}
	return nil
}

func main() {
	var (
		out   = flag.String("out", "BENCH_sched.json", "file to write the measurements to")
		quick = flag.Bool("quick", false, "CI-sized campaign (smaller cross product, smaller budget)")
		check = flag.String("check", "", "compare against this baseline file instead of writing; exit 1 on regression")
	)
	flag.Parse()

	bf, err := measure(*quick)
	if err != nil {
		fatal(err)
	}
	doc, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fatal(err)
	}

	if *check != "" {
		raw, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		var base BenchFile
		if err := json.Unmarshal(raw, &base); err != nil {
			fatal(fmt.Errorf("%s: %v", *check, err))
		}
		if base.Schema != Schema {
			fatal(fmt.Errorf("%s: schema %q, want %q", *check, base.Schema, Schema))
		}
		fmt.Println(string(doc))
		if err := checkRegression(bf, &base); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rvbench: no regression (stepper %.1f ns, goroutine %.1f ns, %.1fx)\n",
			bf.HalfStep.Stepper.NsPerHalfStep, bf.HalfStep.Goroutine.NsPerHalfStep, bf.HalfStep.Speedup)
		return
	}

	if err := os.WriteFile(*out, append(doc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rvbench: wrote %s (stepper %.1f ns, goroutine %.1f ns, %.1fx)\n",
		*out, bf.HalfStep.Stepper.NsPerHalfStep, bf.HalfStep.Goroutine.NsPerHalfStep, bf.HalfStep.Speedup)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvbench:", err)
	os.Exit(1)
}
