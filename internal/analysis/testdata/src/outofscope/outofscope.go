// Package outofscope does not match the determinism analyzer's -pkgs
// regexp: nothing here may be flagged, wall clock and all. (A CLI
// progress spinner legitimately reads time.)
package outofscope

import "time"

func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func Stamp() int64 {
	return time.Now().UnixNano()
}
