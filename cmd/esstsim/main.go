// Command esstsim runs Procedure ESST (exploration with a
// semi-stationary token) on a chosen graph, or regenerates table E5.
//
// Usage:
//
//	esstsim -graph ring -n 7 -explorer 0 -token 3
//	esstsim -table E5
package main

import (
	"flag"
	"fmt"
	"os"

	"meetpoly/internal/esst"
	"meetpoly/internal/experiments"
	"meetpoly/internal/graph"
	"meetpoly/internal/sched"
	"meetpoly/internal/uxs"
)

func main() {
	gkind := flag.String("graph", "ring", "path|ring|star|clique|bintree|random")
	n := flag.Int("n", 6, "graph size")
	seed := flag.Int64("seed", 1, "seed for random graphs and the catalog")
	ex := flag.Int("explorer", 0, "explorer start node")
	tok := flag.Int("token", -1, "token node (-1 = last node)")
	budget := flag.Int("budget", 50_000_000, "scheduler event budget")
	table := flag.Bool("table", false, "print table E5 over the default instance suite")
	famMax := flag.Int("family", 8, "catalog family max size")
	flag.Parse()

	cat := uxs.NewVerified(uxs.DefaultFamily(*famMax), *seed)
	if *table {
		experiments.E5ESST(cat, experiments.DefaultESSTInstances(), *budget).Render(os.Stdout)
		return
	}

	var g *graph.Graph
	switch *gkind {
	case "path":
		g = graph.Path(*n)
	case "ring":
		g = graph.Ring(*n)
	case "star":
		g = graph.Star(*n)
	case "clique":
		g = graph.Complete(*n)
	case "bintree":
		g = graph.BinaryTree(*n)
	case "random":
		g = graph.RandomConnected(*n, 0.3, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown graph kind %q\n", *gkind)
		os.Exit(2)
	}
	if !cat.Covers(g) {
		cat.Extend(g)
	}
	tokNode := *tok
	if tokNode < 0 {
		tokNode = g.N() - 1
	}
	res, err := esst.Explore(g, *ex, tokNode, cat, &sched.RoundRobin{}, *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("graph=%s explorer@%d token@%d\n", g, *ex, tokNode)
	if !res.Done {
		fmt.Println("procedure did not terminate within the budget")
		os.Exit(1)
	}
	fmt.Printf("terminated in phase %d (Theorem 2.1 bound: 9n+3 = %d)\n", res.Phase, 9*g.N()+3)
	fmt.Printf("cost: %d traversals (bound for that phase: %d)\n",
		res.Cost, esst.CostBound(cat, res.Phase))
	fmt.Printf("derived size bound E(n) = %d (actual n = %d)\n", res.EUpper, g.N())
	fmt.Printf("all %d edges covered: %v\n", g.M(), res.Covered)
}
