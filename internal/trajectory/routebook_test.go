package trajectory

import (
	"sync"
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/uxs"
)

func routeTestEnv() *Env {
	return NewEnv(uxs.NewVerified(uxs.DefaultFamily(6), 1))
}

// TestRouteStepperMatchesGenerator pins route replay to direct
// generation: walking a cached route must visit exactly the nodes and
// exits the composite trajectory stepper produces, across replays and
// from a replay longer than any before (forcing lazy extension).
func TestRouteStepperMatchesGenerator(t *testing.T) {
	env := routeTestEnv()
	for _, g := range []*graph.Graph{graph.Ring(6), graph.Grid(2, 3), graph.ShufflePorts(graph.Complete(5), 3)} {
		book := NewRouteBook(g)
		for start := 0; start < g.N(); start++ {
			key := RouteKey{Start: start, Kind: 'Y', Param: 3}
			gen := func() Stepper { return env.Y(3) }
			want, _ := Run(g, start, env.Y(3), 5000)
			for _, limit := range []int{10, 100, 5000} { // grow the prefix across replays
				got, _ := Run(g, start, book.Stepper(key, gen), limit)
				if got.Moves() != min(limit, want.Moves()) {
					t.Fatalf("%v from %d: replay made %d moves, want %d", g, start, got.Moves(), min(limit, want.Moves()))
				}
				for i := 0; i < got.Moves(); i++ {
					if got.Nodes[i] != want.Nodes[i] || got.Exits[i] != want.Exits[i] {
						t.Fatalf("%v from %d: replay diverges at move %d: (%d,%d) vs (%d,%d)",
							g, start, i, got.Nodes[i], got.Exits[i], want.Nodes[i], want.Exits[i])
					}
				}
			}
		}
	}
}

// TestRouteBookFiniteTrajectory asserts replay of a finite trajectory
// halts at exactly the generator's end.
func TestRouteBookFiniteTrajectory(t *testing.T) {
	env := routeTestEnv()
	g := graph.Ring(5)
	book := NewRouteBook(g)
	key := RouteKey{Start: 0, Kind: 'X', Param: 2}
	gen := func() Stepper { return env.X(2) }
	want, completed := Run(g, 0, env.X(2), 1<<20)
	if !completed {
		t.Fatal("X(2) did not complete (test needs a finite trajectory)")
	}
	got, completed := Run(g, 0, book.Stepper(key, gen), 1<<20)
	if !completed || got.Moves() != want.Moves() {
		t.Fatalf("replay: completed=%v moves=%d, want completed=true moves=%d",
			completed, got.Moves(), want.Moves())
	}
	// NodeRoute past the end clamps to the completed route.
	route := book.NodeRoute(key, gen, want.Moves()+100)
	if len(route) != want.Moves()+1 || route[0] != 0 {
		t.Fatalf("NodeRoute length %d, want %d", len(route), want.Moves()+1)
	}
	for i := 0; i < want.Moves(); i++ {
		if route[i+1] != want.Nodes[i] {
			t.Fatalf("NodeRoute[%d] = %d, want %d", i+1, route[i+1], want.Nodes[i])
		}
	}
}

// TestRouteBookConcurrentReplay races many replayers of one route (and
// its lazy extension) under -race, all of which must observe the same
// walk.
func TestRouteBookConcurrentReplay(t *testing.T) {
	env := routeTestEnv()
	g := graph.Grid(2, 3)
	book := NewRouteBook(g)
	key := RouteKey{Start: 1, Kind: 'Y', Param: 3}
	gen := func() Stepper { return env.Y(3) }
	want, _ := Run(g, 1, env.Y(3), 4000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(limit int) {
			defer wg.Done()
			got, _ := Run(g, 1, book.Stepper(key, gen), limit)
			for i := 0; i < got.Moves(); i++ {
				if got.Nodes[i] != want.Nodes[i] {
					t.Errorf("concurrent replay diverges at move %d", i)
					return
				}
			}
		}(500 + 500*w)
	}
	wg.Wait()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
