package meetpoly

import (
	"context"
	"reflect"
	"testing"

	"meetpoly/internal/uxs"
)

// differentialSpec is the cross-core equivalence campaign: every
// scheduler-backed kind (certify never touches the runner) across six
// graph families, three adversary families, two start pairs and two
// label pairs — >= 500 generated scenarios.
func differentialSpec() SweepSpec {
	return SweepSpec{
		Name:  "differential",
		Seed:  "differential-v1",
		Kinds: []string{"rendezvous", "baseline", "esst", "sgl"},
		Graphs: []SweepGraphAxis{
			{Kind: "path", Sizes: []int{3, 4, 5}},
			{Kind: "ring", Sizes: []int{3, 4, 5}},
			{Kind: "star", Sizes: []int{4, 5}},
			{Kind: "clique", Sizes: []int{4}},
			{Kind: "tree", Sizes: []int{4, 5}},
			{Kind: "random", Sizes: []int{5}},
		},
		StartPairs:  2,
		LabelPairs:  2,
		Adversaries: []string{"", "avoider", "random"},
		Budget:      3000,
	}
}

// resultSummary extracts the scheduler summary of whichever kind ran.
func resultSummary(r *Result) *Summary {
	switch {
	case r == nil:
		return nil
	case r.Rendezvous != nil:
		return &r.Rendezvous.Summary
	case r.Baseline != nil:
		return &r.Baseline.Summary
	case r.ESST != nil:
		return &r.ESST.Summary
	case r.SGL != nil:
		return &r.SGL.Summary
	default:
		return nil
	}
}

// TestDifferentialCores is the equivalence proof of DESIGN.md §2.2's
// execution model: a >= 500-cell campaign sample executed through both
// the direct-dispatch fast path and the goroutine core must produce
// byte-identical Summary values — steps, meetings (participants, node,
// edge, costs), per-agent traversal counts and the CostAccount — cell
// for cell.
func TestDifferentialCores(t *testing.T) {
	spec := differentialSpec()
	cells, scs, err := ExpandSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 500 {
		t.Fatalf("differential campaign generated %d scenarios, want >= 500", len(cells))
	}
	cat := uxs.NewVerified(uxs.DefaultFamily(6), 1)
	fast := NewEngine(WithCatalog(cat))
	slow := NewEngine(WithCatalog(cat), WithDirectDispatch(false))

	ctx := context.Background()
	fb := fast.RunBatch(ctx, scs)
	sb := slow.RunBatch(ctx, scs)
	for i := range cells {
		fe, se := fb[i].Err, sb[i].Err
		if (fe == nil) != (se == nil) || (fe != nil && fe.Error() != se.Error()) {
			t.Errorf("cell %s (%s): errors diverge: fast %v, slow %v", cells[i].Seed, cells[i].ID, fe, se)
			continue
		}
		fs, ss := resultSummary(fb[i].Result), resultSummary(sb[i].Result)
		if (fs == nil) != (ss == nil) {
			t.Errorf("cell %s (%s): one core produced no summary", cells[i].Seed, cells[i].ID)
			continue
		}
		if fs != nil && !reflect.DeepEqual(*fs, *ss) {
			t.Errorf("cell %s (%s): summaries diverge:\nfast %+v\nslow %+v",
				cells[i].Seed, cells[i].ID, *fs, *ss)
		}
	}
}
