package uxs

import (
	"testing"
	"testing/quick"

	"meetpoly/internal/graph"
)

func TestWalkLengthFixed(t *testing.T) {
	// Property P1: a sequence induces the same number of moves in every
	// graph with positive minimum degree.
	seq := Generate(4, 1, 42)
	for _, g := range []*graph.Graph{graph.Ring(5), graph.Complete(4), graph.Path(6), graph.Star(4)} {
		for v := 0; v < g.N(); v++ {
			nodes := Walk(g, v, seq)
			if len(nodes) != len(seq)+1 {
				t.Errorf("%s from %d: %d nodes, want %d", g, v, len(nodes), len(seq)+1)
			}
			if nodes[0] != v {
				t.Errorf("%s: walk does not begin at start", g)
			}
		}
	}
}

func TestWalkSingleNode(t *testing.T) {
	g := graph.Single()
	nodes := Walk(g, 0, Sequence{0, 1, 2})
	if len(nodes) != 1 || nodes[0] != 0 {
		t.Errorf("single-node walk = %v", nodes)
	}
	if !Integral(g, 0, Sequence{}) {
		t.Error("empty graph should be trivially integral")
	}
}

func TestWalkAdjacency(t *testing.T) {
	// Every consecutive pair in a walk must be adjacent.
	g := graph.Petersen()
	seq := Generate(10, 1, 7)
	nodes := Walk(g, 3, seq)
	for i := 0; i+1 < len(nodes); i++ {
		adjacent := false
		for p := 0; p < g.Degree(nodes[i]); p++ {
			if to, _ := g.Succ(nodes[i], p); to == nodes[i+1] {
				adjacent = true
				break
			}
		}
		if !adjacent {
			t.Fatalf("walk step %d: %d -> %d not an edge", i, nodes[i], nodes[i+1])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(5, 2, 99)
	b := Generate(5, 2, 99)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sequences differ for same seed")
		}
	}
	c := Generate(5, 2, 100)
	same := len(a) == len(c)
	if same {
		diff := false
		for i := range a {
			if a[i] != c[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical sequences")
		}
	}
}

func TestPCubicMonotone(t *testing.T) {
	prev := 0
	for k := 0; k <= 50; k++ {
		p := PCubic(k, 3)
		if p < prev {
			t.Fatalf("PCubic not monotone at k=%d", k)
		}
		if p < 1 {
			t.Fatalf("PCubic(%d) < 1", k)
		}
		prev = p
	}
}

func TestFormulaCatalogUniversalSmall(t *testing.T) {
	// The cubic pseudorandom catalog should in practice be universal for
	// small graphs; verify rather than assume (DESIGN.md §2.1).
	cat := NewFormula(1, 12345)
	gs := []*graph.Graph{
		graph.Ring(5), graph.Path(5), graph.Complete(5),
		graph.Star(5), graph.BinaryTree(5),
	}
	seq := cat.Seq(5)
	if !UniversalFor(seq, gs) {
		g, v, _ := FirstFailure(seq, gs)
		t.Errorf("Formula Seq(5) (len %d) not integral on %v from %d", len(seq), g, v)
	}
	if cat.P(5) != len(seq) {
		t.Errorf("P(5)=%d, len=%d", cat.P(5), len(seq))
	}
}

func TestVerifiedCatalog(t *testing.T) {
	fam := DefaultFamily(7)
	cat := NewVerified(fam, 1)
	if err := CheckCatalog(cat, 9, fam); err != nil {
		t.Fatal(err)
	}
}

func TestVerifiedPlateau(t *testing.T) {
	fam := []*graph.Graph{graph.Ring(4), graph.Path(3)}
	cat := NewVerified(fam, 2)
	p4 := cat.P(4)
	for k := 5; k < 12; k++ {
		if cat.P(k) != p4 {
			t.Errorf("P(%d)=%d, want plateau %d beyond family max", k, cat.P(k), p4)
		}
	}
}

func TestVerifiedExtend(t *testing.T) {
	cat := NewVerified([]*graph.Graph{graph.Ring(4)}, 3)
	_ = cat.Seq(4)
	g := graph.Petersen()
	if cat.Covers(g) {
		t.Fatal("Covers true before Extend")
	}
	cat.Extend(g)
	if !cat.Covers(g) {
		t.Fatal("Covers false after Extend")
	}
	seq := cat.Seq(10)
	for v := 0; v < g.N(); v++ {
		if !Integral(g, v, seq) {
			t.Fatalf("after Extend, Seq(10) not integral on petersen from %d", v)
		}
	}
}

func TestVerifiedDeterministic(t *testing.T) {
	fam := DefaultFamily(5)
	a := NewVerified(fam, 9).Seq(5)
	b := NewVerified(fam, 9).Seq(5)
	if len(a) != len(b) {
		t.Fatal("nondeterministic search length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic search content")
		}
	}
}

func TestIntegralNegative(t *testing.T) {
	// An all-zero offset sequence on a ring only walks around one way and
	// never flips direction; on a path it bounces. Build a case where
	// coverage provably fails: length shorter than edge count.
	g := graph.Ring(6)
	if Integral(g, 0, Sequence{0, 0}) {
		t.Error("2-step walk cannot cover 6 edges")
	}
}

func TestUniversalForProperty(t *testing.T) {
	// Property: padding a universal sequence preserves universality.
	fam := []*graph.Graph{graph.Ring(4), graph.Path(4), graph.Star(4)}
	cat := NewVerified(fam, 5)
	base := cat.Seq(4)
	f := func(extra uint8) bool {
		padded := append(append(Sequence{}, base...), make(Sequence, int(extra)%17)...)
		return UniversalFor(padded, fam)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCheckCatalogDetectsViolation(t *testing.T) {
	bad := &fakeCatalog{}
	if err := CheckCatalog(bad, 3, nil); err == nil {
		t.Error("CheckCatalog accepted a catalog with decreasing P")
	}
}

// fakeCatalog violates monotonicity on purpose.
type fakeCatalog struct{}

func (f *fakeCatalog) Seq(k int) Sequence { return make(Sequence, 10-k) }
func (f *fakeCatalog) P(k int) int        { return 10 - k }
