package trajectory

import (
	"sync"
	"sync/atomic"

	"meetpoly/internal/graph"
)

// A deterministic trajectory walked in a fixed graph from a fixed start
// is a pure function: the exit port of move i depends only on (graph,
// start, trajectory program), never on the adversary's timing. Cells of
// a sweep that differ only in adversary or schedule therefore walk
// exactly the same routes — the paper's own amortization move (build
// one exploration object, replay it from anywhere), applied to the
// execution layer.
//
// RouteBook caches those routes per graph: the first run per (start,
// trajectory key) materializes its exit-port prefix lazily, in batches,
// as far as the run actually walks; every later run replays the flat
// array. Replay turns the per-move cost from a descent through the
// composite trajectory algebra (Chain → Repeat → Mirror → Interleave →
// UXS, with allocation churn at every excursion) into one slice read.

// RouteKey identifies one deterministic trajectory in a RouteBook's
// graph. Kind tags the trajectory family ('R' for the rendezvous master
// schedule, 'B' for the baseline), Param its parameter (the agent
// label). Callers must guarantee that (Kind, Param) fully determines
// the generator's move sequence in this graph.
type RouteKey struct {
	Start int
	Kind  byte
	Param uint64
}

// RouteBook caches materialized route prefixes of deterministic
// trajectories in one fixed graph. It is safe for concurrent use: route
// extension runs under a per-route lock while replays read immutable
// published snapshots.
type RouteBook struct {
	g  *graph.Graph
	mu sync.Mutex
	m  map[RouteKey]*Route
}

// NewRouteBook returns an empty route cache over g.
func NewRouteBook(g *graph.Graph) *RouteBook {
	return &RouteBook{g: g, m: make(map[RouteKey]*Route)}
}

// Graph returns the graph the book's routes are walked in.
func (b *RouteBook) Graph() *graph.Graph { return b.g }

// route returns the cached route for key, creating it (with gen as the
// trajectory generator factory) on first use.
func (b *RouteBook) route(key RouteKey, gen func() Stepper) *Route {
	b.mu.Lock()
	r, ok := b.m[key]
	if !ok {
		r = &Route{g: b.g, cur: key.Start, mkGen: gen}
		r.state.Store(&routeState{})
		b.m[key] = r
	}
	b.mu.Unlock()
	return r
}

// Stepper returns a single-use stepper replaying the route identified
// by key, materializing it on demand via gen (called at most once, on
// the route's first use). The replay emits exactly the move sequence
// gen's stepper would produce when walked in this graph from key.Start.
func (b *RouteBook) Stepper(key RouteKey, gen func() Stepper) Stepper {
	return &routeStepper{rt: b.route(key, gen)}
}

// NodeRoute returns the node sequence of the route's first moves
// (length moves+1 including the start, shorter if the trajectory
// completes first) — the shape the exhaustive certifier consumes.
func (b *RouteBook) NodeRoute(key RouteKey, gen func() Stepper, moves int) []int {
	r := b.route(key, gen)
	st := r.extendTo(moves)
	n := moves
	if len(st.nodes) < n {
		n = len(st.nodes)
	}
	out := make([]int, 0, n+1)
	out = append(out, key.Start)
	for _, v := range st.nodes[:n] {
		out = append(out, int(v))
	}
	return out
}

// Route is one materialized route prefix. Readers load the immutable
// state snapshot; the extender appends under the route lock and
// publishes a fresh snapshot.
type Route struct {
	g     *graph.Graph
	mkGen func() Stepper

	state atomic.Pointer[routeState]

	mu    sync.Mutex
	gen   Stepper // live generator, created on first extension
	cur   int     // generator walk position
	entry int     // entry-port context of the next generator move
}

// routeState is an immutable published prefix: ports[i] is the exit
// port of move i, nodes[i] the node reached by it. done means the
// trajectory completed (or got stuck on a degree-0 node) at len(ports)
// moves.
type routeState struct {
	ports []int32
	nodes []int32
	done  bool
}

// extendBatch bounds how much route is generated per lock acquisition:
// enough to amortize locking and snapshot publication, small enough
// that short runs don't materialize far past what they walk.
const extendBatch = 1024

// extendTo returns a state holding at least n moves (or the completed
// route, whichever is shorter).
func (r *Route) extendTo(n int) *routeState {
	st := r.state.Load()
	if st.done || len(st.ports) >= n {
		return st
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st = r.state.Load()
	if st.done || len(st.ports) >= n {
		return st
	}
	if r.gen == nil {
		r.gen = r.mkGen()
	}
	target := len(st.ports) + extendBatch
	if target < n {
		target = n
	}
	// Append onto copies: published snapshots are immutable, so growth
	// copies the prefix at most O(log) times over a route's lifetime.
	ports := append(make([]int32, 0, target), st.ports...)
	nodes := append(make([]int32, 0, target), st.nodes...)
	done := false
	for len(ports) < target {
		deg := r.g.Degree(r.cur)
		if deg == 0 {
			done = true // stuck forever: a degree-0 start makes no moves
			break
		}
		port, ok := r.gen.Next(deg, r.entry)
		if !ok {
			done = true
			break
		}
		to, entry := r.g.Succ(r.cur, port)
		ports = append(ports, int32(port))
		nodes = append(nodes, int32(to))
		r.cur, r.entry = to, entry
	}
	next := &routeState{ports: ports, nodes: nodes, done: done}
	r.state.Store(next)
	return next
}

// routeStepper replays a cached route. It ignores the caller-supplied
// (deg, entry) observations: the route determines them, by the same
// determinism argument that makes caching sound.
type routeStepper struct {
	rt  *Route
	st  *routeState
	idx int
}

//rvlint:hotpath
func (s *routeStepper) Next(deg, entry int) (int, bool) {
	if s.st == nil || s.idx >= len(s.st.ports) {
		s.st = s.rt.extendTo(s.idx + 1) // extendTo itself over-shoots by a batch
		if s.idx >= len(s.st.ports) {
			return 0, false
		}
	}
	p := s.st.ports[s.idx]
	s.idx++
	return int(p), true
}
