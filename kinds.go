package meetpoly

import (
	"context"
	"fmt"
	"math/big"
	"sync"

	"meetpoly/internal/baseline"
	"meetpoly/internal/core"
	"meetpoly/internal/esst"
	"meetpoly/internal/registry"
	"meetpoly/internal/sched"
	"meetpoly/internal/sgl"
	"meetpoly/internal/trajectory"
)

// ScenarioRunContext is the prepared execution state the engine hands a
// ScenarioRunner: the validated scenario, its built (and cache-shared)
// graph, the resolved adversary, and the engine it runs under — which
// gives a runner the exploration-sequence environment (Engine.Env), the
// paper's cost model (Engine.BoundModel) and the serialized observer
// (Observer). Runners for deterministic kinds additionally replay
// cached trajectories through the context's route book; that plumbing
// is internal, so custom kinds simply pay the derivation each run.
type ScenarioRunContext struct {
	// Context carries cancellation; runners should poll it between
	// units of work and report interruption through Finish (or by
	// wrapping ErrCanceled alongside the context's error).
	Context context.Context
	// Engine is the engine executing the scenario.
	Engine *Engine
	// Scenario is the validated descriptor being executed.
	Scenario Scenario
	// Graph is the prepared graph instance. For declarative specs it
	// comes from the engine's prepared-scenario cache and is shared
	// across runs: runners must treat it as immutable.
	Graph *Graph
	// Adversary is the resolved schedule strategy. It is per-run
	// mutable state; runners own it for the duration of the run.
	Adversary Adversary

	// routes is the graph's route book (nil for cache-bypassing runs):
	// the built-in deterministic kinds replay materialized trajectories
	// from it instead of re-deriving them.
	routes *trajectory.RouteBook
}

// Observer returns the engine's execution observer (nil when none is
// attached). Callbacks on it are serialized engine-wide, so runners may
// invoke it directly from their event loops.
func (rc *ScenarioRunContext) Observer() Observer { return rc.Engine.obs }

// schedOpts bundles the run options the internal scheduler consumes.
func (rc *ScenarioRunContext) schedOpts() sched.RunOpts {
	return sched.RunOpts{Ctx: rc.Context, Observer: rc.Engine.obs, ForceBlocking: rc.Engine.forceBlocking}
}

// Finish maps a scheduler-level outcome to the engine's typed
// sentinels, the way every built-in kind reports: a run that reached
// its goal succeeds even if the context fired just afterwards (the
// result is complete; cancellation only matters for work cut short),
// a canceled run wraps ErrCanceled plus the context's error, and only
// a run that actually consumed its budget reports ErrBudgetExhausted —
// a goal missed because the adversary rested or every agent halted
// would not be cured by a larger budget, so it gets a distinct error.
// miss names the unreached goal ("no meeting", "not all agents
// output", ...).
func (rc *ScenarioRunContext) Finish(sum Summary, goalMet bool, miss string) error {
	sc := rc.Scenario
	if goalMet {
		return nil
	}
	if sum.Canceled {
		return fmt.Errorf("scenario %q: %w (%w)", sc.Name, ErrCanceled, rc.Context.Err())
	}
	if sum.Exhausted {
		return fmt.Errorf("scenario %q: %s within %d events: %w",
			sc.Name, miss, sc.Budget, ErrBudgetExhausted)
	}
	return fmt.Errorf("scenario %q: %s after %d of %d events: run ended early (adversary rested or agents halted)",
		sc.Name, miss, sum.Steps, sc.Budget)
}

// ScenarioRunner executes one prepared scenario and returns its Result.
// The returned error follows the engine's conventions: nil for a run
// that reached its goal, a typed sentinel wrap otherwise (Finish
// produces both from a scheduler Summary). A runner may return a
// partial Result alongside a non-nil error.
type ScenarioRunner func(rc *ScenarioRunContext) (*Result, error)

// ScenarioKindDef describes one scenario kind for RegisterScenarioKind:
// the campaign-facing axis metadata, the kind-specific validator, the
// runner, and the sweep outcome classifier.
type ScenarioKindDef struct {
	// Kind is the ScenarioKind string scenarios select the runner by.
	Kind ScenarioKind
	// Labeled kinds take agent labels; the campaign label axis applies
	// to their cells.
	Labeled bool
	// UsesAdversary kinds run under a schedule; the campaign adversary
	// axis applies. (The certifier ranges over all schedules instead.)
	UsesAdversary bool
	// UsesBudget kinds bound adversary events: Scenario.Budget must be
	// positive and sweep cells carry Spec.Budget.
	UsesBudget bool
	// UsesMoves kinds consume a route-prefix length: sweep cells carry
	// Spec.Moves.
	UsesMoves bool
	// Validate checks kind-specific scenario shape against the built
	// graph (agent counts, label arity, budgets). Errors must wrap
	// ErrInvalidScenario. nil applies a generic default derived from
	// the flags above.
	Validate func(sc Scenario, g *Graph) error
	// Run executes the prepared scenario.
	Run ScenarioRunner
	// Outcome classifies an executed result into the engine-agnostic
	// record sweep oracles judge. nil applies the generic default: a
	// run that returned without error met its goal. Built-in kinds use
	// it to surface goal costs and scheduler accounting.
	Outcome func(res *Result, runErr error, o *SweepOutcome)

	// batch, when non-nil, marks the kind batchable: the sweep's batched
	// execution tier may run its cells as lanes of one shared-graph
	// sched.BatchRunner instead of dispatching Run per cell. The field
	// is deliberately unexported — a batchable kind must reduce to
	// exactly the two-walker first-meeting lane shape, and proving that
	// reduction observationally identical to Run is this package's job,
	// so externally registered kinds always execute per-cell.
	batch *batchKind
}

// batchKind is the batched-execution hook set of a batchable scenario
// kind: how the sweep's batch tier lowers one prepared cell to a lane
// of a sched.BatchRunner, and how it lifts the lane's Summary back into
// the kind's Result. The lowering must match the kind's Run so closely
// that sweep reports are byte-identical either way — the batch
// differential test enforces exactly that across every builtin kind.
type batchKind struct {
	// walkers builds the lane's two agents from the prepared cell,
	// replaying cached routes precisely as the kind's Run would.
	walkers func(e *Engine, routes *trajectory.RouteBook, g *Graph, sc Scenario) (a, b *sched.Walker)
	// result lifts a lane Summary into the kind's Result and reports
	// whether the goal was met.
	result func(e *Engine, sc Scenario, g *Graph, sum Summary) (*Result, bool)
	// miss names the unreached goal for ScenarioRunContext.Finish.
	miss string
}

// scenarioKinds maps ScenarioKind -> *ScenarioKindDef.
var scenarioKinds sync.Map

// RegisterScenarioKind adds a scenario kind to the open world: the
// engine dispatches Run/RunBatch/Sweep/ReplayCell to registered kinds
// by name, scenario validation applies the kind's validator, and the
// campaign expander consumes its axis metadata — a registered kind
// sweeps, caches and replays exactly like a built-in (its cells flow
// through the same prepared-scenario cache and seed-string derivation).
// The built-ins are registered through this exact path at package init.
// Duplicate kinds (or kinds whose metadata conflicts with an existing
// campaign registration) are rejected.
func RegisterScenarioKind(def ScenarioKindDef) error {
	if def.Kind == "" {
		return fmt.Errorf("meetpoly: scenario kind needs a name")
	}
	if def.Run == nil {
		return fmt.Errorf("meetpoly: scenario kind %q needs a Run function", def.Kind)
	}
	meta := registry.KindMeta{
		Name:          string(def.Kind),
		Labeled:       def.Labeled,
		UsesAdversary: def.UsesAdversary,
		UsesBudget:    def.UsesBudget,
		UsesMoves:     def.UsesMoves,
	}
	if err := registry.RegisterKindMeta(meta); err != nil {
		return fmt.Errorf("meetpoly: %v", err)
	}
	if _, dup := scenarioKinds.LoadOrStore(def.Kind, &def); dup {
		return fmt.Errorf("meetpoly: scenario kind %q is already registered", def.Kind)
	}
	return nil
}

// lookupScenarioKind resolves a kind to its registered definition.
func lookupScenarioKind(k ScenarioKind) (*ScenarioKindDef, bool) {
	v, ok := scenarioKinds.Load(k)
	if !ok {
		return nil, false
	}
	return v.(*ScenarioKindDef), true
}

// defaultKindValidate is the generic validator applied to kinds
// registered without one, derived from the def's axis flags.
func defaultKindValidate(def *ScenarioKindDef, s Scenario) error {
	if def.Labeled {
		if len(s.Labels) != len(s.Starts) {
			return scenarioFail(s, "%s needs one label per start (%d vs %d)", s.Kind, len(s.Labels), len(s.Starts))
		}
		if err := distinctPositiveLabels(s, s.Labels); err != nil {
			return err
		}
	}
	if def.UsesBudget && s.Budget <= 0 {
		return scenarioFail(s, "budget must be positive")
	}
	if def.UsesMoves && s.Moves <= 0 {
		return scenarioFail(s, "%s needs positive moves", s.Kind)
	}
	return nil
}

// scenarioFail builds the conventional validation error: it names the
// scenario and wraps ErrInvalidScenario, like every built-in validator.
func scenarioFail(s Scenario, format string, args ...any) error {
	return fmt.Errorf("scenario %q: %s: %w", s.Name, fmt.Sprintf(format, args...), ErrInvalidScenario)
}

// distinctPositiveLabels rejects zero or duplicate agent labels.
func distinctPositiveLabels(s Scenario, ls []Label) error {
	got := make(map[Label]bool, len(ls))
	for _, l := range ls {
		if l == 0 {
			return scenarioFail(s, "labels must be positive")
		}
		if got[l] {
			return scenarioFail(s, "duplicate label %d", l)
		}
		got[l] = true
	}
	return nil
}

// The built-in scenario kinds, registered through the public
// RegisterScenarioKind — the same path a third party uses. Their
// campaign metadata matches what internal/registry self-registered for
// the expander (registration is idempotent over identical metadata).
func init() {
	mustRegisterKind := func(def ScenarioKindDef) {
		if err := RegisterScenarioKind(def); err != nil {
			panic(err)
		}
	}
	mustRegisterKind(ScenarioKindDef{
		Kind: ScenarioRendezvous, Labeled: true, UsesAdversary: true, UsesBudget: true,
		Validate: validateTwoAgentBudgeted,
		Run:      runRendezvousKind,
		Outcome:  outcomeRendezvous,
		batch:    rendezvousBatchKind,
	})
	mustRegisterKind(ScenarioKindDef{
		Kind: ScenarioBaseline, Labeled: true, UsesAdversary: true, UsesBudget: true,
		Validate: validateTwoAgentBudgeted,
		Run:      runBaselineKind,
		Outcome:  outcomeBaseline,
		batch:    baselineBatchKind,
	})
	mustRegisterKind(ScenarioKindDef{
		Kind: ScenarioESST, Labeled: false, UsesAdversary: true, UsesBudget: true,
		Validate: validateESST,
		Run:      runESSTKind,
		Outcome:  outcomeESST,
	})
	mustRegisterKind(ScenarioKindDef{
		Kind: ScenarioSGL, Labeled: true, UsesAdversary: true, UsesBudget: true,
		Validate: validateSGL,
		Run:      runSGLKind,
		Outcome:  outcomeSGL,
	})
	mustRegisterKind(ScenarioKindDef{
		Kind: ScenarioCertify, Labeled: true, UsesAdversary: false, UsesMoves: true,
		Validate: validateCertify,
		Run:      runCertifyKind,
		Outcome:  outcomeCertify,
	})
}

// --- built-in validators (the arms of the former Validate switch) ---

func validateTwoAgentBudgeted(s Scenario, g *Graph) error {
	if len(s.Starts) != 2 || len(s.Labels) != 2 {
		return scenarioFail(s, "%s needs exactly 2 starts and 2 labels", s.Kind)
	}
	if err := distinctPositiveLabels(s, s.Labels); err != nil {
		return err
	}
	if s.Budget <= 0 {
		return scenarioFail(s, "budget must be positive")
	}
	return nil
}

func validateCertify(s Scenario, g *Graph) error {
	if len(s.Starts) != 2 || len(s.Labels) != 2 {
		return scenarioFail(s, "certify needs exactly 2 starts and 2 labels")
	}
	if err := distinctPositiveLabels(s, s.Labels); err != nil {
		return err
	}
	if s.Moves <= 0 {
		return scenarioFail(s, "certify needs positive moves")
	}
	return nil
}

func validateESST(s Scenario, g *Graph) error {
	if len(s.Starts) != 2 {
		return scenarioFail(s, "esst needs exactly 2 starts (explorer, token)")
	}
	if s.Budget <= 0 {
		return scenarioFail(s, "budget must be positive")
	}
	return nil
}

func validateSGL(s Scenario, g *Graph) error {
	if len(s.Starts) < 2 {
		return scenarioFail(s, "sgl needs at least 2 agents")
	}
	if len(s.Labels) != len(s.Starts) {
		return scenarioFail(s, "sgl needs one label per start (%d vs %d)", len(s.Labels), len(s.Starts))
	}
	if err := distinctPositiveLabels(s, s.Labels); err != nil {
		return err
	}
	if s.Values != nil && len(s.Values) != len(s.Labels) {
		return scenarioFail(s, "sgl values must match labels (%d vs %d)", len(s.Values), len(s.Labels))
	}
	if s.Budget <= 0 {
		return scenarioFail(s, "budget must be positive")
	}
	return nil
}

// --- built-in runners (the arms of the former runPrepared switch) ---

func runRendezvousKind(rc *ScenarioRunContext) (*Result, error) {
	e, sc, g := rc.Engine, rc.Scenario, rc.Graph
	s1 := e.masterStepper(rc.routes, g, sc.Starts[0], sc.Labels[0])
	s2 := e.masterStepper(rc.routes, g, sc.Starts[1], sc.Labels[1])
	r, err := core.RendezvousSteppers(rc.schedOpts(), g, sc.Starts[0], sc.Starts[1],
		sc.Labels[0], sc.Labels[1], e.env, rc.Adversary, sc.Budget, s1, s2,
		e.piBound(g.N(), sc.Labels[0], sc.Labels[1]))
	if err != nil {
		return nil, err
	}
	res := &Result{Scenario: sc, Rendezvous: r}
	return res, rc.Finish(r.Summary, r.Met, "no meeting")
}

// rendezvousBatchKind lowers a rendezvous cell to a batch lane exactly
// the way runRendezvousKind lowers it to a single-cell Runner: the same
// master steppers (route replay when cached), the same stop-at-meeting
// walkers carrying the labels as payloads, and the same Π bound on the
// lifted Result.
var rendezvousBatchKind = &batchKind{
	miss: "no meeting",
	walkers: func(e *Engine, routes *trajectory.RouteBook, g *Graph, sc Scenario) (*sched.Walker, *sched.Walker) {
		s1 := e.masterStepper(routes, g, sc.Starts[0], sc.Labels[0])
		s2 := e.masterStepper(routes, g, sc.Starts[1], sc.Labels[1])
		return &sched.Walker{Stepper: s1, StopAtMeeting: true, Payload: sc.Labels[0]},
			&sched.Walker{Stepper: s2, StopAtMeeting: true, Payload: sc.Labels[1]}
	},
	result: func(e *Engine, sc Scenario, g *Graph, sum Summary) (*Result, bool) {
		r := &core.Result{
			Met:     sum.FirstMeeting != nil,
			Meeting: sum.FirstMeeting,
			Summary: sum,
			Bound:   e.piBound(g.N(), sc.Labels[0], sc.Labels[1]),
		}
		return &Result{Scenario: sc, Rendezvous: r}, r.Met
	},
}

func runBaselineKind(rc *ScenarioRunContext) (*Result, error) {
	e, sc, g := rc.Engine, rc.Scenario, rc.Graph
	s1 := e.baselineStepper(rc.routes, g, sc.Starts[0], sc.Labels[0])
	s2 := e.baselineStepper(rc.routes, g, sc.Starts[1], sc.Labels[1])
	r, err := baseline.RendezvousSteppers(rc.schedOpts(), g, sc.Starts[0], sc.Starts[1],
		sc.Labels[0], sc.Labels[1], e.env, rc.Adversary, sc.Budget, s1, s2)
	if err != nil {
		return nil, err
	}
	res := &Result{Scenario: sc, Baseline: r}
	return res, rc.Finish(r.Summary, r.Met, "no meeting")
}

// baselineBatchKind is the baseline analogue of rendezvousBatchKind:
// baseline steppers and the additive exponential cost bound, mirroring
// baseline.RendezvousSteppers.
var baselineBatchKind = &batchKind{
	miss: "no meeting",
	walkers: func(e *Engine, routes *trajectory.RouteBook, g *Graph, sc Scenario) (*sched.Walker, *sched.Walker) {
		s1 := e.baselineStepper(routes, g, sc.Starts[0], sc.Labels[0])
		s2 := e.baselineStepper(routes, g, sc.Starts[1], sc.Labels[1])
		return &sched.Walker{Stepper: s1, StopAtMeeting: true, Payload: sc.Labels[0]},
			&sched.Walker{Stepper: s2, StopAtMeeting: true, Payload: sc.Labels[1]}
	},
	result: func(e *Engine, sc Scenario, g *Graph, sum Summary) (*Result, bool) {
		n := g.N()
		r := &baseline.Result{
			Met:     sum.FirstMeeting != nil,
			Meeting: sum.FirstMeeting,
			Summary: sum,
			Bound:   new(big.Int).Add(baseline.CostBound(e.env, n, sc.Labels[0]), baseline.CostBound(e.env, n, sc.Labels[1])),
		}
		return &Result{Scenario: sc, Baseline: r}, r.Met
	},
}

func runESSTKind(rc *ScenarioRunContext) (*Result, error) {
	e, sc := rc.Engine, rc.Scenario
	r, err := esst.ExploreWith(rc.schedOpts(), rc.Graph, sc.Starts[0], sc.Starts[1],
		e.env.Catalog(), rc.Adversary, sc.Budget)
	if err != nil {
		return nil, err
	}
	res := &Result{Scenario: sc, ESST: r}
	return res, rc.Finish(r.Summary, r.Done, "exploration did not terminate")
}

func runSGLKind(rc *ScenarioRunContext) (*Result, error) {
	e, sc := rc.Engine, rc.Scenario
	r, err := sgl.Run(sgl.Config{
		Graph:         rc.Graph,
		Starts:        sc.Starts,
		Labels:        sc.Labels,
		Values:        sc.Values,
		Env:           e.env,
		Adversary:     rc.Adversary,
		MaxSteps:      sc.Budget,
		Context:       rc.Context,
		Observer:      e.obs,
		ForceBlocking: e.forceBlocking,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Scenario: sc, SGL: r}
	return res, rc.Finish(r.Summary, r.AllOutput, "not all agents output")
}

func runCertifyKind(rc *ScenarioRunContext) (*Result, error) {
	e, sc := rc.Engine, rc.Scenario
	if rc.routes != nil {
		// The certifier consumes the same master trajectories the
		// rendezvous agents walk, as node-route prefixes; the cached
		// routes serve both.
		ra := e.masterRoute(rc.routes, sc.Starts[0], sc.Labels[0], sc.Moves)
		rb := e.masterRoute(rc.routes, sc.Starts[1], sc.Labels[1], sc.Moves)
		r, err := core.CertifyRoutes(rc.schedOpts(), ra, rb, sc.Labels[0], sc.Labels[1])
		if err != nil {
			return nil, err
		}
		return &Result{Scenario: sc, Cert: &r}, nil
	}
	r, err := core.CertifyInstanceWith(rc.schedOpts(), rc.Graph, sc.Starts[0], sc.Starts[1],
		sc.Labels[0], sc.Labels[1], e.env, sc.Moves)
	if err != nil {
		return nil, err
	}
	return &Result{Scenario: sc, Cert: &r}, nil
}

// --- built-in outcome classifiers (the former sweepOutcome switch) ---

// fillOutcomeSummary copies the scheduler accounting every built-in
// kind reports into the sweep outcome.
func fillOutcomeSummary(o *SweepOutcome, sum Summary) {
	o.Cost = sum.TotalCost
	o.Steps = sum.Steps
	o.MaxPerAgent = sum.Account.MaxPerAgent
	o.Committed = sum.Account.Committed
}

func outcomeRendezvous(res *Result, runErr error, o *SweepOutcome) {
	r := res.Rendezvous
	if r == nil {
		return
	}
	fillOutcomeSummary(o, r.Summary)
	if r.Met && runErr == nil {
		o.Met = true
		o.Cost = r.Meeting.Cost
	}
}

func outcomeBaseline(res *Result, runErr error, o *SweepOutcome) {
	r := res.Baseline
	if r == nil {
		return
	}
	fillOutcomeSummary(o, r.Summary)
	if r.Met && runErr == nil {
		o.Met = true
		o.Cost = r.Meeting.Cost
	}
}

func outcomeESST(res *Result, runErr error, o *SweepOutcome) {
	r := res.ESST
	if r == nil {
		return
	}
	fillOutcomeSummary(o, r.Summary)
	if r.Done && runErr == nil {
		o.Met = true
		o.Cost = r.Cost
		if !r.Covered {
			o.Consistent = false
			o.Detail = "esst reported done without covering every edge"
		}
	}
}

func outcomeSGL(res *Result, runErr error, o *SweepOutcome) {
	r := res.SGL
	if r == nil {
		return
	}
	fillOutcomeSummary(o, r.Summary)
	if r.AllOutput && runErr == nil {
		o.Met = true
		o.Cost = r.TotalCost
		if detail := sglInconsistency(r); detail != "" {
			o.Consistent = false
			o.Detail = detail
		}
	}
}

func outcomeCertify(res *Result, runErr error, o *SweepOutcome) {
	r := res.Cert
	if r == nil || runErr != nil {
		return
	}
	o.Met = true
	o.Cost = r.WorstCompleted
	if r.Forced && r.WorstCommitted < r.WorstCompleted {
		o.Consistent = false
		o.Detail = "certifier committed cost below completed cost"
	}
}
