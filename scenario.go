package meetpoly

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"meetpoly/internal/campaign"
	"meetpoly/internal/graph"
	"meetpoly/internal/registry"
	"meetpoly/internal/sched"
)

// ScenarioKind selects which of the paper's algorithms a Scenario runs.
type ScenarioKind string

// Scenario kinds.
const (
	// ScenarioRendezvous runs Algorithm RV-asynch-poly (Theorem 3.1).
	ScenarioRendezvous ScenarioKind = "rendezvous"
	// ScenarioBaseline runs the exponential-cost comparator.
	ScenarioBaseline ScenarioKind = "baseline"
	// ScenarioESST runs Procedure ESST (Theorem 2.1): Starts[0] is the
	// explorer, Starts[1] the parked token; Labels are unused.
	ScenarioESST ScenarioKind = "esst"
	// ScenarioSGL runs Algorithm SGL (Theorem 4.1) for a team of
	// len(Starts) agents.
	ScenarioSGL ScenarioKind = "sgl"
	// ScenarioCertify runs the exhaustive lattice adversary on the two
	// agents' route prefixes of Moves traversals each; Budget and
	// Adversary are ignored (the certifier ranges over ALL schedules).
	ScenarioCertify ScenarioKind = "certify"
)

// GraphSpec declaratively describes a graph so that scenarios round-trip
// through JSON. Builders are deterministic: the same spec always yields
// the same port-numbered graph, which is what lets a shared verified
// catalog recognize rebuilt family members without re-verification, and
// what lets the spec act as the content address of the engine's
// prepared-scenario cache.
type GraphSpec struct {
	// Kind names a registered graph kind: one of the built-ins
	// (path|ring|star|clique|bintree|tree|random|grid|torus|hypercube|
	// lollipop|petersen) or any kind added with RegisterGraphKind.
	Kind string `json:"kind"`
	// N is the node count (ignored for petersen; for hypercube it is
	// the dimension; for grid/torus/lollipop see Rows/Cols).
	N int `json:"n,omitempty"`
	// Rows and Cols size grid and torus graphs; for lollipop they are
	// the clique size and tail length.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// P is the edge probability for random graphs (default 0.3).
	P float64 `json:"p,omitempty"`
	// Seed drives random graph generation and port shuffling.
	Seed int64 `json:"seed,omitempty"`
	// Shuffle applies adversarially permuted port numbers (ShufflePorts
	// with Seed) to the built graph.
	Shuffle bool `json:"shuffle,omitempty"`
}

// MaxSpecNodes caps the node count a declarative GraphSpec may request.
// The builders themselves are driven by trusted code and take any size,
// but a spec is user input (JSON files, CLI flags, fuzzers), and an
// unchecked "clique of 10^9 nodes" is an allocation bomb, not a
// scenario. The cap is far above the small-graph regime the verified
// catalogs target, and is shared with campaign sweep validation so a
// SweepSpec that validates never expands into cells this check rejects.
const MaxSpecNodes = campaign.MaxSpecNodes

// String renders the spec compactly for error messages and logs:
// "ring/64", "grid/3x4", "ring/64?shuffle=7", "random/12?p=0.4&seed=3".
// Only meaningful fields appear — sized kinds print "/N", rows×cols
// kinds "/RxC", dimensionless kinds just the name — so a failing spec
// reads like the descriptor that was written, not a dump of every
// zero-valued field.
func (s GraphSpec) String() string {
	var sb strings.Builder
	sb.WriteString(s.Kind)
	switch {
	case s.Rows != 0 || s.Cols != 0:
		fmt.Fprintf(&sb, "/%dx%d", s.Rows, s.Cols)
	case s.N != 0:
		fmt.Fprintf(&sb, "/%d", s.N)
	}
	sep := byte('?')
	param := func(format string, args ...any) {
		sb.WriteByte(sep)
		sep = '&'
		fmt.Fprintf(&sb, format, args...)
	}
	if s.P != 0 {
		param("p=%g", s.P)
	}
	switch {
	case s.Shuffle:
		param("shuffle=%d", s.Seed)
	case s.Seed != 0:
		param("seed=%d", s.Seed)
	}
	return sb.String()
}

// Build constructs the described graph through the graph-kind registry.
// All failures wrap ErrInvalidScenario.
func (s GraphSpec) Build() (g *Graph, err error) {
	k, ok := registry.LookupGraph(s.Kind)
	if !ok {
		return nil, fmt.Errorf("unknown graph kind %q: %w", s.Kind, ErrInvalidScenario)
	}
	// Size-cap the request before building: the kind's NodeCount is the
	// single sizing formula shared with sweep-spec validation, so a
	// SweepSpec that validates never expands into cells rejected here.
	if _, err := k.NodeCount(s.N, s.Rows, s.Cols); err != nil {
		return nil, fmt.Errorf("graph spec %s: %v: %w", s, err, ErrInvalidScenario)
	}
	defer func() {
		// The generators panic on out-of-range parameters (they are
		// driven by trusted code); a declarative spec is user input, so
		// convert panics into typed errors.
		if rec := recover(); rec != nil {
			g, err = nil, fmt.Errorf("graph spec %s: %v: %w", s, rec, ErrInvalidScenario)
		}
	}()
	g, err = k.Build(s.registryParams())
	if err != nil {
		return nil, fmt.Errorf("graph spec %s: %v: %w", s, err, ErrInvalidScenario)
	}
	if g == nil {
		return nil, fmt.Errorf("graph spec %s: builder returned no graph: %w", s, ErrInvalidScenario)
	}
	// Port shuffling is applied here, outside the builders, so every
	// registered kind supports it without writing any code.
	if s.Shuffle {
		g = graph.ShufflePorts(g, s.Seed)
	}
	return g, nil
}

// GraphKindDef describes a custom graph kind for RegisterGraphKind.
type GraphKindDef struct {
	// Kind is the name GraphSpec.Kind and campaign axes select the
	// builder by; Aliases are additional accepted spellings.
	Kind    string
	Aliases []string
	// Sized declares the campaign axis shape: a sized kind sweeps over
	// GraphAxis.Sizes (one graph cell per size, spec.N carries it), a
	// fixed kind resolves to one cell from Rows/Cols (or from nothing).
	Sized bool
	// NodeCount deterministically resolves the node count a spec
	// requests and enforces the MaxSpecNodes cap. nil defaults to "N,
	// capped". It is consulted by scenario validation, campaign axis
	// validation and sweep expansion, so sizing can never disagree
	// across layers.
	NodeCount func(n, rows, cols int) (int, error)
	// CheckAxis validates campaign axis parameters (minimum sizes,
	// required dimensions). nil accepts everything NodeCount accepts.
	CheckAxis func(n, rows, cols int) error
	// AxisDefaults fills derived defaults (family seeds, probabilities)
	// on each resolved campaign cell. Build must apply the same value
	// defaults itself: direct scenarios bypass axis resolution.
	AxisDefaults func(spec *GraphSpec)
	// Build deterministically constructs the graph from the spec. Port
	// shuffling (spec.Shuffle) is applied by the caller. The builder
	// must be a pure function of the spec fields — that is what lets
	// the spec act as the content address of the prepared-scenario
	// cache and what makes sweep cells replayable.
	Build func(spec GraphSpec) (*Graph, error)
	// Fingerprint versions the builder for the prepared-scenario cache:
	// the cache keys on (spec, fingerprint), so a builder that closes
	// over external configuration must encode that configuration here.
	Fingerprint string
}

// RegisterGraphKind adds a graph kind to the open world: registered
// kinds build everywhere a built-in does — Scenario and SweepSpec JSON,
// campaign graph axes, CLI flags — and participate in the engine's
// prepared-scenario cache and route-book reuse exactly like built-ins
// (one build + coverage check per unique spec, cached deterministic
// trajectories per catalog epoch). The built-ins go through the same
// underlying registry at init. Duplicate names are rejected.
func RegisterGraphKind(def GraphKindDef) error {
	if def.Kind == "" {
		return fmt.Errorf("meetpoly: graph kind needs a name")
	}
	if def.Build == nil {
		return fmt.Errorf("meetpoly: graph kind %q needs a Build function", def.Kind)
	}
	rk := registry.GraphKind{
		Name:        def.Kind,
		Aliases:     def.Aliases,
		Sized:       def.Sized,
		NodeCount:   def.NodeCount,
		Fingerprint: def.Fingerprint,
		Build: func(p registry.GraphParams) (*graph.Graph, error) {
			return def.Build(graphSpecFromParams(p))
		},
	}
	if def.CheckAxis != nil {
		check := def.CheckAxis
		rk.CheckAxis = func(_ string, n, rows, cols int) error { return check(n, rows, cols) }
	}
	if def.AxisDefaults != nil {
		defaults := def.AxisDefaults
		rk.AxisDefaults = func(p *registry.GraphParams) {
			spec := graphSpecFromParams(*p)
			defaults(&spec)
			*p = spec.registryParams()
		}
	}
	if err := registry.RegisterGraph(rk); err != nil {
		return fmt.Errorf("meetpoly: %v", err)
	}
	return nil
}

// graphSpecFromParams and GraphSpec.registryParams are the single
// conversion pair between the public spec and the registry's shared
// parameter form. Keep them inverse: a field added to GraphSpec must be
// threaded through BOTH, or builders silently receive its zero value
// while the prepared cache (keyed on the full spec) treats it as
// significant.
func graphSpecFromParams(p registry.GraphParams) GraphSpec {
	return GraphSpec{Kind: p.Kind, N: p.N, Rows: p.Rows, Cols: p.Cols,
		P: p.P, Seed: p.Seed, Shuffle: p.Shuffle}
}

func (s GraphSpec) registryParams() registry.GraphParams {
	return registry.GraphParams{Kind: s.Kind, N: s.N, Rows: s.Rows, Cols: s.Cols,
		P: s.P, Seed: s.Seed, Shuffle: s.Shuffle}
}

// Scenario is a declarative, JSON-serializable description of one
// execution: which algorithm, on which graph, with which agents, under
// which adversary, and for how long. Execute it with Engine.Run.
type Scenario struct {
	// Name is a free-form identifier echoed in results and errors.
	Name string       `json:"name,omitempty"`
	Kind ScenarioKind `json:"kind"`
	// Graph describes the network declaratively.
	Graph GraphSpec `json:"graph"`
	// GraphInstance, when non-nil, overrides Graph with an
	// already-built value (not serialized). The deprecated free
	// functions use this to route concrete graphs through the engine.
	GraphInstance *Graph `json:"-"`
	// Starts are the agents' starting nodes (distinct). For ESST:
	// [explorer, token].
	Starts []int `json:"starts"`
	// Labels are the agents' labels: two distinct positive values for
	// rendezvous/baseline/certify, one per agent for SGL, unused for
	// ESST.
	Labels []Label `json:"labels,omitempty"`
	// Values are SGL gossip inputs (defaults to "value-of-<label>").
	Values []string `json:"values,omitempty"`
	// Adversary is a ParseAdversary spec string; "" = round-robin.
	Adversary string `json:"adversary,omitempty"`
	// AdversaryInstance, when non-nil, overrides Adversary with an
	// already-built strategy (not serialized).
	AdversaryInstance Adversary `json:"-"`
	// Budget bounds the number of adversary events (all kinds except
	// certify).
	Budget int `json:"budget,omitempty"`
	// Moves is the certify route-prefix length (certify only).
	Moves int `json:"moves,omitempty"`
}

// BuildGraph returns the scenario's graph: GraphInstance when set,
// otherwise the graph built from the declarative spec.
func (s Scenario) BuildGraph() (*Graph, error) {
	if s.GraphInstance != nil {
		return s.GraphInstance, nil
	}
	return s.Graph.Build()
}

// resolveAdversary returns the scenario's adversary strategy. The spec
// string is parsed with the scenario's agent count in scope, so family
// parsers can apply agent-dependent defaults (bare "biased" becomes the
// 1:5:9:... skew) and validate agent-dependent parameters (weight
// counts, latewake agent indices) that ParseAdversary alone cannot.
func (s Scenario) resolveAdversary() (Adversary, error) {
	if s.AdversaryInstance != nil {
		return s.AdversaryInstance, nil
	}
	return parseAdversarySpec(s.Adversary, len(s.Starts))
}

// Validate checks the scenario against the model's requirements. All
// failures wrap ErrInvalidScenario.
func (s Scenario) Validate() error {
	g, err := s.BuildGraph()
	if err != nil {
		return err
	}
	return s.validateWith(g)
}

// validateWith is Validate against an already-built graph, so callers
// that need the graph anyway (the engine) build it exactly once. The
// generic model requirements (starts in range and distinct, a
// resolvable adversary) are checked here; everything kind-specific is
// the registered kind's validator.
func (s Scenario) validateWith(g *Graph) error {
	seen := make(map[int]bool, len(s.Starts))
	for _, v := range s.Starts {
		if v < 0 || v >= g.N() {
			return scenarioFail(s, "start node %d out of range [0,%d)", v, g.N())
		}
		if seen[v] {
			return scenarioFail(s, "duplicate start node %d", v)
		}
		seen[v] = true
	}
	adv, err := s.resolveAdversary()
	if err != nil {
		return err
	}
	// Spec-string adversaries validate agent-dependent parameters in
	// their parsers; a caller-supplied instance bypasses parsing, so
	// the one mismatch that would panic inside the runner (it is a
	// programming error there) is re-checked here.
	if s.AdversaryInstance != nil {
		if b, ok := adv.(*sched.Biased); ok && len(b.Weights) != len(s.Starts) {
			return scenarioFail(s, "biased adversary has %d weights for %d agents", len(b.Weights), len(s.Starts))
		}
	}
	def, ok := lookupScenarioKind(s.Kind)
	if !ok {
		return scenarioFail(s, "unknown kind %q", s.Kind)
	}
	if def.Validate != nil {
		return def.Validate(s, g)
	}
	return defaultKindValidate(def, s)
}

// JSON renders the scenario as indented JSON.
func (s Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ScenarioFromJSON parses and validates a serialized scenario.
func ScenarioFromJSON(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("scenario JSON: %v: %w", err, ErrInvalidScenario)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// SweepSpecJSON renders a campaign sweep spec as indented JSON, the
// same declarative-descriptor convention Scenario.JSON follows.
func SweepSpecJSON(s SweepSpec) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// SweepSpecFromJSON parses and validates a serialized sweep spec.
// Malformed or inconsistent specs wrap ErrInvalidScenario, like every
// other declarative descriptor.
func SweepSpecFromJSON(data []byte) (SweepSpec, error) {
	var s SweepSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return SweepSpec{}, fmt.Errorf("sweep spec JSON: %v: %w", err, ErrInvalidScenario)
	}
	if err := s.Validate(); err != nil {
		return SweepSpec{}, fmt.Errorf("%v: %w", err, ErrInvalidScenario)
	}
	return s, nil
}

// LoadSweepSpecFile reads, parses and validates a sweep spec JSON file.
func LoadSweepSpecFile(path string) (SweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SweepSpec{}, err
	}
	return SweepSpecFromJSON(data)
}

// LoadScenarioFile reads, parses and validates a scenario JSON file,
// optionally restricting the accepted kinds (the per-algorithm
// commands each run only their own kind).
func LoadScenarioFile(path string, kinds ...ScenarioKind) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	s, err := ScenarioFromJSON(data)
	if err != nil {
		return Scenario{}, err
	}
	if len(kinds) > 0 {
		ok := false
		for _, k := range kinds {
			if s.Kind == k {
				ok = true
			}
		}
		if !ok {
			return Scenario{}, fmt.Errorf("%s: scenario kind %q not accepted here (want %v): %w",
				path, s.Kind, kinds, ErrInvalidScenario)
		}
	}
	return s, nil
}
