package meetpoly

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"meetpoly/internal/campaign"
	"meetpoly/internal/uxs"
)

// acceptanceSpec is the full-coverage campaign: all five scenario kinds,
// eight graph builders, every adversary spec family, two start pairs and
// two label pairs per cell — >= 1000 generated scenarios.
func acceptanceSpec() SweepSpec {
	return SweepSpec{
		Name: "acceptance",
		Seed: "acceptance-v1",
		Graphs: []SweepGraphAxis{
			{Kind: "path", Sizes: []int{3, 4, 5}},
			{Kind: "ring", Sizes: []int{3, 4, 5}},
			{Kind: "star", Sizes: []int{4, 5}},
			{Kind: "clique", Sizes: []int{4, 5}},
			{Kind: "bintree", Sizes: []int{4, 5}},
			{Kind: "tree", Sizes: []int{4, 5}},
			{Kind: "random", Sizes: []int{4, 5}},
			{Kind: "grid", Rows: 2, Cols: 3},
		},
		StartPairs:  2,
		LabelPairs:  2,
		Adversaries: []string{"", "avoider", "random", "biased", "latewake:50"},
		Budget:      4000,
		Moves:       120,
	}
}

// smokeSpec loads the tiny sweep CI runs with oracles on — the same
// file the campaign-smoke job feeds rvsweep, so the test and the CI job
// cannot drift apart.
func smokeSpec(t *testing.T) SweepSpec {
	t.Helper()
	spec, err := LoadSweepSpecFile("testdata/campaign-smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSweepSmoke(t *testing.T) {
	eng := NewEngine(WithMaxN(5), WithSeed(1))
	rep, err := eng.Sweep(context.Background(), smokeSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("smoke sweep has oracle failures:\n%s", rep.Table())
	}
	if rep.Met == 0 {
		t.Fatal("smoke sweep met nothing")
	}
	if rep.Cells != rep.Met+rep.Ex+rep.Canc+rep.Other {
		t.Fatalf("cells unaccounted for: %+v", rep)
	}
	if rep.Other != 0 {
		t.Fatalf("smoke sweep produced unclassified outcomes: %+v", rep)
	}
}

// TestSweepAcceptance is the acceptance criterion for the campaign
// subsystem: >= 1000 generated scenarios across all five kinds, >= 6
// graph builders and every adversary spec, with every run checked
// against the paper-bound oracle suite.
func TestSweepAcceptance(t *testing.T) {
	spec := acceptanceSpec()
	cells, scs, err := ExpandSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 1000 {
		t.Fatalf("campaign generated %d scenarios, want >= 1000", len(cells))
	}
	kinds, builders, advs := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for i, c := range cells {
		kinds[c.Kind] = true
		builders[c.Graph.Kind] = true
		adv := c.Adversary
		if j := strings.IndexByte(adv, ':'); j >= 0 {
			adv = adv[:j]
		}
		advs[adv] = true
		// Every expanded cell must be a valid scenario.
		if err := scs[i].Validate(); err != nil {
			t.Fatalf("cell %s expands to an invalid scenario: %v", c.Seed, err)
		}
	}
	if len(kinds) != 5 {
		t.Fatalf("campaign covers kinds %v, want all five", kinds)
	}
	if len(builders) < 6 {
		t.Fatalf("campaign covers %d graph builders, want >= 6", len(builders))
	}
	for _, want := range []string{"", "avoider", "random", "biased", "latewake"} {
		if !advs[want] {
			t.Fatalf("campaign misses adversary family %q (has %v)", want, advs)
		}
	}

	if testing.Short() {
		t.Skip("short mode: expansion validated, skipping the full execution")
	}
	// The sweeping engine runs the direct-dispatch fast path; the
	// cross-core oracle re-executes every cell on a goroutine-core
	// engine sharing the same catalog, so each acceptance sweep is also
	// a full differential check of the two execution cores.
	cat := uxs.NewVerified(uxs.DefaultFamily(6), 1)
	eng := NewEngine(WithCatalog(cat))
	ref := NewEngine(WithCatalog(cat), WithDirectDispatch(false))
	oracles := append(campaign.DefaultOracles(eng.BoundModel()), CrossCheckOracle(ref))
	rep, err := eng.SweepWithOracles(context.Background(), spec, oracles...)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("acceptance sweep has oracle failures:\n%s", rep.Table())
	}
	if rep.Cells != len(cells) {
		t.Fatalf("report covers %d of %d cells", rep.Cells, len(cells))
	}
	if rep.Met == 0 || rep.Met+rep.Ex+rep.Canc+rep.Other != rep.Cells || rep.Other != 0 {
		t.Fatalf("unexpected outcome totals: %+v", rep)
	}
	t.Logf("acceptance sweep: %d cells, %d met, %d exhausted", rep.Cells, rep.Met, rep.Ex)
}

// failEvens is an injected oracle that rejects every even-indexed met
// run — a deliberate bug generator for the replay loop.
var failEvens = campaign.OracleFunc{ID: "inject-even", F: func(c campaign.Cell, o campaign.Outcome) error {
	if o.Met && c.Index%2 == 0 {
		return fmt.Errorf("injected failure at index %d", c.Index)
	}
	return nil
}}

// TestSweepInjectedOracleReplays: a failing oracle's report must carry
// seed strings from which ReplayCell reproduces the exact failure.
func TestSweepInjectedOracleReplays(t *testing.T) {
	eng := NewEngine(WithMaxN(5), WithSeed(1))
	spec := smokeSpec(t)
	rep, err := eng.SweepWithOracles(context.Background(), spec, failEvens)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Failures) == 0 {
		t.Fatal("injected oracle produced no failures")
	}
	fail := rep.Failures[0]
	if fail.Failures[0].Oracle != "inject-even" {
		t.Fatalf("unexpected failing oracle: %+v", fail.Failures)
	}
	// Reproduce from nothing but the spec and the reported seed string.
	replayed, err := eng.ReplayCellWithOracles(context.Background(), spec, fail.Cell.Seed, failEvens)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Cell.ID != fail.Cell.ID || replayed.Cell.Index != fail.Cell.Index {
		t.Fatalf("replay resolved a different cell: %+v vs %+v", replayed.Cell, fail.Cell)
	}
	if !replayed.Failed() || replayed.Failures[0].Oracle != "inject-even" {
		t.Fatalf("replay did not reproduce the failure: %+v", replayed)
	}
	if replayed.Outcome.Met != fail.Outcome.Met || replayed.Outcome.Cost != fail.Outcome.Cost {
		t.Fatalf("replayed outcome diverged: %+v vs %+v", replayed.Outcome, fail.Outcome)
	}
	// A foreign seed string must be rejected, not misresolved.
	if _, err := eng.ReplayCell(context.Background(), spec, "other#0"); err == nil {
		t.Fatal("replay accepted a seed from another campaign")
	}
}

func TestSweepSpecJSONRoundTrip(t *testing.T) {
	spec := acceptanceSpec()
	data, err := SweepSpecJSON(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := SweepSpecFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := ExpandSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ExpandSweep(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("round-tripped spec expands to %d cells, original %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Seed != b[i].Seed || a[i].ID != b[i].ID {
			t.Fatalf("cell %d diverged after round trip", i)
		}
	}
	if _, err := SweepSpecFromJSON([]byte(`{"seed":""}`)); err == nil {
		t.Fatal("accepted a spec without seed/graphs")
	}
	if _, err := SweepSpecFromJSON([]byte(`{broken`)); err == nil {
		t.Fatal("accepted malformed JSON")
	}
}
