// Command customkind demonstrates the extension API: a custom graph
// kind, a custom adversary and a custom scenario kind registered
// through the same registries the built-ins use, then driven through
// Engine.Run and a streaming campaign sweep.
//
// The three registrations are the whole integration surface — after
// them, declarative JSON scenarios, sweep specs, the prepared-scenario
// cache, per-cell replay seeds and the oracle pipeline all apply to the
// custom kinds with no further code.
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"

	"meetpoly"
)

// wheelGraph builds the custom family: a hub (node 0) joined to every
// rim node, plus the rim cycle 1..n-1. Ports are assigned in edge
// insertion order, so the function is deterministic in n — the property
// that lets a GraphSpec address the engine's prepared cache.
func wheelGraph(n int) *meetpoly.Graph {
	b := meetpoly.NewGraphBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	for i := 1; i < n; i++ {
		j := i + 1
		if j == n {
			j = 1
		}
		b.AddEdge(i, j)
	}
	return b.Graph(fmt.Sprintf("wheel-%d", n))
}

// favoriteAdversary always advances its favourite agent when it can
// act — a from-scratch Adversary over the exported View.
type favoriteAdversary struct {
	favorite int
}

func (f *favoriteAdversary) Next(v *meetpoly.View) (meetpoly.Event, bool) {
	n := v.K()
	if v.AnyDormant() {
		for i := 0; i < n; i++ {
			if v.CanWake(i) {
				return meetpoly.Event{Kind: meetpoly.EventWake, Agent: i}, true
			}
		}
	}
	if v.CanAdvance(f.favorite) {
		return meetpoly.Event{Kind: meetpoly.EventAdvance, Agent: f.favorite}, true
	}
	for i := 0; i < n; i++ {
		if v.CanAdvance(i) {
			return meetpoly.Event{Kind: meetpoly.EventAdvance, Agent: i}, true
		}
	}
	return meetpoly.Event{}, false
}

// PursuitResult is the custom kind's payload, carried in Result.Custom.
type PursuitResult struct {
	Distance int
}

// register wires the three extensions into the registries. sync.Once
// keeps main and the Example test (same binary under `go test`) from
// double-registering.
var register = sync.OnceValue(func() error {
	if err := meetpoly.RegisterGraphKind(meetpoly.GraphKindDef{
		Kind:  "wheel",
		Sized: true,
		CheckAxis: func(n, _, _ int) error {
			if n < 4 {
				return fmt.Errorf("wheel needs size >= 4, got %d", n)
			}
			return nil
		},
		Build: func(spec meetpoly.GraphSpec) (*meetpoly.Graph, error) {
			if spec.N < 4 {
				return nil, fmt.Errorf("wheel needs size >= 4, got %d", spec.N)
			}
			return wheelGraph(spec.N), nil
		},
		Fingerprint: "examples/wheel@v1",
	}); err != nil {
		return err
	}
	if err := meetpoly.RegisterAdversary(meetpoly.AdversaryDef{
		Name: "favorite",
		Parse: func(args meetpoly.AdversaryArgs) (meetpoly.Adversary, error) {
			fav := 0
			if s := args.Param(0); s != "" {
				if _, err := fmt.Sscanf(s, "%d", &fav); err != nil || fav < 0 {
					return nil, args.Errf("bad agent %q", s)
				}
			}
			if args.Agents > 0 && fav >= args.Agents {
				return nil, args.Errf("agent %d out of range for %d agents", fav, args.Agents)
			}
			return &favoriteAdversary{favorite: fav}, nil
		},
	}); err != nil {
		return err
	}
	return meetpoly.RegisterScenarioKind(meetpoly.ScenarioKindDef{
		Kind: "pursuit", Labeled: true, UsesAdversary: true, UsesBudget: true,
		Run: func(rc *meetpoly.ScenarioRunContext) (*meetpoly.Result, error) {
			// A stand-in algorithm: the BFS distance between the two
			// agents' starts. A real kind would run its agents under
			// rc.Adversary; the registry contract is the same either way.
			sc := rc.Scenario
			d := rc.Graph.BFSDistances(sc.Starts[0])[sc.Starts[1]]
			return &meetpoly.Result{Scenario: sc, Custom: PursuitResult{Distance: d}}, nil
		},
		Outcome: func(res *meetpoly.Result, runErr error, o *meetpoly.SweepOutcome) {
			if pr, ok := res.Custom.(PursuitResult); ok && runErr == nil {
				o.Met = true
				o.Cost = pr.Distance
			}
		},
	})
})

func run(w io.Writer) error {
	if err := register(); err != nil {
		return err
	}
	ctx := context.Background()
	eng := meetpoly.NewEngine(meetpoly.WithMaxN(6), meetpoly.WithSeed(1))

	// The custom kind runs from a declarative scenario like any
	// built-in — including JSON round-trips.
	sc := meetpoly.Scenario{
		Name:      "chase",
		Kind:      "pursuit",
		Graph:     meetpoly.GraphSpec{Kind: "wheel", N: 8},
		Starts:    []int{1, 4},
		Labels:    []meetpoly.Label{2, 5},
		Adversary: "favorite:1",
		Budget:    100,
	}
	res, err := eng.Run(ctx, sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pursuit on %s: distance %d\n", sc.Graph, res.Custom.(PursuitResult).Distance)

	// And it sweeps: custom kind × custom graphs × custom adversary,
	// streamed cell by cell, with the built-in rendezvous alongside.
	spec := meetpoly.SweepSpec{
		Name:  "customkind",
		Seed:  "customkind-v1",
		Kinds: []string{"pursuit", "rendezvous"},
		Graphs: []meetpoly.SweepGraphAxis{
			{Kind: "wheel", Sizes: []int{6, 8}},
		},
		StartPairs:  2,
		Adversaries: []string{"favorite:1"},
		Budget:      500_000,
	}
	met, failed, cells := 0, 0, 0
	for cr, err := range eng.SweepStream(ctx, spec) {
		if err != nil {
			return err
		}
		cells++
		if cr.Outcome.Met {
			met++
		}
		if cr.Failed() {
			failed++
		}
	}
	fmt.Fprintf(w, "sweep: %d cells, %d met, %d oracle failures\n", cells, met, failed)
	stats := eng.CacheStats()
	fmt.Fprintf(w, "cache: %d graph builds, %d preparations served from cache\n", stats.Misses, stats.Hits)
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "customkind:", err)
		os.Exit(1)
	}
}
