// Package core implements Algorithm RV-asynch-poly (§3.1 of the paper):
// deterministic asynchronous rendezvous of two labelled agents in an
// arbitrary unknown graph at cost polynomial in the graph size and in the
// length of the smaller label.
//
// An agent with label L first forms its modified label
// M(L) = b1 b2 ... bs (each bit doubled plus the terminator 01, package
// labels). It then follows, forever or until rendezvous, the schedule
//
//	for k = 1, 2, 3, ...          // pieces
//	  for i = 1 .. min(k, s)
//	    bit bi == 1:  follow B(2k, v) twice   // segment of two atoms
//	    bit bi == 0:  follow A(4k, v) twice
//	    i < min(k,s): follow K(k, v)          // border
//	    i == min(k,s): follow Ω(k, v)         // fence
//
// all anchored at its starting node v. The interplay of pieces, fences,
// segments, atoms and borders synchronizes the two agents despite the
// adversary's control of their speeds (Lemmas 3.2-3.6) and forces a
// meeting while they process the first bit where their modified labels
// differ (Theorem 3.1).
package core

import (
	"fmt"
	"math/big"

	"meetpoly/internal/costmodel"
	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/rverr"
	"meetpoly/internal/sched"
	"meetpoly/internal/trajectory"
)

// ComponentKind names a building block of the master schedule.
type ComponentKind string

// Schedule component kinds.
const (
	CompAtomB ComponentKind = "B" // one atom B(2k)
	CompAtomA ComponentKind = "A" // one atom A(4k)
	CompK     ComponentKind = "K" // border K(k)
	CompOmega ComponentKind = "Ω" // fence Ω(k)
)

// Component is one entry of the flattened master schedule.
type Component struct {
	Kind ComponentKind
	K    int // the piece index k
	I    int // the bit index i within the piece
	Arg  int // the parameter passed to the trajectory (2k, 4k or k)
}

// Schedule returns the flattened component sequence of Algorithm
// RV-asynch-poly for the given label, truncated after the fence of piece
// kMax. It is the reference against which the lazy stepper is tested.
func Schedule(l labels.Label, kMax int) []Component {
	bits := l.Modified()
	s := len(bits)
	var out []Component
	for k := 1; k <= kMax; k++ {
		m := min(k, s)
		for i := 1; i <= m; i++ {
			if bits[i-1] == 1 {
				out = append(out,
					Component{CompAtomB, k, i, 2 * k},
					Component{CompAtomB, k, i, 2 * k})
			} else {
				out = append(out,
					Component{CompAtomA, k, i, 4 * k},
					Component{CompAtomA, k, i, 4 * k})
			}
			if i < m {
				out = append(out, Component{CompK, k, i, k})
			} else {
				out = append(out, Component{CompOmega, k, i, k})
			}
		}
	}
	return out
}

// NewStepper returns the infinite master trajectory of Algorithm
// RV-asynch-poly for an agent with label l, over the trajectory
// environment env. The stepper is lazy: components are instantiated when
// reached, so the astronomical tail lengths cost nothing until walked.
func NewStepper(l labels.Label, env *trajectory.Env) trajectory.Stepper {
	bits := l.Modified()
	s := len(bits)
	k, i, phase := 1, 1, 0
	return trajectory.Chain(func(int) trajectory.Stepper {
		m := min(k, s)
		switch phase {
		case 0, 1: // the two atoms of segment S_i(k)
			phase++
			if bits[i-1] == 1 {
				return env.B(2 * k)
			}
			return env.A(4 * k)
		default: // border between segments, or fence after the last
			phase = 0
			defer func() {
				i++
				if i > m {
					i = 1
					k++
				}
			}()
			if i < m {
				return env.K(k)
			}
			return env.Omega(k)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// PiBound returns Π(n, min(|L1|, |L2|)) for the environment's catalog:
// the Theorem 3.1 guarantee on the number of edge traversals either agent
// performs before the meeting is certain.
func PiBound(env *trajectory.Env, n int, l1, l2 labels.Label) *big.Int {
	m := costmodel.New(func(k int) *big.Int {
		return big.NewInt(int64(env.Catalog().P(k)))
	})
	mLen := l1.Len()
	if l2.Len() < mLen {
		mLen = l2.Len()
	}
	return m.Pi(n, mLen)
}

// Result summarizes one rendezvous execution.
type Result struct {
	Met     bool
	Meeting *sched.Meeting // first meeting, nil if none within budget
	Summary sched.Summary
	Bound   *big.Int // Π guarantee for this instance
}

// Rendezvous runs Algorithm RV-asynch-poly for two agents under the given
// adversary, stopping at the first meeting or after budget adversary
// events. Labels must be distinct and starts different; both agents are
// woken immediately unless the adversary's schedule says otherwise — the
// paper lets the adversary delay an agent arbitrarily, which the budget
// models as pre-meeting freezing, so both are marked initially awake and
// the adversary chooses who actually moves.
func Rendezvous(g *graph.Graph, start1, start2 int, l1, l2 labels.Label,
	env *trajectory.Env, adv sched.Adversary, budget int) (*Result, error) {
	return RendezvousWith(sched.RunOpts{}, g, start1, start2, l1, l2, env, adv, budget)
}

// RendezvousWith is Rendezvous with cross-cutting execution options: a
// context whose cancellation aborts the scheduler between events
// (reported in Result.Summary.Canceled) and an observer receiving the
// execution's events.
func RendezvousWith(opts sched.RunOpts, g *graph.Graph, start1, start2 int, l1, l2 labels.Label,
	env *trajectory.Env, adv sched.Adversary, budget int) (*Result, error) {
	return RendezvousSteppers(opts, g, start1, start2, l1, l2, env, adv, budget,
		NewStepper(l1, env), NewStepper(l2, env))
}

// RendezvousSteppers is RendezvousWith with the two agents' trajectory
// steppers supplied by the caller. The steppers must emit exactly the
// master trajectories of l1 and l2 — the engine passes cached route
// replays here (trajectory.RouteBook), which are deterministic renditions
// of the same walks, so repeated instances skip trajectory re-derivation.
// bound, when non-nil, is the precomputed Π(n, min label length) for the
// instance (the engine memoizes it across a sweep); nil derives it here.
func RendezvousSteppers(opts sched.RunOpts, g *graph.Graph, start1, start2 int, l1, l2 labels.Label,
	env *trajectory.Env, adv sched.Adversary, budget int, s1, s2 trajectory.Stepper, bound ...*big.Int) (*Result, error) {
	if l1 == l2 {
		return nil, fmt.Errorf("core: agents must have distinct labels: %w", rverr.ErrInvalidScenario)
	}
	a := &sched.Walker{Stepper: s1, StopAtMeeting: true, Payload: l1}
	b := &sched.Walker{Stepper: s2, StopAtMeeting: true, Payload: l2}
	r, err := sched.NewRunner(sched.Config{
		Graph:              g,
		Starts:             []int{start1, start2},
		Agents:             []sched.Agent{a, b},
		InitiallyAwake:     []int{0, 1},
		MaxSteps:           budget,
		StopAtFirstMeeting: true,
		Context:            opts.Ctx,
		Observer:           opts.Observer,
		ForceBlocking:      opts.ForceBlocking,
	}, adv)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer r.Close()
	sum := r.Run()
	res := &Result{
		Met:     sum.FirstMeeting != nil,
		Meeting: sum.FirstMeeting,
		Summary: sum,
	}
	if len(bound) > 0 && bound[0] != nil {
		res.Bound = bound[0]
	} else {
		res.Bound = PiBound(env, g.N(), l1, l2)
	}
	return res, nil
}

// Route materializes the first moves of the master trajectory of label l
// in g from start: the node sequence handed to the exhaustive certifier.
// Until the first meeting the agent's route is exactly this sequence.
func Route(g *graph.Graph, start int, l labels.Label, env *trajectory.Env, moves int) []int {
	tr, _ := trajectory.Run(g, start, NewStepper(l, env), moves)
	route := make([]int, 0, tr.Moves()+1)
	route = append(route, start)
	route = append(route, tr.Nodes...)
	return route
}

// CertifyInstance runs the exhaustive adversary on the two agents' route
// prefixes of the given length: the exact worst case over every schedule
// (DESIGN.md §2.2). Forced=true certifies that NO adversary can prevent
// the meeting within these prefixes.
func CertifyInstance(g *graph.Graph, start1, start2 int, l1, l2 labels.Label,
	env *trajectory.Env, moves int) (sched.CertResult, error) {
	return CertifyInstanceWith(sched.RunOpts{}, g, start1, start2, l1, l2, env, moves)
}

// CertifyInstanceWith is CertifyInstance with cross-cutting execution
// options; cancellation aborts the lattice sweep mid-run with an error
// wrapping rverr.ErrCanceled.
func CertifyInstanceWith(opts sched.RunOpts, g *graph.Graph, start1, start2 int, l1, l2 labels.Label,
	env *trajectory.Env, moves int) (sched.CertResult, error) {
	if l1 == l2 {
		return sched.CertResult{}, fmt.Errorf("core: agents must have distinct labels: %w", rverr.ErrInvalidScenario)
	}
	ra := Route(g, start1, l1, env, moves)
	rb := Route(g, start2, l2, env, moves)
	return sched.CertifyCtx(opts.Ctx, ra, rb)
}

// CertifyRoutes runs the exhaustive adversary on two pre-materialized
// route prefixes (same shape as Route's result). The engine uses it
// with cached routes so sweeps re-derive each certify route once per
// (graph, start, label) instead of once per cell.
func CertifyRoutes(opts sched.RunOpts, ra, rb []int, l1, l2 labels.Label) (sched.CertResult, error) {
	if l1 == l2 {
		return sched.CertResult{}, fmt.Errorf("core: agents must have distinct labels: %w", rverr.ErrInvalidScenario)
	}
	return sched.CertifyCtx(opts.Ctx, ra, rb)
}
