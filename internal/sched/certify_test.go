package sched

import (
	"math/big"
	"math/rand"
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/trajectory"
)

func bigInt(v int64) *big.Int { return big.NewInt(v) }

func TestCertifyForcedOnTwoPath(t *testing.T) {
	// Both agents bounce along the only edge of a 2-path: meeting is
	// forced immediately, whatever the schedule (worked example from the
	// design notes).
	routeA := []int{0, 1, 0, 1}
	routeB := []int{1, 0, 1, 0}
	res, err := Certify(routeA, routeB)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Forced {
		t.Fatalf("expected forced meeting, got %v", res)
	}
	if res.WorstCompleted != 1 {
		t.Errorf("WorstCompleted = %d, want 1", res.WorstCompleted)
	}
	if res.SafestDepth != 1 {
		t.Errorf("SafestDepth = %d, want 1", res.SafestDepth)
	}
}

func TestCertifyEscapeOnRing(t *testing.T) {
	// Two agents rotating the same way around a ring stay apart forever.
	n := 6
	mk := func(start, steps int) []int {
		r := make([]int, steps+1)
		for i := range r {
			r[i] = (start + i) % n
		}
		return r
	}
	res, err := Certify(mk(0, 50), mk(3, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Forced {
		t.Fatalf("expected escape, got %v", res)
	}
}

func TestCertifyCounterRotationForced(t *testing.T) {
	// Opposite rotations on a ring must cross somewhere.
	n := 5
	fwd := make([]int, 40)
	bwd := make([]int, 40)
	for i := range fwd {
		fwd[i] = i % n
		bwd[i] = ((2-i)%n + n) % n
	}
	res, err := Certify(fwd, bwd)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Forced {
		t.Fatalf("counter-rotation escaped: %v", res)
	}
}

func TestCertifyErrors(t *testing.T) {
	if _, err := Certify(nil, []int{0}); err == nil {
		t.Error("empty route accepted")
	}
	if _, err := Certify([]int{0}, []int{0}); err == nil {
		t.Error("same start accepted")
	}
}

func TestCertifyTrivialEscape(t *testing.T) {
	res, err := Certify([]int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Forced {
		t.Error("two parked agents at distinct nodes cannot be forced to meet")
	}
}

// refCertify is an independent recursive implementation of the lattice
// game with memoization, used to cross-check the bitset DP.
func refCertify(routeA, routeB []int) bool {
	pb := 2 * (len(routeA) - 1)
	qb := 2 * (len(routeB) - 1)
	blocked := func(p, q int) bool {
		if p%2 == 0 && q%2 == 0 {
			return routeA[p/2] == routeB[q/2]
		}
		if p%2 == 1 && q%2 == 1 {
			i, j := (p-1)/2, (q-1)/2
			return routeA[i] == routeB[j+1] && routeA[i+1] == routeB[j]
		}
		return false
	}
	type cell struct{ p, q int }
	memo := make(map[cell]bool)
	var escape func(p, q int) bool
	escape = func(p, q int) bool {
		if blocked(p, q) {
			return false
		}
		if p == pb || q == qb {
			return true
		}
		c := cell{p, q}
		if v, ok := memo[c]; ok {
			return v
		}
		memo[c] = false // guard
		v := escape(p+1, q) || escape(p, q+1)
		memo[c] = v
		return v
	}
	return !escape(0, 0) // forced iff no escape
}

func TestCertifyAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		g := graph.RandomConnected(2+rng.Intn(5), 0.4, int64(trial))
		// Random walks as routes.
		mkRoute := func(start, steps int) []int {
			r := []int{start}
			cur := start
			for i := 0; i < steps; i++ {
				d := g.Degree(cur)
				to, _ := g.Succ(cur, rng.Intn(d))
				r = append(r, to)
				cur = to
			}
			return r
		}
		sa := rng.Intn(g.N())
		sb := (sa + 1 + rng.Intn(g.N()-1)) % g.N()
		ra := mkRoute(sa, 1+rng.Intn(8))
		rb := mkRoute(sb, 1+rng.Intn(8))
		got, err := Certify(ra, rb)
		if err != nil {
			t.Fatal(err)
		}
		want := refCertify(ra, rb)
		if got.Forced != want {
			t.Fatalf("trial %d: Certify.Forced=%v, reference=%v\nA=%v\nB=%v",
				trial, got.Forced, want, ra, rb)
		}
	}
}

// TestCertifyConsistentWithRunner: when the lattice says the meeting is
// forced, every runner adversary must produce a meeting; when it finds an
// escape, the avoider should find it too (the avoider is not guaranteed
// optimal, so only the forced direction is asserted strictly).
func TestCertifyConsistentWithRunner(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	forcedSeen := 0
	for trial := 0; trial < 120; trial++ {
		g := graph.RandomConnected(2+rng.Intn(4), 0.5, int64(1000+trial))
		steps := 2 + rng.Intn(6)
		mkPorts := func() []int {
			ports := make([]int, steps)
			for i := range ports {
				ports[i] = rng.Intn(8)
			}
			return ports
		}
		pa, pb := mkPorts(), mkPorts()
		sa := rng.Intn(g.N())
		sb := (sa + 1 + rng.Intn(g.N()-1)) % g.N()
		ta, _ := trajectory.Run(g, sa, script(pa...), steps+1)
		tb, _ := trajectory.Run(g, sb, script(pb...), steps+1)
		routeA := append([]int{sa}, ta.Nodes...)
		routeB := append([]int{sb}, tb.Nodes...)
		res, err := Certify(routeA, routeB)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Forced {
			continue
		}
		forcedSeen++
		for name, mk := range Strategies(2) {
			a := &Walker{Stepper: script(pa...)}
			b := &Walker{Stepper: script(pb...)}
			r := mustRunner(t, Config{
				Graph: g, Starts: []int{sa, sb}, Agents: []Agent{a, b},
				InitiallyAwake: []int{0, 1}, MaxSteps: 10000,
			}, mk())
			sum := r.Run()
			if sum.FirstMeeting == nil {
				t.Fatalf("trial %d: certifier says forced but %s escaped\nA=%v\nB=%v",
					trial, name, routeA, routeB)
			}
			// The first meeting must not exceed the certified worst case.
			if got := sum.FirstMeeting.Cost; got > res.WorstCompleted {
				t.Fatalf("trial %d: %s met at completed cost %d > certified worst %d",
					trial, name, got, res.WorstCompleted)
			}
			if got := sum.FirstMeeting.Committed; got > res.WorstCommitted {
				t.Fatalf("trial %d: %s met at committed cost %d > certified worst %d",
					trial, name, got, res.WorstCommitted)
			}
		}
	}
	if forcedSeen == 0 {
		t.Skip("no forced instances sampled; widen generator")
	}
}
