package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// OracleFailure records one oracle's verdict on one cell.
type OracleFailure struct {
	Oracle string `json:"oracle"`
	Err    string `json:"err"`
}

// CellResult pairs an executed cell with its outcome and any oracle
// failures. A failing result carries the cell's replay seed string, so
// reproducing it needs nothing but the spec and that one string.
type CellResult struct {
	Cell     Cell            `json:"cell"`
	Outcome  Outcome         `json:"outcome"`
	Failures []OracleFailure `json:"failures,omitempty"`
}

// Failed reports whether any oracle rejected the run.
func (cr CellResult) Failed() bool { return len(cr.Failures) > 0 }

// GroupKey maps a cell to the aggregation bucket it belongs to.
type GroupKey func(Cell) string

// ByKindGraph groups results by scenario kind and graph cell — the
// default report shape.
func ByKindGraph(c Cell) string { return c.Kind + "/" + c.Graph.axisLabel() }

// ByKind groups results by scenario kind only.
func ByKind(c Cell) string { return c.Kind }

// ByAdversary groups results by scenario kind and adversary family (the
// spec string up to any ':' argument).
func ByAdversary(c Cell) string {
	adv := c.Adversary
	if i := strings.IndexByte(adv, ':'); i >= 0 {
		adv = adv[:i]
	}
	if adv == "" {
		adv = "roundrobin"
	}
	return c.Kind + "/" + adv
}

// GroupStats aggregates the cells of one bucket.
type GroupStats struct {
	Group     string `json:"group"`
	Runs      int    `json:"runs"`
	Met       int    `json:"met"`
	Exhausted int    `json:"exhausted"`
	Canceled  int    `json:"canceled"`
	// Other counts runs in none of the above buckets: invalid expanded
	// cells and runs that ended without goal or typed sentinel. The
	// termination oracle fails each of them, but the column keeps the
	// table rows summing to Runs.
	Other  int `json:"other,omitempty"`
	Failed int `json:"failed"` // oracle failures
	// Cost statistics over met runs (the goal cost).
	MinCost int   `json:"min_cost"`
	MaxCost int   `json:"max_cost"`
	CostSum int64 `json:"cost_sum"`
}

// MeanCost returns the mean goal cost over met runs (0 when none met).
func (g GroupStats) MeanCost() float64 {
	if g.Met == 0 {
		return 0
	}
	return float64(g.CostSum) / float64(g.Met)
}

// Report is the aggregate outcome of one campaign.
type Report struct {
	Name  string `json:"name,omitempty"`
	Seed  string `json:"seed"`
	Cells int    `json:"cells"`
	Met   int    `json:"met"`
	Ex    int    `json:"exhausted"`
	Canc  int    `json:"canceled"`
	Other int    `json:"other,omitempty"`
	Fail  int    `json:"failed"`
	// Events is the total number of adversary events executed across
	// all cells — the work denominator behind cells/sec comparisons.
	Events int64        `json:"events"`
	Group  []GroupStats `json:"groups"`
	// Failures lists every oracle-failing cell, replayable by seed.
	Failures []CellResult `json:"failures,omitempty"`
}

// OK reports whether the campaign was fully verified: every run passed
// every oracle AND no run was canceled. Oracles skip canceled runs by
// design (a canceled run proves nothing), so a sweep cut short by its
// context must not read as a clean verdict.
func (r *Report) OK() bool { return r.Fail == 0 && r.Canc == 0 }

// BuildReport aggregates per-cell results under the given grouping
// (ByKindGraph when key is nil).
func BuildReport(spec Spec, results []CellResult, key GroupKey) *Report {
	a := NewAggregator(spec, key)
	for _, cr := range results {
		a.Add(cr)
	}
	return a.Report()
}

// Aggregator folds cell results into a Report incrementally, in any
// arrival order: the streaming half of Engine.Sweep feeds it from the
// worker pool as cells finish, so a million-cell campaign aggregates in
// memory proportional to its groups, failures and completed-index
// intervals, not its cells. The
// final Report is byte-identical regardless of arrival order (groups
// sort by name, failures by cell index). Add and Report are not safe
// for concurrent use; callers serialize (the engine holds a mutex).
type Aggregator struct {
	key    GroupKey
	r      *Report
	groups map[string]*GroupStats
	// seen guards against the same cell being folded twice. Within one
	// campaign a cell's seed string "<seed>#<index>" and its index are a
	// bijection, so the index — coalescing into a handful of intervals —
	// is the memory-bounded form of a seed-string set. The duplicate
	// hazard is real, not theoretical: a checkpoint-resumed sweep replays
	// its recovered results and then re-executes the gaps, and a cell
	// completed right at a checkpoint boundary can arrive on both paths.
	seen IndexSet
}

// NewAggregator returns an empty aggregator for one campaign
// (ByKindGraph grouping when key is nil).
func NewAggregator(spec Spec, key GroupKey) *Aggregator {
	if key == nil {
		key = ByKindGraph
	}
	return &Aggregator{
		key:    key,
		r:      &Report{Name: spec.Name, Seed: spec.Seed},
		groups: make(map[string]*GroupStats),
	}
}

// Add folds one cell result into the aggregate. Feeding the same cell
// (by seed string, equivalently by index) twice is a no-op: the second
// Add changes nothing, so replay-plus-resume pipelines cannot double
// count a boundary cell.
func (a *Aggregator) Add(cr CellResult) {
	if !a.seen.Add(cr.Cell.Index) {
		return
	}
	r := a.r
	r.Cells++
	r.Events += int64(cr.Outcome.Steps)
	k := a.key(cr.Cell)
	g, ok := a.groups[k]
	if !ok {
		g = &GroupStats{Group: k}
		a.groups[k] = g
	}
	g.Runs++
	o := cr.Outcome
	switch {
	case o.Met:
		r.Met++
		g.Met++
		if g.Met == 1 || o.Cost < g.MinCost {
			g.MinCost = o.Cost
		}
		if o.Cost > g.MaxCost {
			g.MaxCost = o.Cost
		}
		g.CostSum += int64(o.Cost)
	case o.Exhausted:
		r.Ex++
		g.Exhausted++
	case o.Canceled:
		r.Canc++
		g.Canceled++
	default:
		r.Other++
		g.Other++
	}
	if cr.Failed() {
		r.Fail++
		g.Failed++
		r.Failures = append(r.Failures, cr)
	}
}

// Report finalizes and returns the aggregate. The aggregator must not
// be used afterwards.
func (a *Aggregator) Report() *Report {
	r := a.r
	for _, g := range a.groups {
		r.Group = append(r.Group, *g)
	}
	sort.Slice(r.Group, func(i, j int) bool { return r.Group[i].Group < r.Group[j].Group })
	sort.Slice(r.Failures, func(i, j int) bool { return r.Failures[i].Cell.Index < r.Failures[j].Cell.Index })
	return r
}

// Table renders the report as an aligned text table, one row per group,
// with a totals row and a failure list (each entry replayable from its
// seed string).
func (r *Report) Table() string {
	var sb strings.Builder
	title := r.Name
	if title == "" {
		title = "campaign"
	}
	fmt.Fprintf(&sb, "== %s (seed %q): %d cells ==\n", title, r.Seed, r.Cells)
	rows := [][]string{{"group", "runs", "met", "exhausted", "canceled", "other", "oracle-fail", "min-cost", "mean-cost", "max-cost"}}
	for _, g := range r.Group {
		min, mean, max := "-", "-", "-"
		if g.Met > 0 {
			min = fmt.Sprint(g.MinCost)
			mean = fmt.Sprintf("%.1f", g.MeanCost())
			max = fmt.Sprint(g.MaxCost)
		}
		rows = append(rows, []string{g.Group, fmt.Sprint(g.Runs), fmt.Sprint(g.Met),
			fmt.Sprint(g.Exhausted), fmt.Sprint(g.Canceled), fmt.Sprint(g.Other),
			fmt.Sprint(g.Failed), min, mean, max})
	}
	rows = append(rows, []string{"TOTAL", fmt.Sprint(r.Cells), fmt.Sprint(r.Met),
		fmt.Sprint(r.Ex), fmt.Sprint(r.Canc), fmt.Sprint(r.Other), fmt.Sprint(r.Fail), "", "", ""})
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(row)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", w))
			}
			sb.WriteByte('\n')
		}
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&sb, "FAIL %s (replay seed %q):", f.Cell.ID, f.Cell.Seed)
		for _, of := range f.Failures {
			fmt.Fprintf(&sb, " [%s] %s", of.Oracle, of.Err)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
