package sched

// Action is one agent decision: halt forever, or traverse the edge
// leaving the current node through Port.
type Action struct {
	Halt bool
	Port int
}

// Stepper is the direct-dispatch agent representation: an explicit
// resumable state machine that returns its next action instead of
// blocking in Proc.Move. The runner drives Steppers inline on its own
// goroutine — no per-agent goroutine, no channel hand-off — which is
// the scheduler's fast path (DESIGN.md §2.2, "execution model").
//
// Step is invoked once at wake (with Entry == -1, mirroring the first
// Proc.Obs of the blocking API) and once after every completed
// traversal, with the arrival observation. Returning Action{Halt: true}
// halts the agent forever (it remains physically present and meetable),
// exactly like returning from Agent.Run. The Proc handle is provided
// for Proc.Phase announcements; its Move method must not be called from
// Step.
//
// OnMeet and Publish keep their Agent contract: they run between Step
// invocations, so state they mutate is visible to the next Step without
// synchronization. A Stepper still implements the blocking Agent
// interface — RunStepper is the canonical Run for agents whose program
// lives in Step — so the same value runs on either execution core, and
// the differential test suite proves the two cores observationally
// identical.
type Stepper interface {
	Agent
	Step(p *Proc, o Observation) Action
}

// RunStepper drives a Stepper through the blocking Proc API: the
// canonical Agent.Run implementation for state-machine agents forced
// onto the goroutine core (Config.ForceBlocking).
func RunStepper(s Stepper, p *Proc) {
	o := p.Obs()
	for {
		a := s.Step(p, o)
		if a.Halt {
			return
		}
		o = p.Move(a.Port)
	}
}
