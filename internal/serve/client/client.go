// Package client is the self-healing sweep client: the consumer-side
// half of the fault-tolerance story. It streams a campaign's cell
// results from an rvserved instance and survives everything the fault
// model throws at the wire — connection resets mid-NDJSON, 5xx bursts,
// load-shedding 429/503s, server restarts — by folding results as they
// arrive into the order-independent aggregator and re-requesting
// exactly the gap set (campaign.IndexSet.Gaps) after every failure.
// Nothing is ever fetched twice on a healthy path, nothing is lost on
// an unhealthy one, and the final report is byte-identical to an
// uninterrupted single-process run.
//
// Retry policy: 429/503 honor the server's Retry-After hint; those,
// 409 (campaign busy on the server), other 5xx, and transport errors
// are retryable with exponential backoff plus seeded jitter; any other
// 4xx is terminal (the request itself is wrong — retrying cannot fix
// a malformed spec). Consecutive attempts that make no progress are
// capped by MaxStalls; any received cell resets the stall counter.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"meetpoly"
	"meetpoly/internal/campaign"
	"meetpoly/internal/telemetry/logx"
)

// Config configures a Client.
type Config struct {
	// BaseURL is the rvserved instance, e.g. "http://localhost:8747".
	BaseURL string

	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client

	// Tenant is sent as the X-Tenant header when non-empty.
	Tenant string

	// MaxStalls caps consecutive attempts that deliver zero new cells;
	// <= 0 means DefaultMaxStalls. Progress resets the counter, so a
	// flaky link that still trickles results never trips it.
	MaxStalls int

	// BaseBackoff / MaxBackoff bound the exponential retry delay;
	// zero values mean the defaults. The actual wait is the larger of
	// the backoff and the server's Retry-After hint, plus jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// JitterSeed seeds the backoff jitter, making a test's retry
	// timeline reproducible. 0 means 1.
	JitterSeed int64

	// OnRetry, when set, observes every retryable failure before the
	// client sleeps: the error, the attempt's stall count and the wait.
	OnRetry func(err error, stalls int, wait time.Duration)

	// Metrics receives the client's healing series: retries by
	// classification, backoff sleep time, healed gap ranges, duplicate
	// cells dropped. Nil records nothing.
	Metrics *meetpoly.Metrics

	// Log receives retry/heal events. Nil logs nothing.
	Log *logx.Logger
}

// Client retry defaults.
const (
	DefaultMaxStalls   = 8
	DefaultBaseBackoff = 50 * time.Millisecond
	DefaultMaxBackoff  = 5 * time.Second
)

// ErrStalled reports that MaxStalls consecutive attempts delivered no
// new cell results.
var ErrStalled = errors.New("client: no progress after max consecutive retries")

// terminalError wraps a non-retryable HTTP refusal.
type terminalError struct {
	status int
	body   string
}

func (e *terminalError) Error() string {
	return fmt.Sprintf("client: terminal response %d: %s", e.status, strings.TrimSpace(e.body))
}

// Client streams campaigns from one rvserved instance.
type Client struct {
	cfg Config
	rng *rand.Rand
	m   *clientMetrics
	log *logx.Logger
}

// New builds a client. The zero-ish Config{BaseURL: url} is usable.
func New(cfg Config) *Client {
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxStalls <= 0 {
		cfg.MaxStalls = DefaultMaxStalls
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = DefaultBaseBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 1
	}
	return &Client{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed)),
		m:   newClientMetrics(cfg.Metrics),
		log: cfg.Log,
	}
}

// Sweep runs spec remotely, streaming every cell result to emit (nil
// to ignore) exactly once as it first arrives, and returns the
// aggregate report — byte-compatible with a local Engine.Sweep of the
// same spec. Canceled cells (the server's budget expired mid-run) are
// neither folded nor emitted: they stay gaps, and the next request
// re-executes them for real.
func (c *Client) Sweep(ctx context.Context, spec meetpoly.SweepSpec, emit func(meetpoly.SweepCellResult) bool) (*meetpoly.SweepReport, error) {
	total, err := meetpoly.CountSweep(spec)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}

	agg := campaign.NewAggregator(spec, nil)
	var done campaign.IndexSet
	stalls := 0
	for done.Len() < total {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		got, attemptErr := c.attempt(ctx, body, &done, total, agg, emit)
		if errors.Is(attemptErr, errStopped) {
			return nil, attemptErr
		}
		var term *terminalError
		if errors.As(attemptErr, &term) {
			return nil, attemptErr
		}
		if got > 0 {
			stalls = 0
		} else {
			stalls++
			if stalls >= c.cfg.MaxStalls {
				return nil, fmt.Errorf("%w (last error: %v)", ErrStalled, attemptErr)
			}
		}
		if done.Len() == total {
			break
		}
		wait := c.backoff(stalls, attemptErr)
		if attemptErr != nil {
			if c.cfg.OnRetry != nil {
				c.cfg.OnRetry(attemptErr, stalls, wait)
			}
			c.log.Warn("retrying after failure",
				logx.F("err", attemptErr), logx.F("stalls", int64(stalls)),
				logx.F("wait", wait), logx.F("done", int64(done.Len())),
				logx.F("total", int64(total)))
		}
		if wait > 0 {
			c.m.backedOff(wait)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(wait):
			}
		}
	}
	return agg.Report(), nil
}

// errStopped: the caller's emit returned false.
var errStopped = errors.New("client: stopped by consumer")

// retryAfterError carries a server Retry-After hint up to backoff.
type retryAfterError struct {
	status int
	hint   time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("client: server refused with %d (Retry-After %s)", e.status, e.hint)
}

// attempt performs one HTTP round: request the current gap set, stream
// until the connection ends (cleanly or not), fold what arrived.
// Returns how many new cells landed; the error is nil only on a clean
// trailer.
func (c *Client) attempt(ctx context.Context, spec []byte, done *campaign.IndexSet, total int, agg *campaign.Aggregator, emit func(meetpoly.SweepCellResult) bool) (int, error) {
	url := c.cfg.BaseURL + "/v1/sweep"
	if done.Len() > 0 {
		// Resume: request exactly the gaps. The server replays nothing
		// we already hold, and its own checkpoint means the gap cells
		// may not even re-execute server-side.
		var parts []string
		for _, gap := range done.Gaps(0, total) {
			parts = append(parts, fmt.Sprintf("%d-%d", gap.Lo, gap.Hi))
		}
		url += "?ranges=" + strings.Join(parts, ",")
		c.m.healed(len(parts))
		c.log.Debug("healing stream",
			logx.F("gaps", int64(len(parts))), logx.F("done", int64(done.Len())))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(spec))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.cfg.Tenant != "" {
		req.Header.Set("X-Tenant", c.cfg.Tenant)
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		c.m.retriedTransport()
		return 0, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusOK:
		// Stream below.
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable:
		hint := parseRetryAfter(resp.Header.Get("Retry-After"))
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		c.m.retriedRetryAfter()
		return 0, &retryAfterError{status: resp.StatusCode, hint: hint}
	case resp.StatusCode == http.StatusConflict || resp.StatusCode >= 500:
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		c.m.retriedHTTP()
		return 0, fmt.Errorf("client: retryable response %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	default:
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return 0, &terminalError{status: resp.StatusCode, body: string(data)}
	}

	got := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	sawTrailer := false
	var trailerErr string
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		// A stream line is either a cell result (has "cell") or the
		// final trailer (has "done"/"error").
		var probe struct {
			Cell  *json.RawMessage `json:"cell"`
			Done  bool             `json:"done"`
			Error string           `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			c.m.retriedStream()
			return got, fmt.Errorf("client: undecodable stream line (connection garbled?): %w", err)
		}
		if probe.Cell == nil {
			sawTrailer = true
			trailerErr = probe.Error
			break
		}
		var cr meetpoly.SweepCellResult
		if err := json.Unmarshal(line, &cr); err != nil {
			c.m.retriedStream()
			return got, fmt.Errorf("client: decoding cell result: %w", err)
		}
		if cr.Outcome.Canceled {
			continue // not a result: the gap persists and is re-requested
		}
		if !done.Add(cr.Cell.Index) {
			c.m.duplicate()
			continue // duplicate across a resume boundary: already folded
		}
		agg.Add(cr)
		c.m.cell()
		got++
		if emit != nil && !emit(cr) {
			return got, errStopped
		}
	}
	if err := sc.Err(); err != nil {
		// Mid-stream cut: everything folded so far is kept; the caller
		// retries with the shrunken gap set.
		c.m.retriedStream()
		return got, fmt.Errorf("client: stream interrupted: %w", err)
	}
	if !sawTrailer {
		c.m.retriedStream()
		return got, errors.New("client: stream ended without a trailer (connection reset)")
	}
	if trailerErr != "" {
		c.m.retriedHTTP()
		return got, fmt.Errorf("client: server reported: %s", trailerErr)
	}
	return got, nil
}

// backoff computes the wait before the next attempt: exponential in
// the stall count with seeded jitter, floored by any Retry-After hint
// the server sent.
func (c *Client) backoff(stalls int, cause error) time.Duration {
	if stalls == 0 {
		return 0 // fresh progress: go straight back for the rest
	}
	d := c.cfg.BaseBackoff << uint(stalls-1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	d += time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	var ra *retryAfterError
	if errors.As(cause, &ra) && ra.hint > d {
		d = ra.hint
	}
	return d
}

func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
