package main

import "testing"

func TestParseShard(t *testing.T) {
	good := []struct {
		in    string
		i, of int
	}{
		{"0/1", 0, 1},
		{"1/3", 1, 3},
		{"7/8", 7, 8},
	}
	for _, c := range good {
		i, of, err := parseShard(c.in)
		if err != nil || i != c.i || of != c.of {
			t.Errorf("parseShard(%q) = (%d, %d, %v), want (%d, %d, nil)", c.in, i, of, err, c.i, c.of)
		}
	}
	for _, in := range []string{"", "1", "1/", "/2", "a/b", "2/2", "3/2", "-1/2", "0/0", "0/-1", "1/3/5"} {
		if _, _, err := parseShard(in); err == nil {
			t.Errorf("parseShard(%q) accepted, want error", in)
		}
	}
}
