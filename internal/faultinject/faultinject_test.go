package faultinject

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestScheduleReproducible is the acceptance-criteria anchor: the same
// fault spec — randomized triggers included — resolves to the same
// schedule every time, and two injectors from one spec fire
// identically over identical operation sequences.
func TestScheduleReproducible(t *testing.T) {
	spec := "seed=42,write-err=rand:20,sync-err=rand:7,kill=rand:5,reset=rand:30,short-write=3,unavail=rand:4x2,delay=rand:9:5ms"
	a, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule() != b.Schedule() {
		t.Fatalf("same spec resolved two schedules:\n a: %s\n b: %s", a.Schedule(), b.Schedule())
	}
	for i := 0; i < 40; i++ {
		if ga, gb := a.OnWrite(), b.OnWrite(); ga != gb {
			t.Fatalf("write %d: %v vs %v", i+1, ga, gb)
		}
		if ga, gb := a.OnSync(), b.OnSync(); ga != gb {
			t.Fatalf("sync %d: %v vs %v", i+1, ga, gb)
		}
		if ga, gb := a.OnFlush(), b.OnFlush(); ga != gb {
			t.Fatalf("flush %d: %v vs %v", i+1, ga, gb)
		}
		if ga, gb := a.OnStreamLine(), b.OnStreamLine(); ga != gb {
			t.Fatalf("line %d: %v vs %v", i+1, ga, gb)
		}
		da, ua := a.OnRequest()
		db, ub := b.OnRequest()
		if da != db || ua != ub {
			t.Fatalf("request %d: (%v,%v) vs (%v,%v)", i+1, da, ua, db, ub)
		}
	}

	// A different seed moves the randomized triggers (with overwhelming
	// probability over this many draws).
	c := MustNew(strings.Replace(spec, "seed=42", "seed=43", 1))
	if c.Schedule() == a.Schedule() {
		t.Logf("seed 43 resolved the same schedule as 42 (possible but unlikely): %s", c.Schedule())
	}
}

// TestCountedTriggers pins the exact firing semantics of every
// directive kind.
func TestCountedTriggers(t *testing.T) {
	inj := MustNew("write-err=2,short-write=4,sync-err=1,kill=3,reset=2,delay=2:7ms,unavail=3x2")

	wantWrites := []WriteAction{WriteOK, WriteFail, WriteOK, WriteShort, WriteOK}
	for i, want := range wantWrites {
		if got := inj.OnWrite(); got != want {
			t.Errorf("write %d: got %v, want %v", i+1, got, want)
		}
	}
	if !inj.OnSync() || inj.OnSync() {
		t.Error("sync-err=1 must fail exactly the first fsync")
	}
	if inj.OnFlush() || inj.OnFlush() || !inj.OnFlush() || inj.OnFlush() {
		t.Error("kill=3 must fire exactly on the third flush")
	}
	if inj.OnStreamLine() || !inj.OnStreamLine() || inj.OnStreamLine() {
		t.Error("reset=2 must fire exactly on the second line")
	}
	wantReq := []struct {
		delay   time.Duration
		unavail bool
	}{{0, false}, {7 * time.Millisecond, false}, {0, true}, {0, true}, {0, false}}
	for i, want := range wantReq {
		d, u := inj.OnRequest()
		if d != want.delay || u != want.unavail {
			t.Errorf("request %d: got (%v, %v), want (%v, %v)", i+1, d, u, want.delay, want.unavail)
		}
	}
}

// TestNilInjectorInert: every hook on a nil injector is a no-fault
// no-op, so call sites never branch on nil.
func TestNilInjectorInert(t *testing.T) {
	var inj *Injector
	if inj.OnWrite() != WriteOK || inj.OnSync() || inj.OnFlush() || inj.OnStreamLine() {
		t.Fatal("nil injector fired a fault")
	}
	if d, u := inj.OnRequest(); d != 0 || u {
		t.Fatal("nil injector injected a request fault")
	}
	if inj.Schedule() != "none" {
		t.Fatalf("nil schedule %q", inj.Schedule())
	}
}

// TestSpecErrors rejects malformed directives loudly — a chaos run
// with a typo'd spec must not silently run fault-free.
func TestSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1", "write-err", "write-err=0", "write-err=-2", "write-err=x",
		"write-err=rand:0", "seed=x", "delay=3", "delay=3:never", "unavail=3",
		"unavail=3x0", "kill=rand:",
	} {
		if _, err := New(spec); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		}
	}
	// The empty spec is a valid, fault-free plan.
	if inj, err := New(""); err != nil || inj.Schedule() != "none" {
		t.Errorf("empty spec: inj=%v err=%v", inj.Schedule(), err)
	}
}

// memFile is an in-memory WriteSyncer for the File wrapper tests.
type memFile struct {
	bytes.Buffer
	syncs  int
	closed bool
}

func (m *memFile) Sync() error  { m.syncs++; return nil }
func (m *memFile) Close() error { m.closed = true; return nil }

// TestFileWrapper: injected failures surface as the package sentinels,
// and a short write persists exactly half its buffer — the torn tail.
func TestFileWrapper(t *testing.T) {
	mem := &memFile{}
	f := WrapFile(mem, MustNew("write-err=2,short-write=3,sync-err=2"))

	if n, err := f.Write([]byte("aaaa")); n != 4 || err != nil {
		t.Fatalf("write 1: n=%d err=%v", n, err)
	}
	if n, err := f.Write([]byte("bbbb")); n != 0 || !errors.Is(err, ErrWrite) {
		t.Fatalf("write 2: n=%d err=%v, want injected failure", n, err)
	}
	if n, err := f.Write([]byte("cccc")); n != 2 || !errors.Is(err, ErrWrite) {
		t.Fatalf("write 3: n=%d err=%v, want short write of 2", n, err)
	}
	if got := mem.String(); got != "aaaacc" {
		t.Fatalf("backing file holds %q, want %q (torn tail persisted)", got, "aaaacc")
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrSync) {
		t.Fatalf("sync 2: %v, want injected fsync failure", err)
	}
	if err := f.Close(); err != nil || !mem.closed {
		t.Fatalf("close: err=%v closed=%v", err, mem.closed)
	}
	if WrapFile(mem, nil) != WriteSyncer(mem) {
		t.Fatal("nil injector must return the file unwrapped")
	}
}
