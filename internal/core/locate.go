package core

import (
	"fmt"
	"math/big"

	"meetpoly/internal/labels"
	"meetpoly/internal/trajectory"
)

// Location identifies where a given edge traversal falls within the
// master schedule of Algorithm RV-asynch-poly: which piece, which bit's
// segment, which component, and the offset inside that component. It is
// the analytical tool behind statements like "agent a is inside the last
// atom of its j-th piece" that the synchronization lemmas reason about.
type Location struct {
	Component Component
	// AtomIndex is 0 or 1 for segment atoms, 0 otherwise.
	AtomIndex int
	// Offset is the traversal index within the component (0-based).
	Offset *big.Int
	// ComponentLen is the component's exact length.
	ComponentLen *big.Int
}

// String renders the location compactly.
func (l Location) String() string {
	switch l.Component.Kind {
	case CompAtomA, CompAtomB:
		return fmt.Sprintf("piece %d, segment S_%d, atom %d of %s(%d), move %v/%v",
			l.Component.K, l.Component.I, l.AtomIndex+1,
			l.Component.Kind, l.Component.Arg, l.Offset, l.ComponentLen)
	case CompK:
		return fmt.Sprintf("piece %d, border K_{%d,%d}(%d), move %v/%v",
			l.Component.K, l.Component.I, l.Component.I+1,
			l.Component.Arg, l.Offset, l.ComponentLen)
	default:
		return fmt.Sprintf("fence Ω(%d) after piece %d, move %v/%v",
			l.Component.Arg, l.Component.K, l.Offset, l.ComponentLen)
	}
}

// componentLen returns the exact length of a schedule component.
func componentLen(env *trajectory.Env, c Component) *big.Int {
	switch c.Kind {
	case CompAtomB:
		return env.LenB(c.Arg)
	case CompAtomA:
		return env.LenA(c.Arg)
	case CompK:
		return env.LenK(c.Arg)
	case CompOmega:
		return env.LenOmega(c.Arg)
	default:
		panic("core: unknown component kind " + string(c.Kind))
	}
}

// Locate maps the index-th edge traversal (0-based) of the master
// trajectory of label l to its schedule location. It walks the flattened
// component sequence subtracting exact lengths; the walk visits O(k·s)
// components to reach piece k, never materializing any trajectory.
func Locate(l labels.Label, env *trajectory.Env, index *big.Int) Location {
	if index.Sign() < 0 {
		panic("core: Locate needs a non-negative index")
	}
	bits := l.Modified()
	s := len(bits)
	rem := new(big.Int).Set(index)
	for k := 1; ; k++ {
		m := min(k, s)
		for i := 1; i <= m; i++ {
			var atom Component
			if bits[i-1] == 1 {
				atom = Component{CompAtomB, k, i, 2 * k}
			} else {
				atom = Component{CompAtomA, k, i, 4 * k}
			}
			alen := componentLen(env, atom)
			for a := 0; a < 2; a++ {
				if rem.Cmp(alen) < 0 {
					return Location{Component: atom, AtomIndex: a,
						Offset: rem, ComponentLen: alen}
				}
				rem.Sub(rem, alen)
			}
			var sep Component
			if i < m {
				sep = Component{CompK, k, i, k}
			} else {
				sep = Component{CompOmega, k, i, k}
			}
			slen := componentLen(env, sep)
			if rem.Cmp(slen) < 0 {
				return Location{Component: sep, Offset: rem, ComponentLen: slen}
			}
			rem.Sub(rem, slen)
		}
	}
}

// PieceLen returns the exact length of piece k (segments and borders,
// excluding the trailing fence) for the given label.
func PieceLen(l labels.Label, env *trajectory.Env, k int) *big.Int {
	bits := l.Modified()
	m := min(k, len(bits))
	total := new(big.Int)
	for i := 1; i <= m; i++ {
		if bits[i-1] == 1 {
			total.Add(total, new(big.Int).Lsh(env.LenB(2*k), 1))
		} else {
			total.Add(total, new(big.Int).Lsh(env.LenA(4*k), 1))
		}
		if i < m {
			total.Add(total, env.LenK(k))
		}
	}
	return total
}

// HorizonLen returns the exact number of traversals from the start of
// the schedule through the fence of piece kMax: sum of pieces plus
// fences. Tests pin it against materialized executions.
func HorizonLen(l labels.Label, env *trajectory.Env, kMax int) *big.Int {
	total := new(big.Int)
	for k := 1; k <= kMax; k++ {
		total.Add(total, PieceLen(l, env, k))
		total.Add(total, env.LenOmega(k))
	}
	return total
}
