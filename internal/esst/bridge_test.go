package esst

import (
	"math/big"
	"testing"

	"meetpoly/internal/costmodel"
	"meetpoly/internal/graph"
	"meetpoly/internal/sched"
	"meetpoly/internal/uxs"
)

func ringOrStar(n int) *graph.Graph {
	if n%2 == 0 {
		return graph.Ring(n)
	}
	return graph.Star(n)
}

func nil2() sched.Adversary { return &sched.RoundRobin{} }

// TestCostBoundMatchesCostModel: the executable bound in this package
// and the symbolic one in costmodel implement the same formula; they
// must agree exactly when fed the same P.
func TestCostBoundMatchesCostModel(t *testing.T) {
	cat := testCat(t, 6)
	model := costmodel.New(func(k int) *big.Int {
		return big.NewInt(int64(cat.P(k)))
	})
	for _, phase := range []int{3, 6, 9, 15, 24, 33} {
		got := int64(CostBound(cat, phase))
		want := model.ESSTCostBound(phase)
		if !want.IsInt64() || want.Int64() != got {
			t.Errorf("phase %d: esst.CostBound=%d, costmodel=%v", phase, got, want)
		}
	}
}

// TestTESSTDominatesMeasured: the worst-case T(ESST(n)) from the cost
// model dominates every measured ESST cost from table E5's instances.
func TestTESSTDominatesMeasured(t *testing.T) {
	cat := uxs.NewVerified(uxs.DefaultFamily(8), 1)
	model := costmodel.New(func(k int) *big.Int {
		return big.NewInt(int64(cat.P(k)))
	})
	for _, tc := range []struct {
		n        int
		explorer int
		token    int
	}{{4, 1, 3}, {6, 1, 0}} {
		g := ringOrStar(tc.n)
		if !cat.Covers(g) {
			cat.Extend(g)
		}
		res, err := Explore(g, tc.explorer, tc.token, cat, nil2(), 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatal("ESST did not terminate")
		}
		bound := model.TESST(g.N())
		if big.NewInt(int64(res.Cost)).Cmp(bound) > 0 {
			t.Errorf("n=%d: measured %d exceeds T(ESST)=%v", g.N(), res.Cost, bound)
		}
	}
}
