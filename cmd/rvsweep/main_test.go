package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meetpoly"
)

// cellLine renders one NDJSON stream record for a seed, the way
// `rvsweep -stream` emits it.
func cellLine(t *testing.T, seed string, failed bool) string {
	t.Helper()
	cr := meetpoly.SweepCellResult{
		Cell:    meetpoly.SweepCell{ID: "cell-" + seed, Seed: seed},
		Outcome: meetpoly.SweepOutcome{Met: true, Cost: 3},
	}
	if failed {
		cr.Failures = []meetpoly.SweepOracleFailure{{Oracle: "pi-bound", Err: "over bound"}}
	}
	out, err := json.Marshal(cr)
	if err != nil {
		t.Fatal(err)
	}
	return string(out) + "\n"
}

// reportDoc renders an aggregate -json report artifact carrying the
// given failing seeds.
func reportDoc(t *testing.T, failSeeds ...string) string {
	t.Helper()
	rep := meetpoly.SweepReport{Cells: 4}
	for _, s := range failSeeds {
		rep.Failures = append(rep.Failures, meetpoly.SweepCellResult{
			Cell:     meetpoly.SweepCell{ID: "cell-" + s, Seed: s},
			Failures: []meetpoly.SweepOracleFailure{{Oracle: "pi-bound", Err: "over bound"}},
		})
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestScanRecordMalformedInputMatrix pins the -against ingestion
// contract over well-formed and malformed artifacts alike: trailing
// blank lines are benign, truncated or garbage records and duplicate
// seeds are errMalformedRecord (the exit-2 class), and lookups in clean
// artifacts behave as documented.
func TestScanRecordMalformedInputMatrix(t *testing.T) {
	const seed = "camp#3"
	other := cellLine(t, "camp#1", false)
	target := cellLine(t, seed, false)
	cases := map[string]struct {
		input      string
		found      bool
		fromReport bool
		malformed  bool
	}{
		"stream has seed":            {input: other + target, found: true},
		"stream lacks seed":          {input: other + cellLine(t, "camp#9", true)},
		"trailing newline":           {input: other + target + "\n", found: true},
		"trailing blank lines":       {input: target + "\n\n  \n", found: true},
		"empty file":                 {input: "", malformed: true},
		"whitespace-only file":       {input: "\n \n", malformed: true},
		"leading garbage":            {input: "not-json\n" + target, malformed: true},
		"garbage between records":    {input: other + "not-json\n" + target, malformed: true},
		"truncated final record":     {input: other + target[:len(target)/2], malformed: true},
		"truncated after seed found": {input: target + other[:20], malformed: true},
		"duplicate seed":             {input: target + other + target, malformed: true},
		"array not stream":           {input: "[1, 2, 3]", malformed: true},
		"report has seed":            {input: reportDoc(t, "camp#0", seed), found: true, fromReport: true},
		"report lacks seed":          {input: reportDoc(t, "camp#0"), fromReport: true},
		"report duplicate seed":      {input: reportDoc(t, seed, seed), fromReport: true, malformed: true},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			rec, found, fromReport, err := scanRecord(strings.NewReader(tc.input), "test-record", seed)
			if tc.malformed {
				if !errors.Is(err, errMalformedRecord) {
					t.Fatalf("want errMalformedRecord, got err=%v (found=%v)", err, found)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if found != tc.found || fromReport != tc.fromReport {
				t.Fatalf("found=%v fromReport=%v, want %v/%v", found, fromReport, tc.found, tc.fromReport)
			}
			if found && rec.Cell.Seed != seed {
				t.Fatalf("found record carries seed %q, want %q", rec.Cell.Seed, seed)
			}
		})
	}
}

// TestCheckAgainstExitCodes pins the exit classification: a malformed
// artifact exits 2 (input problem), a seed missing from a stream record
// exits 1, and a matching record exits nowhere and reports no
// divergence.
func TestCheckAgainstExitCodes(t *testing.T) {
	const seed = "camp#3"
	cr := meetpoly.SweepCellResult{
		Cell:    meetpoly.SweepCell{ID: "cell-" + seed, Seed: seed},
		Outcome: meetpoly.SweepOutcome{Met: true, Cost: 3},
	}
	write := func(t *testing.T, content string) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "record")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// run drives checkAgainst with an exit func that unwinds like
	// os.Exit (the real one never returns).
	type exited struct{ code int }
	run := func(t *testing.T, path string) (code int, diverged bool) {
		t.Helper()
		code = -1
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(exited); ok {
					code = e.code
					return
				}
				panic(r)
			}
		}()
		diverged = checkAgainst(path, cr, func(c int) { panic(exited{code: c}) })
		return code, diverged
	}

	if code, _ := run(t, write(t, cellLine(t, seed, false)+cellLine(t, seed, false))); code != 2 {
		t.Errorf("duplicate seed: exit %d, want 2", code)
	}
	if code, _ := run(t, write(t, "not-json\n")); code != 2 {
		t.Errorf("garbage record: exit %d, want 2", code)
	}
	if code, _ := run(t, write(t, cellLine(t, "camp#1", false))); code != 1 {
		t.Errorf("seed missing from stream: exit %d, want 1", code)
	}
	code, diverged := run(t, write(t, cellLine(t, seed, false)))
	if code != -1 || diverged {
		t.Errorf("matching record: exit %d diverged %v, want no exit and no divergence", code, diverged)
	}
}
