// Package telemetry is the repo's dependency-free observability core:
// lock-free counters and gauges, fixed-bucket power-of-two histograms,
// a named-metric registry with immutable snapshots, and a Prometheus
// text-exposition encoder. Every layer of the system records into it —
// engine (cache traffic, per-cell wall time, batch occupancy, oracle
// verdicts), serve (request latencies, checkpoint flush/fsync cost),
// coord (lease lifecycle) and client (retry classes, healed gaps) —
// and rvserved/rvcoord expose it at GET /metrics.
//
// Two invariants shape the design (DESIGN.md §7):
//
//   - The record path allocates nothing and takes a few nanoseconds:
//     Counter.Inc/Add, Gauge.Set/Add and Histogram.Observe are single
//     (or for histograms, three) uncontended atomic adds, annotated
//     //rvlint:hotpath so the hotalloc analyzer mechanically forbids
//     any allocation from creeping in. Scheduler-grade hot loops may
//     therefore call them directly.
//
//   - Telemetry is invisible to results. Nothing recorded here ever
//     feeds a SweepReport, a seed string or any other deterministic
//     output; the engine's telemetry-on-vs-off differential test pins
//     byte-identical reports. That separation is also why this package
//     may read the wall clock (Now, Since) while the result-producing
//     packages are forbidden to by the determinism analyzer: a timing
//     observed here can only ever land in a metric or a trace span,
//     never in a result.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//rvlint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//rvlint:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready
// to use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
//
//rvlint:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
//
//rvlint:hotpath
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the histogram's fixed bucket count: bucket i counts
// observations v with bits.Len64(v) == i, i.e. bucket 0 holds v == 0
// and bucket i >= 1 holds v in [2^(i-1), 2^i - 1]. 65 slots cover the
// whole uint64 range, so Observe never branches on bounds.
const histBuckets = 65

// Histogram is a fixed-bucket histogram over uint64 observations with
// power-of-two bucket boundaries. The zero value is ready to use; all
// methods are safe for concurrent use. Recording is three uncontended
// atomic adds and allocates nothing, so hot paths may observe values
// (typically nanosecond durations via ObserveSince) inline.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
//
//rvlint:hotpath
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveSince records the nanoseconds elapsed since start, a
// timestamp previously obtained from Now.
//
//rvlint:hotpath
func (h *Histogram) ObserveSince(startNs int64) {
	d := Now() - startNs
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// processStart anchors the package's monotonic clock: Now reports
// nanoseconds since process start, so spans and durations derived from
// it are immune to wall-clock adjustments.
var processStart = time.Now()

// Now returns the telemetry clock: monotonic nanoseconds since process
// start. Pair it with Histogram.ObserveSince or Since to time a span.
// Result-producing packages use this instead of time.Now — the
// determinism analyzer bans the wall clock there precisely so that
// timings can only flow into telemetry, never into results.
func Now() int64 { return int64(time.Since(processStart)) }

// Since returns the nanoseconds elapsed since a Now timestamp.
func Since(startNs int64) int64 { return Now() - startNs }

// BucketBound returns the inclusive upper bound of histogram bucket i
// (0 for bucket 0, 2^i - 1 for i >= 1); the last bucket's bound is
// MaxUint64, rendered as +Inf in the exposition.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}
