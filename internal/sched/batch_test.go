package sched

import (
	"context"
	"reflect"
	"testing"

	"meetpoly/internal/graph"
)

// cycle is an endless deterministic stepper walking a repeating port
// pattern (mod degree): cheap per-lane trajectory variety for the
// batch/runner differential tests.
type cycle struct {
	seq []int
	i   int
}

func (c *cycle) Next(deg, entry int) (int, bool) {
	if deg == 0 {
		return 0, false
	}
	p := c.seq[c.i%len(c.seq)] % deg
	c.i++
	return p, true
}

// batchCase is one cell of the differential matrix: a start pair, two
// trajectory patterns, an adversary, and rendezvous-or-not semantics.
type batchCase struct {
	starts [2]int
	seqA   []int
	seqB   []int
	adv    string
	budget int
	stop   bool
}

// mkAdversary builds a fresh adversary instance per run: every builtin
// strategy carries per-run state, so instances must never be shared
// between the reference run and the batch lane.
func mkAdversary(t *testing.T, name string) Adversary {
	t.Helper()
	mk, ok := Strategies(2)[name]
	if !ok {
		t.Fatalf("unknown adversary %q", name)
	}
	return mk()
}

// runReference executes one case on the single-cell Runner.
func runReference(t *testing.T, g *graph.Graph, c batchCase) Summary {
	t.Helper()
	r, err := NewRunner(Config{
		Graph:  g,
		Starts: []int{c.starts[0], c.starts[1]},
		Agents: []Agent{
			&Walker{Stepper: &cycle{seq: c.seqA}, StopAtMeeting: c.stop},
			&Walker{Stepper: &cycle{seq: c.seqB}, StopAtMeeting: c.stop},
		},
		InitiallyAwake:     []int{0, 1},
		StopAtFirstMeeting: c.stop,
		MaxSteps:           c.budget,
	}, mkAdversary(t, c.adv))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	return r.Run()
}

// TestBatchMatchesRunner is the scheduler-level equivalence gate: every
// lane of a shared-graph batch must produce a Summary deep-equal to the
// single-cell reference core run on the same cell, across every builtin
// adversary, several start pairs and trajectories, and both stopping
// modes.
func TestBatchMatchesRunner(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"ring-7":   graph.Ring(7),
		"path-5":   graph.Path(5),
		"clique-4": graph.Complete(4),
	}
	advs := []string{"round-robin", "biased", "late-wake", "random", "avoider"}
	for gname, g := range graphs {
		t.Run(gname, func(t *testing.T) {
			var cases []batchCase
			pairs := [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 0}}
			seqs := [][]int{{0}, {1}, {0, 1}, {1, 0, 0}, {2, 1}}
			for i, p := range pairs {
				for _, adv := range advs {
					cases = append(cases, batchCase{
						starts: p,
						seqA:   seqs[i%len(seqs)],
						seqB:   seqs[(i+2)%len(seqs)],
						adv:    adv,
						budget: 200 + 37*i,
						stop:   i%2 == 0,
					})
				}
			}
			b, err := NewBatchRunner(context.Background(), g)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			for _, c := range cases {
				_, err := b.AddLane(LaneConfig{
					Starts: c.starts,
					Agents: [2]Stepper{
						&Walker{Stepper: &cycle{seq: c.seqA}, StopAtMeeting: c.stop},
						&Walker{Stepper: &cycle{seq: c.seqB}, StopAtMeeting: c.stop},
					},
					Adversary:          mkAdversary(t, c.adv),
					MaxSteps:           c.budget,
					StopAtFirstMeeting: c.stop,
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			b.Run()
			for l, c := range cases {
				want := runReference(t, g, c)
				got := b.Summary(l)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("lane %d (%+v) diverges from reference core:\n got %+v\nwant %+v", l, c, got, want)
				}
			}
		})
	}
}

// TestBatchLaneValidation checks that AddLane rejects exactly what
// NewRunner would reject for the corresponding single cell.
func TestBatchLaneValidation(t *testing.T) {
	g := graph.Ring(5)
	w := func() [2]Stepper {
		return [2]Stepper{&Walker{Stepper: script(0)}, &Walker{Stepper: script(0)}}
	}
	ok := LaneConfig{Starts: [2]int{0, 2}, Agents: w(), Adversary: &RoundRobin{}, MaxSteps: 10}
	cases := map[string]func(LaneConfig) LaneConfig{
		"start out of range": func(c LaneConfig) LaneConfig { c.Starts[1] = 5; return c },
		"negative start":     func(c LaneConfig) LaneConfig { c.Starts[0] = -1; return c },
		"duplicate starts":   func(c LaneConfig) LaneConfig { c.Starts = [2]int{3, 3}; return c },
		"nil agent":          func(c LaneConfig) LaneConfig { c.Agents[0] = nil; return c },
		"nil adversary":      func(c LaneConfig) LaneConfig { c.Adversary = nil; return c },
		"zero budget":        func(c LaneConfig) LaneConfig { c.MaxSteps = 0; return c },
	}
	b, err := NewBatchRunner(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for name, mut := range cases {
		if _, err := b.AddLane(mut(ok)); err == nil {
			t.Errorf("%s: AddLane accepted an invalid lane", name)
		}
	}
	if _, err := b.AddLane(ok); err != nil {
		t.Fatalf("valid lane rejected: %v", err)
	}
	b.Run()
	if _, err := b.AddLane(ok); err == nil {
		t.Error("AddLane after Run accepted a lane")
	}
}

// TestBatchCancellationLatency drives batches under the avoider and
// late-wake adversaries (the satellite-3 starvation suspects) with a
// mid-run cancellation and asserts the bound the batch poll counter
// guarantees: at most batchCtxPollStride further events across the
// whole batch after the context is canceled, and every unfinished lane
// reporting Canceled.
func TestBatchCancellationLatency(t *testing.T) {
	for _, advName := range []string{"avoider", "late-wake"} {
		t.Run(advName, func(t *testing.T) {
			g := graph.Ring(8)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			b, err := NewBatchRunner(ctx, g)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			const lanes = 6
			const cancelAt = 100
			for l := 0; l < lanes; l++ {
				adv := mkAdversary(t, advName)
				if l == 0 {
					// The canceling wrapper rides lane 0's adversary; the
					// other lanes see the cancellation only via the poll.
					adv = &cancelAfter{inner: adv, n: cancelAt, cancel: cancel}
				}
				if _, err := b.AddLane(LaneConfig{
					Starts:    [2]int{0, 4},
					Agents:    [2]Stepper{&Walker{Stepper: endless{}}, &Walker{Stepper: endless{}}},
					Adversary: adv,
					MaxSteps:  1 << 30,
				}); err != nil {
					t.Fatal(err)
				}
			}
			b.Run()
			total := 0
			for l := 0; l < lanes; l++ {
				sum := b.Summary(l)
				if !sum.Canceled {
					t.Errorf("lane %d not canceled: %+v", l, sum)
				}
				total += sum.Steps
			}
			// Lane 0 cancels on its cancelAt-th event; every lane had run
			// at most as many events at that point, and the poll bounds
			// the overshoot across the whole batch.
			if maxTotal := lanes*cancelAt + batchCtxPollStride; total > maxTotal {
				t.Errorf("batch ran %d events total, want <= %d after cancellation", total, maxTotal)
			}
		})
	}
}

// TestRunnerCancellationLatency is the single-cell side of the
// satellite-3 audit: under the avoider and late-wake adversaries a
// mid-run cancellation must land within ctxPollStride events, because
// steps advances on every applied event — there is no event mix that
// defers the stride poll.
func TestRunnerCancellationLatency(t *testing.T) {
	for _, advName := range []string{"avoider", "late-wake"} {
		t.Run(advName, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const cancelAt = 100
			r, err := NewRunner(Config{
				Graph:          graph.Ring(8),
				Starts:         []int{0, 4},
				Agents:         []Agent{&Walker{Stepper: endless{}}, &Walker{Stepper: endless{}}},
				InitiallyAwake: []int{0, 1},
				MaxSteps:       1 << 30,
				Context:        ctx,
			}, &cancelAfter{inner: mkAdversary(t, advName), n: cancelAt, cancel: cancel})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			sum := r.Run()
			if !sum.Canceled {
				t.Fatalf("run not canceled: %+v", sum)
			}
			if sum.Steps > cancelAt+ctxPollStride {
				t.Errorf("run took %d steps, want <= %d after cancellation at %d",
					sum.Steps, cancelAt+ctxPollStride, cancelAt)
			}
		})
	}
}

// TestBatchPreCanceledContext: a context canceled before Run retires
// every lane as Canceled without running any events.
func TestBatchPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := NewBatchRunner(ctx, graph.Ring(5))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 3; i++ {
		if _, err := b.AddLane(LaneConfig{
			Starts:    [2]int{0, 2},
			Agents:    [2]Stepper{&Walker{Stepper: endless{}}, &Walker{Stepper: endless{}}},
			Adversary: &RoundRobin{},
			MaxSteps:  1000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	b.Run()
	for l := 0; l < 3; l++ {
		sum := b.Summary(l)
		if !sum.Canceled || sum.Steps != 0 {
			t.Errorf("lane %d: want canceled at 0 steps, got %+v", l, sum)
		}
	}
}

// TestBatchEmptyRun: running an empty batch is a no-op, and Close is
// idempotent.
func TestBatchEmptyRun(t *testing.T) {
	b, err := NewBatchRunner(context.Background(), graph.Ring(4))
	if err != nil {
		t.Fatal(err)
	}
	b.Run()
	b.Close()
	b.Close()
}

// TestBatchScratchReuse runs several batch generations and checks the
// summaries stay correct when the pooled scratch is recycled between
// differently-sized batches — the aliasing bug class the full-capacity
// clears in Close defend against.
func TestBatchScratchReuse(t *testing.T) {
	g := graph.Ring(6)
	for gen, lanes := range []int{8, 3, 5} {
		b, err := NewBatchRunner(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < lanes; l++ {
			if _, err := b.AddLane(LaneConfig{
				Starts:             [2]int{0, 3},
				Agents:             [2]Stepper{&Walker{Stepper: script(0, 0, 0), StopAtMeeting: true}, &Walker{Stepper: script(1, 1, 1), StopAtMeeting: true}},
				Adversary:          &RoundRobin{},
				MaxSteps:           100,
				StopAtFirstMeeting: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		b.Run()
		for l := 0; l < lanes; l++ {
			sum := b.Summary(l)
			if sum.FirstMeeting == nil {
				t.Fatalf("gen %d lane %d: expected a meeting, got %+v", gen, l, sum)
			}
		}
		b.Close()
	}
}
