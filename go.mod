module meetpoly

go 1.24

// rvlint's analyzers build on go/analysis. The dependency is pinned to
// the exact snapshot vendored under third_party/ (the version the Go
// 1.24 toolchain itself ships), so analyzer behavior is reproducible
// and offline builds need no module proxy.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e

replace golang.org/x/tools => ./third_party/golang.org/x/tools
