// Command rvserved is the sweep service: a long-lived HTTP daemon that
// accepts campaign SweepSpec JSON, executes this instance's shard of
// the deterministic cell index-range over a shared engine, streams cell
// results as NDJSON while they complete, and checkpoints completed
// index ranges to disk so a crashed or restarted shard resumes without
// recomputing a single cell. A campaign resumed across any number of
// crashes produces the byte-identical report an uninterrupted
// single-process `rvsweep -json` run produces.
//
// Endpoints (see internal/serve):
//
//	POST /v1/sweep        stream the shard's cell results as NDJSON
//	POST /v1/sweep/report run the shard, respond with the report JSON
//	GET  /healthz         200 ok; 503 once draining
//	GET  /v1/stats        service counters and engine cache stats
//
// Horizontal scale is the -shard flag: rvserved -shard 1/3 owns the
// middle third of every campaign's index range, with its own
// checkpoint subdirectory; the shards' streams fold into one report
// through the order-independent aggregator.
//
// SIGTERM/SIGINT drain gracefully: new sweeps are refused (503),
// in-flight runs are canceled — their checkpoints flush everything
// completed so far — and the process exits once they finish or the
// drain timeout expires.
//
// Exit codes: 0 clean shutdown; 1 runtime error; 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"meetpoly"
	"meetpoly/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8747", "address to listen on")
		checkpoints = flag.String("checkpoints", "", "checkpoint root directory (empty disables resume)")
		shard       = flag.String("shard", "0/1", "this instance's shard as i/of (e.g. 1/3 = the middle third of every campaign)")
		maxN        = flag.Int("maxn", 6, "size ceiling of the engine's verified catalog family")
		seed        = flag.Int64("seed", 1, "seed of the engine's verified catalog")
		parallelism = flag.Int("parallelism", 0, "worker pool size (0 = GOMAXPROCS)")
		flushEvery  = flag.Int("flush-every", serve.DefaultFlushEvery, "checkpoint flush interval in completed cells")
		maxCells    = flag.Int("max-cells", 0, "reject campaigns expanding past this many cells (0 = unlimited)")
		maxTenant   = flag.Int("max-tenant-sweeps", serve.DefaultMaxTenantSweeps, "max in-flight sweeps per tenant (X-Tenant header)")
		timeout     = flag.Duration("timeout", 0, "per-request sweep budget (0 = unbounded; requests may tighten with ?budget_ms=)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight sweeps on shutdown")
	)
	flag.Parse()
	shardIdx, shardOf, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvserved:", err)
		flag.Usage()
		os.Exit(2)
	}

	opts := []meetpoly.Option{meetpoly.WithMaxN(*maxN), meetpoly.WithSeed(*seed)}
	if *parallelism > 0 {
		opts = append(opts, meetpoly.WithParallelism(*parallelism))
	}
	svc := serve.New(serve.Config{
		Engine:          meetpoly.NewEngine(opts...),
		CheckpointRoot:  *checkpoints,
		Shard:           shardIdx,
		Of:              shardOf,
		FlushEvery:      *flushEvery,
		MaxCells:        *maxCells,
		MaxTenantSweeps: *maxTenant,
		RequestTimeout:  *timeout,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rvserved: shard %d/%d listening on %s\n", shardIdx, shardOf, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "rvserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	// Drain before Shutdown: refuse new sweeps, cancel the in-flight
	// ones (their checkpoints flush, so a restart resumes, not
	// recomputes), then close the listener and idle connections.
	fmt.Fprintln(os.Stderr, "rvserved: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	code := 0
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rvserved:", err)
		code = 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "rvserved: shutdown:", err)
		code = 1
	}
	os.Exit(code)
}

// parseShard parses the -shard flag's "i/of" form: of >= 1 and
// 0 <= i < of.
func parseShard(s string) (i, of int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard must be i/of, got %q", s)
	}
	i, err1 := strconv.Atoi(a)
	of, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || of < 1 || i < 0 || i >= of {
		return 0, 0, fmt.Errorf("-shard must be i/of with 0 <= i < of, got %q", s)
	}
	return i, of, nil
}
