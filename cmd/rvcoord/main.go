// Command rvcoord is the campaign coordinator: the fault-tolerance
// layer that turns a fleet of rvserved workers into one reliable
// sweep. It loads a single campaign spec, owns the unfinished cell
// index set, and hands out bounded, heartbeat-renewed shard leases
// over HTTP. A worker that dies mid-lease simply stops heartbeating:
// the lease expires and its cells are re-granted to the next worker.
// Results fold through the order-independent aggregator (duplicates
// from reassigned leases are no-ops), and once every cell is done,
// GET /v1/report serves the exact bytes a single-process
// `rvsweep -json` run of the same spec prints.
//
// Endpoints (see internal/serve/coord):
//
//	GET  /v1/spec       the campaign spec workers must run
//	POST /v1/lease      acquire work (?worker=name)
//	POST /v1/heartbeat  keep a lease alive (?lease=ID)
//	POST /v1/complete   upload a lease's results as NDJSON (?lease=ID)
//	GET  /v1/status     progress counters
//	GET  /v1/report     final report; 409 + Retry-After until complete
//
// Start workers with `rvserved -coordinator http://host:8748`; poll
// /v1/report until it answers 200.
//
// Exit codes: 0 clean shutdown; 1 runtime error; 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"meetpoly"
	"meetpoly/internal/serve/coord"
)

func main() {
	var (
		addr       = flag.String("addr", ":8748", "address to listen on")
		specPath   = flag.String("spec", "", "path to the campaign sweep spec JSON (required)")
		leaseCells = flag.Int("lease-cells", coord.DefaultLeaseCells, "max cells per lease")
		leaseTTL   = flag.Duration("lease-ttl", coord.DefaultLeaseTTL, "lease lifetime without a heartbeat")
		retryAfter = flag.Duration("retry-after", coord.DefaultRetryAfter, "Retry-After hint for waiting workers and premature report fetches")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "rvcoord: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	spec, err := meetpoly.LoadSweepSpecFile(*specPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvcoord:", err)
		os.Exit(1)
	}
	c, err := coord.New(coord.Config{
		Spec:       spec,
		LeaseCells: *leaseCells,
		LeaseTTL:   *leaseTTL,
		RetryAfter: *retryAfter,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvcoord:", err)
		os.Exit(1)
	}

	total, _ := meetpoly.CountSweep(spec)
	httpSrv := &http.Server{Addr: *addr, Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rvcoord: campaign %q (%d cells) listening on %s\n", spec.Name, total, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "rvcoord:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rvcoord: shutdown:", err)
		os.Exit(1)
	}
}
