package labels

import (
	"testing"
	"testing/quick"
)

func TestBits(t *testing.T) {
	cases := []struct {
		l    Label
		want []byte
	}{
		{1, []byte{1}},
		{2, []byte{1, 0}},
		{5, []byte{1, 0, 1}},
		{10, []byte{1, 0, 1, 0}},
		{255, []byte{1, 1, 1, 1, 1, 1, 1, 1}},
	}
	for _, tc := range cases {
		got := tc.l.Bits()
		if len(got) != len(tc.want) {
			t.Errorf("%v.Bits() = %v, want %v", tc.l, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%v.Bits() = %v, want %v", tc.l, got, tc.want)
				break
			}
		}
	}
}

func TestLen(t *testing.T) {
	cases := map[Label]int{1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1023: 10, 1024: 11}
	for l, want := range cases {
		if got := l.Len(); got != want {
			t.Errorf("Len(%d) = %d, want %d", l, got, want)
		}
	}
}

func TestModified(t *testing.T) {
	// L=5 -> 101 -> 11 00 11 01
	got := Label(5).Modified()
	want := []byte{1, 1, 0, 0, 1, 1, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("Modified(5) = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Modified(5) = %v, want %v", got, want)
		}
	}
}

func TestModifiedLen(t *testing.T) {
	for _, l := range []Label{1, 2, 3, 17, 12345} {
		if got, want := l.ModifiedLen(), len(l.Modified()); got != want {
			t.Errorf("ModifiedLen(%d) = %d, want %d", l, got, want)
		}
	}
}

func TestZeroLabelPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Bits": func() { Label(0).Bits() },
		"Len":  func() { Label(0).Len() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(0): expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestPrefixFreeProperty is the core requirement from §3.1: for any
// distinct x, y the sequence M(x) is never a prefix of M(y).
func TestPrefixFreeProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x := Label(a%100000 + 1)
		y := Label(b%100000 + 1)
		if x == y {
			return true
		}
		mx, my := x.Modified(), y.Modified()
		return !IsPrefix(mx, my) && !IsPrefix(my, mx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRawBinaryNotPrefixFree documents why the transformation is
// load-bearing: raw binary labels are not prefix-free (1 is a prefix of
// 10), so symmetry breaking by first differing bit would fail.
func TestRawBinaryNotPrefixFree(t *testing.T) {
	if !IsPrefix(Label(1).Bits(), Label(2).Bits()) {
		t.Error("expected 1 to be a bit-prefix of 2; the M(x) transform exists to fix this")
	}
}

func TestFirstDiffInsideBothModifiedLabels(t *testing.T) {
	f := func(a, b uint16) bool {
		x := Label(a) + 1
		y := Label(b) + 1
		if x == y {
			return true
		}
		mx, my := x.Modified(), y.Modified()
		d := FirstDiff(mx, my)
		// Strictly inside both: the paper needs an index lambda with
		// 1 < lambda <= l where the bits differ.
		return d < len(mx) && d < len(my) && mx[d] != my[d] && d >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFirstDiffIdentical(t *testing.T) {
	m := Label(9).Modified()
	if got := FirstDiff(m, m); got != len(m) {
		t.Errorf("FirstDiff(m, m) = %d, want %d", got, len(m))
	}
}

func TestString(t *testing.T) {
	if Label(42).String() != "L42" {
		t.Errorf("String() = %q", Label(42).String())
	}
}
