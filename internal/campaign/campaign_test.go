package campaign

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"meetpoly/internal/costmodel"
)

func testSpec() Spec {
	return Spec{
		Name: "unit",
		Seed: "unit-seed",
		Graphs: []GraphAxis{
			{Kind: "path", Sizes: []int{3, 4}},
			{Kind: "ring", Sizes: []int{4}},
			{Kind: "grid", Rows: 2, Cols: 3},
		},
		StartPairs:  2,
		LabelPairs:  2,
		Adversaries: []string{"", "avoider", "random"},
		Budget:      1000,
		Moves:       100,
	}
}

func TestExpandDeterministic(t *testing.T) {
	a, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion is not deterministic")
	}
}

func TestExpandCrossProduct(t *testing.T) {
	cells, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// 4 graph cells; per graph cell: rendezvous/baseline/sgl are
	// 2 starts x 2 labels x 3 adversaries = 12, esst is 2 x 3 = 6,
	// certify is 2 x 2 x 1 = 4.
	want := 4 * (3*12 + 6 + 4)
	if len(cells) != want {
		t.Fatalf("expanded %d cells, want %d", len(cells), want)
	}
	counts := make(map[string]int)
	for i, c := range cells {
		counts[c.Kind]++
		if c.Index != i {
			t.Fatalf("cell %d carries index %d", i, c.Index)
		}
		if c.Seed != CellSeed("unit-seed", i) {
			t.Fatalf("cell %d seed %q", i, c.Seed)
		}
		if len(c.Starts) != 2 || c.Starts[0] == c.Starts[1] {
			t.Fatalf("cell %d starts %v", i, c.Starts)
		}
		if c.Starts[0] >= c.Graph.Nodes || c.Starts[1] >= c.Graph.Nodes {
			t.Fatalf("cell %d starts %v out of range for %d nodes", i, c.Starts, c.Graph.Nodes)
		}
		switch c.Kind {
		case KindESST:
			if c.Labels != nil {
				t.Fatalf("esst cell %d has labels %v", i, c.Labels)
			}
		case KindCertify:
			if c.Adversary != "" {
				t.Fatalf("certify cell %d has adversary %q", i, c.Adversary)
			}
			if c.Moves != 100 || c.Budget != 0 {
				t.Fatalf("certify cell %d moves=%d budget=%d", i, c.Moves, c.Budget)
			}
		default:
			if len(c.Labels) != 2 || c.Labels[0] == c.Labels[1] || c.Labels[0] == 0 || c.Labels[1] == 0 {
				t.Fatalf("cell %d labels %v", i, c.Labels)
			}
			if c.Budget != 1000 {
				t.Fatalf("cell %d budget %d", i, c.Budget)
			}
		}
		if strings.HasPrefix(c.Adversary, "random") && !strings.Contains(c.Adversary, ":") {
			t.Fatalf("bare random adversary was not specialized: %q", c.Adversary)
		}
	}
	for _, k := range AllKinds() {
		if counts[k] == 0 {
			t.Fatalf("kind %s missing from expansion: %v", k, counts)
		}
	}
}

// TestInstanceSharingAcrossAxes: cells that differ only in kind, label
// pair or adversary must run the same start placement (and, per
// placement, the same labels), so grouped comparisons compare like
// against like.
func TestInstanceSharingAcrossAxes(t *testing.T) {
	cells, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	type instKey struct{ graph, sp string }
	starts := make(map[instKey][]int)
	type labelKey struct{ graph, sp, lp string }
	labels := make(map[labelKey][]uint64)
	for _, c := range cells {
		parts := strings.Split(c.ID, "/") // kind/graph/s<sp>/l<lp>/adv
		ik := instKey{parts[1], parts[2]}
		if prev, ok := starts[ik]; ok {
			if prev[0] != c.Starts[0] || prev[1] != c.Starts[1] {
				t.Fatalf("placement %v differs across axes: %v vs %v (cell %s)", ik, prev, c.Starts, c.ID)
			}
		} else {
			starts[ik] = c.Starts
		}
		if len(c.Labels) > 0 {
			lk := labelKey{parts[1], parts[2], parts[3]}
			if prev, ok := labels[lk]; ok {
				if prev[0] != c.Labels[0] || prev[1] != c.Labels[1] {
					t.Fatalf("labels %v differ across axes: %v vs %v (cell %s)", lk, prev, c.Labels, c.ID)
				}
			} else {
				labels[lk] = c.Labels
			}
		}
	}
	// The sp axis must still produce more than one placement overall
	// (independent draws, so not guaranteed per graph — but across 4
	// graph cells a total collision would mean derivation is broken).
	distinct := make(map[string]bool)
	for ik, s := range starts {
		distinct[fmt.Sprintf("%s:%v", ik.graph, s)] = true
	}
	if len(distinct) <= len(starts)/2 {
		t.Fatalf("start derivation suspiciously uniform: %v", starts)
	}
}

func TestReplayMatchesExpand(t *testing.T) {
	spec := testSpec()
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, len(cells) / 2, len(cells) - 1} {
		got, err := Replay(spec, cells[i].Seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, cells[i]) {
			t.Fatalf("replay of %q diverged:\n got %+v\nwant %+v", cells[i].Seed, got, cells[i])
		}
	}
	if _, err := Replay(spec, "other-campaign#3"); err == nil {
		t.Fatal("replay accepted a foreign master seed")
	}
	if _, err := Replay(spec, CellSeed(spec.Seed, len(cells))); err == nil {
		t.Fatal("replay accepted an out-of-range index")
	}
	if _, err := Replay(spec, "no-index"); err == nil {
		t.Fatal("replay accepted a seed without #index")
	}
}

func TestSpecValidate(t *testing.T) {
	for name, mut := range map[string]func(*Spec){
		"no seed":      func(s *Spec) { s.Seed = "" },
		"no graphs":    func(s *Spec) { s.Graphs = nil },
		"unknown kind": func(s *Spec) { s.Kinds = []string{"teleport"} },
		"no budget":    func(s *Spec) { s.Budget = 0 },
		"bad size":     func(s *Spec) { s.Graphs = []GraphAxis{{Kind: "ring", Sizes: []int{2}}} },
		"no sizes":     func(s *Spec) { s.Graphs = []GraphAxis{{Kind: "path"}} },
		"bad grid":     func(s *Spec) { s.Graphs = []GraphAxis{{Kind: "grid", Rows: 1}} },
		"over cap":     func(s *Spec) { s.Graphs = []GraphAxis{{Kind: "clique", Sizes: []int{MaxSpecNodes + 1}}} },
		"cube cap":     func(s *Spec) { s.Graphs = []GraphAxis{{Kind: "hypercube", Sizes: []int{12}}} },
		"grid cap":     func(s *Spec) { s.Graphs = []GraphAxis{{Kind: "grid", Rows: 64, Cols: 64}} },
		"lolli cap":    func(s *Spec) { s.Graphs = []GraphAxis{{Kind: "lollipop", Rows: 2000, Cols: 2000}} },
		"cell bomb":    func(s *Spec) { s.StartPairs = 1 << 30 },
		"cell bomb 2":  func(s *Spec) { s.StartPairs = 1 << 40; s.LabelPairs = 1 << 40 },
		"lolli overflow": func(s *Spec) {
			s.Graphs = []GraphAxis{{Kind: "lollipop", Rows: 1 << 62, Cols: 1 << 62}}
		},
	} {
		s := testSpec()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the spec", name)
		}
	}
	certOnly := testSpec()
	certOnly.Kinds = []string{KindCertify}
	certOnly.Budget = 0
	if err := certOnly.Validate(); err != nil {
		t.Errorf("certify-only spec should not need a budget: %v", err)
	}
}

func TestFamilyDefaultSeeds(t *testing.T) {
	spec := Spec{
		Seed:   "s",
		Kinds:  []string{KindRendezvous},
		Graphs: []GraphAxis{{Kind: "tree", Sizes: []int{5}}, {Kind: "random", Sizes: []int{4}}},
		Budget: 10,
	}
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Graph.Seed != 5 {
		t.Errorf("tree-5 default seed = %d, want the family seed 5", cells[0].Graph.Seed)
	}
	if cells[1].Graph.Seed != 4*7+1 {
		t.Errorf("random-4 default seed = %d, want the family seed 29", cells[1].Graph.Seed)
	}
	if cells[1].Graph.P != 0.3 {
		t.Errorf("random default p = %v", cells[1].Graph.P)
	}

	// Zero-seed shuffled axes must default to the family shuffle seed
	// (the node count) on BOTH the sized and the fixed expansion paths,
	// or a default verified catalog would not recognize the graphs.
	shuf := Spec{
		Seed:  "s",
		Kinds: []string{KindRendezvous},
		Graphs: []GraphAxis{
			{Kind: "path", Sizes: []int{4}, Shuffle: true},
			{Kind: "grid", Rows: 2, Cols: 3, Shuffle: true},
		},
		Budget: 10,
	}
	sc, err := Expand(shuf)
	if err != nil {
		t.Fatal(err)
	}
	if sc[0].Graph.Seed != 4 {
		t.Errorf("shuffled path-4 default seed = %d, want 4", sc[0].Graph.Seed)
	}
	if sc[1].Graph.Seed != 6 {
		t.Errorf("shuffled grid-2x3 default seed = %d, want 6 (the node count)", sc[1].Graph.Seed)
	}
}

func metOutcome(n, m, cost, maxPer int) Outcome {
	return Outcome{N: n, M: m, Met: true, Consistent: true, Cost: cost, MaxPerAgent: maxPer}
}

func TestOracles(t *testing.T) {
	model := costmodel.New(costmodel.PLinear(1))
	cellRV := Cell{Kind: KindRendezvous, Labels: []uint64{2, 5}}
	cellESST := Cell{Kind: KindESST}

	term := Termination()
	if err := term.Check(cellRV, metOutcome(4, 3, 10, 5)); err != nil {
		t.Errorf("termination failed a met run: %v", err)
	}
	if err := term.Check(cellRV, Outcome{Exhausted: true}); err != nil {
		t.Errorf("termination failed an exhausted run: %v", err)
	}
	if err := term.Check(cellRV, Outcome{EndedEarly: true}); err == nil {
		t.Error("termination accepted a run that ended without goal or sentinel")
	}
	if err := term.Check(cellRV, Outcome{Invalid: true}); err == nil {
		t.Error("termination accepted an invalid expanded cell")
	}

	bound := Bound(model)
	if err := bound.Check(cellRV, metOutcome(4, 3, 40, 25)); err != nil {
		t.Errorf("bound failed a tiny-cost run: %v", err)
	}
	// Pi exceeds 2^63 even at n=2, so no honest int64 cost can breach
	// it; corrupted (negative) accounting must still be rejected.
	corrupt := metOutcome(4, 3, 40, 25)
	corrupt.MaxPerAgent = -1
	if err := bound.Check(cellRV, corrupt); err == nil {
		t.Error("bound accepted corrupted negative per-agent accounting")
	}
	if err := bound.Check(cellESST, metOutcome(4, 3, 2, 2)); err == nil {
		t.Error("bound accepted an ESST run with fewer traversals than edges")
	}
	if err := bound.Check(cellESST, metOutcome(4, 3, 12, 12)); err != nil {
		t.Errorf("bound failed a covering ESST run: %v", err)
	}

	cons := Consistency()
	bad := metOutcome(4, 3, 10, 5)
	bad.Consistent = false
	bad.Detail = "disagreement"
	if err := cons.Check(cellRV, bad); err == nil {
		t.Error("consistency accepted an inconsistent met run")
	}

	lem := Lemmas(model)
	if err := lem.Check(cellRV, metOutcome(4, 3, 10, 5)); err != nil {
		t.Errorf("lemmas failed on a holding combination: %v", err)
	}
}

func TestReportAggregationAndTable(t *testing.T) {
	spec := Spec{Name: "agg", Seed: "agg-seed"}
	// Distinct cells need distinct indices: the aggregator dedupes
	// repeated feeds of the same cell by index/seed identity.
	nextIdx := 0
	mk := func(kind, graphKind string, o Outcome, fail bool) CellResult {
		idx := nextIdx
		nextIdx++
		cr := CellResult{
			Cell: Cell{Index: idx, Kind: kind, Graph: GraphParams{Kind: graphKind, N: 4},
				ID: kind + "/x", Seed: CellSeed("agg-seed", idx)},
			Outcome: o,
		}
		if fail {
			cr.Failures = []OracleFailure{{Oracle: "test", Err: "boom"}}
		}
		return cr
	}
	results := []CellResult{
		mk(KindRendezvous, "path", metOutcome(4, 3, 10, 6), false),
		mk(KindRendezvous, "path", metOutcome(4, 3, 30, 20), false),
		mk(KindRendezvous, "path", Outcome{Exhausted: true}, false),
		mk(KindESST, "ring", Outcome{Canceled: true}, true),
		mk(KindESST, "ring", Outcome{EndedEarly: true}, true),
	}
	r := BuildReport(spec, results, nil)
	if r.Cells != 5 || r.Met != 2 || r.Ex != 1 || r.Canc != 1 || r.Other != 1 || r.Fail != 2 {
		t.Fatalf("totals: %+v", r)
	}
	if r.Met+r.Ex+r.Canc+r.Other != r.Cells {
		t.Fatalf("outcome buckets do not sum to cells: %+v", r)
	}
	if r.OK() {
		t.Fatal("report with failures claims OK")
	}
	// Canceled cells alone must also spoil OK: they verified nothing.
	interrupted := BuildReport(spec, []CellResult{
		mk(KindRendezvous, "path", metOutcome(4, 3, 10, 6), false),
		mk(KindRendezvous, "path", Outcome{Canceled: true}, false),
	}, nil)
	if interrupted.OK() {
		t.Fatal("interrupted sweep (canceled cells, no oracle failures) claims OK")
	}
	var rv *GroupStats
	for i := range r.Group {
		if strings.HasPrefix(r.Group[i].Group, "rendezvous/") {
			rv = &r.Group[i]
		}
	}
	if rv == nil || rv.Runs != 3 || rv.Met != 2 || rv.MinCost != 10 || rv.MaxCost != 30 || rv.MeanCost() != 20 {
		t.Fatalf("rendezvous group stats: %+v", rv)
	}
	tbl := r.Table()
	for _, want := range []string{"agg", "TOTAL", "rendezvous/path-4", "FAIL", "agg-seed#3"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}
