package meetpoly

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"meetpoly/internal/campaign"
	"meetpoly/internal/graph"
	"meetpoly/internal/sched"
	"meetpoly/internal/uxs"
)

// ScenarioKind selects which of the paper's algorithms a Scenario runs.
type ScenarioKind string

// Scenario kinds.
const (
	// ScenarioRendezvous runs Algorithm RV-asynch-poly (Theorem 3.1).
	ScenarioRendezvous ScenarioKind = "rendezvous"
	// ScenarioBaseline runs the exponential-cost comparator.
	ScenarioBaseline ScenarioKind = "baseline"
	// ScenarioESST runs Procedure ESST (Theorem 2.1): Starts[0] is the
	// explorer, Starts[1] the parked token; Labels are unused.
	ScenarioESST ScenarioKind = "esst"
	// ScenarioSGL runs Algorithm SGL (Theorem 4.1) for a team of
	// len(Starts) agents.
	ScenarioSGL ScenarioKind = "sgl"
	// ScenarioCertify runs the exhaustive lattice adversary on the two
	// agents' route prefixes of Moves traversals each; Budget and
	// Adversary are ignored (the certifier ranges over ALL schedules).
	ScenarioCertify ScenarioKind = "certify"
)

// GraphSpec declaratively describes a graph so that scenarios round-trip
// through JSON. Builders are deterministic: the same spec always yields
// the same port-numbered graph, which is what lets a shared verified
// catalog recognize rebuilt family members without re-verification.
type GraphSpec struct {
	// Kind is one of path|ring|star|clique|bintree|tree|random|grid|
	// torus|hypercube|lollipop|petersen.
	Kind string `json:"kind"`
	// N is the node count (ignored for petersen; for hypercube it is
	// the dimension; for grid/torus/lollipop see Rows/Cols).
	N int `json:"n,omitempty"`
	// Rows and Cols size grid and torus graphs; for lollipop they are
	// the clique size and tail length.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// P is the edge probability for random graphs (default 0.3).
	P float64 `json:"p,omitempty"`
	// Seed drives random graph generation and port shuffling.
	Seed int64 `json:"seed,omitempty"`
	// Shuffle applies adversarially permuted port numbers (ShufflePorts
	// with Seed) to the built graph.
	Shuffle bool `json:"shuffle,omitempty"`
}

// MaxSpecNodes caps the node count a declarative GraphSpec may request.
// The builders themselves are driven by trusted code and take any size,
// but a spec is user input (JSON files, CLI flags, fuzzers), and an
// unchecked "clique of 10^9 nodes" is an allocation bomb, not a
// scenario. The cap is far above the small-graph regime the verified
// catalogs target, and is shared with campaign sweep validation so a
// SweepSpec that validates never expands into cells this check rejects.
const MaxSpecNodes = campaign.MaxSpecNodes

// Build constructs the described graph. All failures wrap
// ErrInvalidScenario.
func (s GraphSpec) Build() (g *Graph, err error) {
	// Size-cap the request before building: campaign.NodeCount is the
	// single sizing formula shared with sweep-spec validation, so a
	// SweepSpec that validates never expands into cells rejected here.
	if _, err := campaign.NodeCount(s.Kind, s.N, s.Rows, s.Cols); err != nil {
		return nil, fmt.Errorf("graph spec %+v: %v: %w", s, err, ErrInvalidScenario)
	}
	defer func() {
		// The generators panic on out-of-range parameters (they are
		// driven by trusted code); a declarative spec is user input, so
		// convert panics into typed errors.
		if rec := recover(); rec != nil {
			g, err = nil, fmt.Errorf("graph spec %+v: %v: %w", s, rec, ErrInvalidScenario)
		}
	}()
	switch s.Kind {
	case "path":
		g = graph.Path(s.N)
	case "ring":
		g = graph.Ring(s.N)
	case "star":
		g = graph.Star(s.N)
	case "clique", "complete":
		g = graph.Complete(s.N)
	case "bintree":
		g = graph.BinaryTree(s.N)
	case "tree":
		g = graph.RandomTree(s.N, s.Seed)
	case "random":
		p := s.P
		if p == 0 {
			p = uxs.DefaultRandomP
		}
		g = graph.RandomConnected(s.N, p, s.Seed)
	case "grid":
		g = graph.Grid(s.Rows, s.Cols)
	case "torus":
		g = graph.Torus(s.Rows, s.Cols)
	case "hypercube":
		g = graph.Hypercube(s.N)
	case "lollipop":
		g = graph.Lollipop(s.Rows, s.Cols)
	case "petersen":
		g = graph.Petersen()
	default:
		return nil, fmt.Errorf("unknown graph kind %q: %w", s.Kind, ErrInvalidScenario)
	}
	if s.Shuffle {
		g = graph.ShufflePorts(g, s.Seed)
	}
	return g, nil
}

// ParseAdversary resolves a declarative adversary spec string to a
// strategy, so serialized scenarios and command-line flags reach every
// constructor the sched package exports:
//
//	""                   round-robin (the default)
//	"roundrobin"         round-robin ("round-robin" also accepted)
//	"avoider"            the strongest online meeting dodger
//	"random"             seeded random schedule, seed 42
//	"random:<seed>"      seeded random schedule
//	"biased:<w1>,<w2>,…" per-agent speed weights
//	"latewake:<hold>"    all but agent 0 dormant for <hold> events
//	                     ("late-wake:<hold>" also accepted)
//
// Unknown or malformed specs wrap ErrInvalidScenario. Bare "biased"
// needs an agent count and is therefore rejected here but accepted
// inside a Scenario, where it defaults to the 1:5:9:... skew of
// sched.Strategies.
func ParseAdversary(spec string) (Adversary, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	switch name {
	case "", "roundrobin", "round-robin":
		return &sched.RoundRobin{}, nil
	case "avoider":
		return &sched.Avoider{}, nil
	case "random":
		seed := int64(42)
		if arg != "" {
			v, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("adversary %q: bad seed: %w", spec, ErrInvalidScenario)
			}
			seed = v
		}
		return sched.NewRandom(seed), nil
	case "biased":
		if arg == "" {
			return nil, fmt.Errorf("adversary %q: biased needs weights: %w", spec, ErrInvalidScenario)
		}
		parts := strings.Split(arg, ",")
		ws := make([]int, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 0 {
				return nil, fmt.Errorf("adversary %q: bad weight %q: %w", spec, p, ErrInvalidScenario)
			}
			ws[i] = v
		}
		return &sched.Biased{Weights: ws}, nil
	case "latewake", "late-wake":
		hold := 200
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("adversary %q: bad hold: %w", spec, ErrInvalidScenario)
			}
			hold = v
		}
		return &sched.LateWake{Primary: 0, Hold: hold}, nil
	default:
		return nil, fmt.Errorf("unknown adversary %q: %w", spec, ErrInvalidScenario)
	}
}

// Scenario is a declarative, JSON-serializable description of one
// execution: which algorithm, on which graph, with which agents, under
// which adversary, and for how long. Execute it with Engine.Run.
type Scenario struct {
	// Name is a free-form identifier echoed in results and errors.
	Name string       `json:"name,omitempty"`
	Kind ScenarioKind `json:"kind"`
	// Graph describes the network declaratively.
	Graph GraphSpec `json:"graph"`
	// GraphInstance, when non-nil, overrides Graph with an
	// already-built value (not serialized). The deprecated free
	// functions use this to route concrete graphs through the engine.
	GraphInstance *Graph `json:"-"`
	// Starts are the agents' starting nodes (distinct). For ESST:
	// [explorer, token].
	Starts []int `json:"starts"`
	// Labels are the agents' labels: two distinct positive values for
	// rendezvous/baseline/certify, one per agent for SGL, unused for
	// ESST.
	Labels []Label `json:"labels,omitempty"`
	// Values are SGL gossip inputs (defaults to "value-of-<label>").
	Values []string `json:"values,omitempty"`
	// Adversary is a ParseAdversary spec string; "" = round-robin.
	Adversary string `json:"adversary,omitempty"`
	// AdversaryInstance, when non-nil, overrides Adversary with an
	// already-built strategy (not serialized).
	AdversaryInstance Adversary `json:"-"`
	// Budget bounds the number of adversary events (all kinds except
	// certify).
	Budget int `json:"budget,omitempty"`
	// Moves is the certify route-prefix length (certify only).
	Moves int `json:"moves,omitempty"`
}

// BuildGraph returns the scenario's graph: GraphInstance when set,
// otherwise the graph built from the declarative spec.
func (s Scenario) BuildGraph() (*Graph, error) {
	if s.GraphInstance != nil {
		return s.GraphInstance, nil
	}
	return s.Graph.Build()
}

// resolveAdversary returns the scenario's adversary strategy. Bare
// "biased" (no weights) is resolved here rather than in ParseAdversary
// because the default 1:5:9:... skew of sched.Strategies needs the
// agent count, which only the scenario knows.
func (s Scenario) resolveAdversary() (Adversary, error) {
	if s.AdversaryInstance != nil {
		return s.AdversaryInstance, nil
	}
	if s.Adversary == "biased" {
		ws := make([]int, len(s.Starts))
		for i := range ws {
			ws[i] = 1 + 4*i
		}
		return &sched.Biased{Weights: ws}, nil
	}
	return ParseAdversary(s.Adversary)
}

// Validate checks the scenario against the model's requirements. All
// failures wrap ErrInvalidScenario.
func (s Scenario) Validate() error {
	g, err := s.BuildGraph()
	if err != nil {
		return err
	}
	return s.validateWith(g)
}

// validateWith is Validate against an already-built graph, so callers
// that need the graph anyway (the engine) build it exactly once.
func (s Scenario) validateWith(g *Graph) error {
	fail := func(format string, args ...any) error {
		msg := fmt.Sprintf(format, args...)
		return fmt.Errorf("scenario %q: %s: %w", s.Name, msg, ErrInvalidScenario)
	}
	seen := make(map[int]bool, len(s.Starts))
	for _, v := range s.Starts {
		if v < 0 || v >= g.N() {
			return fail("start node %d out of range [0,%d)", v, g.N())
		}
		if seen[v] {
			return fail("duplicate start node %d", v)
		}
		seen[v] = true
	}
	adv, err := s.resolveAdversary()
	if err != nil {
		return err
	}
	// A biased schedule panics inside the runner on a weight/agent
	// mismatch (it is a programming error there); from a declarative
	// descriptor it is user input, so reject it here.
	if b, ok := adv.(*sched.Biased); ok && len(b.Weights) != len(s.Starts) {
		return fail("biased adversary has %d weights for %d agents", len(b.Weights), len(s.Starts))
	}
	distinctPositive := func(ls []Label) error {
		got := make(map[Label]bool, len(ls))
		for _, l := range ls {
			if l == 0 {
				return fail("labels must be positive")
			}
			if got[l] {
				return fail("duplicate label %d", l)
			}
			got[l] = true
		}
		return nil
	}
	switch s.Kind {
	case ScenarioRendezvous, ScenarioBaseline:
		if len(s.Starts) != 2 || len(s.Labels) != 2 {
			return fail("%s needs exactly 2 starts and 2 labels", s.Kind)
		}
		if err := distinctPositive(s.Labels); err != nil {
			return err
		}
		if s.Budget <= 0 {
			return fail("budget must be positive")
		}
	case ScenarioCertify:
		if len(s.Starts) != 2 || len(s.Labels) != 2 {
			return fail("certify needs exactly 2 starts and 2 labels")
		}
		if err := distinctPositive(s.Labels); err != nil {
			return err
		}
		if s.Moves <= 0 {
			return fail("certify needs positive moves")
		}
	case ScenarioESST:
		if len(s.Starts) != 2 {
			return fail("esst needs exactly 2 starts (explorer, token)")
		}
		if s.Budget <= 0 {
			return fail("budget must be positive")
		}
	case ScenarioSGL:
		if len(s.Starts) < 2 {
			return fail("sgl needs at least 2 agents")
		}
		if len(s.Labels) != len(s.Starts) {
			return fail("sgl needs one label per start (%d vs %d)", len(s.Labels), len(s.Starts))
		}
		if err := distinctPositive(s.Labels); err != nil {
			return err
		}
		if s.Values != nil && len(s.Values) != len(s.Labels) {
			return fail("sgl values must match labels (%d vs %d)", len(s.Values), len(s.Labels))
		}
		if s.Budget <= 0 {
			return fail("budget must be positive")
		}
	default:
		return fail("unknown kind %q", s.Kind)
	}
	return nil
}

// JSON renders the scenario as indented JSON.
func (s Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ScenarioFromJSON parses and validates a serialized scenario.
func ScenarioFromJSON(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("scenario JSON: %v: %w", err, ErrInvalidScenario)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// SweepSpecJSON renders a campaign sweep spec as indented JSON, the
// same declarative-descriptor convention Scenario.JSON follows.
func SweepSpecJSON(s SweepSpec) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// SweepSpecFromJSON parses and validates a serialized sweep spec.
// Malformed or inconsistent specs wrap ErrInvalidScenario, like every
// other declarative descriptor.
func SweepSpecFromJSON(data []byte) (SweepSpec, error) {
	var s SweepSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return SweepSpec{}, fmt.Errorf("sweep spec JSON: %v: %w", err, ErrInvalidScenario)
	}
	if err := s.Validate(); err != nil {
		return SweepSpec{}, fmt.Errorf("%v: %w", err, ErrInvalidScenario)
	}
	return s, nil
}

// LoadSweepSpecFile reads, parses and validates a sweep spec JSON file.
func LoadSweepSpecFile(path string) (SweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SweepSpec{}, err
	}
	return SweepSpecFromJSON(data)
}

// LoadScenarioFile reads, parses and validates a scenario JSON file,
// optionally restricting the accepted kinds (the per-algorithm
// commands each run only their own kind).
func LoadScenarioFile(path string, kinds ...ScenarioKind) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	s, err := ScenarioFromJSON(data)
	if err != nil {
		return Scenario{}, err
	}
	if len(kinds) > 0 {
		ok := false
		for _, k := range kinds {
			if s.Kind == k {
				ok = true
			}
		}
		if !ok {
			return Scenario{}, fmt.Errorf("%s: scenario kind %q not accepted here (want %v): %w",
				path, s.Kind, kinds, ErrInvalidScenario)
		}
	}
	return s, nil
}
