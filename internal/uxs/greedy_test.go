package uxs

import (
	"testing"

	"meetpoly/internal/graph"
)

func TestGreedyForUniversal(t *testing.T) {
	fam := DefaultFamily(7)
	seq, ok := GreedyFor(fam, 100_000)
	if !ok {
		t.Fatal("greedy did not finish within cap")
	}
	if !UniversalFor(seq, fam) {
		g, v, _ := FirstFailure(seq, fam)
		t.Fatalf("greedy sequence (len %d) not integral on %v from %d", len(seq), g, v)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	fam := []*graph.Graph{graph.Ring(5), graph.Star(5), graph.Path(4)}
	a, _ := GreedyFor(fam, 10_000)
	b, _ := GreedyFor(fam, 10_000)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic content")
		}
	}
}

func TestGreedyShorterThanCubic(t *testing.T) {
	// The point of the compact catalogs: greedy sequences are orders of
	// magnitude shorter than the cubic pseudorandom ones.
	fam := DefaultFamily(6)
	seq, ok := GreedyFor(fam, 100_000)
	if !ok {
		t.Fatal("greedy did not finish")
	}
	if len(seq) >= PCubic(6, 1) {
		t.Errorf("greedy length %d not shorter than cubic %d", len(seq), PCubic(6, 1))
	}
}

func TestGreedyEmptyAndDegenerate(t *testing.T) {
	seq, ok := GreedyFor(nil, 10)
	if !ok || len(seq) == 0 {
		t.Error("empty family should yield a trivial sequence")
	}
	seq, ok = GreedyFor([]*graph.Graph{graph.Single()}, 10)
	if !ok {
		t.Error("single-node graph has nothing to cover")
	}
	_ = seq
}

func TestGreedyCapFails(t *testing.T) {
	fam := []*graph.Graph{graph.Complete(6)}
	if _, ok := GreedyFor(fam, 3); ok {
		t.Error("3-step cap cannot cover K6")
	}
}

func TestVerifiedGreedyCatalog(t *testing.T) {
	// Greedy catalogs are seed-independent and still satisfy the full
	// Catalog contract.
	fam := DefaultFamily(5)
	a := NewVerifiedGreedy(fam, 1).Seq(5)
	b := NewVerifiedGreedy(fam, 999).Seq(5)
	if len(a) != len(b) {
		t.Fatalf("seed-dependent lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("seed-dependent content despite greedy construction")
		}
	}
	if err := CheckCatalog(NewVerifiedGreedy(fam, 3), 6, fam); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyShorterThanRandomSearch(t *testing.T) {
	// The ablation behind E10: greedy minimizes length; random search
	// pays extra length for richer walks (the simulation default).
	fam := DefaultFamily(5)
	greedy := NewVerifiedGreedy(fam, 1)
	random := NewVerified(fam, 1)
	if greedy.P(5) > random.P(5) {
		t.Errorf("greedy P(5)=%d longer than random search P(5)=%d",
			greedy.P(5), random.P(5))
	}
}
