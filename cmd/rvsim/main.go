// Command rvsim runs Algorithm RV-asynch-poly on a chosen graph under a
// chosen adversary, optionally certifying the exact worst case with the
// exhaustive lattice adversary, and can regenerate the measured tables
// E4 and E6 of EXPERIMENTS.md.
//
// Every flag maps 1:1 onto a serialized meetpoly.Scenario: -dump prints
// the scenario JSON instead of running, and -scenario runs a JSON file
// produced that way (or by any other tool).
//
// Usage:
//
//	rvsim -graph path -n 4 -s1 0 -s2 3 -l1 2 -l2 5 -adv avoider
//	rvsim -graph ring -n 5 -adv random:7 -dump > sc.json
//	rvsim -scenario sc.json -trace
//	rvsim -certify 4000 -graph star -n 4
//	rvsim -table E4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"meetpoly"
	"meetpoly/internal/buildinfo"
	"meetpoly/internal/core"
	"meetpoly/internal/costmodel"
	"meetpoly/internal/experiments"
	"meetpoly/internal/sched"
)

// specFromFlags translates the -graph/-n/-seed flags into a GraphSpec;
// "ring-shuffled" is kept as an alias for ring+shuffle.
func specFromFlags(kind string, n int, seed int64) meetpoly.GraphSpec {
	if kind == "ring-shuffled" {
		return meetpoly.GraphSpec{Kind: "ring", N: n, Seed: seed, Shuffle: true}
	}
	return meetpoly.GraphSpec{Kind: kind, N: n, Seed: seed}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	gkind := flag.String("graph", "path", "path|ring|ring-shuffled|star|clique|bintree|random")
	n := flag.Int("n", 4, "graph size")
	seed := flag.Int64("seed", 1, "seed for random/shuffled graphs and the catalog")
	s1 := flag.Int("s1", 0, "start node of agent 1")
	s2 := flag.Int("s2", -1, "start node of agent 2 (-1 = last node)")
	l1 := flag.Uint64("l1", 2, "label of agent 1")
	l2 := flag.Uint64("l2", 5, "label of agent 2")
	advName := flag.String("adv", "roundrobin",
		"roundrobin|avoider|random[:seed]|biased[:w1,w2]|latewake[:hold[:agent]]|any registered family")
	budget := flag.Int("budget", 2_000_000, "adversary event budget")
	certify := flag.Int("certify", 0, "if > 0, certify the worst case on route prefixes of this length")
	replay := flag.Bool("replay", false, "with -certify: replay the reconstructed worst-case schedule")
	table := flag.String("table", "", "regenerate a measured table instead: E4|E4s|E6")
	famMax := flag.Int("family", 8, "catalog family max size")
	scenarioFile := flag.String("scenario", "", "run a serialized scenario JSON file instead of flags")
	dump := flag.Bool("dump", false, "print the scenario JSON implied by the flags and exit")
	trace := flag.Bool("trace", false, "stream traversal/meeting/phase events while running")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rvsim"))
		return
	}

	opts := []meetpoly.Option{meetpoly.WithMaxN(*famMax), meetpoly.WithSeed(*seed)}
	if *trace {
		opts = append(opts, meetpoly.WithObserver(meetpoly.NewTraceObserver(os.Stdout)))
	}
	eng := meetpoly.NewEngine(opts...)

	if *table != "" {
		var t *experiments.Table
		switch *table {
		case "E4":
			t = experiments.E4Measured(eng.Env(), experiments.DefaultRVInstances(), *budget)
		case "E4s":
			t = experiments.E4Symmetry(eng.Env(), *budget)
		case "E6":
			t = experiments.E6Certified(eng.Env(), experiments.DefaultRVInstances(), 4000)
		default:
			fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
			os.Exit(2)
		}
		t.Render(os.Stdout)
		return
	}

	var sc meetpoly.Scenario
	if *scenarioFile != "" {
		var err error
		sc, err = meetpoly.LoadScenarioFile(*scenarioFile,
			meetpoly.ScenarioRendezvous, meetpoly.ScenarioCertify)
		if err != nil {
			fatal(err)
		}
	} else {
		spec := specFromFlags(*gkind, *n, *seed)
		g, err := spec.Build()
		if err != nil {
			fatal(err)
		}
		start2 := *s2
		if start2 < 0 {
			start2 = g.N() - 1
		}
		sc = meetpoly.Scenario{
			Name:      "rvsim",
			Kind:      meetpoly.ScenarioRendezvous,
			Graph:     spec,
			Starts:    []int{*s1, start2},
			Labels:    []meetpoly.Label{meetpoly.Label(*l1), meetpoly.Label(*l2)},
			Adversary: *advName,
			Budget:    *budget,
		}
		if *certify > 0 {
			sc.Kind = meetpoly.ScenarioCertify
			sc.Moves = *certify
			sc.Budget = 0
			sc.Adversary = ""
		}
	}
	if *dump {
		data, err := sc.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", data)
		return
	}

	res, err := eng.Run(context.Background(), sc)
	if res == nil {
		fatal(err)
	}

	if sc.Kind == meetpoly.ScenarioCertify {
		cres := *res.Cert
		fmt.Printf("exhaustive adversary on %d-move prefixes: %v\n", sc.Moves, cres)
		if *replay && cres.Forced {
			replayWorst(eng, sc)
		}
		return
	}

	rres := res.Rendezvous
	g, _ := sc.BuildGraph()
	fmt.Printf("graph=%s agents: L%d@%d vs L%d@%d adversary=%q\n",
		g, sc.Labels[0], sc.Starts[0], sc.Labels[1], sc.Starts[1], sc.Adversary)
	fmt.Printf("Theorem 3.1 bound Pi(n, |Lmin|): ~2^%.1f (%d bits)\n",
		costmodel.ApproxLog2(rres.Bound), rres.Bound.BitLen())
	if !rres.Met {
		fmt.Printf("no meeting within %d events (budget << bound; raise -budget)\n", sc.Budget)
		return
	}
	where := fmt.Sprintf("node %d", rres.Meeting.Node)
	if rres.Meeting.InEdge {
		where = fmt.Sprintf("inside edge %v", rres.Meeting.Edge)
	}
	fmt.Printf("MET at %s after %d completed traversals (step %d)\n",
		where, rres.Meeting.Cost, rres.Meeting.Step)
	fmt.Printf("per-agent traversals: %v\n", rres.Summary.Traversals)
}

// replayWorst reconstructs the certified worst-case schedule and drives
// a live run along it, cross-checking the certifier against the
// simulator.
func replayWorst(eng *meetpoly.Engine, sc meetpoly.Scenario) {
	g, err := sc.Graph.Build()
	if err != nil {
		fatal(err)
	}
	ra := core.Route(g, sc.Starts[0], sc.Labels[0], eng.Env(), sc.Moves)
	rb := core.Route(g, sc.Starts[1], sc.Labels[1], eng.Env(), sc.Moves)
	schedule, cert, err := sched.WorstSchedule(ra, rb)
	if err != nil {
		fatal(err)
	}
	rr, err := eng.Run(context.Background(), meetpoly.Scenario{
		Name:              "rvsim-replay",
		Kind:              meetpoly.ScenarioRendezvous,
		GraphInstance:     g,
		Starts:            sc.Starts,
		Labels:            sc.Labels,
		AdversaryInstance: &sched.ScheduleAdversary{Schedule: schedule},
		Budget:            len(schedule) + 10,
	})
	if err != nil && !errors.Is(err, meetpoly.ErrBudgetExhausted) {
		fatal(err)
	}
	if rr.Rendezvous.Met {
		fmt.Printf("replayed worst schedule: met at cost %d (certified %d)\n",
			rr.Rendezvous.Meeting.Cost, cert.WorstCompleted)
	} else {
		fmt.Println("replay inconsistency: no meeting (bug)")
		os.Exit(1)
	}
}
