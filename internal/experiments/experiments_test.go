package experiments

import (
	"strings"
	"testing"

	"meetpoly/internal/costmodel"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

func testEnv(t testing.TB) *trajectory.Env {
	t.Helper()
	return trajectory.NewEnv(uxs.NewVerified(uxs.DefaultFamily(6), 1))
}

func render(t *testing.T, tab *Table) string {
	t.Helper()
	var sb strings.Builder
	tab.Render(&sb)
	return sb.String()
}

func TestE1E2Shapes(t *testing.T) {
	m := costmodel.New(costmodel.PLinear(1))
	e1 := E1PiVsN(m, []int{4, 8, 16, 32}, 1)
	if len(e1.Rows) != 4 {
		t.Fatalf("E1 rows = %d", len(e1.Rows))
	}
	out := render(t, e1)
	if !strings.Contains(out, "E1") || !strings.Contains(out, "delta-per-doubling") {
		t.Errorf("E1 render missing headers:\n%s", out)
	}
	e2 := E2PiVsLabelLen(m, 4, []int{1, 2, 4, 8})
	if len(e2.Rows) != 4 {
		t.Fatalf("E2 rows = %d", len(e2.Rows))
	}
}

func TestE3WinnerFlips(t *testing.T) {
	m := costmodel.New(costmodel.PLinear(1))
	e3 := E3BaselineVsPi(m, 4, []int{1, 2, 4, 8, 16, 32})
	sawBaseline, sawPoly := false, false
	for _, r := range e3.Rows {
		switch r[len(r)-1] {
		case "baseline":
			sawBaseline = true
		case "RV-asynch-poly":
			sawPoly = true
			if sawBaseline && r[0] == e3.Rows[0][0] {
				t.Error("winner order inconsistent")
			}
		}
	}
	if !sawPoly {
		t.Error("RV-asynch-poly never wins in E3; the headline result is missing")
	}
	// The crossover table must find a finite crossover for every n.
	e3x := E3Crossover(m, []int{2, 4, 8}, 512)
	for _, r := range e3x.Rows {
		if strings.Contains(r[1], "none") {
			t.Errorf("no crossover found for n=%s within 512 bits", r[0])
		}
	}
	_ = sawBaseline
}

func TestE7AllHold(t *testing.T) {
	m := costmodel.New(costmodel.PLinear(2))
	tab := E7Lemmas(m, [][2]int{{2, 4}, {5, 8}})
	if len(tab.Rows) == 0 {
		t.Fatal("no inequality rows")
	}
	for _, r := range tab.Rows {
		if r[len(r)-1] != "true" {
			t.Errorf("inequality %q fails", r[0])
		}
	}
}

func TestE4AndE6Measured(t *testing.T) {
	if testing.Short() {
		t.Skip("measured tables are slow")
	}
	env := testEnv(t)
	instances := DefaultRVInstances()[:4]
	e4 := E4Measured(env, instances, 300_000)
	met := 0
	for _, r := range e4.Rows {
		if r[4] == "yes" {
			met++
		}
	}
	if met == 0 {
		t.Error("no instance met under any strategy in E4")
	}
	e6 := E6Certified(env, instances[:2], 3000)
	forced := 0
	for _, r := range e6.Rows {
		if r[1] == "yes" {
			forced++
		}
	}
	if forced == 0 {
		t.Error("no instance certified forced in E6")
	}
}

func TestE4SymmetryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("measured tables are slow")
	}
	env := testEnv(t)
	tab := E4Symmetry(env, 100_000)
	var orientedMet, shuffledMet bool
	for _, r := range tab.Rows {
		if r[1] == "oriented" && r[3] == "yes" {
			orientedMet = true
		}
		if r[1] == "shuffled" && r[3] == "yes" {
			shuffledMet = true
		}
	}
	if orientedMet {
		t.Error("oriented ring met within budget; symmetry analysis invalid")
	}
	if !shuffledMet {
		t.Error("shuffled ring never met; port shuffling should break the symmetry")
	}
}

func TestE5Table(t *testing.T) {
	if testing.Short() {
		t.Skip("measured tables are slow")
	}
	cat := uxs.NewVerified(uxs.DefaultFamily(8), 1)
	tab := E5ESST(cat, DefaultESSTInstances(), 50_000_000)
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[3], "error") || r[3] == "no-term" {
			t.Errorf("instance %s: %s", r[0], r[3])
		}
		if len(r) > 8 && r[8] != "true" {
			t.Errorf("instance %s: coverage %s", r[0], r[8])
		}
	}
}

func TestE8Table(t *testing.T) {
	if testing.Short() {
		t.Skip("measured tables are slow")
	}
	env := testEnv(t)
	tab := E8SGL(env, DefaultSGLInstances()[:3], 40_000_000)
	for _, r := range tab.Rows {
		if r[3] != "yes" {
			t.Errorf("instance %s: all-output = %s", r[0], r[3])
		}
	}
}

func TestF1to4Renders(t *testing.T) {
	env := testEnv(t)
	out := F1to4(env, 3)
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 3", "Figure 4",
		"Q(3,v)", "Y'(3,v)", "Z(3,v)", "A'(3,v)"} {
		if !strings.Contains(out, want) {
			t.Errorf("figures output missing %q", want)
		}
	}
}

func TestE10CoverageRamp(t *testing.T) {
	verified := testEnv(t)
	cubic := trajectory.NewEnv(uxs.NewFormula(1, 1))
	graphs := verified.Catalog().(*uxs.Verified).Family()[:4]
	tab := E10CoverageRamp(graphs, verified, cubic)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[2] == "-1" {
			t.Errorf("%s: verified catalog never reached integrality", r[0])
		}
	}
}

func TestE9SGLBoundTable(t *testing.T) {
	m := costmodel.New(costmodel.PLinear(1))
	tab := E9SGLBound(m, []int{2, 3}, 2, 3)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestPModelsAblation(t *testing.T) {
	for name, m := range PModels() {
		pi := PiExact(m, 3, 1)
		if pi.Sign() <= 0 {
			t.Errorf("%s: non-positive Pi", name)
		}
	}
}
