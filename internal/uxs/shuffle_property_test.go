package uxs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"meetpoly/internal/graph"
)

// allBuilders constructs one deterministic graph per generator in
// internal/graph/builders.go, keyed by a human-readable name.
func allBuilders() map[string]func() *graph.Graph {
	return map[string]func() *graph.Graph{
		"ring":       func() *graph.Graph { return graph.Ring(5) },
		"path":       func() *graph.Graph { return graph.Path(5) },
		"clique":     func() *graph.Graph { return graph.Complete(5) },
		"star":       func() *graph.Graph { return graph.Star(5) },
		"grid":       func() *graph.Graph { return graph.Grid(2, 3) },
		"torus":      func() *graph.Graph { return graph.Torus(3, 3) },
		"hypercube":  func() *graph.Graph { return graph.Hypercube(3) },
		"kbipartite": func() *graph.Graph { return graph.CompleteBipartite(2, 3) },
		"bintree":    func() *graph.Graph { return graph.BinaryTree(6) },
		"lollipop":   func() *graph.Graph { return graph.Lollipop(3, 2) },
		"petersen":   graph.Petersen,
		"rtree":      func() *graph.Graph { return graph.RandomTree(6, 3) },
		"rand":       func() *graph.Graph { return graph.RandomConnected(6, 0.3, 9) },
		"single":     graph.Single,
		"shuffled":   func() *graph.Graph { return graph.ShufflePorts(graph.Ring(5), 11) },
	}
}

// checkWalkInvariants asserts the structural invariants of Walk on one
// graph: the trace starts at the start node, has full length P1 (length
// of the sequence plus one, except on the degree-0 single node), every
// visited node is in range, and every step follows an actual edge.
func checkWalkInvariants(t *testing.T, name string, g *graph.Graph, start int, seq Sequence) {
	t.Helper()
	trace := Walk(g, start, seq)
	if trace[0] != start {
		t.Fatalf("%s: walk from %d starts at %d", name, start, trace[0])
	}
	wantLen := len(seq) + 1
	if g.Degree(start) == 0 {
		wantLen = 1
	}
	if len(trace) != wantLen {
		t.Fatalf("%s: walk length %d, want %d (P1: length independent of the graph)", name, len(trace), wantLen)
	}
	for i := 0; i+1 < len(trace); i++ {
		u, v := trace[i], trace[i+1]
		if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
			t.Fatalf("%s: walk leaves the graph at step %d (%d -> %d)", name, i, u, v)
		}
		adjacent := false
		for p := 0; p < g.Degree(u); p++ {
			if to, _ := g.Succ(u, p); to == v {
				adjacent = true
				break
			}
		}
		if !adjacent {
			t.Fatalf("%s: walk step %d jumps a non-edge %d -> %d", name, i, u, v)
		}
	}
}

// TestWalkIntegralInvariantsUnderShuffle: the Walk/Integral invariants
// hold on every builder's graph AND on every adversarially port-shuffled
// relabeling of it, and the dense-edge-set Integral agrees everywhere
// with the independent map-based reference. Port shuffling changes which
// walk a sequence induces, but never the walk's structural invariants or
// the meaning of integrality.
func TestWalkIntegralInvariantsUnderShuffle(t *testing.T) {
	for name, build := range allBuilders() {
		t.Run(name, func(t *testing.T) {
			base := build()
			for _, shufSeed := range []int64{1, 2, 77} {
				g := graph.ShufflePorts(base, shufSeed)
				if g.N() != base.N() || g.M() != base.M() {
					t.Fatalf("shuffle changed the graph: n %d->%d m %d->%d", base.N(), g.N(), base.M(), g.M())
				}
				for v := 0; v < base.N(); v++ {
					if g.Degree(v) != base.Degree(v) {
						t.Fatalf("shuffle changed degree of %d: %d -> %d", v, base.Degree(v), g.Degree(v))
					}
				}
				if err := g.Validate(); err != nil {
					t.Fatalf("shuffled graph invalid: %v", err)
				}
				for _, seqSeed := range []int64{3, 4} {
					seq := Generate(base.N(), 1, seqSeed)
					for _, cand := range []*graph.Graph{base, g} {
						for v := 0; v < cand.N(); v++ {
							checkWalkInvariants(t, name, cand, v, seq)
							if got, want := Integral(cand, v, seq), integralMapRef(cand, v, seq); got != want {
								t.Fatalf("%s: dense Integral=%v, reference=%v (start %d, shuffle %d)",
									name, got, want, v, shufSeed)
							}
						}
					}
				}
			}
		})
	}
}

// TestIntegralAgreesWithReferenceProperty drives the dense/map agreement
// over randomized graphs, starts and sequences.
func TestIntegralAgreesWithReferenceProperty(t *testing.T) {
	f := func(nRaw, pRaw, seedRaw, startRaw uint8, shuffle bool) bool {
		n := 2 + int(nRaw)%8
		g := graph.RandomConnected(n, float64(pRaw%100)/100, int64(seedRaw))
		if shuffle {
			g = graph.ShufflePorts(g, int64(seedRaw)+1)
		}
		start := int(startRaw) % n
		seq := Generate(n, 1, int64(seedRaw)*3+1)
		// Truncate to a random prefix so both covering and non-covering
		// walks are exercised.
		seq = seq[:int(pRaw)%len(seq)]
		return Integral(g, start, seq) == integralMapRef(g, start, seq)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestVerifiedSequencesStayIntegralOnShuffledFamily: a Verified catalog
// whose family includes port-shuffled variants keeps its integrality
// guarantee on exactly those relabelings — the property the engine's
// coverage checks rely on when scenario specs request Shuffle.
func TestVerifiedSequencesStayIntegralOnShuffledFamily(t *testing.T) {
	base := []*graph.Graph{graph.Ring(5), graph.Path(4), graph.Star(5)}
	var fam []*graph.Graph
	for _, g := range base {
		fam = append(fam, g, graph.ShufflePorts(g, int64(g.N())))
	}
	v := NewVerified(fam, 1)
	seq := v.Seq(5)
	for _, g := range fam {
		for vtx := 0; vtx < g.N(); vtx++ {
			if !Integral(g, vtx, seq) {
				t.Fatalf("verified sequence not integral on %v from %d", g, vtx)
			}
		}
	}
}

// TestCoversEqualAgreesWithEqual: for every candidate graph c and every
// verified family, CoversEqual(c) must coincide with "some family member
// is graph.Equal to c". Candidates include rebuilt family members
// (deterministic builders => Equal without pointer identity), every
// other builder's graph, and shuffled variants.
func TestCoversEqualAgreesWithEqual(t *testing.T) {
	builders := allBuilders()
	var family []*graph.Graph
	for _, build := range builders {
		family = append(family, build())
	}
	v := NewVerified(family, 1)

	equalRef := func(g *graph.Graph) bool {
		for _, f := range family {
			if graph.Equal(f, g) {
				return true
			}
		}
		return false
	}

	var candidates []*graph.Graph
	for _, build := range builders {
		g := build()
		candidates = append(candidates, g, graph.ShufflePorts(g, 999), graph.ShufflePorts(g, int64(g.N())))
	}
	candidates = append(candidates,
		graph.Ring(6), graph.Path(6), graph.Complete(4), graph.RandomTree(6, 4),
		graph.RandomConnected(6, 0.3, 10), graph.Grid(3, 2))

	for i, c := range candidates {
		if got, want := v.CoversEqual(c), equalRef(c); got != want {
			t.Errorf("candidate %d (%v): CoversEqual=%v but graph.Equal scan=%v", i, c, got, want)
		}
	}

	// Rebuilt family members specifically must be recognized: this is
	// what lets scenario-rebuilt graphs share a verified catalog.
	for name, build := range builders {
		if !v.CoversEqual(build()) {
			t.Errorf("%s: rebuilt family member not recognized by CoversEqual", name)
		}
	}

	// And pointer-identity coverage implies structural coverage.
	for _, f := range family {
		if !v.Covers(f) || !v.CoversEqual(f) {
			t.Errorf("family member %v not covered", f)
		}
	}
}

// TestEdgeIndexContract pins the dense edge numbering: ids are a
// bijection between undirected edges and [0, M), and both half-edges of
// an edge map to the same id (matching EdgeID's canonicalization).
func TestEdgeIndexContract(t *testing.T) {
	for name, build := range allBuilders() {
		g := build()
		seen := make(map[int][2]int, g.M())
		for v := 0; v < g.N(); v++ {
			for p := 0; p < g.Degree(v); p++ {
				id := g.EdgeIndex(v, p)
				if id < 0 || id >= g.M() {
					t.Fatalf("%s: EdgeIndex(%d,%d)=%d out of [0,%d)", name, v, p, id, g.M())
				}
				eid := g.EdgeID(v, p)
				if prev, ok := seen[id]; ok {
					if prev != eid {
						t.Fatalf("%s: edge index %d maps to both %v and %v", name, id, prev, eid)
					}
				} else {
					seen[id] = eid
				}
			}
		}
		if len(seen) != g.M() {
			t.Fatalf("%s: %d distinct edge ids for %d edges", name, len(seen), g.M())
		}
	}
}
