// Command trajviz renders the structural decompositions of the paper's
// trajectories — the machine-checkable counterpart of Figures 1-4 — with
// exact lengths under the selected exploration catalog. With -walk it
// instead runs a live rendezvous through the engine and renders each
// agent's walk from the engine's observer events (no trajectory
// re-derivation).
//
// Usage:
//
//	trajviz                  # Figures 1-4 for k = 3
//	trajviz -kind Ω -k 2 -depth 2
//	trajviz -walk -graph path -n 4 -l1 2 -l2 5
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"meetpoly"
	"meetpoly/internal/buildinfo"
	"meetpoly/internal/experiments"
	"meetpoly/internal/trajectory"
)

func main() {
	kind := flag.String("kind", "", "one of R,X,Q,Y',Y,Z,A',A,B,K,Ω (empty = Figures 1-4)")
	k := flag.Int("k", 3, "trajectory parameter k")
	depth := flag.Int("depth", 2, "decomposition depth")
	maxSib := flag.Int("siblings", 6, "max siblings before eliding")
	famMax := flag.Int("family", 6, "catalog family max size")
	seed := flag.Int64("seed", 1, "catalog seed")
	walk := flag.Bool("walk", false, "run a rendezvous and render the walked trajectories from observer events")
	gkind := flag.String("graph", "path", "with -walk: path|ring|star|clique|bintree|random")
	n := flag.Int("n", 4, "with -walk: graph size")
	l1 := flag.Uint64("l1", 2, "with -walk: label of agent 1")
	l2 := flag.Uint64("l2", 5, "with -walk: label of agent 2")
	advName := flag.String("adv", "roundrobin", "with -walk: adversary spec")
	budget := flag.Int("budget", 2_000_000, "with -walk: adversary event budget")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("trajviz"))
		return
	}

	if *walk {
		runWalk(*gkind, *n, *seed, *famMax, *l1, *l2, *advName, *budget)
		return
	}

	env := meetpoly.NewEnv(*famMax, *seed)
	if *kind == "" {
		fmt.Print(experiments.F1to4(env, *k))
		return
	}
	valid := map[string]trajectory.Kind{
		"R": trajectory.KindR, "X": trajectory.KindX, "Q": trajectory.KindQ,
		"Y'": trajectory.KindYPrime, "Y": trajectory.KindY, "Z": trajectory.KindZ,
		"A'": trajectory.KindAPrime, "A": trajectory.KindA, "B": trajectory.KindB,
		"K": trajectory.KindK, "Ω": trajectory.KindOmega, "W": trajectory.KindOmega,
	}
	tk, ok := valid[*kind]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
	env.Describe(tk, *k, *depth, *maxSib).Render(os.Stdout)
}

// runWalk executes a rendezvous scenario and renders each agent's
// walked node sequence, collected purely from observer events.
func runWalk(gkind string, n int, seed int64, famMax int, l1, l2 uint64, adv string, budget int) {
	// walks[i] is agent i's node sequence; meetings are annotated as
	// they fire.
	walks := make(map[int][]int)
	var meetings []meetpoly.Meeting
	obs := &meetpoly.FuncObserver{
		Traversal: func(agent, from, to int) {
			if len(walks[agent]) == 0 {
				walks[agent] = append(walks[agent], from)
			}
			walks[agent] = append(walks[agent], to)
		},
		Meeting: func(m meetpoly.Meeting) { meetings = append(meetings, m) },
	}
	eng := meetpoly.NewEngine(
		meetpoly.WithMaxN(famMax), meetpoly.WithSeed(seed), meetpoly.WithObserver(obs))
	sc := meetpoly.Scenario{
		Name:      "trajviz-walk",
		Kind:      meetpoly.ScenarioRendezvous,
		Graph:     meetpoly.GraphSpec{Kind: gkind, N: n, Seed: seed},
		Starts:    []int{0, n - 1},
		Labels:    []meetpoly.Label{meetpoly.Label(l1), meetpoly.Label(l2)},
		Adversary: adv,
		Budget:    budget,
	}
	res, err := eng.Run(context.Background(), sc)
	if err != nil && !errors.Is(err, meetpoly.ErrBudgetExhausted) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	g, _ := sc.BuildGraph()
	fmt.Printf("walked trajectories on %s (adversary %q):\n", g, adv)
	for i := 0; i < 2; i++ {
		w := walks[i]
		const maxShow = 40
		suffix := ""
		if len(w) > maxShow {
			suffix = fmt.Sprintf(" … (%d more)", len(w)-maxShow)
			w = w[:maxShow]
		}
		fmt.Printf("  agent %d (L%d): %v%s\n", i, sc.Labels[i], w, suffix)
	}
	if res.Rendezvous.Met {
		m := res.Rendezvous.Meeting
		where := fmt.Sprintf("node %d", m.Node)
		if m.InEdge {
			where = fmt.Sprintf("edge %v", m.Edge)
		}
		fmt.Printf("meeting: %s at step %d, cost %d (observer saw %d meeting event(s))\n",
			where, m.Step, m.Cost, len(meetings))
	} else {
		fmt.Println("no meeting within budget")
	}
}
