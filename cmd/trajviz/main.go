// Command trajviz renders the structural decompositions of the paper's
// trajectories — the machine-checkable counterpart of Figures 1-4 — with
// exact lengths under the selected exploration catalog.
//
// Usage:
//
//	trajviz                  # Figures 1-4 for k = 3
//	trajviz -kind Ω -k 2 -depth 2
package main

import (
	"flag"
	"fmt"
	"os"

	"meetpoly/internal/experiments"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

func main() {
	kind := flag.String("kind", "", "one of R,X,Q,Y',Y,Z,A',A,B,K,Ω (empty = Figures 1-4)")
	k := flag.Int("k", 3, "trajectory parameter k")
	depth := flag.Int("depth", 2, "decomposition depth")
	maxSib := flag.Int("siblings", 6, "max siblings before eliding")
	famMax := flag.Int("family", 6, "catalog family max size")
	seed := flag.Int64("seed", 1, "catalog seed")
	flag.Parse()

	env := trajectory.NewEnv(uxs.NewVerified(uxs.DefaultFamily(*famMax), *seed))
	if *kind == "" {
		fmt.Print(experiments.F1to4(env, *k))
		return
	}
	valid := map[string]trajectory.Kind{
		"R": trajectory.KindR, "X": trajectory.KindX, "Q": trajectory.KindQ,
		"Y'": trajectory.KindYPrime, "Y": trajectory.KindY, "Z": trajectory.KindZ,
		"A'": trajectory.KindAPrime, "A": trajectory.KindA, "B": trajectory.KindB,
		"K": trajectory.KindK, "Ω": trajectory.KindOmega, "W": trajectory.KindOmega,
	}
	tk, ok := valid[*kind]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
	env.Describe(tk, *k, *depth, *maxSib).Render(os.Stdout)
}
