// Package graph implements the network model of Dieudonné, Pelc and
// Villain (PODC 2013): finite simple undirected connected graphs whose
// nodes are anonymous and whose edges carry local port numbers. Edges
// incident to a node v have distinct labels 0..deg(v)-1; the two endpoints
// of an edge number it independently.
//
// Agents navigating a Graph never observe node identities; they see only
// the degree of the current node and the port by which they entered it.
// Node indices exist solely so that the simulator and test harness can
// track positions.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// half is one directed half of an undirected edge: the port points at the
// neighbour to, which sees the same edge as its port toPort.
type half struct {
	to     int
	toPort int
}

// Graph is an immutable port-numbered undirected simple graph.
// The zero value is an empty graph with no nodes.
type Graph struct {
	name string
	adj  [][]half
	m    int // number of undirected edges

	// edgeIdx maps (node, port) to a dense edge identifier in [0, m),
	// built lazily on first EdgeIndex call (the graph is immutable, so
	// one build serves every caller).
	idxOnce sync.Once
	edgeIdx [][]int32

	// diam is the lazily computed diameter (see Diameter): immutability
	// makes it a per-graph constant, and outcome classifiers and oracles
	// may ask for it once per run, so the all-pairs BFS is paid once.
	diamOnce sync.Once
	diam     int
}

// Builder incrementally constructs a Graph. Nodes are added implicitly by
// AddEdge; ports are assigned at each endpoint in order of insertion.
type Builder struct {
	adj [][]half
	m   int
}

// NewBuilder returns a Builder for a graph with n isolated nodes.
func NewBuilder(n int) *Builder {
	return &Builder{adj: make([][]half, n)}
}

// AddEdge inserts the undirected edge {u, v}, assigning the next free port
// number at each endpoint. It panics on self-loops, duplicate edges or
// out-of-range endpoints: builders are driven by generator code, so a bad
// edge is a programming error, not an input error.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u < 0 || v < 0 || u >= len(b.adj) || v >= len(b.adj) {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range (n=%d)", u, v, len(b.adj)))
	}
	for _, h := range b.adj[u] {
		if h.to == v {
			panic(fmt.Sprintf("graph: duplicate edge {%d,%d}", u, v))
		}
	}
	pu, pv := len(b.adj[u]), len(b.adj[v])
	b.adj[u] = append(b.adj[u], half{to: v, toPort: pv})
	b.adj[v] = append(b.adj[v], half{to: u, toPort: pu})
	b.m++
}

// Graph finalizes the builder. The returned graph shares no state with the
// builder. name is a human-readable label used in experiment reports.
func (b *Builder) Graph(name string) *Graph {
	adj := make([][]half, len(b.adj))
	for i, hs := range b.adj {
		adj[i] = append([]half(nil), hs...)
	}
	return &Graph{name: name, adj: adj, m: b.m}
}

// N returns the number of nodes (the paper's "size" of the graph).
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Name returns the generator-assigned label of the graph.
func (g *Graph) Name() string { return g.name }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Succ returns the neighbour of v reached by leaving through port, along
// with the port by which that neighbour sees the edge (the entry port).
// This is the paper's succ(v, i), extended with the entry port that the
// model reveals to an arriving agent.
func (g *Graph) Succ(v, port int) (to, entryPort int) {
	h := g.adj[v][port]
	return h.to, h.toPort
}

// MaxDegree returns the largest degree in the graph (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Edge is an undirected edge described from both endpoints.
type Edge struct {
	U, V         int // endpoints with U < V
	PortU, PortV int // the edge's port number at U and at V
}

// Edges lists all undirected edges sorted by (U, V).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := range g.adj {
		for pu, h := range g.adj[u] {
			if u < h.to {
				es = append(es, Edge{U: u, V: h.to, PortU: pu, PortV: h.toPort})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// EdgeID returns a canonical identifier for the undirected edge leaving v
// by port, usable as a map key. The identifier is direction-independent.
func (g *Graph) EdgeID(v, port int) [2]int {
	u, _ := g.Succ(v, port)
	if u < v {
		return [2]int{u, v}
	}
	return [2]int{v, u}
}

// EdgeIndex returns a dense direction-independent identifier in [0, M())
// for the undirected edge leaving v by port. Unlike EdgeID it indexes a
// flat array instead of keying a map, which is what edge-coverage checks
// on hot paths want: covered := make([]bool, g.M()).
func (g *Graph) EdgeIndex(v, port int) int {
	g.idxOnce.Do(g.buildEdgeIndex)
	return int(g.edgeIdx[v][port])
}

// buildEdgeIndex numbers the undirected edges 0..m-1 in (min endpoint,
// port at that endpoint) discovery order and records the id at both
// endpoints' half-edges.
func (g *Graph) buildEdgeIndex() {
	idx := make([][]int32, len(g.adj))
	for v := range g.adj {
		idx[v] = make([]int32, len(g.adj[v]))
	}
	var next int32
	for v := range g.adj {
		for p, h := range g.adj[v] {
			if v < h.to {
				idx[v][p] = next
				idx[h.to][h.toPort] = next
				next++
			}
		}
	}
	g.edgeIdx = idx
}

// Equal reports whether a and b are identical port-numbered graphs:
// same node count and same (neighbour, entry port) at every port of
// every node. Builders are deterministic, so two graphs produced by the
// same generator call are Equal even though they are distinct values;
// this is what lets a shared catalog recognize a scenario-built graph as
// a member of its verified family without pointer identity.
func Equal(a, b *Graph) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.N() != b.N() || a.m != b.m {
		return false
	}
	for v := range a.adj {
		if len(a.adj[v]) != len(b.adj[v]) {
			return false
		}
		for p, h := range a.adj[v] {
			if b.adj[v][p] != h {
				return false
			}
		}
	}
	return true
}

// ErrInvalid is wrapped by all Validate failures.
var ErrInvalid = errors.New("graph: invalid")

// Validate checks the structural invariants of the model: port numbers
// contiguous per node, port symmetry (following a port and coming back by
// the reported entry port round-trips), simplicity, and connectivity.
func (g *Graph) Validate() error {
	if g.N() == 0 {
		return fmt.Errorf("%w: graph has no nodes", ErrInvalid)
	}
	for v := range g.adj {
		seen := make(map[int]bool, len(g.adj[v]))
		for p, h := range g.adj[v] {
			if h.to == v {
				return fmt.Errorf("%w: self-loop at node %d", ErrInvalid, v)
			}
			if h.to < 0 || h.to >= g.N() {
				return fmt.Errorf("%w: node %d port %d points outside the graph", ErrInvalid, v, p)
			}
			if seen[h.to] {
				return fmt.Errorf("%w: multi-edge between %d and %d", ErrInvalid, v, h.to)
			}
			seen[h.to] = true
			back := g.adj[h.to]
			if h.toPort < 0 || h.toPort >= len(back) {
				return fmt.Errorf("%w: node %d port %d: reverse port %d out of range at %d",
					ErrInvalid, v, p, h.toPort, h.to)
			}
			if r := back[h.toPort]; r.to != v || r.toPort != p {
				return fmt.Errorf("%w: port asymmetry on edge {%d,%d}", ErrInvalid, v, h.to)
			}
		}
	}
	if !g.Connected() {
		return fmt.Errorf("%w: graph is not connected", ErrInvalid)
	}
	return nil
}

// Connected reports whether the graph is connected. The empty graph is not
// connected; the single-node graph is.
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return false
	}
	seen := make([]bool, g.N())
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[v] {
			if !seen[h.to] {
				seen[h.to] = true
				count++
				stack = append(stack, h.to)
			}
		}
	}
	return count == g.N()
}

// BFSDistances returns the hop distance from src to every node
// (-1 for unreachable nodes).
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.N())
	g.bfsInto(dist, make([]int32, 0, g.N()), src)
	return dist
}

// bfsInto runs one BFS from src into the caller's dist buffer (resized
// to N, -1 for unreachable) using queue as scratch, so repeated sweeps
// — Diameter runs N of them — reuse two allocations instead of 2N.
func (g *Graph) bfsInto(dist []int, queue []int32, src int) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = append(queue[:0], int32(src))
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, h := range g.adj[v] {
			if dist[h.to] == -1 {
				dist[h.to] = dv + 1
				queue = append(queue, int32(h.to))
			}
		}
	}
}

// Diameter returns the largest pairwise hop distance, computed once per
// graph (the value is memoized: graphs are immutable). It panics if the
// graph is disconnected (validate first).
func (g *Graph) Diameter() int {
	g.diamOnce.Do(func() {
		diam := 0
		dist := make([]int, g.N())
		queue := make([]int32, 0, g.N())
		for v := 0; v < g.N(); v++ {
			g.bfsInto(dist, queue, v)
			for _, d := range dist {
				if d == -1 {
					panic("graph: Diameter on disconnected graph")
				}
				if d > diam {
					diam = d
				}
			}
		}
		g.diam = diam
	})
	return g.diam
}

// String renders a compact adjacency summary, primarily for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s{n=%d m=%d}", g.name, g.N(), g.m)
	return sb.String()
}

// DOT renders the graph in Graphviz format with port labels, so that
// failing test cases can be visualized.
func (g *Graph) DOT() string {
	var sb strings.Builder
	sb.WriteString("graph G {\n")
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %d -- %d [taillabel=\"%d\", headlabel=\"%d\"];\n",
			e.U, e.V, e.PortU, e.PortV)
	}
	sb.WriteString("}\n")
	return sb.String()
}
