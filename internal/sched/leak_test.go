package sched

import (
	"context"
	"runtime"
	"testing"
	"time"

	"meetpoly/internal/graph"
	"meetpoly/internal/trajectory"
)

// endless is an infinite port-0 stepper: co-rotation fuel for leak and
// benchmark runs.
type endless struct{}

func (endless) Next(deg, entry int) (int, bool) { return 0, true }

// blockingOnly hides the Stepper interface of a Walker, forcing the
// goroutine core for this one agent even in a mixed team.
type blockingOnly struct{ w *Walker }

func (b *blockingOnly) Run(p *Proc)        { b.w.Run(p) }
func (b *blockingOnly) Publish() any       { return b.w.Publish() }
func (b *blockingOnly) OnMeet(e Encounter) { b.w.OnMeet(e) }

// cancelAfter wraps an adversary and cancels the run's context after n
// events, leaving agents mid-flight.
type cancelAfter struct {
	inner  Adversary
	n      int
	cancel context.CancelFunc
}

func (c *cancelAfter) Next(v *View) (Event, bool) {
	if c.n--; c.n == 0 {
		c.cancel()
	}
	return c.inner.Next(v)
}

// TestRunnerCancelNoLeak cancels the context mid-run on every execution
// core combination and asserts that Runner.Close releases every agent
// goroutine: the scheduler must not leak even when blocking agents are
// parked inside Proc.Move at cancellation.
func TestRunnerCancelNoLeak(t *testing.T) {
	cases := []struct {
		name  string
		force bool
		mixed bool
	}{
		{"stepper-core", false, false},
		{"goroutine-core", true, false},
		{"mixed-team", false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var agents []Agent
			agents = append(agents, &Walker{Stepper: endless{}})
			if tc.mixed {
				agents = append(agents, &blockingOnly{w: &Walker{Stepper: endless{}}})
			} else {
				agents = append(agents, &Walker{Stepper: endless{}})
			}
			r, err := NewRunner(Config{
				Graph:          graph.Ring(6),
				Starts:         []int{0, 3},
				Agents:         agents,
				InitiallyAwake: []int{0, 1},
				MaxSteps:       1 << 30,
				Context:        ctx,
				ForceBlocking:  tc.force,
			}, &cancelAfter{inner: &RoundRobin{}, n: 100, cancel: cancel})
			if err != nil {
				t.Fatal(err)
			}
			sum := r.Run()
			if !sum.Canceled {
				t.Fatalf("run was not canceled: %+v", sum)
			}
			r.Close()
			r.Close() // idempotent
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before {
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked after Close: %d before, %d after",
						before, runtime.NumGoroutine())
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// TestMixedTeamCoresAgree runs the same instance with every dispatch
// combination — all steppers, all goroutines, and a mixed team — and
// asserts identical summaries: per-agent core selection must not change
// the execution.
func TestMixedTeamCoresAgree(t *testing.T) {
	run := func(force, mixed bool) Summary {
		g := graph.Ring(5)
		mkStepper := func() trajectory.Stepper { return script(0, 1, 0, 1, 0, 0, 1, 0) }
		var agents []Agent
		agents = append(agents, &Walker{Stepper: mkStepper()})
		if mixed {
			agents = append(agents, &blockingOnly{w: &Walker{Stepper: mkStepper()}})
		} else {
			agents = append(agents, &Walker{Stepper: mkStepper()})
		}
		r, err := NewRunner(Config{
			Graph: g, Starts: []int{0, 2}, Agents: agents,
			InitiallyAwake: []int{0, 1}, MaxSteps: 10_000,
			ForceBlocking: force,
		}, NewRandom(3))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		return r.Run()
	}
	ref := run(false, false)
	for name, sum := range map[string]Summary{
		"goroutine": run(true, false),
		"mixed":     run(false, true),
	} {
		if sum.Steps != ref.Steps || sum.TotalCost != ref.TotalCost ||
			len(sum.Meetings) != len(ref.Meetings) {
			t.Errorf("%s core diverges from stepper core: %+v vs %+v", name, sum, ref)
		}
	}
}
