package trajectory

import (
	"math/big"
	"strings"
	"testing"
	"testing/quick"

	"meetpoly/internal/graph"
	"meetpoly/internal/uxs"
)

// constCatalog has P(k) = 1 for every k (sequence [0]). It satisfies the
// Catalog contract formally (fixed length, monotone P) without any
// integrality guarantee, and makes even B, K and Ω short enough to
// execute fully, so the exact-length recurrences can be validated by
// running the real steppers to completion.
type constCatalog struct{ offset int }

func (c constCatalog) Seq(int) uxs.Sequence { return uxs.Sequence{c.offset} }
func (c constCatalog) P(int) int            { return 1 }

func testEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv(uxs.NewVerified(uxs.DefaultFamily(6), 1))
}

func mustRun(t *testing.T, g *graph.Graph, start int, s Stepper, limit int) *Trace {
	t.Helper()
	tr, done := Run(g, start, s, limit)
	if !done {
		t.Fatalf("trajectory did not complete within %d moves (got %d)", limit, tr.Moves())
	}
	return tr
}

func TestExactLengthsByExecution(t *testing.T) {
	// Run every trajectory to completion under the tiny catalog and
	// compare the observed number of moves against the symbolic lengths.
	env := NewEnv(constCatalog{})
	g := graph.Ring(5)
	cases := []struct {
		name string
		mk   func(k int) Stepper
		ln   func(k int) *big.Int
		kMax int
	}{
		{"R", func(k int) Stepper { return env.R(k) }, func(k int) *big.Int { return env.P(k) }, 4},
		{"X", env.X, env.LenX, 4},
		{"Q", env.Q, env.LenQ, 4},
		{"Y'", env.YPrime, env.LenYPrime, 4},
		{"Y", env.Y, env.LenY, 4},
		{"Z", env.Z, env.LenZ, 4},
		{"A'", env.APrime, env.LenAPrime, 3},
		{"A", env.A, env.LenA, 3},
		{"B", env.B, env.LenB, 1},
		{"K", env.K, env.LenK, 1},
	}
	for _, tc := range cases {
		for k := 1; k <= tc.kMax; k++ {
			want := tc.ln(k)
			if !want.IsInt64() || want.Int64() > 5_000_000 {
				t.Fatalf("%s(%d): length %v too large for execution test", tc.name, k, want)
			}
			tr := mustRun(t, g, 0, tc.mk(k), int(want.Int64())+10)
			if int64(tr.Moves()) != want.Int64() {
				t.Errorf("%s(%d): executed %d moves, symbolic length %v", tc.name, k, tr.Moves(), want)
			}
		}
	}
}

func TestOmegaLengthByExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("Ω(1) takes a few million steps")
	}
	env := NewEnv(constCatalog{})
	g := graph.Ring(4)
	want := env.LenOmega(1)
	if !want.IsInt64() || want.Int64() > 20_000_000 {
		t.Fatalf("Ω(1) length %v unexpectedly large", want)
	}
	tr := mustRun(t, g, 0, env.Omega(1), int(want.Int64())+10)
	if int64(tr.Moves()) != want.Int64() {
		t.Errorf("Ω(1): executed %d moves, symbolic %v", tr.Moves(), want)
	}
}

func TestVerifiedCatalogLengths(t *testing.T) {
	// Same consistency check under the real verified catalog for the
	// trajectories small enough to run.
	env := testEnv(t)
	g := graph.Ring(6)
	for k := 1; k <= 3; k++ {
		for _, tc := range []struct {
			name string
			mk   func(k int) Stepper
			ln   func(k int) *big.Int
		}{
			{"X", env.X, env.LenX},
			{"Q", env.Q, env.LenQ},
			{"Y", env.Y, env.LenY},
			{"Z", env.Z, env.LenZ},
		} {
			want := tc.ln(k).Int64()
			tr := mustRun(t, g, 2, tc.mk(k), int(want)+10)
			if int64(tr.Moves()) != want {
				t.Errorf("%s(%d): executed %d, symbolic %d", tc.name, k, tr.Moves(), want)
			}
		}
	}
}

func TestMirrorReturnsToStart(t *testing.T) {
	env := testEnv(t)
	for _, g := range []*graph.Graph{graph.Ring(5), graph.Path(6), graph.Complete(4), graph.Star(5)} {
		for start := 0; start < g.N(); start++ {
			for k := 1; k <= 3; k++ {
				for name, s := range map[string]Stepper{
					"X": env.X(k), "Y": env.Y(k), "Q": env.Q(k), "Z": env.Z(k),
				} {
					tr := mustRun(t, g, start, s, 1_000_000)
					if tr.Moves() > 0 && tr.At(tr.Moves()) != start {
						t.Fatalf("%s(%d) on %s from %d: ended at %d, want %d",
							name, k, g, start, tr.At(tr.Moves()), start)
					}
				}
			}
		}
	}
}

func TestAReturnsToStart(t *testing.T) {
	env := testEnv(t)
	g := graph.Ring(4)
	tr := mustRun(t, g, 1, env.A(2), 5_000_000)
	if tr.At(tr.Moves()) != 1 {
		t.Fatalf("A(2) ended at %d, want 1", tr.At(tr.Moves()))
	}
}

func TestQEqualsConcatOfX(t *testing.T) {
	env := testEnv(t)
	g := graph.Petersen()
	k := 3
	qTrace := mustRun(t, g, 0, env.Q(k), 100_000)
	var concat []int
	for i := 1; i <= k; i++ {
		xt := mustRun(t, g, 0, env.X(i), 100_000)
		concat = append(concat, xt.Nodes...)
	}
	if len(qTrace.Nodes) != len(concat) {
		t.Fatalf("Q(%d) length %d != concat length %d", k, len(qTrace.Nodes), len(concat))
	}
	for i := range concat {
		if qTrace.Nodes[i] != concat[i] {
			t.Fatalf("Q(%d) diverges from X-concat at move %d", k, i)
		}
	}
}

func TestXIntegralForLargeK(t *testing.T) {
	// For k >= n, X(k, v) contains the integral trajectory R(k, v), so
	// the whole graph's edge set must be covered.
	env := testEnv(t)
	for _, g := range []*graph.Graph{graph.Ring(5), graph.Path(4), graph.Complete(5), graph.Star(6)} {
		for start := 0; start < g.N(); start++ {
			tr := mustRun(t, g, start, env.X(g.N()), 1_000_000)
			if !tr.CoversAllEdges(g) {
				t.Errorf("X(%d) on %s from %d does not cover all edges", g.N(), g, start)
			}
		}
	}
}

func TestYPrimeEndsAtTrunkEnd(t *testing.T) {
	// Y'(k, v) must end where R(k, v) ends, with all excursions closed.
	env := testEnv(t)
	g := graph.Ring(6)
	k := 2
	rTrace := mustRun(t, g, 3, env.R(k), 10_000)
	ypTrace := mustRun(t, g, 3, env.YPrime(k), 100_000)
	if got, want := ypTrace.At(ypTrace.Moves()), rTrace.At(rTrace.Moves()); got != want {
		t.Errorf("Y'(%d) ends at %d, R(%d) ends at %d", k, got, k, want)
	}
}

func TestRepeatSemantics(t *testing.T) {
	env := testEnv(t)
	g := graph.Ring(4)
	single := mustRun(t, g, 0, env.X(2), 10_000)
	tripled := mustRun(t, g, 0, Repeat(func() Stepper { return env.X(2) }, big.NewInt(3)), 10_000)
	if tripled.Moves() != 3*single.Moves() {
		t.Errorf("Repeat x3: %d moves, want %d", tripled.Moves(), 3*single.Moves())
	}
	for i := 0; i < tripled.Moves(); i++ {
		if tripled.Nodes[i] != single.Nodes[i%single.Moves()] {
			t.Fatalf("Repeat x3 diverges at move %d", i)
		}
	}
	empty := mustRun(t, g, 0, Repeat(func() Stepper { return env.X(2) }, big.NewInt(0)), 10)
	if empty.Moves() != 0 {
		t.Errorf("Repeat x0 made %d moves", empty.Moves())
	}
}

func TestRepeatNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Repeat(-1): expected panic")
		}
	}()
	Repeat(func() Stepper { return NewUXS(nil) }, big.NewInt(-1))
}

func TestDeterminism(t *testing.T) {
	env := testEnv(t)
	g := graph.RandomConnected(6, 0.4, 11)
	a := mustRun(t, g, 2, env.Y(2), 1_000_000)
	b := mustRun(t, g, 2, env.Y(2), 1_000_000)
	if a.Moves() != b.Moves() {
		t.Fatal("two executions of the same trajectory differ in length")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("two executions of the same trajectory diverge")
		}
	}
}

func TestRunLimitTruncates(t *testing.T) {
	env := testEnv(t)
	g := graph.Ring(5)
	tr, done := Run(g, 0, env.Y(3), 7)
	if done {
		t.Error("Run reported completion despite truncation")
	}
	if tr.Moves() != 7 {
		t.Errorf("truncated trace has %d moves, want 7", tr.Moves())
	}
}

func TestRunOnIsolatedNode(t *testing.T) {
	g := graph.Single()
	tr, done := Run(g, 0, NewUXS(uxs.Sequence{0, 0}), 10)
	if done || tr.Moves() != 0 {
		t.Errorf("degree-0 run: moves=%d done=%v", tr.Moves(), done)
	}
}

func TestFixedLengthAcrossGraphs(t *testing.T) {
	// Property P1 lifted to composite trajectories: the number of moves
	// of any trajectory is graph-independent.
	env := testEnv(t)
	ref := mustRun(t, graph.Ring(5), 0, env.Y(2), 1_000_000).Moves()
	f := func(seed int64, startRaw uint8) bool {
		g := graph.RandomConnected(6, 0.3, seed)
		start := int(startRaw) % g.N()
		tr := mustRun(t, g, start, env.Y(2), 1_000_000)
		return tr.Moves() == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDescribeFigures(t *testing.T) {
	env := testEnv(t)
	// Figure 1: Q(k) = X(1) ... X(k).
	q := env.Describe(KindQ, 3, 1, 10)
	if len(q.Children) != 3 || q.Elided != 0 {
		t.Fatalf("Q(3) decomposition: %d children, %d elided", len(q.Children), q.Elided)
	}
	if got := env.TotalChildrenLen(q, KindQ, 3); got.Cmp(q.Len) != 0 {
		t.Errorf("Q(3): children sum %v != len %v", got, q.Len)
	}
	// Figure 2: Y'(k) has P(k)+1 Q-blocks plus trunk steps.
	yp := env.Describe(KindYPrime, 2, 1, 4)
	if got := env.TotalChildrenLen(yp, KindYPrime, 2); got.Cmp(yp.Len) != 0 {
		t.Errorf("Y'(2): children sum %v != len %v", got, yp.Len)
	}
	// Figure 3: Z(k) = Y(1) ... Y(k).
	z := env.Describe(KindZ, 4, 1, 10)
	if got := env.TotalChildrenLen(z, KindZ, 4); got.Cmp(z.Len) != 0 {
		t.Errorf("Z(4): children sum %v != len %v", got, z.Len)
	}
	// Figure 4: A'(k) = Z-blocks along the trunk.
	ap := env.Describe(KindAPrime, 2, 1, 4)
	if got := env.TotalChildrenLen(ap, KindAPrime, 2); got.Cmp(ap.Len) != 0 {
		t.Errorf("A'(2): children sum %v != len %v", got, ap.Len)
	}
	// Repetition structures: B, K, Ω.
	for _, kind := range []Kind{KindB, KindK, KindOmega} {
		d := env.Describe(kind, 2, 1, 4)
		if d.Repeat == nil || len(d.Children) != 1 {
			t.Fatalf("%s(2): want single repeated child", kind)
		}
		if got := env.TotalChildrenLen(d, kind, 2); got.Cmp(d.Len) != 0 {
			t.Errorf("%s(2): child*repeat = %v != len %v", kind, got, d.Len)
		}
	}
	// Rendering smoke test.
	var sb strings.Builder
	env.Describe(KindQ, 5, 2, 3).Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "Q(5,v)") || !strings.Contains(out, "more)") {
		t.Errorf("render output missing expected content:\n%s", out)
	}
	x := env.Describe(KindX, 2, 1, 4)
	if len(x.Children) != 2 {
		t.Errorf("X(2): want R and reverse children")
	}
	for _, kind := range []Kind{KindY, KindA} {
		d := env.Describe(kind, 2, 1, 4)
		if len(d.Children) != 2 {
			t.Errorf("%s(2): want forward and reverse children", kind)
		}
	}
}

func TestDescribeUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown kind")
		}
	}()
	testEnv(t).Describe(Kind("bogus"), 1, 0, 4)
}
