package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"meetpoly"
	"meetpoly/internal/campaign"
	"meetpoly/internal/faultinject"
	"meetpoly/internal/serve"
)

// clientSpec mirrors the serve package's 48-cell test campaign.
func clientSpec() meetpoly.SweepSpec {
	return meetpoly.SweepSpec{
		Name:  "serve",
		Seed:  "serve-v1",
		Kinds: []string{"rendezvous", "esst"},
		Graphs: []meetpoly.SweepGraphAxis{
			{Kind: "path", Sizes: []int{3, 4}},
			{Kind: "ring", Sizes: []int{4}},
		},
		StartPairs:  2,
		LabelPairs:  2,
		Adversaries: []string{"", "avoider"},
		Budget:      3000,
		Moves:       60,
	}
}

func newClientEngine() *meetpoly.Engine {
	return meetpoly.NewEngine(meetpoly.WithMaxN(6), meetpoly.WithSeed(1))
}

func referenceReport(t *testing.T) []byte {
	t.Helper()
	rep, err := newClientEngine().Sweep(context.Background(), clientSpec())
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestClientHealsFromChaos is the client half of the acceptance
// differential: a server scheduled to delay, cut the stream mid-NDJSON
// twice, and answer a 503 burst still yields — through gap-set resume
// and backoff — the byte-identical report of an uninterrupted local
// run, with every cell emitted exactly once.
func TestClientHealsFromChaos(t *testing.T) {
	spec := clientSpec()
	want := referenceReport(t)
	srv := serve.New(serve.Config{
		Engine:         newClientEngine(),
		CheckpointRoot: t.TempDir(),
		FlushEvery:     4,
		Faults:         faultinject.MustNew("delay=1:5ms,reset=6,reset=20,unavail=3x2"),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	retries := 0
	cl := New(Config{
		BaseURL:     ts.URL,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		JitterSeed:  7,
		OnRetry:     func(error, int, time.Duration) { retries++ },
	})
	var emitted campaign.IndexSet
	rep, err := cl.Sweep(context.Background(), spec, func(cr meetpoly.SweepCellResult) bool {
		if !emitted.Add(cr.Cell.Index) {
			t.Errorf("cell %d emitted twice", cr.Cell.Index)
		}
		return true
	})
	if err != nil {
		t.Fatalf("self-healing sweep failed: %v", err)
	}
	total, _ := meetpoly.CountSweep(spec)
	if emitted.Len() != total {
		t.Fatalf("emitted %d cells, want %d", emitted.Len(), total)
	}
	if retries < 3 {
		t.Fatalf("observed %d retries; the chaos schedule (2 resets + a 503 burst) implies at least 3", retries)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if got := append(out, '\n'); !bytes.Equal(got, want) {
		t.Fatal("healed report diverges from the uninterrupted local run")
	}
}

// TestClientTerminal: a refusal retrying cannot fix (413, campaign too
// large for this server) fails fast — no retries, terminal error.
func TestClientTerminal(t *testing.T) {
	srv := serve.New(serve.Config{Engine: newClientEngine(), MaxCells: 10})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	retries := 0
	cl := New(Config{BaseURL: ts.URL, OnRetry: func(error, int, time.Duration) { retries++ }})
	_, err := cl.Sweep(context.Background(), clientSpec(), nil)
	var term *terminalError
	if !errors.As(err, &term) || term.status != 413 {
		t.Fatalf("oversized campaign returned %v, want terminal 413", err)
	}
	if retries != 0 {
		t.Fatalf("terminal refusal retried %d times", retries)
	}
}

// TestClientStalls: a server that never makes progress (draining
// forever) trips MaxStalls instead of spinning.
func TestClientStalls(t *testing.T) {
	srv := serve.New(serve.Config{Engine: newClientEngine()})
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := New(Config{
		BaseURL:     ts.URL,
		MaxStalls:   3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	start := time.Now()
	_, err := cl.Sweep(context.Background(), clientSpec(), nil)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("draining server returned %v, want ErrStalled", err)
	}
	// The 503s carry Retry-After: 1; the stall cap must fire after 2
	// waits, not retry forever.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall detection took %s", elapsed)
	}
}

// TestBackoffHonorsRetryAfter: the computed wait is floored by the
// server's hint and reproducible from the jitter seed.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	a := New(Config{BaseURL: "x", BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, JitterSeed: 3})
	b := New(Config{BaseURL: "x", BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, JitterSeed: 3})
	for stalls := 1; stalls <= 5; stalls++ {
		wa := a.backoff(stalls, nil)
		if wb := b.backoff(stalls, nil); wa != wb {
			t.Fatalf("stall %d: same seed gave different waits %s vs %s", stalls, wa, wb)
		}
		if wa <= 0 || wa > 8*time.Millisecond+4*time.Millisecond {
			t.Fatalf("stall %d: wait %s outside [base, max+jitter]", stalls, wa)
		}
	}
	hinted := a.backoff(1, &retryAfterError{status: 503, hint: 2 * time.Second})
	if hinted < 2*time.Second {
		t.Fatalf("Retry-After 2s floored to %s", hinted)
	}
}
