// Command rvsim runs Algorithm RV-asynch-poly on a chosen graph under a
// chosen adversary, optionally certifying the exact worst case with the
// exhaustive lattice adversary, and can regenerate the measured tables
// E4 and E6 of EXPERIMENTS.md.
//
// Usage:
//
//	rvsim -graph path -n 4 -s1 0 -s2 3 -l1 2 -l2 5 -adv avoider
//	rvsim -certify 4000 -graph star -n 4
//	rvsim -table E4
package main

import (
	"flag"
	"fmt"
	"os"

	"meetpoly/internal/core"
	"meetpoly/internal/costmodel"
	"meetpoly/internal/experiments"
	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/sched"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

func buildGraph(kind string, n int, seed int64) (*graph.Graph, error) {
	switch kind {
	case "path":
		return graph.Path(n), nil
	case "ring":
		return graph.Ring(n), nil
	case "ring-shuffled":
		return graph.ShufflePorts(graph.Ring(n), seed), nil
	case "star":
		return graph.Star(n), nil
	case "clique":
		return graph.Complete(n), nil
	case "bintree":
		return graph.BinaryTree(n), nil
	case "random":
		return graph.RandomConnected(n, 0.3, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func main() {
	gkind := flag.String("graph", "path", "path|ring|ring-shuffled|star|clique|bintree|random")
	n := flag.Int("n", 4, "graph size")
	seed := flag.Int64("seed", 1, "seed for random/shuffled graphs and the catalog")
	s1 := flag.Int("s1", 0, "start node of agent 1")
	s2 := flag.Int("s2", -1, "start node of agent 2 (-1 = last node)")
	l1 := flag.Uint64("l1", 2, "label of agent 1")
	l2 := flag.Uint64("l2", 5, "label of agent 2")
	advName := flag.String("adv", "round-robin", "round-robin|biased|late-wake|random|avoider")
	budget := flag.Int("budget", 2_000_000, "adversary event budget")
	certify := flag.Int("certify", 0, "if > 0, certify the worst case on route prefixes of this length")
	replay := flag.Bool("replay", false, "with -certify: replay the reconstructed worst-case schedule")
	table := flag.String("table", "", "regenerate a measured table instead: E4|E4s|E6")
	famMax := flag.Int("family", 8, "catalog family max size")
	flag.Parse()

	env := trajectory.NewEnv(uxs.NewVerified(uxs.DefaultFamily(*famMax), *seed))

	if *table != "" {
		var t *experiments.Table
		switch *table {
		case "E4":
			t = experiments.E4Measured(env, experiments.DefaultRVInstances(), *budget)
		case "E4s":
			t = experiments.E4Symmetry(env, *budget)
		case "E6":
			t = experiments.E6Certified(env, experiments.DefaultRVInstances(), 4000)
		default:
			fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
			os.Exit(2)
		}
		t.Render(os.Stdout)
		return
	}

	g, err := buildGraph(*gkind, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if v, ok := env.Catalog().(*uxs.Verified); ok && !v.Covers(g) {
		v.Extend(g)
	}
	start2 := *s2
	if start2 < 0 {
		start2 = g.N() - 1
	}
	la, lb := labels.Label(*l1), labels.Label(*l2)

	if *certify > 0 {
		res, err := core.CertifyInstance(g, *s1, start2, la, lb, env, *certify)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("exhaustive adversary on %d-move prefixes: %v\n", *certify, res)
		if *replay && res.Forced {
			ra := core.Route(g, *s1, la, env, *certify)
			rb := core.Route(g, start2, lb, env, *certify)
			schedule, _, err := sched.WorstSchedule(ra, rb)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rr, err := core.Rendezvous(g, *s1, start2, la, lb, env,
				&sched.ScheduleAdversary{Schedule: schedule}, len(schedule)+10)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if rr.Met {
				fmt.Printf("replayed worst schedule: met at cost %d (certified %d)\n",
					rr.Meeting.Cost, res.WorstCompleted)
			} else {
				fmt.Println("replay inconsistency: no meeting (bug)")
				os.Exit(1)
			}
		}
		return
	}

	mkAdv, ok := sched.Strategies(2)[*advName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown adversary %q\n", *advName)
		os.Exit(2)
	}
	res, err := core.Rendezvous(g, *s1, start2, la, lb, env, mkAdv(), *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("graph=%s agents: L%d@%d vs L%d@%d adversary=%s\n",
		g, la, *s1, lb, start2, *advName)
	fmt.Printf("Theorem 3.1 bound Pi(n, |Lmin|): ~2^%.1f (%d bits)\n",
		costmodel.ApproxLog2(res.Bound), res.Bound.BitLen())
	if !res.Met {
		fmt.Printf("no meeting within %d events (budget << bound; raise -budget)\n", *budget)
		return
	}
	where := fmt.Sprintf("node %d", res.Meeting.Node)
	if res.Meeting.InEdge {
		where = fmt.Sprintf("inside edge %v", res.Meeting.Edge)
	}
	fmt.Printf("MET at %s after %d completed traversals (step %d)\n",
		where, res.Meeting.Cost, res.Meeting.Step)
	fmt.Printf("per-agent traversals: %v\n", res.Summary.Traversals)
}
