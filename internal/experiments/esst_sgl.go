package experiments

import (
	"fmt"
	"strings"

	"meetpoly/internal/esst"
	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/sched"
	"meetpoly/internal/sgl"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

// ESSTInstance is one exploration workload.
type ESSTInstance struct {
	Name          string
	Graph         *graph.Graph
	Explorer, Tok int
}

// DefaultESSTInstances returns the Theorem 2.1 workload suite.
func DefaultESSTInstances() []ESSTInstance {
	return []ESSTInstance{
		{"path2", graph.Path(2), 0, 1},
		{"path5", graph.Path(5), 0, 4},
		{"ring4", graph.Ring(4), 1, 3},
		{"ring7", graph.Ring(7), 0, 3},
		{"star6", graph.Star(6), 1, 0},
		{"clique5", graph.Complete(5), 0, 4},
		{"bintree7", graph.BinaryTree(7), 0, 6},
		{"rand8", graph.RandomConnected(8, 0.3, 57), 0, 7},
	}
}

// E5ESST reproduces Theorem 2.1: termination phase vs the 9n+3 bound,
// measured cost vs the polynomial bound, and full edge coverage.
func E5ESST(cat uxs.Catalog, instances []ESSTInstance, budget int) *Table {
	t := &Table{
		ID:    "E5",
		Title: "Procedure ESST: measured phase and cost vs Theorem 2.1 bounds",
		Columns: []string{
			"instance", "n", "m", "phase", "9n+3", "cost", "cost-bound", "E(n)", "covered",
		},
	}
	for _, in := range instances {
		if v, ok := cat.(*uxs.Verified); ok && !v.Covers(in.Graph) {
			v.Extend(in.Graph)
		}
		res, err := esst.Explore(in.Graph, in.Explorer, in.Tok, cat, &sched.RoundRobin{}, budget)
		if err != nil {
			t.AddRow(in.Name, in.Graph.N(), in.Graph.M(), "error: "+err.Error(),
				"-", "-", "-", "-", "-")
			continue
		}
		if !res.Done {
			t.AddRow(in.Name, in.Graph.N(), in.Graph.M(), "no-term", 9*in.Graph.N()+3,
				res.Cost, "-", "-", "-")
			continue
		}
		t.AddRow(in.Name, in.Graph.N(), in.Graph.M(), res.Phase, 9*in.Graph.N()+3,
			res.Cost, esst.CostBound(cat, res.Phase), res.EUpper, res.Covered)
	}
	t.Notes = append(t.Notes,
		"phase <= 9n+3 and full coverage are Theorem 2.1's claims; E(n) = cost+1 is the size bound SGL consumes")
	return t
}

// SGLInstance is one multi-agent workload.
type SGLInstance struct {
	Name   string
	Graph  *graph.Graph
	Starts []int
	Labels []labels.Label
}

// DefaultSGLInstances returns the Theorem 4.1 workload suite.
func DefaultSGLInstances() []SGLInstance {
	return []SGLInstance{
		{"path4/k2", graph.Path(4), []int{0, 3}, []labels.Label{1, 5}},
		{"path5/k2", graph.Path(5), []int{0, 4}, []labels.Label{3, 9}},
		{"star5/k3", graph.Star(5), []int{1, 2, 3}, []labels.Label{4, 2, 7}},
		{"path6/k3", graph.Path(6), []int{0, 2, 5}, []labels.Label{6, 1, 3}},
		{"rtree6/k4", graph.RandomTree(6, 2), []int{0, 3, 5, 1}, []labels.Label{8, 3, 5, 12}},
	}
}

// E8SGL reproduces Theorem 4.1: every agent outputs the complete label
// set; team size, leader, renaming and gossip all follow.
func E8SGL(env *trajectory.Env, instances []SGLInstance, budget int) *Table {
	t := &Table{
		ID:    "E8",
		Title: "Algorithm SGL: team size / leader election / renaming / gossip",
		Columns: []string{
			"instance", "n", "k", "all-output", "total-cost", "leader", "team-size", "new-names",
		},
	}
	for _, in := range instances {
		res, err := sgl.Run(sgl.Config{
			Graph:    in.Graph,
			Starts:   in.Starts,
			Labels:   in.Labels,
			Env:      env,
			MaxSteps: budget,
		})
		if err != nil {
			t.AddRow(in.Name, in.Graph.N(), len(in.Labels), "error: "+err.Error(),
				"-", "-", "-", "-")
			continue
		}
		if !res.AllOutput {
			t.AddRow(in.Name, in.Graph.N(), len(in.Labels), "no", res.TotalCost, "-", "-", "-")
			continue
		}
		names := make([]string, len(res.Agents))
		for i, a := range res.Agents {
			names[i] = fmt.Sprintf("%d->%d", a.Label, a.NewName)
		}
		t.AddRow(in.Name, in.Graph.N(), len(in.Labels), "yes", res.TotalCost,
			res.Agents[0].Leader, res.Agents[0].TeamSize, strings.Join(names, " "))
	}
	t.Notes = append(t.Notes,
		"Phase 2 horizon: PracticalBudget(3) — the paper's Pi(E(n),|L|) horizon is unwalkable; outputs are verified exactly (DESIGN.md §2.4)")
	return t
}

// F1to4 renders the structural decompositions behind the paper's four
// schematic figures.
func F1to4(env *trajectory.Env, k int) string {
	var sb strings.Builder
	figs := []struct {
		id   string
		kind trajectory.Kind
	}{
		{"Figure 1", trajectory.KindQ},
		{"Figure 2", trajectory.KindYPrime},
		{"Figure 3", trajectory.KindZ},
		{"Figure 4", trajectory.KindAPrime},
	}
	for _, f := range figs {
		fmt.Fprintf(&sb, "-- %s: structure of %s(%d, v) --\n", f.id, f.kind, k)
		env.Describe(f.kind, k, 1, 6).Render(&sb)
		sb.WriteString("\n")
	}
	return sb.String()
}
