// Package esst implements Procedure ESST (§2 of the paper): exploration
// with a semi-stationary token. A single agent cannot explore unknown
// anonymous graphs and detect termination, but with a unique token parked
// on an extended edge it can: the procedure runs phases i = 3, 6, 9, ...
// and in each phase
//
//  1. applies R(2i, v) from the phase's start node (the "trunc") and
//     aborts the phase unless the trunc is clean (every visited node has
//     degree <= i-1) and the token was seen during it;
//  2. backtracks to the trunc's first node, then for every trunc node
//     u_j applies R(i, u_j), interrupting on a token sighting, recording
//     the code (the exit-port sequence from u_j to the sighting),
//     backtracking to u_j and stepping along the trunc to u_{j+1};
//  3. aborts the phase if some R(i, u_j) ends with no sighting, or once
//     i/3 distinct codes have been recorded.
//
// A phase that completes without aborting proves (Theorem 2.1) that the
// whole graph has been traversed; the total cost on termination is a
// polynomial upper bound E(n) >= n - 1 on the size of the graph, which is
// exactly what Algorithm SGL's explorers need.
//
// The phase machinery lives in Procedure, parameterized by Hooks so that
// SGL explorers can filter token sightings by agent label; Explorer is
// the standalone agent used when the token is the only other agent.
package esst

import (
	"fmt"
	"strings"

	"meetpoly/internal/graph"
	"meetpoly/internal/sched"
	"meetpoly/internal/uxs"
)

// Explorer is the standalone ESST agent program: any meeting counts as a
// token sighting. Zero value is not usable; set Cat.
//
// Explorer implements both execution cores of DESIGN.md §2.2: Step
// drives the pull-based Machine inline (the scheduler's fast path),
// while Run executes the blocking Procedure — two independent
// realizations of the same phase loop, kept equivalent by the
// differential tests.
type Explorer struct {
	// Cat supplies exploration sequences (the R(k, ·) trajectories).
	Cat uxs.Catalog
	// MaxPhase aborts the procedure beyond this phase (safety valve for
	// misconfigured catalogs). 0 means no limit.
	MaxPhase int
	// Payload is shared at meetings (SGL stores agent info here).
	Payload any

	// Results, valid once Done.
	Done  bool
	Phase int // the phase that completed
	Cost  int // edge traversals performed by the explorer until stopping

	// TraceExits records every exit port taken, so harnesses can replay
	// the walk on the (to the agent, unknown) graph and verify coverage.
	TraceExits []int

	meetEpoch int  // incremented by every OnMeet
	withToken bool // co-located with the token right now
	curDegree int

	mach        *Machine // direct-dispatch core state (Step)
	epochAtStep int      // meetEpoch snapshot at the last Step return
	inFlight    bool     // a Step-emitted move awaits its arrival
	lastPort    int      // the port of that move
}

var _ sched.Stepper = (*Explorer)(nil)

// Publish implements sched.Agent.
func (e *Explorer) Publish() any { return e.Payload }

// OnMeet implements sched.Agent.
func (e *Explorer) OnMeet(enc sched.Encounter) {
	e.meetEpoch++
	if !enc.InEdge {
		e.withToken = true
	}
}

// Step implements sched.Stepper: the ESST main loop via Machine. The
// sighting flags mirror the Hooks wiring of Run — a meeting delivered
// since the previous decision is a sighting, and withToken is reset at
// every decision exactly like Hooks.Move does at every move.
func (e *Explorer) Step(p *sched.Proc, o sched.Observation) sched.Action {
	if e.mach == nil {
		e.mach = &Machine{Cat: e.Cat, MaxPhase: e.MaxPhase,
			PhaseHook: func(i int) { p.Phase(fmt.Sprintf("esst: phase %d", i)) }}
		e.epochAtStep = e.meetEpoch
	}
	e.curDegree = o.Degree
	if e.inFlight {
		// Record the completed traversal exactly when the goroutine
		// core's Hooks.Move does: on arrival, so an interrupted run
		// leaves the same partial trace on either core.
		e.TraceExits = append(e.TraceExits, e.lastPort)
		e.inFlight = false
	}
	sighted := e.meetEpoch > e.epochAtStep
	port, running := e.mach.Step(o.Degree, o.Entry, sighted, e.withToken)
	if !running {
		e.Done, e.Phase, e.Cost = e.mach.Done, e.mach.Phase, e.mach.Cost
		return sched.Action{Halt: true}
	}
	e.lastPort, e.inFlight = port, true
	e.withToken = false
	e.epochAtStep = e.meetEpoch
	return sched.Action{Port: port}
}

// Run implements sched.Agent: the ESST main loop via Procedure.
func (e *Explorer) Run(p *sched.Proc) {
	e.curDegree = p.Obs().Degree
	pr := &Procedure{
		Cat:      e.Cat,
		MaxPhase: e.MaxPhase,
		Hooks: Hooks{
			Move: func(port int) (sched.Observation, bool) {
				pre := e.meetEpoch
				e.withToken = false
				obs := p.Move(port)
				e.curDegree = obs.Degree
				e.TraceExits = append(e.TraceExits, port)
				sighted := e.meetEpoch > pre
				// withToken was updated by OnMeet for node meetings only;
				// an in-edge crossing leaves the agents separated.
				return obs, sighted
			},
			Degree:    func() int { return e.curDegree },
			WithToken: func() bool { return e.withToken },
			Phase:     func(i int) { p.Phase(fmt.Sprintf("esst: phase %d", i)) },
		},
	}
	ok := pr.Run()
	e.Done = ok
	e.Phase = pr.Phase
	e.Cost = pr.Cost
}

// codeOfRec renders the paper's code: the sequence of ports along the
// path from u_j to the sighting.
func codeOfRec(partial []MoveRec) string {
	var sb strings.Builder
	for _, m := range partial {
		fmt.Fprintf(&sb, "%d,", m.Exit)
	}
	return sb.String()
}

// Token is the semi-stationary token: an agent that never moves but is
// meetable (and, in SGL, carries a payload). The adversary may in the
// paper wiggle a token within its extended edge; parking it at a node is
// the special case this simulator realizes, and ESST's correctness does
// not depend on which point of the extended edge the token occupies.
type Token struct {
	Payload any
	mets    int
}

var _ sched.Stepper = (*Token)(nil)

// Run implements sched.Agent: the token halts immediately.
func (t *Token) Run(*sched.Proc) {}

// Step implements sched.Stepper: the token halts immediately.
func (t *Token) Step(*sched.Proc, sched.Observation) sched.Action {
	return sched.Action{Halt: true}
}

// Publish implements sched.Agent.
func (t *Token) Publish() any { return t.Payload }

// OnMeet implements sched.Agent.
func (t *Token) OnMeet(sched.Encounter) { t.mets++ }

// MeetCount returns how many meetings the token has witnessed.
func (t *Token) MeetCount() int { return t.mets }

// Result summarizes a standalone ESST execution.
type Result struct {
	Done    bool
	Phase   int // completing phase
	Cost    int // explorer's edge traversals
	EUpper  int // the derived upper bound on the graph size: Cost + 1
	Covered bool
	Summary sched.Summary
}

// Explore runs Procedure ESST in g with the explorer starting at
// startExplorer and the token parked at startToken, under the given
// adversary. Coverage of all edges is verified by replaying the
// explorer's port trace.
func Explore(g *graph.Graph, startExplorer, startToken int, cat uxs.Catalog,
	adv sched.Adversary, maxSteps int) (*Result, error) {
	return ExploreWith(sched.RunOpts{}, g, startExplorer, startToken, cat, adv, maxSteps)
}

// ExploreWith is Explore with cross-cutting execution options: context
// cancellation (reported in Result.Summary.Canceled) and an observer
// that additionally receives "esst: phase i" phase-change events.
func ExploreWith(opts sched.RunOpts, g *graph.Graph, startExplorer, startToken int, cat uxs.Catalog,
	adv sched.Adversary, maxSteps int) (*Result, error) {
	ex := &Explorer{Cat: cat, MaxPhase: 30*g.N() + 9}
	tok := &Token{}
	r, err := sched.NewRunner(sched.Config{
		Graph:          g,
		Starts:         []int{startExplorer, startToken},
		Agents:         []sched.Agent{ex, tok},
		InitiallyAwake: []int{0, 1},
		MaxSteps:       maxSteps,
		Context:        opts.Ctx,
		Observer:       opts.Observer,
		ForceBlocking:  opts.ForceBlocking,
	}, adv)
	if err != nil {
		return nil, fmt.Errorf("esst: %w", err)
	}
	defer r.Close()
	sum := r.Run()
	res := &Result{
		Done:    ex.Done,
		Phase:   ex.Phase,
		Cost:    ex.Cost,
		EUpper:  ex.Cost + 1,
		Summary: sum,
	}
	if ex.Done {
		res.Covered = CoversAllEdges(g, startExplorer, ex.TraceExits)
	}
	return res, nil
}

// CoversAllEdges replays an exit-port trace from start and reports
// whether every edge of g was traversed.
func CoversAllEdges(g *graph.Graph, start int, exits []int) bool {
	covered := make(map[[2]int]bool, g.M())
	cur := start
	for _, port := range exits {
		covered[g.EdgeID(cur, port)] = true
		cur, _ = g.Succ(cur, port)
	}
	return len(covered) == g.M()
}

// CostBound returns this implementation's per-run cost bound for a
// terminating phase i: each phase j <= i walks the trunc at most three
// times (forward, backtrack, and once more distributed over the
// node-to-node steps) plus at most 2 P(j) moves per trunc node
// (probe + backtrack), i.e.
//
//	sum_{j in 3,6,...,i} [ 4 P(2j) + (P(2j)+1) * 2 P(j) ].
//
// It plays the role of the paper's (i/3)(3P(2i) + P(2i)P(i)) estimate,
// with this package's exact walking pattern.
func CostBound(cat uxs.Catalog, phase int) int {
	total := 0
	for j := 3; j <= phase; j += 3 {
		p2j, pj := cat.P(2*j), cat.P(j)
		total += 4*p2j + (p2j+1)*2*pj
	}
	return total
}
