package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// HotAllocAnalyzer guards the scheduler's allocation-free hot path. A
// function annotated
//
//	//rvlint:hotpath
//
// in its doc comment must contain no allocation source: the half-step
// dispatch loop runs ~17ns/event with ~0.002 allocs/event
// (BENCH_sched.json v2), and a single fmt call or escaping append in it
// erases that floor. rvbench -check catches regressions after the
// fact; this analyzer catches them in review.
//
// Flagged constructs: fmt.* calls, make/new, slice and map literals,
// &composite literals, append, string concatenation and string<->[]byte
// conversions, closures, go statements, defers, and interface boxing of
// non-pointer values (call arguments and assignments). Cold branches
// inside a hot function (validation panics, error paths) belong in a
// separate un-annotated function; genuinely amortized allocations (a
// reused buffer that grows to a steady-state size) carry a
// //lint:allow hotalloc with a justification.
//
// The check is lexical and per-function: calls out of the hot function
// are not followed — annotate every function on the per-event path.
var HotAllocAnalyzer = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "flag allocation sources inside functions annotated //rvlint:hotpath",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) (any, error) {
	rep := newReporter(pass, "hotalloc")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || !funcHasDirective(decl, "rvlint:hotpath") {
			return
		}
		checkHotBody(pass, rep, decl)
	})
	return nil, nil
}

func checkHotBody(pass *analysis.Pass, rep *reporter, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			rep.reportf(x.Pos(), "hotpath: closure literal allocates; hoist it or restructure")
			return false
		case *ast.GoStmt:
			rep.reportf(x.Pos(), "hotpath: go statement allocates a goroutine")
		case *ast.DeferStmt:
			rep.reportf(x.Pos(), "hotpath: defer in a hot function adds per-call overhead and may allocate")
		case *ast.CompositeLit:
			switch types.Unalias(info.TypeOf(x)).Underlying().(type) {
			case *types.Slice, *types.Map:
				rep.reportf(x.Pos(), "hotpath: slice/map literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					rep.reportf(x.Pos(), "hotpath: &composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := info.TypeOf(x.X); t != nil {
					if b, ok := types.Unalias(t).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						rep.reportf(x.Pos(), "hotpath: string concatenation allocates")
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, rep, x)
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if len(x.Lhs) != len(x.Rhs) {
					break
				}
				checkBoxing(pass, rep, info.TypeOf(x.Lhs[i]), rhs, "assignment to interface")
			}
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, rep *reporter, call *ast.CallExpr) {
	info := pass.TypesInfo
	switch {
	case isBuiltin(info, call, "make"):
		rep.reportf(call.Pos(), "hotpath: make allocates")
		return
	case isBuiltin(info, call, "new"):
		rep.reportf(call.Pos(), "hotpath: new allocates")
		return
	case isBuiltin(info, call, "append"):
		rep.reportf(call.Pos(), "hotpath: append may grow and allocate; pre-size the buffer outside the hot path")
		return
	}
	// Conversions: string <-> []byte/[]rune copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		if isStringByteConv(to, from) {
			rep.reportf(call.Pos(), "hotpath: string/[]byte conversion copies and allocates")
		}
		return
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		rep.reportf(call.Pos(), "hotpath: fmt.%s allocates; move formatting to a cold helper", fn.Name())
		return // don't also flag the boxed arguments of the same call
	}
	// Interface boxing of call arguments.
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := types.Unalias(sigT).Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := types.Unalias(last).Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		} else if i < sig.Params().Len() {
			pt = sig.Params().At(i).Type()
		}
		checkBoxing(pass, rep, pt, arg, "argument boxed into interface")
	}
}

// checkBoxing reports a concrete non-pointer value converted to an
// interface type: the value is copied to the heap to fit behind the
// interface word.
func checkBoxing(pass *analysis.Pass, rep *reporter, dst types.Type, src ast.Expr, what string) {
	if dst == nil {
		return
	}
	if _, ok := types.Unalias(dst).Underlying().(*types.Interface); !ok {
		return
	}
	st := pass.TypesInfo.TypeOf(src)
	if st == nil {
		return
	}
	st = types.Unalias(st)
	switch st.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return // already boxed, or pointer-shaped (fits the iface word)
	case *types.Basic:
		if st.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return
		}
	}
	rep.reportf(src.Pos(), "hotpath: %s (%s) copies the value to the heap", what, st)
}

func isStringByteConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := types.Unalias(t).Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := types.Unalias(t).Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isBytes(from)) || (isBytes(to) && isStr(from))
}
