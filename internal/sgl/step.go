package sgl

import (
	"meetpoly/internal/esst"
	"meetpoly/internal/sched"
)

// stepState is the direct-dispatch program counter of an SGL agent:
// the states of agent.Step, which realizes the same program as the
// blocking agent.Run as an explicit resumable state machine. Every
// emitting state names the state that processes the emitted move's
// arrival, mirroring the esst.Machine convention.
type stepState uint8

const (
	ssInit       stepState = iota // first Step call: set up RV, announce traveller
	ssTravDecide                  // at a node: apply transition rules, emit next RV move
	ssTravArr                     // traveller RV move arrival
	ssP1                          // phase 1: drive the ESST machine
	ssP2Back                      // phase 2: backtrack the phase-1 walk
	ssP2BackArr                   // backtrack move arrival (abort check)
	ssP2RV                        // phase 2: resume RV within the budget
	ssP2RVArr                     // RV move arrival (abort check)
	ssP3Start                     // phase 3 dispatch: sweep or seek
	ssSweepMove                   // min-label sweep along R(E(n), s)
	ssSweepArr                    // sweep move arrival
	ssBounceArr1                  // bounce-out arrival: emit the bounce-back
	ssBounceArr2                  // bounce-back arrival: start the backtrack
	ssSweepBack                   // reverse the sweep, then output
	ssSeekMove                    // seeker sweep until the token is sighted
	ssSeekArr                     // seek move arrival (sighting check)
	ssSeekFound                   // co-located with the token: park or adopt
	ssHalted
)

var _ sched.Stepper = (*agent)(nil)

// halt ends the agent's program on the direct-dispatch core, mirroring
// the finalState-recording defer of Run.
func (a *agent) halt() sched.Action {
	a.finalState = a.state
	a.ss = ssHalted
	return sched.Action{Halt: true}
}

// emit hands one move to the runner, resetting the per-move token flags
// exactly like the blocking core's move helper does at move start.
func (a *agent) emit(port int, arr stepState) sched.Action {
	a.lastExit = port
	a.ss = arr
	a.tokenSighted = false
	a.withToken = false
	return sched.Action{Port: port}
}

// enterPhase1 starts the explorer's ESST machine (phase 1).
func (a *agent) enterPhase1(p *sched.Proc) {
	p.Phase("sgl: explorer phase 1 (ESST)")
	a.mach = &esst.Machine{Cat: a.cat}
	a.ss = ssP1
}

// Step implements sched.Stepper: the SGL state machine, program-
// equivalent to the blocking Run (the differential campaign pins the
// two against each other through both execution cores).
func (a *agent) Step(p *sched.Proc, o sched.Observation) sched.Action {
	a.curDeg = o.Degree
	for {
		switch a.ss {
		case ssInit:
			a.rv = a.newRV()
			p.Phase("sgl: traveller")
			a.ss = ssTravDecide

		case ssTravDecide:
			for len(a.pending) > 0 {
				enc := a.pending[0]
				a.pending = a.pending[1:]
				if a.decideTraveller(enc) {
					a.pending = nil
					break
				}
			}
			if a.state == StateGhost {
				p.Phase("sgl: ghost")
				if a.final && !a.hasOutput {
					a.setOutput()
				}
				return a.halt() // park forever; OnMeet keeps serving
			}
			if a.state == StateExplorer {
				a.enterPhase1(p)
				continue
			}
			port, ok := a.rv.Next(a.curDeg, a.rvEntry)
			if !ok {
				a.failure = "traveller: RV schedule exhausted (impossible)"
				// Mirror Run: a failed traveller still walks the
				// explorer phases.
				a.enterPhase1(p)
				continue
			}
			return a.emit(port, ssTravArr)

		case ssTravArr:
			a.rvCount++
			a.rvEntry = o.Entry
			a.ss = ssTravDecide

		case ssP1:
			port, running := a.mach.Step(o.Degree, o.Entry, a.tokenSighted, a.withToken)
			if running {
				return a.emit(port, ssP1)
			}
			a.eBound = a.mach.Cost + 1
			a.phase1Trace = a.mach.Trace
			p.Phase("sgl: explorer phase 2 (resume RV)")
			if a.minBag() < a.label {
				a.ss = ssP3Start // abort immediately; phase 3 starts here
				continue
			}
			a.btIdx = len(a.phase1Trace) - 1
			a.ss = ssP2Back

		case ssP2Back:
			if a.btIdx < 0 {
				a.p2budget = a.phase2Budget(a.eBound, a.label)
				a.ss = ssP2RV
				continue
			}
			port := a.phase1Trace[a.btIdx].Entry
			a.btIdx--
			return a.emit(port, ssP2BackArr)

		case ssP2BackArr:
			if a.minBag() < a.label {
				a.ss = ssP3Start // abort as soon as at a node
				continue
			}
			a.ss = ssP2Back

		case ssP2RV:
			if a.rvCount >= a.p2budget {
				a.ss = ssP3Start
				continue
			}
			port, ok := a.rv.Next(a.curDeg, a.rvEntry)
			if !ok {
				a.failure = "phase2: RV schedule exhausted (impossible)"
				a.ss = ssP3Start
				continue
			}
			return a.emit(port, ssP2RVArr)

		case ssP2RVArr:
			a.rvCount++
			a.rvEntry = o.Entry
			if a.minBag() < a.label {
				a.ss = ssP3Start
				continue
			}
			a.ss = ssP2RV

		case ssP3Start:
			p.Phase("sgl: explorer phase 3 (seek/sweep)")
			a.sweepSeq = a.cat.Seq(a.eBound)
			a.sweepIdx, a.sweepEntry = 0, 0
			if a.minBag() < a.label {
				if a.withToken {
					a.ss = ssSeekFound
					continue
				}
				a.ss = ssSeekMove
				continue
			}
			a.sweepRec = a.sweepRec[:0]
			a.ss = ssSweepMove

		case ssSweepMove:
			if a.sweepIdx == len(a.sweepSeq) {
				a.final = true
				if len(a.sweepRec) > 0 {
					// Bounce out and back to refresh the contact with a
					// ghost parked at the sweep's far end (see phase3).
					last := a.sweepRec[len(a.sweepRec)-1]
					return a.emit(last.Entry, ssBounceArr1)
				}
				a.btIdx = -1
				a.ss = ssSweepBack
				continue
			}
			x := a.sweepSeq[a.sweepIdx]
			a.sweepIdx++
			return a.emit((a.sweepEntry+x)%a.curDeg, ssSweepArr)

		case ssSweepArr:
			a.sweepRec = append(a.sweepRec, esst.MoveRec{Exit: a.lastExit, Entry: o.Entry})
			a.sweepEntry = o.Entry
			a.ss = ssSweepMove

		case ssBounceArr1:
			return a.emit(o.Entry, ssBounceArr2)

		case ssBounceArr2:
			a.btIdx = len(a.sweepRec) - 1
			a.ss = ssSweepBack

		case ssSweepBack:
			if a.btIdx < 0 {
				a.setOutput()
				return a.halt()
			}
			port := a.sweepRec[a.btIdx].Entry
			a.btIdx--
			return a.emit(port, ssSweepBack)

		case ssSeekMove:
			if a.sweepIdx == len(a.sweepSeq) {
				a.failure = "phase3: token not found during R(E(n)) sweep"
				return a.halt()
			}
			x := a.sweepSeq[a.sweepIdx]
			a.sweepIdx++
			return a.emit((a.sweepEntry+x)%a.curDeg, ssSeekArr)

		case ssSeekArr:
			a.sweepEntry = o.Entry
			if a.tokenSighted {
				a.ss = ssSeekFound
				continue
			}
			a.ss = ssSeekMove

		case ssSeekFound:
			if a.tokenHasOutput {
				a.setOutput()
				return a.halt()
			}
			a.state = StateGhost
			if a.final && !a.hasOutput {
				a.setOutput()
			}
			return a.halt()

		default: // ssHalted
			return sched.Action{Halt: true}
		}
	}
}
