// Package coord is the campaign coordinator: the fault-tolerance layer
// that turns a fleet of unreliable rvserved workers into one reliable
// sweep. One coordinator owns a single campaign's index space as a
// campaign.IndexSet of unfinished cells and hands out bounded,
// time-limited shard leases over HTTP. Workers pull a lease, execute
// exactly its ranges through serve.RunShard, stream the results back,
// and heartbeat while they work. A worker that dies — crash, kill -9,
// network partition — simply stops heartbeating; its lease expires and
// the cells return to the pool for reassignment.
//
// Reassignment is safe by construction, not by protocol care: cells
// are pure functions of their seed strings, campaign.Aggregator
// dedupes by cell index (a cell executed by both the dead worker and
// its replacement folds once), and a worker's checkpoint recovery
// trusts only sealed ranges. The coordinator therefore never needs to
// know whether a dead worker "really" finished anything — whatever
// result bytes arrive, from live or stale leases, fold idempotently,
// and the campaign is done exactly when the done-set covers [0, total).
//
// Protocol (all request/response bodies JSON unless noted):
//
//	GET  /v1/spec               the campaign spec workers must run
//	POST /v1/lease?worker=name  acquire work: {status:"lease"|"wait"|"done", ...}
//	POST /v1/heartbeat?lease=ID extend a lease; 410 once it has expired
//	POST /v1/complete?lease=ID  NDJSON cell results; accepted even stale
//	GET  /v1/status             progress counters
//	GET  /v1/report             final report; 409 + Retry-After until done
//	GET  /healthz               200 ok (with the build version)
//	GET  /metrics               Prometheus text exposition
package coord

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"meetpoly"
	"meetpoly/internal/buildinfo"
	"meetpoly/internal/campaign"
	"meetpoly/internal/telemetry/logx"
)

// Config configures a Coordinator.
type Config struct {
	// Spec is the one campaign this coordinator drives.
	Spec meetpoly.SweepSpec

	// LeaseCells bounds how many cells one lease grants; <= 0 means
	// DefaultLeaseCells. Small leases spread reassignment cost, large
	// leases amortize HTTP round-trips.
	LeaseCells int

	// LeaseTTL is how long a lease lives without a heartbeat; <= 0
	// means DefaultLeaseTTL. A worker heartbeats at TTL/3, so one lost
	// heartbeat does not kill a healthy lease, while a dead worker's
	// cells return to the pool within one TTL.
	LeaseTTL time.Duration

	// RetryAfter is the Retry-After hint (in the wait response and the
	// 409 on a premature report fetch); <= 0 means DefaultRetryAfter.
	RetryAfter time.Duration

	// Clock is the time source, injectable so tests expire leases
	// without sleeping. Nil means time.Now.
	Clock func() time.Time

	// Metrics receives the coordinator's lease-lifecycle series and
	// pool-state gauges, and backs the /metrics endpoint. Nil means a
	// private registry (so /metrics always works).
	Metrics *meetpoly.Metrics

	// Log receives lease-lifecycle events (grants, expiries, stale
	// completes). Nil logs nothing.
	Log *logx.Logger
}

// Coordinator tuning defaults.
const (
	DefaultLeaseCells = 16
	DefaultLeaseTTL   = 10 * time.Second
	DefaultRetryAfter = time.Second
)

// lease is one outstanding grant: a set of cell intervals owned by one
// worker until expiry.
type lease struct {
	id      string
	worker  string
	set     campaign.IndexSet
	expires time.Time
}

// Coordinator owns one campaign's progress state. Safe for concurrent
// use by any number of workers.
type Coordinator struct {
	cfg   Config
	total int
	m     *coordMetrics
	log   *logx.Logger

	mu     sync.Mutex
	done   campaign.IndexSet // cells whose results have been folded
	leases map[string]*lease
	agg    *campaign.Aggregator
	nextID int
	report []byte
}

// New validates the spec and builds a coordinator over its expansion.
func New(cfg Config) (*Coordinator, error) {
	total, err := meetpoly.CountSweep(cfg.Spec)
	if err != nil {
		return nil, err
	}
	if cfg.LeaseCells <= 0 {
		cfg.LeaseCells = DefaultLeaseCells
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Metrics == nil {
		cfg.Metrics = meetpoly.NewMetrics()
	}
	c := &Coordinator{
		cfg:    cfg,
		total:  total,
		log:    cfg.Log,
		leases: make(map[string]*lease),
		agg:    campaign.NewAggregator(cfg.Spec, nil),
	}
	c.m = newCoordMetrics(c, cfg.Metrics)
	return c, nil
}

// Done reports whether every cell's result has been folded.
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done.Len() == c.total
}

// expireLocked reclaims every lease past its deadline. The reclaimed
// cells need no bookkeeping: the free pool is recomputed as the gaps
// of done ∪ live-leases, so dropping the lease IS the reassignment.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if now.After(l.expires) {
			delete(c.leases, id)
			c.m.expired.Inc()
			c.log.Warn("lease expired",
				logx.F("lease", id), logx.F("worker", l.worker),
				logx.F("cells", int64(l.set.Len())))
		}
	}
}

// LeaseResponse is the body of POST /v1/lease.
type LeaseResponse struct {
	// Status is "lease" (Ranges granted), "wait" (everything is leased
	// out but the campaign is unfinished — retry after RetryMs), or
	// "done" (no work will ever be granted again).
	Status  string              `json:"status"`
	Lease   string              `json:"lease,omitempty"`
	Ranges  []campaign.Interval `json:"ranges,omitempty"`
	TTLMs   int64               `json:"ttl_ms,omitempty"`
	RetryMs int64               `json:"retry_ms,omitempty"`
}

// Lease grants up to LeaseCells unfinished, unleased cells to worker.
func (c *Coordinator) Lease(worker string) LeaseResponse {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	if c.done.Len() == c.total {
		return LeaseResponse{Status: "done"}
	}

	// Free pool = gaps of (done ∪ every live lease). Grant the first
	// gap(s), clipped to the lease budget.
	var taken campaign.IndexSet
	taken.AddSet(&c.done)
	for _, l := range c.leases {
		taken.AddSet(&l.set)
	}
	var grant campaign.IndexSet
	budget := c.cfg.LeaseCells
	for _, gap := range taken.Gaps(0, c.total) {
		if budget <= 0 {
			break
		}
		hi := min(gap.Hi, gap.Lo+budget)
		grant.AddRange(gap.Lo, hi)
		budget -= hi - gap.Lo
	}
	if grant.Len() == 0 {
		c.m.waits.Inc()
		return LeaseResponse{Status: "wait", RetryMs: c.cfg.RetryAfter.Milliseconds()}
	}

	c.nextID++
	l := &lease{
		id:      fmt.Sprintf("L%d", c.nextID),
		worker:  worker,
		set:     grant,
		expires: now.Add(c.cfg.LeaseTTL),
	}
	c.leases[l.id] = l
	c.m.granted.Inc()
	c.log.Debug("lease granted",
		logx.F("lease", l.id), logx.F("worker", worker),
		logx.F("cells", int64(grant.Len())))
	return LeaseResponse{
		Status: "lease",
		Lease:  l.id,
		Ranges: grant.Ranges(),
		TTLMs:  c.cfg.LeaseTTL.Milliseconds(),
	}
}

// Heartbeat extends a lease to now+TTL. False means the lease is gone
// (expired and reclaimed, or never existed): the worker should abandon
// the run — anything it still sends via Complete folds harmlessly.
func (c *Coordinator) Heartbeat(id string) bool {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	l, ok := c.leases[id]
	if !ok {
		c.m.heartbeatMisses.Inc()
		return false
	}
	l.expires = now.Add(c.cfg.LeaseTTL)
	c.m.heartbeats.Inc()
	return true
}

// Complete folds a batch of cell results, marking each result's own
// index done. The lease ID is advisory: results from an expired or
// unknown lease are accepted anyway — the work is real whoever did it,
// and the aggregator's duplicate guard makes a double fold a no-op.
// Canceled cells are rejected as a protocol error: a canceled outcome
// is not a result, and folding it would wedge the campaign (the
// aggregator's duplicate guard would then drop the real result).
func (c *Coordinator) Complete(id string, results []campaign.CellResult) (accepted int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cr := range results {
		if cr.Outcome.Canceled {
			return accepted, fmt.Errorf("coord: lease %s: canceled cell %d submitted as a result", id, cr.Cell.Index)
		}
		if cr.Cell.Index < 0 || cr.Cell.Index >= c.total {
			return accepted, fmt.Errorf("coord: lease %s: cell index %d outside [0, %d)", id, cr.Cell.Index, c.total)
		}
		c.agg.Add(cr)
		c.done.Add(cr.Cell.Index)
		accepted++
	}
	c.m.completes.Inc()
	c.m.cellsAccepted.Add(uint64(accepted))
	if _, live := c.leases[id]; !live {
		// The work is real whoever did it: a reassigned lease's original
		// worker reporting late still folds (the duplicate guard makes a
		// double fold a no-op), but the staleness is worth counting.
		c.m.staleCompletes.Inc()
		c.log.Info("stale complete accepted",
			logx.F("lease", id), logx.F("cells", int64(accepted)))
	} else {
		c.log.Debug("lease completed",
			logx.F("lease", id), logx.F("cells", int64(accepted)))
	}
	// Whatever the lease still owed returns to the pool; a partial
	// completion (worker drained mid-lease) re-leases just the rest.
	delete(c.leases, id)
	return accepted, nil
}

// Report renders the final report bytes — the exact bytes a
// single-process `rvsweep -json` run of the same spec prints — once
// the campaign is complete. Before that it returns false.
func (c *Coordinator) Report() ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done.Len() != c.total {
		return nil, false
	}
	if c.report == nil {
		out, err := json.MarshalIndent(c.agg.Report(), "", "  ")
		if err != nil {
			// Report marshaling is infallible for our types; keep the
			// invariant visible rather than silently caching nothing.
			panic(fmt.Sprintf("coord: marshaling final report: %v", err))
		}
		c.report = append(out, '\n')
	}
	return c.report, true
}

// Status is the body of GET /v1/status.
type Status struct {
	Total   int      `json:"total"`
	Done    int      `json:"done"`
	Leased  int      `json:"leased"`
	Workers []string `json:"workers"`
	Granted int64    `json:"leases_granted"`
	Expired int64    `json:"leases_expired"`
}

// StatusNow snapshots progress.
func (c *Coordinator) StatusNow() Status {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	st := Status{
		Total:   c.total,
		Done:    c.done.Len(),
		Granted: int64(c.m.granted.Value()),
		Expired: int64(c.m.expired.Value()),
	}
	seen := map[string]bool{}
	for _, l := range c.leases {
		st.Leased += l.set.Len()
		if !seen[l.worker] {
			seen[l.worker] = true
			st.Workers = append(st.Workers, l.worker)
		}
	}
	sort.Strings(st.Workers)
	return st
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/spec", func(w http.ResponseWriter, r *http.Request) {
		out, err := meetpoly.SweepSpecJSON(c.cfg.Spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(out, '\n'))
	})
	mux.HandleFunc("/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		worker := r.URL.Query().Get("worker")
		if worker == "" {
			worker = "anonymous"
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Lease(worker))
	})
	mux.HandleFunc("/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if !c.Heartbeat(r.URL.Query().Get("lease")) {
			http.Error(w, "lease expired or unknown", http.StatusGone)
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var results []campaign.CellResult
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var cr campaign.CellResult
			if err := json.Unmarshal(line, &cr); err != nil {
				http.Error(w, fmt.Sprintf("bad result line: %v", err), http.StatusBadRequest)
				return
			}
			results = append(results, cr)
		}
		if err := sc.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n, err := c.Complete(r.URL.Query().Get("lease"), results)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"accepted\": %d}\n", n)
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.StatusNow())
	})
	mux.HandleFunc("/v1/report", func(w http.ResponseWriter, r *http.Request) {
		out, ok := c.Report()
		if !ok {
			st := c.StatusNow()
			w.Header().Set("Retry-After", strconv.Itoa(int(max(c.cfg.RetryAfter/time.Second, 1))))
			http.Error(w, fmt.Sprintf("campaign incomplete: %d/%d cells done", st.Done, st.Total), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok %s %s\n", buildinfo.Version, buildinfo.Revision())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.cfg.Metrics.WritePrometheus(w) //nolint:errcheck // best-effort over HTTP
	})
	return mux
}
