package coord

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"meetpoly"
)

// TestCoordinatorMetrics drives the lease lifecycle with a fake clock
// and checks every transition lands on its /metrics series — and that
// the leases_granted/leases_expired numbers /v1/status reports are the
// very same counters (they read the same handles, so they cannot
// disagree).
func TestCoordinatorMetrics(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	reg := meetpoly.NewMetrics()
	c, err := New(Config{Spec: coordSpec(), LeaseCells: 16, LeaseTTL: 10 * time.Second, Clock: clock, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	l1 := c.Lease("w1")
	l2 := c.Lease("w2")
	if l1.Status != "lease" || l2.Status != "lease" {
		t.Fatalf("leases not granted: %+v %+v", l1, l2)
	}
	if !c.Heartbeat(l1.Lease) {
		t.Fatal("live heartbeat refused")
	}
	now = now.Add(11 * time.Second) // both leases expire (l1's beat was at t0)
	if c.Heartbeat(l2.Lease) {
		t.Fatal("expired heartbeat accepted")
	}

	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exp := string(body)

	st := c.StatusNow()
	for series, want := range map[string]int64{
		"meetpoly_coord_leases_granted_total":   st.Granted,
		"meetpoly_coord_leases_expired_total":   st.Expired,
		"meetpoly_coord_heartbeats_total":       1,
		"meetpoly_coord_heartbeat_misses_total": 1,
		"meetpoly_coord_cells_total":            int64(c.total),
		"meetpoly_coord_cells_done":             0,
		"meetpoly_coord_cells_leased":           0,
		"meetpoly_coord_live_leases":            0,
	} {
		found := false
		for _, line := range strings.Split(exp, "\n") {
			if name, val, ok := strings.Cut(line, " "); ok && name == series {
				found = true
				if wantS := strconv.FormatInt(want, 10); val != wantS {
					t.Errorf("%s = %s, want %s", series, val, wantS)
				}
			}
		}
		if !found {
			t.Errorf("series %s missing from exposition", series)
		}
	}
	if st.Granted != 2 || st.Expired != 2 {
		t.Fatalf("status granted=%d expired=%d, want 2/2", st.Granted, st.Expired)
	}
}

// TestCoordinatorHealthz pins the health probe surface rvcoord's fleet
// scripts curl: 200 with the build identity on the line.
func TestCoordinatorHealthz(t *testing.T) {
	c, err := New(Config{Spec: coordSpec()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ok ") {
		t.Fatalf("healthz = %d %q, want 200 \"ok <version> <revision>\"", resp.StatusCode, body)
	}
}
