package serve

import (
	"meetpoly"
	"meetpoly/internal/telemetry"
)

// serveMetrics holds the service layer's pre-resolved metric handles.
// Handle lookup pays the registry mutex once at construction; request
// and checkpoint paths record through lock-free handles only.
type serveMetrics struct {
	served   *telemetry.Counter // completed sweep requests (the /v1/stats "served")
	inflight *telemetry.Gauge   // in-flight sweeps (the /v1/stats "inflight")

	sweepReqs   *telemetry.Counter   // /v1/sweep requests
	reportReqs  *telemetry.Counter   // /v1/sweep/report requests
	sweepNs     *telemetry.Histogram // /v1/sweep latency
	reportNs    *telemetry.Histogram // /v1/sweep/report latency
	streamLines *telemetry.Counter   // NDJSON lines flushed to clients

	refused429 *telemetry.Counter // tenant quota refusals
	refused503 *telemetry.Counter // draining / chaos unavailability
	refused409 *telemetry.Counter // checkpoint-dir conflicts
	refused413 *telemetry.Counter // MaxCells admission rejections
}

func newServeMetrics(reg *meetpoly.Metrics) *serveMetrics {
	if reg == nil {
		return nil
	}
	m := &serveMetrics{}
	m.served = reg.Counter("meetpoly_serve_sweeps_served_total",
		"Completed sweep requests (the /v1/stats served counter).")
	m.inflight = reg.Gauge("meetpoly_serve_inflight_sweeps",
		"Admitted sweep requests currently executing (the /v1/stats inflight gauge).")
	m.sweepReqs = reg.Counter("meetpoly_serve_requests_total",
		"Sweep requests received, by endpoint.", telemetry.L("endpoint", "sweep"))
	m.reportReqs = reg.Counter("meetpoly_serve_requests_total",
		"Sweep requests received, by endpoint.", telemetry.L("endpoint", "report"))
	m.sweepNs = reg.Histogram("meetpoly_serve_request_ns",
		"Sweep request wall time in nanoseconds, by endpoint.", telemetry.L("endpoint", "sweep"))
	m.reportNs = reg.Histogram("meetpoly_serve_request_ns",
		"Sweep request wall time in nanoseconds, by endpoint.", telemetry.L("endpoint", "report"))
	m.streamLines = reg.Counter("meetpoly_serve_stream_lines_total",
		"NDJSON result lines flushed to streaming clients.")
	m.refused429 = reg.Counter("meetpoly_serve_refusals_total",
		"Refused sweep requests, by HTTP status.", telemetry.L("code", "429"))
	m.refused503 = reg.Counter("meetpoly_serve_refusals_total",
		"Refused sweep requests, by HTTP status.", telemetry.L("code", "503"))
	m.refused409 = reg.Counter("meetpoly_serve_refusals_total",
		"Refused sweep requests, by HTTP status.", telemetry.L("code", "409"))
	m.refused413 = reg.Counter("meetpoly_serve_refusals_total",
		"Refused sweep requests, by HTTP status.", telemetry.L("code", "413"))
	return m
}

// refused tallies one admission refusal by status code (nil-safe).
func (m *serveMetrics) refused(code int) {
	if m == nil {
		return
	}
	switch code {
	case 429:
		m.refused429.Inc()
	case 503:
		m.refused503.Inc()
	case 409:
		m.refused409.Inc()
	case 413:
		m.refused413.Inc()
	}
}

// shardMetrics holds the checkpoint/runner layer's handles — the
// durable-write observability RunShard threads into each Checkpoint it
// opens. A nil *shardMetrics (no registry configured) records nothing.
type shardMetrics struct {
	cellsRun  *telemetry.Counter   // freshly executed cells
	recovered *telemetry.Counter   // cells replayed from a checkpoint
	recorded  *telemetry.Counter   // cells staged into a checkpoint
	flushes   *telemetry.Counter   // durable checkpoint flushes
	flushNs   *telemetry.Histogram // whole-Flush wall time
	fsyncNs   *telemetry.Histogram // individual fsync wall time
	poisoned  *telemetry.Counter   // checkpoints poisoned by a failed write/fsync
}

func newShardMetrics(reg *meetpoly.Metrics) *shardMetrics {
	if reg == nil {
		return nil
	}
	return &shardMetrics{
		cellsRun: reg.Counter("meetpoly_serve_cells_executed_total",
			"Sweep cells freshly executed by shard runs (recovered cells excluded)."),
		recovered: reg.Counter("meetpoly_serve_cells_recovered_total",
			"Sweep cells replayed from checkpoint recovery instead of re-executing."),
		recorded: reg.Counter("meetpoly_serve_checkpoint_recorded_cells_total",
			"Cell results staged into a checkpoint (durable after the next flush)."),
		flushes: reg.Counter("meetpoly_serve_checkpoint_flushes_total",
			"Durable checkpoint flushes (results fsync, then ranges fsync)."),
		flushNs: reg.Histogram("meetpoly_serve_checkpoint_flush_ns",
			"Wall time of one durable checkpoint flush, in nanoseconds."),
		fsyncNs: reg.Histogram("meetpoly_serve_checkpoint_fsync_ns",
			"Wall time of one checkpoint log fsync, in nanoseconds."),
		poisoned: reg.Counter("meetpoly_serve_checkpoint_poison_total",
			"Checkpoints poisoned by a failed log write or fsync (run abandoned, resume re-executes)."),
	}
}
