package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// RegistryPureAnalyzer keeps the extension registries sound as content
// addresses. Two rules:
//
//  1. Register calls (RegisterGraphKind / RegisterAdversary /
//     RegisterScenarioKind and the internal registry.Register*) may
//     only run from init functions, package-level var initializers
//     (including func literals inside them, the sync.OnceValue idiom),
//     or Register* wrapper functions. The registries are documented as
//     append-only before engines start; a registration from arbitrary
//     call paths races campaign expansion and cache keying.
//
//  2. Graph-kind Build/NodeCount/AxisDefaults/CheckAxis implementations
//     (function values in GraphKindDef/GraphKind composite literals)
//     must be pure: no package-level variable reads or writes, no
//     wall-clock, no global rand. The prepared-scenario cache keys on
//     (spec, fingerprint) alone — a builder that consults global
//     mutable state can return different graphs for one key, poisoning
//     every cached run that follows.
var RegistryPureAnalyzer = &analysis.Analyzer{
	Name:     "registrypure",
	Doc:      "restrict registry mutation to init/package-var context and keep graph-kind builders pure",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runRegistryPure,
}

// registerFuncs are the registry mutation entry points, matched by name
// (the public facade and the internal half both count).
var registerFuncs = map[string]bool{
	"RegisterGraphKind": true, "RegisterAdversary": true, "RegisterScenarioKind": true,
	"RegisterGraph": true, "RegisterKindMeta": true,
	"RegisterAdversaryMeta": true, "RegisterAdversaryMetas": true,
}

// kindDefTypes are the composite-literal types whose function fields
// the purity rule applies to.
var kindDefTypes = map[string]bool{"GraphKindDef": true, "GraphKind": true}

// pureFields are the GraphKindDef fields that must be deterministic
// pure functions of their parameters.
var pureFields = map[string]bool{"Build": true, "NodeCount": true, "AxisDefaults": true, "CheckAxis": true}

func runRegistryPure(pass *analysis.Pass) (any, error) {
	rep := newReporter(pass, "registrypure")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Rule 1: Register calls only in init/package-var/wrapper context.
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || inTestFile(pass.Fset, n.Pos()) {
			return true
		}
		call := n.(*ast.CallExpr)
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || !registerFuncs[fn.Name()] {
			return true
		}
		if registrationContextOK(stack) {
			return true
		}
		rep.reportf(call.Pos(), "%s called outside init/package-var context: registries are append-only before engines run; register from an init function or a package-level var initializer", fn.Name())
		return true
	})

	// Rule 2: purity of graph-kind builder fields.
	decls := funcDecls(pass)
	ins.Preorder([]ast.Node{(*ast.CompositeLit)(nil)}, func(n ast.Node) {
		lit := n.(*ast.CompositeLit)
		if inTestFile(pass.Fset, lit.Pos()) {
			return
		}
		t := pass.TypesInfo.TypeOf(lit)
		if t == nil {
			return
		}
		t = types.Unalias(t)
		named, ok := t.(*types.Named)
		if !ok || !kindDefTypes[named.Obj().Name()] {
			return
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || !pureFields[key.Name] {
				continue
			}
			if body := fieldFuncBody(pass, decls, kv.Value); body != nil {
				checkBuilderPurity(pass, rep, key.Name, body)
			}
		}
	})
	return nil, nil
}

// registrationContextOK walks the enclosing node stack: the top-level
// declaration must be an init FuncDecl, a package-level var GenDecl, or
// a Register* wrapper.
func registrationContextOK(stack []ast.Node) bool {
	for _, n := range stack {
		switch d := n.(type) {
		case *ast.FuncDecl:
			name := d.Name.Name
			if d.Recv == nil && (name == "init" || strings.HasPrefix(name, "Register") || strings.HasPrefix(name, "mustRegister")) {
				return true
			}
			return false
		case *ast.GenDecl:
			return d.Tok == token.VAR
		}
	}
	return false
}

// funcDecls indexes the package's function declarations by object, so
// a builder field referencing a named function can be checked too.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

// fieldFuncBody resolves a composite-literal field value to a function
// body: a func literal inline, or a reference to a same-package decl.
func fieldFuncBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, v ast.Expr) *ast.BlockStmt {
	switch x := ast.Unparen(v).(type) {
	case *ast.FuncLit:
		return x.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.ObjectOf(x).(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// checkBuilderPurity flags global mutable state and nondeterminism
// sources inside one builder body.
func checkBuilderPurity(pass *analysis.Pass, rep *reporter, field string, body *ast.BlockStmt) {
	info := pass.TypesInfo
	pkgScope := pass.Pkg.Scope()
	globalVar := func(e ast.Expr) *types.Var {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		v, ok := info.ObjectOf(id).(*types.Var)
		if !ok {
			return nil
		}
		if v.Parent() == pkgScope || (v.Pkg() != nil && v.Pkg() != pass.Pkg && v.Parent() == v.Pkg().Scope()) {
			return v
		}
		return nil
	}
	// Collect write targets first so a mutated global is reported once
	// (as a write), not again as a read of its lvalue identifier.
	written := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id := rootIdent(lhs); id != nil {
					written[id] = true
				}
			}
		case *ast.IncDecStmt:
			if id := rootIdent(x.X); id != nil {
				written[id] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if v := globalVar(lhs); v != nil {
					rep.reportf(lhs.Pos(), "%s mutates package-level state %s: builders must be pure functions of their spec (the cache keys on it)", field, v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := globalVar(x.X); v != nil {
				rep.reportf(x.Pos(), "%s mutates package-level state %s: builders must be pure functions of their spec (the cache keys on it)", field, v.Name())
			}
		case *ast.Ident:
			if written[x] {
				return true
			}
			if v, ok := info.Uses[x].(*types.Var); ok && !v.IsField() && v.Parent() != nil &&
				(v.Parent() == pkgScope || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope())) {
				rep.reportf(x.Pos(), "%s reads package-level variable %s: global mutable state breaks the (spec, fingerprint) cache address; pass configuration through the spec or encode it in Fingerprint", field, v.Name())
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil {
				impure := &reporterAs{r: rep, field: field}
				checkTimeCall(impure, x, fn)
				checkRandCall(impure, x, fn)
			}
		}
		return true
	})
}

// reporterAs forwards to the registrypure reporter; it exists so the
// shared time/rand checks can be reused verbatim.
type reporterAs struct {
	r     *reporter
	field string
}

func (r *reporterAs) reportf(pos token.Pos, format string, args ...any) {
	r.r.reportf(pos, "%s is impure: "+format, append([]any{r.field}, args...)...)
}
