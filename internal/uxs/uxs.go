// Package uxs implements universal exploration sequences (UXS), the
// building block the paper imports from Reingold's log-space connectivity
// result [34]: for every k there is a fixed sequence of port offsets of
// polynomial length P(k) such that following it in any graph of size at
// most k, from any start node, traverses all edges.
//
// Reingold's explicit construction (zig-zag product expander walks) is
// impractical to reproduce; every proof in the paper consumes only three
// properties of R(k, v):
//
//	P1: the trajectory's length P(k) is independent of the graph and of
//	    the start node;
//	P2: in a graph of size <= k the trajectory traverses all edges
//	    ("integral" trajectories);
//	P3: P is non-decreasing.
//
// This package provides sequences with those properties made explicit and
// checkable: pseudorandom sequences of cubic length (universal with
// overwhelming probability, verifiable per graph) and family-verified
// compact catalogs whose integrality on a concrete graph family is proven
// by exhaustive walking. See DESIGN.md §2.1 for the substitution argument.
package uxs

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"meetpoly/internal/graph"
)

// Sequence is a universal exploration sequence: a list of port offsets.
// An agent that entered the current node of degree d by port p exits by
// port (p + x) mod d for the next offset x. At the very start of a walk
// the entry port is taken to be 0.
type Sequence []int

// Walk follows seq in g from start and returns the sequence of visited
// nodes (length len(seq)+1). On a graph whose start node has degree 0
// (the single-node graph) the walk stays put and the trace has length 1.
func Walk(g *graph.Graph, start int, seq Sequence) []int {
	nodes := make([]int, 1, len(seq)+1)
	nodes[0] = start
	cur, entry := start, 0
	for _, x := range seq {
		d := g.Degree(cur)
		if d == 0 {
			return nodes
		}
		port := (entry + x) % d
		cur, entry = g.Succ(cur, port)
		nodes = append(nodes, cur)
	}
	return nodes
}

// Integral reports whether following seq in g from start traverses every
// edge of g (the paper's notion of an integral trajectory). The edge set
// is tracked in a dense []bool indexed by graph.EdgeIndex rather than a
// map: this runs on the walk-verification hot path (every Verified.Seq
// search candidate, every campaign cell) and the flat array removes the
// hashing and allocation that dominated the map version.
func Integral(g *graph.Graph, start int, seq Sequence) bool {
	if g.M() == 0 {
		return true
	}
	covered := make([]bool, g.M())
	remaining := g.M()
	cur, entry := start, 0
	for _, x := range seq {
		d := g.Degree(cur)
		if d == 0 {
			return false
		}
		port := (entry + x) % d
		if id := g.EdgeIndex(cur, port); !covered[id] {
			covered[id] = true
			remaining--
			if remaining == 0 {
				return true
			}
		}
		cur, entry = g.Succ(cur, port)
	}
	return remaining == 0
}

// UniversalFor reports whether seq is integral on every graph in gs from
// every start node.
func UniversalFor(seq Sequence, gs []*graph.Graph) bool {
	for _, g := range gs {
		for v := 0; v < g.N(); v++ {
			if !Integral(g, v, seq) {
				return false
			}
		}
	}
	return true
}

// FirstFailure returns the first (graph, start) on which seq is not
// integral, for diagnostics. ok is false when seq is universal for gs.
func FirstFailure(seq Sequence, gs []*graph.Graph) (g *graph.Graph, start int, ok bool) {
	for _, g := range gs {
		for v := 0; v < g.N(); v++ {
			if !Integral(g, v, seq) {
				return g, v, true
			}
		}
	}
	return nil, 0, false
}

// Generate returns a deterministic pseudorandom sequence of length
// PCubic(k, c). Random sequences of this length are universal for graphs
// of size <= k with overwhelming probability; use UniversalFor to check
// against concrete graphs.
func Generate(k, c int, seed int64) Sequence {
	rng := rand.New(rand.NewSource(mixSeed(seed, k)))
	seq := make(Sequence, PCubic(k, c))
	for i := range seq {
		seq[i] = rng.Intn(maxOffset)
	}
	return seq
}

// mixSeed derives a per-k RNG seed from the catalog seed, keeping
// sequences for distinct k statistically independent.
func mixSeed(seed int64, k int) int64 {
	const golden = int64(0x9e3779b97f4a7c15 & 0x7fffffffffffffff)
	return seed ^ (int64(k)+1)*golden
}

// maxOffset bounds the stored offsets. Offsets are reduced mod degree at
// walk time, so any bound at least the largest degree in play is harmless;
// a fixed bound keeps sequences graph-independent.
const maxOffset = 1 << 16

// PCubic is the length function of Generate: c*k^3*(floor(log2 k)+1),
// and at least 1. It is non-decreasing in k (property P3).
func PCubic(k, c int) int {
	if k < 1 {
		return 1
	}
	bits := 0
	for x := k; x > 0; x >>= 1 {
		bits++
	}
	n := c * k * k * k * bits
	if n < 1 {
		n = 1
	}
	return n
}

// Catalog supplies exploration sequences per size parameter k. The
// contract mirrors the paper's R(k, v):
//
//   - Seq(k) always returns the same sequence for the same k;
//   - P(k) == len(Seq(k)) and is non-decreasing in k;
//   - Seq(k) is integral on the graphs the catalog covers up to size k
//     (exactly which graphs depends on the implementation; see Verified
//     and Formula).
type Catalog interface {
	Seq(k int) Sequence
	P(k int) int
}

// Formula is a Catalog backed by Generate: pseudorandom cubic-length
// sequences. Universality is probabilistic; VerifyGraph confirms it for a
// concrete graph.
type Formula struct {
	C    int
	Seed int64

	mu    sync.Mutex
	cache map[int]Sequence
}

// NewFormula returns a Formula catalog with multiplier c (>= 1).
func NewFormula(c int, seed int64) *Formula {
	if c < 1 {
		panic("uxs: NewFormula needs c >= 1")
	}
	return &Formula{C: c, Seed: seed, cache: make(map[int]Sequence)}
}

// Seq returns the pseudorandom sequence for parameter k.
func (f *Formula) Seq(k int) Sequence {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.cache[k]; ok {
		return s
	}
	s := Generate(k, f.C, f.Seed)
	f.cache[k] = s
	return s
}

// P returns the sequence length for parameter k.
func (f *Formula) P(k int) int { return PCubic(k, f.C) }

var _ Catalog = (*Formula)(nil)

// Verified is a Catalog whose sequences are checked, by exhaustive
// walking, to be integral on every graph of a fixed family up to size k.
// This trades Reingold's universal guarantee for short sequences with an
// explicitly verified guarantee on the graphs under test, which is all the
// simulation harness needs (DESIGN.md §2.1).
//
// For k at or beyond the family's largest graph the verified graph set
// stops growing, so P(k) becomes constant: still non-decreasing, and all
// trajectories remain integral.
//
// Reads are lock-free once warm: the family and the sequence cache live
// in an immutable snapshot behind an atomic pointer, replaced wholesale
// by writers (copy-on-write). Trajectory composition re-reads Seq(k)
// constantly on the execution hot path, and sweep workers hammer
// Covers/CoversEqual concurrently; serializing every one of those reads
// behind a mutex made the catalog a contention point for the whole
// worker pool.
type Verified struct {
	seed   int64
	greedy bool

	// mu serializes writers (cache fills and Extend); readers go through
	// snap alone.
	mu   sync.Mutex
	snap atomic.Pointer[verifiedSnap]
}

// verifiedSnap is one immutable state of a Verified catalog. Neither the
// slices nor the map are mutated after publication.
type verifiedSnap struct {
	family []*graph.Graph
	cache  map[int]Sequence
	maxN   int
}

// withCache returns a copy of the snapshot with the extra sequences
// merged into a fresh cache map.
func (s *verifiedSnap) withCache(extra map[int]Sequence) *verifiedSnap {
	n := &verifiedSnap{family: s.family, maxN: s.maxN,
		cache: make(map[int]Sequence, len(s.cache)+len(extra))}
	for k, v := range s.cache {
		n.cache[k] = v
	}
	for k, v := range extra {
		n.cache[k] = v
	}
	return n
}

// NewVerifiedGreedy returns a verified catalog whose sequences come from
// the deterministic greedy construction (GreedyFor): minimal lengths,
// seed-independent. See the note on search for why this is NOT the
// simulation default.
func NewVerifiedGreedy(family []*graph.Graph, seed int64) *Verified {
	v := NewVerified(family, seed)
	v.greedy = true
	return v
}

// NewVerified returns a verified catalog over the given family. The
// family is copied; it must contain at least one graph.
func NewVerified(family []*graph.Graph, seed int64) *Verified {
	if len(family) == 0 {
		panic("uxs: NewVerified needs a non-empty family")
	}
	s := &verifiedSnap{
		family: append([]*graph.Graph(nil), family...),
		cache:  make(map[int]Sequence),
	}
	for _, g := range family {
		if g.N() > s.maxN {
			s.maxN = g.N()
		}
	}
	v := &Verified{seed: seed}
	v.snap.Store(s)
	return v
}

// The default family's seed derivations, exported so that declarative
// descriptors (campaign axes, scenario specs) can reproduce family
// members exactly: a zero-seed "tree"/"random" or shuffled cell derives
// these same seeds and is therefore recognized by a default verified
// catalog without extending it. One exception: a *shuffled* random
// graph cannot be family-identical, because a declarative GraphSpec
// drives generation and shuffling with a single seed while the family
// shuffles with the node count — such cells build fine but extend the
// catalog.

// DefaultTreeSeed is the RandomTree seed DefaultFamily uses at size n.
func DefaultTreeSeed(n int) int64 { return int64(n) }

// DefaultRandomSeed is the RandomConnected seed DefaultFamily uses at
// size n.
func DefaultRandomSeed(n int) int64 { return int64(n)*7 + 1 }

// DefaultRandomP is the RandomConnected edge probability DefaultFamily
// uses.
const DefaultRandomP = 0.3

// DefaultShuffleSeed is the ShufflePorts seed DefaultFamily pairs with
// a family graph of the given node count.
func DefaultShuffleSeed(nodes int) int64 { return int64(nodes) }

// DefaultFamily returns a representative family of standard topologies up
// to maxN nodes: rings, paths, cliques, stars, trees, grids and a sprinkle
// of random connected graphs, each with both natural and shuffled ports.
func DefaultFamily(maxN int) []*graph.Graph {
	if maxN < 2 {
		panic("uxs: DefaultFamily needs maxN >= 2")
	}
	var fam []*graph.Graph
	add := func(g *graph.Graph) {
		if g.N() <= maxN {
			fam = append(fam, g, graph.ShufflePorts(g, DefaultShuffleSeed(g.N())))
		}
	}
	for n := 2; n <= maxN; n++ {
		add(graph.Path(n))
		if n >= 3 {
			add(graph.Ring(n))
			add(graph.Complete(n))
			add(graph.Star(n))
			add(graph.BinaryTree(n))
		}
		if n >= 4 {
			add(graph.RandomTree(n, DefaultTreeSeed(n)))
			add(graph.RandomConnected(n, DefaultRandomP, DefaultRandomSeed(n)))
		}
	}
	if maxN >= 6 {
		add(graph.Grid(2, 3))
	}
	if maxN >= 9 {
		add(graph.Grid(3, 3))
	}
	if maxN >= 10 {
		add(graph.Petersen())
	}
	return fam
}

// Family returns the graphs the catalog verifies against.
func (v *Verified) Family() []*graph.Graph {
	s := v.snap.Load()
	return append([]*graph.Graph(nil), s.family...)
}

// Extend adds graphs to the family and invalidates cached sequences, so
// that subsequent Seq calls re-verify. Use before running on a graph not
// in the original family.
func (v *Verified) Extend(gs ...*graph.Graph) {
	v.mu.Lock()
	defer v.mu.Unlock()
	old := v.snap.Load()
	n := &verifiedSnap{
		family: append(append([]*graph.Graph(nil), old.family...), gs...),
		cache:  make(map[int]Sequence),
		maxN:   old.maxN,
	}
	for _, g := range gs {
		if g.N() > n.maxN {
			n.maxN = g.N()
		}
	}
	v.snap.Store(n)
}

// Covers reports whether g is part of the verified family.
func (v *Verified) Covers(g *graph.Graph) bool {
	for _, f := range v.snap.Load().family {
		if f == g {
			return true
		}
	}
	return false
}

// CoversEqual reports whether the family contains a graph structurally
// identical to g (graph.Equal), not merely pointer-identical. Scenario
// descriptors rebuild graphs from deterministic generators, so a
// rebuilt family member is recognized here without extending the family
// — which would needlessly invalidate every cached sequence.
func (v *Verified) CoversEqual(g *graph.Graph) bool {
	for _, f := range v.snap.Load().family {
		if graph.Equal(f, g) {
			return true
		}
	}
	return false
}

// MaxN returns the size of the largest graph in the verified family.
func (v *Verified) MaxN() int { return v.snap.Load().maxN }

// Seq returns a sequence verified to be integral on every family graph of
// size at most k, from every start node. Sequences are found by seeded
// randomized search with growing length, then padded so that P stays
// non-decreasing. Seq panics if no sequence is found within a generous
// search budget, which indicates a family far outside this catalog's
// intended small-graph regime.
//
// The fast path is a single atomic load plus a map read; the search and
// verification run under the writer lock and publish a new snapshot.
func (v *Verified) Seq(k int) Sequence {
	if s, ok := v.snap.Load().cache[k]; ok {
		return s
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	old := v.snap.Load()
	if s, ok := old.cache[k]; ok { // raced with another filler
		return s
	}
	fresh := make(map[int]Sequence)
	s := v.seqInto(old, fresh, k)
	v.snap.Store(old.withCache(fresh))
	return s
}

// seqInto computes Seq(k) against the snapshot's family, reading
// already-verified sequences from the snapshot and recording new ones in
// fresh. Caller holds v.mu.
func (v *Verified) seqInto(snap *verifiedSnap, fresh map[int]Sequence, k int) Sequence {
	if s, ok := snap.cache[k]; ok {
		return s
	}
	if s, ok := fresh[k]; ok {
		return s
	}
	// Beyond the family's largest graph the constraint set no longer
	// grows; reuse the maxN sequence so P plateaus.
	if k > snap.maxN {
		s := v.seqInto(snap, fresh, snap.maxN)
		fresh[k] = s
		return s
	}
	var gs []*graph.Graph
	for _, g := range snap.family {
		if g.N() <= k {
			gs = append(gs, g)
		}
	}
	minLen := 1
	if k > 1 {
		minLen = len(v.seqInto(snap, fresh, k-1))
	}
	found := v.search(k, gs)
	if len(found) < minLen {
		// Pad: extra steps after full coverage cannot reduce coverage.
		pad := make(Sequence, minLen)
		copy(pad, found)
		found = pad
	}
	fresh[k] = found
	return found
}

// search finds a sequence integral for all graphs in gs from all starts.
//
// Two constructions exist: the deterministic greedy set-cover (GreedyFor,
// used when v.greedy is set) yields minimal-length sequences, and seeded
// randomized search yields longer but "richer" walks. Random search is
// the default: the E10 ablation showed that minimal sequences, while
// fully satisfying the paper's integrality property, have such short
// reach (P(2) = 1) that typical-case walks barely overlap and simulated
// meetings slow down by orders of magnitude — the guarantee is untouched,
// but the simulations take the worst-case path. Length is not the only
// quality measure of an exploration sequence.
func (v *Verified) search(k int, gs []*graph.Graph) Sequence {
	if len(gs) == 0 {
		return Sequence{0}
	}
	if v.greedy {
		if seq, ok := GreedyFor(gs, 200*k*k+64); ok {
			return seq
		}
	}
	rng := rand.New(rand.NewSource(mixSeed(v.seed, k)))
	length := 4 * k
	const maxRounds = 60
	for round := 0; round < maxRounds; round++ {
		for try := 0; try < 25; try++ {
			seq := make(Sequence, length)
			for i := range seq {
				seq[i] = rng.Intn(maxOffset)
			}
			if UniversalFor(seq, gs) {
				return seq
			}
		}
		length = length*5/4 + 1
	}
	panic(fmt.Sprintf("uxs: no universal sequence found for k=%d over %d graphs (last length %d)",
		k, len(gs), length))
}

// P returns len(Seq(k)).
func (v *Verified) P(k int) int { return len(v.Seq(k)) }

var _ Catalog = (*Verified)(nil)

// CheckCatalog verifies the Catalog contract up to kMax against the given
// graphs: P non-decreasing, P(k) == len(Seq(k)), and integrality of
// Seq(k) on every g in gs with g.N() <= k. It returns the first violation.
func CheckCatalog(c Catalog, kMax int, gs []*graph.Graph) error {
	prev := 0
	for k := 1; k <= kMax; k++ {
		s := c.Seq(k)
		if len(s) != c.P(k) {
			return fmt.Errorf("uxs: P(%d)=%d but len(Seq)=%d", k, c.P(k), len(s))
		}
		if len(s) < prev {
			return fmt.Errorf("uxs: P not monotone at k=%d (%d < %d)", k, len(s), prev)
		}
		prev = len(s)
		for _, g := range gs {
			if g.N() > k {
				continue
			}
			for vtx := 0; vtx < g.N(); vtx++ {
				if !Integral(g, vtx, s) {
					return fmt.Errorf("uxs: Seq(%d) not integral on %v from %d", k, g, vtx)
				}
			}
		}
	}
	return nil
}
