// Package labels implements the label transformation of Algorithm
// RV-asynch-poly (§3.1 of the paper): if x = (c1 ... cr) is the binary
// representation of an agent's label L, its modified label is
//
//	M(x) = (c1 c1 c2 c2 ... cr cr 0 1).
//
// The transformation guarantees that for distinct labels x != y, M(x) is
// never a prefix of M(y) (and M(x) != M(y)); the rendezvous algorithm
// breaks symmetry at the first position where the two modified labels
// differ.
package labels

import "fmt"

// Label is an agent label: a strictly positive integer.
type Label uint64

// Bits returns the binary representation of L, most significant bit
// first. It panics on the zero label, which the model excludes.
func (l Label) Bits() []byte {
	if l == 0 {
		panic("labels: label must be a positive integer")
	}
	n := l.Len()
	bits := make([]byte, n)
	for i := 0; i < n; i++ {
		bits[i] = byte((l >> (n - 1 - i)) & 1)
	}
	return bits
}

// Len returns |L|, the length of the binary representation of L.
// The paper defines |x| = ceil(log x) with the convention |1| = 1.
func (l Label) Len() int {
	if l == 0 {
		panic("labels: label must be a positive integer")
	}
	n := 0
	for x := l; x > 0; x >>= 1 {
		n++
	}
	return n
}

// Modified returns M(x): each bit doubled, then the terminator 01.
func (l Label) Modified() []byte {
	bits := l.Bits()
	out := make([]byte, 0, 2*len(bits)+2)
	for _, b := range bits {
		out = append(out, b, b)
	}
	return append(out, 0, 1)
}

// ModifiedLen returns len(M(x)) = 2|L| + 2 without materializing it.
func (l Label) ModifiedLen() int { return 2*l.Len() + 2 }

// String renders the label and its modified form for diagnostics.
func (l Label) String() string {
	return fmt.Sprintf("L%d", uint64(l))
}

// IsPrefix reports whether a is a prefix of b.
func IsPrefix(a, b []byte) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FirstDiff returns the first index at which a and b differ. If one is a
// prefix of the other it returns the shorter length. For modified labels
// of distinct agents this index always falls strictly inside both slices.
func FirstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
