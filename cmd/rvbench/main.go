// Command rvbench records the repo's performance trajectory: it runs
// the scheduler's half-step microbenchmark on both execution cores
// (internal/schedbench, the same harness BenchmarkRunnerHalfSteps uses)
// plus an E4-style measured rendezvous campaign on the fast engine, and
// writes the results as BENCH_sched.json (schema documented in
// EXPERIMENTS.md §P1).
//
// The campaign is measured twice, as the preparation/run split of the
// v2 schema: the first pass (prep) starts from an empty engine and pays
// every cache fill — graph builds, catalog verification and coverage,
// route materialization — while the second pass (run) re-executes the
// identical campaign against the warm prepared-scenario cache, which is
// the steady state a long-lived engine serves. The two passes must
// produce identical reports (rvbench fails otherwise): the cache is an
// amortization, never a shortcut.
//
// Since schema v3 the file also records the batch-dispatch benchmark
// (internal/schedbench.BatchCells): b.N identical short cells executed
// once per-cell — a fresh Runner per cell, the v2 dispatch path — and
// once through shared-graph BatchRunners, the lockstep tier the sweep
// pipeline now routes eligible cells through. Their ratio is the
// dispatch-amortization win the batched tier exists for.
//
// Since schema v4 the file records the telemetry section: the cost of
// the metric record path (counter increment + histogram observation,
// which must stay allocation-free) and the warm campaign re-measured
// with a metrics registry attached. The instrumented report must be
// byte-identical to the plain one, and the throughput ratio is gated
// at 0.5x.
//
// Modes:
//
//	rvbench                    # measure and write BENCH_sched.json
//	rvbench -quick             # smaller campaign (CI-sized)
//	rvbench -quick -check BENCH_sched.json
//	                           # measure, compare against the committed
//	                           # baseline, write nothing; exit 1 on a
//	                           # half-step regression, a normalized
//	                           # warm-throughput regression, a
//	                           # batch-dispatch speedup below floor, or
//	                           # an allocation-ceiling breach
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"meetpoly"
	"meetpoly/internal/buildinfo"
	"meetpoly/internal/schedbench"
	"meetpoly/internal/telemetry"
)

// Schema is the BENCH_sched.json format identifier. v2 split the
// campaign measurement into prep (cold cache) and run (warm steady
// state) passes and added allocation accounting; v3 added the
// batch_dispatch section (per-cell vs batched lockstep dispatch) and
// its speedup floor, and the campaign section now measures the batched
// execution tier, the engine's default since it landed; v4 added the
// telemetry section: the metric record path's cost (which must stay
// allocation-free — hot loops call it), and the warm campaign re-run
// with a registry attached, whose report must be byte-identical to the
// plain run's and whose throughput must stay within the ratio floor.
const Schema = "meetpoly/bench_sched/v4"

// CoreBench is one execution core's half-step microbenchmark result.
type CoreBench struct {
	NsPerHalfStep     float64 `json:"ns_per_halfstep"`
	BytesPerHalfStep  int64   `json:"bytes_per_halfstep"`
	AllocsPerHalfStep int64   `json:"allocs_per_halfstep"`
}

// CellBench is one dispatch variant's batch benchmark result, per
// cell of schedbench.BatchCellBudget adversary events.
type CellBench struct {
	NsPerCell     float64 `json:"ns_per_cell"`
	BytesPerCell  int64   `json:"bytes_per_cell"`
	AllocsPerCell int64   `json:"allocs_per_cell"`
}

// CampaignPass is one timed execution of the benchmark campaign.
type CampaignPass struct {
	WallMS      float64 `json:"wall_ms"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// BenchFile is the BENCH_sched.json document.
type BenchFile struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	HalfStep struct {
		Stepper   CoreBench `json:"stepper"`
		Goroutine CoreBench `json:"goroutine"`
		// Speedup is goroutine ns / stepper ns: the dispatch win of the
		// zero-handoff core. The acceptance floor is 5.
		Speedup float64 `json:"speedup"`
	} `json:"half_step"`

	// BatchDispatch is the per-cell vs batched lockstep dispatch
	// benchmark: identical short cells (CellBudget events each, the
	// shape campaign matrices are made of) run through one fresh Runner
	// per cell versus shared-graph BatchRunners. Cell preparation is
	// outside the timed region in both variants — the engine's prepare
	// stage pays it identically either way — so the numbers isolate
	// dispatch overhead, which is what the batched tier amortizes.
	BatchDispatch struct {
		CellBudget int       `json:"cell_budget"`
		PerCell    CellBench `json:"per_cell"`
		Batched    CellBench `json:"batched"`
		// Speedup is per-cell ns / batched ns: same-run hardware, so
		// the ratio is hardware-independent. The acceptance floor is 2
		// (recorded runs land near 3x; the floor leaves the same 2x
		// margin the other normalized gates grant cross-machine noise).
		Speedup float64 `json:"speedup"`
	} `json:"batch_dispatch"`

	Campaign struct {
		Spec      string `json:"spec"`
		Cells     int    `json:"cells"`
		Met       int    `json:"met"`
		TotalCost int64  `json:"total_cost"`
		// Events is the number of adversary events the campaign executes
		// (identical across passes): the denominator of the steady-state
		// allocation accounting.
		Events int64 `json:"events"`

		// Prep is the cold pass: empty engine, every cache filled on the
		// way (graph builds, catalog verification, coverage checks,
		// route materialization).
		Prep CampaignPass `json:"prep"`
		// Run is the warm pass over the same engine: the steady-state
		// throughput a long-lived engine serves, and the headline
		// cells/sec number.
		Run struct {
			CampaignPass
			AllocsPerCell  float64 `json:"allocs_per_cell"`
			AllocsPerEvent float64 `json:"allocs_per_event"`
		} `json:"run"`

		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
	} `json:"campaign"`

	// Telemetry is the observability-cost section: the price of the
	// metric record path (one counter increment plus one histogram
	// observation, the unit instrumented hot paths pay), and the warm
	// campaign measured again with a metrics registry attached. The
	// instrumented pass must reproduce the plain pass's report byte for
	// byte — telemetry observes results, never shapes them.
	Telemetry struct {
		RecordNsPerOp     float64 `json:"record_ns_per_op"`
		RecordAllocsPerOp int64   `json:"record_allocs_per_op"`
		// Run is the warm pass over a telemetry-enabled engine.
		Run CampaignPass `json:"run"`
		// RunRatio is instrumented warm cells/sec over plain warm
		// cells/sec, measured in the same run (so hardware cancels).
		// The acceptance floor is 0.5; recorded runs sit near 1.
		RunRatio float64 `json:"run_ratio"`
	} `json:"telemetry"`
}

// benchSpec is the E4-style measured campaign: rendezvous instances
// across four graph families under the three headline adversaries.
func benchSpec(quick bool) meetpoly.SweepSpec {
	sp := meetpoly.SweepSpec{
		Name:  "rvbench-e4",
		Seed:  "rvbench-v1",
		Kinds: []string{"rendezvous"},
		Graphs: []meetpoly.SweepGraphAxis{
			{Kind: "path", Sizes: []int{4, 5}},
			{Kind: "ring", Sizes: []int{4, 5}},
			{Kind: "star", Sizes: []int{5}},
			{Kind: "clique", Sizes: []int{4}},
		},
		StartPairs:  2,
		LabelPairs:  2,
		Adversaries: []string{"", "avoider", "random"},
		Budget:      200_000,
	}
	if quick {
		sp.StartPairs, sp.LabelPairs = 1, 1
		sp.Budget = 50_000
	}
	return sp
}

// runCampaign executes the spec once and returns the report with wall
// time and the allocation delta of the pass.
func runCampaign(eng *meetpoly.Engine, spec meetpoly.SweepSpec) (*meetpoly.SweepReport, time.Duration, uint64, error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	rep, err := eng.Sweep(context.Background(), spec)
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return nil, 0, 0, err
	}
	if !rep.OK() {
		return nil, 0, 0, fmt.Errorf("campaign oracle failures:\n%s", rep.Table())
	}
	return rep, wall, m1.Mallocs - m0.Mallocs, nil
}

func measure(quick bool) (*BenchFile, error) {
	bf := &BenchFile{Schema: Schema, GoVersion: runtime.Version(),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}

	fmt.Fprintln(os.Stderr, "rvbench: measuring half-steps on the stepper core...")
	ns, by, al := schedbench.Measure(false)
	bf.HalfStep.Stepper = CoreBench{NsPerHalfStep: ns, BytesPerHalfStep: by, AllocsPerHalfStep: al}
	fmt.Fprintln(os.Stderr, "rvbench: measuring half-steps on the goroutine core...")
	ns, by, al = schedbench.Measure(true)
	bf.HalfStep.Goroutine = CoreBench{NsPerHalfStep: ns, BytesPerHalfStep: by, AllocsPerHalfStep: al}
	if s := bf.HalfStep.Stepper.NsPerHalfStep; s > 0 {
		bf.HalfStep.Speedup = bf.HalfStep.Goroutine.NsPerHalfStep / s
	}

	bf.BatchDispatch.CellBudget = schedbench.BatchCellBudget
	fmt.Fprintln(os.Stderr, "rvbench: measuring per-cell dispatch (fresh runner per cell)...")
	ns, by, al = schedbench.MeasureBatch(false)
	bf.BatchDispatch.PerCell = CellBench{NsPerCell: ns, BytesPerCell: by, AllocsPerCell: al}
	fmt.Fprintln(os.Stderr, "rvbench: measuring batched lockstep dispatch...")
	ns, by, al = schedbench.MeasureBatch(true)
	bf.BatchDispatch.Batched = CellBench{NsPerCell: ns, BytesPerCell: by, AllocsPerCell: al}
	if b := bf.BatchDispatch.Batched.NsPerCell; b > 0 {
		bf.BatchDispatch.Speedup = bf.BatchDispatch.PerCell.NsPerCell / b
	}

	spec := benchSpec(quick)
	cellCount, err := meetpoly.CountSweep(spec)
	if err != nil {
		return nil, err
	}
	eng := meetpoly.NewEngine(WithDefaults()...)

	fmt.Fprintf(os.Stderr, "rvbench: prep pass over the %d-cell %s campaign (cold caches)...\n", cellCount, spec.Name)
	cold, coldWall, _, err := runCampaign(eng, spec)
	if err != nil {
		return nil, err
	}
	// Settle before the steady-state measurement: collect the prep
	// pass's generation garbage and let one unmeasured pass touch every
	// cache, so the run pass measures the long-lived engine's steady
	// state rather than the first post-fill sweep paying the fill's GC
	// debt.
	runtime.GC()
	settle, _, _, err := runCampaign(eng, spec)
	if err != nil {
		return nil, err
	}
	runtime.GC()
	fmt.Fprintf(os.Stderr, "rvbench: run pass (warm prepared-scenario cache)...\n")
	warm, warmWall, warmAllocs, err := runCampaign(eng, spec)
	if err != nil {
		return nil, err
	}
	for _, rep := range []*meetpoly.SweepReport{settle, warm} {
		if err := sameReport(cold, rep); err != nil {
			return nil, fmt.Errorf("cold and warm campaign reports diverge (the cache changed results): %v", err)
		}
	}

	c := &bf.Campaign
	c.Spec = spec.Name
	c.Cells = warm.Cells
	c.Met = warm.Met
	c.Events = warm.Events
	for _, g := range warm.Group {
		c.TotalCost += g.CostSum
	}
	c.Prep = pass(cold.Cells, coldWall)
	c.Run.CampaignPass = pass(warm.Cells, warmWall)
	if warm.Cells > 0 {
		c.Run.AllocsPerCell = float64(warmAllocs) / float64(warm.Cells)
	}
	if warm.Events > 0 {
		c.Run.AllocsPerEvent = float64(warmAllocs) / float64(warm.Events)
	}
	st := eng.CacheStats()
	c.CacheHits, c.CacheMisses = st.Hits, st.Misses

	fmt.Fprintln(os.Stderr, "rvbench: measuring the telemetry record path...")
	bf.Telemetry.RecordNsPerOp, bf.Telemetry.RecordAllocsPerOp = measureRecord()

	// The instrumented leg: same campaign, fresh engine with a metrics
	// registry attached, same cold-settle-warm discipline so the warm
	// pass compares like for like with the plain warm pass above.
	fmt.Fprintln(os.Stderr, "rvbench: warm pass with telemetry enabled...")
	reg := meetpoly.NewMetrics()
	tEng := meetpoly.NewEngine(append(WithDefaults(), meetpoly.WithTelemetry(reg))...)
	if _, _, _, err := runCampaign(tEng, spec); err != nil {
		return nil, err
	}
	runtime.GC()
	tWarm, tWall, _, err := runCampaign(tEng, spec)
	if err != nil {
		return nil, err
	}
	if err := sameReport(warm, tWarm); err != nil {
		return nil, fmt.Errorf("telemetry changed the campaign report (must be invisible to results): %v", err)
	}
	bf.Telemetry.Run = pass(tWarm.Cells, tWall)
	if plain := c.Run.CellsPerSec; plain > 0 {
		bf.Telemetry.RunRatio = bf.Telemetry.Run.CellsPerSec / plain
	}
	return bf, nil
}

// measureRecord benchmarks the telemetry record path: one counter
// increment plus one histogram observation per op — the unit every
// instrumented hot path pays. It must be allocation-free (checked as a
// hard gate): //rvlint:hotpath functions call it.
func measureRecord() (nsPerOp float64, allocsPerOp int64) {
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("rvbench_record_total", "record-path benchmark counter")
	hist := reg.Histogram("rvbench_record_ns", "record-path benchmark histogram")
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctr.Inc()
			hist.Observe(uint64(i))
		}
	})
	return float64(res.T.Nanoseconds()) / float64(res.N), res.AllocsPerOp()
}

func pass(cells int, wall time.Duration) CampaignPass {
	p := CampaignPass{WallMS: float64(wall.Microseconds()) / 1000}
	if s := wall.Seconds(); s > 0 {
		p.CellsPerSec = float64(cells) / s
	}
	return p
}

// sameReport asserts two campaign reports are byte-identical as JSON.
func sameReport(a, b *meetpoly.SweepReport) error {
	ja, err := json.Marshal(a)
	if err != nil {
		return err
	}
	jb, err := json.Marshal(b)
	if err != nil {
		return err
	}
	if !bytes.Equal(ja, jb) {
		return fmt.Errorf("reports differ:\n%s\nvs\n%s", ja, jb)
	}
	return nil
}

// WithDefaults returns the engine options rvbench runs with (the
// production fast path).
func WithDefaults() []meetpoly.Option {
	return []meetpoly.Option{meetpoly.WithMaxN(6), meetpoly.WithSeed(1)}
}

// checkRegression compares a fresh measurement against the committed
// baseline. The gates are hardware-independent where possible:
//
//   - the stepper core's half-step cost, normalized by the goroutine
//     core measured in the same run (the channel hand-off is the
//     natural calibration unit), must not exceed 2x the baseline's
//     normalized cost, and the dispatch speedup keeps its 5x floor;
//   - the batch-dispatch speedup (per-cell ns / batched ns, same-run
//     hardware so inherently normalized) must stay at or above its 2x
//     floor, the batched variant must allocate no more per cell than
//     the per-cell variant, and its per-event allocations (allocs/cell
//     over the cell budget) must stay at most 1;
//   - warm campaign throughput, normalized the same way (cells/sec ×
//     goroutine ns — "cells per goroutine-handoff-equivalent"), must
//     not fall below half the baseline's;
//   - the warm pass must stay under an absolute allocation ceiling:
//     at most 0.05 allocations per adversary event (tightened from
//     v2's 1 — warm sweeps measure ~0.002 full-size and ~0.012 under
//     -quick's smaller event budgets, so 0.05 holds for both spec
//     sizes with real headroom while still catching any per-event
//     allocation creeping into the hot loop), and at most 4x the
//     baseline's allocations per cell;
//   - the telemetry record path must allocate exactly zero times per
//     op (hot loops call it) and stay under 100 ns/op — an absolute
//     ceiling, but a generous one: atomic counter + histogram record
//     measures single-digit ns, so only a lock or allocation sneaking
//     into the path trips it — and the instrumented warm campaign
//     must hold at least half the plain warm throughput (same-run
//     ratio, so hardware cancels).
//
// Absolute ns and cells/sec drifts are reported as warnings only, since
// the baseline may have been recorded on different hardware.
func checkRegression(cur, base *BenchFile) error {
	for _, p := range []struct {
		name      string
		cur, base float64
	}{
		{"stepper", cur.HalfStep.Stepper.NsPerHalfStep, base.HalfStep.Stepper.NsPerHalfStep},
		{"goroutine", cur.HalfStep.Goroutine.NsPerHalfStep, base.HalfStep.Goroutine.NsPerHalfStep},
	} {
		if p.base > 0 && p.cur > 2*p.base {
			fmt.Fprintf(os.Stderr,
				"rvbench: warning: %s core measures %.1f ns/half-step vs baseline %.1f (different hardware?)\n",
				p.name, p.cur, p.base)
		}
	}
	curG, baseG := cur.HalfStep.Goroutine.NsPerHalfStep, base.HalfStep.Goroutine.NsPerHalfStep
	curS, baseS := cur.HalfStep.Stepper.NsPerHalfStep, base.HalfStep.Stepper.NsPerHalfStep
	if curG > 0 && baseG > 0 && baseS > 0 {
		curNorm, baseNorm := curS/curG, baseS/baseG
		if curNorm > 2*baseNorm {
			return fmt.Errorf(
				"stepper core regressed: %.3f of the goroutine core's cost vs baseline %.3f (>2x)",
				curNorm, baseNorm)
		}
	}
	if cur.HalfStep.Speedup < 5 {
		return fmt.Errorf("stepper core speedup %.1fx below the 5x floor", cur.HalfStep.Speedup)
	}

	// Batch-dispatch gates: the speedup is a same-run ratio, so no
	// cross-hardware normalization is needed, and the allocation gates
	// are exact counts.
	bd := &cur.BatchDispatch
	if bd.Speedup < 2 {
		return fmt.Errorf("batched dispatch speedup %.2fx below the 2x floor", bd.Speedup)
	}
	if bd.Batched.AllocsPerCell > bd.PerCell.AllocsPerCell {
		return fmt.Errorf("batched dispatch allocates %d/cell vs %d/cell per-cell (batching must not add allocations)",
			bd.Batched.AllocsPerCell, bd.PerCell.AllocsPerCell)
	}
	if bd.CellBudget > 0 {
		if a := float64(bd.Batched.AllocsPerCell) / float64(bd.CellBudget); a > 1 {
			return fmt.Errorf("batched dispatch allocates %.3f times per adversary event (ceiling 1)", a)
		}
	}

	// Warm-throughput gate, hardware-normalized by the same run's
	// goroutine half-step cost.
	curT, baseT := cur.Campaign.Run.CellsPerSec, base.Campaign.Run.CellsPerSec
	if curT > 0 && baseT > 0 && curT < baseT/2 {
		fmt.Fprintf(os.Stderr,
			"rvbench: warning: warm campaign at %.0f cells/sec vs baseline %.0f (different hardware?)\n",
			curT, baseT)
	}
	if curG > 0 && baseG > 0 && curT > 0 && baseT > 0 {
		curNorm, baseNorm := curT*curG, baseT*baseG
		if curNorm < baseNorm/2 {
			return fmt.Errorf(
				"warm campaign throughput regressed: %.0f normalized cells/sec vs baseline %.0f (<0.5x)",
				curNorm, baseNorm)
		}
	}

	// Allocation ceilings (hardware-independent). The per-event ceiling
	// is absolute rather than baseline-relative because -quick runs a
	// smaller event budget per cell than the committed full-size
	// baseline, which shifts allocs/event without any code change.
	if a := cur.Campaign.Run.AllocsPerEvent; a > 0.05 {
		return fmt.Errorf("warm campaign allocates %.4f times per adversary event (ceiling 0.05)", a)
	}
	if basePC := base.Campaign.Run.AllocsPerCell; basePC > 0 {
		if a := cur.Campaign.Run.AllocsPerCell; a > 4*basePC {
			return fmt.Errorf("warm campaign allocates %.0f/cell vs baseline %.0f (>4x ceiling)",
				cur.Campaign.Run.AllocsPerCell, basePC)
		}
	}

	// Telemetry gates: the record path is called from hot loops, so it
	// must be allocation-free and cheap in absolute terms, and turning
	// metrics on must not halve campaign throughput.
	tel := &cur.Telemetry
	if tel.RecordAllocsPerOp != 0 {
		return fmt.Errorf("telemetry record path allocates %d/op (must be 0: hot loops call it)",
			tel.RecordAllocsPerOp)
	}
	if tel.RecordNsPerOp > 100 {
		return fmt.Errorf("telemetry record path costs %.1f ns/op (ceiling 100)", tel.RecordNsPerOp)
	}
	if tel.RunRatio > 0 && tel.RunRatio < 0.5 {
		return fmt.Errorf("telemetry-enabled warm campaign at %.2fx the plain throughput (floor 0.5x)",
			tel.RunRatio)
	}
	return nil
}

func main() {
	var (
		out     = flag.String("out", "BENCH_sched.json", "file to write the measurements to")
		quick   = flag.Bool("quick", false, "CI-sized campaign (smaller cross product, smaller budget)")
		check   = flag.String("check", "", "compare against this baseline file instead of writing; exit 1 on regression")
		version = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rvbench"))
		return
	}

	bf, err := measure(*quick)
	if err != nil {
		fatal(err)
	}
	doc, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fatal(err)
	}

	if *check != "" {
		raw, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		var base BenchFile
		if err := json.Unmarshal(raw, &base); err != nil {
			fatal(fmt.Errorf("%s: %v", *check, err))
		}
		if base.Schema != Schema {
			fatal(fmt.Errorf("%s: schema %q, want %q", *check, base.Schema, Schema))
		}
		fmt.Println(string(doc))
		if err := checkRegression(bf, &base); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr,
			"rvbench: no regression (stepper %.1f ns, %.1fx; batch dispatch %.2fx; campaign prep %.0f run %.0f cells/sec, %.0f allocs/cell; record %.1f ns, telemetry %.2fx)\n",
			bf.HalfStep.Stepper.NsPerHalfStep, bf.HalfStep.Speedup, bf.BatchDispatch.Speedup,
			bf.Campaign.Prep.CellsPerSec, bf.Campaign.Run.CellsPerSec, bf.Campaign.Run.AllocsPerCell,
			bf.Telemetry.RecordNsPerOp, bf.Telemetry.RunRatio)
		return
	}

	if err := os.WriteFile(*out, append(doc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"rvbench: wrote %s (stepper %.1f ns, %.1fx; batch dispatch %.2fx; campaign prep %.0f run %.0f cells/sec, %.0f allocs/cell; record %.1f ns, telemetry %.2fx)\n",
		*out, bf.HalfStep.Stepper.NsPerHalfStep, bf.HalfStep.Speedup, bf.BatchDispatch.Speedup,
		bf.Campaign.Prep.CellsPerSec, bf.Campaign.Run.CellsPerSec, bf.Campaign.Run.AllocsPerCell,
		bf.Telemetry.RecordNsPerOp, bf.Telemetry.RunRatio)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvbench:", err)
	os.Exit(1)
}
