package meetpoly

import (
	"fmt"
	"io"
	"sync"

	"meetpoly/internal/sched"
)

// Observer receives execution events from running scenarios: adversary
// steps, completed edge traversals, meetings, and algorithm phase
// changes. Attach one to an Engine with WithObserver.
//
// Within a single run all callbacks are serialized. The engine
// additionally wraps the observer in a mutex so that one observer value
// may watch a whole RunBatch without further synchronization.
type Observer = sched.Observer

// FuncObserver adapts optional callbacks to the Observer interface; nil
// fields ignore their event kind.
type FuncObserver = sched.FuncObserver

// Event is one adversary decision (wake or advance of one agent).
type Event = sched.Event

// EventKind distinguishes the two adversary decisions.
type EventKind = sched.EventKind

// The adversary decision kinds, for custom Adversary implementations.
const (
	// EventWake starts a dormant agent.
	EventWake = sched.EventWake
	// EventAdvance progresses an active agent by one half-step.
	EventAdvance = sched.EventAdvance
)

// View is the read-only execution state an Adversary decides from:
// agent count, per-agent positions and actionability, and the event
// counter. It is aliased here so custom adversaries registered with
// RegisterAdversary can implement the Adversary interface from outside
// this module, not just compose the built-in strategies.
type View = sched.View

// Meeting is a recorded meeting of two or more agents.
type Meeting = sched.Meeting

// Summary is the scheduler-level outcome of one execution.
type Summary = sched.Summary

// NewTraceObserver returns an Observer that writes a line per
// traversal, meeting and phase change to w — the quick way to watch an
// execution from a command line (`rvsim -trace`).
func NewTraceObserver(w io.Writer) Observer {
	return &FuncObserver{
		Traversal: func(agent, from, to int) {
			fmt.Fprintf(w, "agent %d: %d -> %d\n", agent, from, to)
		},
		Meeting: func(m Meeting) {
			where := fmt.Sprintf("node %d", m.Node)
			if m.InEdge {
				where = fmt.Sprintf("edge %v", m.Edge)
			}
			fmt.Fprintf(w, "MEETING %v at %s (step %d, cost %d)\n", m.Participants, where, m.Step, m.Cost)
		},
		Phase: func(agent int, phase string) {
			fmt.Fprintf(w, "agent %d: [%s]\n", agent, phase)
		},
	}
}

// lockedObserver serializes an Observer across concurrently executing
// runners, so a single observer can watch an entire RunBatch.
type lockedObserver struct {
	mu    sync.Mutex
	inner Observer
}

var _ Observer = (*lockedObserver)(nil)

func (l *lockedObserver) OnEvent(step int, ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnEvent(step, ev)
}

func (l *lockedObserver) OnTraversal(agent, from, to int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnTraversal(agent, from, to)
}

func (l *lockedObserver) OnMeeting(m Meeting) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnMeeting(m)
}

func (l *lockedObserver) OnPhase(agent int, phase string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnPhase(agent, phase)
}
