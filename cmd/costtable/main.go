// Command costtable regenerates the cost-model experiments of
// EXPERIMENTS.md: E1 (Π vs n), E2 (Π vs label length), E3 and E3x
// (baseline comparison and crossover) and E7 (lemma inequalities), under
// a selectable exploration-length polynomial.
//
// Usage:
//
//	costtable -table all -p "P=k^3"
//	costtable -table E3 -n 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"meetpoly/internal/buildinfo"
	"meetpoly/internal/experiments"
)

func main() {
	table := flag.String("table", "all", "table to print: E1|E2|E3|E3x|E7|E9|all")
	pname := flag.String("p", "P=k (verified compact)", "exploration polynomial (see -list-p)")
	listP := flag.Bool("list-p", false, "list available P models and exit")
	n := flag.Int("n", 4, "graph size for E2/E3")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("costtable"))
		return
	}

	models := experiments.PModels()
	if *listP {
		names := make([]string, 0, len(models))
		for k := range models {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Println(k)
		}
		return
	}
	m, ok := models[*pname]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown P model %q; use -list-p\n", *pname)
		os.Exit(2)
	}
	emit := func(t *experiments.Table) { t.Render(os.Stdout) }
	want := func(id string) bool { return *table == "all" || *table == id }

	if want("E1") {
		emit(experiments.E1PiVsN(m, []int{2, 4, 8, 16, 32, 64}, 1))
	}
	if want("E2") {
		emit(experiments.E2PiVsLabelLen(m, *n, []int{1, 2, 4, 8, 16, 32, 64}))
	}
	if want("E3") {
		emit(experiments.E3BaselineVsPi(m, *n, []int{1, 2, 4, 8, 16, 24, 32, 48, 64}))
	}
	if want("E3x") {
		emit(experiments.E3Crossover(m, []int{2, 3, 4, 6, 8, 10}, 1024))
	}
	if want("E7") {
		emit(experiments.E7Lemmas(m, [][2]int{{2, 4}, {3, 6}, {5, 8}, {8, 12}}))
	}
	if want("E9") {
		// Theorem 4.1's bound needs Pi at E(n); only compact P models
		// keep E(n) in evaluatable range.
		if e := m.EUpper(8); e.IsInt64() && e.Int64() < 1<<26 {
			emit(experiments.E9SGLBound(m, []int{2, 3, 4, 6, 8}, 2, 3))
		} else {
			fmt.Fprintln(os.Stderr, "E9 skipped: E(n) too large under this P model")
		}
	}
}
