package sched

import (
	"testing"

	"meetpoly/internal/graph"
)

func TestWalkerHaltsOnExhaustedStepper(t *testing.T) {
	g := graph.Path(3)
	w := &Walker{Stepper: script(0, 1)}
	other := &Walker{Stepper: script()}
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 2}, Agents: []Agent{w, other},
		InitiallyAwake: []int{0, 1}, MaxSteps: 100,
	}, &RoundRobin{})
	sum := r.Run()
	if sum.Traversals[0] > 2 {
		t.Errorf("walker made %d traversals, script allows 2", sum.Traversals[0])
	}
}

func TestWalkerStopAtMeeting(t *testing.T) {
	g := graph.Path(4)
	// Both walk towards each other with long scripts; with
	// StopAtMeeting they halt at the first node decision after contact.
	a := &Walker{Stepper: script(0, 1, 1, 0, 0, 1, 1), StopAtMeeting: true}
	b := &Walker{Stepper: script(0, 0, 1, 1, 0, 0, 1), StopAtMeeting: true}
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 3}, Agents: []Agent{a, b},
		InitiallyAwake: []int{0, 1}, MaxSteps: 200,
	}, &RoundRobin{})
	sum := r.Run()
	if sum.FirstMeeting == nil {
		t.Fatal("no meeting")
	}
	if !a.Met() || !b.Met() {
		t.Error("meeting not delivered to both")
	}
	// After the meeting both agents halt quickly; traversals stay small.
	if sum.TotalCost > 6 {
		t.Errorf("agents kept walking after rendezvous: cost %d", sum.TotalCost)
	}
	if a.MeetCount() < 1 {
		t.Error("meet count not recorded")
	}
}

func TestWalkerPayloadExchanged(t *testing.T) {
	g := graph.Path(2)
	a := &Walker{Stepper: script(0), Payload: "A", StopAtMeeting: true}
	b := &Walker{Stepper: script(0), Payload: "B", StopAtMeeting: true}
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 1}, Agents: []Agent{a, b},
		InitiallyAwake: []int{0, 1}, MaxSteps: 50,
	}, &RoundRobin{})
	sum := r.Run()
	if sum.FirstMeeting == nil {
		t.Fatal("no meeting")
	}
}

func TestViewPredictions(t *testing.T) {
	// Set up a state where advancing creates contact and verify the
	// avoider's lookahead predicate agrees with the runner's outcome.
	g := graph.Path(2)
	a := &Walker{Stepper: script(0)}
	b := &Walker{Stepper: script(0)}
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 1}, Agents: []Agent{a, b},
		InitiallyAwake: []int{0, 1}, MaxSteps: 3,
	}, &capture{})
	r.Run()
}

// capture drives two steps and checks View invariants on the way.
type capture struct{ n int }

func (c *capture) Next(v *View) (Event, bool) {
	c.n++
	switch c.n {
	case 1:
		for i, n := 0, v.K(); i < n; i++ {
			if v.CanWake(i) {
				return Event{Kind: EventWake, Agent: i}, true
			}
		}
		return Event{}, false
	case 2:
		if !v.CanAdvance(0) {
			return Event{}, false
		}
		// First half-step: no contact yet (other agent still at node of
		// the opposite side, mover enters the edge).
		if v.AdvanceCreatesContact(0) {
			// Opposite agent not in the edge yet: must be false.
			return Event{}, false
		}
		return Event{Kind: EventAdvance, Agent: 0}, true
	case 3:
		// Agent 0 is inside the edge; advancing agent 1 into the same
		// edge from the other side must predict a crossing.
		if v.CanAdvance(1) && !v.AdvanceCreatesContact(1) {
			return Event{}, false
		}
		return Event{Kind: EventAdvance, Agent: 1}, true
	default:
		return Event{}, false
	}
}

func TestCyclicCertifierErrors(t *testing.T) {
	if _, err := CertifyCyclic([]int{0}, []int{1, 0, 1}); err == nil {
		t.Error("routeA with no moves accepted")
	}
	if _, err := CertifyCyclic([]int{0, 1}, []int{1, 0}); err == nil {
		t.Error("non-closed cycle accepted")
	}
	if _, err := CertifyCyclic([]int{0, 1}, []int{0, 1, 0}); err == nil {
		t.Error("same start accepted")
	}
}

func TestCyclicCertifierImmediateBlock(t *testing.T) {
	// Cycle passes through A's start node: A cannot even finish one move
	// in some schedules... but CertifyCyclic is about ALL schedules; if
	// B's loop visits A's start, A parked at start will be met whenever B
	// passes while A is there — the adversary can time B to pass while A
	// is away, so forcing depends on the topology. Just verify the
	// simplest forced case: B's cycle is exactly A's only edge.
	routeA := []int{0, 1}
	cycleB := []int{1, 0, 1}
	res, err := CertifyCyclic(routeA, cycleB)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Forced {
		t.Errorf("bouncing B on A's only edge must force the meeting: %+v", res)
	}
}

func TestCyclicCertifierEscape(t *testing.T) {
	// B loops around a 4-ring; A takes a single co-rotating step and
	// stops: the adversary keeps them antipodal.
	cycleB := []int{0, 1, 2, 3, 0}
	routeA := []int{2, 3}
	res, err := CertifyCyclic(routeA, cycleB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forced {
		t.Error("co-rotation with a one-step route cannot be forced")
	}
}
