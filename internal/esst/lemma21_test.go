package esst

import (
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/uxs"
)

// TestLemma21 verifies Lemma 2.1: for m <= n, if the trajectory produced
// by R(2m, v) in a graph of size n is clean — every visited node has
// degree at most m-1 — then it visits at least m distinct nodes. This is
// the counting engine behind ESST's termination detection: a clean trunc
// is guaranteed to be "wide", so too few distinct sighting codes expose a
// graph smaller than the phase parameter.
func TestLemma21(t *testing.T) {
	cat := uxs.NewVerified(uxs.DefaultFamily(8), 1)
	cases := []*graph.Graph{
		graph.Path(6),
		graph.Ring(8),
		graph.Star(7),
		graph.Complete(5),
		graph.BinaryTree(7),
		graph.RandomTree(8, 5),
		graph.RandomConnected(7, 0.3, 9),
	}
	checked := 0
	for _, g := range cases {
		if v := cat; !v.Covers(g) {
			v.Extend(g)
		}
		n := g.N()
		for m := 1; m <= n; m++ {
			seq := cat.Seq(2 * m)
			for start := 0; start < n; start++ {
				nodes := uxs.Walk(g, start, seq)
				clean := true
				distinct := make(map[int]bool, len(nodes))
				for _, v := range nodes {
					distinct[v] = true
					if g.Degree(v) > m-1 {
						clean = false
					}
				}
				if !clean {
					continue
				}
				checked++
				if len(distinct) < m {
					t.Errorf("%s: clean R(%d) from %d visits only %d distinct nodes, Lemma 2.1 needs >= %d",
						g, 2*m, start, len(distinct), m)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no clean trajectories sampled; Lemma 2.1 untested")
	}
	t.Logf("Lemma 2.1 verified on %d clean trajectories", checked)
}

// TestLemma21CleanRequiresLowDegree: on a star, no trajectory through
// the centre is clean until m exceeds the centre's degree — the
// cleanliness precondition does real work.
func TestLemma21CleanRequiresLowDegree(t *testing.T) {
	cat := uxs.NewVerified(uxs.DefaultFamily(8), 1)
	g := graph.Star(8) // centre degree 7
	m := 4             // m-1 = 3 < 7: anything visiting the centre is unclean
	seq := cat.Seq(2 * m)
	for start := 0; start < g.N(); start++ {
		nodes := uxs.Walk(g, start, seq)
		if len(nodes) <= 1 {
			continue // leaf that never moved (impossible here, but safe)
		}
		clean := true
		for _, v := range nodes {
			if g.Degree(v) > m-1 {
				clean = false
			}
		}
		if clean {
			t.Errorf("walk from %d on star-8 claimed clean at m=%d despite centre degree 7", start, m)
		}
	}
}
