package sched

import (
	"fmt"
	"math/rand"
)

// RoundRobin wakes every agent immediately and then advances agents in
// cyclic index order, skipping those that cannot act. It is the
// synchronous-like baseline schedule.
type RoundRobin struct {
	next int
}

// Next implements Adversary.
//
//rvlint:hotpath
func (rr *RoundRobin) Next(v *View) (Event, bool) {
	n := v.K()
	if v.AnyDormant() {
		for i := 0; i < n; i++ {
			if v.CanWake(i) {
				return Event{Kind: EventWake, Agent: i}, true
			}
		}
	}
	// rr.next stays in [0, n); the wrap is a compare instead of a
	// modulo, which costs an integer division in this per-event loop.
	if rr.next >= n {
		rr.next = 0
	}
	i := rr.next
	for off := 0; off < n; off++ {
		if v.CanAdvance(i) {
			rr.next = i + 1
			return Event{Kind: EventAdvance, Agent: i}, true
		}
		i++
		if i >= n {
			i = 0
		}
	}
	return Event{}, false
}

// Biased advances agent i Weights[i] half-steps per cycle, modelling
// persistently different agent speeds (e.g. 10:1). Zero-weight agents are
// frozen until everyone else is stuck, keeping the schedule valid.
type Biased struct {
	Weights []int

	cur  int
	left int
}

// Next implements Adversary.
//
//rvlint:hotpath
func (b *Biased) Next(v *View) (Event, bool) {
	n := v.K()
	if len(b.Weights) != n {
		badWeights(len(b.Weights), n)
	}
	if v.AnyDormant() {
		for i := 0; i < n; i++ {
			if v.CanWake(i) {
				return Event{Kind: EventWake, Agent: i}, true
			}
		}
	}
	for tries := 0; tries < 2*n+1; tries++ {
		if b.left > 0 && v.CanAdvance(b.cur) {
			b.left--
			return Event{Kind: EventAdvance, Agent: b.cur}, true
		}
		b.cur = (b.cur + 1) % n
		b.left = b.Weights[b.cur]
	}
	// All weighted agents stuck; advance anyone actionable (including
	// zero-weight agents) to preserve progress.
	for i := 0; i < n; i++ {
		if v.CanAdvance(i) {
			return Event{Kind: EventAdvance, Agent: i}, true
		}
	}
	return Event{}, false
}

// badWeights fails loudly on a mis-sized weight vector (Biased.Next's
// cold path, kept out of its hot body).
func badWeights(have, want int) {
	panic(fmt.Sprintf("sched: Biased has %d weights for %d agents", have, want))
}

// LateWake keeps every agent except Primary dormant for Hold events,
// modelling the adversary's freedom to start agents at different times,
// then falls back to round-robin. Dormant agents are still woken earlier
// if a travelling agent visits their start node (the runner enforces the
// model's wake-on-visit rule independently of the adversary).
type LateWake struct {
	Primary int
	Hold    int

	rr RoundRobin
}

// Next implements Adversary.
//
//rvlint:hotpath
func (l *LateWake) Next(v *View) (Event, bool) {
	if v.Steps < l.Hold {
		if v.CanWake(l.Primary) {
			return Event{Kind: EventWake, Agent: l.Primary}, true
		}
		if v.CanAdvance(l.Primary) {
			return Event{Kind: EventAdvance, Agent: l.Primary}, true
		}
		// Primary stuck (halted or mid-meeting): fall through to RR so
		// the run keeps progressing.
	}
	return l.rr.Next(v)
}

// Random issues uniformly random valid events from a seeded source:
// chaotic but reproducible speed variation.
type Random struct {
	rng *rand.Rand
	buf []Event // candidate scratch, reused so Next allocates nothing
}

// NewRandom returns a Random adversary with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Adversary.
//
//rvlint:hotpath
func (r *Random) Next(v *View) (Event, bool) {
	candidates := r.buf[:0]
	anyDormant := v.AnyDormant()
	for i, n := 0, v.K(); i < n; i++ {
		if anyDormant && v.CanWake(i) {
			// The append target is r.buf, which grows to 2k once and is
			// reused every event after; amortized cost is zero.
			candidates = append(candidates, Event{Kind: EventWake, Agent: i}) //lint:allow hotalloc
		}
		if v.CanAdvance(i) {
			candidates = append(candidates, Event{Kind: EventAdvance, Agent: i}) //lint:allow hotalloc
		}
	}
	r.buf = candidates
	if len(candidates) == 0 {
		return Event{}, false
	}
	return candidates[r.rng.Intn(len(candidates))], true
}

// Avoider is the meeting-dodging adversary: it wakes everyone (a mobile
// agent dodges better than a sitting one) and then advances, by rotating
// preference, only agents whose next half-step creates no contact. When
// every possible advance creates contact the meeting is locally
// unavoidable and the avoider concedes the least-bad event. This is the
// strongest online strategy; the lattice certifier (Certify) bounds what
// any strategy, online or not, could achieve for two agents.
type Avoider struct {
	next int
}

// Next implements Adversary.
//
//rvlint:hotpath
func (a *Avoider) Next(v *View) (Event, bool) {
	n := v.K()
	if v.AnyDormant() {
		for i := 0; i < n; i++ {
			if v.CanWake(i) {
				return Event{Kind: EventWake, Agent: i}, true
			}
		}
	}
	if a.next >= n {
		a.next = 0
	}
	// First pass: a contact-free advance. (Wrapping by compare, not
	// modulo: this loop runs every adversary event.)
	i := a.next
	for off := 0; off < n; off++ {
		if v.CanAdvance(i) && !v.advanceContact(i) {
			a.next = i + 1
			return Event{Kind: EventAdvance, Agent: i}, true
		}
		i++
		if i >= n {
			i = 0
		}
	}
	// Forced: concede with any valid advance.
	i = a.next
	for off := 0; off < n; off++ {
		if v.CanAdvance(i) {
			a.next = i + 1
			return Event{Kind: EventAdvance, Agent: i}, true
		}
		i++
		if i >= n {
			i = 0
		}
	}
	return Event{}, false
}

// Strategies returns the named adversary suite used across experiments.
// Weights follow the agent count k.
func Strategies(k int) map[string]func() Adversary {
	ws := make([]int, k)
	for i := range ws {
		ws[i] = 1 + 4*i // 1:5:9:... speed skew
	}
	return map[string]func() Adversary{
		"round-robin": func() Adversary { return &RoundRobin{} },
		"biased":      func() Adversary { return &Biased{Weights: ws} },
		"late-wake":   func() Adversary { return &LateWake{Primary: 0, Hold: 200} },
		"random":      func() Adversary { return NewRandom(42) },
		"avoider":     func() Adversary { return &Avoider{} },
	}
}
