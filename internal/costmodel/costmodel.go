// Package costmodel evaluates, exactly and symbolically, the cost bounds
// proved in the paper: the starred recurrences from the proof of Theorem
// 3.1 (X*, Q*, Y*, Z*, A*, B*, K*, Ω*, T*), the rendezvous guarantee
// Π(n, m), and the cost of the exponential baseline the paper improves
// upon. All quantities are big integers parameterized by the exploration
// length polynomial P, so the package regenerates the paper's
// quantitative content — polynomial growth in the graph size and in the
// length of the smaller label, versus exponential/doubly-exponential
// growth for the baseline — without executing the (astronomically long)
// worst-case walks. See DESIGN.md §2.4.
package costmodel

import (
	"fmt"
	"math"
	"math/big"
	"sync"
)

// PFunc is an exploration length polynomial: P(k) is the number of edge
// traversals of the trajectory R(k, v). It must be non-decreasing.
type PFunc func(k int) *big.Int

// PPoly returns P(k) = c * k^d, the generic stand-in for Reingold's
// polynomial (whose degree the paper leaves abstract).
func PPoly(c, d int) PFunc {
	if c < 1 || d < 0 {
		panic("costmodel: PPoly needs c >= 1, d >= 0")
	}
	return func(k int) *big.Int {
		if k < 1 {
			return big.NewInt(int64(c))
		}
		p := new(big.Int).Exp(big.NewInt(int64(k)), big.NewInt(int64(d)), nil)
		return p.Mul(p, big.NewInt(int64(c)))
	}
}

// PLinear returns P(k) = c * k, the shape achieved by family-verified
// compact catalogs on small graph families.
func PLinear(c int) PFunc { return PPoly(c, 1) }

// PTable returns a PFunc backed by concrete measured lengths, clamped to
// the last entry beyond the table (matching verified catalogs, whose P
// plateaus once the family's largest graph is covered).
func PTable(lens []int) PFunc {
	if len(lens) == 0 {
		panic("costmodel: PTable needs at least one entry")
	}
	return func(k int) *big.Int {
		if k < 1 {
			k = 1
		}
		if k > len(lens) {
			k = len(lens)
		}
		return big.NewInt(int64(lens[k-1]))
	}
}

// Model memoizes the starred recurrences for a fixed P. Safe for
// concurrent use.
type Model struct {
	p PFunc

	mu       sync.Mutex
	memo     map[key]*big.Int
	prefixHi map[byte]int        // highest index with a computed prefix sum
	piMemo   map[[2]int]*big.Int // Pi cached per (n, mLen): oracles re-ask per run
}

type key struct {
	kind byte
	k    int
}

// New returns a Model over the given exploration length polynomial.
func New(p PFunc) *Model {
	return &Model{
		p:        p,
		memo:     make(map[key]*big.Int),
		prefixHi: make(map[byte]int),
		piMemo:   make(map[[2]int]*big.Int),
	}
}

func (m *Model) get(kind byte, k int, f func() *big.Int) *big.Int {
	kk := key{kind, k}
	m.mu.Lock()
	if v, ok := m.memo[kk]; ok {
		m.mu.Unlock()
		return v
	}
	m.mu.Unlock()
	v := f()
	m.mu.Lock()
	m.memo[kk] = v
	m.mu.Unlock()
	return v
}

// P returns P(k).
func (m *Model) P(k int) *big.Int { return m.p(k) }

// XStar returns X*_k = 2P(k) + 1.
func (m *Model) XStar(k int) *big.Int {
	return m.get('X', k, func() *big.Int {
		v := new(big.Int).Lsh(m.p(k), 1)
		return v.Add(v, one)
	})
}

// QStar returns Q*_k = sum_{i=1..k} X*_i.
func (m *Model) QStar(k int) *big.Int {
	return m.prefixSum('Q', k, m.XStar)
}

// prefixSum memoizes sum_{i=1..k} f(i) incrementally: the sum is only
// ever extended from its highest computed index, keeping sweeps over
// growing k linear instead of quadratic.
func (m *Model) prefixSum(kind byte, k int, f func(int) *big.Int) *big.Int {
	m.mu.Lock()
	if v, ok := m.memo[key{kind, k}]; ok {
		m.mu.Unlock()
		return v
	}
	base := m.prefixHi[kind]
	acc := new(big.Int)
	if base > 0 {
		acc.Set(m.memo[key{kind, base}])
	}
	m.mu.Unlock()
	for i := base + 1; i <= k; i++ {
		acc.Add(acc, f(i))
		stored := new(big.Int).Set(acc)
		m.mu.Lock()
		m.memo[key{kind, i}] = stored
		if i > m.prefixHi[kind] {
			m.prefixHi[kind] = i
		}
		m.mu.Unlock()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.memo[key{kind, k}]
}

// YStar returns Y*_k = 2P(k) * Q*_k.
func (m *Model) YStar(k int) *big.Int {
	return m.get('Y', k, func() *big.Int {
		v := new(big.Int).Lsh(m.p(k), 1)
		return v.Mul(v, m.QStar(k))
	})
}

// ZStar returns Z*_k = sum_{i=1..k} Y*_i.
func (m *Model) ZStar(k int) *big.Int {
	return m.prefixSum('Z', k, m.YStar)
}

// AStar returns A*_k = 2P(k) * Z*_k.
func (m *Model) AStar(k int) *big.Int {
	return m.get('A', k, func() *big.Int {
		v := new(big.Int).Lsh(m.p(k), 1)
		return v.Mul(v, m.ZStar(k))
	})
}

// BStar returns B*_k = 2 A*_{4k} * Y*_k.
func (m *Model) BStar(k int) *big.Int {
	return m.get('B', k, func() *big.Int {
		v := new(big.Int).Lsh(m.AStar(4*k), 1)
		return v.Mul(v, m.YStar(k))
	})
}

// KStar returns K*_k = 2(B*_{4k} + A*_{8k}) * X*_k.
func (m *Model) KStar(k int) *big.Int {
	return m.get('K', k, func() *big.Int {
		v := new(big.Int).Add(m.BStar(4*k), m.AStar(8*k))
		v.Lsh(v, 1)
		return v.Mul(v, m.XStar(k))
	})
}

// OmegaStar returns Ω*_k = (2k-1) K*_k * X*_k.
func (m *Model) OmegaStar(k int) *big.Int {
	return m.get('W', k, func() *big.Int {
		v := new(big.Int).Mul(big.NewInt(int64(2*k-1)), m.KStar(k))
		return v.Mul(v, m.XStar(k))
	})
}

var one = big.NewInt(1)

// TStar returns the proof's bound on the length of the k-th piece when
// the modified-label horizon is N: T*_k <= N(2A*_{4k} + 2B*_{2k} + K*_k).
func (m *Model) TStar(k, n2 int) *big.Int {
	v := new(big.Int).Lsh(m.AStar(4*k), 1)
	b := new(big.Int).Lsh(m.BStar(2*k), 1)
	v.Add(v, b)
	v.Add(v, m.KStar(k))
	return v.Mul(v, big.NewInt(int64(n2)))
}

// ModifiedLen returns l = 2m + 2, the length of the modified label of a
// label of binary length m.
func ModifiedLen(m int) int { return 2*m + 2 }

// Horizon returns N = 2(n + l) + 1, the piece index by which Theorem 3.1
// guarantees the meeting, for graph size n and shorter-label length m.
func Horizon(n, m int) int { return 2*(n+ModifiedLen(m)) + 1 }

// Pi returns Π(n, m) = sum_{k=1..N} (T*_k + Ω*_k): the Theorem 3.1 bound
// on the number of edge traversals either agent performs before the
// meeting is guaranteed, where n is the graph size and m the length of
// the smaller label. Results are cached per (n, m): campaign oracles
// re-ask for the same handful of combinations once per executed run.
func (m *Model) Pi(n, mLen int) *big.Int {
	pk := [2]int{n, mLen}
	m.mu.Lock()
	if v, ok := m.piMemo[pk]; ok {
		m.mu.Unlock()
		return v
	}
	m.mu.Unlock()
	nn := Horizon(n, mLen)
	s := new(big.Int)
	for k := 1; k <= nn; k++ {
		s.Add(s, m.TStar(k, nn))
		s.Add(s, m.OmegaStar(k))
	}
	m.mu.Lock()
	m.piMemo[pk] = s
	m.mu.Unlock()
	return s
}

// BaselineCost returns the per-agent cost of the naive exponential
// algorithm the paper describes in §3 (and attributes, in cost shape, to
// [17, 18]): an agent with label L in a graph of known size n follows
// (R(n,v) R̄(n,v))^((2P(n)+1)^L), i.e. 2P(n) * (2P(n)+1)^L traversals.
// The result is exponential in the label *value* L — hence doubly
// exponential in the label length — and exponential in n through P's
// argument when P itself must absorb a size guess.
//
// The exact integer is materialized, so labelValue is capped: beyond
// 2^20 the value would occupy gigabytes (that blow-up IS the paper's
// point); use BaselineLog2 for large labels.
func (m *Model) BaselineCost(n int, labelValue uint64) *big.Int {
	if labelValue > 1<<20 {
		panic("costmodel: BaselineCost would materialize gigabytes; use BaselineLog2")
	}
	base := m.XStar(n) // 2P(n)+1
	exp := new(big.Int).Exp(base, new(big.Int).SetUint64(labelValue), nil)
	per := new(big.Int).Lsh(m.p(n), 1)
	return exp.Mul(exp, per)
}

// BaselineLog2 returns log2 of the baseline's per-agent cost without
// materializing it: labelValue * log2(2P(n)+1) + log2(2P(n)).
func (m *Model) BaselineLog2(n int, labelValue uint64) float64 {
	per := new(big.Int).Lsh(m.p(n), 1)
	return float64(labelValue)*ApproxLog2(m.XStar(n)) + ApproxLog2(per)
}

// BaselineTotal returns the baseline's total cost for two agents.
func (m *Model) BaselineTotal(n int, l1, l2 uint64) *big.Int {
	t := m.BaselineCost(n, l1)
	return t.Add(t, m.BaselineCost(n, l2))
}

// ApproxLog2 returns a float approximation of log2 of a positive big
// integer, for slope/table rendering.
func ApproxLog2(v *big.Int) float64 {
	if v.Sign() <= 0 {
		panic("costmodel: ApproxLog2 needs a positive value")
	}
	bits := v.BitLen()
	// Use the top 53 bits for the mantissa.
	shift := 0
	if bits > 53 {
		shift = bits - 53
	}
	top := new(big.Int).Rsh(v, uint(shift))
	f, _ := new(big.Float).SetInt(top).Float64()
	return float64(shift) + math.Log2(f)
}

// String renders a short description of the model for reports.
func (m *Model) String() string {
	return fmt.Sprintf("costmodel{P(1)=%v,P(2)=%v,P(4)=%v}", m.p(1), m.p(2), m.p(4))
}
