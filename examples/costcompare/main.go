// Costcompare regenerates the paper's headline claim as tables: the
// prior art's rendezvous cost is exponential in the graph size and in
// the label VALUE (doubly exponential in the label length), while
// RV-asynch-poly's bound Pi(n, m) is polynomial in both the graph size
// and the label LENGTH. The crossover table shows where the polynomial's
// (enormous) constants are amortized.
package main

import (
	"fmt"
	"os"

	"meetpoly/internal/costmodel"
	"meetpoly/internal/experiments"
)

func main() {
	// The cost model is parameterized by the exploration polynomial P;
	// P(k)=k matches the verified compact catalogs used in simulation,
	// P(k)=k^3 is a Reingold-like stand-in (ablation in DESIGN.md §8).
	for _, m := range []struct {
		name  string
		model *costmodel.Model
	}{
		{"P(k) = k (verified compact catalogs)", costmodel.New(costmodel.PLinear(1))},
		{"P(k) = k^3 (Reingold-like)", costmodel.New(costmodel.PPoly(1, 3))},
	} {
		fmt.Printf("### exploration polynomial: %s\n\n", m.name)
		experiments.E1PiVsN(m.model, []int{2, 4, 8, 16, 32}, 1).Render(os.Stdout)
		experiments.E3BaselineVsPi(m.model, 4, []int{1, 2, 4, 8, 16, 32, 64}).Render(os.Stdout)
		experiments.E3Crossover(m.model, []int{2, 4, 8}, 1024).Render(os.Stdout)
	}
	fmt.Println("Reading the tables: log2(baseline) doubles with every added label bit;")
	fmt.Println("log2(Pi) grows by a bounded increment per doubling of n or m — the")
	fmt.Println("exponential-to-polynomial improvement of the paper's title.")
}
