package costmodel

import (
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

func TestPPoly(t *testing.T) {
	p := PPoly(3, 2)
	for k, want := range map[int]int64{1: 3, 2: 12, 5: 75} {
		if got := p(k); got.Int64() != want {
			t.Errorf("PPoly(3,2)(%d) = %v, want %d", k, got, want)
		}
	}
	if got := p(0); got.Int64() != 3 {
		t.Errorf("PPoly clamp at 0: %v", got)
	}
}

func TestPTable(t *testing.T) {
	p := PTable([]int{5, 9, 9, 14})
	for k, want := range map[int]int64{1: 5, 2: 9, 4: 14, 9: 14, 0: 5} {
		if got := p(k); got.Int64() != want {
			t.Errorf("PTable(%d) = %v, want %d", k, got, want)
		}
	}
}

func TestBadPFuncsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"PPoly":  func() { PPoly(0, 1) },
		"PTable": func() { PTable(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestStarredRecurrencesByHand pins the recurrences against hand-computed
// values for P(k) = 1 (so arithmetic mistakes cannot hide in symbols).
func TestStarredRecurrencesByHand(t *testing.T) {
	m := New(PPoly(1, 0)) // P(k) = 1 for all k
	// X* = 3; Q*_k = 3k; Y*_k = 2*3k = 6k; Z*_k = 6*k(k+1)/2 = 3k(k+1);
	// A*_k = 2*Z*_k = 6k(k+1);
	// B*_k = 2*A*_{4k}*Y*_k = 2*6*4k*(4k+1)*6k = 288k^2(4k+1)
	checks := []struct {
		name string
		f    func(int) *big.Int
		k    int
		want int64
	}{
		{"X*", m.XStar, 5, 3},
		{"Q*", m.QStar, 5, 15},
		{"Y*", m.YStar, 5, 30},
		{"Z*", m.ZStar, 5, 90},
		{"A*", m.AStar, 5, 180},
		{"B*", m.BStar, 1, 288 * 5},
		{"B*", m.BStar, 2, 288 * 4 * 9},
		{"K*", m.KStar, 1, 2 * (288*16*17 + 6*8*9) * 3},
		{"Ω*", m.OmegaStar, 1, 1 * 2 * (288*16*17 + 6*8*9) * 3 * 3},
	}
	for _, c := range checks {
		if got := c.f(c.k); got.Int64() != c.want {
			t.Errorf("%s(%d) = %v, want %d", c.name, c.k, got, c.want)
		}
	}
}

func TestHorizonAndModifiedLen(t *testing.T) {
	if got := ModifiedLen(3); got != 8 {
		t.Errorf("ModifiedLen(3) = %d, want 8", got)
	}
	// N = 2(n+l)+1 with l = 2m+2.
	if got := Horizon(4, 3); got != 2*(4+8)+1 {
		t.Errorf("Horizon(4,3) = %d", got)
	}
}

func TestPiPositiveAndMonotone(t *testing.T) {
	m := New(PLinear(2))
	prev := big.NewInt(0)
	for n := 2; n <= 8; n++ {
		pi := m.Pi(n, 1)
		if pi.Cmp(prev) <= 0 {
			t.Errorf("Pi(%d,1) = %v not increasing (prev %v)", n, pi, prev)
		}
		prev = pi
	}
	prev = big.NewInt(0)
	for mm := 1; mm <= 8; mm++ {
		pi := m.Pi(3, mm)
		if pi.Cmp(prev) <= 0 {
			t.Errorf("Pi(3,%d) = %v not increasing in label length", mm, pi)
		}
		prev = pi
	}
}

// TestPiPolynomialSlope regenerates the paper's headline shape: log Pi
// grows linearly in log n (polynomial), with slope roughly the degree of
// the composition; doubling n multiplies Pi by a bounded factor.
func TestPiPolynomialSlope(t *testing.T) {
	m := New(PLinear(1))
	l1 := ApproxLog2(m.Pi(8, 1))
	l2 := ApproxLog2(m.Pi(16, 1))
	l3 := ApproxLog2(m.Pi(32, 1))
	s12 := l2 - l1
	s23 := l3 - l2
	// Polynomial: successive doublings raise log2 by a near-constant
	// amount (the effective degree). Exponential growth would make the
	// increments themselves grow linearly in n (i.e. s23 >> s12).
	if s23 > s12*1.5 {
		t.Errorf("Pi growth looks super-polynomial: increments %.2f then %.2f", s12, s23)
	}
	if s12 < 1 || s12 > 20 {
		t.Errorf("unexpected effective degree: doubling n raises log2(Pi) by %.2f", s12)
	}
}

// TestBaselineDoublyExponentialInLabelLength regenerates the gap claim:
// the baseline's cost is exponential in the label value, i.e. doubly
// exponential in the label length, while Pi is polynomial in the length.
func TestBaselineDoublyExponentialInLabelLength(t *testing.T) {
	m := New(PLinear(1))
	n := 4
	// Label value 2^len - 1 for len = 1..4.
	var prevLog float64
	for length := 1; length <= 4; length++ {
		label := uint64(1)<<length - 1
		c := m.BaselineCost(n, label)
		lg := ApproxLog2(c)
		if length > 1 && lg < prevLog*1.8 {
			t.Errorf("baseline log2 cost at len %d = %.1f; expected roughly doubling from %.1f",
				length, lg, prevLog)
		}
		prevLog = lg
	}
	// And the rendezvous bound must beat the baseline decisively already
	// for modest labels.
	pi := m.Pi(n, 8) // 8-bit labels
	base := m.BaselineCost(n, 255)
	if pi.Cmp(base) >= 0 {
		t.Errorf("Pi(%d,8) = %v not smaller than baseline %v for 8-bit labels", n, pi, base)
	}
}

func TestBaselineTotal(t *testing.T) {
	m := New(PLinear(1))
	tot := m.BaselineTotal(3, 1, 2)
	want := new(big.Int).Add(m.BaselineCost(3, 1), m.BaselineCost(3, 2))
	if tot.Cmp(want) != 0 {
		t.Errorf("BaselineTotal = %v, want %v", tot, want)
	}
}

func TestCheckLemmasHold(t *testing.T) {
	for _, p := range []PFunc{PLinear(1), PLinear(3), PPoly(1, 2), PPoly(1, 3)} {
		m := New(p)
		for _, n := range []int{2, 3, 5, 8} {
			for _, l := range []int{4, 6, 10} {
				iqs := m.CheckLemmas(n, l)
				if len(iqs) < 7 {
					t.Fatalf("expected >= 7 inequalities, got %d", len(iqs))
				}
				for _, iq := range iqs {
					if !iq.Holds {
						t.Errorf("%s fails at n=%d l=%d: LHS=%v RHS=%v",
							iq.Name, n, l, iq.LHS, iq.RHS)
					}
				}
				if !AllHold(iqs) {
					t.Errorf("AllHold false at n=%d l=%d", n, l)
				}
			}
		}
	}
}

func TestCheckLemmasProperty(t *testing.T) {
	m := New(PLinear(2))
	f := func(nRaw, lRaw uint8) bool {
		n := 2 + int(nRaw)%12
		l := 4 + 2*(int(lRaw)%8)
		return AllHold(m.CheckLemmas(n, l))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCheckLemmasPanicsOnBadArgs(t *testing.T) {
	m := New(PLinear(1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n < 2")
		}
	}()
	m.CheckLemmas(1, 4)
}

func TestMonotone(t *testing.T) {
	m := New(PLinear(2))
	if msg := m.Monotone(24); msg != "" {
		t.Errorf("Monotone violation: %s", msg)
	}
}

func TestApproxLog2(t *testing.T) {
	if got := ApproxLog2(big.NewInt(1024)); got < 9.99 || got > 10.01 {
		t.Errorf("ApproxLog2(1024) = %v", got)
	}
	huge := new(big.Int).Lsh(big.NewInt(1), 300)
	if got := ApproxLog2(huge); got < 299.9 || got > 300.1 {
		t.Errorf("ApproxLog2(2^300) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive value")
		}
	}()
	ApproxLog2(big.NewInt(0))
}

func TestModelString(t *testing.T) {
	if s := New(PLinear(1)).String(); !strings.Contains(s, "costmodel{") {
		t.Errorf("String() = %q", s)
	}
}

func TestMemoizationConsistency(t *testing.T) {
	m := New(PPoly(2, 2))
	a := m.KStar(3)
	b := m.KStar(3)
	if a.Cmp(b) != 0 {
		t.Error("memoized value differs")
	}
	// The returned big.Ints are shared; mutating them would corrupt the
	// cache. Verify the accessor returns consistent values after use.
	_ = new(big.Int).Add(a, big.NewInt(1))
	if m.KStar(3).Cmp(b) != 0 {
		t.Error("cache corrupted by arithmetic on returned value")
	}
}
