// Package advfix seeds the aliasing bug viewretain exists to catch: an
// adversary squirrels away the runner's reused View buffer (or a slice
// reachable from it) and reads it after the runner has rewritten it.
package advfix

import "sched"

// Sticky retains the view pointer itself across calls.
type Sticky struct {
	last *sched.View
}

func (s *Sticky) Next(v *sched.View) (sched.Event, bool) {
	s.last = v // want `outlives the call`
	return sched.Event{Agent: 0}, true
}

// Slicer retains a slice reachable from the view: same bug one hop in.
type Slicer struct {
	agents []int
}

func (s *Slicer) Next(v *sched.View) (sched.Event, bool) {
	s.agents = v.Agents // want `outlives the call`
	return sched.Event{}, true
}

// Chain launders the pointer through locals before storing: the
// fixpoint walk still sees it.
type Chain struct {
	kept *sched.View
}

func (c *Chain) Next(v *sched.View) (sched.Event, bool) {
	u := v
	w := u
	c.kept = w // want `outlives the call`
	return sched.Event{}, true
}

// Leaker hands the view to everything that outlives the frame.
func Leaker(v *sched.View, ch chan *sched.View, sink func()) *sched.View {
	ch <- v                          // want `channel send`
	go keep(v)                       // want `goroutine argument`
	f := func() int { return v.K() } // want `closure capture`
	f()
	return v // want `return`
}

func keep(v *sched.View) {}

// Copier is the legal shape: scalar copies and accessor results only.
type Copier struct {
	steps int
	agent int
}

func (c *Copier) Next(v *sched.View) (sched.Event, bool) {
	c.steps = v.Steps    // scalar copy: safe
	c.agent = v.Agent(0) // accessor returns a copy: safe
	if v.CanAdvance(0) {
		return sched.Event{Kind: 1}, true
	}
	return sched.Event{}, false
}

// Delegate forwards to another adversary, like LateWake falling back to
// round-robin: a call result is fresh, not view-derived.
type Delegate struct {
	inner Copier
}

func (d *Delegate) Next(v *sched.View) (sched.Event, bool) {
	return d.inner.Next(v)
}

// Allowed shows a reviewed suppression.
type Allowed struct {
	last *sched.View
}

func (a *Allowed) Next(v *sched.View) (sched.Event, bool) {
	a.last = v //lint:allow viewretain -- cleared before Next returns in the real code this models
	a.last = nil
	return sched.Event{}, true
}
