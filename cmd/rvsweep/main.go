// Command rvsweep runs a campaign sweep from a declarative JSON spec:
// it expands the spec's cross product (graph families × sizes × start
// pairs × label pairs × adversaries × scenario kinds) into concrete
// scenarios, executes them over a shared engine, checks every run
// against the paper-bound oracles (termination, Π/baseline/ESST cost
// bounds, lemma inequalities), and prints the aggregate cost table.
//
// Every failing cell is reported with a replay seed string; re-run that
// one cell with:
//
//	rvsweep -spec campaign.json -replay 'seed#index'
//
// The process exits non-zero when any oracle fails, so a sweep doubles
// as a CI gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"meetpoly"
)

func main() {
	var (
		specPath    = flag.String("spec", "", "path to the sweep spec JSON (required)")
		replay      = flag.String("replay", "", "replay a single cell from its seed string instead of sweeping")
		expand      = flag.Bool("expand", false, "expand the spec and list cells without running them")
		maxN        = flag.Int("maxn", 6, "size ceiling of the engine's verified catalog family")
		seed        = flag.Int64("seed", 1, "seed of the engine's verified catalog")
		parallelism = flag.Int("parallelism", 0, "worker pool size (0 = GOMAXPROCS)")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON instead of a table")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "rvsweep: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	spec, err := meetpoly.LoadSweepSpecFile(*specPath)
	if err != nil {
		fatal(err)
	}

	if *expand {
		cells, _, err := meetpoly.ExpandSweep(spec)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			out, err := json.MarshalIndent(cells, "", "  ")
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(out))
		} else {
			for _, c := range cells {
				fmt.Printf("%-6s %s\n", c.Seed, c.ID)
			}
		}
		// The count is progress chatter, not data: keep stdout (cell
		// list or JSON) machine-parseable.
		fmt.Fprintf(os.Stderr, "%d cells\n", len(cells))
		return
	}

	opts := []meetpoly.Option{meetpoly.WithMaxN(*maxN), meetpoly.WithSeed(*seed)}
	if *parallelism > 0 {
		opts = append(opts, meetpoly.WithParallelism(*parallelism))
	}
	eng := meetpoly.NewEngine(opts...)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *replay != "" {
		cr, err := eng.ReplayCell(ctx, spec, *replay)
		if err != nil {
			fatal(err)
		}
		out, err := json.MarshalIndent(cr, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		// A canceled replay verified nothing: the oracles skip canceled
		// runs by design, so a clean verdict here would be a lie.
		if cr.Outcome.Canceled {
			fmt.Fprintln(os.Stderr, "rvsweep: replay interrupted before completing")
			os.Exit(1)
		}
		if cr.Failed() {
			os.Exit(1)
		}
		return
	}

	rep, err := eng.Sweep(ctx, spec)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(rep.Table())
	}
	if rep.Canc > 0 {
		// Report.OK is false for interrupted sweeps (canceled cells
		// verified nothing); name the cause before the gate fires.
		fmt.Fprintf(os.Stderr, "rvsweep: sweep interrupted: %d of %d cells canceled\n", rep.Canc, rep.Cells)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvsweep:", err)
	os.Exit(1)
}
