package costmodel

import "math/big"

// ESSTCostBound returns the cost bound for Procedure ESST terminating at
// the given phase, mirroring the paper's estimate from the proof of
// Theorem 2.1 ("3P(2j) + P(2j)·P(j) per phase"), but with this
// implementation's exact walking pattern: per phase j the agent walks the
// trunc at most 3 times plus one probe-and-backtrack of length 2P(j) at
// each of the P(2j)+1 trunc nodes:
//
//	sum_{j=3,6,...,phase} [ 4 P(2j) + (P(2j)+1) * 2 P(j) ].
func (m *Model) ESSTCostBound(phase int) *big.Int {
	total := new(big.Int)
	for j := 3; j <= phase; j += 3 {
		p2j := m.p(2 * j)
		pj := m.p(j)
		term := new(big.Int).Lsh(p2j, 2) // 4 P(2j)
		probes := new(big.Int).Add(p2j, one)
		probes.Mul(probes, new(big.Int).Lsh(pj, 1))
		term.Add(term, probes)
		total.Add(total, term)
	}
	return total
}

// TESST returns T(ESST(n)): the worst-case cost of an ESST execution in
// a graph of size at most n — the bound at the guaranteed terminating
// phase 9n+3 (Theorem 2.1).
func (m *Model) TESST(n int) *big.Int {
	return m.ESSTCostBound(9*n + 3)
}

// EUpper returns the size bound E(n) an explorer derives from ESST: the
// procedure's cost plus one (cost >= #edges >= n-1, so cost+1 >= n).
func (m *Model) EUpper(n int) *big.Int {
	return new(big.Int).Add(m.TESST(n), one)
}

// SGLAgentCostBound returns the per-agent cost bound of Algorithm SGL
// from the proof of Theorem 4.1 (Claim 1): with m the length of the
// smallest participating label,
//
//	Pi(n, m) + 2 T(ESST(n)) + 1 + Pi(E(n), m) + 2 P(E(n))
//
// covering the traveller phase, ESST and its backtrack, the resumed
// RV-asynch-poly execution to the Pi(E(n), ·) horizon, and the final
// sweep(s). The dominating term is Pi evaluated at the polynomial size
// bound E(n), so the result is polynomial in n and m — but, E(n) being a
// polynomial of n rather than n itself, with a substantially larger
// degree than plain rendezvous (a fact the paper leaves implicit and the
// E9 table makes visible).
func (m *Model) SGLAgentCostBound(n, mLen int) *big.Int {
	e := m.EUpper(n)
	// Pi's graph-size argument is an int; E(n) can be astronomically
	// large under cubic P models. Clamp with care: if E(n) does not fit,
	// the bound itself is "beyond big" — represent it by evaluating Pi at
	// the largest representable horizon and flagging via panic instead of
	// silently lying.
	if !e.IsInt64() || e.Int64() > 1<<26 {
		panic("costmodel: E(n) too large to evaluate Pi(E(n), m); use a compact P model")
	}
	total := m.Pi(n, mLen)
	total = new(big.Int).Set(total)
	total.Add(total, new(big.Int).Lsh(m.TESST(n), 1))
	total.Add(total, one)
	total.Add(total, m.Pi(int(e.Int64()), mLen))
	total.Add(total, new(big.Int).Lsh(m.p(int(e.Int64())), 1))
	return total
}

// SGLTotalCostBound returns Theorem 4.1's team-wide bound: k agents each
// within SGLAgentCostBound.
func (m *Model) SGLTotalCostBound(n, mLen, k int) *big.Int {
	per := m.SGLAgentCostBound(n, mLen)
	return new(big.Int).Mul(per, big.NewInt(int64(k)))
}
