module meetpoly

go 1.24
