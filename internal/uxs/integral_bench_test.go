package uxs

import (
	"fmt"
	"testing"

	"meetpoly/internal/graph"
)

// integralMapRef is the pre-optimization implementation of Integral: the
// edge set tracked in a map keyed by graph.EdgeID. It is kept here as the
// benchmark baseline for the dense []bool version and as an independent
// reference for the property tests.
func integralMapRef(g *graph.Graph, start int, seq Sequence) bool {
	if g.M() == 0 {
		return true
	}
	covered := make(map[[2]int]bool, g.M())
	cur, entry := start, 0
	for _, x := range seq {
		d := g.Degree(cur)
		if d == 0 {
			return false
		}
		port := (entry + x) % d
		covered[g.EdgeID(cur, port)] = true
		cur, entry = g.Succ(cur, port)
	}
	return len(covered) == g.M()
}

// benchGraphs is the workload the campaign sweeps hammer: the verified
// family's graph shapes at their usual sizes.
func benchGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.Ring(6),
		graph.Complete(6),
		graph.Grid(3, 3),
		graph.Petersen(),
		graph.RandomConnected(8, 0.3, 57),
	}
}

func benchIntegral(b *testing.B, impl func(*graph.Graph, int, Sequence) bool) {
	for _, g := range benchGraphs() {
		seq := Generate(g.N(), 1, 7)
		b.Run(fmt.Sprintf("%s/len=%d", g.Name(), len(seq)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				impl(g, i%g.N(), seq)
			}
		})
	}
}

// BenchmarkIntegralDense measures the shipped dense []bool edge-set.
func BenchmarkIntegralDense(b *testing.B) { benchIntegral(b, Integral) }

// BenchmarkIntegralMapBaseline measures the replaced map[[2]int]bool
// edge-set, for the before/after comparison.
func BenchmarkIntegralMapBaseline(b *testing.B) { benchIntegral(b, integralMapRef) }
