package sched

import (
	"bytes"
	"reflect"
	"testing"

	"meetpoly/internal/graph"
)

// fuzzWalk emits ports derived from the fuzz input, reduced modulo the
// local degree so every decision is valid; it halts after limit moves.
type fuzzWalk struct {
	data  []byte
	off   int
	i     int
	limit int
}

func (w *fuzzWalk) Next(deg, entry int) (int, bool) {
	if w.i >= w.limit || len(w.data) == 0 {
		return 0, false
	}
	b := w.data[(w.off+13*w.i)%len(w.data)]
	w.i++
	return int(b) % deg, true
}

// fuzzAdv turns the fuzz input into a stream of events that are always
// valid at issue time (the runner panics on invalid events by contract,
// and the fuzzed property is the half-step semantics, not the panic).
// Before issuing each event it hands the fresh adversary view to the
// invariant checker.
type fuzzAdv struct {
	data  []byte
	i     int
	check func(v *View)
	last  Event
	has   bool
}

func (a *fuzzAdv) Next(v *View) (Event, bool) {
	a.check(v)
	var cands []Event
	for i, n := 0, v.K(); i < n; i++ {
		if v.CanWake(i) {
			cands = append(cands, Event{Kind: EventWake, Agent: i})
		}
		if v.CanAdvance(i) {
			cands = append(cands, Event{Kind: EventAdvance, Agent: i})
		}
	}
	if len(cands) == 0 || a.i >= len(a.data) {
		return Event{}, false
	}
	ev := cands[int(a.data[a.i])%len(cands)]
	a.i++
	a.last, a.has = ev, true
	return ev, true
}

// invariantChecker verifies, between consecutive adversary views, the
// half-step semantics of the package doc: only the evented agent moves,
// an agent at a node can only enter the edge its committed port names,
// an agent strictly inside an edge can only arrive at its far endpoint
// (never teleport), and meetings fire exactly when a pair of agents
// comes newly into contact — at a shared node, or inside a shared edge
// in opposite directions.
type invariantChecker struct {
	t        *testing.T
	g        *graph.Graph
	prev     []AgentView
	prevOK   bool
	contacts map[[2]int]bool
	meetings []Meeting
	adv      *fuzzAdv
}

func (c *invariantChecker) onMeeting(m Meeting) { c.meetings = append(c.meetings, m) }

func (c *invariantChecker) contactsOf(agents []AgentView) map[[2]int]bool {
	cur := make(map[[2]int]bool)
	for i := 0; i < len(agents); i++ {
		for j := i + 1; j < len(agents); j++ {
			a, b := agents[i].Pos, agents[j].Pos
			switch {
			case a.Kind == AtNode && b.Kind == AtNode && a.Node == b.Node:
				cur[[2]int{i, j}] = true
			case a.Kind == InEdge && b.Kind == InEdge && a.From == b.To && a.To == b.From:
				cur[[2]int{i, j}] = true
			}
		}
	}
	return cur
}

func (c *invariantChecker) check(v *View) {
	t := c.t
	if c.prevOK {
		ev, has := c.adv.last, c.adv.has
		for i := 0; i < v.K(); i++ {
			pa, ca := c.prev[i], v.Agent(i)
			moved := has && ev.Agent == i && ev.Kind == EventAdvance
			if !moved {
				if ca.Pos != pa.Pos || ca.Traversals != pa.Traversals {
					t.Fatalf("agent %d moved without an advance event: %+v -> %+v (event %+v)",
						i, pa.Pos, ca.Pos, ev)
				}
				continue
			}
			switch pa.Pos.Kind {
			case AtNode:
				to, _ := c.g.Succ(pa.Pos.Node, pa.PendingPort)
				want := Position{Kind: InEdge, From: pa.Pos.Node, To: to}
				if ca.Pos != want || ca.Traversals != pa.Traversals {
					t.Fatalf("agent %d: half-step 1 from %+v produced %+v, want %+v",
						i, pa.Pos, ca.Pos, want)
				}
			case InEdge:
				want := Position{Kind: AtNode, Node: pa.Pos.To}
				if ca.Pos != want || ca.Traversals != pa.Traversals+1 {
					t.Fatalf("agent %d teleported: half-step 2 from %+v produced %+v (traversals %d -> %d)",
						i, pa.Pos, ca.Pos, pa.Traversals, ca.Traversals)
				}
			}
		}
	}
	// Every meeting recorded since the previous view must match its
	// participants' (stable) positions...
	for _, m := range c.meetings {
		for _, p := range m.Participants {
			pos := v.Agent(p).Pos
			if m.InEdge {
				if pos.Kind != InEdge || canonEdge(pos.From, pos.To) != m.Edge {
					c.t.Fatalf("in-edge meeting %+v but participant %d is at %+v", m, p, pos)
				}
			} else if pos.Kind != AtNode || pos.Node != m.Node {
				c.t.Fatalf("node meeting %+v but participant %d is at %+v", m, p, pos)
			}
		}
	}
	// ...and every newly-formed contact pair must have fired a meeting
	// covering it ("meetings fire exactly on the two conditions").
	cur := c.contactsOf(c.snapshot(v))
	if c.prevOK {
		for pair := range cur {
			if c.contacts[pair] {
				continue
			}
			covered := false
			for _, m := range c.meetings {
				in1, in2 := false, false
				for _, p := range m.Participants {
					in1 = in1 || p == pair[0]
					in2 = in2 || p == pair[1]
				}
				if in1 && in2 {
					covered = true
					break
				}
			}
			if !covered {
				c.t.Fatalf("agents %v came into contact without a meeting (meetings: %+v)",
					pair, c.meetings)
			}
		}
	}
	c.contacts = cur
	c.meetings = c.meetings[:0]
	c.prev = c.snapshot(v)
	c.prevOK = true
}

// snapshot copies the live per-agent views into the checker's buffer.
func (c *invariantChecker) snapshot(v *View) []AgentView {
	c.prev = c.prev[:0]
	for i, n := 0, v.K(); i < n; i++ {
		c.prev = append(c.prev, v.Agent(i))
	}
	return c.prev
}

// runFuzzSchedule executes one fuzzed schedule on the selected core and
// returns its summary.
func runFuzzSchedule(t *testing.T, data []byte, force bool) Summary {
	g := graph.Ring(5)
	agents := []Agent{
		&Walker{Stepper: &fuzzWalk{data: data, off: 0, limit: 40}},
		&Walker{Stepper: &fuzzWalk{data: data, off: 7, limit: 40}},
		&Walker{Stepper: &fuzzWalk{data: data, off: 19, limit: 40}},
	}
	adv := &fuzzAdv{data: data}
	chk := &invariantChecker{t: t, g: g, adv: adv}
	adv.check = chk.check
	r, err := NewRunner(Config{
		Graph:          g,
		Starts:         []int{0, 2, 4},
		Agents:         agents,
		InitiallyAwake: []int{0},
		MaxSteps:       4 * len(data) * 3,
		Observer:       &FuncObserver{Meeting: chk.onMeeting},
		ForceBlocking:  force,
	}, adv)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	return r.Run()
}

// FuzzAdversaryEvents feeds arbitrary event streams into Runner.apply
// through a synthetic adversary and asserts the half-step invariants of
// the package doc on every event, on both execution cores — which must
// additionally agree on the whole summary.
func FuzzAdversaryEvents(f *testing.F) {
	f.Add([]byte{1, 3, 0, 255, 17, 4, 4, 9, 2, 88, 13, 5})
	f.Add(bytes.Repeat([]byte{0}, 48))
	f.Add(bytes.Repeat([]byte{5, 1, 9}, 30))
	f.Add([]byte{250, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		fast := runFuzzSchedule(t, data, false)
		slow := runFuzzSchedule(t, data, true)
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("cores diverge on the same schedule:\nstepper   %+v\ngoroutine %+v", fast, slow)
		}
	})
}
