// Package rverr declares the sentinel errors shared by every algorithm
// package and re-exported by the public meetpoly facade. It is a leaf
// package: the internal packages wrap these sentinels into their own
// error messages with %w, and callers match them with errors.Is through
// the facade's aliases regardless of which layer produced the failure.
package rverr

import "errors"

var (
	// ErrBudgetExhausted reports that an execution stopped at its event
	// or traversal budget before reaching its goal (meeting, coverage,
	// or full output). The partial result is usually still returned
	// alongside this error.
	ErrBudgetExhausted = errors.New("meetpoly: budget exhausted before completion")

	// ErrInvalidScenario reports a configuration the model rules out:
	// duplicate starts, non-positive or duplicate labels, out-of-range
	// nodes, unknown kinds, malformed adversary specs, and the like.
	ErrInvalidScenario = errors.New("meetpoly: invalid scenario")

	// ErrCatalogUncovered reports that the engine's verified exploration
	// catalog does not cover the scenario's graph and automatic extension
	// is disabled, so the integrality guarantee would not hold.
	ErrCatalogUncovered = errors.New("meetpoly: exploration catalog does not cover graph")

	// ErrCanceled reports that a context was canceled while an execution
	// was in flight. It is distinct from context.Canceled so that callers
	// can tell "this run was aborted" from unrelated context plumbing;
	// errors returned by the engine match both.
	ErrCanceled = errors.New("meetpoly: run canceled")
)
