package esst

import (
	"meetpoly/internal/sched"
	"meetpoly/internal/uxs"
)

// MoveRec records one traversal (exit port taken, entry port observed) so
// that walks can be retraced backwards.
type MoveRec struct {
	Exit  int
	Entry int
}

// Hooks connect a Procedure to whatever drives the agent's physical
// moves and token detection. Algorithm SGL's explorers must recognize
// their own token by label among many co-moving agents; the standalone
// Explorer treats any meeting as a sighting. Both supply Hooks.
type Hooks struct {
	// Move performs one traversal by the given port and returns the
	// arrival observation plus whether the token was sighted during it.
	Move func(port int) (sched.Observation, bool)
	// Degree returns the degree of the current node.
	Degree func() int
	// WithToken reports whether the agent is co-located with the token
	// right now (a token parked at the agent's current node).
	WithToken func() bool
	// Phase, if non-nil, is told the index of each phase as it starts
	// (observer plumbing; optional).
	Phase func(i int)
}

// Procedure is the reusable core of ESST: the phase loop of §2, driven
// through Hooks. Fields are read after Run returns.
type Procedure struct {
	Cat      uxs.Catalog
	MaxPhase int // 0 = unlimited
	Hooks    Hooks

	// Results.
	Done  bool
	Phase int
	Cost  int
	// Trace records every traversal made during the procedure, in order,
	// so that SGL's Phase 2 can backtrack the entire Phase 1 walk.
	Trace []MoveRec
}

// move wraps Hooks.Move with cost and trace accounting.
func (pr *Procedure) move(port int) (sched.Observation, bool) {
	obs, saw := pr.Hooks.Move(port)
	pr.Cost++
	pr.Trace = append(pr.Trace, MoveRec{Exit: port, Entry: obs.Entry})
	return obs, saw
}

// backtrack reverses the given recorded moves (latest first).
func (pr *Procedure) backtrack(rec []MoveRec) {
	for t := len(rec) - 1; t >= 0; t-- {
		pr.move(rec[t].Entry)
	}
}

// Run executes phases 3, 6, 9, ... until one completes (true) or the
// phase cap is exceeded (false).
func (pr *Procedure) Run() bool {
	for i := 3; pr.MaxPhase == 0 || i <= pr.MaxPhase; i += 3 {
		if pr.Hooks.Phase != nil {
			pr.Hooks.Phase(i)
		}
		if pr.runPhase(i) {
			pr.Done = true
			pr.Phase = i
			return true
		}
	}
	return false
}

func (pr *Procedure) runPhase(i int) bool {
	// Step 1: the trunc R(2i, v) from the current node.
	seqTrunc := pr.Cat.Seq(2 * i)
	trunc := make([]MoveRec, 0, len(seqTrunc))
	clean := pr.Hooks.Degree() <= i-1
	saw := pr.Hooks.WithToken() // a token at u1 counts as seen
	entry := 0
	for _, x := range seqTrunc {
		deg := pr.Hooks.Degree()
		port := (entry + x) % deg
		obs, sighted := pr.move(port)
		trunc = append(trunc, MoveRec{Exit: port, Entry: obs.Entry})
		entry = obs.Entry
		if obs.Degree > i-1 {
			clean = false
		}
		if sighted {
			saw = true
		}
	}
	if !clean || !saw {
		return false
	}
	// Step 2: backtrack to u1.
	pr.backtrack(trunc)

	// Step 3: probe R(i, u_j) at every trunc node.
	codes := make(map[string]bool)
	for j := 0; j <= len(trunc); j++ {
		if !pr.probe(i, codes) {
			return false
		}
		if j < len(trunc) {
			pr.move(trunc[j].Exit)
		}
	}
	return true
}

func (pr *Procedure) probe(i int, codes map[string]bool) bool {
	if pr.Hooks.WithToken() {
		codes[""] = true // the empty code: token at u_j itself
		return len(codes) < i/3
	}
	seq := pr.Cat.Seq(i)
	partial := make([]MoveRec, 0, len(seq))
	entry := 0
	for _, x := range seq {
		deg := pr.Hooks.Degree()
		port := (entry + x) % deg
		obs, sighted := pr.move(port)
		partial = append(partial, MoveRec{Exit: port, Entry: obs.Entry})
		entry = obs.Entry
		if sighted {
			codes[codeOfRec(partial)] = true
			pr.backtrack(partial)
			return len(codes) < i/3
		}
	}
	return false
}
