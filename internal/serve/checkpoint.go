// Package serve turns the sweep engine into a long-lived campaign
// service: it executes a shard's deterministic cell index-range with
// crash-safe checkpointing (a restarted shard resumes without
// recomputing a single completed cell, and the resumed campaign's
// report is byte-identical to an uninterrupted run), and exposes the
// whole pipeline over HTTP with per-tenant quotas, request budgets and
// graceful drain (cmd/rvserved).
//
// The package leans on three invariants the engine already provides
// (DESIGN.md §6): every cell is a pure function of its replay seed
// string, range expansion yields cell i identically no matter which
// range derives it, and the campaign aggregator folds results
// order-independently and ignores duplicate feeds. Checkpointing is
// therefore just a durable record of (cell results, completed index
// ranges); everything else is replay.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"meetpoly"
	"meetpoly/internal/campaign"
	"meetpoly/internal/faultinject"
	"meetpoly/internal/telemetry"
)

// Checkpoint file names inside a shard's checkpoint directory.
const (
	resultsFile = "results.ndjson"
	rangesFile  = "ranges.log"
)

// Checkpoint is the durable record of one shard's completed cells: an
// append-only NDJSON log of cell results and an append-only log of
// sealed index ranges. The write protocol makes recovery crash-safe at
// any kill point, kill -9 included:
//
//  1. completed cell results are appended (buffered) to results.ndjson;
//  2. Flush fsyncs results.ndjson, THEN appends the newly completed
//     intervals to ranges.log and fsyncs it.
//
// A range therefore never hits disk before every result it covers has.
// Recovery re-merges the interval log (union of all records), truncates
// the torn tail a crash may have left on either file, and trusts only
// results whose index lies in a sealed range — anything else is
// re-executed, never guessed. Results inside sealed ranges are exact:
// cells are pure functions of their seed strings, so a recovered result
// is byte-identical to what re-execution would produce.
type Checkpoint struct {
	dir     string
	results faultinject.WriteSyncer
	ranges  faultinject.WriteSyncer

	resBuf bytes.Buffer // results staged since the last Flush

	sealed  campaign.IndexSet // ranges on disk (recovery finds these)
	pending campaign.IndexSet // recorded to resBuf, not yet sealed

	recovered []meetpoly.SweepCellResult

	// m, when non-nil, receives the checkpoint's durability series
	// (records staged, flush/fsync latency, poison events). Telemetry
	// observes the write protocol; it never participates in it.
	m *shardMetrics

	// err poisons the checkpoint after any failed log write or fsync.
	// The append handles' positions are unknowable after a partial
	// write, and re-appending the staging buffer would leave a torn
	// line in the MIDDLE of results.ndjson: recovery truncates from the
	// first bad line, so every later record would be dropped while
	// ranges.log still sealed them — silently losing cells. A poisoned
	// checkpoint therefore refuses every further Record/Flush, and in
	// particular never appends to ranges.log, preserving the invariant
	// that a sealed range implies its results are durable. The caller
	// abandons the run; recovery on reopen truncates the torn tail and
	// re-executes everything unsealed.
	err error
}

// OpenCheckpoint opens (creating if needed) the checkpoint in dir and
// performs crash recovery: torn tails are truncated away, the sealed
// interval log is re-merged, and the results covered by sealed ranges
// are loaded for replay.
func OpenCheckpoint(dir string) (*Checkpoint, error) {
	return OpenCheckpointFaults(dir, nil)
}

// OpenCheckpointFaults is OpenCheckpoint with a fault injector wrapped
// around the write/fsync seam of both logs (nil injects nothing) — the
// chaos harness's entry point into the durable layer.
func OpenCheckpointFaults(dir string, inj *faultinject.Injector) (*Checkpoint, error) {
	return openCheckpoint(dir, inj, nil)
}

// openCheckpoint is the full-seam constructor RunShard uses: fault
// injection plus the durability metrics.
func openCheckpoint(dir string, inj *faultinject.Injector, m *shardMetrics) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	cp := &Checkpoint{dir: dir, m: m}
	if err := cp.recoverRanges(); err != nil {
		return nil, err
	}
	if err := cp.recoverResults(); err != nil {
		return nil, err
	}
	rf, err := os.OpenFile(filepath.Join(dir, rangesFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint ranges log: %w", err)
	}
	resf, err := os.OpenFile(filepath.Join(dir, resultsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		rf.Close()
		return nil, fmt.Errorf("serve: checkpoint results log: %w", err)
	}
	cp.ranges = faultinject.WrapFile(rf, inj)
	cp.results = faultinject.WrapFile(resf, inj)
	return cp, nil
}

// recoverRanges re-merges the sealed interval log. Only the torn tail a
// crash can leave — a final partial line — is tolerated; it is
// truncated so appends never land after garbage.
func (cp *Checkpoint) recoverRanges() error {
	path := filepath.Join(cp.dir, rangesFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: reading %s: %w", path, err)
	}
	good := 0
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: no terminating newline
		}
		line := data[off : off+nl]
		var lo, hi int
		if n, err := fmt.Sscanf(string(line), "%d %d", &lo, &hi); n != 2 || err != nil || lo < 0 || hi < lo {
			break // torn or corrupt: stop trusting from here on
		}
		cp.sealed.AddRange(lo, hi)
		off += nl + 1
		good = off
	}
	if good < len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return fmt.Errorf("serve: truncating torn tail of %s: %w", path, err)
		}
	}
	return nil
}

// recoverResults loads the results covered by sealed ranges, dropping
// duplicates (a crash between result-append and range-seal makes the
// re-executed cell appear twice; the copies are identical, so first
// wins) and truncating any torn tail.
func (cp *Checkpoint) recoverResults() error {
	path := filepath.Join(cp.dir, resultsFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: reading %s: %w", path, err)
	}
	var loaded campaign.IndexSet
	good := 0
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail
		}
		line := data[off : off+nl]
		var cr meetpoly.SweepCellResult
		if err := json.Unmarshal(line, &cr); err != nil {
			break // torn or corrupt: stop trusting from here on
		}
		if cp.sealed.Contains(cr.Cell.Index) && loaded.Add(cr.Cell.Index) {
			cp.recovered = append(cp.recovered, cr)
		}
		off += nl + 1
		good = off
	}
	if good < len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return fmt.Errorf("serve: truncating torn tail of %s: %w", path, err)
		}
	}
	return nil
}

// Recovered returns the cell results recovery loaded: every recorded
// cell whose index lies in a sealed range, exactly once each, in log
// order. The caller replays these instead of re-executing them.
func (cp *Checkpoint) Recovered() []meetpoly.SweepCellResult { return cp.recovered }

// Completed returns the sealed index set as of recovery plus everything
// sealed since: the indices a resuming shard must NOT re-execute.
func (cp *Checkpoint) Completed() *campaign.IndexSet {
	out := &campaign.IndexSet{}
	out.AddSet(&cp.sealed)
	return out
}

// Record stages one completed cell result. It is durable only after the
// next Flush; a crash before that re-executes the cell.
func (cp *Checkpoint) Record(cr meetpoly.SweepCellResult) error {
	if cp.err != nil {
		return cp.err
	}
	line, err := json.Marshal(cr)
	if err != nil {
		return fmt.Errorf("serve: encoding checkpoint record: %w", err)
	}
	cp.resBuf.Write(line)
	cp.resBuf.WriteByte('\n')
	cp.pending.Add(cr.Cell.Index)
	if cp.m != nil {
		cp.m.recorded.Inc()
	}
	return nil
}

// Pending returns how many recorded results await the next Flush.
func (cp *Checkpoint) Pending() int { return cp.pending.Len() }

// Flush makes every staged record durable: results first (write +
// fsync), then their index intervals (append + fsync). The ordering is
// the crash-safety argument — a sealed range implies its results are on
// disk. Any write or fsync failure poisons the checkpoint (see the err
// field): retrying a partially-written append would bury a torn line
// mid-log where recovery's tail truncation silently drops every record
// after it, so the only safe continuation is to abandon this run and
// let recovery re-execute the unsealed remainder.
func (cp *Checkpoint) Flush() error {
	if cp.err != nil {
		return cp.err
	}
	if cp.pending.Len() == 0 {
		return nil
	}
	var flushStart int64
	if cp.m != nil {
		flushStart = telemetry.Now()
	}
	if _, err := cp.results.Write(cp.resBuf.Bytes()); err != nil {
		return cp.poison(fmt.Errorf("serve: appending checkpoint results: %w", err))
	}
	if err := cp.timedSync(cp.results); err != nil {
		return cp.poison(fmt.Errorf("serve: fsync checkpoint results: %w", err))
	}
	cp.resBuf.Reset()
	var rec bytes.Buffer
	for _, iv := range cp.pending.Ranges() {
		fmt.Fprintf(&rec, "%d %d\n", iv.Lo, iv.Hi)
	}
	if _, err := cp.ranges.Write(rec.Bytes()); err != nil {
		return cp.poison(fmt.Errorf("serve: appending checkpoint ranges: %w", err))
	}
	if err := cp.timedSync(cp.ranges); err != nil {
		return cp.poison(fmt.Errorf("serve: fsync checkpoint ranges: %w", err))
	}
	cp.sealed.AddSet(&cp.pending)
	cp.pending = campaign.IndexSet{}
	if cp.m != nil {
		cp.m.flushes.Inc()
		cp.m.flushNs.ObserveSince(flushStart)
	}
	return nil
}

// poison records err as the checkpoint's sticky failure (see the err
// field's crash-safety argument) and counts the event.
func (cp *Checkpoint) poison(err error) error {
	cp.err = err
	if cp.m != nil {
		cp.m.poisoned.Inc()
	}
	return err
}

// timedSync fsyncs one log, feeding the fsync-latency histogram.
func (cp *Checkpoint) timedSync(f faultinject.WriteSyncer) error {
	if cp.m == nil {
		return f.Sync()
	}
	start := telemetry.Now()
	err := f.Sync()
	cp.m.fsyncNs.ObserveSince(start)
	return err
}

// Close flushes staged records and releases the file handles.
func (cp *Checkpoint) Close() error {
	flushErr := cp.Flush()
	rErr := cp.results.Close()
	gErr := cp.ranges.Close()
	if flushErr != nil {
		return flushErr
	}
	if rErr != nil {
		return rErr
	}
	return gErr
}

// abandon drops the file handles without flushing — the in-process
// stand-in for kill -9 that crash tests use.
func (cp *Checkpoint) abandon() {
	cp.results.Close()
	cp.ranges.Close()
}
