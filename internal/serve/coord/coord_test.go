package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"meetpoly"
	"meetpoly/internal/campaign"
	"meetpoly/internal/faultinject"
)

// coordSpec mirrors the serve package's test campaign: 48 cells over 3
// unique graphs — small enough for milliseconds, fragmented enough
// that leases, kills and resumes all leave real seams to cross.
func coordSpec() meetpoly.SweepSpec {
	return meetpoly.SweepSpec{
		Name:  "serve",
		Seed:  "serve-v1",
		Kinds: []string{"rendezvous", "esst"},
		Graphs: []meetpoly.SweepGraphAxis{
			{Kind: "path", Sizes: []int{3, 4}},
			{Kind: "ring", Sizes: []int{4}},
		},
		StartPairs:  2,
		LabelPairs:  2,
		Adversaries: []string{"", "avoider"},
		Budget:      3000,
		Moves:       60,
	}
}

func newCoordEngine() *meetpoly.Engine {
	return meetpoly.NewEngine(meetpoly.WithMaxN(6), meetpoly.WithSeed(1))
}

func referenceReport(t *testing.T) []byte {
	t.Helper()
	rep, err := newCoordEngine().Sweep(context.Background(), coordSpec())
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestLeaseLifecycle drives the coordinator core with a fake clock:
// grant, heartbeat extension, expiry reclamation, re-grant of the
// reclaimed cells, stale-lease completion, and the report gate.
func TestLeaseLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c, err := New(Config{Spec: coordSpec(), LeaseCells: 16, LeaseTTL: 10 * time.Second, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	total := c.total

	l1 := c.Lease("w1")
	if l1.Status != "lease" || len(l1.Ranges) != 1 || l1.Ranges[0] != (campaign.Interval{Lo: 0, Hi: 16}) {
		t.Fatalf("first lease %+v, want [0,16)", l1)
	}
	l2 := c.Lease("w2")
	if l2.Status != "lease" || l2.Ranges[0] != (campaign.Interval{Lo: 16, Hi: 32}) {
		t.Fatalf("second lease %+v, want [16,32)", l2)
	}

	// Heartbeats keep l1 alive across what would otherwise be expiry.
	now = now.Add(8 * time.Second)
	if !c.Heartbeat(l1.Lease) {
		t.Fatal("heartbeat on a live lease refused")
	}
	now = now.Add(8 * time.Second) // l2 (never heartbeaten) is now dead, l1 alive
	l3 := c.Lease("w3")
	if l3.Status != "lease" || l3.Ranges[0] != (campaign.Interval{Lo: 16, Hi: 32}) {
		t.Fatalf("post-expiry lease %+v, want the reclaimed [16,32)", l3)
	}
	if c.Heartbeat(l2.Lease) {
		t.Fatal("heartbeat on an expired lease succeeded")
	}
	if st := c.StatusNow(); st.Expired != 1 {
		t.Fatalf("status reports %d expired leases, want 1", st.Expired)
	}

	// The dead worker finished its work anyway (it just couldn't
	// heartbeat): its stale completion must be accepted, and the same
	// cells arriving again from w3 must fold as no-ops.
	results := func(lo, hi int) []campaign.CellResult {
		var rs []campaign.CellResult
		for i := lo; i < hi; i++ {
			rs = append(rs, campaign.CellResult{
				Cell:    campaign.Cell{Index: i, ID: "synth", Seed: campaign.CellSeed("synth", i)},
				Outcome: campaign.Outcome{Met: true, Cost: i},
			})
		}
		return rs
	}
	if n, err := c.Complete(l2.Lease, results(16, 32)); err != nil || n != 16 {
		t.Fatalf("stale completion: n=%d err=%v", n, err)
	}
	if n, err := c.Complete(l3.Lease, results(16, 32)); err != nil || n != 16 {
		t.Fatalf("duplicate completion: n=%d err=%v", n, err)
	}
	if c.done.Len() != 16 {
		t.Fatalf("done=%d after duplicate folds, want 16", c.done.Len())
	}

	// Canceled outcomes are protocol errors, never folded.
	canceled := []campaign.CellResult{{
		Cell:    campaign.Cell{Index: 0, ID: "synth", Seed: campaign.CellSeed("synth", 0)},
		Outcome: campaign.Outcome{Canceled: true},
	}}
	if _, err := c.Complete(l1.Lease, canceled); err == nil {
		t.Fatal("canceled cell accepted as a result")
	}
	if c.done.Contains(0) {
		t.Fatal("canceled cell marked done")
	}

	if _, ok := c.Report(); ok {
		t.Fatal("report rendered before the campaign finished")
	}
	if n, err := c.Complete(l1.Lease, results(0, 16)); err != nil || n != 16 {
		t.Fatalf("completing l1: n=%d err=%v", n, err)
	}
	if n, err := c.Complete("nonsense", results(32, total)); err != nil || n != total-32 {
		t.Fatalf("completing remainder under an unknown lease: n=%d err=%v", n, err)
	}
	if !c.Done() {
		t.Fatal("campaign not done after all cells folded")
	}
	if lr := c.Lease("w4"); lr.Status != "done" {
		t.Fatalf("lease after completion %+v, want done", lr)
	}
	if _, ok := c.Report(); !ok {
		t.Fatal("report still gated after completion")
	}
}

// TestLeaseWait: with every unfinished cell leased out, the next
// worker is told to wait, not given overlapping work.
func TestLeaseWait(t *testing.T) {
	c, err := New(Config{Spec: coordSpec(), LeaseCells: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if lr := c.Lease("w1"); lr.Status != "lease" {
		t.Fatalf("first lease %+v", lr)
	}
	if lr := c.Lease("w2"); lr.Status != "wait" || lr.RetryMs <= 0 {
		t.Fatalf("second lease %+v, want wait with a retry hint", lr)
	}
}

// TestChaosFleet is the acceptance differential test: a coordinator
// and a worker fleet under injected faults — one worker killed after a
// flush, one dying on a torn (short) checkpoint write, one on an fsync
// error — completes the campaign through lease expiry, reassignment
// and checkpoint resume, and the merged report is byte-identical to an
// uninterrupted single-process run.
func TestChaosFleet(t *testing.T) {
	spec := coordSpec()
	want := referenceReport(t)

	c, err := New(Config{
		Spec:       spec,
		LeaseCells: 8,
		LeaseTTL:   300 * time.Millisecond,
		RetryAfter: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	root := t.TempDir()
	worker := func(name, chaos string) error {
		var inj *faultinject.Injector
		if chaos != "" {
			inj = faultinject.MustNew(chaos)
		}
		return RunWorker(context.Background(), WorkerConfig{
			Coordinator: ts.URL,
			Engine:      newCoordEngine(),
			Name:        name,
			Dir:         filepath.Join(root, name),
			FlushEvery:  4,
			Faults:      inj,
		})
	}

	// Wave 1: every worker dies its own death. kill=1 is the in-process
	// kill -9 after the first durable flush; short-write=1 tears the
	// first results append and poisons the checkpoint; sync-err=1 fails
	// the first fsync. None of them completes its lease.
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, w := range []struct{ name, chaos string }{
		{"w-killed", "kill=1"},
		{"w-torn", "short-write=1"},
		{"w-fsync", "sync-err=1"},
	} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = worker(w.name, w.chaos)
		}()
	}
	wg.Wait()
	for i, wantErr := range []error{faultinject.ErrKilled, faultinject.ErrWrite, faultinject.ErrSync} {
		if !errors.Is(errs[i], wantErr) {
			t.Fatalf("wave-1 worker %d died with %v, want %v", i, errs[i], wantErr)
		}
	}
	if c.Done() {
		t.Fatal("campaign complete although every worker died mid-lease")
	}

	// Wave 2: the same workers restart clean on their own checkpoint
	// directories (the torn/poisoned logs recover by truncation, sealed
	// cells replay) and drain the pool — waiting out wave 1's leases
	// via the coordinator's wait/expiry path, no manual nudge.
	for i, name := range []string{"w-killed", "w-torn", "w-fsync"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = worker(name, "")
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("wave-2 worker %d failed: %v", i, err)
		}
	}

	st := c.StatusNow()
	if st.Done != st.Total {
		t.Fatalf("status %d/%d done after wave 2", st.Done, st.Total)
	}
	if st.Expired == 0 {
		t.Fatal("no lease ever expired — the faults did not exercise reassignment")
	}

	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fleet report diverges from the uninterrupted single-process run")
	}
}

// TestReportRetryAfter: fetching the report before completion is a 409
// carrying the Retry-After hint.
func TestReportRetryAfter(t *testing.T) {
	c, err := New(Config{Spec: coordSpec(), RetryAfter: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("premature report: code=%d Retry-After=%q, want 409 with hint 2",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}
