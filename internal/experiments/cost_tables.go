package experiments

import (
	"fmt"
	"math/big"

	"meetpoly/internal/costmodel"
)

// E1PiVsN evaluates Π(n, m) over growing graph sizes with the label
// length fixed: the paper's headline "polynomial in the size of the
// graph". The log2 increment per doubling of n estimates the effective
// polynomial degree.
func E1PiVsN(m *costmodel.Model, ns []int, labelLen int) *Table {
	t := &Table{
		ID:      "E1",
		Title:   fmt.Sprintf("Pi(n, m=%d) vs graph size n (%v)", labelLen, m),
		Columns: []string{"n", "log2(Pi)", "delta-per-doubling"},
	}
	var prevLog float64
	var prevN int
	for _, n := range ns {
		pi := m.Pi(n, labelLen)
		lg := costmodel.ApproxLog2(pi)
		slope := "-"
		if prevN > 0 && n == 2*prevN {
			slope = fmt.Sprintf("%.2f", lg-prevLog)
		}
		t.AddRow(n, lg, slope)
		prevLog, prevN = lg, n
	}
	t.Notes = append(t.Notes,
		"bounded delta-per-doubling = polynomial growth; exponential growth would make deltas themselves grow linearly in n")
	return t
}

// E2PiVsLabelLen evaluates Π(n, m) over growing label lengths with n
// fixed: "polynomial in the length of the smaller label".
func E2PiVsLabelLen(m *costmodel.Model, n int, lens []int) *Table {
	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("Pi(n=%d, m) vs shorter-label length m", n),
		Columns: []string{"label-len m", "log2(Pi)", "delta-per-doubling"},
	}
	var prevLog float64
	var prevLen int
	for _, l := range lens {
		pi := m.Pi(n, l)
		lg := costmodel.ApproxLog2(pi)
		slope := "-"
		if prevLen > 0 && l == 2*prevLen {
			slope = fmt.Sprintf("%.2f", lg-prevLog)
		}
		t.AddRow(l, lg, slope)
		prevLog, prevLen = lg, l
	}
	return t
}

// E3BaselineVsPi compares the exponential baseline's cost against Π for
// labels of growing length: who wins, by what factor, and where the gap
// explodes. Label values are the all-ones value of each length (the
// worst case for the baseline at that length).
func E3BaselineVsPi(m *costmodel.Model, n int, lens []int) *Table {
	t := &Table{
		ID:    "E3",
		Title: fmt.Sprintf("baseline (exponential, known n=%d) vs RV-asynch-poly bound", n),
		Columns: []string{
			"label-len", "label-value", "log2(baseline)", "log2(Pi)", "log2(gap)", "winner",
		},
	}
	for _, l := range lens {
		value := uint64(1)<<uint(l) - 1
		lb := m.BaselineLog2(n, value)
		lp := costmodel.ApproxLog2(m.Pi(n, l))
		winner := "RV-asynch-poly"
		if lb < lp {
			winner = "baseline"
		}
		t.AddRow(l, value, lb, lp, lb-lp, winner)
	}
	t.Notes = append(t.Notes,
		"baseline log2 cost doubles with each extra label bit (doubly exponential in length); Pi grows polynomially",
		"the baseline is given the graph size n for free, making the comparison conservative (DESIGN.md §2.5)")
	return t
}

// E3Crossover locates the label length at which the polynomial bound
// overtakes the exponential baseline for each n: small labels briefly
// favour the baseline because Pi's polynomial has enormous constants.
func E3Crossover(m *costmodel.Model, ns []int, maxLen int) *Table {
	t := &Table{
		ID:      "E3x",
		Title:   "crossover: smallest label length where RV-asynch-poly's bound beats the baseline",
		Columns: []string{"n", "crossover label-len", "log2(gap) at crossover+4"},
	}
	for _, n := range ns {
		cross := -1
		for l := 1; l <= maxLen; l++ {
			value := uint64(1)<<uint(l) - 1
			if costmodel.ApproxLog2(m.Pi(n, l)) < m.BaselineLog2(n, value) {
				cross = l
				break
			}
		}
		gap := "-"
		if cross > 0 && cross+4 <= maxLen {
			l := cross + 4
			value := uint64(1)<<uint(l) - 1
			gap = fmt.Sprintf("%.1f", m.BaselineLog2(n, value)-
				costmodel.ApproxLog2(m.Pi(n, l)))
		}
		crossStr := "none <= maxLen"
		if cross > 0 {
			crossStr = fmt.Sprint(cross)
		}
		t.AddRow(n, crossStr, gap)
	}
	return t
}

// E7Lemmas tabulates the synchronization lemmas' counting inequalities
// over a parameter sweep; every row must hold for the proofs of Lemmas
// 3.2-3.6 and Theorem 3.1 to apply.
func E7Lemmas(m *costmodel.Model, pairs [][2]int) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "counting inequalities behind Lemmas 3.2-3.6 / Theorem 3.1",
		Columns: []string{"inequality", "n", "l", "log2(LHS)", "log2(RHS)", "holds"},
	}
	for _, p := range pairs {
		for _, iq := range m.CheckLemmas(p[0], p[1]) {
			t.AddRow(iq.Name, iq.N, iq.L,
				costmodel.ApproxLog2(iq.LHS), costmodel.ApproxLog2(iq.RHS), iq.Holds)
		}
	}
	return t
}

// E9SGLBound tabulates the Theorem 4.1 per-agent and team cost bounds
// (proof of Claim 1): Pi(n,m) + 2 T(ESST(n)) + 1 + Pi(E(n),m) + 2P(E(n)).
// The Pi(E(n), ·) term dominates: SGL pays rendezvous-at-size-E(n),
// where E(n) is itself polynomial in n.
func E9SGLBound(m *costmodel.Model, ns []int, mLen, k int) *Table {
	t := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("Theorem 4.1 cost bounds (m=%d, k=%d agents)", mLen, k),
		Columns: []string{"n", "log2(T_ESST)", "log2(E(n))", "log2(per-agent)", "log2(team)"},
	}
	for _, n := range ns {
		t.AddRow(n,
			costmodel.ApproxLog2(m.TESST(n)),
			costmodel.ApproxLog2(m.EUpper(n)),
			costmodel.ApproxLog2(m.SGLAgentCostBound(n, mLen)),
			costmodel.ApproxLog2(m.SGLTotalCostBound(n, mLen, k)))
	}
	t.Notes = append(t.Notes,
		"polynomial throughout, but Pi evaluated at E(n) = poly(n) raises the effective degree well above plain rendezvous")
	return t
}

// PModels returns the cost-model ablation of DESIGN.md §8: the same
// tables under different exploration-length polynomials.
func PModels() map[string]*costmodel.Model {
	return map[string]*costmodel.Model{
		"P=k (verified compact)": costmodel.New(costmodel.PLinear(1)),
		"P=4k":                   costmodel.New(costmodel.PLinear(4)),
		"P=k^2":                  costmodel.New(costmodel.PPoly(1, 2)),
		"P=k^3 (Reingold-like)":  costmodel.New(costmodel.PPoly(1, 3)),
	}
}

// PiExact returns Π as a big integer for report footers.
func PiExact(m *costmodel.Model, n, labelLen int) *big.Int { return m.Pi(n, labelLen) }
