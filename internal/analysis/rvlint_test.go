package analysis_test

import (
	"path/filepath"
	"testing"

	rvlint "meetpoly/internal/analysis"
	"meetpoly/internal/analysis/analysistest"
)

func testdata(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestDeterminism checks the seeded nondeterminism bugs are caught in
// an in-scope package and that an out-of-scope package (not matching
// -pkgs) is left alone, wall clock and all.
func TestDeterminism(t *testing.T) {
	analysistest.Run(t, testdata(t), rvlint.DeterminismAnalyzer, "meetpoly", "outofscope")
}

// TestViewRetain checks the seeded view-aliasing bugs: retaining the
// pointer, a reachable slice, a local chain, and every escape conduit —
// against the legal copy/delegate shapes.
func TestViewRetain(t *testing.T) {
	analysistest.Run(t, testdata(t), rvlint.ViewRetainAnalyzer, "advfix", "sched")
}

// TestHotAlloc checks every allocation source fires inside an annotated
// function and nothing fires outside one.
func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, testdata(t), rvlint.HotAllocAnalyzer, "hotfix")
}

// TestRegistryPure checks registration-context enforcement and builder
// purity.
func TestRegistryPure(t *testing.T) {
	analysistest.Run(t, testdata(t), rvlint.RegistryPureAnalyzer, "regfix")
}

// TestSnapshot checks the copy-on-write pair rules: unlocked store,
// locked read path, CAS and constructor exemptions.
func TestSnapshot(t *testing.T) {
	analysistest.Run(t, testdata(t), rvlint.SnapshotAnalyzer, "snapfix")
}

// TestAll pins the suite contents: five analyzers, stable names, so the
// driver's -<name> flags and //lint:allow rules stay addressable.
func TestAll(t *testing.T) {
	want := []string{"determinism", "viewretain", "hotalloc", "registrypure", "snapshot"}
	all := rvlint.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
