// Command sglsim runs Algorithm SGL (Strong Global Learning) for a team
// of agents and reports all four application outputs, or regenerates
// table E8. Flags map 1:1 onto a serialized meetpoly.Scenario
// (-dump / -scenario).
//
// Usage:
//
//	sglsim -graph star -n 5 -starts 1,2,3 -labels 4,2,7
//	sglsim -graph path -n 4 -starts 0,3 -labels 1,5 -trace
//	sglsim -table E8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"meetpoly"
	"meetpoly/internal/buildinfo"
	"meetpoly/internal/experiments"
)

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	gkind := flag.String("graph", "star", "path|ring|star|clique|bintree|random")
	n := flag.Int("n", 5, "graph size")
	seed := flag.Int64("seed", 1, "seed for random graphs and the catalog")
	startsFlag := flag.String("starts", "1,2,3", "comma-separated start nodes")
	labelsFlag := flag.String("labels", "4,2,7", "comma-separated labels")
	advName := flag.String("adv", "roundrobin",
		"roundrobin|avoider|random[:seed]|biased[:w1,w2]|latewake[:hold[:agent]]|any registered family")
	budget := flag.Int("budget", 40_000_000, "scheduler event budget")
	table := flag.Bool("table", false, "print table E8 over the default instance suite")
	famMax := flag.Int("family", 6, "catalog family max size")
	scenarioFile := flag.String("scenario", "", "run a serialized scenario JSON file instead of flags")
	dump := flag.Bool("dump", false, "print the scenario JSON implied by the flags and exit")
	trace := flag.Bool("trace", false, "stream traversal/meeting/phase events while running")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("sglsim"))
		return
	}

	opts := []meetpoly.Option{meetpoly.WithMaxN(*famMax), meetpoly.WithSeed(*seed)}
	if *trace {
		opts = append(opts, meetpoly.WithObserver(meetpoly.NewTraceObserver(os.Stdout)))
	}
	eng := meetpoly.NewEngine(opts...)

	if *table {
		experiments.E8SGL(eng.Env(), experiments.DefaultSGLInstances(), *budget).Render(os.Stdout)
		return
	}

	var sc meetpoly.Scenario
	if *scenarioFile != "" {
		var err error
		sc, err = meetpoly.LoadScenarioFile(*scenarioFile, meetpoly.ScenarioSGL)
		if err != nil {
			fatal(err)
		}
	} else {
		starts, err := parseInts(*startsFlag)
		if err != nil {
			fatal(fmt.Errorf("bad -starts: %w", err))
		}
		rawLabels, err := parseInts(*labelsFlag)
		if err != nil {
			fatal(fmt.Errorf("bad -labels: %w", err))
		}
		labs := make([]meetpoly.Label, len(rawLabels))
		for i, v := range rawLabels {
			labs[i] = meetpoly.Label(v)
		}
		sc = meetpoly.Scenario{
			Name:      "sglsim",
			Kind:      meetpoly.ScenarioSGL,
			Graph:     meetpoly.GraphSpec{Kind: *gkind, N: *n, Seed: *seed},
			Starts:    starts,
			Labels:    labs,
			Adversary: *advName,
			Budget:    *budget,
		}
	}
	if *dump {
		data, err := sc.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", data)
		return
	}

	res, err := eng.Run(context.Background(), sc)
	if res == nil {
		fatal(err)
	}
	g, gerr := sc.BuildGraph()
	if gerr != nil {
		fatal(gerr)
	}
	sres := res.SGL
	fmt.Printf("graph=%s team k=%d total cost=%d all-output=%v\n",
		g, len(sc.Labels), sres.TotalCost, sres.AllOutput)
	for _, a := range sres.Agents {
		if !a.HasOutput {
			fmt.Printf("  L%-4d state=%-9s NO OUTPUT (raise -budget)\n", a.Label, a.State)
			continue
		}
		fmt.Printf("  L%-4d state=%-9s team=%d leader=L%d newname=%d traversals=%d output=%v\n",
			a.Label, a.State, a.TeamSize, a.Leader, a.NewName, a.Traversals, a.Output)
	}
}
