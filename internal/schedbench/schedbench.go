// Package schedbench is the scheduler's microbenchmark harness, shared
// by the test-suite benchmark BenchmarkRunnerHalfSteps and the
// cmd/rvbench CLI so both measure exactly the same workload: two
// co-rotating agents on a 6-ring driven by the round-robin adversary,
// one adversary event (= one half-step) per benchmark iteration.
//
// The package lives outside internal/sched because it imports the
// testing package (testing.Benchmark powers rvbench's standalone
// measurements), which a library package must not pull in.
package schedbench

import (
	"context"
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/sched"
)

// endless is an infinite port-0 stepper: the agents co-rotate around
// the ring forever, so every benchmark iteration is a pure half-step
// with no meetings after the first contact episode and no halts.
type endless struct{}

func (endless) Next(deg, entry int) (int, bool) { return 0, true }

// HalfSteps returns a benchmark function that executes exactly b.N
// adversary events on one runner. force selects the execution core:
// false = direct-dispatch stepper core, true = goroutine core
// (sched.Config.ForceBlocking). ns/op is therefore ns per half-step.
func HalfSteps(force bool) func(b *testing.B) {
	return func(b *testing.B) {
		g := graph.Ring(6)
		r, err := sched.NewRunner(sched.Config{
			Graph:  g,
			Starts: []int{0, 3},
			Agents: []sched.Agent{
				&sched.Walker{Stepper: endless{}},
				&sched.Walker{Stepper: endless{}},
			},
			InitiallyAwake: []int{0, 1},
			MaxSteps:       b.N,
			ForceBlocking:  force,
		}, &sched.RoundRobin{})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		b.ReportAllocs()
		b.ResetTimer()
		sum := r.Run()
		if sum.Steps != b.N {
			b.Fatalf("executed %d of %d half-steps", sum.Steps, b.N)
		}
	}
}

// Measure runs the half-step benchmark standalone (outside go test) and
// returns ns, bytes and allocations per half-step.
func Measure(force bool) (nsPerOp float64, bytesPerOp, allocsPerOp int64) {
	res := testing.Benchmark(HalfSteps(force))
	return float64(res.T.Nanoseconds()) / float64(res.N), res.AllocedBytesPerOp(), res.AllocsPerOp()
}

// BatchCellBudget is the per-cell event budget of the batch-dispatch
// benchmark: small enough that per-cell dispatch (runner construction,
// pooled-scratch churn, loop setup/teardown) dominates per-event work —
// the cell shape campaign matrices are made of, and the overhead the
// batched tier exists to amortize.
const BatchCellBudget = 4

// batchLaneCap mirrors the sweep tier's batch size: cells per
// BatchRunner in the batched variant.
const batchLaneCap = 256

// BatchCells returns a benchmark function that executes b.N identical
// two-agent cells of BatchCellBudget events each. batched=false runs
// one fresh Runner per cell — the v2 per-cell dispatch path;
// batched=true fills shared-graph BatchRunners with up to batchLaneCap
// lanes and runs each group through one lockstep loop. ns/op is ns per
// cell; the ratio of the two is the dispatch-amortization win.
//
// Cell preparation — walkers, adversaries, the agent slices — happens
// outside the timed region, from a slot pool sized batchLaneCap (slot l
// serves lane l of each batched chunk, and cell i%batchLaneCap of the
// per-cell variant): in the engine's sweep that work belongs to the
// prepare stage, which both tiers pay identically, so the benchmark
// isolates what actually differs — dispatch. The agents co-rotate and
// never meet, so reusing a slot across cells carries no state over.
func BatchCells(batched bool) func(b *testing.B) {
	return func(b *testing.B) {
		g := graph.Ring(6)
		type slot struct {
			agents []sched.Agent
			pair   [2]sched.Stepper
			adv    *sched.RoundRobin
		}
		slots := make([]slot, batchLaneCap)
		for i := range slots {
			a := &sched.Walker{Stepper: endless{}}
			c := &sched.Walker{Stepper: endless{}}
			slots[i] = slot{agents: []sched.Agent{a, c}, pair: [2]sched.Stepper{a, c}, adv: &sched.RoundRobin{}}
		}
		starts := []int{0, 3}
		awake := []int{0, 1}
		b.ReportAllocs()
		b.ResetTimer()
		if !batched {
			for i := 0; i < b.N; i++ {
				s := &slots[i%batchLaneCap]
				r, err := sched.NewRunner(sched.Config{
					Graph:          g,
					Starts:         starts,
					Agents:         s.agents,
					InitiallyAwake: awake,
					MaxSteps:       BatchCellBudget,
				}, s.adv)
				if err != nil {
					b.Fatal(err)
				}
				if sum := r.Run(); sum.Steps != BatchCellBudget {
					b.Fatalf("executed %d of %d half-steps", sum.Steps, BatchCellBudget)
				}
				r.Close()
			}
			return
		}
		for done := 0; done < b.N; {
			lanes := b.N - done
			if lanes > batchLaneCap {
				lanes = batchLaneCap
			}
			br, err := sched.NewBatchRunner(context.Background(), g)
			if err != nil {
				b.Fatal(err)
			}
			for l := 0; l < lanes; l++ {
				if _, err := br.AddLane(sched.LaneConfig{
					Starts:    [2]int{0, 3},
					Agents:    slots[l].pair,
					Adversary: slots[l].adv,
					MaxSteps:  BatchCellBudget,
				}); err != nil {
					b.Fatal(err)
				}
			}
			br.Run()
			for l := 0; l < lanes; l++ {
				if sum := br.Summary(l); sum.Steps != BatchCellBudget {
					b.Fatalf("lane %d executed %d of %d half-steps", l, sum.Steps, BatchCellBudget)
				}
			}
			br.Close()
			done += lanes
		}
	}
}

// MeasureBatch runs the batch-dispatch benchmark standalone and returns
// ns, bytes and allocations per cell. It takes the fastest of three
// runs: the minimum is the least-noise estimator of a benchmark's true
// cost (interference only ever adds time), and the dispatch speedup is
// a ratio of two such measurements, so jitter on either side would
// otherwise square into the recorded number.
func MeasureBatch(batched bool) (nsPerOp float64, bytesPerOp, allocsPerOp int64) {
	for i := 0; i < 3; i++ {
		res := testing.Benchmark(BatchCells(batched))
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		if i == 0 || ns < nsPerOp {
			nsPerOp, bytesPerOp, allocsPerOp = ns, res.AllocedBytesPerOp(), res.AllocsPerOp()
		}
	}
	return nsPerOp, bytesPerOp, allocsPerOp
}
