package esst

import "meetpoly/internal/uxs"

// mstate is the Machine's program counter: every emitting state names
// the state that processes the emitted move's arrival.
type mstate uint8

const (
	msPhaseStart mstate = iota // at the trunc start of phase i
	msTruncMove                // about to emit the next trunc move
	msTruncArr                 // processing a trunc move's arrival
	msBacktrack                // reversing back[backIdx..0]
	msProbeStart               // at u_j, about to probe R(i, u_j)
	msProbeMove                // about to emit the next probe move
	msProbeArr                 // processing a probe move's arrival
	msProbeEval                // back at u_j after a sighted probe
	msTruncStep                // about to step along the trunc to u_{j+1}
	msDone
)

// Machine is Procedure ESST inverted into a pull-based resumable state
// machine: instead of blocking in Hooks.Move it returns each exit port
// from Step and receives the arrival on the next call. It is the form a
// sched.Stepper needs — the scheduler's direct-dispatch core drives
// agents by asking for their next action, so the procedure cannot sit
// in a nested call stack between moves.
//
// Machine and Procedure implement the same phase loop of §2 move for
// move; TestMachineMatchesProcedure pins the equivalence on every graph
// of the test family, and the cross-core differential campaign re-checks
// it end to end through real schedulers.
type Machine struct {
	// Cat supplies exploration sequences, as in Procedure.
	Cat uxs.Catalog
	// MaxPhase aborts the procedure beyond this phase (0 = unlimited).
	MaxPhase int
	// PhaseHook, if non-nil, is told the index of each phase as it
	// starts (observer plumbing; optional).
	PhaseHook func(i int)

	// Results, valid once Step has returned running == false.
	Done  bool
	Phase int
	Cost  int
	Trace []MoveRec

	state    mstate
	started  bool
	lastExit int
	i        int // current phase index

	// Trunc walk of the current phase.
	seq   []int
	idx   int
	entry int
	clean bool
	saw   bool
	trunc []MoveRec

	// Backtrack in progress (reverses back[backIdx..0], then after).
	back    []MoveRec
	backIdx int
	after   mstate

	// Probe pass.
	codes   map[string]bool
	jj      int // trunc steps taken while probing (the paper's j)
	pseq    []int
	pidx    int
	pentry  int
	partial []MoveRec
}

// emit records the decision and hands the exit port to the caller.
func (m *Machine) emit(port int, arr mstate) (int, bool) {
	m.lastExit = port
	m.state = arr
	return port, true
}

// failPhase abandons the current phase; the next one starts from the
// node the agent currently occupies, exactly as in Procedure.Run.
func (m *Machine) failPhase() {
	m.i += 3
	m.state = msPhaseStart
}

// startBacktrack queues rec for reversal (latest move first), entering
// after once the agent is back where rec started.
func (m *Machine) startBacktrack(rec []MoveRec, after mstate) {
	if len(rec) == 0 {
		m.state = after
		return
	}
	m.back = rec
	m.backIdx = len(rec) - 1
	m.after = after
	m.state = msBacktrack
}

// Step advances the procedure by one decision. deg and entry describe
// the agent's current node (entry < 0 on the very first call); sighted
// reports whether the move that brought the agent here sighted the
// token; withToken whether the token is co-located right now. The
// returned port is the next move; running == false means the procedure
// has ended and Done/Phase/Cost/Trace are final.
func (m *Machine) Step(deg, entry int, sighted, withToken bool) (port int, running bool) {
	if !m.started {
		m.started = true
		m.i = 3
		m.state = msPhaseStart
	} else {
		// Account the arrival of the previously emitted move, exactly
		// like Procedure.move.
		m.Cost++
		m.Trace = append(m.Trace, MoveRec{Exit: m.lastExit, Entry: entry})
	}
	for {
		switch m.state {
		case msPhaseStart:
			if m.MaxPhase != 0 && m.i > m.MaxPhase {
				m.state = msDone
				return 0, false
			}
			if m.PhaseHook != nil {
				m.PhaseHook(m.i)
			}
			m.seq = m.Cat.Seq(2 * m.i)
			m.idx, m.entry = 0, 0
			m.trunc = m.trunc[:0]
			m.clean = deg <= m.i-1
			m.saw = withToken // a token at u1 counts as seen
			m.state = msTruncMove

		case msTruncMove:
			if m.idx == len(m.seq) {
				if !m.clean || !m.saw {
					m.failPhase()
					continue
				}
				// Trunc was clean and the token was seen: backtrack to
				// u1 and start the probe pass.
				m.codes = make(map[string]bool)
				m.jj = 0
				m.startBacktrack(m.trunc, msProbeStart)
				continue
			}
			x := m.seq[m.idx]
			m.idx++
			return m.emit((m.entry+x)%deg, msTruncArr)

		case msTruncArr:
			m.trunc = append(m.trunc, MoveRec{Exit: m.lastExit, Entry: entry})
			m.entry = entry
			if deg > m.i-1 {
				m.clean = false
			}
			if sighted {
				m.saw = true
			}
			m.state = msTruncMove

		case msBacktrack:
			if m.backIdx < 0 {
				m.state = m.after
				continue
			}
			p := m.back[m.backIdx].Entry
			m.backIdx--
			return m.emit(p, msBacktrack)

		case msProbeStart:
			if withToken {
				m.codes[""] = true // the empty code: token at u_j itself
				if len(m.codes) >= m.i/3 {
					m.failPhase()
					continue
				}
				m.state = msTruncStep
				continue
			}
			m.pseq = m.Cat.Seq(m.i)
			m.pidx, m.pentry = 0, 0
			m.partial = m.partial[:0]
			m.state = msProbeMove

		case msProbeMove:
			if m.pidx == len(m.pseq) {
				// R(i, u_j) ended with no sighting: the phase fails.
				m.failPhase()
				continue
			}
			x := m.pseq[m.pidx]
			m.pidx++
			return m.emit((m.pentry+x)%deg, msProbeArr)

		case msProbeArr:
			m.partial = append(m.partial, MoveRec{Exit: m.lastExit, Entry: entry})
			m.pentry = entry
			if sighted {
				m.codes[codeOfRec(m.partial)] = true
				m.startBacktrack(m.partial, msProbeEval)
				continue
			}
			m.state = msProbeMove

		case msProbeEval:
			if len(m.codes) >= m.i/3 {
				m.failPhase()
				continue
			}
			m.state = msTruncStep

		case msTruncStep:
			if m.jj == len(m.trunc) {
				// Every trunc node probed with fewer than i/3 distinct
				// codes: the phase completes and proves coverage.
				m.Done = true
				m.Phase = m.i
				m.state = msDone
				return 0, false
			}
			p := m.trunc[m.jj].Exit
			m.jj++
			return m.emit(p, msProbeStart)

		default: // msDone
			return 0, false
		}
	}
}
