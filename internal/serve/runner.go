package serve

import (
	"context"
	"errors"
	"fmt"

	"meetpoly"
	"meetpoly/internal/campaign"
	"meetpoly/internal/faultinject"
)

// ErrStopped reports that the result consumer stopped the run early
// (emit returned false) — typically a streaming client disconnecting.
// Whatever was checkpointed stays durable; a later run resumes from it.
var ErrStopped = errors.New("serve: shard run stopped by consumer")

// ShardConfig describes one shard's slice of a campaign. Shard i of n
// owns the half-open cell index range [i*total/n, (i+1)*total/n) — the
// same arithmetic on every process, so n shards partition the expansion
// exactly. A single-process run is shard 0 of 1.
type ShardConfig struct {
	Engine *meetpoly.Engine
	Spec   meetpoly.SweepSpec

	// Shard / Of select this process's index range. Of must be >= 1 and
	// 0 <= Shard < Of; both zero means "shard 0 of 1".
	Shard, Of int

	// Ranges restricts the run to an explicit set of absolute cell
	// index intervals, intersected with the shard's own range — the
	// primitive behind lease execution (a coordinator worker runs
	// exactly its lease) and client resume (a reconnecting client
	// requests exactly its gap set). Empty means the whole shard range.
	Ranges []campaign.Interval

	// Dir is the shard's checkpoint directory. Empty disables
	// checkpointing (the run is stateless and cannot resume).
	Dir string

	// FlushEvery bounds how many completed cells may sit in the
	// checkpoint's staging buffer before a durable flush; <= 0 means
	// DefaultFlushEvery. A crash loses at most this many cells of work.
	FlushEvery int

	// Faults threads the chaos harness through the run: checkpoint
	// write/fsync faults wrap the log files, and the kill-after-flush
	// trigger abandons the checkpoint (no final flush, no close — the
	// in-process kill -9) and returns faultinject.ErrKilled. Nil
	// injects nothing.
	Faults *faultinject.Injector

	// Metrics, when set, receives the run's execution and checkpoint
	// series: cells executed vs recovered, records staged, flush and
	// fsync latencies, poison events. Nil records nothing.
	Metrics *meetpoly.Metrics

	// Test hooks. onCellRun observes each freshly executed cell's index
	// (recovered cells never fire it — that is how resume tests prove no
	// completed cell re-executes). onFlush observes each periodic flush.
	onCellRun func(index int)
	onFlush   func(flushes int)
}

// DefaultFlushEvery is the checkpoint flush interval (in completed
// cells) when ShardConfig.FlushEvery is unset.
const DefaultFlushEvery = 32

// RunShard executes cfg's index range (narrowed to cfg.Ranges when
// set), streaming each cell result to emit (return false to stop
// early) and folding everything into the shard's aggregate report.
// With a checkpoint directory the run is resumable: results recovered
// from a previous run are replayed into the stream and fold without
// re-execution, only the sealed-range gaps run, and completed cells
// are flushed durably every FlushEvery cells. Canceled cells are
// folded and emitted but never checkpointed — a resumed run must
// re-execute them for real.
//
// The fold is the engine's own order-independent aggregator, so a
// shard-0-of-1 run's report — interrupted and resumed any number of
// times — is byte-identical to an uninterrupted Engine.Sweep.
func RunShard(ctx context.Context, cfg ShardConfig, emit func(meetpoly.SweepCellResult) bool) (*meetpoly.SweepReport, error) {
	if cfg.Of == 0 && cfg.Shard == 0 {
		cfg.Of = 1
	}
	if cfg.Of < 1 || cfg.Shard < 0 || cfg.Shard >= cfg.Of {
		return nil, fmt.Errorf("serve: invalid shard %d of %d", cfg.Shard, cfg.Of)
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = DefaultFlushEvery
	}
	total, err := meetpoly.CountSweep(cfg.Spec)
	if err != nil {
		return nil, err
	}
	lo := cfg.Shard * total / cfg.Of
	hi := (cfg.Shard + 1) * total / cfg.Of

	// The run's target set: the shard range, optionally narrowed to the
	// caller's explicit ranges (a lease, a resume gap set). Intersection
	// with the shard range keeps a sharded instance inside its slice no
	// matter what a client asks for.
	var want campaign.IndexSet
	if len(cfg.Ranges) == 0 {
		want.AddRange(lo, hi)
	} else {
		for _, r := range cfg.Ranges {
			rlo, rhi := max(r.Lo, lo), min(r.Hi, hi)
			want.AddRange(rlo, rhi)
		}
	}

	m := newShardMetrics(cfg.Metrics)
	var cp *Checkpoint
	if cfg.Dir != "" {
		cp, err = openCheckpoint(cfg.Dir, cfg.Faults, m)
		if err != nil {
			return nil, err
		}
		defer func() {
			if cp != nil {
				cp.Close()
			}
		}()
	}

	agg := campaign.NewAggregator(cfg.Spec, nil)

	// Replay what a previous run already completed. Recovered results
	// are exact (cells are pure functions of their seeds), and the
	// aggregator's duplicate guard makes a boundary cell arriving on
	// both the replay and re-execution paths harmless.
	done := &campaign.IndexSet{}
	if cp != nil {
		for _, cr := range cp.Recovered() {
			if !want.Contains(cr.Cell.Index) {
				continue // sealed under a different slicing; not ours now
			}
			if m != nil {
				m.recovered.Inc()
			}
			agg.Add(cr)
			if !emit(cr) {
				return nil, ErrStopped
			}
		}
		done = cp.Completed()
	}

	flushes := 0
	for _, iv := range want.Ranges() {
		for _, gap := range done.Gaps(iv.Lo, iv.Hi) {
			for cr, serr := range cfg.Engine.SweepStreamRange(ctx, cfg.Spec, gap.Lo, gap.Hi) {
				if serr != nil {
					return nil, serr
				}
				if cfg.onCellRun != nil {
					cfg.onCellRun(cr.Cell.Index)
				}
				if m != nil {
					m.cellsRun.Inc()
				}
				agg.Add(cr)
				if cp != nil && !cr.Outcome.Canceled {
					if err := cp.Record(cr); err != nil {
						return nil, err
					}
					if cp.Pending() >= cfg.FlushEvery {
						if err := cp.Flush(); err != nil {
							return nil, err
						}
						flushes++
						if cfg.onFlush != nil {
							cfg.onFlush(flushes)
						}
						if cfg.Faults.OnFlush() {
							cp.abandon()
							cp = nil // defer must not Close (and flush) after the "kill"
							return nil, faultinject.ErrKilled
						}
					}
				}
				if !emit(cr) {
					return nil, ErrStopped
				}
			}
		}
	}

	if cp != nil {
		err := cp.Close()
		cp = nil
		if err != nil {
			return nil, err
		}
	}
	return agg.Report(), nil
}
