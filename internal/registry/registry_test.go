package registry

import (
	"strings"
	"testing"

	"meetpoly/internal/graph"
)

func TestBuiltinGraphKindsRegistered(t *testing.T) {
	for _, name := range []string{"path", "ring", "star", "clique", "complete",
		"bintree", "tree", "random", "grid", "torus", "hypercube", "lollipop", "petersen"} {
		if _, ok := LookupGraph(name); !ok {
			t.Errorf("built-in graph kind %q not registered", name)
		}
	}
	// Aliases resolve to the same entry.
	a, _ := LookupGraph("clique")
	b, _ := LookupGraph("complete")
	if a != b {
		t.Error("clique and complete resolve to different entries")
	}
	names := GraphNames()
	if len(names) < 13 {
		t.Errorf("GraphNames lists %d kinds, want >= 13", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("GraphNames not sorted: %v", names)
		}
	}
}

func TestRegisterGraphRejects(t *testing.T) {
	build := func(p GraphParams) (*graph.Graph, error) { return graph.Ring(3), nil }
	if err := RegisterGraph(GraphKind{Name: "", Build: build}); err == nil {
		t.Error("nameless kind accepted")
	}
	if err := RegisterGraph(GraphKind{Name: "buildless"}); err == nil {
		t.Error("kind without Build accepted")
	}
	if err := RegisterGraph(GraphKind{Name: "ring", Build: build}); err == nil {
		t.Error("duplicate primary name accepted")
	}
	if err := RegisterGraph(GraphKind{Name: "fresh-but-alias-dup", Aliases: []string{"complete"}, Build: build}); err == nil {
		t.Error("duplicate alias accepted")
	}
	if _, ok := LookupGraph("fresh-but-alias-dup"); ok {
		t.Error("rejected registration left a partial entry behind")
	}
}

func TestGraphNodeCount(t *testing.T) {
	for _, tc := range []struct {
		kind            string
		n, rows, cols   int
		want            int
		wantErrContains string
	}{
		{kind: "ring", n: 64, want: 64},
		{kind: "ring", n: MaxSpecNodes + 1, wantErrContains: "spec cap"},
		{kind: "grid", rows: 3, cols: 4, want: 12},
		{kind: "grid", rows: 64, cols: 64, wantErrContains: "spec cap"},
		{kind: "lollipop", rows: 5, cols: 3, want: 8},
		{kind: "lollipop", rows: 1 << 62, cols: 1 << 62, wantErrContains: "spec cap"},
		{kind: "hypercube", n: 4, want: 16},
		{kind: "hypercube", n: 12, wantErrContains: "cap"},
		{kind: "hypercube", n: 0, want: 0},
		{kind: "petersen", want: 10},
		{kind: "moebius", wantErrContains: "unknown graph kind"},
	} {
		got, err := GraphNodeCount(tc.kind, tc.n, tc.rows, tc.cols)
		if tc.wantErrContains != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErrContains) {
				t.Errorf("NodeCount(%s, %d, %d, %d): err = %v, want containing %q",
					tc.kind, tc.n, tc.rows, tc.cols, err, tc.wantErrContains)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("NodeCount(%s, %d, %d, %d) = %d, %v; want %d",
				tc.kind, tc.n, tc.rows, tc.cols, got, err, tc.want)
		}
	}
}

func TestKindMetaIdempotentRegistration(t *testing.T) {
	m, ok := LookupKindMeta("certify")
	if !ok {
		t.Fatal("certify metadata missing")
	}
	if m.UsesAdversary || m.UsesBudget || !m.UsesMoves || !m.Labeled {
		t.Fatalf("certify metadata wrong: %+v", m)
	}
	// Identical re-registration (the root package attaching runners
	// through the public path) is a no-op...
	if err := RegisterKindMeta(m); err != nil {
		t.Errorf("identical re-registration rejected: %v", err)
	}
	// ...but conflicting metadata is an error.
	m.Labeled = false
	if err := RegisterKindMeta(m); err == nil {
		t.Error("conflicting re-registration accepted")
	}
	if got, _ := LookupKindMeta("certify"); !got.Labeled {
		t.Error("conflicting registration mutated the stored metadata")
	}

	order := BuiltinKinds()
	want := []string{"rendezvous", "baseline", "esst", "sgl", "certify"}
	if len(order) != len(want) {
		t.Fatalf("BuiltinKinds = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("BuiltinKinds order = %v, want %v", order, want)
		}
	}
}

func TestAdversaryMetaIdempotentRegistration(t *testing.T) {
	m, ok := LookupAdversaryMeta("random")
	if !ok || !m.PerCellSeed {
		t.Fatalf("random metadata wrong: %+v, ok=%v", m, ok)
	}
	if err := RegisterAdversaryMeta(m); err != nil {
		t.Errorf("identical re-registration rejected: %v", err)
	}
	m.PerCellSeed = false
	if err := RegisterAdversaryMeta(m); err == nil {
		t.Error("conflicting re-registration accepted")
	}
	if _, ok := LookupAdversaryMeta("latewake"); !ok {
		t.Error("latewake metadata missing")
	}
	if _, ok := LookupAdversaryMeta(""); ok {
		t.Error("empty adversary name has metadata; it should be parser-only")
	}
}
