// Package snapfix exercises the snapshot analyzer on a miniature of the
// real copy-on-write pair (uxs.Verified / trajectory.Route): a writer
// mutex next to an atomic snapshot pointer.
package snapfix

import (
	"sync"
	"sync/atomic"
)

type state struct {
	n    int
	seqs []int
}

// Box follows the copy-on-write atomic-snapshot pattern.
type Box struct {
	mu    sync.Mutex
	snap  atomic.Pointer[state]
	other int
}

// plain has a mutex but no snapshot pointer: not a pair, never checked.
type plain struct {
	mu sync.Mutex
	n  int
}

// NewBox is the constructor shape: the stores precede publication of b,
// so no lock is needed.
func NewBox(n int) *Box {
	b := &Box{}
	b.snap.Store(&state{n: n})
	return b
}

// Publish is the legal writer: clone, mutate, store under the mutex.
func (b *Box) Publish(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.snap.Load()
	next := &state{n: n, seqs: append([]int(nil), cur.seqs...)}
	b.snap.Store(next)
}

// Racy seeds the lost-update bug: two concurrent Racy calls both load,
// both store, one update vanishes.
func (b *Box) Racy(n int) {
	cur := b.snap.Load()
	b.snap.Store(&state{n: cur.n + n}) // want `without holding the writer mutex`
}

// Memo is the CAS shape: self-synchronizing, legal without the mutex.
func (b *Box) Memo(s *state) *state {
	for {
		cur := b.snap.Load()
		if cur != nil {
			return cur
		}
		if b.snap.CompareAndSwap(nil, s) {
			return s
		}
	}
}

// SlowRead seeds the read-path bug: it takes the writer lock just to
// look at the snapshot, serializing every reader behind writers.
func (b *Box) SlowRead() int {
	b.mu.Lock() // want `read path acquires`
	defer b.mu.Unlock()
	return b.snap.Load().n
}

// FastRead is the legal reader: the snapshot pointer alone.
func (b *Box) FastRead() int {
	return b.snap.Load().n
}

// Bump locks the mutex to guard unrelated state and never touches the
// snapshot: the mutex may guard more than the pointer.
func (b *Box) Bump() {
	b.mu.Lock()
	b.other++
	b.mu.Unlock()
}

// RacyAllowed shows a reviewed suppression.
func (b *Box) RacyAllowed(s *state) {
	//lint:allow snapshot -- single-writer phase before readers exist
	b.snap.Store(s)
}

// lockedCounter uses the non-pair struct freely.
func lockedCounter(p *plain) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
	return p.n
}
