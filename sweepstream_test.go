package meetpoly

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"meetpoly/internal/campaign"
)

// streamSpec is a mid-sized campaign for stream/fold comparisons.
func streamSpec() SweepSpec {
	return SweepSpec{
		Name:  "stream",
		Seed:  "stream-v1",
		Kinds: []string{"rendezvous", "esst", "certify"},
		Graphs: []SweepGraphAxis{
			{Kind: "path", Sizes: []int{3, 4}},
			{Kind: "ring", Sizes: []int{4, 5}},
			{Kind: "grid", Rows: 2, Cols: 3},
		},
		StartPairs:  2,
		LabelPairs:  2,
		Adversaries: []string{"", "avoider"},
		Budget:      3000,
		Moves:       60,
	}
}

// TestSweepStreamFoldEquality proves SweepStream yields exactly the
// cells Sweep reports: folding the stream through the same
// order-independent aggregator reproduces Engine.Sweep's report
// byte-identically, and the yielded index set is a bijection with the
// expansion.
func TestSweepStreamFoldEquality(t *testing.T) {
	ctx := context.Background()
	spec := streamSpec()
	total, err := CountSweep(spec)
	if err != nil {
		t.Fatal(err)
	}

	swept, err := NewEngine(WithMaxN(6), WithSeed(1)).Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	agg := campaign.NewAggregator(spec, nil)
	seen := make(map[int]bool, total)
	for cr, serr := range NewEngine(WithMaxN(6), WithSeed(1)).SweepStream(ctx, spec) {
		if serr != nil {
			t.Fatal(serr)
		}
		if seen[cr.Cell.Index] {
			t.Fatalf("cell %d yielded twice", cr.Cell.Index)
		}
		seen[cr.Cell.Index] = true
		agg.Add(cr)
	}
	if len(seen) != total {
		t.Fatalf("stream yielded %d cells, expansion has %d", len(seen), total)
	}
	folded := agg.Report()

	got, err := json.Marshal(folded)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(swept)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("stream fold diverges from Sweep:\nfold  %s\nsweep %s", got, want)
	}
}

// TestSweepStreamEarlyBreak: breaking out of the range stops the sweep
// without leaking the pipeline's goroutines — the producer, the workers
// (mid-batch included: the batched tier yields a whole group's results
// through the same stop-guarded sends) and the closer must all observe
// the stop channel and wind down — and a second sweep on the same
// engine still works. Breaking at the very first yield is the hardest
// teardown: the producer and every worker are still in full flight.
//
// The in-batch rows pin the server-conditions case — a client
// disconnecting while a worker is mid-way through handing over a
// batched group's results. streamSpec's first work unit under the walk
// order is the 8-cell rendezvous/path-3 batch (2 starts × 2 labels × 2
// adversaries on one graph); with one worker, breaking at 2..7 lands
// strictly inside that group's stop-guarded sends, so a stranded
// half-consumed batch would show up as a leaked worker here.
func TestSweepStreamEarlyBreak(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name        string
		breakAt     int
		parallelism int // 0 = engine default
	}{
		{"break-at-1", 1, 0},
		{"break-at-5", 5, 0},
		{"break-inside-batched-group-at-2", 2, 1},
		{"break-inside-batched-group-at-6", 6, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := []Option{WithMaxN(6), WithSeed(1)}
			if tc.parallelism > 0 {
				opts = append(opts, WithParallelism(tc.parallelism))
			}
			eng := NewEngine(opts...)
			before := runtime.NumGoroutine()

			got := 0
			for cr, err := range eng.SweepStream(ctx, streamSpec()) {
				if err != nil {
					t.Fatal(err)
				}
				_ = cr
				if got++; got >= tc.breakAt {
					break
				}
			}
			if got != tc.breakAt {
				t.Fatalf("consumed %d results, want %d", got, tc.breakAt)
			}

			// The workers, producer and closer must all wind down.
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > before {
				t.Errorf("goroutines leaked after early break: %d -> %d", before, n)
			}

			// The engine is still fully usable.
			rep, err := eng.Sweep(ctx, streamSpec())
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("post-break sweep failed:\n%s", rep.Table())
			}
		})
	}
}

// TestSweepStreamRangeFoldEquality proves the sharding contract: any
// partition of [0, total) into disjoint index ranges, each executed by
// its own SweepStreamRange (even on separate engines), folds through
// one order-independent aggregator into the byte-identical report a
// single Engine.Sweep produces.
func TestSweepStreamRangeFoldEquality(t *testing.T) {
	ctx := context.Background()
	spec := streamSpec()
	total, err := CountSweep(spec)
	if err != nil {
		t.Fatal(err)
	}

	swept, err := NewEngine(WithMaxN(6), WithSeed(1)).Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(swept)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 3, 5} {
		agg := campaign.NewAggregator(spec, nil)
		seen := make(map[int]bool, total)
		for s := 0; s < shards; s++ {
			lo, hi := s*total/shards, (s+1)*total/shards
			// A fresh engine per shard models separate processes: the
			// full-spec pre-pass must still land every shard on the same
			// catalog state.
			eng := NewEngine(WithMaxN(6), WithSeed(1))
			for cr, serr := range eng.SweepStreamRange(ctx, spec, lo, hi) {
				if serr != nil {
					t.Fatal(serr)
				}
				if cr.Cell.Index < lo || cr.Cell.Index >= hi {
					t.Fatalf("shard [%d, %d) yielded out-of-range cell %d", lo, hi, cr.Cell.Index)
				}
				if seen[cr.Cell.Index] {
					t.Fatalf("cell %d yielded by two shards", cr.Cell.Index)
				}
				seen[cr.Cell.Index] = true
				agg.Add(cr)
			}
		}
		if len(seen) != total {
			t.Fatalf("%d shards yielded %d cells, expansion has %d", shards, len(seen), total)
		}
		got, err := json.Marshal(agg.Report())
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%d-shard fold diverges from Sweep:\nfold  %s\nsweep %s", shards, got, want)
		}
	}
}

// TestSweepStreamRangeInvalid: a nonsensical range is a stream error,
// and an empty or out-of-bounds range yields nothing.
func TestSweepStreamRangeInvalid(t *testing.T) {
	ctx := context.Background()
	eng := NewEngine(WithMaxN(6), WithSeed(1))
	gotErr := false
	for _, err := range eng.SweepStreamRange(ctx, streamSpec(), 5, 4) {
		if err == nil {
			t.Fatal("inverted range yielded a result without error")
		}
		gotErr = true
	}
	if !gotErr {
		t.Fatal("inverted range yielded nothing — want exactly one error")
	}
	total, _ := CountSweep(streamSpec())
	for _, r := range [][2]int{{3, 3}, {total, total + 10}} {
		for cr, err := range eng.SweepStreamRange(ctx, streamSpec(), r[0], r[1]) {
			t.Fatalf("empty range [%d, %d) yielded (%+v, %v)", r[0], r[1], cr, err)
		}
	}
}

// TestSweepStreamInvalidSpec: a malformed spec yields exactly one
// (zero value, error) pair and executes nothing.
func TestSweepStreamInvalidSpec(t *testing.T) {
	eng := NewEngine(WithMaxN(4), WithSeed(1))
	bad := streamSpec()
	bad.Seed = ""
	yields := 0
	for cr, err := range eng.SweepStream(context.Background(), bad) {
		yields++
		if err == nil {
			t.Fatalf("invalid spec yielded a result without error: %+v", cr)
		}
	}
	if yields != 1 {
		t.Fatalf("invalid spec yielded %d pairs, want exactly 1", yields)
	}
	if stats := eng.CacheStats(); stats.Hits+stats.Misses != 0 {
		t.Errorf("invalid spec touched the prepared cache: %+v", stats)
	}
}

// TestSweepStreamCancellation: a canceled context surfaces as canceled
// cell outcomes (data, not a stream error), matching Sweep's contract.
func TestSweepStreamCancellation(t *testing.T) {
	eng := NewEngine(WithMaxN(6), WithSeed(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	canceled, total := 0, 0
	for cr, err := range eng.SweepStream(ctx, streamSpec()) {
		if err != nil {
			t.Fatal(err)
		}
		total++
		if cr.Outcome.Canceled {
			canceled++
		}
	}
	if want, _ := CountSweep(streamSpec()); total != want {
		t.Fatalf("canceled stream yielded %d of %d cells", total, want)
	}
	if canceled != total {
		t.Errorf("%d of %d cells report canceled under a dead context", canceled, total)
	}
}
