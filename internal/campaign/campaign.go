// Package campaign implements the sweep engine behind the public
// Campaign/Sweep API: it expands a declarative sweep specification (the
// cross product of graph families × sizes × start pairs × label pairs ×
// adversary specs × scenario kinds) into concrete scenario cells with
// deterministic per-cell seeds, checks every run against oracle
// predicates derived from the paper's cost bounds (internal/costmodel),
// and aggregates per-cell results into cost-statistics tables.
//
// The package is deliberately engine-agnostic: it produces Cells (plain
// scenario descriptors) and consumes Outcomes (plain run summaries), so
// the root package owns the only dependency on the Engine. Everything
// here is deterministic — expanding the same Spec always yields the same
// cells in the same order, which is what lets a single seed string like
// "nightly#412" replay any failing cell exactly (see Replay).
package campaign

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"

	"meetpoly/internal/registry"
	"meetpoly/internal/uxs"
)

// Scenario kind names of the built-in kinds, mirroring the root
// package's ScenarioKind values (an internal package cannot import the
// root facade). Custom kinds registered through the root package's
// RegisterScenarioKind are sweepable by their registered name.
const (
	KindRendezvous = "rendezvous"
	KindBaseline   = "baseline"
	KindESST       = "esst"
	KindSGL        = "sgl"
	KindCertify    = "certify"
)

// AllKinds lists the built-in scenario kinds in canonical sweep order —
// the default Kinds axis. Custom registered kinds are deliberately not
// included (a spec that omits Kinds must expand identically on every
// machine, regardless of which extensions are linked in); name them
// explicitly to sweep them.
func AllKinds() []string {
	return registry.BuiltinKinds()
}

// MaxSpecNodes caps the node count a declarative graph descriptor may
// request. The root package's GraphSpec and every registered graph
// kind's sizing enforce the same cap (all alias the registry constant),
// so spec validation and scenario validation agree: a Spec that passes
// Validate never expands into cells the engine rejects for size.
const MaxSpecNodes = registry.MaxSpecNodes

// MaxCells caps the number of cells a spec may expand into. A sweep
// spec is user input like any other declarative descriptor, and without
// this cap "start_pairs": 2e9 would make Expand an allocation bomb.
// 2^18 cells is two orders of magnitude beyond the acceptance campaign.
const MaxCells = 1 << 18

// NodeCount resolves the node count a declarative graph descriptor of
// the given kind requests, through the kind's registered sizing
// (registry.GraphNodeCount, which enforces MaxSpecNodes): one formula
// shared by campaign axis validation, the root package's GraphSpec and
// custom registered kinds, so the layers can never disagree about which
// descriptors fit under the cap. Lower bounds (path >= 2, grid rows >=
// 1, ...) remain with the kinds' axis checks; n < 1 for hypercube
// resolves to 0 and is left for them to reject.
func NodeCount(kind string, n, rows, cols int) (int, error) {
	return registry.GraphNodeCount(kind, n, rows, cols)
}

// Spec declaratively describes a campaign: the axes whose cross product
// becomes the cell set. It round-trips through JSON so campaigns are
// files, not code.
type Spec struct {
	// Name identifies the campaign in reports.
	Name string `json:"name,omitempty"`
	// Seed is the campaign master seed string. Every cell's replay seed
	// is "<Seed>#<index>", and all derived randomness (start pairs,
	// label values, random-adversary seeds) hashes off that string, so
	// one seed string pins one exact scenario.
	Seed string `json:"seed"`
	// Kinds are the scenario kinds to sweep (default: all five).
	Kinds []string `json:"kinds,omitempty"`
	// Graphs are the graph axes (family × sizes).
	Graphs []GraphAxis `json:"graphs"`
	// StartPairs is how many start placements to derive per graph cell
	// (default 1). Placement sp is shared by every cell with the same
	// graph and sp index — across kinds, label pairs and adversaries —
	// so those axes compare the same instances. Distinct sp values are
	// independent draws and can coincide on very small graphs.
	StartPairs int `json:"start_pairs,omitempty"`
	// LabelPairs is how many label assignments to derive per placement
	// for labeled kinds (default 1; ESST ignores it). Assignment lp is
	// likewise shared across kinds and adversaries; distinct lp values
	// are independent draws and may occasionally coincide.
	LabelPairs int `json:"label_pairs,omitempty"`
	// Adversaries are adversary spec strings in the root package's
	// ParseAdversary syntax (default: [""], the round-robin schedule).
	// A bare "random" is specialized per cell with a derived seed so
	// cells differ; "random:<seed>" pins one seed for every cell.
	Adversaries []string `json:"adversaries,omitempty"`
	// Budget bounds adversary events per run (all kinds but certify).
	Budget int `json:"budget"`
	// Moves is the certify route-prefix length (default 200).
	Moves int `json:"moves,omitempty"`
}

// GraphAxis describes one graph family × size axis of the sweep.
type GraphAxis struct {
	// Kind names a root GraphSpec builder: path|ring|star|clique|
	// bintree|tree|random|grid|torus|hypercube|lollipop|petersen.
	Kind string `json:"kind"`
	// Sizes are the N values to sweep (ignored by grid/torus/lollipop/
	// petersen; for hypercube each size is the dimension).
	Sizes []int `json:"sizes,omitempty"`
	// Rows and Cols size grid/torus cells (clique size and tail length
	// for lollipop).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// P is the edge probability for random graphs (0 = builder default).
	P float64 `json:"p,omitempty"`
	// Seed drives random generation and port shuffling. Zero selects
	// the family-default derivation (the seeds uxs.DefaultFamily uses),
	// so expanded graphs are recognized by a default verified catalog
	// without extending it — except shuffled "random" axes, where one
	// seed cannot match both the family's generation and shuffle seeds;
	// those cells run fine but extend the engine's catalog (or fail
	// with WithAutoExtend(false)).
	Seed int64 `json:"seed,omitempty"`
	// Shuffle applies adversarially permuted port numbers.
	Shuffle bool `json:"shuffle,omitempty"`
}

// GraphParams is one resolved graph cell: GraphAxis with the size axis
// collapsed and seeds made explicit. Field names mirror the root
// package's GraphSpec so the conversion is 1:1.
type GraphParams struct {
	Kind    string  `json:"kind"`
	N       int     `json:"n,omitempty"`
	Rows    int     `json:"rows,omitempty"`
	Cols    int     `json:"cols,omitempty"`
	P       float64 `json:"p,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	Shuffle bool    `json:"shuffle,omitempty"`

	// Nodes is the resolved node count, for start-pair derivation.
	Nodes int `json:"-"`
}

// Cell is one fully-resolved scenario descriptor of the sweep.
type Cell struct {
	// Index is the cell's position in expansion order.
	Index int `json:"index"`
	// ID is the human-readable cell identity (kind/graph/axes).
	ID string `json:"id"`
	// Seed is the replay seed string "<spec seed>#<index>": Replay
	// re-derives this exact cell from it.
	Seed string `json:"seed"`

	Kind      string      `json:"kind"`
	Graph     GraphParams `json:"graph"`
	Starts    []int       `json:"starts"`
	Labels    []uint64    `json:"labels,omitempty"`
	Adversary string      `json:"adversary,omitempty"`
	Budget    int         `json:"budget,omitempty"`
	Moves     int         `json:"moves,omitempty"`
}

// normalized returns the spec with defaults applied.
func (s Spec) normalized() Spec {
	if len(s.Kinds) == 0 {
		s.Kinds = AllKinds()
	}
	if s.StartPairs < 1 {
		s.StartPairs = 1
	}
	if s.LabelPairs < 1 {
		s.LabelPairs = 1
	}
	if len(s.Adversaries) == 0 {
		s.Adversaries = []string{""}
	}
	if s.Moves == 0 {
		s.Moves = 200
	}
	return s
}

// Validate checks the spec's own consistency (scenario-level validity is
// re-checked by the engine on every expanded cell).
func (s Spec) Validate() error {
	s = s.normalized()
	if s.Seed == "" {
		return fmt.Errorf("campaign: spec needs a seed string")
	}
	if len(s.Graphs) == 0 {
		return fmt.Errorf("campaign: spec needs at least one graph axis")
	}
	needsBudget := false
	for _, k := range s.Kinds {
		meta, ok := registry.LookupKindMeta(k)
		if !ok {
			return fmt.Errorf("campaign: unknown scenario kind %q", k)
		}
		if meta.UsesBudget {
			needsBudget = true
		}
	}
	if needsBudget && s.Budget <= 0 {
		return fmt.Errorf("campaign: spec needs a positive budget for kinds %v", s.Kinds)
	}
	if s.Moves < 0 {
		return fmt.Errorf("campaign: negative moves")
	}
	graphCells := 0
	for _, ga := range s.Graphs {
		cs, err := ga.cells()
		if err != nil {
			return err
		}
		graphCells += len(cs)
	}
	// Project the expanded cell count with saturating arithmetic so
	// oversized axes cannot overflow their way past the cap. The axis
	// shape comes from each kind's registered metadata: the label axis
	// applies to labeled kinds, the adversary axis to scheduled ones.
	perGraph := 0
	for _, k := range s.Kinds {
		meta, _ := registry.LookupKindMeta(k)
		per := s.StartPairs
		if meta.Labeled {
			per = satMul(per, s.LabelPairs)
		}
		if meta.UsesAdversary {
			per = satMul(per, len(s.Adversaries))
		}
		perGraph = satAdd(perGraph, per)
	}
	if total := satMul(graphCells, perGraph); total > MaxCells {
		return fmt.Errorf("campaign: spec expands to %d cells, over the %d-cell cap", total, MaxCells)
	}
	return nil
}

// satMul and satAdd saturate at MaxCells+1, enough to fail the cap
// check without risking integer overflow on hostile axis sizes.
func satMul(a, b int) int {
	if a < 0 || b < 0 {
		return MaxCells + 1
	}
	if a == 0 || b == 0 {
		return 0
	}
	if a > (MaxCells+1)/b+1 {
		return MaxCells + 1
	}
	p := a * b
	if p > MaxCells+1 || p/b != a {
		return MaxCells + 1
	}
	return p
}

func satAdd(a, b int) int {
	s := a + b
	if s > MaxCells+1 || s < 0 {
		return MaxCells + 1
	}
	return s
}

// cells collapses the axis into resolved graph cells. The axis shape
// (sized families vs fixed rows×cols descriptors), minimum sizes, and
// derived defaults all come from the kind's registry entry, so a custom
// registered kind sweeps exactly like a built-in.
func (ga GraphAxis) cells() ([]GraphParams, error) {
	k, ok := registry.LookupGraph(ga.Kind)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown graph kind %q", ga.Kind)
	}
	// finish applies the defaults every resolved cell shares: the
	// kind's own axis defaults (family seeds, edge probability), then
	// the family shuffle seed, so zero-seed shuffled cells are
	// recognized by a default verified catalog without extending it.
	finish := func(p GraphParams) GraphParams {
		if k.AxisDefaults != nil {
			rp := p.registryParams()
			k.AxisDefaults(&rp)
			p.N, p.Rows, p.Cols, p.P, p.Seed = rp.N, rp.Rows, rp.Cols, rp.P, rp.Seed
		}
		if ga.Shuffle && p.Seed == 0 {
			p.Seed = uxs.DefaultShuffleSeed(p.Nodes)
		}
		return p
	}
	if k.Sized {
		if len(ga.Sizes) == 0 {
			return nil, fmt.Errorf("campaign: graph axis %q needs sizes", ga.Kind)
		}
		out := make([]GraphParams, 0, len(ga.Sizes))
		for _, n := range ga.Sizes {
			nodes, err := k.NodeCount(n, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("campaign: %v", err)
			}
			if k.CheckAxis != nil {
				if err := k.CheckAxis(ga.Kind, n, 0, 0); err != nil {
					return nil, fmt.Errorf("campaign: %v", err)
				}
			}
			p := GraphParams{Kind: ga.Kind, N: n, P: ga.P, Seed: ga.Seed, Shuffle: ga.Shuffle, Nodes: nodes}
			out = append(out, finish(p))
		}
		return out, nil
	}
	if k.CheckAxis != nil {
		if err := k.CheckAxis(ga.Kind, 0, ga.Rows, ga.Cols); err != nil {
			return nil, fmt.Errorf("campaign: %v", err)
		}
	}
	nodes, err := k.NodeCount(0, ga.Rows, ga.Cols)
	if err != nil {
		return nil, fmt.Errorf("campaign: %v", err)
	}
	p := GraphParams{Kind: ga.Kind, Rows: ga.Rows, Cols: ga.Cols,
		P: ga.P, Seed: ga.Seed, Shuffle: ga.Shuffle, Nodes: nodes}
	return []GraphParams{finish(p)}, nil
}

// registryParams converts the resolved cell to the registry's shared
// parameter form (for kind hooks).
func (p GraphParams) registryParams() registry.GraphParams {
	return registry.GraphParams{Kind: p.Kind, N: p.N, Rows: p.Rows, Cols: p.Cols,
		P: p.P, Seed: p.Seed, Shuffle: p.Shuffle}
}

// axisLabel renders the graph cell identity for cell IDs. The shape is
// registry-agnostic: rows×cols descriptors label as "-RxC", sized ones
// as "-N", and dimensionless kinds (petersen) as the bare name.
func (p GraphParams) axisLabel() string {
	var sb strings.Builder
	sb.WriteString(p.Kind)
	switch {
	case p.Rows != 0 || p.Cols != 0:
		fmt.Fprintf(&sb, "-%dx%d", p.Rows, p.Cols)
	case p.N != 0:
		fmt.Fprintf(&sb, "-%d", p.N)
	}
	if p.Shuffle {
		sb.WriteString("-shuf")
	}
	return sb.String()
}

// hash64 hashes a seed string to the int64 that drives a cell's derived
// randomness (FNV-1a; stability across builds matters more than quality
// here, and Go pins FNV).
func hash64(s string) int64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return int64(h.Sum64() & (1<<63 - 1))
}

// CellSeed returns the replay seed string of cell index under master.
func CellSeed(master string, index int) string {
	return fmt.Sprintf("%s#%d", master, index)
}

// ParseCellSeed splits a replay seed string into master seed and index.
func ParseCellSeed(seed string) (master string, index int, err error) {
	i := strings.LastIndexByte(seed, '#')
	if i < 0 {
		return "", 0, fmt.Errorf("campaign: seed %q has no #index suffix", seed)
	}
	idx, err := strconv.Atoi(seed[i+1:])
	if err != nil || idx < 0 {
		return "", 0, fmt.Errorf("campaign: seed %q has a malformed index", seed)
	}
	return seed[:i], idx, nil
}

// kindMeta resolves a kind's registered campaign metadata. Walk
// validates the spec first, so lookups cannot miss.
func kindMeta(kind string) registry.KindMeta {
	m, _ := registry.LookupKindMeta(kind)
	return m
}

// Expand resolves the spec's cross product into concrete cells, in a
// deterministic order: kind, then graph axis, then size, then start
// pair, then label pair, then adversary. Certify cells skip the
// adversary axis (the certifier ranges over all schedules), and ESST
// cells skip the label axis (its agents are anonymous).
//
// Expand materializes the full cell slice; Walk streams the same cells
// one at a time in the same order, and Count projects how many there
// are, both without the O(cells) allocation — the shapes Engine.Sweep
// and `rvsweep -expand` consume.
func Expand(spec Spec) ([]Cell, error) {
	n, err := Count(spec)
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, 0, n)
	if err := Walk(spec, func(c Cell) bool {
		cells = append(cells, c)
		return true
	}); err != nil {
		return nil, err
	}
	return cells, nil
}

// expander carries the streaming expansion state: the cell counter and
// the per-expansion memo of derived instance draws. The memo exists
// because placements and label assignments are shared across every cell
// with the same (graph, sp[, lp]) key — re-seeding a math/rand source
// per cell to re-derive an identical pair was a measurable slice of
// sweep expansion.
type expander struct {
	spec  Spec
	index int

	startMemo map[string][2]int
	labelMemo map[string][2]uint64
}

// starts returns the (shared) start placement for (graph cell, sp).
func (x *expander) starts(gp GraphParams, sp int) [2]int {
	key := fmt.Sprintf("%s/%s/start%d", x.spec.Seed, gp.axisLabel(), sp)
	if s, ok := x.startMemo[key]; ok {
		return s
	}
	rng := rand.New(rand.NewSource(hash64(key)))
	s1 := rng.Intn(gp.Nodes)
	s2 := rng.Intn(gp.Nodes - 1)
	if s2 >= s1 {
		s2++
	}
	out := [2]int{s1, s2}
	x.startMemo[key] = out
	return out
}

// labels returns the (shared) label assignment for (graph cell, sp, lp).
func (x *expander) labels(gp GraphParams, sp, lp int) [2]uint64 {
	key := fmt.Sprintf("%s/%s/start%d/label%d", x.spec.Seed, gp.axisLabel(), sp, lp)
	if l, ok := x.labelMemo[key]; ok {
		return l
	}
	rng := rand.New(rand.NewSource(hash64(key)))
	l1 := uint64(1 + rng.Intn(64))
	l2 := uint64(1 + rng.Intn(63))
	if l2 >= l1 {
		l2++
	}
	out := [2]uint64{l1, l2}
	x.labelMemo[key] = out
	return out
}

// cell resolves one concrete cell of the cross product.
func (x *expander) cell(meta registry.KindMeta, gp GraphParams, sp, lp int, adversary string) Cell {
	idx := x.index
	x.index++
	seed := CellSeed(x.spec.Seed, idx)
	c := Cell{
		Index: idx,
		Seed:  seed,
		Kind:  meta.Name,
		Graph: gp,
	}
	// Instance derivation is keyed on the graph cell and the sp/lp
	// axis indices — NOT on the cell index — so cells that differ
	// only in kind, label pair or adversary run the SAME placement
	// (and, per placement, the same labels). That is what makes the
	// ByAdversary and ByKind groupings compare like against like,
	// and what the s<sp>/l<lp> components of the cell ID assert.
	s := x.starts(gp, sp)
	c.Starts = []int{s[0], s[1]}
	if meta.Labeled {
		l := x.labels(gp, sp, lp)
		c.Labels = []uint64{l[0], l[1]}
	}
	if meta.UsesBudget {
		c.Budget = x.spec.Budget
	}
	if meta.UsesMoves {
		c.Moves = x.spec.Moves
	}
	if name, hasParams := splitAdversary(adversary); !hasParams && name != "" {
		// Families registered with per-cell seeding (the built-in
		// "random") specialize a bare spec with a seed derived from the
		// cell's replay string, so cells differ while each stays
		// individually replayable.
		if am, ok := registry.LookupAdversaryMeta(name); ok && am.PerCellSeed {
			adversary = fmt.Sprintf("%s:%d", name, hash64(seed+"/adv"))
		}
	}
	c.Adversary = adversary
	advLabel := adversary
	if advLabel == "" {
		advLabel = "roundrobin"
	}
	c.ID = fmt.Sprintf("%s/%s/s%d/l%d/%s", meta.Name, gp.axisLabel(), sp, lp, advLabel)
	return c
}

// Walk streams the spec's cells to yield in expansion order (identical
// to Expand's), stopping early when yield returns false. It holds one
// cell at a time: million-cell campaigns expand in bounded memory.
func Walk(spec Spec, yield func(Cell) bool) error {
	return WalkRange(spec, 0, MaxCells, yield)
}

// WalkRange streams only the cells whose Index falls in the half-open
// range [lo, hi), in expansion order, stopping early when yield returns
// false. A hi beyond the expansion simply ends at the last cell.
//
// Range expansion is the unit sharded sweeps are built on, so its
// contract is strict: cell i yielded by any range is byte-identical to
// cell i of a full Walk. That holds because the derived instance draws
// (start placements, label assignments, per-cell adversary seeds) are
// keyed on the campaign seed and the axis coordinates — never on what
// was expanded before them — and skipped positions advance only the
// index counter, none of the derivation.
func WalkRange(spec Spec, lo, hi int, yield func(Cell) bool) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if lo < 0 || hi < lo {
		return fmt.Errorf("campaign: invalid cell range [%d, %d)", lo, hi)
	}
	spec = spec.normalized()
	x := &expander{
		spec:      spec,
		startMemo: make(map[string][2]int),
		labelMemo: make(map[string][2]uint64),
	}
	// emit advances one cross-product position: positions below lo skip
	// their derivation entirely, positions at or past hi end the walk.
	emit := func(meta registry.KindMeta, gp GraphParams, sp, lp int, adv string) bool {
		if x.index >= hi {
			return false
		}
		if x.index < lo {
			x.index++
			return true
		}
		return yield(x.cell(meta, gp, sp, lp, adv))
	}
	for _, kind := range spec.Kinds {
		meta := kindMeta(kind)
		for _, ga := range spec.Graphs {
			gps, err := ga.cells()
			if err != nil {
				return err
			}
			for _, gp := range gps {
				for sp := 0; sp < spec.StartPairs; sp++ {
					labelPairs := spec.LabelPairs
					if !meta.Labeled {
						labelPairs = 1
					}
					for lp := 0; lp < labelPairs; lp++ {
						if !meta.UsesAdversary {
							if !emit(meta, gp, sp, lp, "") {
								return nil
							}
							continue
						}
						for _, adv := range spec.Adversaries {
							if !emit(meta, gp, sp, lp, adv) {
								return nil
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// splitAdversary splits an adversary spec string into its family name
// and whether any ':'-separated parameters follow.
func splitAdversary(spec string) (name string, hasParams bool) {
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		return spec[:i], true
	}
	return spec, false
}

// Graphs returns the resolved graph cells of the spec's axes — the
// unique graphs a sweep touches, which is what the engine's pre-pass
// prepares (build + coverage) before any run is in flight, so catalog
// extensions never happen mid-sweep.
func Graphs(spec Spec) ([]GraphParams, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var out []GraphParams
	for _, ga := range spec.Graphs {
		gps, err := ga.cells()
		if err != nil {
			return nil, err
		}
		out = append(out, gps...)
	}
	return out, nil
}

// Count returns how many cells the spec expands to, by axis arithmetic
// alone — no cells are derived.
func Count(spec Spec) (int, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	spec = spec.normalized()
	graphCells := 0
	for _, ga := range spec.Graphs {
		cs, err := ga.cells()
		if err != nil {
			return 0, err
		}
		graphCells += len(cs)
	}
	perGraph := 0
	for _, k := range spec.Kinds {
		meta := kindMeta(k)
		per := spec.StartPairs
		if meta.Labeled {
			per *= spec.LabelPairs
		}
		if meta.UsesAdversary {
			per *= len(spec.Adversaries)
		}
		perGraph += per
	}
	return graphCells * perGraph, nil
}

// Replay re-derives the single cell a replay seed string identifies.
// The spec must be the campaign the seed came from: its master seed is
// checked against the string's prefix.
func Replay(spec Spec, seed string) (Cell, error) {
	master, idx, err := ParseCellSeed(seed)
	if err != nil {
		return Cell{}, err
	}
	if master != spec.Seed {
		return Cell{}, fmt.Errorf("campaign: seed %q is from campaign %q, spec has %q", seed, master, spec.Seed)
	}
	var (
		found Cell
		ok    bool
	)
	// The range walk derives exactly this one cell: positions before idx
	// advance the index counter without deriving anything, and the keyed
	// instance draws make the result identical to a full expansion's.
	if err := WalkRange(spec, idx, idx+1, func(c Cell) bool {
		found, ok = c, true
		return false // stop: replay needs exactly this cell
	}); err != nil {
		return Cell{}, err
	}
	if !ok {
		n, _ := Count(spec)
		return Cell{}, fmt.Errorf("campaign: seed %q indexes cell %d of %d", seed, idx, n)
	}
	return found, nil
}
