// Package analysistest is a minimal offline re-implementation of
// golang.org/x/tools/go/analysis/analysistest, sized to what rvlint's
// tests need. The real package depends on go/packages and a module
// proxy; this one type-checks fixture packages from testdata/src with
// the pure go/types source importer, so the suite runs hermetically
// against the vendored x/tools snapshot in third_party/.
//
// Supported surface:
//
//   - fixture packages live under <testdata>/src/<importpath>/;
//     fixtures may import one another by that path (stdlib imports
//     resolve from GOROOT source);
//   - expectations are `// want "regexp"` comments (one or more quoted
//     or backquoted regexps) on the line a diagnostic is reported;
//   - analyzer Requires are resolved transitively (facts are not
//     supported — rvlint's analyzers use none).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes each fixture package under dir/src with a and checks
// reported diagnostics against // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := &loader{
		fset: token.NewFileSet(),
		src:  filepath.Join(dir, "src"),
		pkgs: make(map[string]*fixturePkg),
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	for _, path := range pkgpaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		checkPackage(t, ld.fset, a, pkg)
	}
}

// fixturePkg is one type-checked testdata package.
type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture import paths from testdata/src, falling back
// to the GOROOT source importer for everything else.
type loader struct {
	fset     *token.FileSet
	src      string
	pkgs     map[string]*fixturePkg
	fallback types.Importer
}

func (ld *loader) Import(path string) (*types.Package, error) {
	if fp, err := ld.load(path); err == nil {
		return fp.pkg, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return ld.fallback.Import(path)
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := ld.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(ld.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture %s: no .go files in %s", path, dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	fp := &fixturePkg{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = fp
	return fp, nil
}

// checkPackage runs a (and its Requires, transitively) over one fixture
// package and diffs diagnostics against want comments.
func checkPackage(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, fp *fixturePkg) {
	t.Helper()
	var diags []analysis.Diagnostic
	if _, err := runAnalyzer(a, fset, fp, make(map[*analysis.Analyzer]any), &diags); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, fp.pkg.Path(), err)
	}
	wants := collectWants(t, fset, fp.files)

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		got[k] = append(got[k], d.Message)
	}
	for _, w := range wants {
		k := key{w.file, w.line}
		idx := -1
		for i, msg := range got[k] {
			if w.re.MatchString(msg) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s:%d: no diagnostic matching %q (got %v)", w.file, w.line, w.re, got[k])
			continue
		}
		got[k] = append(got[k][:idx], got[k][idx+1:]...)
	}
	for k, msgs := range got {
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
		}
	}
}

// runAnalyzer executes a over fp, memoizing results so shared Requires
// (inspect) run once.
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, fp *fixturePkg, results map[*analysis.Analyzer]any, diags *[]analysis.Diagnostic) (any, error) {
	if res, ok := results[a]; ok {
		return res, nil
	}
	deps := make(map[*analysis.Analyzer]any)
	for _, req := range a.Requires {
		res, err := runAnalyzer(req, fset, fp, results, diags)
		if err != nil {
			return nil, err
		}
		deps[req] = res
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      fp.files,
		Pkg:        fp.pkg,
		TypesInfo:  fp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   deps,
		Report: func(d analysis.Diagnostic) {
			*diags = append(*diags, d)
		},
		ReadFile: os.ReadFile,
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, err
	}
	results[a] = res
	return res, nil
}

// want is one parsed expectation comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRE extracts the quoted regexps of a `// want` comment.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range wantRE.FindAllString(rest, -1) {
					var pat string
					if strings.HasPrefix(lit, "`") {
						pat = strings.Trim(lit, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
