package sched

import (
	"context"
	"fmt"

	"meetpoly/internal/rverr"
)

// Certify is the exhaustive two-agent adversary: a dynamic program that
// decides whether ANY schedule — any interleaving of half-steps,
// including arbitrarily delayed wake-ups — lets two agents follow the
// given route prefixes without a forced meeting.
//
// Until their first meeting two rendezvous agents are non-interacting, so
// their routes are fixed node sequences computable offline; the adversary
// game then becomes reachability on the (half-steps of A) x (half-steps
// of B) lattice. Cell (p, q) encodes A having made p half-steps (even:
// at node p/2 of its route; odd: inside edge (p-1)/2 -> (p+1)/2) and
// symmetrically for B. A cell is blocked — a meeting is forced there —
// exactly under the model's two meeting predicates: same node (both
// even), or same edge in opposite directions (both odd). The adversary
// may move right or up; diagonal (truly simultaneous) transitions add no
// dodging power because a simultaneous pair of events either contains no
// meeting in some serialization or meets in both (DESIGN.md §2.2).
//
// Certify therefore returns the exact worst case over ALL walks the
// continuous adversary could choose for these route prefixes.
func Certify(routeA, routeB []int) (CertResult, error) {
	return CertifyCtx(context.Background(), routeA, routeB)
}

// CertifyCtx is Certify with cancellation: the dynamic program checks
// ctx between lattice rows (the certifier is the longest-running
// single-threaded computation in the system — quadratic in the route
// prefix length) and returns an error wrapping rverr.ErrCanceled when
// aborted mid-run.
func CertifyCtx(ctx context.Context, routeA, routeB []int) (CertResult, error) {
	if len(routeA) == 0 || len(routeB) == 0 {
		return CertResult{}, fmt.Errorf("sched: Certify needs non-empty routes: %w", rverr.ErrInvalidScenario)
	}
	if routeA[0] == routeB[0] {
		return CertResult{}, fmt.Errorf("sched: agents must start at different nodes: %w", rverr.ErrInvalidScenario)
	}
	pb := 2 * (len(routeA) - 1) // max half-steps of A
	qb := 2 * (len(routeB) - 1)
	if pb == 0 && qb == 0 {
		// Neither agent ever moves and they start apart: trivial escape.
		return CertResult{Forced: false}, nil
	}

	blocked := func(p, q int) bool {
		if p%2 == 0 && q%2 == 0 {
			return routeA[p/2] == routeB[q/2]
		}
		if p%2 == 1 && q%2 == 1 {
			i, j := (p-1)/2, (q-1)/2
			return routeA[i] == routeB[j+1] && routeA[i+1] == routeB[j]
		}
		return false
	}

	words := (pb + 1 + 63) / 64
	prev := make([]uint64, words)
	cur := make([]uint64, words)
	get := func(row []uint64, p int) bool { return row[p/64]>>(uint(p)%64)&1 == 1 }
	set := func(row []uint64, p int) { row[p/64] |= 1 << (uint(p) % 64) }

	res := CertResult{Forced: true}
	note := func(p, q int) {
		// A blocked cell adjacent to a reachable one: the adversary can
		// steer the execution here and the meeting then happens with
		// these progress counts.
		completed := p/2 + q/2
		committed := (p+1)/2 + (q+1)/2
		if completed > res.WorstCompleted {
			res.WorstCompleted = completed
		}
		if committed > res.WorstCommitted {
			res.WorstCommitted = committed
		}
	}

	for q := 0; q <= qb; q++ {
		if ctx != nil && ctx.Err() != nil {
			return CertResult{}, fmt.Errorf("sched: certifier aborted at row %d/%d: %w (%w)",
				q, qb, rverr.ErrCanceled, ctx.Err())
		}
		for i := range cur {
			cur[i] = 0
		}
		for p := 0; p <= pb; p++ {
			reachableFrom := false
			if p == 0 && q == 0 {
				reachableFrom = true
			}
			if p > 0 && get(cur, p-1) {
				reachableFrom = true
			}
			if q > 0 && get(prev, p) {
				reachableFrom = true
			}
			if !reachableFrom {
				continue
			}
			if blocked(p, q) {
				note(p, q)
				continue
			}
			set(cur, p)
			if depth := p + q; depth > res.SafestDepth {
				res.SafestDepth = depth
			}
			if p == pb || q == qb {
				// The adversary can reach the budget frontier unmet:
				// no meeting is forced within these prefixes.
				res.Forced = false
				res.EscapeP, res.EscapeQ = p, q
			}
		}
		prev, cur = cur, prev
	}
	return res, nil
}

// CertResult is the verdict of the exhaustive adversary.
type CertResult struct {
	// Forced is true when every schedule meets strictly inside the
	// explored route prefixes.
	Forced bool
	// EscapeP/EscapeQ witness a frontier cell the adversary can reach
	// unmet (valid when !Forced).
	EscapeP, EscapeQ int
	// WorstCompleted is the maximum, over all schedules, of the total
	// completed edge traversals when the forced meeting happens.
	WorstCompleted int
	// WorstCommitted additionally counts traversals in progress at the
	// meeting (the agents finish them, per the model).
	WorstCommitted int
	// SafestDepth is the largest p+q over meeting-free reachable cells:
	// how long the best schedule survives, in half-steps.
	SafestDepth int
}

// String renders the verdict compactly.
func (c CertResult) String() string {
	if c.Forced {
		return fmt.Sprintf("forced{worst completed=%d committed=%d depth=%d}",
			c.WorstCompleted, c.WorstCommitted, c.SafestDepth)
	}
	return fmt.Sprintf("escape{p=%d q=%d depth=%d}", c.EscapeP, c.EscapeQ, c.SafestDepth)
}

// CyclicResult is the verdict of CertifyCyclic.
type CyclicResult struct {
	// Forced is true when agent A cannot complete its route, under any
	// schedule, without meeting the cycling agent B.
	Forced bool
	// MaxAHalfSteps is the largest progress (in half-steps) A reaches
	// unmet over all schedules; when Forced, the meeting happens before A
	// completes MaxAHalfSteps/2 + 1 edge traversals.
	MaxAHalfSteps int
}

// CertifyCyclic decides the asymmetric game behind Lemma 3.1: agent B
// repeats the closed walk cycleB forever (first and last node equal)
// while agent A follows routeA once. It returns whether every schedule
// forces a meeting before A completes its route. B's unbounded repetition
// is handled exactly by folding B's progress modulo its period, so no
// route-prefix frontier exists for the adversary to hide behind.
func CertifyCyclic(routeA, cycleB []int) (CyclicResult, error) {
	if len(routeA) < 2 {
		return CyclicResult{}, fmt.Errorf("sched: CertifyCyclic needs A to move: %w", rverr.ErrInvalidScenario)
	}
	if len(cycleB) < 2 || cycleB[0] != cycleB[len(cycleB)-1] {
		return CyclicResult{}, fmt.Errorf("sched: cycleB must be a closed walk: %w", rverr.ErrInvalidScenario)
	}
	if routeA[0] == cycleB[0] {
		return CyclicResult{}, fmt.Errorf("sched: agents must start at different nodes: %w", rverr.ErrInvalidScenario)
	}
	pb := 2 * (len(routeA) - 1)
	period := 2 * (len(cycleB) - 1) // half-steps per lap of B

	blocked := func(p, q int) bool {
		if p%2 == 0 && q%2 == 0 {
			return routeA[p/2] == cycleB[q/2]
		}
		if p%2 == 1 && q%2 == 1 {
			i, j := (p-1)/2, (q-1)/2
			return routeA[i] == cycleB[j+1] && routeA[i+1] == cycleB[j]
		}
		return false
	}

	// closure saturates a column under B's moves q -> (q+1) mod period.
	closure := func(p int, col []bool) {
		for lap := 0; lap < 2; lap++ {
			changed := false
			for q := 0; q < period; q++ {
				if col[q] && !col[(q+1)%period] && !blocked(p, (q+1)%period) {
					col[(q+1)%period] = true
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}

	col := make([]bool, period)
	if blocked(0, 0) {
		return CyclicResult{Forced: true}, nil
	}
	col[0] = true
	closure(0, col)
	res := CyclicResult{Forced: true}
	for p := 1; p <= pb; p++ {
		next := make([]bool, period)
		any := false
		for q := 0; q < period; q++ {
			if col[q] && !blocked(p, q) {
				next[q] = true
				any = true
			}
		}
		if !any {
			res.MaxAHalfSteps = p - 1
			return res, nil
		}
		closure(p, next)
		col = next
	}
	return CyclicResult{Forced: false, MaxAHalfSteps: pb}, nil
}
