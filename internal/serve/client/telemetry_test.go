package client

import (
	"context"
	"testing"
	"time"

	"meetpoly"
	"meetpoly/internal/faultinject"
	"meetpoly/internal/serve"
	"net/http/httptest"
)

// TestClientMetrics replays the chaos-heal scenario with a registry
// attached and checks the healing series moved: stream-cut retries,
// Retry-After retries from the 503 burst, backoff sleep time, healed
// gap ranges on the resume requests, and every cell counted once.
func TestClientMetrics(t *testing.T) {
	spec := clientSpec()
	srv := serve.New(serve.Config{
		Engine:         newClientEngine(),
		CheckpointRoot: t.TempDir(),
		FlushEvery:     4,
		Faults:         faultinject.MustNew("delay=1:5ms,reset=6,reset=20,unavail=3x2"),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reg := meetpoly.NewMetrics()
	cl := New(Config{
		BaseURL:     ts.URL,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		JitterSeed:  7,
		Metrics:     reg,
	})
	if _, err := cl.Sweep(context.Background(), spec, nil); err != nil {
		t.Fatalf("self-healing sweep failed: %v", err)
	}

	total, _ := meetpoly.CountSweep(spec)
	vals := map[string]float64{}
	for _, p := range reg.Snapshot() {
		key := p.Name
		for _, l := range p.Labels {
			key += "/" + l.Key + "=" + l.Value
		}
		vals[key] = p.Value
	}
	if got := vals["meetpoly_client_cells_total"]; got != float64(total) {
		t.Errorf("cells_total = %v, want %d", got, total)
	}
	if got := vals["meetpoly_client_retries_total/reason=stream"]; got < 2 {
		t.Errorf(`retries{stream} = %v, want >= 2 (two scheduled resets)`, got)
	}
	if got := vals["meetpoly_client_retries_total/reason=retry_after"]; got < 1 {
		t.Errorf(`retries{retry_after} = %v, want >= 1 (503 burst)`, got)
	}
	if got := vals["meetpoly_client_healed_ranges_total"]; got < 1 {
		t.Errorf("healed_ranges = %v, want >= 1", got)
	}
	if got := vals["meetpoly_client_backoff_ns_total"]; got <= 0 {
		t.Errorf("backoff_ns = %v, want > 0", got)
	}
}
