package campaign

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// TestWalkRangeMatchesWalk proves the sharding invariant range
// expansion rests on: cell i yielded by any [lo, hi) range is identical
// to cell i of a full walk — the keyed instance draws cannot depend on
// which cells were expanded before them.
func TestWalkRangeMatchesWalk(t *testing.T) {
	spec := testSpec()
	full, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	n := len(full)
	ranges := [][2]int{
		{0, n}, {0, 1}, {n - 1, n}, {n, n}, {0, 0},
		{n / 3, 2 * n / 3}, {n / 2, n}, {7, 8},
		{0, n + 50}, // hi beyond the expansion ends at the last cell
	}
	for _, r := range ranges {
		lo, hi := r[0], r[1]
		var got []Cell
		if err := WalkRange(spec, lo, hi, func(c Cell) bool {
			got = append(got, c)
			return true
		}); err != nil {
			t.Fatalf("WalkRange(%d, %d): %v", lo, hi, err)
		}
		wantHi := hi
		if wantHi > n {
			wantHi = n
		}
		want := full[lo:wantHi]
		if len(got) != len(want) {
			t.Fatalf("WalkRange(%d, %d) yielded %d cells, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("WalkRange(%d, %d) cell %d differs:\n got %+v\nwant %+v",
					lo, hi, want[i].Index, got[i], want[i])
			}
		}
	}
}

// TestWalkRangeSplitCoversWalk stitches a partition of disjoint ranges
// back together and asserts the union reproduces the full expansion —
// the exact contract a sharded sweep service depends on.
func TestWalkRangeSplitCoversWalk(t *testing.T) {
	spec := testSpec()
	full, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	n := len(full)
	const shards = 7
	var stitched []Cell
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		if err := WalkRange(spec, lo, hi, func(c Cell) bool {
			stitched = append(stitched, c)
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(stitched, full) {
		t.Fatal("stitched shard ranges do not reproduce the full expansion")
	}
}

func TestWalkRangeInvalid(t *testing.T) {
	spec := testSpec()
	for _, r := range [][2]int{{-1, 4}, {5, 4}} {
		err := WalkRange(spec, r[0], r[1], func(Cell) bool { return true })
		if err == nil {
			t.Errorf("WalkRange(%d, %d) accepted an invalid range", r[0], r[1])
		}
	}
}

// TestIndexSet exercises the interval-set primitive underneath the
// aggregator's duplicate guard and the checkpoint's completed ranges.
func TestIndexSet(t *testing.T) {
	var s IndexSet
	if !s.Add(5) || s.Add(5) {
		t.Fatal("Add must report first insert true, duplicate false")
	}
	s.AddRange(10, 14)
	s.AddRange(14, 16) // adjacent: must coalesce
	s.AddRange(12, 13) // contained: no-op
	s.Add(6)           // adjacent to 5
	if got := s.Ranges(); !reflect.DeepEqual(got, []Interval{{5, 7}, {10, 16}}) {
		t.Fatalf("ranges %v, want [{5 7} {10 16}]", got)
	}
	if s.Len() != 8 {
		t.Fatalf("Len %d, want 8", s.Len())
	}
	for _, i := range []int{5, 6, 10, 15} {
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false, want true", i)
		}
	}
	for _, i := range []int{4, 7, 9, 16} {
		if s.Contains(i) {
			t.Errorf("Contains(%d) = true, want false", i)
		}
	}
	gaps := s.Gaps(0, 20)
	if !reflect.DeepEqual(gaps, []Interval{{0, 5}, {7, 10}, {16, 20}}) {
		t.Fatalf("gaps %v, want [{0 5} {7 10} {16 20}]", gaps)
	}
	if g := s.Gaps(5, 7); g != nil {
		t.Fatalf("gaps of a covered window: %v, want none", g)
	}
	s.AddRange(0, 20) // swallow everything
	if got := s.Ranges(); !reflect.DeepEqual(got, []Interval{{0, 20}}) {
		t.Fatalf("ranges after swallowing union: %v", got)
	}
}

// TestIndexSetRandomized cross-checks the interval set against a plain
// map under a deterministic random workload.
func TestIndexSetRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s IndexSet
	ref := make(map[int]bool)
	for op := 0; op < 2000; op++ {
		if rng.Intn(2) == 0 {
			i := rng.Intn(200)
			if got, want := s.Add(i), !ref[i]; got != want {
				t.Fatalf("Add(%d) = %v, want %v", i, got, want)
			}
			ref[i] = true
		} else {
			lo := rng.Intn(200)
			hi := lo + rng.Intn(20)
			s.AddRange(lo, hi)
			for i := lo; i < hi; i++ {
				ref[i] = true
			}
		}
	}
	n := 0
	for i := 0; i < 220; i++ {
		if ref[i] {
			n++
		}
		if s.Contains(i) != ref[i] {
			t.Fatalf("Contains(%d) = %v, want %v", i, s.Contains(i), ref[i])
		}
	}
	if s.Len() != n {
		t.Fatalf("Len %d, want %d", s.Len(), n)
	}
}

// TestAggregatorDuplicateFeed pins the checkpoint-resume hazard fix:
// feeding a cell result twice is a no-op, and the report stays
// byte-identical across arrival orders with or without duplicates.
func TestAggregatorDuplicateFeed(t *testing.T) {
	spec := testSpec()
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]CellResult, len(cells))
	for i, c := range cells {
		cr := CellResult{Cell: c, Outcome: Outcome{
			N: 4, M: 4, Met: true, Consistent: true,
			Cost: 10 + i%7, Steps: 20 + i%5, MaxPerAgent: 5 + i%3,
		}}
		if i%11 == 0 {
			cr.Outcome.Met = false
			cr.Outcome.Exhausted = true
			cr.Failures = []OracleFailure{{Oracle: "synthetic", Err: "injected"}}
		}
		results[i] = cr
	}
	report := func(feed []CellResult) string {
		a := NewAggregator(spec, nil)
		for _, cr := range feed {
			a.Add(cr)
		}
		out, err := json.Marshal(a.Report())
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	want := report(results)

	// Shuffled order, every cell fed twice (the boundary-replay hazard),
	// plus a third helping of a few.
	rng := rand.New(rand.NewSource(7))
	dup := append(append([]CellResult(nil), results...), results...)
	dup = append(dup, results[0], results[len(results)/2], results[len(results)-1])
	rng.Shuffle(len(dup), func(i, j int) { dup[i], dup[j] = dup[j], dup[i] })
	if got := report(dup); got != want {
		t.Fatalf("duplicate+shuffled feed diverges from clean feed:\n got %s\nwant %s", got, want)
	}

	// The duplicate Add must change nothing at all — cell count included.
	a := NewAggregator(spec, nil)
	a.Add(results[0])
	a.Add(results[0])
	if r := a.Report(); r.Cells != 1 {
		t.Fatalf("duplicate Add counted: %d cells, want 1", r.Cells)
	}
}
