package meetpoly

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/sched"
)

// The test extension suite: a custom graph kind, two custom adversary
// families (one composing a built-in strategy, one implementing the
// Adversary interface from scratch through the exported View), and a
// custom scenario kind. They register at test-binary init through the
// exact public path a third party would use, and the fuzz targets pick
// them up from the same registration.

// testWheel is the custom graph kind: a hub (node 0) joined to an
// outer cycle 1..n-1.
func buildTestWheel(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	for i := 1; i < n; i++ {
		j := i + 1
		if j == n {
			j = 1
		}
		b.AddEdge(i, j)
	}
	return b.Graph(fmt.Sprintf("testwheel-%d", n))
}

// probeResult is the custom kind's result payload, carried in
// Result.Custom.
type probeResult struct {
	Distance int
}

// favorAdversary prefers one agent whenever it can act — a from-scratch
// Adversary implementation over the exported View, proving a third
// party outside this module could write one.
type favorAdversary struct {
	fav int
	rr  sched.RoundRobin
}

func (f *favorAdversary) Next(v *View) (Event, bool) {
	if v.AnyDormant() {
		for i, n := 0, v.K(); i < n; i++ {
			if v.CanWake(i) {
				return Event{Kind: sched.EventWake, Agent: i}, true
			}
		}
	}
	if v.CanAdvance(f.fav) {
		return Event{Kind: sched.EventAdvance, Agent: f.fav}, true
	}
	return f.rr.Next(v)
}

func init() {
	if err := RegisterGraphKind(GraphKindDef{
		Kind:  "testwheel",
		Sized: true,
		CheckAxis: func(n, _, _ int) error {
			if n < 4 {
				return fmt.Errorf("testwheel needs size >= 4, got %d", n)
			}
			return nil
		},
		Build: func(spec GraphSpec) (*Graph, error) {
			if spec.N < 4 {
				return nil, fmt.Errorf("testwheel needs size >= 4, got %d", spec.N)
			}
			return buildTestWheel(spec.N), nil
		},
		Fingerprint: "testwheel/v1",
	}); err != nil {
		panic(err)
	}
	if err := RegisterAdversary(AdversaryDef{
		Name:        "testflake",
		PerCellSeed: true,
		Parse: func(args AdversaryArgs) (Adversary, error) {
			seed := int64(7)
			if s := args.Rest(); s != "" {
				v, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					return nil, args.Errf("bad seed")
				}
				seed = v
			}
			return RandomAdversary(seed), nil
		},
	}); err != nil {
		panic(err)
	}
	if err := RegisterAdversary(AdversaryDef{
		Name: "testfavor",
		Parse: func(args AdversaryArgs) (Adversary, error) {
			fav := 0
			if s := args.Param(0); s != "" {
				v, err := strconv.Atoi(s)
				if err != nil || v < 0 {
					return nil, args.Errf("bad agent %q", s)
				}
				fav = v
			}
			if args.Agents > 0 && fav >= args.Agents {
				return nil, args.Errf("agent %d out of range for %d agents", fav, args.Agents)
			}
			return &favorAdversary{fav: fav}, nil
		},
	}); err != nil {
		panic(err)
	}
	if err := RegisterScenarioKind(ScenarioKindDef{
		Kind: "testprobe", Labeled: true, UsesAdversary: true, UsesBudget: true,
		Run: func(rc *ScenarioRunContext) (*Result, error) {
			// A deterministic "probe": the BFS distance between the two
			// starts, standing in for any custom algorithm. It resolves
			// its adversary and labels like a real kind would, but needs
			// no scheduler.
			sc := rc.Scenario
			d := rc.Graph.BFSDistances(sc.Starts[0])[sc.Starts[1]]
			return &Result{Scenario: sc, Custom: probeResult{Distance: d}}, nil
		},
		Outcome: func(res *Result, runErr error, o *SweepOutcome) {
			if pr, ok := res.Custom.(probeResult); ok && runErr == nil {
				o.Met = true
				o.Cost = pr.Distance
			}
		},
	}); err != nil {
		panic(err)
	}
}

// customSweepSpec is the end-to-end campaign: the custom kind and a
// built-in side by side, on custom and built-in graphs, under custom
// and built-in adversaries.
func customSweepSpec() SweepSpec {
	return SweepSpec{
		Name:  "custom-e2e",
		Seed:  "custom-e2e-v1",
		Kinds: []string{"testprobe", "rendezvous"},
		Graphs: []SweepGraphAxis{
			{Kind: "testwheel", Sizes: []int{5, 6}},
			{Kind: "ring", Sizes: []int{5}},
		},
		StartPairs:  2,
		LabelPairs:  2,
		Adversaries: []string{"", "testflake", "testfavor:1"},
		Budget:      5000,
	}
}

// TestRegisteredCustomKindEndToEnd drives a custom graph kind, custom
// adversaries and a custom scenario kind through every execution
// surface: Run, RunBatch, Sweep, SweepStream, ReplayCell, and the
// prepared-scenario cache (hit ratio preserved — one build per unique
// graph, everything else cache hits).
func TestRegisteredCustomKindEndToEnd(t *testing.T) {
	ctx := context.Background()
	eng := NewEngine(WithMaxN(4), WithSeed(1))

	sc := Scenario{
		Name:   "probe-one",
		Kind:   "testprobe",
		Graph:  GraphSpec{Kind: "testwheel", N: 6},
		Starts: []int{1, 3},
		Labels: []Label{2, 5},
		Budget: 100,
	}
	res, err := eng.Run(ctx, sc)
	if err != nil {
		t.Fatalf("Run of custom kind: %v", err)
	}
	pr, ok := res.Custom.(probeResult)
	if !ok {
		t.Fatalf("Result.Custom = %T, want probeResult", res.Custom)
	}
	// Hub-and-cycle: 1 and 3 are two apart on the outer cycle, and two
	// via the hub.
	if pr.Distance != 2 {
		t.Fatalf("probe distance = %d, want 2", pr.Distance)
	}

	// A custom adversary drives a BUILT-IN kind end to end.
	rv := Scenario{
		Name:      "rv-under-custom-adversary",
		Kind:      ScenarioRendezvous,
		Graph:     GraphSpec{Kind: "testwheel", N: 6},
		Starts:    []int{1, 4},
		Labels:    []Label{2, 5},
		Adversary: "testfavor:1",
		Budget:    500_000,
	}
	if _, err := eng.Run(ctx, rv); err != nil {
		t.Fatalf("rendezvous under custom adversary: %v", err)
	}

	// RunBatch mixes custom and built-in kinds.
	batch := eng.RunBatch(ctx, []Scenario{sc, rv, {
		Name:   "probe-invalid",
		Kind:   "testprobe",
		Graph:  GraphSpec{Kind: "testwheel", N: 3}, // under the kind's floor
		Starts: []int{0, 1},
		Labels: []Label{1, 2},
		Budget: 10,
	}})
	if batch[0].Err != nil || batch[1].Err != nil {
		t.Fatalf("batch errors: %v / %v", batch[0].Err, batch[1].Err)
	}
	if !errors.Is(batch[2].Err, ErrInvalidScenario) {
		t.Fatalf("undersized custom graph: want ErrInvalidScenario, got %v", batch[2].Err)
	}

	// Sweep: a fresh engine so cache accounting is exact.
	sweepEng := NewEngine(WithMaxN(4), WithSeed(1))
	spec := customSweepSpec()
	total, err := CountSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sweepEng.Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells != total {
		t.Fatalf("sweep ran %d cells, expansion projects %d", rep.Cells, total)
	}
	if !rep.OK() {
		t.Fatalf("custom sweep failed oracles:\n%s", rep.Table())
	}
	// 3 unique graphs -> 3 cache misses (the pre-pass builds); every
	// per-cell preparation after that must hit.
	stats := sweepEng.CacheStats()
	if stats.Misses != 3 {
		t.Errorf("cache misses = %d, want 3 (one per unique graph)", stats.Misses)
	}
	if stats.Hits != int64(total) {
		t.Errorf("cache hits = %d, want %d (one per cell)", stats.Hits, total)
	}

	// The custom kind's cells carried labels, budget, and specialized
	// per-cell testflake seeds, exactly like a built-in's.
	var probeCell SweepCell
	found := false
	if err := WalkSweep(spec, func(c SweepCell) bool {
		if c.Kind == "testprobe" && strings.HasPrefix(c.Adversary, "testflake") {
			probeCell, found = c, true
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no testprobe/testflake cell expanded")
	}
	if !strings.Contains(probeCell.Adversary, ":") {
		t.Errorf("bare custom PerCellSeed adversary was not specialized: %q", probeCell.Adversary)
	}
	if len(probeCell.Labels) != 2 || probeCell.Budget != 5000 {
		t.Errorf("custom cell missing label/budget axes: %+v", probeCell)
	}

	// ReplayCell reproduces a swept custom cell from its seed string
	// with the same outcome the stream reported.
	streamed := make(map[int]SweepCellResult, total)
	for cr, err := range sweepEng.SweepStream(ctx, spec) {
		if err != nil {
			t.Fatal(err)
		}
		streamed[cr.Cell.Index] = cr
	}
	if len(streamed) != total {
		t.Fatalf("stream yielded %d cells, want %d", len(streamed), total)
	}
	replayed, err := sweepEng.ReplayCell(ctx, spec, probeCell.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if got := streamed[probeCell.Index]; !reflect.DeepEqual(replayed.Outcome, got.Outcome) {
		t.Errorf("replayed outcome diverges from swept:\nreplay %+v\nsweep  %+v", replayed.Outcome, got.Outcome)
	}
}

// TestRegistryRejectsConflicts pins the registration contract:
// duplicate names fail, nil essentials fail, and the error is a plain
// error (no panics) so extensions can probe availability.
func TestRegistryRejectsConflicts(t *testing.T) {
	if err := RegisterGraphKind(GraphKindDef{Kind: "ring", Build: func(GraphSpec) (*Graph, error) { return nil, nil }}); err == nil {
		t.Error("re-registering built-in graph kind ring succeeded")
	}
	if err := RegisterGraphKind(GraphKindDef{Kind: "nobuild"}); err == nil {
		t.Error("graph kind without Build succeeded")
	}
	if err := RegisterAdversary(AdversaryDef{Name: "random", Parse: func(AdversaryArgs) (Adversary, error) { return nil, nil }}); err == nil {
		t.Error("re-registering built-in adversary random succeeded")
	}
	if err := RegisterAdversary(AdversaryDef{Name: "noparse"}); err == nil {
		t.Error("adversary without Parse succeeded")
	}
	// Rejection is all-or-nothing: a duplicate ALIAS must not leave the
	// fresh primary name registered.
	if err := RegisterAdversary(AdversaryDef{
		Name: "fresh-primary", Aliases: []string{"avoider"},
		Parse: func(AdversaryArgs) (Adversary, error) { return RoundRobin(), nil },
	}); err == nil {
		t.Error("adversary with duplicate alias succeeded")
	}
	if _, err := ParseAdversary("fresh-primary"); !errors.Is(err, ErrInvalidScenario) {
		t.Errorf("rejected registration left 'fresh-primary' parseable (err=%v)", err)
	}
	if err := RegisterScenarioKind(ScenarioKindDef{Kind: ScenarioRendezvous, Run: func(*ScenarioRunContext) (*Result, error) { return nil, nil }}); err == nil {
		t.Error("re-registering built-in scenario kind rendezvous succeeded")
	}
	if err := RegisterScenarioKind(ScenarioKindDef{Kind: "norun"}); err == nil {
		t.Error("scenario kind without Run succeeded")
	}
	// Conflicting campaign metadata under an existing kind name must be
	// rejected even though the runner slot is free.
	if err := RegisterScenarioKind(ScenarioKindDef{
		Kind: "testprobe", Labeled: false,
		Run: func(*ScenarioRunContext) (*Result, error) { return nil, nil },
	}); err == nil {
		t.Error("conflicting re-registration of testprobe succeeded")
	}
}

// TestGraphSpecString pins the compact spec rendering used in error
// messages.
func TestGraphSpecString(t *testing.T) {
	for _, tc := range []struct {
		spec GraphSpec
		want string
	}{
		{GraphSpec{Kind: "ring", N: 64}, "ring/64"},
		{GraphSpec{Kind: "ring", N: 64, Shuffle: true, Seed: 7}, "ring/64?shuffle=7"},
		{GraphSpec{Kind: "grid", Rows: 3, Cols: 4}, "grid/3x4"},
		{GraphSpec{Kind: "petersen"}, "petersen"},
		{GraphSpec{Kind: "random", N: 12, P: 0.4, Seed: 3}, "random/12?p=0.4&seed=3"},
		{GraphSpec{Kind: "tree", N: 5, Seed: 9}, "tree/5?seed=9"},
		{GraphSpec{Kind: "path", N: 4, Shuffle: true}, "path/4?shuffle=0"},
	} {
		if got := tc.spec.String(); got != tc.want {
			t.Errorf("GraphSpec%+v.String() = %q, want %q", tc.spec, got, tc.want)
		}
	}
	// Build errors carry the compact form, not a %+v field dump.
	_, err := GraphSpec{Kind: "ring", N: MaxSpecNodes + 1}.Build()
	if err == nil || !strings.Contains(err.Error(), "ring/2049") {
		t.Errorf("build error does not use the compact spec string: %v", err)
	}
	if err != nil && strings.Contains(err.Error(), "Shuffle:false") {
		t.Errorf("build error still dumps zero-valued fields: %v", err)
	}
}

// TestLateWakeAgentParameter pins the latewake:<hold>:<agent> syntax:
// any agent can be starved, the starved index is validated against the
// scenario, and the default (agent 0) is unchanged.
func TestLateWakeAgentParameter(t *testing.T) {
	adv, err := ParseAdversary("latewake:75:1")
	if err != nil {
		t.Fatal(err)
	}
	lw, ok := adv.(*sched.LateWake)
	if !ok || lw.Hold != 75 || lw.Primary != 1 {
		t.Fatalf("latewake:75:1 parsed to %#v", adv)
	}
	adv, err = ParseAdversary("late-wake:10")
	if err != nil {
		t.Fatal(err)
	}
	if lw := adv.(*sched.LateWake); lw.Hold != 10 || lw.Primary != 0 {
		t.Fatalf("late-wake:10 parsed to %#v", lw)
	}
	for _, bad := range []string{"latewake:x", "latewake:-1", "latewake:5:x", "latewake:5:-2", "latewake:1:2:3"} {
		if _, err := ParseAdversary(bad); !errors.Is(err, ErrInvalidScenario) {
			t.Errorf("%q: want ErrInvalidScenario, got %v", bad, err)
		}
	}

	// The starved agent must exist in the scenario.
	eng := NewEngine(WithMaxN(4), WithSeed(1))
	base := Scenario{
		Kind:   ScenarioRendezvous,
		Graph:  GraphSpec{Kind: "path", N: 4},
		Starts: []int{0, 3}, Labels: []Label{2, 5},
		Budget: 1_000_000,
	}
	out := base
	out.Adversary = "latewake:10:2"
	if _, err := eng.Run(context.Background(), out); !errors.Is(err, ErrInvalidScenario) {
		t.Errorf("latewake agent 2 of 2: want ErrInvalidScenario, got %v", err)
	}
	// Starving agent 1 (previously impossible: Primary was pinned to 0)
	// must still rendezvous — the woken agent's trajectory suffices.
	run := base
	run.Adversary = "latewake:50:1"
	res, err := eng.Run(context.Background(), run)
	if err != nil {
		t.Fatalf("latewake:50:1 run: %v", err)
	}
	if !res.Rendezvous.Met {
		t.Error("latewake:50:1 run did not meet")
	}
}
