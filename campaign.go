package meetpoly

import (
	"errors"
	"fmt"
	"sort"

	"meetpoly/internal/campaign"
)

// The campaign sweep subsystem: a SweepSpec declares the cross product
// of graph families × sizes × start pairs × label pairs × adversary
// specs × scenario kinds, Engine.Sweep expands it into concrete
// Scenarios, fans them out over the engine's worker pool, checks every
// run against oracle predicates derived from the paper's cost bounds,
// and aggregates the results into a cost-statistics report.
//
// Determinism is the point: each cell's seed string ("<spec seed>#<i>")
// pins its starts, labels and adversary seed, so any failing cell
// replays from the spec plus that one string (Engine.ReplayCell).

// SweepSpec declares a campaign. See internal/campaign.Spec for the
// field-by-field contract; load one from JSON with SweepSpecFromJSON or
// LoadSweepSpecFile.
type SweepSpec = campaign.Spec

// SweepGraphAxis is one graph family × size axis of a SweepSpec.
type SweepGraphAxis = campaign.GraphAxis

// SweepCell is one fully-resolved scenario descriptor of a sweep.
type SweepCell = campaign.Cell

// SweepOutcome is the engine-agnostic record of one executed cell that
// oracles judge.
type SweepOutcome = campaign.Outcome

// SweepOracle is a machine-checked predicate over one executed cell.
type SweepOracle = campaign.Oracle

// SweepCellResult pairs a cell with its outcome and oracle verdicts.
type SweepCellResult = campaign.CellResult

// SweepOracleFailure is one failed oracle verdict of a cell result.
type SweepOracleFailure = campaign.OracleFailure

// SweepReport is the aggregate outcome of a campaign.
type SweepReport = campaign.Report

// CellScenario converts an expanded campaign cell into the Scenario it
// executes. The conversion is 1:1 and deterministic, so a replayed cell
// runs exactly the scenario the sweep ran.
func CellScenario(c SweepCell) Scenario {
	sc := Scenario{
		Name:      c.ID,
		Kind:      ScenarioKind(c.Kind),
		Graph:     cellGraphSpec(c),
		Starts:    append([]int(nil), c.Starts...),
		Adversary: c.Adversary,
		Budget:    c.Budget,
		Moves:     c.Moves,
	}
	for _, l := range c.Labels {
		sc.Labels = append(sc.Labels, Label(l))
	}
	return sc
}

// cellGraphSpec projects a sweep cell's graph parameters into the
// GraphSpec its Scenario declares. It is also the graph half of the
// batched tier's grouping key: cells with equal specs resolve, through
// the prepared-scenario cache, to the same built *Graph, which is what
// lets their lanes share one BatchRunner.
func cellGraphSpec(c SweepCell) GraphSpec {
	return GraphSpec{
		Kind: c.Graph.Kind, N: c.Graph.N,
		Rows: c.Graph.Rows, Cols: c.Graph.Cols,
		P: c.Graph.P, Seed: c.Graph.Seed, Shuffle: c.Graph.Shuffle,
	}
}

// ExpandSweep expands a sweep spec into its cells and the scenarios
// they execute, index-aligned. It materializes both slices; callers
// that only need to iterate or count use WalkSweep/CountSweep, which
// expand in bounded memory.
func ExpandSweep(spec SweepSpec) ([]SweepCell, []Scenario, error) {
	cells, err := campaign.Expand(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("%v: %w", err, ErrInvalidScenario)
	}
	scs := make([]Scenario, len(cells))
	for i, c := range cells {
		scs[i] = CellScenario(c)
	}
	return cells, scs, nil
}

// WalkSweep streams the spec's cells to yield in expansion order
// (identical to ExpandSweep's), holding one cell at a time: the
// bounded-memory path Engine.Sweep and `rvsweep -expand` use. yield
// returning false stops the walk early.
func WalkSweep(spec SweepSpec, yield func(SweepCell) bool) error {
	if err := campaign.Walk(spec, yield); err != nil {
		return fmt.Errorf("%v: %w", err, ErrInvalidScenario)
	}
	return nil
}

// WalkSweepRange streams only the cells whose index falls in the
// half-open range [lo, hi), in expansion order. Cell i yielded by any
// range is identical to cell i of a full WalkSweep — the invariant
// sharded campaigns (Engine.SweepStreamRange, rvserved's shards) are
// built on. A hi beyond the expansion ends at the last cell.
func WalkSweepRange(spec SweepSpec, lo, hi int, yield func(SweepCell) bool) error {
	if err := campaign.WalkRange(spec, lo, hi, yield); err != nil {
		return fmt.Errorf("%v: %w", err, ErrInvalidScenario)
	}
	return nil
}

// CountSweep returns how many cells the spec expands to, by axis
// arithmetic alone — no cells are derived.
func CountSweep(spec SweepSpec) (int, error) {
	n, err := campaign.Count(spec)
	if err != nil {
		return 0, fmt.Errorf("%v: %w", err, ErrInvalidScenario)
	}
	return n, nil
}

// sweepGraphSpecs resolves the spec's unique graph cells into the
// GraphSpecs their scenarios build — the engine's sweep pre-pass warms
// exactly these through the prepared-scenario cache.
func sweepGraphSpecs(spec SweepSpec) ([]GraphSpec, error) {
	gps, err := campaign.Graphs(spec)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrInvalidScenario)
	}
	out := make([]GraphSpec, len(gps))
	for i, gp := range gps {
		out[i] = GraphSpec{
			Kind: gp.Kind, N: gp.N,
			Rows: gp.Rows, Cols: gp.Cols,
			P: gp.P, Seed: gp.Seed, Shuffle: gp.Shuffle,
		}
	}
	return out, nil
}

// sweepOutcome classifies one batch result into the engine-agnostic
// outcome the campaign oracles consume.
func sweepOutcome(cell SweepCell, br BatchResult) SweepOutcome {
	o := SweepOutcome{Consistent: true}
	g := br.Graph
	if g == nil {
		// Replayed cells arrive without the batch-prepared graph; the
		// build is deterministic, so rebuilding preserves the facts.
		if built, err := br.Scenario.BuildGraph(); err == nil {
			g = built
		}
	}
	if g != nil {
		o.N, o.M = g.N(), g.M()
	}
	if br.Err != nil {
		o.Err = br.Err.Error()
		switch {
		case errors.Is(br.Err, ErrCanceled):
			o.Canceled = true
		case errors.Is(br.Err, ErrBudgetExhausted):
			o.Exhausted = true
		case errors.Is(br.Err, ErrInvalidScenario), errors.Is(br.Err, ErrCatalogUncovered):
			o.Invalid = true
		default:
			o.EndedEarly = true
		}
	}
	res := br.Result
	if res == nil {
		return o
	}
	// Per-kind classification is the registered kind's Outcome hook —
	// built-ins surface goal costs and scheduler accounting through
	// theirs; a custom kind without one gets the generic reading that an
	// error-free run met its goal.
	if def, ok := lookupScenarioKind(br.Scenario.Kind); ok && def.Outcome != nil {
		def.Outcome(res, br.Err, &o)
	} else if br.Err == nil {
		o.Met = true
	}
	return o
}

// sglInconsistency checks the semantic invariants of a completed Strong
// Global Learning run: every agent output the same label set, agreed on
// the leader (the smallest label), reported the true team size, and took
// a distinct new name in 1..k. It returns "" when all hold.
func sglInconsistency(r *SGLResult) string {
	k := len(r.Agents)
	var ref []Label
	names := make(map[int]bool, k)
	minLabel := Label(0)
	for _, a := range r.Agents {
		if a.Label < minLabel || minLabel == 0 {
			minLabel = a.Label
		}
	}
	for i, a := range r.Agents {
		if !a.HasOutput {
			return fmt.Sprintf("agent %d has no output despite AllOutput", i)
		}
		if a.TeamSize != k {
			return fmt.Sprintf("agent %d reports team size %d, want %d", i, a.TeamSize, k)
		}
		if a.Leader != minLabel {
			return fmt.Sprintf("agent %d elected leader %d, want %d", i, a.Leader, minLabel)
		}
		if a.NewName < 1 || a.NewName > k || names[a.NewName] {
			return fmt.Sprintf("agent %d renamed to %d (not a fresh name in 1..%d)", i, a.NewName, k)
		}
		names[a.NewName] = true
		out := append([]Label(nil), a.Output...)
		sort.Slice(out, func(x, y int) bool { return out[x] < out[y] })
		if ref == nil {
			ref = out
			continue
		}
		if len(out) != len(ref) {
			return fmt.Sprintf("agent %d output %d labels, agent 0 output %d", i, len(out), len(ref))
		}
		for j := range out {
			if out[j] != ref[j] {
				return fmt.Sprintf("agent %d output disagrees with agent 0 at position %d", i, j)
			}
		}
	}
	return ""
}
