package sgl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/sched"
)

// TestSGLRandomTeamsProperty: random 2-3 agent teams on random trees.
// Soundness asserted unconditionally: any produced output is exactly the
// full label set (no premature or wrong outputs, whatever the budget);
// most runs must complete.
func TestSGLRandomTeamsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	env := testEnv(t)
	complete, total := 0, 0
	f := func(seed int64, kRaw uint8, labRaw [3]uint16) bool {
		n := 5 + int(uint64(seed)%2)
		g := graph.RandomTree(n, seed)
		k := 2 + int(kRaw)%2
		// Distinct labels and starts.
		labSet := make(map[labels.Label]bool)
		var labs []labels.Label
		for i := 0; i < k; i++ {
			l := labels.Label(labRaw[i]%300 + 1)
			for labSet[l] {
				l++
			}
			labSet[l] = true
			labs = append(labs, l)
		}
		starts := make([]int, 0, k)
		used := make(map[int]bool)
		for i := 0; len(starts) < k; i++ {
			s := (int(seed>>uint(i%16)) + i*3) % n
			if s < 0 {
				s = -s
			}
			if !used[s] {
				used[s] = true
				starts = append(starts, s)
			}
		}
		res, err := Run(Config{
			Graph:    g,
			Starts:   starts,
			Labels:   labs,
			Env:      env,
			MaxSteps: 10_000_000,
		})
		if err != nil {
			return false
		}
		total++
		want := wantSet(labs)
		for _, a := range res.Agents {
			if a.Failure != "" {
				return false
			}
			if !a.HasOutput {
				continue
			}
			if len(a.Output) != len(want) {
				return false
			}
			for i := range want {
				if a.Output[i] != want[i] {
					return false
				}
			}
		}
		if res.AllOutput {
			complete++
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	if total > 0 && complete*2 < total {
		t.Errorf("only %d/%d SGL runs completed; typical-case regression", complete, total)
	}
}

// TestSGLBiasedAdversary: a heavily skewed schedule still completes —
// asynchrony cannot break Strong Global Learning, only slow it down.
func TestSGLBiasedAdversary(t *testing.T) {
	env := testEnv(t)
	labs := []labels.Label{5, 2, 8}
	res, err := Run(Config{
		Graph:     graph.Star(5),
		Starts:    []int{0, 2, 4},
		Labels:    labs,
		Env:       env,
		Adversary: &sched.Biased{Weights: []int{1, 6, 11}},
		MaxSteps:  60_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, "biased", res, labs)
}
