package esst

import (
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/sched"
	"meetpoly/internal/uxs"
)

func testCat(t testing.TB, maxN int) uxs.Catalog {
	t.Helper()
	return uxs.NewVerified(uxs.DefaultFamily(maxN), 1)
}

// TestESSTTheorem21 is the main reproduction of Theorem 2.1: the
// procedure terminates, all edges are traversed, the terminating phase is
// at most 9n+3, and the cost respects the polynomial bound.
func TestESSTTheorem21(t *testing.T) {
	cat := testCat(t, 8)
	cases := []*graph.Graph{
		graph.Path(2),
		graph.Path(5),
		graph.Ring(4),
		graph.Ring(7),
		graph.Star(6),
		graph.Complete(5),
		graph.BinaryTree(7),
		graph.RandomTree(8, 3),
		graph.RandomConnected(8, 0.3, 57),
	}
	for _, g := range cases {
		if g.N() > 8 {
			t.Fatalf("%s exceeds catalog family", g)
		}
		ext := cat.(*uxs.Verified)
		if !ext.Covers(g) {
			ext.Extend(g)
		}
		for _, startTok := range []int{0, g.N() - 1} {
			startEx := (startTok + 1) % g.N()
			res, err := Explore(g, startEx, startTok, cat, &sched.RoundRobin{}, 50_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Done {
				t.Errorf("%s (token at %d): ESST did not terminate", g, startTok)
				continue
			}
			if !res.Covered {
				t.Errorf("%s: terminated in phase %d without covering all edges", g, res.Phase)
			}
			if res.Phase > 9*g.N()+3 {
				t.Errorf("%s: phase %d exceeds 9n+3 = %d", g, res.Phase, 9*g.N()+3)
			}
			if res.EUpper < g.N()-1 {
				t.Errorf("%s: E(n) = %d is not an upper bound proxy for n = %d", g, res.EUpper, g.N())
			}
			if bound := CostBound(cat, res.Phase); res.Cost > bound {
				t.Errorf("%s: cost %d exceeds bound %d for phase %d", g, res.Cost, bound, res.Phase)
			}
		}
	}
}

// TestESSTDeterministic: same configuration, same cost and phase.
func TestESSTDeterministic(t *testing.T) {
	cat := testCat(t, 5)
	run := func() *Result {
		res, err := Explore(graph.Ring(5), 1, 3, cat, &sched.RoundRobin{}, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cost != b.Cost || a.Phase != b.Phase {
		t.Errorf("nondeterministic ESST: (%d,%d) vs (%d,%d)", a.Cost, a.Phase, b.Cost, b.Phase)
	}
}

// TestESSTAdversaryIndependent: the token never moves, so the schedule
// cannot change the explorer's walk — only its interleaving. Cost and
// phase must be identical under every adversary.
func TestESSTAdversaryIndependent(t *testing.T) {
	cat := testCat(t, 5)
	g := graph.Star(5)
	var ref *Result
	for name, mk := range map[string]func() sched.Adversary{
		"round-robin": func() sched.Adversary { return &sched.RoundRobin{} },
		"random":      func() sched.Adversary { return sched.NewRandom(11) },
		"avoider":     func() sched.Adversary { return &sched.Avoider{} },
	} {
		res, err := Explore(g, 1, 0, cat, mk(), 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatalf("%s: did not terminate", name)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Cost != ref.Cost || res.Phase != ref.Phase {
			t.Errorf("%s: cost/phase (%d,%d) differ from reference (%d,%d)",
				name, res.Cost, res.Phase, ref.Cost, ref.Phase)
		}
	}
}

// TestESSTPhaseGrowsWithDegree: cleanliness requires i-1 >= max degree,
// so high-degree graphs cannot terminate in very early phases.
func TestESSTPhaseGrowsWithDegree(t *testing.T) {
	cat := testCat(t, 8)
	ext := cat.(*uxs.Verified)
	g := graph.Star(8) // centre degree 7: phases 3 and 6 are never clean
	if !ext.Covers(g) {
		ext.Extend(g)
	}
	res, err := Explore(g, 1, 0, cat, &sched.RoundRobin{}, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("did not terminate")
	}
	if res.Phase < 9 {
		t.Errorf("star-8 terminated in phase %d despite max degree 7", res.Phase)
	}
}

// TestExplorerPhaseCapAborts: on a star whose centre degree exceeds the
// phase cap, no phase is ever clean, so a capped explorer gives up
// without claiming success.
func TestExplorerPhaseCapAborts(t *testing.T) {
	cat := testCat(t, 6)
	ex := &Explorer{Cat: cat, MaxPhase: 3} // phase 3 needs max degree <= 2
	tok := &Token{}
	r, err := sched.NewRunner(sched.Config{
		Graph:          graph.Star(6), // centre degree 5: never clean at phase 3
		Starts:         []int{1, 2},
		Agents:         []sched.Agent{ex, tok},
		InitiallyAwake: []int{0, 1},
		MaxSteps:       1_000_000,
	}, &sched.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Run()
	if ex.Done {
		t.Error("explorer claimed success despite unclean phases")
	}
	if ex.Cost == 0 {
		t.Error("explorer never walked")
	}
}

// TestCoversAllEdgesHelper sanity-checks the replay helper.
func TestCoversAllEdgesHelper(t *testing.T) {
	g := graph.Path(3)
	if CoversAllEdges(g, 0, []int{0}) {
		t.Error("single edge cannot cover a 2-edge path")
	}
	// 0 -> 1 -> 2 covers both edges.
	if !CoversAllEdges(g, 0, []int{0, 1}) {
		t.Error("full sweep not recognized")
	}
}

// TestTokenIsInert verifies the token halts immediately and counts
// meetings.
func TestTokenIsInert(t *testing.T) {
	g := graph.Path(3)
	tok := &Token{Payload: "tok"}
	w := &sched.Walker{Stepper: portScript(0, 1), StopAtMeeting: true}
	r, err := sched.NewRunner(sched.Config{
		Graph:          g,
		Starts:         []int{0, 2},
		Agents:         []sched.Agent{w, tok},
		InitiallyAwake: []int{0, 1},
		MaxSteps:       1000,
	}, &sched.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sum := r.Run()
	if sum.FirstMeeting == nil {
		t.Fatal("walker never reached the token")
	}
	if tok.MeetCount() != 1 {
		t.Errorf("token met %d times, want 1", tok.MeetCount())
	}
	if sum.Traversals[1] != 0 {
		t.Error("token moved")
	}
}

// script is a minimal fixed-port stepper for tests.
type script []int

func (s *script) Next(deg, entry int) (int, bool) {
	if len(*s) == 0 {
		return 0, false
	}
	p := (*s)[0]
	*s = (*s)[1:]
	return p % deg, true
}

func portScript(ports ...int) *script {
	s := script(ports)
	return &s
}
