package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"meetpoly"
	"meetpoly/internal/faultinject"
	"meetpoly/internal/serve"
)

// WorkerConfig configures one coordinator worker: an rvserved process
// (or test goroutine) that pulls leases and executes them.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string

	// Engine executes leased cells.
	Engine *meetpoly.Engine

	// Name identifies this worker in /v1/status. Empty means
	// "anonymous".
	Name string

	// Dir is the worker's private checkpoint directory (empty disables
	// checkpointing). A worker that crashes mid-lease and restarts on
	// the same directory replays its sealed cells instead of
	// recomputing them — even when the lease it resumes under covers
	// different ranges, only the overlap replays.
	Dir string

	// FlushEvery is the checkpoint flush interval in completed cells.
	FlushEvery int

	// Faults is the chaos harness, threaded into every leased
	// RunShard. A scheduled kill surfaces as faultinject.ErrKilled from
	// RunWorker — the caller (rvserved -coordinator) exits like a
	// killed process, the heartbeat stops, and the lease expires back
	// into the pool.
	Faults *faultinject.Injector

	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client

	// WaitFloor bounds how briefly the worker will sleep on a "wait"
	// response regardless of the coordinator's hint; <= 0 means 10ms.
	// Tests lower coordinator RetryAfter instead of touching this.
	WaitFloor time.Duration
}

// RunWorker pulls leases until the coordinator reports the campaign
// done, executing each lease's exact ranges through serve.RunShard and
// streaming the results back as NDJSON. It heartbeats at TTL/3 while a
// lease runs. Canceled cells are never submitted: the coordinator
// rejects them, so a budget-truncated lease completes only what
// actually ran and the remainder re-leases.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	client := cfg.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.WaitFloor <= 0 {
		cfg.WaitFloor = 10 * time.Millisecond
	}

	spec, err := fetchSpec(ctx, client, cfg.Coordinator)
	if err != nil {
		return err
	}

	for {
		lr, err := requestLease(ctx, client, cfg)
		if err != nil {
			return err
		}
		switch lr.Status {
		case "done":
			return nil
		case "wait":
			wait := time.Duration(lr.RetryMs) * time.Millisecond
			if wait < cfg.WaitFloor {
				wait = cfg.WaitFloor
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
			continue
		case "lease":
			if err := runLease(ctx, client, cfg, spec, lr); err != nil {
				return err
			}
		default:
			return fmt.Errorf("coord: worker %s: unknown lease status %q", cfg.Name, lr.Status)
		}
	}
}

// runLease executes one granted lease end to end: heartbeat loop,
// RunShard over exactly the leased ranges, then the Complete upload.
func runLease(ctx context.Context, client *http.Client, cfg WorkerConfig, spec meetpoly.SweepSpec, lr LeaseResponse) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	ttl := time.Duration(lr.TTLMs) * time.Millisecond
	go heartbeat(hbCtx, client, cfg.Coordinator, lr.Lease, ttl/3)

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	_, err := serve.RunShard(ctx, serve.ShardConfig{
		Engine:     cfg.Engine,
		Spec:       spec,
		Ranges:     lr.Ranges,
		Dir:        cfg.Dir,
		FlushEvery: cfg.FlushEvery,
		Faults:     cfg.Faults,
	}, func(cr meetpoly.SweepCellResult) bool {
		if cr.Outcome.Canceled {
			return true // not a result; the remainder re-leases
		}
		enc.Encode(cr) //nolint:errcheck // bytes.Buffer cannot fail
		return true
	})
	if err != nil {
		// An injected kill is the whole point of the harness: surface
		// it so the process dies without completing — the lease must
		// expire, not be returned politely.
		return err
	}
	stopHB()
	return complete(ctx, client, cfg.Coordinator, lr.Lease, &buf)
}

// heartbeat extends the lease every interval until ctx cancels or the
// coordinator declares the lease gone.
func heartbeat(ctx context.Context, client *http.Client, base, id string, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/heartbeat?lease="+id, nil)
		if err != nil {
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			continue // transient; the next tick retries inside the TTL
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode == http.StatusGone {
			return // lease reclaimed; Complete will still be accepted
		}
	}
}

func fetchSpec(ctx context.Context, client *http.Client, base string) (meetpoly.SweepSpec, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/spec", nil)
	if err != nil {
		return meetpoly.SweepSpec{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return meetpoly.SweepSpec{}, fmt.Errorf("coord: fetching spec: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return meetpoly.SweepSpec{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return meetpoly.SweepSpec{}, fmt.Errorf("coord: fetching spec: %s: %s", resp.Status, data)
	}
	return meetpoly.SweepSpecFromJSON(data)
}

func requestLease(ctx context.Context, client *http.Client, cfg WorkerConfig) (LeaseResponse, error) {
	url := cfg.Coordinator + "/v1/lease"
	if cfg.Name != "" {
		url += "?worker=" + cfg.Name
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return LeaseResponse{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return LeaseResponse{}, fmt.Errorf("coord: requesting lease: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return LeaseResponse{}, fmt.Errorf("coord: requesting lease: %s: %s", resp.Status, data)
	}
	var lr LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return LeaseResponse{}, fmt.Errorf("coord: decoding lease: %w", err)
	}
	return lr, nil
}

func complete(ctx context.Context, client *http.Client, base, id string, body io.Reader) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/complete?lease="+id, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("coord: completing lease %s: %w", id, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coord: completing lease %s: %s: %s", id, resp.Status, data)
	}
	return nil
}
