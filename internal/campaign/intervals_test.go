package campaign

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestIndexSetCoalescing pins AddRange's merge behavior at every
// adjacency class: touching, overlapping, contained, containing,
// bridging, and strictly disjoint — the invariant the lease pool and
// the checkpoint's ranges.log both lean on (a finished campaign must
// collapse to ONE interval, whatever order its pieces sealed in).
func TestIndexSetCoalescing(t *testing.T) {
	cases := []struct {
		name string
		adds [][2]int
		want []Interval
	}{
		{"adjacent ascending", [][2]int{{0, 5}, {5, 10}}, []Interval{{0, 10}}},
		{"adjacent descending", [][2]int{{5, 10}, {0, 5}}, []Interval{{0, 10}}},
		{"overlapping", [][2]int{{0, 6}, {4, 10}}, []Interval{{0, 10}}},
		{"contained", [][2]int{{0, 10}, {3, 7}}, []Interval{{0, 10}}},
		{"containing", [][2]int{{3, 7}, {0, 10}}, []Interval{{0, 10}}},
		{"bridging three", [][2]int{{0, 2}, {4, 6}, {8, 10}, {2, 8}}, []Interval{{0, 10}}},
		{"disjoint stay split", [][2]int{{0, 2}, {4, 6}}, []Interval{{0, 2}, {4, 6}}},
		{"off by one stays split", [][2]int{{0, 2}, {3, 5}}, []Interval{{0, 2}, {3, 5}}},
		{"empty is a no-op", [][2]int{{3, 3}, {5, 4}}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s IndexSet
			for _, a := range tc.adds {
				s.AddRange(a[0], a[1])
			}
			got := s.iv // the internal representation IS the claim
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("intervals %v, want %v", got, tc.want)
			}
		})
	}
}

// TestIndexSetGapsEdges pins Gaps at the degenerate windows resume
// logic hits: empty set, fully covered window, singleton holes and
// singleton islands, and empty/inverted windows.
func TestIndexSetGapsEdges(t *testing.T) {
	var empty IndexSet
	if got := empty.Gaps(0, 10); !reflect.DeepEqual(got, []Interval{{0, 10}}) {
		t.Fatalf("empty set gaps: %v, want the whole window", got)
	}
	if got := empty.Gaps(5, 5); got != nil {
		t.Fatalf("empty window must have no gaps, got %v", got)
	}
	if got := empty.Gaps(7, 3); got != nil {
		t.Fatalf("inverted window must have no gaps, got %v", got)
	}

	var full IndexSet
	full.AddRange(0, 10)
	if got := full.Gaps(0, 10); got != nil {
		t.Fatalf("full set gaps: %v, want none", got)
	}
	if got := full.Gaps(3, 7); got != nil {
		t.Fatalf("full set inner-window gaps: %v, want none", got)
	}

	var single IndexSet
	single.Add(5)
	if got := single.Gaps(0, 10); !reflect.DeepEqual(got, []Interval{{0, 5}, {6, 10}}) {
		t.Fatalf("singleton gaps: %v", got)
	}
	if got := single.Gaps(5, 6); got != nil {
		t.Fatalf("window == singleton: gaps %v, want none", got)
	}
	if got := single.Gaps(0, 5); !reflect.DeepEqual(got, []Interval{{0, 5}}) {
		t.Fatalf("window left of singleton: %v", got)
	}

	// A singleton hole: everything but index 5.
	var holed IndexSet
	holed.AddRange(0, 5)
	holed.AddRange(6, 10)
	if got := holed.Gaps(0, 10); !reflect.DeepEqual(got, []Interval{{5, 6}}) {
		t.Fatalf("singleton hole: %v, want [{5 6}]", got)
	}
}

// TestLeaseModelRandomized drives the coordinator's lease algebra —
// grant from the gaps of (done ∪ leased), expire back to the pool,
// complete into done — purely over IndexSet under a deterministic
// random schedule, asserting after every step that no cell is ever
// lost (done ∪ leased ∪ free covers the whole campaign) and none is
// double-leased or re-granted after completion (double-sealed).
func TestLeaseModelRandomized(t *testing.T) {
	const total, grantCells = 257, 16
	rng := rand.New(rand.NewSource(99))

	var done IndexSet
	leases := map[int]*IndexSet{}
	nextLease := 0

	taken := func() *IndexSet {
		var u IndexSet
		u.AddSet(&done)
		for _, l := range leases {
			u.AddSet(l)
		}
		return &u
	}
	check := func(step int) {
		t.Helper()
		// No overlap between done and any lease, or between leases —
		// i.e. |done| + Σ|lease| == |done ∪ leases|.
		sum := done.Len()
		for _, l := range leases {
			sum += l.Len()
		}
		u := taken()
		if sum != u.Len() {
			t.Fatalf("step %d: overlap detected: piecewise %d vs union %d (double-lease or re-grant of a sealed cell)", step, sum, u.Len())
		}
		// No cell lost: union of done, leases and the free gaps is
		// exactly [0, total).
		var all IndexSet
		all.AddSet(u)
		for _, g := range u.Gaps(0, total) {
			all.AddRange(g.Lo, g.Hi)
		}
		if all.Len() != total || len(all.Gaps(0, total)) != 0 {
			t.Fatalf("step %d: cells lost: coverage %d of %d", step, all.Len(), total)
		}
	}

	grant := func() {
		var g IndexSet
		budget := grantCells
		for _, gap := range taken().Gaps(0, total) {
			if budget <= 0 {
				break
			}
			hi := gap.Hi
			if gap.Lo+budget < hi {
				hi = gap.Lo + budget
			}
			g.AddRange(gap.Lo, hi)
			budget -= hi - gap.Lo
		}
		if g.Len() > 0 {
			leases[nextLease] = &g
			nextLease++
		}
	}
	pick := func() (int, *IndexSet) {
		for id, l := range leases { // map order: any victim will do
			return id, l
		}
		return -1, nil
	}

	for step := 0; step < 4000 && done.Len() < total; step++ {
		switch rng.Intn(5) {
		case 0, 1: // a worker asks for work
			grant()
		case 2: // a worker dies; its lease expires back to the pool
			if id, _ := pick(); id >= 0 {
				delete(leases, id)
			}
		case 3: // a worker completes its whole lease
			if id, l := pick(); id >= 0 {
				done.AddSet(l)
				delete(leases, id)
			}
		case 4: // a partial completion: half the lease lands, the rest re-pools
			if id, l := pick(); id >= 0 {
				kept := 0
				for _, iv := range l.Ranges() {
					for i := iv.Lo; i < iv.Hi && kept < l.Len()/2; i++ {
						done.Add(i)
						kept++
					}
				}
				delete(leases, id)
			}
		}
		check(step)
	}

	// Drain: every remaining cell must still be grantable and
	// completable — nothing was lost along the way.
	for done.Len() < total {
		grant()
		id, l := pick()
		if id < 0 {
			t.Fatalf("pool dry with %d/%d done", done.Len(), total)
		}
		done.AddSet(l)
		delete(leases, id)
		check(-1)
	}
	if got := done.Ranges(); !reflect.DeepEqual(got, []Interval{{0, total}}) {
		t.Fatalf("finished campaign coalesced to %v, want one interval", got)
	}
}
