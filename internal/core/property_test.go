package core

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/sched"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

// TestRendezvousOnRandomTreesProperty: random trees, random distinct
// labels, random start pair, round-robin schedule. Soundness is asserted
// unconditionally (no errors; measured cost within the bound when a
// meeting happens). A meeting within the budget is NOT guaranteed by the
// theory — only the astronomically distant Pi horizon is — and indeed
// trees with automorphism-related starts (twin leaves) can orbit without
// colliding for a long time, so the test requires most, not all,
// instances to meet early.
func TestRendezvousOnRandomTreesProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	env := trajectory.NewEnv(uxs.NewVerified(uxs.DefaultFamily(6), 1))
	met, total := 0, 0
	f := func(seed int64, aRaw, bRaw uint16, s1Raw, s2Raw uint8) bool {
		g := graph.RandomTree(4+int(uint64(seed)%3), seed)
		if v, ok := env.Catalog().(*uxs.Verified); ok && !v.Covers(g) {
			v.Extend(g)
		}
		l1 := labels.Label(aRaw%200 + 1)
		l2 := labels.Label(bRaw%200 + 1)
		if l1 == l2 {
			return true
		}
		s1 := int(s1Raw) % g.N()
		s2 := int(s2Raw) % g.N()
		if s1 == s2 {
			return true
		}
		res, err := Rendezvous(g, s1, s2, l1, l2, env, &sched.RoundRobin{}, 2_000_000)
		if err != nil {
			return false
		}
		total++
		if !res.Met {
			t.Logf("no early meeting (allowed): tree seed %d labels (%d,%d) starts (%d,%d)",
				seed, l1, l2, s1, s2)
			return true
		}
		met++
		return big.NewInt(int64(res.Meeting.Cost)).Cmp(res.Bound) <= 0
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	if total > 0 && met*2 < total {
		t.Errorf("only %d/%d instances met within budget; typical-case regression", met, total)
	}
}

// TestStepperScheduleConsistencyProperty: for random labels, the first
// moves of the master stepper follow exactly the components Schedule
// lists, via the Locate function.
func TestStepperScheduleConsistencyProperty(t *testing.T) {
	env := unitEnv()
	f := func(raw uint16) bool {
		l := labels.Label(raw%500 + 1)
		sch := Schedule(l, 2)
		// Walk prefix sums over the first few components and check
		// Locate agrees on kind at each boundary.
		prefix := new(big.Int)
		for idx, c := range sch {
			if idx > 6 {
				break
			}
			loc := Locate(l, env, prefix)
			if loc.Component.Kind != c.Kind || loc.Component.K != c.K {
				return false
			}
			prefix.Add(prefix, componentLen(env, c))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestScheduleInvariantsProperty: structural invariants of the flattened
// schedule for arbitrary labels — piece k has exactly min(k, s) segments
// of two atoms each, min(k,s)-1 borders, one fence, and the atom kinds
// follow the modified label's bits.
func TestScheduleInvariantsProperty(t *testing.T) {
	f := func(raw uint32, kMaxRaw uint8) bool {
		l := labels.Label(raw%100_000 + 1)
		kMax := 1 + int(kMaxRaw)%6
		bits := l.Modified()
		s := len(bits)
		sch := Schedule(l, kMax)
		byPiece := make(map[int][]Component)
		for _, c := range sch {
			byPiece[c.K] = append(byPiece[c.K], c)
		}
		for k := 1; k <= kMax; k++ {
			m := k
			if s < m {
				m = s
			}
			atoms, borders, fences := 0, 0, 0
			for _, c := range byPiece[k] {
				switch c.Kind {
				case CompAtomA:
					if bits[c.I-1] != 0 || c.Arg != 4*k {
						return false
					}
					atoms++
				case CompAtomB:
					if bits[c.I-1] != 1 || c.Arg != 2*k {
						return false
					}
					atoms++
				case CompK:
					borders++
				case CompOmega:
					fences++
				}
			}
			if atoms != 2*m || borders != m-1 || fences != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPiBoundMonotoneProperty: the guarantee grows with both n and the
// shorter label length.
func TestPiBoundMonotoneProperty(t *testing.T) {
	env := unitEnv()
	f := func(nRaw, mRaw uint8) bool {
		n := 2 + int(nRaw)%10
		l1 := labels.Label(1)<<(mRaw%8) + 1 // length 1..8
		b1 := PiBound(env, n, l1, 1<<62)
		b2 := PiBound(env, n+1, l1, 1<<62)
		return b2.Cmp(b1) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
