package baseline

import (
	"math/big"
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/sched"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

func testEnv(t testing.TB) *trajectory.Env {
	t.Helper()
	return trajectory.NewEnv(uxs.NewVerified(uxs.DefaultFamily(5), 1))
}

func TestRepetitionsAndCost(t *testing.T) {
	env := testEnv(t)
	n := 3
	p := int64(env.Catalog().P(n))
	r1 := Repetitions(env, n, 1)
	if want := 2*p + 1; r1.Int64() != want {
		t.Errorf("Repetitions(L=1) = %v, want %d", r1, want)
	}
	r2 := Repetitions(env, n, 2)
	if want := (2*p + 1) * (2*p + 1); r2.Int64() != want {
		t.Errorf("Repetitions(L=2) = %v, want %d", r2, want)
	}
	c1 := CostBound(env, n, 1)
	if want := (2*p + 1) * 2 * p; c1.Int64() != want {
		t.Errorf("CostBound(L=1) = %v, want %d", c1, want)
	}
}

func TestGuaranteeHolds(t *testing.T) {
	env := testEnv(t)
	for _, tc := range []struct {
		l1, l2 labels.Label
	}{{1, 2}, {2, 3}, {1, 5}, {3, 4}} {
		if !GuaranteeHolds(env, 4, tc.l1, tc.l2) {
			t.Errorf("guarantee fails for labels (%d,%d)", tc.l1, tc.l2)
		}
	}
}

func TestBaselineRendezvousMeets(t *testing.T) {
	env := testEnv(t)
	cases := []struct {
		g      *graph.Graph
		s1, s2 int
		l1, l2 labels.Label
	}{
		{graph.Path(2), 0, 1, 1, 2},
		{graph.Path(4), 0, 3, 1, 2},
		{graph.Star(4), 1, 3, 2, 1},
		{graph.ShufflePorts(graph.Ring(4), 4), 0, 2, 1, 2},
	}
	for _, tc := range cases {
		for name, mk := range map[string]func() sched.Adversary{
			"round-robin": func() sched.Adversary { return &sched.RoundRobin{} },
			"late-wake":   func() sched.Adversary { return &sched.LateWake{Primary: 0, Hold: 100} },
		} {
			res, err := Rendezvous(tc.g, tc.s1, tc.s2, tc.l1, tc.l2, env, mk(), 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Met {
				t.Errorf("%s/%s: baseline did not meet", tc.g, name)
				continue
			}
			if big.NewInt(int64(res.Meeting.Cost)).Cmp(res.Bound) > 0 {
				t.Errorf("%s/%s: cost %d exceeds bound %v", tc.g, name, res.Meeting.Cost, res.Bound)
			}
		}
	}
}

// TestBaselineStopsUnlikeCore: the baseline agent has a finite route: it
// halts after its repetitions. Verify the smaller agent halts when left
// alone, which is exactly why the larger must out-repeat its total cost.
func TestBaselineHaltsAfterBudget(t *testing.T) {
	env := testEnv(t)
	g := graph.Path(2)
	n := g.N()
	reps := Repetitions(env, n, 1)
	lenX := env.LenX(n)
	want := new(big.Int).Mul(reps, lenX)
	if !want.IsInt64() || want.Int64() > 500_000 {
		t.Skip("baseline route too long under this catalog")
	}
	tr, done := trajectory.Run(g, 0, NewStepper(env, n, 1), int(want.Int64())+10)
	if !done {
		t.Fatal("baseline stepper did not halt")
	}
	if int64(tr.Moves()) != want.Int64() {
		t.Errorf("baseline route %d moves, want %v", tr.Moves(), want)
	}
}

// TestCertifiedBaselineMeeting: on the 2-path the baseline's meeting is
// forced under every schedule; certify it exactly.
func TestCertifiedBaselineMeeting(t *testing.T) {
	env := testEnv(t)
	g := graph.Path(2)
	n := g.N()
	costSmall := CostBound(env, n, 1)
	if !costSmall.IsInt64() || costSmall.Int64() > 30_000 {
		t.Skip("route too long for certification under this catalog")
	}
	prefix := int(costSmall.Int64()) + 10
	mk := func(l labels.Label, start int) []int {
		tr, _ := trajectory.Run(g, start, NewStepper(env, n, l), prefix)
		return append([]int{start}, tr.Nodes...)
	}
	res, err := sched.Certify(mk(1, 0), mk(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Forced {
		t.Fatalf("baseline meeting not forced on 2-path: %v", res)
	}
}

func TestBaselineRejectsEqualLabels(t *testing.T) {
	env := testEnv(t)
	if _, err := Rendezvous(graph.Path(2), 0, 1, 3, 3, env, &sched.RoundRobin{}, 10); err == nil {
		t.Error("equal labels accepted")
	}
}

// TestExponentialGrowthMeasured pins the headline E3 shape on real
// executions: the baseline's route length grows by a factor 2P(n)+1 per
// unit of label VALUE.
func TestExponentialGrowthMeasured(t *testing.T) {
	env := testEnv(t)
	n := 2
	c1 := CostBound(env, n, 1)
	c2 := CostBound(env, n, 2)
	c3 := CostBound(env, n, 3)
	factor := int64(2*env.Catalog().P(n) + 1)
	r12 := new(big.Int).Div(c2, c1)
	r23 := new(big.Int).Div(c3, c2)
	if r12.Int64() != factor || r23.Int64() != factor {
		t.Errorf("growth factors %v,%v, want %d", r12, r23, factor)
	}
}
