// Command rvcoord is the campaign coordinator: the fault-tolerance
// layer that turns a fleet of rvserved workers into one reliable
// sweep. It loads a single campaign spec, owns the unfinished cell
// index set, and hands out bounded, heartbeat-renewed shard leases
// over HTTP. A worker that dies mid-lease simply stops heartbeating:
// the lease expires and its cells are re-granted to the next worker.
// Results fold through the order-independent aggregator (duplicates
// from reassigned leases are no-ops), and once every cell is done,
// GET /v1/report serves the exact bytes a single-process
// `rvsweep -json` run of the same spec prints.
//
// Endpoints (see internal/serve/coord):
//
//	GET  /v1/spec       the campaign spec workers must run
//	POST /v1/lease      acquire work (?worker=name)
//	POST /v1/heartbeat  keep a lease alive (?lease=ID)
//	POST /v1/complete   upload a lease's results as NDJSON (?lease=ID)
//	GET  /v1/status     progress counters
//	GET  /v1/report     final report; 409 + Retry-After until complete
//	GET  /healthz       200 ok (with the build version)
//	GET  /metrics       Prometheus text exposition (lease lifecycle, pool state)
//
// Start workers with `rvserved -coordinator http://host:8748`; poll
// /v1/report until it answers 200.
//
// Exit codes: 0 clean shutdown; 1 runtime error; 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"meetpoly"
	"meetpoly/internal/buildinfo"
	"meetpoly/internal/serve/coord"
	"meetpoly/internal/telemetry/logx"
)

func main() {
	var (
		addr       = flag.String("addr", ":8748", "address to listen on")
		specPath   = flag.String("spec", "", "path to the campaign sweep spec JSON (required)")
		leaseCells = flag.Int("lease-cells", coord.DefaultLeaseCells, "max cells per lease")
		leaseTTL   = flag.Duration("lease-ttl", coord.DefaultLeaseTTL, "lease lifetime without a heartbeat")
		retryAfter = flag.Duration("retry-after", coord.DefaultRetryAfter, "Retry-After hint for waiting workers and premature report fetches")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		version    = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rvcoord"))
		return
	}
	level, err := logx.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvcoord:", err)
		flag.Usage()
		os.Exit(2)
	}
	logger := logx.New(os.Stderr, level)
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "rvcoord: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	spec, err := meetpoly.LoadSweepSpecFile(*specPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvcoord:", err)
		os.Exit(1)
	}
	reg := meetpoly.NewMetrics()
	buildinfo.InfoGauge(reg, "rvcoord")
	c, err := coord.New(coord.Config{
		Spec:       spec,
		LeaseCells: *leaseCells,
		LeaseTTL:   *leaseTTL,
		RetryAfter: *retryAfter,
		Metrics:    reg,
		Log:        logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvcoord:", err)
		os.Exit(1)
	}

	total, _ := meetpoly.CountSweep(spec)
	mux := http.NewServeMux()
	mux.Handle("/", c.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening",
		logx.F("campaign", spec.Name), logx.F("cells", int64(total)), logx.F("addr", *addr))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "rvcoord:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rvcoord: shutdown:", err)
		os.Exit(1)
	}
}
