package core

import (
	"math/big"
	"strings"
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/labels"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

// unitEnv gives P(k) = 1, making every component short enough to verify
// Locate against real executions.
func unitEnv() *trajectory.Env {
	return trajectory.NewEnv(unitCatalog{})
}

type unitCatalog struct{}

func (unitCatalog) Seq(int) uxs.Sequence { return uxs.Sequence{0} }
func (unitCatalog) P(int) int            { return 1 }

func TestLocateFirstMove(t *testing.T) {
	env := unitEnv()
	loc := Locate(labels.Label(1), env, big.NewInt(0))
	// M(1) = 1101: bit 1 is 1, so the schedule opens with atom 1 of
	// B(2) in piece 1.
	if loc.Component.Kind != CompAtomB || loc.Component.K != 1 ||
		loc.Component.I != 1 || loc.AtomIndex != 0 || loc.Offset.Sign() != 0 {
		t.Errorf("Locate(0) = %+v", loc)
	}
	if !strings.Contains(loc.String(), "piece 1") {
		t.Errorf("String() = %q", loc.String())
	}
}

func TestLocateComponentBoundaries(t *testing.T) {
	env := unitEnv()
	l := labels.Label(1)
	// The first atom's length: index LenB(2) must be atom 2's move 0.
	lenB2 := env.LenB(2)
	loc := Locate(l, env, lenB2)
	if loc.Component.Kind != CompAtomB || loc.AtomIndex != 1 || loc.Offset.Sign() != 0 {
		t.Errorf("Locate(|B(2)|) = %+v", loc)
	}
	// After both atoms comes the fence Ω(1) (piece 1 has one segment).
	both := new(big.Int).Lsh(lenB2, 1)
	loc = Locate(l, env, both)
	if loc.Component.Kind != CompOmega || loc.Component.K != 1 {
		t.Errorf("Locate(2|B(2)|) = %+v", loc)
	}
	if !strings.Contains(loc.String(), "fence") {
		t.Errorf("String() = %q", loc.String())
	}
}

func TestLocateMatchesSchedule(t *testing.T) {
	env := unitEnv()
	l := labels.Label(2) // M(2) = 110001
	// Walk the flattened schedule through piece 3 computing prefix sums
	// and verify Locate agrees at each component start.
	prefix := new(big.Int)
	for _, c := range Schedule(l, 3) {
		clen := componentLen(env, c)
		reps := 1
		if c.Kind == CompAtomA || c.Kind == CompAtomB {
			reps = 1 // Schedule already lists atoms individually
		}
		for r := 0; r < reps; r++ {
			loc := Locate(l, env, prefix)
			if loc.Component.Kind != c.Kind || loc.Component.K != c.K ||
				loc.Component.Arg != c.Arg {
				t.Fatalf("prefix %v: Locate = %+v, want %+v", prefix, loc.Component, c)
			}
			if loc.Offset.Sign() != 0 {
				t.Fatalf("prefix %v: offset %v at component start", prefix, loc.Offset)
			}
			prefix.Add(prefix, clen)
		}
	}
}

func TestHorizonLenMatchesExecution(t *testing.T) {
	env := unitEnv()
	l := labels.Label(3)
	want := HorizonLen(l, env, 1)
	if !want.IsInt64() || want.Int64() > 20_000_000 {
		t.Fatalf("horizon %v too large for execution test", want)
	}
	g := testRing(t)
	tr, _ := trajectory.Run(g, 0, NewStepper(l, env), int(want.Int64()))
	if int64(tr.Moves()) != want.Int64() {
		t.Errorf("executed %d moves within horizon, want %v", tr.Moves(), want)
	}
	// The very next move belongs to piece 2's first atom.
	loc := Locate(l, env, want)
	if loc.Component.K != 2 || loc.Component.I != 1 ||
		(loc.Component.Kind != CompAtomB && loc.Component.Kind != CompAtomA) ||
		loc.Offset.Sign() != 0 {
		t.Errorf("post-horizon location = %+v", loc)
	}
}

func TestPieceLenComposition(t *testing.T) {
	env := unitEnv()
	l := labels.Label(5) // M(5) = 11001101? 5=101 -> 11 00 11 01, s=8
	// Piece 2: bits 1,2 = 1,1: two B(4)^2 segments and one border K(2).
	want := new(big.Int).Lsh(env.LenB(4), 2) // 4 atoms of B(4)
	want.Add(want, env.LenK(2))
	if got := PieceLen(l, env, 2); got.Cmp(want) != 0 {
		t.Errorf("PieceLen(piece 2) = %v, want %v", got, want)
	}
}

func TestLocateNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Locate(labels.Label(1), unitEnv(), big.NewInt(-1))
}

func testRing(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.Ring(4)
}
