// Quickstart: two agents with labels 2 and 5 meet on a 4-node path under
// an adversarial schedule, at cost polynomial in the graph size and the
// shorter label's length (Algorithm RV-asynch-poly, PODC 2013).
package main

import (
	"fmt"
	"log"

	"meetpoly"
)

func main() {
	// An environment whose exploration sequences are verified on the
	// standard graph families up to 6 nodes (the Reingold substitute,
	// DESIGN.md §2.1).
	env := meetpoly.NewEnv(6, 1)

	// The network: anonymous nodes, local port numbers only.
	g := meetpoly.Path(4)

	// Agents start at opposite ends; the adversary controls their speeds.
	// nil adversary = round-robin; try meetpoly.Avoider() for the
	// strongest online dodger.
	res, err := meetpoly.Rendezvous(g, 0, 3, 2, 5, env, nil, 2_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("met: %v\n", res.Met)
	if res.Met {
		where := fmt.Sprintf("node %d", res.Meeting.Node)
		if res.Meeting.InEdge {
			where = fmt.Sprintf("inside edge %v", res.Meeting.Edge)
		}
		fmt.Printf("meeting point: %s\n", where)
		fmt.Printf("measured cost: %d edge traversals\n", res.Meeting.Cost)
	}
	fmt.Printf("Theorem 3.1 guarantee Pi(n, |L_min|): %d bits\n", res.Bound.BitLen())
	fmt.Println("(measured cost is tiny next to the worst-case bound — that gap is the paper's point:")
	fmt.Println(" the bound holds against EVERY adversary, not just this schedule)")
}
