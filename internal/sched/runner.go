// Package sched simulates the paper's asynchronous adversary. Agents
// choose routes; the adversary controls the walk along them. The
// continuous model is discretized into half-steps without losing
// adversarial power (DESIGN.md §2.2): an agent is either at a node or
// strictly inside an edge, the adversary repeatedly picks one agent and
// advances it half a step (leave node / arrive at far node) or wakes a
// dormant agent, and a meeting is forced exactly when
//
//   - two agents are simultaneously at the same node, or
//   - two agents are simultaneously inside the same edge travelling in
//     opposite directions (continuous walks must cross).
//
// Agent programs come in two observationally identical flavours
// (DESIGN.md §2.2, "execution model"). A Stepper is an explicit
// resumable state machine the runner drives inline on its own goroutine
// — the zero-handoff fast path. A plain Agent runs its blocking program
// in its own goroutine, but exactly one goroutine is runnable at any
// time: the runner and the active agent hand control back and forth
// over unbuffered channels. Either way executions are fully
// deterministic given the adversary.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"meetpoly/internal/graph"
	"meetpoly/internal/rverr"
)

// Observation is everything the model lets an agent see upon arriving at
// a node: its degree and the entry port. Entry is -1 at the agent's
// starting node. Node identities are deliberately absent.
type Observation struct {
	Degree int
	Entry  int
}

// Peer is the information another agent shares during a meeting.
type Peer struct {
	ID      int
	Payload any
}

// Encounter describes one meeting from one participant's point of view.
type Encounter struct {
	Step   int    // scheduler step at which the meeting happened
	InEdge bool   // true for a crossing meeting inside an edge
	Peers  []Peer // the other participants' published payloads
}

// Agent is a participant in a simulation.
//
// Run is the agent's program. It executes in its own goroutine and moves
// by calling Proc.Move; returning from Run halts the agent forever (it
// remains physically present and meetable). OnMeet and Publish are always
// invoked while the agent's goroutine is suspended, so they may touch the
// same state as Run without synchronization.
//
// Agents that additionally implement Stepper are dispatched inline
// without a goroutine (see Stepper); Run is then only used when the
// fast path is disabled via Config.ForceBlocking.
type Agent interface {
	Run(p *Proc)
	// Publish returns the payload shared with peers at a meeting.
	Publish() any
	// OnMeet delivers a meeting. It runs before the agent resumes; state
	// it mutates is visible to Run immediately afterwards.
	OnMeet(e Encounter)
}

// ErrStopped is the panic value used to unwind agent goroutines when the
// runner shuts down; Proc.Move never returns after it.
var ErrStopped = errors.New("sched: runner stopped")

// Proc is the handle through which an agent program moves. Direct-
// dispatch steppers receive the same handle (for Proc.Phase) but never
// block in Move: the act/obs channels exist only on the goroutine core.
type Proc struct {
	r  *Runner
	id int

	cur  Observation
	act  chan Action
	obs  chan Observation
	done chan struct{}
}

// Obs returns the current observation (the node the agent occupies).
func (p *Proc) Obs() Observation { return p.cur }

// Phase announces an algorithm-level phase change to the runner's
// observer (no-op without one). It is safe to call from the agent's
// goroutine: agent code only runs while the runner is suspended, so the
// callback is serialized with all other observer callbacks.
func (p *Proc) Phase(name string) {
	if p.r.obs != nil {
		p.r.obs.OnPhase(p.id, name)
	}
}

// Move requests a traversal through the given port and blocks until the
// adversary has carried the agent to the other endpoint. It returns the
// arrival observation. If the runner shuts down first, Move panics with
// ErrStopped, which the agent wrapper recovers; program code after Move
// simply never runs.
func (p *Proc) Move(port int) Observation {
	select {
	case p.act <- Action{Port: port}:
	case <-p.done:
		panic(ErrStopped)
	}
	select {
	case o := <-p.obs:
		p.cur = o
		return o
	case <-p.done:
		panic(ErrStopped)
	}
}

// Status of an agent in the simulation.
type Status uint8

// Agent lifecycle states.
const (
	StatusDormant Status = iota + 1
	StatusActive
	StatusHalted
)

func (s Status) String() string {
	switch s {
	case StatusDormant:
		return "dormant"
	case StatusActive:
		return "active"
	case StatusHalted:
		return "halted"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// PosKind distinguishes node occupancy from edge interiors.
type PosKind uint8

// Position kinds.
const (
	AtNode PosKind = iota + 1
	InEdge
)

// Position is an agent's physical location.
type Position struct {
	Kind PosKind
	Node int // occupied node when AtNode
	From int // tail node when InEdge
	To   int // head node when InEdge
}

// agentState is the runner's bookkeeping for one agent.
type agentState struct {
	agent   Agent
	stepper Stepper // non-nil selects the direct-dispatch fast path
	proc    *Proc
	id      int
	status  Status
	pos     Position

	pendingPort  int  // committed exit port when hasPending
	pendingEntry int  // arrival entry port of the pending traversal (set at half-step 1)
	hasPending   bool // an un-executed Move request exists
	traversals   int  // completed edge traversals
}

// EventKind enumerates adversary moves.
type EventKind uint8

// Adversary event kinds.
const (
	EventWake EventKind = iota + 1
	EventAdvance
)

// Event is one adversary decision.
type Event struct {
	Kind  EventKind
	Agent int
}

// Meeting is a recorded meeting for the execution log.
type Meeting struct {
	Step         int
	Participants []int
	InEdge       bool
	Node         int    // meeting node when !InEdge
	Edge         [2]int // canonical edge when InEdge
	// Cost is the total completed edge traversals (all agents) when the
	// meeting fired; Committed additionally counts traversals in
	// progress, which the model obliges agents to finish.
	Cost      int
	Committed int
}

// Config describes a simulation.
type Config struct {
	Graph  *graph.Graph
	Starts []int   // starting node per agent (distinct)
	Agents []Agent // same length as Starts
	// InitiallyAwake lists agents woken before the first adversary event.
	// The paper's adversary wakes at least one agent; Run enforces that
	// either this list is non-empty or the adversary issues a wake event
	// before any advance.
	InitiallyAwake []int
	// StopWhen, if non-nil, ends the run after any event for which it
	// returns true. Typical: stop at first meeting.
	StopWhen func(r *Runner) bool
	// StopAtFirstMeeting ends the run once any meeting has fired: the
	// rendezvous-shaped StopWhen, as a field so the hot loop tests a
	// flag and a length instead of calling a closure per event.
	StopAtFirstMeeting bool
	// MaxSteps bounds the number of adversary events (safety net).
	MaxSteps int
	// Context, if non-nil, aborts the run between adversary events when
	// canceled; the Summary then reports Canceled.
	Context context.Context
	// Observer, if non-nil, receives execution events (see Observer).
	Observer Observer
	// ForceBlocking disables the direct-dispatch fast path: every agent,
	// Stepper or not, runs its blocking program on the goroutine core.
	// The differential test suite and the scheduler benchmarks use it to
	// compare the two execution cores; production callers leave it off.
	ForceBlocking bool
}

// Runner executes a simulation.
type Runner struct {
	g      *graph.Graph
	agents []*agentState
	adv    Adversary

	steps    int
	meetings []Meeting

	// Maintained aggregates: how many agents are still dormant and how
	// many hold an uncommitted move. They turn the per-event liveness
	// check (and the adversaries' wake scans, via View.AnyDormant) into
	// two integer reads instead of per-agent loops.
	dormantCount int
	pendingCount int

	stopWhen    func(r *Runner) bool
	stopAtMeet  bool
	maxSteps    int
	initialWake []int
	ctx         context.Context
	obs         Observer
	canceled    bool

	// done exists only when some agent runs on the goroutine core; the
	// stepper fast path never blocks, so it needs no shutdown channel.
	done   chan struct{}
	wg     sync.WaitGroup
	closed bool

	// Hot-path scratch, reused across events so the per-half-step cost
	// is allocation-free — and, via scratch, across runs, so steady-state
	// sweeps allocate almost nothing per run (see runScratch).
	scratch     *runScratch
	viewBuf     View
	contacts    []bool      // pair contact bits, i*k+j with i<j, kept current
	curContacts []bool      // pair contact bits assembled by a full detect
	grouped     []bool      // per-agent: already claimed by a node group
	edgeGroup   []int32     // per graph.EdgeIndex: 1+group slot of the crossing group
	edgeTouched []int32     // edge indices written in edgeGroup this check
	groups      []meetGroup // group slot pool
	nGroups     int
}

// runScratch is the pooled per-run buffer set. Runners acquire one in
// NewRunner and release it in Close, so a worker that executes runs
// back-to-back (the sweep steady state) reuses the same memory instead
// of re-allocating per-agent state, contact bitsets and view buffers
// for every cell.
type runScratch struct {
	states      []agentState
	ptrs        []*agentState
	contacts    []bool
	curContacts []bool
	grouped     []bool
	edgeGroup   []int32
	edgeTouched []int32
	groups      []meetGroup
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// boolBuf returns b resized to n cleared slots, reusing capacity.
func boolBuf(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// ctxPollStride is how many adversary events pass between context
// checks. Cancellation is documented to land "between events"; polling
// every event made ctx.Err a measurable share of the half-step cost, so
// the runner amortizes the check without changing the contract.
const ctxPollStride = 64

// meetGroup is one co-located agent group found by detectMeetings.
type meetGroup struct {
	members []int
	inEdge  bool
	node    int
	edge    [2]int
}

// Adversary chooses the schedule. Next returns ok=false to end the run
// (e.g. nothing left to do).
type Adversary interface {
	Next(v *View) (Event, bool)
}

// NewRunner validates the configuration and prepares a runner. Call Run
// to execute and Close to release agent goroutines.
func NewRunner(cfg Config, adv Adversary) (*Runner, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("sched: nil graph: %w", rverr.ErrInvalidScenario)
	}
	if len(cfg.Agents) == 0 || len(cfg.Agents) != len(cfg.Starts) {
		return nil, fmt.Errorf("sched: %d agents vs %d starts: %w",
			len(cfg.Agents), len(cfg.Starts), rverr.ErrInvalidScenario)
	}
	seen := make(map[int]bool)
	for _, s := range cfg.Starts {
		if s < 0 || s >= cfg.Graph.N() {
			return nil, fmt.Errorf("sched: start node %d out of range: %w", s, rverr.ErrInvalidScenario)
		}
		if seen[s] {
			return nil, fmt.Errorf("sched: duplicate start node %d: %w", s, rverr.ErrInvalidScenario)
		}
		seen[s] = true
	}
	if cfg.MaxSteps <= 0 {
		return nil, fmt.Errorf("sched: MaxSteps must be positive: %w", rverr.ErrInvalidScenario)
	}
	for _, i := range cfg.InitiallyAwake {
		if i < 0 || i >= len(cfg.Agents) {
			return nil, fmt.Errorf("sched: InitiallyAwake index %d out of range: %w", i, rverr.ErrInvalidScenario)
		}
	}
	// Every validation precedes the scratch acquisition below: an error
	// return past scratchPool.Get would leak the scratch (nobody would
	// ever Close this runner), so no error path may exist after it.
	r := &Runner{
		g:          cfg.Graph,
		adv:        adv,
		stopWhen:   cfg.StopWhen,
		stopAtMeet: cfg.StopAtFirstMeeting,
		maxSteps:   cfg.MaxSteps,
		ctx:        cfg.Context,
		obs:        cfg.Observer,
	}
	k := len(cfg.Agents)
	s := scratchPool.Get().(*runScratch)
	r.scratch = s
	if cap(s.states) < k {
		s.states = make([]agentState, k)
		s.ptrs = make([]*agentState, k)
	} else {
		s.states = s.states[:k]
		s.ptrs = s.ptrs[:k]
		clear(s.states)
	}
	blocking := false
	for i, a := range cfg.Agents {
		st := &s.states[i]
		st.agent = a
		st.id = i
		st.status = StatusDormant
		st.pos = Position{Kind: AtNode, Node: cfg.Starts[i]}
		if !cfg.ForceBlocking {
			st.stepper, _ = a.(Stepper)
		}
		if st.stepper == nil {
			blocking = true
		}
		s.ptrs[i] = st
	}
	r.agents = s.ptrs
	if blocking {
		// Shutdown and hand-off channels exist only on the goroutine
		// core; a pure stepper team never blocks.
		r.done = make(chan struct{})
	}
	for _, st := range r.agents {
		// Procs are heap-allocated per run (not pooled): agent programs
		// hold them across goroutine suspension points, so a pooled Proc
		// could alias a later run's.
		st.proc = &Proc{r: r, id: st.id, done: r.done}
		if st.stepper == nil {
			st.proc.act = make(chan Action)
			st.proc.obs = make(chan Observation)
		}
	}
	r.initialWake = append(r.initialWake, cfg.InitiallyAwake...)
	r.dormantCount = k
	s.contacts = boolBuf(s.contacts, k*k)
	s.curContacts = boolBuf(s.curContacts, k*k)
	s.grouped = boolBuf(s.grouped, k)
	r.contacts, r.curContacts, r.grouped = s.contacts, s.curContacts, s.grouped
	r.edgeGroup = s.edgeGroup
	r.edgeTouched = s.edgeTouched[:0]
	r.groups = s.groups
	r.viewBuf = View{g: r.g, dormant: &r.dormantCount, agents: r.agents}
	return r, nil
}

// Run executes the simulation until the adversary rests, StopWhen fires,
// MaxSteps is reached, or no agent can act. It returns the execution
// summary. Run may be called once.
//
//rvlint:hotpath
func (r *Runner) Run() Summary {
	for _, i := range r.initialWake {
		r.wake(i)
	}
	// Waking changes no positions, so one full detection pass after the
	// initial wakes covers any configuration the validator admits.
	r.detectMeetings()
	for r.steps < r.maxSteps {
		// Cancellation audit: this stride poll is sound because steps
		// advances on EVERY applied event — apply is followed
		// unconditionally by r.steps++, for wakes as much as advances —
		// and every path that does not advance steps (stop conditions,
		// a resting adversary, no actionable agent) exits the loop. An
		// adversary therefore cannot defer the poll by more than
		// ctxPollStride events, no matter which event mix it drives.
		if r.ctx != nil && r.steps%ctxPollStride == 0 && r.ctx.Err() != nil {
			r.canceled = true
			break
		}
		if r.stopAtMeet && len(r.meetings) > 0 {
			break
		}
		if r.stopWhen != nil && r.stopWhen(r) {
			break
		}
		if !r.anyActionable() {
			break
		}
		v := r.view()
		ev, ok := r.adv.Next(v)
		if !ok {
			break
		}
		entered := r.apply(ev)
		if r.obs != nil {
			r.obs.OnEvent(r.steps, ev)
		}
		r.steps++
		if entered {
			// Half-step 1 (leaving a node) can create a crossing contact;
			// arrivals already ran their detection inside apply, before
			// the arriving agent's next decision, and wakes move nobody.
			r.detectAfterMove(ev.Agent)
		}
	}
	return r.summary()
}

// Close unblocks and joins all agent goroutines, then releases the
// runner's pooled buffers. Safe to call many times. A closed runner's
// Summary values remain valid (they are copies), but the live accessors
// (Traversals, TotalCost, Meetings) must not be called after Close.
func (r *Runner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.done != nil {
		close(r.done)
	}
	r.wg.Wait()
	s := r.scratch
	if s == nil {
		return
	}
	r.scratch = nil
	// The Put is deferred so the scratch returns to the pool even if a
	// release step below panics: a leaked scratch is a silent allocation
	// regression that no test would catch.
	defer scratchPool.Put(s)
	// Store the (possibly grown) buffers back and drop every reference to
	// caller-owned values before pooling. The pointer-bearing buffers are
	// cleared to FULL capacity, not current length: a previous, larger
	// tenant's agents/steppers/procs would otherwise stay reachable past
	// the live prefix and leak into every later run sharing the scratch.
	s.contacts, s.curContacts, s.grouped = r.contacts, r.curContacts, r.grouped
	s.edgeGroup, s.edgeTouched = r.edgeGroup, r.edgeTouched
	s.groups = r.groups
	clear(s.states[:cap(s.states)])
	clear(s.ptrs[:cap(s.ptrs)])
	r.agents = nil
	r.viewBuf = View{}
	r.contacts, r.curContacts, r.grouped = nil, nil, nil
	r.edgeGroup, r.edgeTouched, r.groups = nil, nil, nil
}

// anyActionable reports whether some agent is dormant or has a pending move.
func (r *Runner) anyActionable() bool {
	return r.dormantCount > 0 || r.pendingCount > 0
}

// wake activates a dormant agent and records its first decision: inline
// for steppers, via a fresh goroutine for blocking programs.
func (r *Runner) wake(i int) {
	st := r.agents[i]
	if st.status != StatusDormant {
		return
	}
	st.status = StatusActive
	r.dormantCount--
	st.proc.cur = Observation{Degree: r.g.Degree(st.pos.Node), Entry: -1}
	if st.stepper != nil {
		r.commit(st, st.stepper.Step(st.proc, st.proc.cur))
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer func() {
			if rec := recover(); rec != nil && rec != ErrStopped { //nolint:errorlint // sentinel identity
				panic(rec)
			}
		}()
		st.agent.Run(st.proc)
		select {
		case st.proc.act <- Action{Halt: true}:
		case <-r.done:
		}
	}()
	r.receiveDecision(st)
}

// receiveDecision blocks until the agent goroutine commits its next
// action (goroutine core only).
func (r *Runner) receiveDecision(st *agentState) {
	r.commit(st, <-st.proc.act)
}

// commit validates and records one agent decision, whichever core
// produced it.
//
//rvlint:hotpath
func (r *Runner) commit(st *agentState, a Action) {
	// An agent deciding has no uncommitted move: commit runs right after
	// a wake or an arrival, both of which leave hasPending false.
	if a.Halt {
		st.status = StatusHalted
		return
	}
	deg := r.g.Degree(st.pos.Node)
	if a.Port < 0 || a.Port >= deg {
		invalidPort(a.Port, deg)
	}
	st.pendingPort = a.Port
	st.hasPending = true
	r.pendingCount++
}

// apply executes an adversary event and reports whether it was a
// half-step 1 (the agent entered an edge), which is the one transition
// whose meeting detection the Run loop still owes. An invalid event is a
// programming error in the strategy and panics loudly.
//
//rvlint:hotpath
func (r *Runner) apply(ev Event) (enteredEdge bool) {
	if ev.Agent < 0 || ev.Agent >= len(r.agents) {
		r.invalidEvent(ev)
	}
	st := r.agents[ev.Agent]
	switch ev.Kind {
	case EventWake:
		if st.status != StatusDormant {
			r.invalidEvent(ev)
		}
		r.wake(ev.Agent)
		return false
	case EventAdvance:
		if st.status != StatusActive || !st.hasPending {
			r.invalidEvent(ev)
		}
		if st.pos.Kind == AtNode {
			// Half-step 1: leave the node. The arrival entry port is
			// resolved here, by the same Succ lookup, so the arrival
			// half-step need not repeat it.
			from := st.pos.Node
			to, entry := r.g.Succ(from, st.pendingPort)
			st.pos = Position{Kind: InEdge, From: from, To: to}
			st.pendingEntry = entry
			return true
		}
		// Half-step 2: arrive.
		from, to := st.pos.From, st.pos.To
		entry := st.pendingEntry
		st.pos = Position{Kind: AtNode, Node: to}
		st.traversals++
		st.hasPending = false
		r.pendingCount--
		if r.obs != nil {
			r.obs.OnTraversal(ev.Agent, from, to)
		}
		// Meetings caused by the arrival must be delivered before the
		// agent decides its next action. (The adversary view is synced
		// once per event by the Run loop; nothing here reads it.)
		r.detectAfterMove(ev.Agent)
		obs := Observation{Degree: r.g.Degree(to), Entry: entry}
		st.proc.cur = obs
		if st.stepper != nil {
			r.commit(st, st.stepper.Step(st.proc, obs))
			return false
		}
		st.proc.obs <- obs
		r.receiveDecision(st)
		return false
	default:
		r.invalidEvent(ev)
		return false
	}
}

// invalidEvent fails loudly on a malformed adversary event. Cold by
// construction: it exists so apply's hot body carries no fmt call.
func (r *Runner) invalidEvent(ev Event) {
	panic(fmt.Sprintf("sched: adversary issued invalid event %+v", ev))
}

// invalidPort fails loudly on an out-of-range port decision (commit's
// cold path, kept out of its hot body).
func invalidPort(port, deg int) {
	panic(fmt.Sprintf("sched: agent chose invalid port %d at degree-%d node", port, deg))
}

// inContact reports the position-level contact condition between two
// agents: co-located at a node, or inside the same edge in opposite
// directions. This is exactly the pair condition detectMeetings encodes
// in its contact bitsets.
func inContact(a, b *agentState) bool {
	if a.pos.Kind == AtNode {
		return b.pos.Kind == AtNode && a.pos.Node == b.pos.Node
	}
	return b.pos.Kind == InEdge && a.pos.From == b.pos.To && a.pos.To == b.pos.From
}

// detectAfterMove is the incremental fast path of meeting detection:
// after agent i moved a half-step, only pairs involving i can change.
// If i gained a new contact the full detector runs (it owns group
// assembly and encounter delivery); otherwise the pair bits involving i
// are refreshed in place and nothing fires. This removes the full
// all-pairs rescan from the per-event cost without changing which
// meetings fire or when.
//
//rvlint:hotpath
func (r *Runner) detectAfterMove(i int) {
	k := len(r.agents)
	si := r.agents[i]
	if k == 2 {
		// Two-agent fast path (the dominant shape): one opponent, and
		// the (0,1) pair bit is index 1.
		if inContact(si, r.agents[1-i]) {
			if !r.contacts[1] {
				r.detectMeetings()
			}
		} else {
			r.contacts[1] = false
		}
		return
	}
	for j := 0; j < k; j++ {
		if j == i {
			continue
		}
		b := pairBit(i, j, k)
		if inContact(si, r.agents[j]) {
			if !r.contacts[b] {
				// New contact: the full detector recomputes every group
				// against the current bits and fires exactly the groups
				// holding a fresh pair — all of which involve i.
				r.detectMeetings()
				return
			}
		} else {
			r.contacts[b] = false
		}
	}
}

// pairBit returns the index of the (i, j) contact bit in the k*k pair
// bitset (order-normalized).
func pairBit(i, j, k int) int {
	if i > j {
		i, j = j, i
	}
	return i*k + j
}

// newGroup claims a group slot from the reusable pool.
func (r *Runner) newGroup() int {
	if r.nGroups == len(r.groups) {
		r.groups = append(r.groups, meetGroup{})
	}
	g := r.nGroups
	r.nGroups++
	members := r.groups[g].members[:0]
	r.groups[g] = meetGroup{members: members}
	return g
}

// detectMeetings fires encounters for every co-located group that gained
// a new contact pair since the last check, and wakes dormant
// participants. It runs after every adversary event, so it works on
// reused dense buffers — pair bitsets and an edge-indexed group table —
// instead of allocating maps.
func (r *Runner) detectMeetings() {
	k := len(r.agents)
	cur := r.curContacts
	for i := range cur {
		cur[i] = false
	}
	r.nGroups = 0

	// Node groups, in ascending lowest-member order.
	grouped := r.grouped
	for i := range grouped {
		grouped[i] = false
	}
	for i := 0; i < k; i++ {
		si := r.agents[i]
		if si.pos.Kind != AtNode || grouped[i] {
			continue
		}
		gi := -1
		for j := i + 1; j < k; j++ {
			sj := r.agents[j]
			if sj.pos.Kind != AtNode || sj.pos.Node != si.pos.Node {
				continue
			}
			if gi < 0 {
				gi = r.newGroup()
				r.groups[gi].node = si.pos.Node
				r.groups[gi].members = append(r.groups[gi].members, i)
			}
			r.groups[gi].members = append(r.groups[gi].members, j)
			grouped[j] = true
		}
		if gi >= 0 {
			ms := r.groups[gi].members
			for x := 0; x < len(ms); x++ {
				for y := x + 1; y < len(ms); y++ {
					cur[pairBit(ms[x], ms[y], k)] = true
				}
			}
		}
	}

	// Crossing groups: same edge, opposite directions, keyed by the
	// dense graph.EdgeIndex of the occupied edge.
	for i := 0; i < k; i++ {
		si := r.agents[i]
		if si.pos.Kind != InEdge {
			continue
		}
		for j := i + 1; j < k; j++ {
			sj := r.agents[j]
			if sj.pos.Kind != InEdge {
				continue
			}
			if si.pos.From == sj.pos.To && si.pos.To == sj.pos.From {
				if len(r.edgeGroup) < r.g.M() {
					r.edgeGroup = make([]int32, r.g.M())
				}
				e := r.g.EdgeIndex(si.pos.From, si.pendingPort)
				gi := int(r.edgeGroup[e]) - 1
				if gi < 0 {
					gi = r.newGroup()
					r.groups[gi].inEdge = true
					r.groups[gi].edge = canonEdge(si.pos.From, si.pos.To)
					r.edgeGroup[e] = int32(gi) + 1
					r.edgeTouched = append(r.edgeTouched, int32(e))
				}
				r.groups[gi].members = appendUnique(r.groups[gi].members, i)
				r.groups[gi].members = appendUnique(r.groups[gi].members, j)
				cur[pairBit(i, j, k)] = true
			}
		}
	}
	for _, e := range r.edgeTouched {
		r.edgeGroup[e] = 0
	}
	r.edgeTouched = r.edgeTouched[:0]

	// Which groups contain a newly-in-contact pair? Fire those, in group
	// discovery order (node groups by lowest member, then crossings).
	for gi := 0; gi < r.nGroups; gi++ {
		gr := &r.groups[gi]
		isNew := false
		for x := 0; x < len(gr.members) && !isNew; x++ {
			for y := x + 1; y < len(gr.members); y++ {
				b := pairBit(gr.members[x], gr.members[y], k)
				if cur[b] && !r.contacts[b] {
					isNew = true
					break
				}
			}
		}
		if !isNew {
			continue
		}
		r.fireMeeting(gr.members, gr.inEdge, gr.node, gr.edge)
	}
	r.contacts, r.curContacts = cur, r.contacts
}

// fireMeeting publishes payloads, delivers OnMeet to every participant
// and wakes dormant ones.
func (r *Runner) fireMeeting(members []int, inEdge bool, node int, edge [2]int) {
	payloads := make([]Peer, len(members))
	for idx, id := range members {
		payloads[idx] = Peer{ID: id, Payload: r.agents[id].agent.Publish()}
	}
	for idx, id := range members {
		peers := make([]Peer, 0, len(members)-1)
		for j, p := range payloads {
			if j != idx {
				peers = append(peers, p)
			}
		}
		r.agents[id].agent.OnMeet(Encounter{Step: r.steps, InEdge: inEdge, Peers: peers})
	}
	committed := 0
	for _, st := range r.agents {
		if st.pos.Kind == InEdge {
			committed++
		}
	}
	m := Meeting{
		Step: r.steps, Participants: append([]int(nil), members...),
		InEdge: inEdge, Node: node, Edge: edge,
		Cost: r.TotalCost(), Committed: r.TotalCost() + committed,
	}
	r.meetings = append(r.meetings, m)
	if r.obs != nil {
		r.obs.OnMeeting(m)
	}
	// A dormant agent is woken by an agent visiting its start node.
	for _, id := range members {
		if r.agents[id].status == StatusDormant {
			r.wake(id)
		}
	}
}

func canonEdge(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// Meetings returns the meetings recorded so far.
func (r *Runner) Meetings() []Meeting { return r.meetings }

// Steps returns the number of adversary events executed.
func (r *Runner) Steps() int { return r.steps }

// Traversals returns the completed edge traversals of agent i.
func (r *Runner) Traversals(i int) int { return r.agents[i].traversals }

// TotalCost returns the summed completed traversals of all agents — the
// paper's cost measure.
func (r *Runner) TotalCost() int {
	t := 0
	for _, st := range r.agents {
		t += st.traversals
	}
	return t
}

// CostAccount is the per-run cost accounting in the paper's measure
// (completed edge traversals) beyond what Summary's Traversals/TotalCost
// already carry, surfaced so that bound oracles can check every run
// against the cost model without re-deriving anything from the event
// log.
type CostAccount struct {
	// MaxPerAgent is the largest single agent's traversal count — the
	// quantity Theorem 3.1's Π(n, ℓ) bounds for either agent.
	MaxPerAgent int
	// Committed additionally counts traversals in progress when the run
	// ended, which the model obliges agents to finish.
	Committed int
}

// Summary is the result of a run.
type Summary struct {
	Steps        int
	Meetings     []Meeting
	Traversals   []int
	TotalCost    int
	FirstMeeting *Meeting // nil if none
	// Account is the full per-run cost accounting (per-agent, committed,
	// wake steps) consumed by campaign bound oracles.
	Account CostAccount
	// Canceled reports that the run was aborted by its Config.Context.
	Canceled bool
	// Exhausted reports that the run consumed its full MaxSteps budget.
	Exhausted bool
}

func (r *Runner) summary() Summary {
	s := Summary{
		Steps:     r.steps,
		Meetings:  append([]Meeting(nil), r.meetings...),
		TotalCost: r.TotalCost(),
		Canceled:  r.canceled,
		Exhausted: !r.canceled && r.steps >= r.maxSteps,
	}
	inFlight := 0
	for _, st := range r.agents {
		s.Traversals = append(s.Traversals, st.traversals)
		if st.traversals > s.Account.MaxPerAgent {
			s.Account.MaxPerAgent = st.traversals
		}
		if st.pos.Kind == InEdge {
			inFlight++
		}
	}
	s.Account.Committed = s.TotalCost + inFlight
	if len(r.meetings) > 0 {
		m := r.meetings[0]
		s.FirstMeeting = &m
	}
	return s
}
