package sched

import "meetpoly/internal/graph"

// AgentView is the adversary's omniscient snapshot of one agent. The
// adversary, unlike agents, sees everything — that is exactly what makes
// it an adversary.
type AgentView struct {
	Status      Status
	Pos         Position
	HasPending  bool
	PendingPort int
	Traversals  int
}

// View is the adversary's snapshot of the execution.
//
// The runner reuses one View (and its Agents slice) for the whole run,
// refreshed before every Adversary.Next call: strategies may read it
// freely during Next but must not retain it, or slices derived from it,
// across calls. Copy what you need to keep.
type View struct {
	Steps  int
	Agents []AgentView

	g *graph.Graph
}

func (r *Runner) view() *View {
	v := &r.viewBuf
	v.Steps = r.steps
	v.Agents = v.Agents[:0]
	for _, st := range r.agents {
		v.Agents = append(v.Agents, AgentView{
			Status:      st.status,
			Pos:         st.pos,
			HasPending:  st.hasPending,
			PendingPort: st.pendingPort,
			Traversals:  st.traversals,
		})
	}
	return v
}

// Graph exposes the topology to adversary strategies.
func (v *View) Graph() *graph.Graph { return v.g }

// CanWake reports whether agent i is dormant.
func (v *View) CanWake(i int) bool {
	return i >= 0 && i < len(v.Agents) && v.Agents[i].Status == StatusDormant
}

// CanAdvance reports whether agent i has a committed move to advance.
func (v *View) CanAdvance(i int) bool {
	return i >= 0 && i < len(v.Agents) &&
		v.Agents[i].Status == StatusActive && v.Agents[i].HasPending
}

// AdvanceCreatesContact predicts whether advancing agent i one half-step
// would put it in contact with some other agent: entering an edge that an
// opposite-direction agent currently occupies, or arriving at a node that
// any agent currently occupies. This is the one-step lookahead avoider
// strategies use.
func (v *View) AdvanceCreatesContact(i int) bool {
	if !v.CanAdvance(i) {
		return false
	}
	a := v.Agents[i]
	if a.Pos.Kind == AtNode {
		from := a.Pos.Node
		to, _ := v.g.Succ(from, a.PendingPort)
		for j, b := range v.Agents {
			if j == i {
				continue
			}
			if b.Pos.Kind == InEdge && b.Pos.From == to && b.Pos.To == from {
				return true
			}
		}
		return false
	}
	dest := a.Pos.To
	for j, b := range v.Agents {
		if j == i {
			continue
		}
		if b.Pos.Kind == AtNode && b.Pos.Node == dest {
			return true
		}
	}
	return false
}
