package sched

import (
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

// portScript is a stepper following a fixed port list, ignoring entries.
type portScript struct {
	ports []int
	i     int
}

func (s *portScript) Next(deg, entry int) (int, bool) {
	if s.i >= len(s.ports) {
		return 0, false
	}
	p := s.ports[s.i]
	s.i++
	return p % deg, true
}

func script(ports ...int) trajectory.Stepper { return &portScript{ports: ports} }

func mustRunner(t *testing.T, cfg Config, adv Adversary) *Runner {
	t.Helper()
	r, err := NewRunner(cfg, adv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestNodeMeetingOnPath(t *testing.T) {
	// A walks from node 0 towards a parked (halted immediately) B at 2.
	g := graph.Path(3)
	// On a path, interior node i reaches i+1 via port 1; node 0 via port 0.
	a := &Walker{Stepper: script(0, 1), StopAtMeeting: true}
	b := &Walker{Stepper: script()} // halts at once
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 2}, Agents: []Agent{a, b},
		InitiallyAwake: []int{0, 1}, MaxSteps: 100,
		StopWhen: func(r *Runner) bool { return len(r.Meetings()) > 0 },
	}, &RoundRobin{})
	sum := r.Run()
	if sum.FirstMeeting == nil {
		t.Fatal("no meeting on a 3-path with a parked target")
	}
	if sum.FirstMeeting.InEdge {
		t.Error("meeting should be at a node")
	}
	if sum.FirstMeeting.Node != 2 && sum.FirstMeeting.Node != 1 {
		t.Errorf("unexpected meeting node %d", sum.FirstMeeting.Node)
	}
	if !a.Met() || !b.Met() {
		t.Error("both agents should have been notified")
	}
	if sum.TotalCost < 1 || sum.TotalCost > 2 {
		t.Errorf("cost %d out of expected range", sum.TotalCost)
	}
}

func TestCrossingMeetingInsideEdge(t *testing.T) {
	// Two agents on a 2-path both enter the single edge from opposite
	// ends: the crossing is topologically forced.
	g := graph.Path(2)
	a := &Walker{Stepper: script(0), StopAtMeeting: true}
	b := &Walker{Stepper: script(0), StopAtMeeting: true}
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 1}, Agents: []Agent{a, b},
		InitiallyAwake: []int{0, 1}, MaxSteps: 100,
	}, &RoundRobin{})
	sum := r.Run()
	if sum.FirstMeeting == nil {
		t.Fatal("no meeting")
	}
	if !sum.FirstMeeting.InEdge {
		t.Error("meeting should be a crossing inside the edge")
	}
	if got := sum.FirstMeeting.Edge; got != [2]int{0, 1} {
		t.Errorf("meeting edge %v", got)
	}
}

func TestAvoiderCannotDodgeForcedCrossing(t *testing.T) {
	g := graph.Path(2)
	a := &Walker{Stepper: script(0), StopAtMeeting: true}
	b := &Walker{Stepper: script(0), StopAtMeeting: true}
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 1}, Agents: []Agent{a, b},
		InitiallyAwake: []int{0, 1}, MaxSteps: 100,
	}, &Avoider{})
	sum := r.Run()
	if sum.FirstMeeting == nil {
		t.Fatal("avoider escaped a forced meeting on the 2-path")
	}
}

func TestAvoiderDodgesCoRotation(t *testing.T) {
	// Two agents chasing each other clockwise around a ring never have to
	// meet; the avoider must keep them apart for the whole budget.
	g := graph.Ring(4)
	mk := func() trajectory.Stepper {
		return trajectory.Repeat(func() trajectory.Stepper { return script(0) }, bigInt(1000))
	}
	a := &Walker{Stepper: mk()}
	b := &Walker{Stepper: mk()}
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 2}, Agents: []Agent{a, b},
		InitiallyAwake: []int{0, 1}, MaxSteps: 500,
	}, &Avoider{})
	sum := r.Run()
	if sum.FirstMeeting != nil {
		t.Fatalf("avoider met at step %d while co-rotation escape exists", sum.FirstMeeting.Step)
	}
	if sum.TotalCost == 0 {
		t.Error("no progress made")
	}
}

func TestWakeOnVisit(t *testing.T) {
	// B is dormant at node 2; A walks there. B must wake and then move.
	g := graph.Path(4)
	a := &Walker{Stepper: script(0, 0)}
	b := &Walker{Stepper: script(0, 0, 0)} // wakes, then walks
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 2}, Agents: []Agent{a, b},
		InitiallyAwake: []int{0}, // B stays dormant
		MaxSteps:       200,
	}, &LateWake{Primary: 0, Hold: 1 << 30})
	sum := r.Run()
	if sum.FirstMeeting == nil {
		t.Fatal("A never reached the dormant B")
	}
	if sum.Traversals[1] == 0 {
		t.Error("B woke but never moved")
	}
}

func TestHaltedAgentRemainsMeetable(t *testing.T) {
	g := graph.Path(3)
	a := &Walker{Stepper: script()} // halts immediately at node 0
	b := &Walker{Stepper: script(0, 0)}
	// b's port 0 at node 2 leads towards node 1 then 0.
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 2}, Agents: []Agent{a, b},
		InitiallyAwake: []int{0, 1}, MaxSteps: 100,
	}, &RoundRobin{})
	sum := r.Run()
	if sum.FirstMeeting == nil {
		t.Fatal("halted agent was never met")
	}
	if !a.Met() {
		t.Error("halted agent did not receive the meeting")
	}
}

func TestStopWhenAndMaxSteps(t *testing.T) {
	g := graph.Ring(5)
	long := func() trajectory.Stepper {
		return trajectory.Repeat(func() trajectory.Stepper { return script(0) }, bigInt(100000))
	}
	a := &Walker{Stepper: long()}
	b := &Walker{Stepper: long()}
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 2}, Agents: []Agent{a, b},
		InitiallyAwake: []int{0, 1}, MaxSteps: 57,
	}, &RoundRobin{})
	sum := r.Run()
	if sum.Steps > 57 {
		t.Errorf("MaxSteps exceeded: %d", sum.Steps)
	}
	// StopWhen variant.
	a2 := &Walker{Stepper: long()}
	b2 := &Walker{Stepper: long()}
	stopAt := 0
	r2 := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 2}, Agents: []Agent{a2, b2},
		InitiallyAwake: []int{0, 1}, MaxSteps: 10000,
		StopWhen: func(r *Runner) bool {
			stopAt++
			return r.TotalCost() >= 10
		},
	}, &RoundRobin{})
	sum2 := r2.Run()
	if sum2.TotalCost < 10 || sum2.TotalCost > 12 {
		t.Errorf("StopWhen cost = %d", sum2.TotalCost)
	}
	if stopAt == 0 {
		t.Error("StopWhen never evaluated")
	}
}

func TestBiasedSpeedSkew(t *testing.T) {
	g := graph.Ring(8)
	long := func() trajectory.Stepper {
		return trajectory.Repeat(func() trajectory.Stepper { return script(0) }, bigInt(100000))
	}
	a := &Walker{Stepper: long()}
	b := &Walker{Stepper: long()}
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 4}, Agents: []Agent{a, b},
		InitiallyAwake: []int{0, 1}, MaxSteps: 600,
		StopWhen: func(r *Runner) bool { return len(r.Meetings()) > 0 },
	}, &Biased{Weights: []int{1, 9}})
	sum := r.Run()
	if sum.Traversals[1] < 4*sum.Traversals[0] {
		t.Errorf("biased schedule not skewed: %v", sum.Traversals)
	}
}

func TestRandomAdversaryReproducible(t *testing.T) {
	run := func() Summary {
		g := graph.Ring(6)
		long := func() trajectory.Stepper {
			return trajectory.Repeat(func() trajectory.Stepper { return script(0) }, bigInt(1000))
		}
		a := &Walker{Stepper: long()}
		b := &Walker{Stepper: long()}
		r := mustRunner(t, Config{
			Graph: g, Starts: []int{0, 3}, Agents: []Agent{a, b},
			InitiallyAwake: []int{0, 1}, MaxSteps: 300,
		}, NewRandom(7))
		return r.Run()
	}
	s1, s2 := run(), run()
	if s1.Steps != s2.Steps || s1.TotalCost != s2.TotalCost {
		t.Error("random adversary with fixed seed not reproducible")
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.Path(3)
	mk := func() []Agent { return []Agent{&Walker{Stepper: script()}, &Walker{Stepper: script()}} }
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil graph", Config{Starts: []int{0, 1}, Agents: mk(), MaxSteps: 1}},
		{"no agents", Config{Graph: g, MaxSteps: 1}},
		{"mismatch", Config{Graph: g, Starts: []int{0}, Agents: mk(), MaxSteps: 1}},
		{"dup starts", Config{Graph: g, Starts: []int{1, 1}, Agents: mk(), MaxSteps: 1}},
		{"oob start", Config{Graph: g, Starts: []int{0, 9}, Agents: mk(), MaxSteps: 1}},
		{"no budget", Config{Graph: g, Starts: []int{0, 1}, Agents: mk()}},
		{"bad wake", Config{Graph: g, Starts: []int{0, 1}, Agents: mk(), MaxSteps: 1, InitiallyAwake: []int{7}}},
	}
	for _, tc := range cases {
		if _, err := NewRunner(tc.cfg, &RoundRobin{}); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestUXSWalkerMatchesPureRun(t *testing.T) {
	// The Walker driving a trajectory through the runner must traverse
	// the same nodes as the pure executor.
	g := graph.Petersen()
	fam := []*graph.Graph{g}
	cat := uxs.NewVerified(fam, 1)
	env := trajectory.NewEnv(cat)
	pure, _ := trajectory.Run(g, 0, env.X(3), 10000)

	w := &Walker{Stepper: env.X(3)}
	sentinel := &Walker{Stepper: script()} // parked far away, never met
	r := mustRunner(t, Config{
		Graph: g, Starts: []int{0, 5}, Agents: []Agent{w, sentinel},
		InitiallyAwake: []int{0}, MaxSteps: 100000,
	}, &LateWake{Primary: 0, Hold: 1 << 30})
	sum := r.Run()
	_ = sum
	if got, want := r.Traversals(0), pure.Moves(); got < want {
		// The walker may have been interrupted by meeting the sentinel
		// (possible on Petersen from node 5); only compare when unmet.
		if !w.Met() {
			t.Errorf("walker made %d traversals, pure run %d", got, want)
		}
	}
}

func TestStatusString(t *testing.T) {
	if StatusDormant.String() != "dormant" || StatusActive.String() != "active" ||
		StatusHalted.String() != "halted" || Status(9).String() == "" {
		t.Error("Status.String broken")
	}
}
