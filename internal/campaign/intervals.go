package campaign

import "sort"

// Interval is a half-open index range [Lo, Hi).
type Interval struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// IndexSet is a set of non-negative cell indices, stored as sorted
// disjoint half-open intervals. Sweep consumers track completed cells
// with it: completion order is scattered, but the indices of a finished
// campaign coalesce into a handful of intervals, so membership stays
// cheap at million-cell scale — the shape both the Aggregator's
// duplicate guard and the serve checkpoint's completed-range log need.
// The zero value is an empty set.
type IndexSet struct {
	iv []Interval
}

// Add inserts index i and reports whether it was newly added (false
// means i was already present — the duplicate-feed signal).
func (s *IndexSet) Add(i int) bool {
	if s.Contains(i) {
		return false
	}
	s.AddRange(i, i+1)
	return true
}

// AddRange unions [lo, hi) into the set. Empty or inverted ranges are
// no-ops.
func (s *IndexSet) AddRange(lo, hi int) {
	if hi <= lo {
		return
	}
	// Find the window of existing intervals that touch or overlap
	// [lo, hi) and merge them into one.
	first := sort.Search(len(s.iv), func(k int) bool { return s.iv[k].Hi >= lo })
	last := first
	for last < len(s.iv) && s.iv[last].Lo <= hi {
		if s.iv[last].Lo < lo {
			lo = s.iv[last].Lo
		}
		if s.iv[last].Hi > hi {
			hi = s.iv[last].Hi
		}
		last++
	}
	merged := append(s.iv[:first:first], Interval{Lo: lo, Hi: hi})
	s.iv = append(merged, s.iv[last:]...)
}

// AddSet unions another set into this one.
func (s *IndexSet) AddSet(o *IndexSet) {
	for _, iv := range o.iv {
		s.AddRange(iv.Lo, iv.Hi)
	}
}

// Contains reports whether index i is in the set.
func (s *IndexSet) Contains(i int) bool {
	k := sort.Search(len(s.iv), func(k int) bool { return s.iv[k].Hi > i })
	return k < len(s.iv) && s.iv[k].Lo <= i
}

// Len returns the number of indices in the set.
func (s *IndexSet) Len() int {
	n := 0
	for _, iv := range s.iv {
		n += iv.Hi - iv.Lo
	}
	return n
}

// Ranges returns the set's intervals in ascending order. The slice is a
// copy; mutating it does not affect the set.
func (s *IndexSet) Ranges() []Interval {
	return append([]Interval(nil), s.iv...)
}

// Gaps returns the complement of the set within [lo, hi): the maximal
// intervals of missing indices, in ascending order. A checkpoint-
// resuming shard executes exactly these.
func (s *IndexSet) Gaps(lo, hi int) []Interval {
	var out []Interval
	for _, iv := range s.iv {
		if iv.Hi <= lo {
			continue
		}
		if iv.Lo >= hi {
			break
		}
		if iv.Lo > lo {
			out = append(out, Interval{Lo: lo, Hi: iv.Lo})
		}
		if iv.Hi > lo {
			lo = iv.Hi
		}
	}
	if lo < hi {
		out = append(out, Interval{Lo: lo, Hi: hi})
	}
	return out
}
