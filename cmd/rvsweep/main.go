// Command rvsweep runs a campaign sweep from a declarative JSON spec:
// it expands the spec's cross product (graph families × sizes × start
// pairs × label pairs × adversaries × scenario kinds) into concrete
// scenarios, executes them over a shared engine, checks every run
// against the paper-bound oracles (termination, Π/baseline/ESST cost
// bounds, lemma inequalities), and prints the aggregate cost table.
//
// Every failing cell is reported with a replay seed string; re-run that
// one cell with:
//
//	rvsweep -spec campaign.json -replay 'seed#index'
//
// Adding -against with a recorded sweep artifact (the NDJSON of
// -stream, or the JSON report of -json) compares the replayed outcome
// with the recorded one: every cell is a pure function of its seed
// string, so any divergence means the replay environment differs from
// the sweep (catalog -maxn/-seed, code revision) — not that the cell is
// flaky.
//
// Exit codes: 0 all oracles passed; 1 an oracle failed, the run was
// interrupted, or an error occurred; 2 usage error — including
// combining the mutually-exclusive mode flags (-count, -expand,
// -replay, -stream) and a malformed -against artifact (empty, truncated mid-record, garbage
// where a record should be, or ambiguous: the replayed cell's seed
// recorded more than once); 3 the replayed outcome diverged from the
// -against record. A trailing newline or blank line after the last
// NDJSON record is not malformed — every JSON decoder emits or
// tolerates those.
//
// The process exits non-zero when any oracle fails, so a sweep doubles
// as a CI gate. -cpuprofile/-memprofile write pprof profiles of the
// sweep for performance work.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"iter"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"meetpoly"
	"meetpoly/internal/buildinfo"
	"meetpoly/internal/serve/client"
	"meetpoly/internal/telemetry/logx"
)

func main() {
	var (
		specPath    = flag.String("spec", "", "path to the sweep spec JSON (required)")
		replay      = flag.String("replay", "", "replay a single cell from its seed string instead of sweeping")
		against     = flag.String("against", "", "with -replay: compare the outcome against a recorded sweep (NDJSON stream or JSON report); exit 3 on divergence")
		stream      = flag.Bool("stream", false, "emit one NDJSON cell result per line as cells complete, instead of the aggregate report")
		expand      = flag.Bool("expand", false, "expand the spec and list cells without running them")
		count       = flag.Bool("count", false, "print only the cell count the spec expands to")
		maxN        = flag.Int("maxn", 6, "size ceiling of the engine's verified catalog family")
		seed        = flag.Int64("seed", 1, "seed of the engine's verified catalog")
		parallelism = flag.Int("parallelism", 0, "worker pool size (0 = GOMAXPROCS)")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON instead of a table")
		server      = flag.String("server", "", "run the sweep remotely on this rvserved base URL via the self-healing streaming client")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile after the sweep to this file")
		tracePath   = flag.String("trace", "", "write a per-cell NDJSON span trace (begin/end events) of the sweep to this file")
		metricsOut  = flag.Bool("metrics", false, "print the final telemetry snapshot (Prometheus text format) to stderr after the run")
		logLevel    = flag.String("log-level", "warn", "minimum log level: debug, info, warn, error")
		version     = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rvsweep"))
		return
	}
	level, err := logx.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvsweep:", err)
		flag.Usage()
		os.Exit(2)
	}
	logger := logx.New(os.Stderr, level)
	if err := exclusiveModes(*count, *expand, *replay, *stream); err != nil {
		fmt.Fprintln(os.Stderr, "rvsweep:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *server != "" && (*count || *expand || *replay != "") {
		// -server runs the sweep remotely; only the sweeping modes
		// (report, -json, -stream) make sense there.
		fmt.Fprintln(os.Stderr, "rvsweep: -server is incompatible with -count/-expand/-replay")
		flag.Usage()
		os.Exit(2)
	}
	if *tracePath != "" && (*count || *expand || *replay != "" || *server != "") {
		// The span trace observes local cell execution; the listing modes
		// run no cells and -server runs them in another process.
		fmt.Fprintln(os.Stderr, "rvsweep: -trace is incompatible with -count/-expand/-replay/-server")
		flag.Usage()
		os.Exit(2)
	}
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "rvsweep: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	spec, err := meetpoly.LoadSweepSpecFile(*specPath)
	if err != nil {
		fatal(err)
	}

	if *count {
		n, err := meetpoly.CountSweep(spec)
		if err != nil {
			fatal(err)
		}
		fmt.Println(n)
		return
	}

	if *expand {
		// Cells stream straight from the expansion iterator: listing a
		// million-cell campaign holds one cell at a time (-json included,
		// via a streaming array encoding).
		if *jsonOut {
			fmt.Println("[")
			first := true
			err = meetpoly.WalkSweep(spec, func(c meetpoly.SweepCell) bool {
				out, jerr := json.MarshalIndent(c, "  ", "  ")
				if jerr != nil {
					err = jerr
					return false
				}
				if !first {
					fmt.Println(",")
				}
				first = false
				fmt.Print("  ", string(out))
				return true
			})
			fmt.Println("\n]")
		} else {
			err = meetpoly.WalkSweep(spec, func(c meetpoly.SweepCell) bool {
				fmt.Printf("%-6s %s\n", c.Seed, c.ID)
				return true
			})
		}
		if err != nil {
			fatal(err)
		}
		// The count is progress chatter, not data: keep stdout (cell
		// list or JSON) machine-parseable. CountSweep projects it from
		// the axes without re-deriving cells.
		if n, cerr := meetpoly.CountSweep(spec); cerr == nil {
			fmt.Fprintf(os.Stderr, "%d cells\n", n)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := []meetpoly.Option{meetpoly.WithMaxN(*maxN), meetpoly.WithSeed(*seed)}
	if *parallelism > 0 {
		opts = append(opts, meetpoly.WithParallelism(*parallelism))
	}
	var reg *meetpoly.Metrics
	if *metricsOut {
		reg = meetpoly.NewMetrics()
		buildinfo.InfoGauge(reg, "rvsweep")
		opts = append(opts, meetpoly.WithTelemetry(reg))
	}
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		traceEnc := json.NewEncoder(traceFile)
		// The engine serializes trace callbacks, so the encoder needs no
		// extra locking; lines interleave per event, never mid-line.
		opts = append(opts, meetpoly.WithCellTrace(func(ev meetpoly.CellTraceEvent) {
			traceEnc.Encode(ev) //nolint:errcheck // best-effort observability
		}))
	}
	eng := meetpoly.NewEngine(opts...)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	exit := func(code int) {
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rvsweep: closing trace:", err)
			}
		}
		if reg != nil {
			reg.WritePrometheus(os.Stderr) //nolint:errcheck // best-effort observability
		}
		os.Exit(code)
	}

	if *replay != "" {
		cr, err := eng.ReplayCell(ctx, spec, *replay)
		if err != nil {
			fatal(err)
		}
		out, err := json.MarshalIndent(cr, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		// A canceled replay verified nothing: the oracles skip canceled
		// runs by design, so a clean verdict here would be a lie.
		if cr.Outcome.Canceled {
			fmt.Fprintln(os.Stderr, "rvsweep: replay interrupted before completing")
			exit(1)
		}
		if *against != "" {
			if diverged := checkAgainst(*against, *cr, exit); diverged {
				exit(3)
			}
		}
		if cr.Failed() {
			exit(1)
		}
		exit(0)
	}
	if *against != "" {
		fmt.Fprintln(os.Stderr, "rvsweep: -against requires -replay")
		exit(2)
	}

	if *server != "" {
		// Remote mode: the self-healing client streams the campaign
		// from an rvserved instance, resuming from the exact gap set
		// across connection resets and load-shedding refusals. The
		// report is byte-identical to the local path below.
		cl := client.New(client.Config{
			BaseURL: *server,
			Metrics: reg,
			Log:     logger,
		})
		var emit func(meetpoly.SweepCellResult) bool
		var streamErr error
		if *stream {
			enc := json.NewEncoder(os.Stdout)
			emit = func(cr meetpoly.SweepCellResult) bool {
				if err := enc.Encode(cr); err != nil {
					streamErr = err
					return false
				}
				return true
			}
		}
		rep, err := cl.Sweep(ctx, spec, emit)
		if streamErr != nil {
			fatal(streamErr)
		}
		if err != nil {
			fatal(err)
		}
		if *stream {
			exit(boolExit(rep.OK()))
		}
		if *jsonOut {
			out, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(out))
		} else {
			fmt.Print(rep.Table())
		}
		exit(boolExit(rep.OK()))
	}

	if *stream {
		code, err := streamSweep(eng.SweepStream(ctx, spec), os.Stdout, os.Stderr)
		if err != nil {
			fatal(err)
		}
		exit(code)
	}

	rep, err := eng.Sweep(ctx, spec)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(rep.Table())
	}
	if rep.Canc > 0 {
		// Report.OK is false for interrupted sweeps (canceled cells
		// verified nothing); name the cause before the gate fires.
		logger.Warn("sweep interrupted",
			logx.F("canceled", int64(rep.Canc)), logx.F("cells", int64(rep.Cells)))
	}
	if !rep.OK() {
		exit(1)
	}
	exit(0)
}

// boolExit maps an all-oracles-passed verdict to the process exit
// code contract (0 pass, 1 fail).
func boolExit(ok bool) int {
	if ok {
		return 0
	}
	return 1
}

// exclusiveModes rejects contradictory mode flags. rvsweep's four run
// modes — -count, -expand, -replay and -stream — each claim stdout's
// format and the process's exit-code contract, so combining them has no
// coherent meaning; picking one silently (the old behavior: -count beat
// -expand beat -replay beat -stream) turned a typo'd invocation into a
// confidently wrong artifact.
func exclusiveModes(count, expand bool, replay string, stream bool) error {
	var set []string
	if count {
		set = append(set, "-count")
	}
	if expand {
		set = append(set, "-expand")
	}
	if replay != "" {
		set = append(set, "-replay")
	}
	if stream {
		set = append(set, "-stream")
	}
	if len(set) > 1 {
		return fmt.Errorf("%s are mutually exclusive — pick one mode", strings.Join(set, " and "))
	}
	return nil
}

// streamSweep drains a sweep stream to out, one judged NDJSON cell
// result per line as cells complete (completion order, not expansion
// order — every line carries its cell's index and replay seed), and
// returns the process exit code: 0 only when every streamed cell passed
// every oracle and none was canceled. A million-cell campaign streams
// in bounded memory; pipe into `jq` or checkpoint incrementally. A
// non-nil error is a stream or encoding failure for the caller's
// fatal().
func streamSweep(results iter.Seq2[meetpoly.SweepCellResult, error], out, errOut io.Writer) (int, error) {
	enc := json.NewEncoder(out)
	cells, fails, canc := 0, 0, 0
	for cr, serr := range results {
		if serr != nil {
			return 1, serr
		}
		cells++
		if cr.Failed() {
			fails++
		}
		if cr.Outcome.Canceled {
			canc++
		}
		if err := enc.Encode(cr); err != nil {
			return 1, err
		}
	}
	fmt.Fprintf(errOut, "rvsweep: %d cells, %d oracle failures, %d canceled\n", cells, fails, canc)
	if canc > 0 {
		fmt.Fprintf(errOut, "rvsweep: sweep interrupted: %d of %d cells canceled\n", canc, cells)
	}
	if fails > 0 || canc > 0 {
		return 1, nil
	}
	return 0, nil
}

// checkAgainst compares a replayed cell with its record in a sweep
// artifact and reports whether they diverge. Read errors and a record
// that cannot contain the cell terminate through exit.
func checkAgainst(path string, cr meetpoly.SweepCellResult, exit func(int)) bool {
	rec, found, fromReport, err := recordedCell(path, cr.Cell.Seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvsweep:", err)
		if errors.Is(err, errMalformedRecord) {
			// A corrupt or ambiguous artifact is an input problem (exit
			// 2), not an oracle verdict (1) and never a divergence (3):
			// the comparison did not happen.
			exit(2)
		}
		exit(1)
	}
	if !found {
		if !fromReport {
			fmt.Fprintf(os.Stderr, "rvsweep: seed %q not present in stream record %s (was it produced by -stream over the same spec?)\n", cr.Cell.Seed, path)
			exit(1)
		}
		// The aggregate report records only failing cells: absence means
		// the sweep saw this cell pass every oracle.
		if cr.Failed() {
			printDivergence(path, "recorded as passing every oracle", describeFailures(cr))
			return true
		}
		return false
	}
	recJSON, _ := json.Marshal(rec.Outcome)
	gotJSON, _ := json.Marshal(cr.Outcome)
	if !bytes.Equal(recJSON, gotJSON) {
		printDivergence(path, string(recJSON), string(gotJSON))
		return true
	}
	if rf, gf := describeFailures(rec), describeFailures(cr); rf != gf {
		printDivergence(path, rf, gf)
		return true
	}
	fmt.Fprintf(os.Stderr, "rvsweep: replay matches the recorded outcome in %s\n", path)
	return false
}

// printDivergence emits the divergence report and the diagnosis hint.
func printDivergence(path, recorded, replayed string) {
	fmt.Fprintf(os.Stderr, "rvsweep: replayed outcome diverges from the sweep recorded in %s\n", path)
	fmt.Fprintf(os.Stderr, "  recorded: %s\n", recorded)
	fmt.Fprintf(os.Stderr, "  replayed: %s\n", replayed)
	fmt.Fprintln(os.Stderr, "rvsweep: hint: a cell is a pure function of its seed string, so divergence means the replay environment differs from the sweep — check that -maxn and -seed match the swept catalog and that this binary is built from the same revision")
}

// describeFailures canonicalizes a cell's oracle verdict for comparison
// and display.
func describeFailures(cr meetpoly.SweepCellResult) string {
	if len(cr.Failures) == 0 {
		return "passed every oracle"
	}
	names := make([]string, len(cr.Failures))
	for i, f := range cr.Failures {
		names[i] = f.Oracle
	}
	sort.Strings(names)
	return "failed oracles: " + strings.Join(names, ", ")
}

// errMalformedRecord tags artifact-shape failures apart from plain I/O
// errors: checkAgainst maps it to the usage exit code (2), because a
// comparison against a corrupt or ambiguous record never happened and
// must not masquerade as an oracle verdict or a divergence.
var errMalformedRecord = errors.New("malformed sweep record")

// recordedCell looks a seed up in a recorded sweep artifact. It accepts
// both artifact shapes rvsweep itself emits: the aggregate JSON report
// of -json (which records only failing cells — fromReport is true) and
// the NDJSON stream of -stream (which records every cell).
func recordedCell(path, seed string) (rec meetpoly.SweepCellResult, found, fromReport bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return rec, false, false, err
	}
	defer f.Close()
	return scanRecord(f, path, seed)
}

// scanRecord is recordedCell over an open reader — the unit the
// malformed-input matrix tests. It always scans the artifact to the
// end, even after the seed is found: a truncated tail or a second
// record of the same seed makes the whole artifact untrustworthy, and
// silently using the first hit would turn an ambiguous record into a
// confident verdict. Trailing whitespace (the blank line a text editor
// or `echo >>` appends) is not an error: the decoder consumes it as
// inter-record space and reports a clean EOF.
func scanRecord(r io.Reader, path, seed string) (rec meetpoly.SweepCellResult, found, fromReport bool, err error) {
	dec := json.NewDecoder(r)
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		if errors.Is(err, io.EOF) {
			return rec, false, false, fmt.Errorf("record %s is empty: %w", path, errMalformedRecord)
		}
		return rec, false, false, fmt.Errorf("reading record %s: %v: %w", path, err, errMalformedRecord)
	}
	// An aggregate report is a single object with campaign-level fields;
	// a stream line is a cell result (whose "cell" object never gives
	// Report a cell count).
	var rep meetpoly.SweepReport
	if err := json.Unmarshal(raw, &rep); err == nil && (rep.Cells > 0 || len(rep.Group) > 0) {
		for _, cand := range rep.Failures {
			if cand.Cell.Seed == seed {
				if found {
					return meetpoly.SweepCellResult{}, false, true, duplicateSeedErr(path, seed)
				}
				rec, found = cand, true
			}
		}
		return rec, found, true, nil
	}
	for {
		var cand meetpoly.SweepCellResult
		if err := json.Unmarshal(raw, &cand); err != nil {
			return meetpoly.SweepCellResult{}, false, false,
				fmt.Errorf("parsing record %s: %v: %w", path, err, errMalformedRecord)
		}
		if cand.Cell.Seed == seed {
			if found {
				return meetpoly.SweepCellResult{}, false, false, duplicateSeedErr(path, seed)
			}
			rec, found = cand, true
		}
		if err := dec.Decode(&raw); err != nil {
			if errors.Is(err, io.EOF) {
				return rec, found, false, nil
			}
			return meetpoly.SweepCellResult{}, false, false,
				fmt.Errorf("reading record %s: stream truncated or corrupt: %v: %w", path, err, errMalformedRecord)
		}
	}
}

// duplicateSeedErr reports an ambiguous artifact: the target cell is
// recorded more than once, so there is no single outcome to compare
// against.
func duplicateSeedErr(path, seed string) error {
	return fmt.Errorf("record %s contains seed %q more than once — ambiguous record (duplicate cell index): %w",
		path, seed, errMalformedRecord)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvsweep:", err)
	os.Exit(1)
}
