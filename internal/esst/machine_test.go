package esst

import (
	"reflect"
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/sched"
	"meetpoly/internal/uxs"
)

// TestMachineMatchesProcedure is the package-level differential proof
// that the pull-based Machine (direct-dispatch core) and the blocking
// Procedure (goroutine core) realize the same ESST program: the same
// instances driven through both execution cores must produce identical
// results, traces and scheduler summaries.
func TestMachineMatchesProcedure(t *testing.T) {
	cat := uxs.NewVerified(uxs.DefaultFamily(7), 1)
	cases := []*graph.Graph{
		graph.Path(2),
		graph.Path(5),
		graph.Ring(4),
		graph.Ring(7),
		graph.Star(6),
		graph.Complete(5),
		graph.BinaryTree(7),
	}
	advs := map[string]func() sched.Adversary{
		"round-robin": func() sched.Adversary { return &sched.RoundRobin{} },
		"random":      func() sched.Adversary { return sched.NewRandom(11) },
		"biased":      func() sched.Adversary { return &sched.Biased{Weights: []int{1, 5}} },
	}
	for _, g := range cases {
		if !cat.Covers(g) {
			cat.Extend(g)
		}
		for name, mk := range advs {
			run := func(force bool) *Result {
				res, err := ExploreWith(sched.RunOpts{ForceBlocking: force},
					g, 1%g.N(), 0, cat, mk(), 5_000_000)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			fast, slow := run(false), run(true)
			if fast.Done != slow.Done || fast.Phase != slow.Phase || fast.Cost != slow.Cost ||
				fast.EUpper != slow.EUpper || fast.Covered != slow.Covered {
				t.Fatalf("%s/%s: cores diverge: fast %+v, slow %+v", g, name, fast, slow)
			}
			if !reflect.DeepEqual(fast.Summary, slow.Summary) {
				t.Fatalf("%s/%s: summaries diverge:\nfast %+v\nslow %+v", g, name, fast.Summary, slow.Summary)
			}
			if !fast.Done {
				t.Fatalf("%s/%s: ESST did not terminate", g, name)
			}
		}
	}
}

// TestMachineTraceMatchesProcedureTrace drives Machine and Procedure
// directly (no scheduler) over the same synchronous walk and compares
// the recorded traces move for move, including a MaxPhase abort.
func TestMachineTraceMatchesProcedureTrace(t *testing.T) {
	cat := uxs.NewVerified(uxs.DefaultFamily(6), 1)
	for _, tc := range []struct {
		g        *graph.Graph
		maxPhase int
	}{
		{graph.Ring(5), 0},
		{graph.Path(4), 0},
		{graph.Star(5), 0},
		{graph.Ring(6), 3}, // forced MaxPhase abort
	} {
		if !cat.Covers(tc.g) {
			cat.Extend(tc.g)
		}
		tokenAt := 0
		// Synchronous single-agent walk: the token is parked at a node,
		// sightings happen exactly on arrival there.
		pr := &Procedure{Cat: cat, MaxPhase: tc.maxPhase}
		cur := 1
		pr.Hooks = Hooks{
			Move: func(port int) (sched.Observation, bool) {
				to, entry := tc.g.Succ(cur, port)
				cur = to
				return sched.Observation{Degree: tc.g.Degree(to), Entry: entry}, to == tokenAt
			},
			Degree:    func() int { return tc.g.Degree(cur) },
			WithToken: func() bool { return cur == tokenAt },
		}
		prDone := pr.Run()

		m := &Machine{Cat: cat, MaxPhase: tc.maxPhase}
		mcur := 1
		deg, entry, sighted := tc.g.Degree(mcur), -1, false
		for {
			port, running := m.Step(deg, entry, sighted, mcur == tokenAt)
			if !running {
				break
			}
			to, in := tc.g.Succ(mcur, port)
			mcur = to
			deg, entry, sighted = tc.g.Degree(to), in, to == tokenAt
		}
		if m.Done != prDone || m.Done != pr.Done || m.Phase != pr.Phase || m.Cost != pr.Cost {
			t.Fatalf("%s: machine (done=%v phase=%d cost=%d) vs procedure (done=%v phase=%d cost=%d)",
				tc.g, m.Done, m.Phase, m.Cost, pr.Done, pr.Phase, pr.Cost)
		}
		if !reflect.DeepEqual(m.Trace, pr.Trace) {
			t.Fatalf("%s: traces diverge after %d vs %d moves", tc.g, len(m.Trace), len(pr.Trace))
		}
	}
}
