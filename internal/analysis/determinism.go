package analysis

import (
	"flag"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DeterminismAnalyzer flags nondeterminism sources in result-producing
// packages: wall-clock reads, the global math/rand source, map
// iteration feeding ordered output, and fmt formatting of raw pointer
// values (whose text is an address, different every run). Every cell of
// a sweep must be a pure function of its seed string "<seed>#<index>";
// any of these constructs silently breaks replay, the golden report and
// the differential oracles.
var DeterminismAnalyzer = &analysis.Analyzer{
	Name:     "determinism",
	Doc:      "flag nondeterminism sources (time, global rand, map order, pointer formatting) in result-producing packages",
	Flags:    determinismFlags(),
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDeterminism,
}

// determinismPkgs is the package-path regexp the analyzer applies to.
// The default is the engine's result-producing set: every package whose
// outputs end up in a SweepReport or a seed string.
var determinismPkgs string

func determinismFlags() flag.FlagSet {
	fs := flag.NewFlagSet("determinism", flag.ExitOnError)
	fs.StringVar(&determinismPkgs,
		"pkgs",
		`^meetpoly$|^meetpoly/internal/(sched|campaign|costmodel|core|baseline|esst|sgl|trajectory)$`,
		"regexp of package paths the determinism rules apply to")
	return *fs
}

// bannedRandFuncs are the math/rand (and v2) package-level functions
// that draw from the global source. Constructors taking an explicit
// seeded source remain legal.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// orderedSinks are method/function names that emit elements in call
// order; invoking one inside a map-range loop serializes map iteration
// order.
var orderedSinks = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Encode": true, "Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Append": true, "Appendf": true, "Appendln": true,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	re, err := regexp.Compile(determinismPkgs)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	rep := newReporter(pass, "determinism")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		if inTestFile(pass.Fset, n.Pos()) {
			return
		}
		call := n.(*ast.CallExpr)
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		checkTimeCall(rep, call, fn)
		checkRandCall(rep, call, fn)
		checkFmtPointer(pass, rep, call, fn)
	})

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || inTestFile(pass.Fset, decl.Pos()) {
			return
		}
		checkMapOrder(pass, rep, decl.Body)
	})
	return nil, nil
}

// checkTimeCall flags wall-clock and timer reads: their values differ
// between runs of the same seed.
func checkTimeCall(rep reportfer, call *ast.CallExpr, fn *types.Func) {
	switch fn.Name() {
	case "Now", "Since", "Until", "After", "Tick", "NewTimer", "NewTicker":
		if isPkgFunc(fn, "time", fn.Name()) {
			rep.reportf(call.Pos(), "call to time.%s: wall-clock input makes results irreproducible from the seed string", fn.Name())
		}
	}
}

// checkRandCall flags draws from the process-global math/rand source,
// whose stream depends on every other draw in the process.
func checkRandCall(rep reportfer, call *ast.CallExpr, fn *types.Func) {
	pkg := fn.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods on an explicit *rand.Rand are seeded and fine
	}
	if allowedRandFuncs[fn.Name()] {
		return
	}
	rep.reportf(call.Pos(), "call to global %s.%s: use a rand.New(rand.NewSource(seed)) derived from the cell seed instead", pkg.Path(), fn.Name())
}

// fmtVerbatim are the fmt functions whose arguments are rendered with
// default verbs; fmtFormatted take a leading format string.
var fmtFormatted = map[string]int{
	"Sprintf": 0, "Printf": 0, "Errorf": 0,
	"Fprintf": 1, "Appendf": 1, "Fscanf": -1, // Fscanf never formats output
}
var fmtVerbatim = map[string]int{
	"Sprint": 0, "Sprintln": 0, "Print": 0, "Println": 0,
	"Fprint": 1, "Fprintln": 1, "Append": 1, "Appendln": 1,
}

// checkFmtPointer flags %p verbs and raw pointer/chan/func arguments to
// fmt calls: they render as addresses, which change run to run.
func checkFmtPointer(pass *analysis.Pass, rep *reporter, call *ast.CallExpr, fn *types.Func) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if start, ok := fmtFormatted[fn.Name()]; ok && start >= 0 {
		if len(call.Args) > start {
			if lit, ok := ast.Unparen(call.Args[start]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if s, err := strconv.Unquote(lit.Value); err == nil && strings.Contains(s, "%p") {
					rep.reportf(call.Pos(), "fmt.%s formats a pointer address (%%p), which differs between identically-seeded runs", fn.Name())
				}
			}
		}
		checkPointerArgs(pass, rep, fn.Name(), call.Args[min(start+1, len(call.Args)):])
		return
	}
	if start, ok := fmtVerbatim[fn.Name()]; ok {
		checkPointerArgs(pass, rep, fn.Name(), call.Args[min(start, len(call.Args)):])
	}
}

func checkPointerArgs(pass *analysis.Pass, rep *reporter, fname string, args []ast.Expr) {
	for _, a := range args {
		t := pass.TypesInfo.TypeOf(a)
		if t == nil || !isAddressKind(t) || formatsAsValue(t) {
			continue
		}
		rep.reportf(a.Pos(), "fmt.%s argument of type %s renders as a memory address; format its contents (or give it a String method)", fname, t)
	}
}

// isAddressKind reports whether values of t render as an address under
// default fmt verbs.
func isAddressKind(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// formatsAsValue reports whether fmt would call a user-defined
// formatter instead of printing the address.
func formatsAsValue(t types.Type) bool {
	for _, name := range [...]string{"String", "Error", "Format"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if f, ok := obj.(*types.Func); ok {
			switch name {
			case "String", "Error":
				sig := f.Type().(*types.Signature)
				if sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
					types.Identical(sig.Results().At(0).Type(), types.Typ[types.String]) {
					return true
				}
			case "Format":
				return true // fmt.Formatter-ish; give it the benefit of the doubt
			}
		}
	}
	return false
}

// checkMapOrder flags map-range loops whose iteration order becomes
// observable: direct writes to an ordered sink inside the loop, or a
// slice built by the loop that is not sorted before the function ends.
func checkMapOrder(pass *analysis.Pass, rep *reporter, body *ast.BlockStmt) {
	// appendTarget records one slice fed from inside a map-range loop.
	type appendTarget struct {
		expr string    // canonical text of the append target
		pos  token.Pos // report position
	}
	var targets []appendTarget
	sorted := map[string]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := types.Unalias(t).Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass.TypesInfo, x); fn != nil && orderedSinks[fn.Name()] {
					rep.reportf(x.Pos(), "map iteration order reaches %s.%s; iterate sorted keys instead", pkgOrRecv(fn), fn.Name())
				}
				if isBuiltin(pass.TypesInfo, x, "append") && len(x.Args) > 0 {
					targets = append(targets, appendTarget{expr: exprString(x.Args[0]), pos: x.Pos()})
				}
			}
			return true
		})
		return true
	})
	if len(targets) == 0 {
		return
	}
	// A later sort of the same expression launders the order.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if !strings.HasPrefix(fn.Name(), "Sort") && fn.Name() != "Slice" && fn.Name() != "SliceStable" &&
			fn.Name() != "Strings" && fn.Name() != "Ints" && fn.Name() != "Float64s" && fn.Name() != "Stable" {
			return true
		}
		if len(call.Args) > 0 {
			sorted[exprString(call.Args[0])] = true
		}
		return true
	})
	for _, t := range targets {
		if !sorted[t.expr] {
			rep.reportf(t.pos, "slice %s is built from map iteration order and never sorted; order differs between runs", t.expr)
		}
	}
}

// pkgOrRecv names the callee's home for diagnostics: its receiver type
// for methods, its package otherwise.
func pkgOrRecv(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return strings.TrimPrefix(sig.Recv().Type().String(), "*")
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name()
	}
	return "?"
}

// exprString renders an expression for structural comparison.
func exprString(e ast.Expr) string {
	return types.ExprString(ast.Unparen(e))
}
