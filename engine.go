package meetpoly

import (
	"context"
	"fmt"
	"iter"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"

	"meetpoly/internal/baseline"
	"meetpoly/internal/campaign"
	"meetpoly/internal/core"
	"meetpoly/internal/costmodel"
	"meetpoly/internal/registry"
	"meetpoly/internal/telemetry"
	"meetpoly/internal/trajectory"
	"meetpoly/internal/uxs"
)

// Catalog supplies exploration sequences per size parameter (the
// paper's R(k, v)); see internal/uxs for the contract and the provided
// implementations (family-verified compact catalogs, pseudorandom
// cubic-length formulas).
type Catalog = uxs.Catalog

// Engine executes Scenarios. Build one with NewEngine and share it: the
// engine owns a single verified exploration-sequence catalog (lock-free
// snapshot reads, so concurrent runs reuse verified sequences without
// contending) and a prepared-scenario cache that amortizes graph
// builds, coverage checks and deterministic agent routes across every
// run that shares a declarative spec (DESIGN.md §3.1). The zero value
// is not usable.
type Engine struct {
	env           *trajectory.Env
	obs           Observer
	parallelism   int
	autoExtend    bool
	forceBlocking bool
	usePrepCache  bool
	batchTier     bool

	// mu guards catalog coverage checks and extensions; sequence reads
	// are internally synchronized by the catalog itself.
	mu sync.Mutex

	// The prepared-scenario cache (DESIGN.md, "preparation & caching
	// layers"): a content-addressed map from a graph fingerprint — the
	// GraphSpec struct itself (builders are deterministic functions of
	// it) plus the registered kind's builder fingerprint — to one
	// immutable built graph with its edge index pre-built, its catalog
	// coverage verdict memoized, and a route book amortizing the
	// deterministic walks of rendezvous/baseline/certify instances. A
	// 10k-cell sweep builds and coverage-checks each unique graph exactly
	// once, and derives each (start, label) trajectory once. Custom
	// registered kinds participate on the same terms; their Fingerprint
	// is how a builder that closes over configuration keys its variants.
	prepCache sync.Map // prepKey -> *preparedGraph
	// cacheStats packs the cache's hit and miss counters into one word —
	// hits in the high 32 bits, misses in the low 32 — so a preparation
	// is one atomic add and CacheStats reads a consistent (hits, misses)
	// pair with one load. Two separate counters could tear between their
	// loads: a snapshot whose sum disagrees with the preparations any
	// observer counted. 32 bits of headroom per counter bounds an engine
	// to ~4.3e9 preparations before wrap, far beyond what the campaign
	// expansion caps admit in one engine's lifetime.
	cacheStats   atomic.Uint64
	catalogEpoch atomic.Int64 // bumped on catalog extension: route books expire
	boundModel   atomic.Pointer[boundModelEpoch]

	// tele holds the engine's pre-resolved metric handles (nil without
	// WithTelemetry: the nil check is the whole disabled cost, and the
	// telemetry differential test pins reports byte-identical either
	// way). cellTrace, when set, receives serialized begin/end span
	// events per sweep cell (WithCellTrace) and — like an observer —
	// disables the batched tier.
	tele      *engineMetrics
	cellTrace func(CellTraceEvent)
}

// preparedGraph is one cache entry of the engine's prepared-scenario
// cache. The build (graph construction plus edge-index prebuild) and
// the catalog coverage verdict each run exactly once per fingerprint —
// as two stages, so scenario validation keeps its place between them
// and error precedence matches the uncached path. The route book is
// replaced when the catalog epoch moves (an extension changes sequence
// lengths, and with them every master trajectory).
type preparedGraph struct {
	buildOnce sync.Once
	g         *Graph
	buildErr  error

	coverOnce sync.Once
	coverErr  error

	routes atomic.Pointer[routeEpoch]
}

// routeEpoch pins a route book to the catalog epoch its trajectories
// were derived under.
type routeEpoch struct {
	epoch int64
	book  *trajectory.RouteBook
}

// build constructs the entry's graph and eagerly builds its edge index
// (every downstream consumer — meeting detection, coverage bitsets —
// wants it, and building it here keeps it off the runs' critical path).
func (pg *preparedGraph) build(spec GraphSpec) {
	g, err := spec.Build()
	if err != nil {
		pg.buildErr = err
		return
	}
	if g.M() > 0 {
		g.EdgeIndex(0, 0)
	}
	pg.g = g
}

// cover memoizes the catalog coverage verdict (including any family
// extension the engine's policy allows). The spec is only rendered
// into the failure message, inside the once, so the hot (hit) path
// never formats it.
func (pg *preparedGraph) cover(e *Engine, spec GraphSpec) error {
	pg.coverOnce.Do(func() { pg.coverErr = e.ensureCovered(pg.g, spec.String()) })
	return pg.coverErr
}

// book returns the entry's route book for the current catalog epoch,
// discarding books whose trajectories were derived under a smaller
// family.
func (pg *preparedGraph) book(e *Engine) *trajectory.RouteBook {
	epoch := e.catalogEpoch.Load()
	for {
		re := pg.routes.Load()
		if re != nil && re.epoch == epoch {
			return re.book
		}
		next := &routeEpoch{epoch: epoch, book: trajectory.NewRouteBook(pg.g)}
		if pg.routes.CompareAndSwap(re, next) {
			return next.book
		}
	}
}

// prepKey is the content address of one prepared-scenario cache entry:
// the declarative spec plus the registered kind's builder fingerprint,
// so two builder revisions that accept the same spec fields can never
// alias each other's cached graphs.
type prepKey struct {
	spec GraphSpec
	fp   string
}

// preparedFor returns the cache entry for spec, building it on first
// use. Concurrent callers for the same fingerprint share one build.
func (e *Engine) preparedFor(spec GraphSpec) *preparedGraph {
	key := prepKey{spec: spec}
	if k, ok := registry.LookupGraph(spec.Kind); ok {
		key.fp = k.Fingerprint
	}
	v, loaded := e.prepCache.Load(key)
	if !loaded {
		v, loaded = e.prepCache.LoadOrStore(key, &preparedGraph{})
	}
	if loaded {
		e.cacheStats.Add(cacheHitInc)
	} else {
		e.cacheStats.Add(cacheMissInc)
	}
	pg := v.(*preparedGraph)
	pg.buildOnce.Do(func() { pg.build(spec) })
	return pg
}

// CacheStats reports the engine's prepared-scenario cache traffic. A
// miss is a fingerprint's first preparation (graph build + coverage
// check); every other preparation of the same spec is a hit.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// Increments of the packed cache-stat word: hits live in the high 32
// bits, misses in the low 32.
const (
	cacheHitInc  = uint64(1) << 32
	cacheMissInc = uint64(1)
)

// CacheStats returns a consistent snapshot of the prepared-scenario
// cache counters: both are decoded from one atomic load of the packed
// word, so Hits+Misses always equals the number of preparations that
// had completed their count at some single instant.
func (e *Engine) CacheStats() CacheStats {
	s := e.cacheStats.Load()
	return CacheStats{Hits: int64(s >> 32), Misses: int64(s & (cacheHitInc - 1))}
}

// engineConfig collects option state before construction.
type engineConfig struct {
	catalog        Catalog
	maxN           int
	seed           int64
	obs            Observer
	parallelism    int
	autoExtend     bool
	directDispatch bool
	preparedCache  bool
	batched        bool
	metrics        *Metrics
	cellTrace      func(CellTraceEvent)
}

// Option configures NewEngine.
type Option func(*engineConfig)

// WithCatalog supplies an explicit exploration-sequence catalog,
// overriding WithMaxN/WithSeed.
func WithCatalog(cat Catalog) Option { return func(c *engineConfig) { c.catalog = cat } }

// WithMaxN sets the size ceiling of the default verified catalog's
// graph family (default 6).
func WithMaxN(n int) Option { return func(c *engineConfig) { c.maxN = n } }

// WithSeed sets the seed of the default verified catalog (default 1).
func WithSeed(seed int64) Option { return func(c *engineConfig) { c.seed = seed } }

// WithObserver attaches an execution observer. The engine serializes
// the callbacks, so one observer value may watch a whole RunBatch.
func WithObserver(obs Observer) Option { return func(c *engineConfig) { c.obs = obs } }

// WithParallelism caps the worker pool RunBatch fans out over
// (default: GOMAXPROCS).
func WithParallelism(n int) Option { return func(c *engineConfig) { c.parallelism = n } }

// WithAutoExtend controls what happens when a scenario's graph is
// outside the verified catalog's family: extend the family and
// re-verify (true, the default), or fail the run with
// ErrCatalogUncovered (false) — the right choice for engines shared by
// many concurrent workloads, where an extension invalidates cached
// sequences for everyone.
func WithAutoExtend(on bool) Option { return func(c *engineConfig) { c.autoExtend = on } }

// WithDirectDispatch selects the scheduler's execution core (DESIGN.md
// §2.2, "execution model"). On (the default), agents implementing the
// scheduler's state-machine interface are dispatched inline on the
// runner's goroutine — the zero-handoff fast path every built-in
// algorithm uses. Off forces the blocking goroutine core for every
// agent. The two cores are observationally identical (the differential
// test suite and the sweep cross-check oracle enforce it); turning the
// fast path off exists for exactly those comparisons.
func WithDirectDispatch(on bool) Option { return func(c *engineConfig) { c.directDispatch = on } }

// WithPreparedCache controls the engine's prepared-scenario cache (on
// by default): declaratively specified graphs are built, edge-indexed
// and coverage-checked once per unique GraphSpec, and the deterministic
// agent routes of rendezvous, baseline and certify scenarios are
// materialized once per (graph, start, label) and replayed thereafter.
// Cached and uncached execution are observationally identical (the
// differential sweep test enforces byte-identical reports); turning the
// cache off exists for exactly that comparison, and for engines fed
// unbounded streams of distinct specs where the cache could only grow.
func WithPreparedCache(on bool) Option { return func(c *engineConfig) { c.preparedCache = on } }

// WithBatchedExecution controls the sweep's batched execution tier (on
// by default). On, sweep workers group batchable cells that share a
// prepared graph — contiguous under the campaign walk order — into
// lanes of one lockstep BatchRunner, paying the per-cell dispatch
// overhead (runner construction, per-agent state, pooled scratch churn)
// once per batch instead of once per cell. The tier engages only when
// its preconditions hold (prepared cache on, direct dispatch on, no
// observer attached) and only for kinds that declare the two-walker
// lane shape; everything else runs on the per-cell tiers unchanged.
// Batched and per-cell execution are observationally identical — the
// batch differential test enforces byte-identical sweep reports —
// and turning the tier off exists for exactly that comparison.
func WithBatchedExecution(on bool) Option { return func(c *engineConfig) { c.batched = on } }

// NewEngine builds an engine. With no options it verifies a compact
// exploration catalog on the standard graph families up to 6 nodes,
// exactly like NewEnv(6, 1).
func NewEngine(opts ...Option) *Engine {
	cfg := engineConfig{maxN: 6, seed: 1, parallelism: runtime.GOMAXPROCS(0), autoExtend: true,
		directDispatch: true, preparedCache: true, batched: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.catalog == nil {
		cfg.catalog = uxs.NewVerified(uxs.DefaultFamily(cfg.maxN), cfg.seed)
	}
	if cfg.parallelism < 1 {
		cfg.parallelism = 1
	}
	e := &Engine{
		env:           trajectory.NewEnv(cfg.catalog),
		parallelism:   cfg.parallelism,
		autoExtend:    cfg.autoExtend,
		forceBlocking: !cfg.directDispatch,
		usePrepCache:  cfg.preparedCache,
		batchTier:     cfg.batched,
	}
	if cfg.obs != nil {
		e.obs = &lockedObserver{inner: cfg.obs}
	}
	if cfg.metrics != nil {
		e.tele = newEngineMetrics(e, cfg.metrics)
	}
	if cfg.cellTrace != nil {
		// Serialized for the same reason observers are: one tracer value
		// watches every sweep worker.
		var mu sync.Mutex
		fn := cfg.cellTrace
		e.cellTrace = func(ev CellTraceEvent) {
			mu.Lock()
			defer mu.Unlock()
			fn(ev)
		}
	}
	return e
}

// engineOver wraps an existing environment for the deprecated free
// functions, preserving their auto-extending single-call behaviour.
func engineOver(env *Env) *Engine {
	return &Engine{env: env, parallelism: 1, autoExtend: true}
}

// Env returns the engine's trajectory environment, for interoperating
// with cost-model queries such as PiBound.
func (e *Engine) Env() *Env { return e.env }

// ensureCovered makes sure the catalog's integrality guarantee applies
// to g; desc names the graph in the failure (the compact GraphSpec
// string for declarative scenarios, the graph's own name for
// instances). Verified catalogs recognize structurally identical family
// members (so scenario-rebuilt graphs cost nothing); genuinely new
// graphs either extend the family or fail, per WithAutoExtend. Formula
// catalogs cover probabilistically and always pass.
func (e *Engine) ensureCovered(g *Graph, desc string) error {
	v, ok := e.env.Catalog().(*uxs.Verified)
	if !ok {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if v.Covers(g) || v.CoversEqual(g) {
		return nil
	}
	if !e.autoExtend {
		return fmt.Errorf("graph %s (n=%d, family max %d): %w",
			desc, g.N(), v.MaxN(), ErrCatalogUncovered)
	}
	v.Extend(g)
	// Extension re-verifies sequences over the grown family, which can
	// change their lengths — and with them every derived trajectory.
	// Moving the epoch expires the cached route books so no run replays
	// a route from the previous catalog state.
	e.catalogEpoch.Add(1)
	return nil
}

// Result is the outcome of one scenario execution. For the built-in
// kinds exactly one of the typed per-kind fields is non-nil, matching
// Scenario.Kind; custom registered kinds report through Custom.
type Result struct {
	Scenario   Scenario
	Rendezvous *RendezvousResult
	Baseline   *BaselineResult
	ESST       *ESSTResult
	SGL        *SGLResult
	Cert       *CertResult
	// Custom carries the result of a kind registered with
	// RegisterScenarioKind; its concrete type is whatever the kind's
	// runner chose to return.
	Custom any
}

// prepare builds, validates and catalog-covers a scenario, returning
// the resolved graph, adversary and (for cached declarative specs) the
// graph's route book. Declarative graphs go through the prepared-
// scenario cache: the build and coverage check run once per unique
// GraphSpec, and repeated preparations are two lock-free map reads.
// Pre-built GraphInstance scenarios bypass the cache — the engine
// cannot fingerprint an arbitrary caller-owned graph.
func (e *Engine) prepare(sc Scenario) (*Graph, Adversary, *trajectory.RouteBook, error) {
	if sc.GraphInstance == nil && e.usePrepCache {
		pg := e.preparedFor(sc.Graph)
		if pg.buildErr != nil {
			return nil, nil, nil, pg.buildErr
		}
		if err := sc.validateWith(pg.g); err != nil {
			return nil, nil, nil, err
		}
		if err := pg.cover(e, sc.Graph); err != nil {
			return nil, nil, nil, err
		}
		adv, err := sc.resolveAdversary()
		if err != nil {
			return nil, nil, nil, err
		}
		return pg.g, adv, pg.book(e), nil
	}
	g, err := sc.BuildGraph()
	if err != nil {
		return nil, nil, nil, err
	}
	if err := sc.validateWith(g); err != nil {
		return nil, nil, nil, err
	}
	desc := g.String()
	if sc.GraphInstance == nil {
		desc = sc.Graph.String()
	}
	if err := e.ensureCovered(g, desc); err != nil {
		return nil, nil, nil, err
	}
	adv, err := sc.resolveAdversary()
	if err != nil {
		return nil, nil, nil, err
	}
	return g, adv, nil, nil
}

// Run validates and executes one scenario. The context cancels the run
// between scheduler events (and between certifier lattice rows); the
// returned error then wraps both ErrCanceled and ctx.Err(). A run that
// consumes its whole budget before reaching its goal returns the
// partial result alongside an error wrapping ErrBudgetExhausted.
func (e *Engine) Run(ctx context.Context, sc Scenario) (*Result, error) {
	g, adv, routes, err := e.prepare(sc)
	if err != nil {
		return nil, err
	}
	return e.runPrepared(ctx, sc, g, adv, routes)
}

// runPrepared executes a scenario whose graph, validity and catalog
// coverage prepare has already resolved, by dispatching to the kind's
// registered runner. A non-nil routes book (cached declarative specs)
// makes the deterministic built-in kinds — rendezvous, baseline,
// certify — replay materialized routes instead of re-deriving their
// trajectories.
func (e *Engine) runPrepared(ctx context.Context, sc Scenario, g *Graph, adv Adversary, routes *trajectory.RouteBook) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w (%w)", sc.Name, ErrCanceled, err)
	}
	def, ok := lookupScenarioKind(sc.Kind)
	if !ok {
		// Unreachable through prepare: Validate rejects unregistered
		// kinds.
		return nil, fmt.Errorf("scenario %q: unknown kind %q: %w", sc.Name, sc.Kind, ErrInvalidScenario)
	}
	return def.Run(&ScenarioRunContext{
		Context:   ctx,
		Engine:    e,
		Scenario:  sc,
		Graph:     g,
		Adversary: adv,
		routes:    routes,
	})
}

// masterStepper returns the rendezvous master trajectory for (start,
// label): a cached route replay when the graph has a route book, a
// fresh composite stepper otherwise.
func (e *Engine) masterStepper(routes *trajectory.RouteBook, g *Graph, start int, l Label) trajectory.Stepper {
	if routes == nil {
		if e.tele != nil {
			e.tele.routeFresh.Inc()
		}
		return core.NewStepper(l, e.env)
	}
	if e.tele != nil {
		e.tele.routeReplay.Inc()
	}
	return routes.Stepper(trajectory.RouteKey{Start: start, Kind: 'R', Param: uint64(l)},
		func() trajectory.Stepper { return core.NewStepper(l, e.env) })
}

// baselineStepper is masterStepper for the exponential baseline
// trajectory (which additionally depends on the graph size — fixed per
// route book, so the same key shape works).
func (e *Engine) baselineStepper(routes *trajectory.RouteBook, g *Graph, start int, l Label) trajectory.Stepper {
	if routes == nil {
		if e.tele != nil {
			e.tele.routeFresh.Inc()
		}
		return baseline.NewStepper(e.env, g.N(), l)
	}
	if e.tele != nil {
		e.tele.routeReplay.Inc()
	}
	n := g.N()
	return routes.Stepper(trajectory.RouteKey{Start: start, Kind: 'B', Param: uint64(l)},
		func() trajectory.Stepper { return baseline.NewStepper(e.env, n, l) })
}

// masterRoute materializes the first moves of the cached master
// trajectory as a node route for the certifier.
func (e *Engine) masterRoute(routes *trajectory.RouteBook, start int, l Label, moves int) []int {
	return routes.NodeRoute(trajectory.RouteKey{Start: start, Kind: 'R', Param: uint64(l)},
		func() trajectory.Stepper { return core.NewStepper(l, e.env) }, moves)
}

// BatchResult pairs one scenario of a RunBatch with its outcome.
type BatchResult struct {
	Index    int
	Scenario Scenario
	// Graph is the built graph the run executed (nil when the build or
	// validation failed). Consumers that need graph facts — campaign
	// oracles read N and M — use it instead of rebuilding the spec.
	Graph  *Graph
	Result *Result
	Err    error
}

// RunBatch executes the scenarios concurrently over a worker pool of
// WithParallelism size and returns one BatchResult per scenario, in
// input order. All runs share the engine's verified catalog; graphs
// outside the family are resolved (extended or rejected, per
// WithAutoExtend) up front, so no extension invalidates sequences while
// other scenarios are in flight. Cancellation of ctx aborts the
// not-yet-finished runs, each reporting ErrCanceled.
func (e *Engine) RunBatch(ctx context.Context, scs []Scenario) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(scs))
	// Pre-flight sequentially: validation, graph builds and catalog
	// coverage happen once per scenario, before any run is in flight.
	type prepared struct {
		idx    int
		g      *Graph
		adv    Adversary
		routes *trajectory.RouteBook
	}
	runnable := make([]prepared, 0, len(scs))
	for i, sc := range scs {
		out[i] = BatchResult{Index: i, Scenario: sc}
		g, adv, routes, err := e.prepare(sc)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Graph = g
		runnable = append(runnable, prepared{idx: i, g: g, adv: adv, routes: routes})
	}
	workers := e.parallelism
	if workers > len(runnable) {
		workers = len(runnable)
	}
	if workers < 1 {
		return out
	}
	jobs := make(chan prepared)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for p := range jobs {
				res, err := e.runPrepared(ctx, scs[p.idx], p.g, p.adv, p.routes)
				out[p.idx].Result = res
				out[p.idx].Err = err
			}
		}()
	}
	for _, p := range runnable {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	return out
}

// BoundModel returns the paper's cost model bound to the concrete
// exploration-sequence lengths of the engine's catalog: the Π(n, ℓ) this
// model evaluates is the exact guarantee for scenarios this engine runs.
// Campaign oracles are parameterized by it. The model is memoized per
// catalog epoch — its internal recurrence tables amortize across every
// run and oracle of the engine's lifetime, and a catalog extension
// (which changes sequence lengths) swaps in a fresh one.
func (e *Engine) BoundModel() *costmodel.Model {
	epoch := e.catalogEpoch.Load()
	for {
		bm := e.boundModel.Load()
		if bm != nil && bm.epoch == epoch {
			return bm.m
		}
		next := &boundModelEpoch{epoch: epoch,
			m: costmodel.NewFromLengths(func(k int) int { return e.env.Catalog().P(k) })}
		if e.boundModel.CompareAndSwap(bm, next) {
			return next.m
		}
	}
}

// boundModelEpoch pins a memoized cost model to a catalog epoch.
type boundModelEpoch struct {
	epoch int64
	m     *costmodel.Model
}

// piBound returns Π(n, min(|l1|, |l2|)) for an instance, as a copy:
// the memoized model hands out its internal big.Ints by pointer, and
// the value ends up in the public Result.Bound, where a caller's
// in-place big.Int arithmetic must not corrupt the engine-wide memo.
func (e *Engine) piBound(n int, l1, l2 Label) *big.Int {
	mLen := l1.Len()
	if l := l2.Len(); l < mLen {
		mLen = l
	}
	return new(big.Int).Set(e.BoundModel().Pi(n, mLen))
}

// Sweep expands a campaign spec into scenarios, executes them over the
// engine's worker pool, checks every run against the default paper-bound
// oracle suite (termination, result consistency, Π/baseline/ESST cost
// bounds, lemma inequalities), and aggregates the results. The returned
// report is complete even when oracles fail — check Report.OK, and
// replay any failure with ReplayCell and its reported seed string.
//
// Sweep is a fold over SweepStream: it consumes the same per-cell
// results the streaming primitive yields and aggregates them
// order-independently, so the two views of a campaign can never
// disagree.
//
// The error is non-nil only for a malformed spec; per-run failures are
// data, not errors.
func (e *Engine) Sweep(ctx context.Context, spec SweepSpec) (*SweepReport, error) {
	// The default suite is resolved lazily, after the sweep's graph
	// pre-pass: a pre-pass that extends the catalog changes sequence
	// lengths, and the bound oracles must judge against the catalog
	// state the cells actually run under.
	return e.sweepReport(ctx, spec, e.defaultOracles)
}

// SweepWithOracles is Sweep with an explicit oracle suite, for callers
// that add domain-specific predicates (or inject failing ones to test
// the replay loop).
func (e *Engine) SweepWithOracles(ctx context.Context, spec SweepSpec, oracles ...SweepOracle) (*SweepReport, error) {
	return e.sweepReport(ctx, spec, func() []SweepOracle { return oracles })
}

// SweepStream executes a campaign and yields each cell's judged result
// as it completes — the streaming primitive Sweep folds over. Use it to
// consume, checkpoint, forward or abort a large campaign incrementally
// instead of holding a full SweepReport's failure list in memory:
//
//	for cr, err := range eng.SweepStream(ctx, spec) {
//		if err != nil {
//			return err // malformed spec; nothing was executed
//		}
//		if cr.Failed() {
//			log.Printf("cell %s failed: replay with %q", cr.Cell.ID, cr.Cell.Seed)
//		}
//	}
//
// Results arrive in completion order, not expansion order (cells carry
// their Index for re-ordering); an order-independent fold over the
// stream — campaign.Aggregator is one — reproduces Engine.Sweep's
// report exactly. Breaking out of the range stops the sweep: in-flight
// cells finish and are discarded, queued cells are never executed.
// Cells are judged with the default paper-bound oracle suite; use
// SweepStreamWithOracles to substitute another.
//
// The error is non-nil (and the stream ends) only for a malformed
// spec; per-cell failures are data on the SweepCellResult.
func (e *Engine) SweepStream(ctx context.Context, spec SweepSpec) iter.Seq2[SweepCellResult, error] {
	return e.sweepSeq(ctx, spec, 0, sweepToEnd, e.defaultOracles)
}

// SweepStreamWithOracles is SweepStream with an explicit oracle suite.
func (e *Engine) SweepStreamWithOracles(ctx context.Context, spec SweepSpec, oracles ...SweepOracle) iter.Seq2[SweepCellResult, error] {
	return e.sweepSeq(ctx, spec, 0, sweepToEnd, func() []SweepOracle { return oracles })
}

// SweepStreamRange is SweepStream restricted to the cells whose index
// falls in the half-open range [lo, hi) — the primitive a sharded or
// checkpoint-resuming campaign service executes its index slices with.
// A hi beyond the expansion is clamped to it.
//
// Two invariants make ranges composable back into whole campaigns:
//
//   - cell i's result is identical no matter which range executes it
//     (range expansion derives cells from keyed draws, and the graph
//     pre-pass always warms the FULL spec's graphs, so the catalog —
//     and with it every oracle bound — reaches the same state whichever
//     slice runs first);
//   - folding any partition of disjoint ranges through one
//     order-independent aggregator reproduces Engine.Sweep's report
//     byte-identically.
//
// The batched execution tier applies within a range exactly as in a
// full sweep: grouping happens over the walked cells, which stay
// contiguous per (kind, graph) inside any range.
func (e *Engine) SweepStreamRange(ctx context.Context, spec SweepSpec, lo, hi int) iter.Seq2[SweepCellResult, error] {
	return e.sweepSeq(ctx, spec, lo, hi, e.defaultOracles)
}

// SweepStreamRangeWithOracles is SweepStreamRange with an explicit
// oracle suite.
func (e *Engine) SweepStreamRangeWithOracles(ctx context.Context, spec SweepSpec, lo, hi int, oracles ...SweepOracle) iter.Seq2[SweepCellResult, error] {
	return e.sweepSeq(ctx, spec, lo, hi, func() []SweepOracle { return oracles })
}

// sweepToEnd marks an unbounded upper range limit: sweepSeq clamps it
// to the spec's cell count.
const sweepToEnd = int(^uint(0) >> 1)

// defaultOracles builds the paper-bound suite against the engine's
// current catalog state — always called after the sweep pre-pass, so
// the bounds judge the sequence lengths the cells actually ran under.
func (e *Engine) defaultOracles() []SweepOracle {
	return campaign.DefaultOracles(e.BoundModel())
}

// sweepReport folds the streaming sweep into an aggregate report (the
// order-independent fold that makes Sweep and SweepStream agree).
func (e *Engine) sweepReport(ctx context.Context, spec SweepSpec, mkOracles func() []SweepOracle) (*SweepReport, error) {
	agg := campaign.NewAggregator(spec, nil)
	for cr, err := range e.sweepSeq(ctx, spec, 0, sweepToEnd, mkOracles) {
		if err != nil {
			return nil, err
		}
		agg.Add(cr)
	}
	return agg.Report(), nil
}

// sweepPrepass warms build + coverage for each unique graph of the
// spec, in axis order, before any run is in flight — so no catalog
// extension lands mid-sweep (the invariant RunBatch establishes with
// its sequential pre-flight). Build failures are not errors here: the
// cells of a broken axis each report Invalid, judged by the
// termination oracle.
func (e *Engine) sweepPrepass(spec SweepSpec) {
	gspecs, err := sweepGraphSpecs(spec)
	if err != nil {
		return
	}
	for _, gs := range gspecs {
		if e.usePrepCache {
			if pg := e.preparedFor(gs); pg.buildErr == nil {
				pg.cover(e, gs) //nolint:errcheck // memoized; cells report it
			}
		} else if g, err := gs.Build(); err == nil {
			e.ensureCovered(g, gs.String()) //nolint:errcheck // re-derived per cell
		}
	}
}

// sweepSeq is the streaming sweep pipeline behind Sweep, SweepStream,
// SweepStreamRange and their WithOracles variants: cells of [lo, hi)
// are expanded one at a time into a bounded channel, each worker
// prepares (through the prepared-scenario cache), executes and
// oracle-judges its cell inline, and the judged results are yielded to
// the consumer as they complete — a million-cell campaign runs in
// memory proportional to the worker pool, not the cell count. mkOracles
// runs after the graph pre-pass, so suites derived from the engine's
// catalog (the default) bind to the catalog state every cell executes
// under — and the pre-pass deliberately covers the WHOLE spec even for
// a partial range, so shards and resumed slices all judge against the
// same catalog state.
func (e *Engine) sweepSeq(ctx context.Context, spec SweepSpec, lo, hi int, mkOracles func() []SweepOracle) iter.Seq2[SweepCellResult, error] {
	return func(yield func(SweepCellResult, error) bool) {
		runCtx := ctx
		if runCtx == nil {
			runCtx = context.Background()
		}
		total, err := CountSweep(spec)
		if err != nil {
			yield(SweepCellResult{}, err)
			return
		}
		if lo < 0 || hi < lo {
			yield(SweepCellResult{}, fmt.Errorf("sweep: invalid cell range [%d, %d): %w", lo, hi, ErrInvalidScenario))
			return
		}
		if hi > total {
			hi = total
		}
		if lo > total {
			lo = total
		}
		e.sweepPrepass(spec)
		oracles := mkOracles()
		workers := e.parallelism
		if workers > hi-lo {
			workers = hi - lo
		}
		if workers < 1 {
			workers = 1
		}
		// stop tears the pipeline down when the consumer breaks out of
		// the range early: the producer quits, and workers abandon
		// results nobody will read.
		stop := make(chan struct{})
		defer close(stop)
		workCh := make(chan sweepWork, 2*workers)
		resCh := make(chan SweepCellResult, 2*workers)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for work := range workCh {
					if work.batch != nil {
						for _, cr := range e.runCellBatch(runCtx, work.batch, oracles) {
							select {
							case resCh <- cr:
							case <-stop:
								return
							}
						}
						continue
					}
					cr := e.runCell(runCtx, work.cell, oracles)
					select {
					case resCh <- cr:
					case <-stop:
						return
					}
				}
			}()
		}
		go func() {
			defer close(workCh)
			// Batched-tier grouping: batchable cells sharing one (kind,
			// graph) key arrive contiguously under the campaign walk's
			// axis order, so a single pending batch plus a flush on key
			// change groups them without any map state.
			batching := e.batchEligible()
			var (
				pending []SweepCell
				pendKey batchKey
			)
			flush := func() bool {
				if len(pending) == 0 {
					return true
				}
				w := sweepWork{batch: pending}
				pending = nil
				select {
				case workCh <- w:
					return true
				case <-stop:
					return false
				}
			}
			// The walk only fails on validation errors, which CountSweep
			// and the range check ruled out above.
			WalkSweepRange(spec, lo, hi, func(c SweepCell) bool { //nolint:errcheck // validated above
				if batching && batchableKind(ScenarioKind(c.Kind)) {
					key := batchKey{kind: c.Kind, graph: cellGraphSpec(c)}
					if len(pending) > 0 && (key != pendKey || len(pending) >= sweepBatchSize) {
						if !flush() {
							return false
						}
					}
					pendKey = key
					pending = append(pending, c)
					return true
				}
				if !flush() {
					return false
				}
				select {
				case workCh <- sweepWork{cell: c}:
					return true
				case <-stop:
					return false
				}
			})
			flush()
		}()
		go func() {
			wg.Wait()
			close(resCh)
		}()
		for cr := range resCh {
			if !yield(cr, nil) {
				return
			}
		}
	}
}

// runCell prepares, executes and oracle-judges one sweep cell — the
// worker body of the streaming pipeline, and exactly the sequence
// ReplayCell performs for one seed string.
func (e *Engine) runCell(ctx context.Context, cell SweepCell, oracles []SweepOracle) SweepCellResult {
	// Telemetry brackets the cell (wall-time histogram, begin/end trace
	// spans); the timestamps live on the telemetry clock and annotate
	// the run without ever entering its result.
	var start int64
	if e.tele != nil || e.cellTrace != nil {
		start = telemetry.Now()
	}
	if e.cellTrace != nil {
		e.cellTrace(CellTraceEvent{Phase: "begin", Index: cell.Index, ID: cell.ID,
			Seed: cell.Seed, Kind: cell.Kind, Graph: cellGraphSpec(cell).String(), AtNs: start})
	}
	sc := CellScenario(cell)
	br := BatchResult{Index: cell.Index, Scenario: sc}
	g, adv, routes, err := e.prepare(sc)
	if err != nil {
		br.Err = err
	} else {
		br.Graph = g
		br.Result, br.Err = e.runPrepared(ctx, sc, g, adv, routes)
	}
	cr := e.judge(cell, br, oracles)
	if e.tele != nil {
		e.tele.cellWall.ObserveSince(start)
	}
	if e.cellTrace != nil {
		e.cellTrace(CellTraceEvent{Phase: "end", Index: cell.Index, ID: cell.ID,
			Seed: cell.Seed, Kind: cell.Kind, Graph: cellGraphSpec(cell).String(),
			AtNs: telemetry.Now(), WallNs: telemetry.Since(start),
			Met: cr.Outcome.Met, Failed: len(cr.Failures) > 0})
	}
	return cr
}

// judge classifies one batch result and runs the oracle suite over it.
func (e *Engine) judge(cell SweepCell, br BatchResult, oracles []SweepOracle) SweepCellResult {
	out := sweepOutcome(cell, br)
	cr := SweepCellResult{Cell: cell, Outcome: out}
	for _, o := range oracles {
		if err := o.Check(cell, out); err != nil {
			cr.Failures = append(cr.Failures, campaign.OracleFailure{Oracle: o.Name(), Err: err.Error()})
		}
	}
	if e.tele != nil {
		e.tele.observeJudge(cell, cr)
	}
	return cr
}

// ReplayCell re-derives the single cell a replay seed string identifies
// (spec must be the campaign it came from), executes it, and re-checks
// the default oracle suite — the one-seed-string reproduction loop for
// sweep failures. Use ReplayCellWithOracles to reproduce a failure of a
// custom suite.
func (e *Engine) ReplayCell(ctx context.Context, spec SweepSpec, seed string) (*SweepCellResult, error) {
	// Like Sweep, the default suite binds after the run's preparation:
	// replaying a cell whose graph extends the catalog must judge
	// against the post-extension sequence lengths the run used.
	return e.replayCell(ctx, spec, seed, e.defaultOracles)
}

// ReplayCellWithOracles is ReplayCell with an explicit oracle suite.
func (e *Engine) ReplayCellWithOracles(ctx context.Context, spec SweepSpec, seed string, oracles ...SweepOracle) (*SweepCellResult, error) {
	return e.replayCell(ctx, spec, seed, func() []SweepOracle { return oracles })
}

func (e *Engine) replayCell(ctx context.Context, spec SweepSpec, seed string, mkOracles func() []SweepOracle) (*SweepCellResult, error) {
	cell, err := campaign.Replay(spec, seed)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrInvalidScenario)
	}
	sc := CellScenario(cell)
	res, runErr := e.Run(ctx, sc)
	cr := e.judge(cell, BatchResult{Index: cell.Index, Scenario: sc, Result: res, Err: runErr}, mkOracles())
	return &cr, nil
}
