package meetpoly

import (
	"math/big"
	"testing"

	"meetpoly/internal/labels"
	"meetpoly/internal/sgl"
)

func TestFacadeRendezvous(t *testing.T) {
	env := NewEnv(5, 1)
	g := Path(4)
	res, err := Rendezvous(g, 0, 3, 2, 5, env, nil, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("facade rendezvous did not meet")
	}
	if res.Bound.Sign() <= 0 {
		t.Error("non-positive bound")
	}
}

func TestFacadeBaseline(t *testing.T) {
	env := NewEnv(4, 1)
	res, err := BaselineRendezvous(Path(2), 0, 1, 1, 2, env, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("baseline did not meet")
	}
}

func TestFacadeCertify(t *testing.T) {
	env := NewEnv(4, 1)
	res, err := Certify(Path(2), 0, 1, 1, 2, env, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Forced {
		t.Error("2-path rendezvous should be certified forced")
	}
}

func TestFacadeESST(t *testing.T) {
	env := NewEnv(5, 1)
	res, err := ESSTExplore(Ring(5), 0, 2, env, nil, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || !res.Covered {
		t.Errorf("ESST done=%v covered=%v", res.Done, res.Covered)
	}
}

func TestFacadeSGL(t *testing.T) {
	env := NewEnv(5, 1)
	res, err := SGL(SGLConfig{
		Graph:    Path(4),
		Starts:   []int{0, 3},
		Labels:   []Label{1, 5},
		Env:      env,
		MaxSteps: 20_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllOutput {
		t.Error("SGL incomplete")
	}
	if res.Agents[0].Leader != 1 {
		t.Errorf("leader = %d", res.Agents[0].Leader)
	}
}

func TestFacadePiBoundAndCostModel(t *testing.T) {
	env := NewEnv(4, 1)
	b := PiBound(env, 3, 2, 9)
	if b.Sign() <= 0 {
		t.Error("PiBound non-positive")
	}
	m := CostModel(1, 3)
	if m.Pi(4, 2).Cmp(big.NewInt(0)) <= 0 {
		t.Error("CostModel Pi non-positive")
	}
}

func TestFacadeEnsureFor(t *testing.T) {
	env := NewEnv(4, 1)
	g := Complete(4)
	EnsureFor(env, g) // Complete(4) is already in the family: no-op
	shuffled := ShufflePorts(Star(4), 99)
	EnsureFor(env, shuffled)
	res, err := Rendezvous(shuffled, 0, 2, 1, 2, env, RandomAdversary(5), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Error("no meeting on extended-family graph")
	}
}

func TestFacadeAdversaries(t *testing.T) {
	if RoundRobin() == nil || Avoider() == nil || RandomAdversary(1) == nil {
		t.Error("nil adversary constructors")
	}
}

func TestFacadeTypesAlias(t *testing.T) {
	var l Label = 5
	if l.Len() != labels.Label(5).Len() {
		t.Error("Label alias broken")
	}
	var cfg SGLConfig
	cfg.Phase2Budget = sgl.PracticalBudget(2)
	if cfg.Phase2Budget(10, 1) != 22 {
		t.Error("SGLConfig alias broken")
	}
	if Version == "" {
		t.Error("empty version")
	}
}
