package sched

import (
	"errors"
	"fmt"
)

// WorstSchedule reconstructs, from the same lattice game Certify solves,
// an explicit worst-case schedule: the sequence of half-steps (agent 0 or
// agent 1) that survives as long as any schedule can and then walks into
// the latest possible forced meeting. It exists so that the certified
// worst case is not merely a number but an executable adversary —
// replaying the schedule through the runner must reproduce the certified
// meeting cost exactly (asserted by tests).
//
// It returns the schedule and the certified result. An error is returned
// when no meeting is forced within the prefixes (no worst case to
// realize).
func WorstSchedule(routeA, routeB []int) ([]int, CertResult, error) {
	res, err := Certify(routeA, routeB)
	if err != nil {
		return nil, CertResult{}, err
	}
	if !res.Forced {
		return nil, res, errors.New("sched: no meeting forced within these prefixes")
	}
	pb := 2 * (len(routeA) - 1)
	qb := 2 * (len(routeB) - 1)

	blocked := func(p, q int) bool {
		if p%2 == 0 && q%2 == 0 {
			return routeA[p/2] == routeB[q/2]
		}
		if p%2 == 1 && q%2 == 1 {
			i, j := (p-1)/2, (q-1)/2
			return routeA[i] == routeB[j+1] && routeA[i+1] == routeB[j]
		}
		return false
	}

	// Full reachability grid (Certify itself uses two rows; the
	// reconstruction needs it all). One bit per cell.
	w := pb + 1
	h := qb + 1
	reach := make([]uint64, (w*h+63)/64)
	get := func(p, q int) bool {
		idx := q*w + p
		return reach[idx/64]>>(uint(idx)%64)&1 == 1
	}
	set := func(p, q int) {
		idx := q*w + p
		reach[idx/64] |= 1 << (uint(idx) % 64)
	}
	for q := 0; q <= qb; q++ {
		for p := 0; p <= pb; p++ {
			from := p == 0 && q == 0 ||
				(p > 0 && get(p-1, q)) || (q > 0 && get(p, q-1))
			if from && !blocked(p, q) {
				set(p, q)
			}
		}
	}

	// The target: the blocked cell with the highest meeting cost that has
	// a reachable predecessor.
	bestP, bestQ, bestCost := -1, -1, -1
	for q := 0; q <= qb; q++ {
		for p := 0; p <= pb; p++ {
			if !blocked(p, q) {
				continue
			}
			if (p > 0 && get(p-1, q)) || (q > 0 && get(p, q-1)) {
				if cost := p/2 + q/2; cost > bestCost {
					bestP, bestQ, bestCost = p, q, cost
				}
			}
		}
	}
	if bestCost != res.WorstCompleted {
		// The two passes disagree only on a bug; fail loudly.
		panic(fmt.Sprintf("sched: reconstruction found worst %d, certifier %d",
			bestCost, res.WorstCompleted))
	}

	// Walk back from the target through reachable predecessors.
	var rev []int
	p, q := bestP, bestQ
	// First, the final step into the blocked cell.
	switch {
	case p > 0 && get(p-1, q):
		rev = append(rev, 0)
		p--
	case q > 0 && get(p, q-1):
		rev = append(rev, 1)
		q--
	}
	for p > 0 || q > 0 {
		if p > 0 && get(p-1, q) {
			rev = append(rev, 0)
			p--
			continue
		}
		if q > 0 && get(p, q-1) {
			rev = append(rev, 1)
			q--
			continue
		}
		panic("sched: broken predecessor chain in worst-case reconstruction")
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, res, nil
}

// ScheduleAdversary replays a fixed half-step schedule: schedule[i] is
// the index of the agent advanced at event i. It wakes all agents first
// and rests when the schedule is exhausted.
type ScheduleAdversary struct {
	Schedule []int
	pos      int
}

var _ Adversary = (*ScheduleAdversary)(nil)

// Next implements Adversary.
func (s *ScheduleAdversary) Next(v *View) (Event, bool) {
	for i, n := 0, v.K(); i < n; i++ {
		if v.CanWake(i) {
			return Event{Kind: EventWake, Agent: i}, true
		}
	}
	for s.pos < len(s.Schedule) {
		agent := s.Schedule[s.pos]
		s.pos++
		if v.CanAdvance(agent) {
			return Event{Kind: EventAdvance, Agent: agent}, true
		}
		// The scheduled agent halted (e.g. rendezvous achieved): the
		// remaining schedule is moot.
		return Event{}, false
	}
	return Event{}, false
}
