package sched

import (
	"context"
	"testing"

	"meetpoly/internal/graph"
	"meetpoly/internal/trajectory"
)

// badPort is a stepper that commits an out-of-range port on its second
// decision: the canonical mid-run panic (commit calls invalidPort).
type badPort struct{ calls int }

func (b *badPort) Next(deg, entry int) (int, bool) {
	b.calls++
	if b.calls > 1 {
		return 99, true
	}
	return 0, true
}

var _ trajectory.Stepper = (*badPort)(nil)

// scrubbedRunScratch asserts the pooled scratch retains no references
// to a previous tenant's agents over its FULL capacity — the live
// prefix and the capacity tail beyond it alike.
func scrubbedRunScratch(t *testing.T, s *runScratch) {
	t.Helper()
	for i, st := range s.states[:cap(s.states)] {
		if st.agent != nil || st.stepper != nil || st.proc != nil {
			t.Errorf("pooled scratch states[%d] retains agent references: %+v", i, st)
		}
	}
	for i, p := range s.ptrs[:cap(s.ptrs)] {
		if p != nil {
			t.Errorf("pooled scratch ptrs[%d] retains an agent-state pointer", i)
		}
	}
}

// TestCloseScrubsScratch runs a three-agent simulation and checks that
// Close zeroes every agent reference in the pooled scratch — including
// capacity beyond the next tenant's live prefix, where a stale pointer
// would silently pin agents (and everything they reference) in memory.
func TestCloseScrubsScratch(t *testing.T) {
	r, err := NewRunner(Config{
		Graph:  graph.Ring(6),
		Starts: []int{0, 2, 4},
		Agents: []Agent{
			&Walker{Stepper: script(0, 0)},
			&Walker{Stepper: script(0, 0)},
			&Walker{Stepper: script(0, 0)},
		},
		InitiallyAwake: []int{0, 1, 2},
		MaxSteps:       50,
	}, &RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	s := r.scratch
	r.Run()
	r.Close()
	scrubbedRunScratch(t, s)
}

// TestRunnerPanicPathReturnsScratch is the satellite panic-path test:
// an agent panicking mid-run (invalid port) unwinds through Run, and
// the deferred Close must still return the scratch to the pool —
// scrubbed — so the panic neither leaks the buffers nor poisons the
// next tenant. A follow-up run on the same pool must be unaffected.
func TestRunnerPanicPathReturnsScratch(t *testing.T) {
	var s *runScratch
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the invalid-port panic")
			}
		}()
		r, err := NewRunner(Config{
			Graph:  graph.Ring(6),
			Starts: []int{0, 3},
			Agents: []Agent{
				&Walker{Stepper: &badPort{}},
				&Walker{Stepper: script(0, 0, 0, 0)},
			},
			InitiallyAwake: []int{0, 1},
			MaxSteps:       100,
		}, &RoundRobin{})
		if err != nil {
			t.Fatal(err)
		}
		s = r.scratch
		defer r.Close()
		r.Run()
	}()
	scrubbedRunScratch(t, s)
	// The pool is usable afterwards: a normal run over recycled scratch
	// behaves exactly as on fresh buffers.
	r, err := NewRunner(Config{
		Graph:  graph.Ring(6),
		Starts: []int{0, 3},
		Agents: []Agent{
			&Walker{Stepper: script(0, 0, 0), StopAtMeeting: true},
			&Walker{Stepper: script(1, 1, 1), StopAtMeeting: true},
		},
		InitiallyAwake:     []int{0, 1},
		StopAtFirstMeeting: true,
		MaxSteps:           100,
	}, &RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if sum := r.Run(); sum.FirstMeeting == nil {
		t.Errorf("post-panic run on recycled scratch found no meeting: %+v", sum)
	}
}

// TestNewRunnerErrorPathsPrecedeScratch pins the NewRunner ordering
// invariant: every validation error (InitiallyAwake out of range
// included — the one that used to fire after the pool Get and leak the
// scratch) returns before any pooled state is acquired.
func TestNewRunnerErrorPathsPrecedeScratch(t *testing.T) {
	base := func() Config {
		return Config{
			Graph:  graph.Ring(5),
			Starts: []int{0, 2},
			Agents: []Agent{
				&Walker{Stepper: script(0)},
				&Walker{Stepper: script(0)},
			},
			MaxSteps: 10,
		}
	}
	cases := map[string]func(*Config){
		"awake out of range": func(c *Config) { c.InitiallyAwake = []int{2} },
		"awake negative":     func(c *Config) { c.InitiallyAwake = []int{-1} },
		"duplicate starts":   func(c *Config) { c.Starts = []int{1, 1} },
		"zero budget":        func(c *Config) { c.MaxSteps = 0 },
	}
	for name, mut := range cases {
		cfg := base()
		mut(&cfg)
		r, err := NewRunner(cfg, &RoundRobin{})
		if err == nil {
			r.Close()
			t.Errorf("%s: NewRunner accepted an invalid config", name)
		}
	}
}

// TestBatchCloseScrubsScratch is the batch analogue: after Close, the
// pooled batchScratch holds no agent, adversary, view or meeting
// references anywhere in its capacity.
func TestBatchCloseScrubsScratch(t *testing.T) {
	b, err := NewBatchRunner(context.Background(), graph.Ring(6))
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 4; l++ {
		if _, err := b.AddLane(LaneConfig{
			Starts:             [2]int{0, 3},
			Agents:             [2]Stepper{&Walker{Stepper: script(0, 0, 0), StopAtMeeting: true}, &Walker{Stepper: script(0, 0, 0), StopAtMeeting: true}},
			Adversary:          &RoundRobin{},
			MaxSteps:           100,
			StopAtFirstMeeting: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := b.scratch
	b.Run()
	b.Close()
	for i, st := range s.states[:cap(s.states)] {
		if st.agent != nil || st.stepper != nil {
			t.Errorf("pooled batch scratch states[%d] retains agent references", i)
		}
	}
	for i, p := range s.ptrs[:cap(s.ptrs)] {
		if p != nil {
			t.Errorf("pooled batch scratch ptrs[%d] retains a pointer", i)
		}
	}
	for i, v := range s.views[:cap(s.views)] {
		if v.agents != nil || v.dormant != nil || v.g != nil {
			t.Errorf("pooled batch scratch views[%d] retains view state", i)
		}
	}
	for i, a := range s.advs[:cap(s.advs)] {
		if a != nil {
			t.Errorf("pooled batch scratch advs[%d] retains an adversary", i)
		}
	}
	for i, m := range s.meetings[:cap(s.meetings)] {
		if m != nil {
			t.Errorf("pooled batch scratch meetings[%d] retains meeting slices", i)
		}
	}
}
