package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meetpoly"
	"meetpoly/internal/campaign"
	"meetpoly/internal/faultinject"
)

// serveSpec is the campaign the service tests run: 48 cells over 3
// unique graphs, small enough to execute in milliseconds but large
// enough that a FlushEvery-8 crash leaves real gaps to resume.
func serveSpec() meetpoly.SweepSpec {
	return meetpoly.SweepSpec{
		Name:  "serve",
		Seed:  "serve-v1",
		Kinds: []string{"rendezvous", "esst"},
		Graphs: []meetpoly.SweepGraphAxis{
			{Kind: "path", Sizes: []int{3, 4}},
			{Kind: "ring", Sizes: []int{4}},
		},
		StartPairs:  2,
		LabelPairs:  2,
		Adversaries: []string{"", "avoider"},
		Budget:      3000,
		Moves:       60,
	}
}

const serveSpecGraphs = 3 // unique graphs serveSpec expands to

func newServeEngine() *meetpoly.Engine {
	return meetpoly.NewEngine(meetpoly.WithMaxN(6), meetpoly.WithSeed(1))
}

// referenceReport is the uninterrupted single-process truth every
// resumed/sharded run must reproduce byte-identically, in the exact
// encoding `rvsweep -json` and /v1/sweep/report emit.
func referenceReport(t *testing.T) []byte {
	t.Helper()
	rep, err := newServeEngine().Sweep(context.Background(), serveSpec())
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func reportBytes(t *testing.T, rep *meetpoly.SweepReport) []byte {
	t.Helper()
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestRunShardCrashResume is the crash/resume equivalence test: a shard
// killed mid-campaign (after two durable flushes, no clean shutdown)
// restarts in the same checkpoint dir and must (a) produce the
// byte-identical report an uninterrupted run produces, and (b) not
// re-execute a single sealed cell — proven by a counting hook on fresh
// executions plus the engine's cache accounting.
func TestRunShardCrashResume(t *testing.T) {
	ctx := context.Background()
	spec := serveSpec()
	total, err := meetpoly.CountSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceReport(t)
	dir := t.TempDir()

	// Run 1: crash after the second flush (16 cells sealed of 48). The
	// checkpoint is abandoned mid-flight — no final flush, no close —
	// the in-process equivalent of kill -9, scheduled by the fault
	// injector the chaos harness uses.
	crashed := 0
	_, err = RunShard(ctx, ShardConfig{
		Engine: newServeEngine(), Spec: spec, Dir: dir,
		FlushEvery: 8, Faults: faultinject.MustNew("kill=2"),
		onCellRun: func(int) { crashed++ },
	}, func(meetpoly.SweepCellResult) bool { return true })
	if !errors.Is(err, faultinject.ErrKilled) {
		t.Fatalf("crash run returned %v, want injected kill", err)
	}
	if crashed >= total {
		t.Fatalf("crash run executed all %d cells; crash point never interrupted it", crashed)
	}

	// Inspect the durable state the crash left behind.
	cp, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	sealed := cp.Completed()
	recovered := len(cp.Recovered())
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if sealed.Len() != 16 {
		t.Fatalf("crash sealed %d cells, want 16 (2 flushes of 8)", sealed.Len())
	}
	if recovered != 16 {
		t.Fatalf("recovery loaded %d results, want 16", recovered)
	}
	gaps := sealed.Gaps(0, total)

	// Run 2: resume on a fresh engine (a restarted process has cold
	// caches). Every sealed cell must replay from the log, never rerun.
	resumeEng := newServeEngine()
	var executed campaign.IndexSet
	rep, err := RunShard(ctx, ShardConfig{
		Engine: resumeEng, Spec: spec, Dir: dir, FlushEvery: 8,
		onCellRun: func(i int) {
			if !executed.Add(i) {
				t.Errorf("cell %d executed twice in one run", i)
			}
			if sealed.Contains(i) {
				t.Errorf("sealed cell %d re-executed after resume", i)
			}
		},
	}, func(meetpoly.SweepCellResult) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if executed.Len() != total-16 {
		t.Fatalf("resume executed %d cells, want %d", executed.Len(), total-16)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("resumed report diverges from uninterrupted run:\n got %s\nwant %s", got, want)
	}

	// Cache accounting corroborates the hook: the full-spec pre-pass
	// builds each unique graph exactly once (misses); each freshly
	// executed cell hits, plus one warm pre-pass per extra gap.
	st := resumeEng.CacheStats()
	if st.Misses != serveSpecGraphs {
		t.Errorf("resume engine cache misses = %d, want %d (one build per unique graph)", st.Misses, serveSpecGraphs)
	}
	wantHits := int64(total-16) + int64(serveSpecGraphs*(len(gaps)-1))
	if st.Hits != wantHits {
		t.Errorf("resume engine cache hits = %d, want %d (%d fresh cells + %d warm pre-passes over %d gaps)",
			st.Hits, wantHits, total-16, len(gaps)-1, len(gaps))
	}

	// Run 3: the campaign is complete; another run replays everything
	// and executes nothing.
	rep3, err := RunShard(ctx, ShardConfig{
		Engine: newServeEngine(), Spec: spec, Dir: dir,
		onCellRun: func(i int) { t.Errorf("completed campaign re-executed cell %d", i) },
	}, func(meetpoly.SweepCellResult) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep3); !bytes.Equal(got, want) {
		t.Fatalf("replayed report diverges from uninterrupted run")
	}
}

// TestRunShardPartition: n shards with disjoint checkpoint dirs fold
// into the uninterrupted single-process report, and each shard stays
// inside its index range.
func TestRunShardPartition(t *testing.T) {
	ctx := context.Background()
	spec := serveSpec()
	total, err := meetpoly.CountSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceReport(t)

	for _, of := range []int{2, 3} {
		agg := campaign.NewAggregator(spec, nil)
		var seen campaign.IndexSet
		for shard := 0; shard < of; shard++ {
			lo, hi := shard*total/of, (shard+1)*total/of
			_, err := RunShard(ctx, ShardConfig{
				Engine: newServeEngine(), Spec: spec,
				Shard: shard, Of: of,
				Dir: filepath.Join(t.TempDir(), "cp"),
			}, func(cr meetpoly.SweepCellResult) bool {
				if cr.Cell.Index < lo || cr.Cell.Index >= hi {
					t.Fatalf("shard %d/%d emitted out-of-range cell %d", shard, of, cr.Cell.Index)
				}
				if !seen.Add(cr.Cell.Index) {
					t.Fatalf("cell %d emitted by two shards", cr.Cell.Index)
				}
				agg.Add(cr)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if seen.Len() != total {
			t.Fatalf("%d shards emitted %d cells, want %d", of, seen.Len(), total)
		}
		if got := reportBytes(t, agg.Report()); !bytes.Equal(got, want) {
			t.Fatalf("%d-shard merged report diverges from single-process run", of)
		}
	}
}

// TestRunShardInvalid covers the config rejections.
func TestRunShardInvalid(t *testing.T) {
	emit := func(meetpoly.SweepCellResult) bool { return true }
	for _, c := range []struct{ shard, of int }{{1, 1}, {-1, 2}, {2, 2}, {0, -1}} {
		cfg := ShardConfig{Engine: newServeEngine(), Spec: serveSpec(), Shard: c.shard, Of: c.of}
		if _, err := RunShard(context.Background(), cfg, emit); err == nil {
			t.Errorf("shard %d of %d accepted, want error", c.shard, c.of)
		}
	}
}

// TestRunShardEmitStop: the consumer breaking the stream stops the run
// with ErrStopped and keeps whatever was already sealed.
func TestRunShardEmitStop(t *testing.T) {
	dir := t.TempDir()
	n := 0
	_, err := RunShard(context.Background(), ShardConfig{
		Engine: newServeEngine(), Spec: serveSpec(), Dir: dir, FlushEvery: 4,
	}, func(meetpoly.SweepCellResult) bool { n++; return n < 10 })
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped run returned %v, want ErrStopped", err)
	}
	if n != 10 {
		t.Fatalf("emit saw %d results after stop at 10", n)
	}
}

func syntheticResult(i int) meetpoly.SweepCellResult {
	return meetpoly.SweepCellResult{
		Cell:    meetpoly.SweepCell{Index: i, ID: "synth", Seed: campaign.CellSeed("synth", i)},
		Outcome: meetpoly.SweepOutcome{Met: true, Cost: i},
	}
}

// TestCheckpointRecovery exercises the durable log's crash edges
// directly: torn tails on both files, and a result that hit disk whose
// sealing range did not.
func TestCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	cp, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := cp.Record(syntheticResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}
	// A result appended without its range sealed (crash between the two
	// fsyncs) plus torn tails on both logs — all at once.
	unsealed, _ := json.Marshal(syntheticResult(7))
	appendFile(t, filepath.Join(dir, resultsFile), string(unsealed)+"\n{\"cell\":{\"ind")
	appendFile(t, filepath.Join(dir, rangesFile), "9 ")
	cp.abandon()

	cp2, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if got := cp2.Completed().Ranges(); len(got) != 1 || got[0] != (campaign.Interval{Lo: 0, Hi: 5}) {
		t.Fatalf("recovered sealed ranges %+v, want [{0 5}]", got)
	}
	if got := len(cp2.Recovered()); got != 5 {
		t.Fatalf("recovered %d results, want 5 (the unsealed one must be dropped)", got)
	}
	for _, cr := range cp2.Recovered() {
		if cr.Cell.Index == 7 {
			t.Fatal("result outside any sealed range was trusted")
		}
	}
	// Both torn tails must have been truncated so appends stay clean.
	for _, f := range []string{resultsFile, rangesFile} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 && data[len(data)-1] != '\n' {
			t.Errorf("%s still ends mid-line after recovery", f)
		}
	}
	// And the reopened checkpoint keeps working: seal one more cell and
	// recover all six.
	if err := cp2.Record(syntheticResult(5)); err != nil {
		t.Fatal(err)
	}
	if err := cp2.Flush(); err != nil {
		t.Fatal(err)
	}
	cp3, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cp3.Close()
	if got := len(cp3.Recovered()); got != 6 {
		t.Fatalf("after post-recovery append, recovered %d results, want 6", got)
	}
}

func appendFile(t *testing.T, path, s string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := io.WriteString(f, s); err != nil {
		t.Fatal(err)
	}
}

// TestServerSweepEndpoints drives the HTTP surface end to end: the
// NDJSON stream yields every cell plus a done trailer, and the report
// endpoint's bytes diff clean against a local single-process run.
func TestServerSweepEndpoints(t *testing.T) {
	spec := serveSpec()
	total, err := meetpoly.CountSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceReport(t)
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	srv := New(Config{Engine: newServeEngine(), CheckpointRoot: t.TempDir()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != total+1 {
		t.Fatalf("stream has %d lines, want %d cells + 1 trailer", len(lines), total)
	}
	var seen campaign.IndexSet
	for _, line := range lines[:total] {
		var cr meetpoly.SweepCellResult
		if err := json.Unmarshal([]byte(line), &cr); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if !seen.Add(cr.Cell.Index) {
			t.Fatalf("cell %d streamed twice", cr.Cell.Index)
		}
	}
	var trailer streamTrailer
	if err := json.Unmarshal([]byte(lines[total]), &trailer); err != nil {
		t.Fatal(err)
	}
	if !trailer.Done || trailer.Cells != total || trailer.Error != "" {
		t.Fatalf("trailer %+v, want done with %d cells", trailer, total)
	}

	// The report endpoint replays the checkpointed campaign — nothing
	// re-executes — and must still match the local run byte-for-byte.
	resp2, err := http.Post(ts.URL+"/v1/sweep/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	got, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("report status %d: %s", resp2.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served report diverges from local run:\n got %s\nwant %s", got, want)
	}
}

// TestServerBudgetResume: a request whose budget expires mid-campaign
// still ends cleanly (canceled cells are data), nothing canceled is
// checkpointed, and an unbudgeted follow-up request completes the
// campaign to the byte-identical uninterrupted report.
func TestServerBudgetResume(t *testing.T) {
	spec := serveSpec()
	want := referenceReport(t)
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Engine: newServeEngine(), CheckpointRoot: t.TempDir()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sweep?budget_ms=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted stream status %d", resp.StatusCode)
	}

	resp2, err := http.Post(ts.URL+"/v1/sweep/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	got, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-budget resume diverges from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

// TestServerAdmission covers the refusal matrix: per-tenant quota
// (429), checkpoint-dir collision (409), drain (503), and release
// restoring capacity.
func TestServerAdmission(t *testing.T) {
	srv := New(Config{Engine: newServeEngine(), MaxTenantSweeps: 1})

	rel1 := srv.admit(httptest.NewRecorder(), "alice", "camp-a")
	if rel1 == nil {
		t.Fatal("first admit refused")
	}
	w := httptest.NewRecorder()
	if srv.admit(w, "alice", "camp-b") != nil || w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota admit: got release=%v code=%d, want 429 refusal", false, w.Code)
	}
	w = httptest.NewRecorder()
	if srv.admit(w, "bob", "camp-a") != nil || w.Code != http.StatusConflict {
		t.Fatalf("same-checkpoint admit: code=%d, want 409", w.Code)
	}
	if rel2 := srv.admit(httptest.NewRecorder(), "bob", "camp-b"); rel2 == nil {
		t.Fatal("independent tenant+campaign refused")
	} else {
		rel2()
	}
	rel1()
	if rel := srv.admit(httptest.NewRecorder(), "alice", "camp-a"); rel == nil {
		t.Fatal("admit refused after release")
	} else {
		rel()
	}

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	if srv.admit(w, "carol", "camp-c") != nil || w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining admit: code=%d, want 503", w.Code)
	}
}

// TestServerRejects covers the request-shape refusals.
func TestServerRejects(t *testing.T) {
	srv := New(Config{Engine: newServeEngine(), MaxCells: 10})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	specJSON, _ := json.Marshal(serveSpec())

	if code := post("/v1/sweep", "{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", code)
	}
	if code := post("/v1/sweep", `{"seed":""}`); code != http.StatusBadRequest {
		t.Errorf("invalid spec: %d, want 400", code)
	}
	if code := post("/v1/sweep", string(specJSON)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("over MaxCells: %d, want 413", code)
	}
	small := serveSpec()
	small.Kinds = []string{"rendezvous"}
	small.Graphs = []meetpoly.SweepGraphAxis{{Kind: "path", Sizes: []int{3}}}
	small.StartPairs, small.LabelPairs = 1, 1
	small.Adversaries = []string{""}
	smallJSON, _ := json.Marshal(small)
	if code := post("/v1/sweep?budget_ms=nope", string(smallJSON)); code != http.StatusBadRequest {
		t.Errorf("bad budget_ms: %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET sweep: %d, want 405", resp.StatusCode)
	}
}

// TestServerDrainLifecycle: healthz flips to 503 on drain, sweeps are
// refused, and Drain returns once in-flight work ends.
func TestServerDrainLifecycle(t *testing.T) {
	srv := New(Config{Engine: newServeEngine()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", code)
	}
	if code := get("/v1/stats"); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d, want 503", code)
	}
	specJSON, _ := json.Marshal(serveSpec())
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep after drain: %d, want 503", resp.StatusCode)
	}
}
