package campaign

import (
	"fmt"
	"sync"

	"meetpoly/internal/costmodel"
)

// Outcome is the engine-agnostic record of one executed cell: what the
// run achieved, what it cost, and how it ended. The root package fills
// it from the engine's typed results; oracles judge it against the
// paper's bounds.
type Outcome struct {
	// N and M are the executed graph's node and edge counts.
	N int `json:"n"`
	M int `json:"m"`

	// Met reports that the run reached its kind's goal: a meeting
	// (rendezvous/baseline), full exploration (esst), all agents output
	// (sgl), or a completed certification (certify).
	Met bool `json:"met"`
	// Consistent is false when a met run violated a semantic invariant
	// of its algorithm (e.g. ESST Done without edge coverage, SGL
	// agents disagreeing on the leader); Detail names the violation.
	Consistent bool   `json:"consistent"`
	Detail     string `json:"detail,omitempty"`

	// Cost is the goal cost in the paper's measure: total completed
	// edge traversals at the meeting (rendezvous/baseline), the
	// explorer's traversals (esst), the team total (sgl), or the
	// certifier's worst completed cost (certify). For runs that missed
	// their goal it is the cost when the run ended.
	Cost int `json:"cost"`
	// Steps is the number of adversary events the run executed (0 for
	// certify, which ranges over schedules instead of executing one).
	// Reports sum it into Events, the denominator of steady-state
	// allocation and throughput accounting.
	Steps int `json:"steps,omitempty"`
	// MaxPerAgent is the largest single agent's traversal count — the
	// quantity Π(n, ℓ) bounds directly. Per-agent detail stays on the
	// engine result's Summary.Traversals.
	MaxPerAgent int `json:"max_per_agent"`
	// Committed additionally counts traversals in progress at run end.
	Committed int `json:"committed"`

	// Exactly which sentinel (if any) ended the run.
	Exhausted  bool   `json:"exhausted,omitempty"`
	Canceled   bool   `json:"canceled,omitempty"`
	Invalid    bool   `json:"invalid,omitempty"`
	EndedEarly bool   `json:"ended_early,omitempty"` // no goal, no typed sentinel
	Err        string `json:"err,omitempty"`
}

// Oracle is a machine-checked predicate over one executed cell. Check
// returns nil when the run passes. Oracles must be safe for concurrent
// Check calls.
type Oracle interface {
	Name() string
	Check(c Cell, o Outcome) error
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc struct {
	ID string
	F  func(c Cell, o Outcome) error
}

// Name implements Oracle.
func (o OracleFunc) Name() string { return o.ID }

// Check implements Oracle.
func (o OracleFunc) Check(c Cell, out Outcome) error { return o.F(c, out) }

// minLabelLen returns the binary length of the smallest label, the ℓ of
// Π(n, ℓ).
func minLabelLen(labels []uint64) int {
	best := 0
	for _, l := range labels {
		n := 0
		for x := l; x > 0; x >>= 1 {
			n++
		}
		if best == 0 || n < best {
			best = n
		}
	}
	return best
}

// Termination returns the oracle enforcing the campaign's liveness
// contract: no run may end without either reaching its goal or carrying
// a typed sentinel (budget exhaustion or cancellation). An expanded cell
// that the engine rejects as invalid is an expander bug and fails too.
func Termination() Oracle {
	return OracleFunc{ID: "termination", F: func(c Cell, o Outcome) error {
		switch {
		case o.Invalid:
			return fmt.Errorf("expanded cell was rejected as invalid: %s", o.Err)
		case o.Met, o.Exhausted, o.Canceled:
			return nil
		default:
			return fmt.Errorf("run ended without goal or typed sentinel: %s", o.Err)
		}
	}}
}

// Consistency returns the oracle failing any met run whose result
// violated a semantic invariant of its algorithm.
func Consistency() Oracle {
	return OracleFunc{ID: "consistency", F: func(c Cell, o Outcome) error {
		if o.Met && !o.Consistent {
			return fmt.Errorf("inconsistent result: %s", o.Detail)
		}
		return nil
	}}
}

// Bound returns the cost-bound oracle over a model bound to the
// executing engine's catalog lengths (costmodel.NewFromLengths):
//
//   - rendezvous: either agent's traversals <= Π(n, ℓ) and the meeting
//     cost <= 2Π(n, ℓ) (Theorem 3.1);
//   - baseline: meeting cost within the exponential comparator's bound;
//   - esst: a completed exploration traversed every edge at least once
//     and its derived size upper bound covers the true size
//     (Theorem 2.1);
//   - sgl and certify carry no per-run cost bound here (Theorem 4.1's
//     bound is exercised by the E9 cost table).
//
// Canceled and invalid runs are skipped; budget-exhausted runs are still
// bounded (a partial cost can only be below the full bound).
func Bound(m *costmodel.Model) Oracle {
	return OracleFunc{ID: "pi-bound", F: func(c Cell, o Outcome) error {
		if o.Canceled || o.Invalid {
			return nil
		}
		switch c.Kind {
		case KindRendezvous:
			mLen := minLabelLen(c.Labels)
			if !m.WithinPi(o.N, mLen, int64(o.MaxPerAgent)) {
				return fmt.Errorf("agent traversals %d exceed Pi(%d, %d)", o.MaxPerAgent, o.N, mLen)
			}
			if o.Met && !m.WithinPiTotal(o.N, mLen, int64(o.Cost)) {
				return fmt.Errorf("meeting cost %d exceeds 2*Pi(%d, %d)", o.Cost, o.N, mLen)
			}
		case KindBaseline:
			if !o.Met {
				return nil
			}
			ok, err := m.WithinBaseline(o.N, c.Labels[0], c.Labels[1], int64(o.Cost))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("baseline meeting cost %d exceeds its bound on n=%d labels %v", o.Cost, o.N, c.Labels)
			}
		case KindESST:
			if !o.Met {
				return nil
			}
			if o.Cost < o.M {
				return fmt.Errorf("esst done after %d traversals but the graph has %d edges", o.Cost, o.M)
			}
			if o.Cost+1 < o.N {
				return fmt.Errorf("esst size upper bound %d below true size %d", o.Cost+1, o.N)
			}
		}
		return nil
	}}
}

// Lemmas returns the oracle asserting that every counting inequality of
// Lemmas 3.2-3.6 and Theorem 3.1 holds at each (n, ℓ) combination a
// labeled cell touches. Verdicts are cached per combination, so a sweep
// pays for each (n, ℓ) once.
func Lemmas(m *costmodel.Model) Oracle {
	var mu sync.Mutex
	type key struct{ n, l int }
	seen := make(map[key]string)
	return OracleFunc{ID: "lemmas", F: func(c Cell, o Outcome) error {
		if len(c.Labels) == 0 || o.Invalid || o.N < 2 {
			return nil
		}
		k := key{o.N, costmodel.ModifiedLen(minLabelLen(c.Labels))}
		mu.Lock()
		defer mu.Unlock()
		fail, ok := seen[k]
		if !ok {
			holds, name := m.LemmasHold(k.n, k.l)
			if !holds {
				fail = name
			}
			seen[k] = fail
		}
		if fail != "" {
			return fmt.Errorf("lemma inequality %q fails at n=%d l=%d", fail, k.n, k.l)
		}
		return nil
	}}
}

// DefaultOracles returns the paper-bound oracle suite every sweep runs
// unless the caller overrides it: termination, consistency, cost bounds
// and lemma inequalities, all parameterized by the engine's catalog.
func DefaultOracles(m *costmodel.Model) []Oracle {
	return []Oracle{Termination(), Consistency(), Bound(m), Lemmas(m)}
}
