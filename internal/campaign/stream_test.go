package campaign

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func streamSpec() Spec {
	return Spec{
		Name: "stream-test",
		Seed: "stream-v1",
		Graphs: []GraphAxis{
			{Kind: "path", Sizes: []int{4, 6}},
			{Kind: "grid", Rows: 2, Cols: 3},
		},
		StartPairs:  2,
		LabelPairs:  2,
		Adversaries: []string{"", "random", "avoider"},
		Budget:      1000,
	}
}

// TestWalkCountMatchExpand pins the streaming expansion to the
// materializing one: Walk yields exactly Expand's cells in exactly its
// order, and Count projects exactly its length without deriving cells.
func TestWalkCountMatchExpand(t *testing.T) {
	spec := streamSpec()
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(spec)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(cells) {
		t.Fatalf("Count = %d, Expand produced %d cells", n, len(cells))
	}
	i := 0
	if err := Walk(spec, func(c Cell) bool {
		if i >= len(cells) {
			t.Fatalf("Walk yielded more than %d cells", len(cells))
		}
		want, _ := json.Marshal(cells[i])
		got, _ := json.Marshal(c)
		if string(got) != string(want) {
			t.Fatalf("cell %d differs:\nwalk:   %s\nexpand: %s", i, got, want)
		}
		i++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(cells) {
		t.Fatalf("Walk yielded %d cells, Expand %d", i, len(cells))
	}
}

// TestWalkEarlyStop asserts yield returning false stops the stream.
func TestWalkEarlyStop(t *testing.T) {
	seen := 0
	if err := Walk(streamSpec(), func(Cell) bool {
		seen++
		return seen < 5
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatalf("walk yielded %d cells after stop at 5", seen)
	}
}

// TestAggregatorOrderIndependent feeds the same results in expansion
// order and in a shuffled order: the reports must be byte-identical,
// which is what lets the streaming sweep aggregate results as workers
// finish them.
func TestAggregatorOrderIndependent(t *testing.T) {
	spec := streamSpec()
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]CellResult, len(cells))
	rng := rand.New(rand.NewSource(7))
	for i, c := range cells {
		o := Outcome{N: 4, M: 5, Consistent: true, Steps: 100 + i}
		switch rng.Intn(3) {
		case 0:
			o.Met = true
			o.Cost = 10 + rng.Intn(90)
		case 1:
			o.Exhausted = true
		default:
			o.EndedEarly = true
			o.Err = "ended early"
		}
		cr := CellResult{Cell: c, Outcome: o}
		if !o.Met && !o.Exhausted {
			cr.Failures = []OracleFailure{{Oracle: "termination", Err: "no goal, no sentinel"}}
		}
		results[i] = cr
	}
	ordered := BuildReport(spec, results, nil)

	shuffled := append([]CellResult(nil), results...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	agg := NewAggregator(spec, nil)
	for _, cr := range shuffled {
		agg.Add(cr)
	}
	fromShuffled := agg.Report()

	a, _ := json.Marshal(ordered)
	b, _ := json.Marshal(fromShuffled)
	if string(a) != string(b) {
		t.Fatalf("aggregation is order-dependent:\nordered:  %s\nshuffled: %s", a, b)
	}
	if ordered.Events == 0 {
		t.Error("report did not sum executed events")
	}
}
